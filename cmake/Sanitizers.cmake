# Sanitizer toggles for the SCMP build.
#
# SCMP_SANITIZE selects an instrumentation profile for every target in the
# tree (libraries, tests, benches, examples). Profiles:
#
#   OFF       - no instrumentation (default)
#   asan+ubsan - AddressSanitizer + UndefinedBehaviorSanitizer
#   tsan      - ThreadSanitizer (mutually exclusive with asan)
#
# The flags must be applied to both compile and link steps, and to every
# translation unit in the program, so this module appends to the global
# option lists and is included before any add_subdirectory().

set(SCMP_SANITIZE "OFF" CACHE STRING
    "Sanitizer profile: OFF, asan+ubsan, or tsan")
set_property(CACHE SCMP_SANITIZE PROPERTY STRINGS OFF asan+ubsan tsan)

option(SCMP_WERROR "Treat compiler warnings as errors" OFF)
option(SCMP_COVERAGE
    "Instrument for line coverage (gcov); enables the `coverage` target" OFF)

if(SCMP_SANITIZE STREQUAL "asan+ubsan")
  set(_scmp_san_flags
      -fsanitize=address,undefined
      -fno-sanitize-recover=all
      -fno-omit-frame-pointer)
elseif(SCMP_SANITIZE STREQUAL "tsan")
  set(_scmp_san_flags
      -fsanitize=thread
      -fno-omit-frame-pointer)
elseif(NOT SCMP_SANITIZE STREQUAL "OFF")
  message(FATAL_ERROR
      "Unknown SCMP_SANITIZE value '${SCMP_SANITIZE}' "
      "(expected OFF, asan+ubsan, or tsan)")
endif()

if(DEFINED _scmp_san_flags)
  add_compile_options(${_scmp_san_flags} -g)
  add_link_options(${_scmp_san_flags})
  message(STATUS "SCMP sanitizers enabled: ${SCMP_SANITIZE}")
endif()

if(SCMP_WERROR)
  add_compile_options(-Werror)
endif()

if(SCMP_COVERAGE)
  if(NOT SCMP_SANITIZE STREQUAL "OFF")
    message(FATAL_ERROR "SCMP_COVERAGE cannot combine with SCMP_SANITIZE")
  endif()
  # -O0 keeps line counts faithful to the source (no coalesced lines).
  add_compile_options(--coverage -O0 -g)
  add_link_options(--coverage)
  message(STATUS "SCMP coverage instrumentation enabled")
endif()
