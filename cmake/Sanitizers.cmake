# Sanitizer toggles for the SCMP build.
#
# SCMP_SANITIZE selects an instrumentation profile for every target in the
# tree (libraries, tests, benches, examples). Profiles:
#
#   OFF       - no instrumentation (default)
#   asan+ubsan - AddressSanitizer + UndefinedBehaviorSanitizer
#   tsan      - ThreadSanitizer (mutually exclusive with asan)
#
# The flags must be applied to both compile and link steps, and to every
# translation unit in the program, so this module appends to the global
# option lists and is included before any add_subdirectory().

set(SCMP_SANITIZE "OFF" CACHE STRING
    "Sanitizer profile: OFF, asan+ubsan, or tsan")
set_property(CACHE SCMP_SANITIZE PROPERTY STRINGS OFF asan+ubsan tsan)

option(SCMP_WERROR "Treat compiler warnings as errors" OFF)
option(SCMP_COVERAGE
    "Instrument for line coverage (gcov); enables the `coverage` target" OFF)
option(SCMP_THREAD_SAFETY
    "Enable clang's thread-safety analysis (-Wthread-safety) as an error; \
requires Clang — the annotations in util/thread_annotations.hpp compile to \
no-ops elsewhere" OFF)

if(SCMP_SANITIZE STREQUAL "asan+ubsan")
  set(_scmp_san_flags
      -fsanitize=address,undefined
      -fno-sanitize-recover=all
      -fno-omit-frame-pointer)
elseif(SCMP_SANITIZE STREQUAL "tsan")
  set(_scmp_san_flags
      -fsanitize=thread
      -fno-omit-frame-pointer)
elseif(NOT SCMP_SANITIZE STREQUAL "OFF")
  message(FATAL_ERROR
      "Unknown SCMP_SANITIZE value '${SCMP_SANITIZE}' "
      "(expected OFF, asan+ubsan, or tsan)")
endif()

if(DEFINED _scmp_san_flags)
  add_compile_options(${_scmp_san_flags} -g)
  add_link_options(${_scmp_san_flags})
  message(STATUS "SCMP sanitizers enabled: ${SCMP_SANITIZE}")
endif()

if(SCMP_WERROR)
  add_compile_options(-Werror)
endif()

if(SCMP_THREAD_SAFETY)
  if(NOT CMAKE_CXX_COMPILER_ID MATCHES "Clang")
    message(FATAL_ERROR
        "SCMP_THREAD_SAFETY requires Clang (got ${CMAKE_CXX_COMPILER_ID}): "
        "gcc has no thread-safety analysis, so the build would silently "
        "check nothing. Configure with -DCMAKE_CXX_COMPILER=clang++ or use "
        "the `tsa` preset.")
  endif()
  add_compile_options(-Wthread-safety -Werror=thread-safety)
  message(STATUS "SCMP clang thread-safety analysis enabled (as errors)")
endif()

if(SCMP_COVERAGE)
  if(NOT SCMP_SANITIZE STREQUAL "OFF")
    message(FATAL_ERROR "SCMP_COVERAGE cannot combine with SCMP_SANITIZE")
  endif()
  # -O0 keeps line counts faithful to the source (no coalesced lines).
  add_compile_options(--coverage -O0 -g)
  add_link_options(--coverage)
  message(STATUS "SCMP coverage instrumentation enabled")
endif()
