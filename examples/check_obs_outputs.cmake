# Test driver for example_scmpsim_obs: runs scmpsim with --metrics/--trace
# and fails unless all three export files appear and are non-empty.
# Expects -DSCMPSIM=<path to scmpsim> and -DOUT_DIR=<scratch dir>.
execute_process(
  COMMAND "${SCMPSIM}" --topo arpanet --protocol scmp --group-size 6
          --metrics=${OUT_DIR}/scmpsim_obs_metrics.prom
          --trace=${OUT_DIR}/scmpsim_obs_trace
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "scmpsim exited with ${rc}")
endif()
foreach(f scmpsim_obs_metrics.prom scmpsim_obs_trace.jsonl
        scmpsim_obs_trace.chrome.json)
  set(path "${OUT_DIR}/${f}")
  if(NOT EXISTS "${path}")
    message(FATAL_ERROR "missing observability export: ${path}")
  endif()
  file(SIZE "${path}" size)
  if(size EQUAL 0)
    message(FATAL_ERROR "empty observability export: ${path}")
  endif()
endforeach()
