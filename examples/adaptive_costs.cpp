// Utilisation-adaptive link costs: the paper defines link cost as a function
// of utilisation (§II-D) and argues the service-centric architecture makes
// re-optimisation easy — only the m-router needs to act (§I: "it is
// convenient to modify the algorithm if the requirements change. Other
// routers do not need to know").
//
// This example runs several concurrent group sessions, measures per-link
// load, re-prices the links from the observed utilisation, lets the m-router
// rebuild all group trees against the new costs, and re-runs the same
// traffic: load shifts off the hottest links while deliveries stay
// identical.
#include <iostream>
#include <numeric>

#include "core/dcdm.hpp"
#include "core/placement.hpp"
#include "core/scmp.hpp"
#include "igmp/igmp.hpp"
#include "obs/session.hpp"
#include "sim/link_load.hpp"
#include "topo/waxman.hpp"
#include "util/table.hpp"

using namespace scmp;

namespace {

constexpr int kGroups = 4;
constexpr int kMembersPerGroup = 10;
constexpr int kPacketsPerGroup = 20;

struct Workload {
  std::vector<std::vector<graph::NodeId>> members;  // per group
  std::vector<graph::NodeId> sources;               // per group
};

Workload make_workload(const graph::Graph& g) {
  Workload w;
  Rng rng(11);
  for (int group = 0; group < kGroups; ++group) {
    std::vector<graph::NodeId> members;
    for (int v :
         rng.sample_without_replacement(g.num_nodes() - 1, kMembersPerGroup))
      members.push_back(v + 1);
    w.sources.push_back(members.front());
    w.members.push_back(std::move(members));
  }
  return w;
}

struct RunResult {
  std::uint64_t max_link_bytes = 0;
  std::uint64_t top5_bytes = 0;
  std::uint64_t deliveries = 0;
  std::vector<sim::LinkLoad> top;
  graph::Graph repriced;
};

RunResult run_once(const graph::Graph& g, graph::NodeId mrouter,
                   const Workload& w) {
  sim::EventQueue queue;
  sim::Network net(g, queue);
  igmp::IgmpDomain igmp(queue, g.num_nodes());
  core::Scmp::Config cfg;
  cfg.mrouter = mrouter;
  cfg.dcdm.delay_slack = core::kLoosest;  // free rein for cost optimisation
  core::Scmp scmp(net, igmp, cfg);

  for (int group = 0; group < kGroups; ++group)
    for (graph::NodeId m : w.members[static_cast<std::size_t>(group)])
      scmp.host_join(m, group + 1);
  queue.run_all();

  for (int round = 0; round < kPacketsPerGroup; ++round) {
    for (int group = 0; group < kGroups; ++group)
      scmp.send_data(w.sources[static_cast<std::size_t>(group)], group + 1);
    queue.run_all();
  }

  RunResult r;
  r.deliveries = net.stats().deliveries;
  auto loads = sim::link_loads(net);
  r.max_link_bytes = loads.empty() ? 0 : loads.front().bytes;
  for (std::size_t i = 0; i < loads.size() && i < 5; ++i)
    r.top5_bytes += loads[i].bytes;
  loads.resize(std::min<std::size_t>(loads.size(), 3));
  r.top = std::move(loads);
  r.repriced = sim::utilization_adjusted(g, net, /*alpha=*/4.0);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  scmp::obs::ObsSession obs(argc, argv);  // --metrics / --trace support

  Rng trng(5);
  const topo::Topology topo = topo::waxman_with_degree(50, 3.0, trng);
  const graph::AllPairsPaths paths(topo.graph);
  // A well-connected m-router (rule 2) leaves alternative links to shift
  // load onto.
  const graph::NodeId mrouter = core::place_mrouter(
      topo.graph, paths, core::PlacementRule::kMaxDegree);
  const Workload w = make_workload(topo.graph);

  std::cout << kGroups << " concurrent groups x " << kMembersPerGroup
            << " members, m-router at node " << mrouter << "\n\n"
            << "Round 1: static link costs (the paper's simulation setup)\n";
  const RunResult first = run_once(topo.graph, mrouter, w);
  for (const auto& l : first.top)
    std::cout << "  hot link " << l.u << "-" << l.v << ": " << l.bytes
              << " bytes\n";

  std::cout << "\nRound 2: same traffic, m-router re-optimises every group "
               "tree against utilisation-derived costs\n";
  const RunResult second = run_once(first.repriced, mrouter, w);
  for (const auto& l : second.top)
    std::cout << "  hot link " << l.u << "-" << l.v << ": " << l.bytes
              << " bytes\n";

  Table table({"metric", "static costs", "utilisation costs"});
  table.add_row({"busiest link (bytes)", std::to_string(first.max_link_bytes),
                 std::to_string(second.max_link_bytes)});
  table.add_row({"5 hottest links (bytes)", std::to_string(first.top5_bytes),
                 std::to_string(second.top5_bytes)});
  table.add_row({"deliveries", std::to_string(first.deliveries),
                 std::to_string(second.deliveries)});
  std::cout << "\n";
  table.print(std::cout);

  const double reduction =
      100.0 * (1.0 - static_cast<double>(second.top5_bytes) /
                         static_cast<double>(first.top5_bytes));
  std::cout << "\nLoad on the five hottest links changed by "
            << Table::num(reduction, 1)
            << "% (positive = relieved); deliveries unchanged: "
            << (first.deliveries == second.deliveries ? "yes" : "NO") << "\n"
            << "Only the m-router changed its behaviour; every i-router just "
               "installed the TREE/BRANCH packets it was sent.\n";
  return 0;
}
