// Video conference: the paper's motivating many-to-many workload (§I).
//
// Several conference participants on the ARPANET topology form one group;
// every participant both receives and periodically sends. The example uses
// the full m-router device model (`core::MRouterNode`): after the first
// round the node programs its sandwich switching fabric (PN -> CCN -> DN)
// from the speakers it has seen — each speaker on an input port, merged onto
// the group's output port (§II-B) — and from then on every packet crossing
// the m-router pays its real path depth through the fabric. A second
// simultaneous conference stays fully isolated in the fabric.
#include <iostream>
#include <map>

#include "core/mrouter_node.hpp"
#include "igmp/igmp.hpp"
#include "obs/session.hpp"
#include "sim/network.hpp"
#include "topo/arpanet.hpp"

using namespace scmp;

int main(int argc, char** argv) {
  scmp::obs::ObsSession obs(argc, argv);  // --metrics / --trace support

  Rng rng(2026);
  const topo::Topology topo = topo::arpanet(rng);
  const graph::Graph& g = topo.graph;

  sim::EventQueue queue;
  sim::Network net(g, queue);
  igmp::IgmpDomain igmp(queue, g.num_nodes());
  core::Scmp::Config cfg;
  cfg.mrouter = 12;  // a well-connected mid-continent site
  core::MRouterNode mrouter(net, igmp, cfg, /*fabric_ports=*/16);
  core::Scmp& scmp = mrouter.protocol();

  std::map<int, std::map<graph::NodeId, int>> received;  // group -> member -> n
  net.set_delivery_callback(
      [&](const sim::Packet& pkt, graph::NodeId member, sim::SimTime) {
        ++received[pkt.group][member];
      });

  // Two simultaneous conferences.
  const std::vector<graph::NodeId> confA{0, 3, 8, 15, 19};
  const std::vector<graph::NodeId> confB{1, 5, 9};
  for (graph::NodeId m : confA) scmp.host_join(m, /*group=*/1);
  for (graph::NodeId m : confB) scmp.host_join(m, /*group=*/2);
  queue.run_all();

  // Round 1: every participant speaks once; the m-router learns the senders.
  for (graph::NodeId speaker : confA) scmp.send_data(speaker, 1);
  for (graph::NodeId speaker : confB) scmp.send_data(speaker, 2);
  queue.run_all();

  // Now program the fabric from the observed sessions and charge transit.
  const auto sync = mrouter.sync_fabric();
  mrouter.enable_fabric_transit(/*per_stage_seconds=*/5e-6);

  // Rounds 2-3 run through the configured fabric.
  for (int round = 0; round < 2; ++round) {
    for (graph::NodeId speaker : confA) scmp.send_data(speaker, 1);
    for (graph::NodeId speaker : confB) scmp.send_data(speaker, 2);
    queue.run_all();
  }

  std::cout << "Conference A (group 1) packets received per member (expect "
            << 3 * confA.size() << " each):\n";
  for (graph::NodeId m : confA)
    std::cout << "  router " << m << ": " << received[1][m] << "\n";
  std::cout << "Conference B (group 2) packets received per member (expect "
            << 3 * confB.size() << " each):\n";
  for (graph::NodeId m : confB)
    std::cout << "  router " << m << ": " << received[2][m] << "\n";

  const fabric::MRouterFabric& fab = mrouter.fabric();
  std::cout << "\nm-router sandwich fabric (16x16 Benes PN/DN + CCN), "
            << sync.sessions_placed << " sessions placed:\n"
            << "  conference A output port: " << mrouter.output_port_of(1)
            << " (speakers on ports";
  for (graph::NodeId s : confA) std::cout << " " << mrouter.input_port_of(1, s);
  std::cout << ")\n  conference B output port: " << mrouter.output_port_of(2)
            << "\n  cross-group isolation: "
            << (fab.verify_no_cross_group() ? "verified" : "VIOLATED") << "\n"
            << "  cell path depth (speaker " << confA[0]
            << "): " << fab.path_depth(mrouter.input_port_of(1, confA[0]))
            << " switch stages\n";

  std::cout << "\nNetwork totals: data overhead = " << net.stats().data_overhead
            << ", protocol overhead = " << net.stats().protocol_overhead
            << ", max end-to-end = " << net.stats().max_end_to_end_delay * 1e3
            << " ms\n";
  return 0;
}
