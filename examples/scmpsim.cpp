// scmpsim — command-line driver for one-off experiments.
//
// Runs a single §IV-B-style scenario and prints the paper's metrics, so a
// user can explore the parameter space without writing code:
//
//   scmpsim [--topo arpanet|waxman|deg3|deg5] [--protocol scmp|dvmrp|mospf|cbt]
//           [--group-size N] [--seed S] [--duration SECONDS]
//           [--slack X|inf] [--off-tree-source]
//           [--metrics[=FILE]] [--trace[=BASE]]
//
// --metrics / --trace enable the observability layer (docs/observability.md):
// on exit, FILE gets the Prometheus metrics text and BASE.jsonl /
// BASE.chrome.json the span dump and a Chrome trace_event file that loads in
// about:tracing / Perfetto.
//
// Example:
//   scmpsim --topo deg3 --protocol scmp --group-size 24 --seed 7
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "graph/dot.hpp"
#include "obs/session.hpp"

#include "core/dcdm.hpp"
#include "core/experiment.hpp"
#include "core/placement.hpp"
#include "topo/arpanet.hpp"
#include "topo/waxman.hpp"
#include "util/table.hpp"

using namespace scmp;

namespace {

struct Options {
  std::string topo = "deg3";
  std::string protocol = "scmp";
  int group_size = 16;
  std::uint64_t seed = 1;
  double duration = 30.0;
  double slack = 1.0;
  bool off_tree_source = false;
  std::string dot_path;  ///< write the DCDM tree as Graphviz DOT
};

[[noreturn]] void usage_and_exit(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [--topo arpanet|waxman|deg3|deg5]"
         " [--protocol scmp|dvmrp|mospf|cbt|pimsm]\n"
         "       [--group-size N] [--seed S] [--duration SECONDS]\n"
         "       [--slack X|inf] [--off-tree-source] [--dot FILE]\n"
         "       [--metrics[=FILE]] [--trace[=BASE]]\n";
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage_and_exit(argv[0]);
      return argv[++i];
    };
    if (arg == "--topo") {
      opt.topo = next();
    } else if (arg == "--protocol") {
      opt.protocol = next();
    } else if (arg == "--group-size") {
      opt.group_size = std::stoi(next());
    } else if (arg == "--seed") {
      opt.seed = std::stoull(next());
    } else if (arg == "--duration") {
      opt.duration = std::stod(next());
    } else if (arg == "--slack") {
      const std::string v = next();
      opt.slack = (v == "inf") ? core::kLoosest : std::stod(v);
    } else if (arg == "--off-tree-source") {
      opt.off_tree_source = true;
    } else if (arg == "--dot") {
      opt.dot_path = next();
    } else {
      usage_and_exit(argv[0]);
    }
  }
  return opt;
}

topo::Topology build_topology(const Options& opt) {
  Rng rng(opt.seed * 100);
  if (opt.topo == "arpanet") return topo::arpanet(rng);
  if (opt.topo == "deg3") return topo::waxman_with_degree(50, 3.0, rng);
  if (opt.topo == "deg5") return topo::waxman_with_degree(50, 5.0, rng);
  if (opt.topo == "waxman") {
    topo::WaxmanConfig cfg;
    cfg.num_nodes = 100;
    cfg.alpha = 0.25;
    cfg.beta = 0.2;
    return topo::waxman(cfg, rng);
  }
  std::cerr << "unknown topology: " << opt.topo << "\n";
  std::exit(2);
}

core::ProtocolKind parse_protocol(const std::string& name) {
  if (name == "scmp") return core::ProtocolKind::kScmp;
  if (name == "dvmrp") return core::ProtocolKind::kDvmrp;
  if (name == "mospf") return core::ProtocolKind::kMospf;
  if (name == "cbt") return core::ProtocolKind::kCbt;
  if (name == "pimsm") return core::ProtocolKind::kPimSm;
  std::cerr << "unknown protocol: " << name << "\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  obs::ObsSession obs(argc, argv);  // consumes --metrics / --trace
  const Options opt = parse(argc, argv);
  const topo::Topology topo = build_topology(opt);
  const graph::Graph& g = topo.graph;
  if (opt.group_size >= g.num_nodes()) {
    std::cerr << "group size must be below the node count ("
              << g.num_nodes() << ")\n";
    return 2;
  }

  core::ScenarioConfig cfg;
  cfg.duration = opt.duration;
  cfg.dcdm_slack = opt.slack;
  {
    const graph::AllPairsPaths paths(g);
    cfg.mrouter =
        core::place_mrouter(g, paths, core::PlacementRule::kMinAverageDelay);
  }
  Rng rng(opt.seed * 7919 + static_cast<std::uint64_t>(opt.group_size));
  for (int v :
       rng.sample_without_replacement(g.num_nodes() - 1, opt.group_size))
    cfg.members.push_back(v + 1);
  cfg.source = cfg.members.front();
  if (opt.off_tree_source) {
    for (graph::NodeId v = 1; v < g.num_nodes(); ++v) {
      if (std::find(cfg.members.begin(), cfg.members.end(), v) ==
          cfg.members.end()) {
        cfg.source = v;
        break;
      }
    }
  }

  const core::ScenarioResult r =
      core::run_scenario(parse_protocol(opt.protocol), g, cfg);

  std::cout << "topology   : " << topo.name << " (" << g.num_nodes()
            << " nodes, " << g.num_edges() << " links, avg degree "
            << Table::num(g.average_degree(), 2) << ")\n"
            << "protocol   : " << r.protocol << "\n"
            << "m-router   : node " << cfg.mrouter << " (min-avg-delay rule)\n"
            << "group size : " << opt.group_size << ", source router "
            << cfg.source << (opt.off_tree_source ? " (off-tree)" : " (member)")
            << "\n"
            << "traffic    : " << r.data_packets_sent << " packets over "
            << opt.duration << " s\n\n";

  Table table({"metric", "value"});
  table.add_row({"data overhead (lc units)", Table::num(r.stats.data_overhead, 0)});
  table.add_row({"protocol overhead (lc units)",
                 Table::num(r.stats.protocol_overhead, 0)});
  table.add_row({"data link crossings",
                 std::to_string(r.stats.data_link_crossings)});
  table.add_row({"protocol link crossings",
                 std::to_string(r.stats.protocol_link_crossings)});
  table.add_row({"deliveries", std::to_string(r.stats.deliveries)});
  table.add_row({"max end-to-end delay (ms)",
                 Table::num(r.stats.max_end_to_end_delay * 1e3, 3)});
  table.add_row({"IGMP messages", std::to_string(r.igmp_messages)});
  table.print(std::cout);

  if (!opt.dot_path.empty()) {
    // The DCDM shared tree for the final membership (joined in the same
    // order), rendered as Graphviz DOT for `dot -Tsvg`.
    const graph::AllPairsPaths paths(g);
    core::DcdmTree tree(g, paths, cfg.mrouter, core::DcdmConfig{opt.slack});
    for (graph::NodeId m : cfg.members) tree.join(m);
    std::ofstream out(opt.dot_path);
    if (!out) {
      std::cerr << "cannot write " << opt.dot_path << "\n";
      return 1;
    }
    out << graph::to_dot(g, tree.tree());
    std::cout << "\nDCDM shared tree written to " << opt.dot_path << "\n";
  }
  return 0;
}
