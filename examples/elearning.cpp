// E-learning lecture: one of the paper's §I application examples, used here
// to exercise the IGMP robustness path. Students subscribe to a lecture
// stream; some laptops crash silently mid-lecture (no IGMP Leave is ever
// sent). The designated routers' query cycle notices the silence, expires
// the dead hosts after the holdtime, and the SCMP LEAVE/PRUNE machinery
// trims the tree — the delivery count and the tree shrink on their own.
#include <iostream>

#include "core/scmp.hpp"
#include "igmp/igmp.hpp"
#include "obs/session.hpp"
#include "sim/network.hpp"
#include "topo/waxman.hpp"
#include "util/table.hpp"

using namespace scmp;

int main(int argc, char** argv) {
  scmp::obs::ObsSession obs(argc, argv);  // --metrics / --trace support

  Rng trng(31);
  const topo::Topology topo = topo::waxman_with_degree(50, 3.0, trng);
  const graph::Graph& g = topo.graph;

  sim::EventQueue queue;
  sim::Network net(g, queue);
  igmp::IgmpDomain igmp(queue, g.num_nodes());
  igmp.enable_soft_state(/*holdtime=*/4.0);
  core::Scmp::Config cfg;
  cfg.mrouter = 0;
  core::Scmp scmp(net, igmp, cfg);

  const int kLecture = 1;
  std::uint64_t delivered_this_packet = 0;
  net.set_delivery_callback(
      [&](const sim::Packet&, graph::NodeId, sim::SimTime) {
        ++delivered_this_packet;
      });

  // 12 students on 12 campus routers; the lecturer streams from router 25.
  Rng rng(7);
  std::vector<graph::NodeId> students;
  for (int v : rng.sample_without_replacement(g.num_nodes() - 2, 12))
    students.push_back(v + 1);
  for (graph::NodeId s : students) igmp.host_join(s, 0, /*host=*/500, kLecture);
  queue.run_all();
  igmp.start_query_cycle(/*interval=*/2.0, /*horizon=*/60.0);

  auto snapshot = [&](const char* label) {
    delivered_this_packet = 0;
    scmp.send_data(25, kLecture);
    const double before = queue.now();
    queue.run_until(before + 0.5);
    const core::DcdmTree* tree = scmp.group_tree(kLecture);
    std::cout << "  " << label << ": " << delivered_this_packet
              << " students reached, tree spans " << tree->tree().tree_size()
              << " routers, tree cost " << tree->tree_cost() << "\n";
  };

  std::cout << "Lecture starts (12 students, DR holdtime 4 s, queries every "
               "2 s):\n";
  queue.run_until(5.0);
  snapshot("t=5s ");

  // Four laptops crash silently between t=6s and t=8s: no Leave, no Report.
  for (int i = 0; i < 4; ++i) {
    const graph::NodeId victim = students[static_cast<std::size_t>(i)];
    queue.schedule_at(6.0 + 0.5 * i, [&igmp, victim]() {
      igmp.host_crash(victim, 0, 500);
    });
  }
  queue.run_until(9.0);
  snapshot("t=9s ");  // crashes happened; holdtime not yet elapsed everywhere

  queue.run_until(16.0);  // several query rounds past every holdtime
  snapshot("t=16s");

  std::cout << "\nNo host ever sent an IGMP Leave — the query cycle detected "
               "the silence,\nexpired the memberships, and the DRs' "
               "LEAVE/PRUNE messages trimmed the tree.\n"
            << "IGMP messages exchanged: " << igmp.igmp_message_count()
            << "\n";
  return 0;
}
