// Quickstart: the smallest complete SCMP session.
//
// Builds a 6-node domain (the paper's Fig. 5 topology), starts an SCMP
// m-router at node 0, joins three group members through IGMP, sends a few
// data packets — one from an on-tree member and one from an off-tree source
// that must encapsulate to the m-router — and prints the multicast tree and
// the per-metric statistics the paper evaluates.
#include <iostream>

#include "core/scmp.hpp"
#include "graph/graph.hpp"
#include "igmp/igmp.hpp"
#include "obs/session.hpp"
#include "sim/network.hpp"

using namespace scmp;

int main(int argc, char** argv) {
  scmp::obs::ObsSession obs(argc, argv);  // --metrics / --trace support

  // The paper's Fig. 5 topology: edges carry (delay, cost).
  graph::Graph g(6);
  g.add_edge(0, 1, 3, 6);
  g.add_edge(1, 4, 9, 3);
  g.add_edge(1, 2, 3, 2);
  g.add_edge(2, 3, 4, 1);
  g.add_edge(0, 3, 2, 6);
  g.add_edge(0, 2, 4, 5);
  g.add_edge(2, 5, 7, 2);

  sim::EventQueue queue;
  sim::Network net(g, queue);
  igmp::IgmpDomain igmp(queue, g.num_nodes());

  core::Scmp::Config cfg;
  cfg.mrouter = 0;
  core::Scmp scmp(net, igmp, cfg);

  net.set_delivery_callback(
      [&](const sim::Packet& pkt, graph::NodeId member, sim::SimTime at) {
        std::cout << "  t=" << at * 1e6 << "us  data uid=" << pkt.uid
                  << " delivered at router " << member << "\n";
      });

  const int group = 1;
  std::cout << "Joining members 4, 3, 5 (the paper's g1, g2, g3) in order...\n";
  // One at a time, so the joins arrive in the paper's order (concurrent JOINs
  // would be reordered by their unicast delays to the m-router).
  for (graph::NodeId member : {4, 3, 5}) {
    scmp.host_join(member, group);
    queue.run_all();
  }

  const core::DcdmTree* tree = scmp.group_tree(group);
  std::cout << "\nDCDM shared tree rooted at the m-router (node 0):\n";
  for (const auto& [child, parent] : tree->tree().edges())
    std::cout << "  " << parent << " -> " << child
              << (tree->tree().is_member(child) ? "  (member)" : "") << "\n";
  std::cout << "  tree cost  = " << tree->tree_cost() << "\n"
            << "  tree delay = " << tree->tree_delay() << "\n\n";

  std::cout << "Member 4 multicasts on the bidirectional shared tree:\n";
  scmp.send_data(4, group);
  queue.run_all();

  std::cout << "\nThe m-router itself multicasts:\n";
  scmp.send_data(0, group);
  queue.run_all();

  std::cout << "\nGroup state installed in the network is "
            << (scmp.network_state_consistent(group) ? "consistent"
                                                     : "INCONSISTENT")
            << " with the m-router's tree.\n";

  const auto& stats = net.stats();
  std::cout << "\nPaper metrics for this session:\n"
            << "  data overhead     = " << stats.data_overhead
            << " (link-cost units)\n"
            << "  protocol overhead = " << stats.protocol_overhead << "\n"
            << "  deliveries        = " << stats.deliveries << "\n"
            << "  max end-to-end    = " << stats.max_end_to_end_delay * 1e6
            << " us\n"
            << "  IGMP messages     = " << igmp.igmp_message_count() << "\n";

  const auto session = scmp.database().session(group);
  std::cout << "\nm-router service database:\n"
            << "  multicast address = 0x" << std::hex << session->address
            << std::dec << "\n"
            << "  data forwarded    = " << session->data_packets_forwarded
            << " packets via the m-router\n"
            << "  membership events = " << scmp.database().membership_log().size()
            << "\n";
  return 0;
}
