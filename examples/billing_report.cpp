// ISP accounting and billing (paper §II-C: the m-router "keeps track of all
// the membership on-off information for multicast scheduling/routing and for
// accounting/billing purposes", and §III-B/III-C's JOIN/LEAVE messages exist
// partly "for possible accounting and billing purposes").
//
// Runs two paid sessions with churn, then prints the reports an ISP would
// derive from the m-router's service database: the published address book,
// per-session traffic totals, and a per-customer invoice computed from the
// membership log (connect time x per-second rate + per-event fee).
#include <iostream>
#include <map>
#include <sstream>

#include "core/scmp.hpp"
#include "igmp/igmp.hpp"
#include "obs/session.hpp"
#include "sim/network.hpp"
#include "topo/waxman.hpp"
#include "util/table.hpp"

using namespace scmp;

int main(int argc, char** argv) {
  scmp::obs::ObsSession obs(argc, argv);  // --metrics / --trace support

  Rng trng(21);
  const topo::Topology topo = topo::waxman_with_degree(50, 3.0, trng);
  const graph::Graph& g = topo.graph;

  sim::EventQueue queue;
  sim::Network net(g, queue);
  igmp::IgmpDomain igmp(queue, g.num_nodes());
  core::Scmp::Config cfg;
  cfg.mrouter = 0;
  core::Scmp scmp(net, igmp, cfg);

  // Session 1 (video stream): members join at t=1..5, some churn, source 30.
  // Session 2 (software feed): smaller, joins at t=2, runs to the end.
  Rng rng(8);
  std::vector<graph::NodeId> video_members{5, 9, 14, 22, 31, 40};
  std::vector<graph::NodeId> feed_members{7, 18, 27};
  double t = 1.0;
  for (graph::NodeId m : video_members) {
    queue.schedule_at(t, [&scmp, m] { scmp.host_join(m, 1); });
    t += 0.8;
  }
  for (graph::NodeId m : feed_members)
    queue.schedule_at(2.0, [&scmp, m] { scmp.host_join(m, 2); });
  // Churn: two video subscribers drop off mid-stream.
  queue.schedule_at(12.0, [&scmp] { scmp.host_leave(9, 1); });
  queue.schedule_at(18.0, [&scmp] { scmp.host_leave(22, 1); });
  // Traffic: video at 2 pkt/s from t=6, feed at 0.5 pkt/s from t=4.
  for (double ts = 6.0; ts <= 30.0; ts += 0.5)
    queue.schedule_at(ts, [&scmp] { scmp.send_data(30, 1); });
  for (double ts = 4.0; ts <= 30.0; ts += 2.0)
    queue.schedule_at(ts, [&scmp] { scmp.send_data(7, 2); });

  queue.run_until(30.0);
  queue.run_all();
  scmp.end_group_session(1);  // the video stream ends; the feed stays up
  queue.run_all();

  const core::MRouterDatabase& db = scmp.database();

  std::cout << "=== Published multicast address book ===\n";
  Table addresses({"group", "address", "state"});
  for (int group : {1, 2}) {
    const auto session = db.session(group);
    std::ostringstream addr;
    addr << "0x" << std::hex << session->address;
    addresses.add_row({std::to_string(group), addr.str(),
                       db.session_active(group) ? "active" : "ended"});
  }
  addresses.print(std::cout);

  std::cout << "\n=== Session traffic report ===\n";
  Table sessions({"group", "started", "ended", "pkts via m-router",
                  "bytes via m-router"});
  for (const auto& rec : db.all_sessions()) {
    sessions.add_row(
        {std::to_string(rec.group), Table::num(rec.started_at, 1),
         rec.ended_at ? Table::num(*rec.ended_at, 1) : "-",
         std::to_string(rec.data_packets_forwarded),
         std::to_string(rec.data_bytes_forwarded)});
  }
  sessions.print(std::cout);

  // Invoice: walk the membership log and charge connect time + events.
  constexpr double kPerSecond = 0.002;  // currency units
  constexpr double kPerEvent = 0.05;
  struct Account {
    double connect_seconds = 0.0;
    int events = 0;
    std::map<int, double> join_time;  // group -> open join
  };
  std::map<graph::NodeId, Account> accounts;
  for (const auto& ev : db.membership_log()) {
    Account& acc = accounts[ev.router];
    ++acc.events;
    if (ev.joined) {
      acc.join_time[ev.group] = ev.time;
    } else if (acc.join_time.count(ev.group)) {
      acc.connect_seconds += ev.time - acc.join_time[ev.group];
      acc.join_time.erase(ev.group);
    }
  }
  const double now = queue.now();
  for (auto& [router, acc] : accounts) {
    for (const auto& [group, since] : acc.join_time)
      acc.connect_seconds += now - since;  // still connected
  }

  std::cout << "\n=== Customer invoices (rate " << kPerSecond
            << "/s + " << kPerEvent << "/event) ===\n";
  Table invoices({"customer (DR)", "connect-s", "events", "invoice"});
  for (const auto& [router, acc] : accounts) {
    invoices.add_row({std::to_string(router),
                      Table::num(acc.connect_seconds, 1),
                      std::to_string(acc.events),
                      Table::num(acc.connect_seconds * kPerSecond +
                                     acc.events * kPerEvent, 3)});
  }
  invoices.print(std::cout);

  std::cout << "\nEverything above came from the m-router's database alone — "
               "no other router kept any accounting state (§II-C).\n";
  return 0;
}
