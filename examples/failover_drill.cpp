// Hot-standby failover drill (paper §V, advantage 4): an ISP runs a primary
// and a secondary m-router; mid-session the primary "fails" and the
// secondary takes over, rebuilding and reinstalling every group tree from
// the replicated service database. Delivery continues for all members.
#include <iostream>

#include "core/placement.hpp"
#include "core/scmp.hpp"
#include "igmp/igmp.hpp"
#include "obs/session.hpp"
#include "sim/network.hpp"
#include "topo/waxman.hpp"

using namespace scmp;

int main(int argc, char** argv) {
  scmp::obs::ObsSession obs(argc, argv);  // --metrics / --trace support

  Rng rng(17);
  const topo::Topology topo = topo::waxman_with_degree(50, 3.0, rng);
  const graph::Graph& g = topo.graph;
  const graph::AllPairsPaths paths(g);

  // Place the primary with rule 1 (min average delay) and the standby with
  // rule 2 (max degree), per the paper's placement heuristics.
  const graph::NodeId primary =
      core::place_mrouter(g, paths, core::PlacementRule::kMinAverageDelay);
  graph::NodeId standby =
      core::place_mrouter(g, paths, core::PlacementRule::kMaxDegree);
  if (standby == primary) standby = (primary + 1) % g.num_nodes();

  sim::EventQueue queue;
  sim::Network net(g, queue);
  igmp::IgmpDomain igmp(queue, g.num_nodes());
  core::Scmp::Config cfg;
  cfg.mrouter = primary;
  core::Scmp scmp(net, igmp, cfg);

  int deliveries_this_packet = 0;
  net.set_delivery_callback(
      [&](const sim::Packet&, graph::NodeId, sim::SimTime) {
        ++deliveries_this_packet;
      });

  const int group = 1;
  Rng mrng(23);
  std::vector<graph::NodeId> members;
  for (int v : mrng.sample_without_replacement(g.num_nodes() - 1, 12)) {
    const graph::NodeId m = v + 1;
    if (m == primary || m == standby) continue;
    members.push_back(m);
    scmp.host_join(m, group);
  }
  queue.run_all();

  std::cout << "Primary m-router at " << primary << " (rule: min-avg-delay), "
            << "standby at " << standby << " (rule: max-degree), "
            << members.size() << " members.\n";

  auto send_and_report = [&](const char* label) {
    deliveries_this_packet = 0;
    scmp.send_data(members.front(), group);
    queue.run_all();
    std::cout << "  " << label << ": " << deliveries_this_packet << "/"
              << members.size() << " members reached, tree rooted at "
              << scmp.group_tree(group)->root() << ", consistent="
              << (scmp.network_state_consistent(group) ? "yes" : "NO") << "\n";
  };

  std::cout << "\nBefore failover:\n";
  send_and_report("multicast");

  std::cout << "\n*** primary m-router " << primary
            << " fails; standby takes over ***\n";
  const double proto_before = net.stats().protocol_overhead;
  scmp.fail_over_to(standby);
  queue.run_all();
  std::cout << "  reinstallation protocol overhead: "
            << net.stats().protocol_overhead - proto_before
            << " link-cost units\n";

  std::cout << "\nAfter failover:\n";
  send_and_report("multicast");

  std::cout << "\nMembership database survived the failover: "
            << scmp.database().members_of(group).size() << "/" << members.size()
            << " members on record.\n";
  return 0;
}
