// Software distribution: the paper's one-to-many workload (§I) with client
// churn. A distribution server pushes one packet per second for 60 s over a
// 50-node domain while clients subscribe and unsubscribe mid-transfer. The
// same schedule runs under SCMP and under DVMRP to show the bandwidth gap
// (Fig. 8's headline result) on a realistic workload.
#include <iostream>

#include "core/experiment.hpp"
#include "obs/session.hpp"
#include "topo/waxman.hpp"
#include "util/table.hpp"

using namespace scmp;

int main(int argc, char** argv) {
  scmp::obs::ObsSession obs(argc, argv);  // --metrics / --trace support

  Rng trng(7);
  const topo::Topology topo = topo::waxman_with_degree(50, 3.0, trng);
  const graph::Graph& g = topo.graph;

  core::ScenarioConfig cfg;
  cfg.mrouter = 0;
  cfg.duration = 60.0;
  cfg.data_start = 5.0;
  cfg.data_interval = 1.0;

  // The distribution server plus 18 clients join during the first seconds
  // (the server subscribes to its own channel, so it is on the tree and
  // shared-tree protocols need no per-packet encapsulation)...
  Rng rng(99);
  for (int v : rng.sample_without_replacement(g.num_nodes() - 1, 19))
    cfg.members.push_back(v + 1);
  cfg.source = cfg.members.back();
  // ...and six clients churn out mid-transfer.
  for (int i = 0; i < 6; ++i)
    cfg.leaves.push_back({20.0 + 5.0 * i, cfg.members[static_cast<std::size_t>(i)]});

  std::cout << "Software distribution over " << topo.name << ": 18 clients, "
            << "6 churn out between t=20s and t=45s,\nserver at router "
            << cfg.source << " sends 1 pkt/s from t=5s to t=60s.\n\n";

  Table table({"protocol", "data-overhead", "protocol-overhead", "deliveries",
               "max-e2e(ms)"});
  for (const auto kind :
       {core::ProtocolKind::kScmp, core::ProtocolKind::kDvmrp,
        core::ProtocolKind::kMospf, core::ProtocolKind::kCbt}) {
    const core::ScenarioResult r = core::run_scenario(kind, g, cfg);
    table.add_row({r.protocol, Table::num(r.stats.data_overhead, 0),
                   Table::num(r.stats.protocol_overhead, 0),
                   std::to_string(r.stats.deliveries),
                   Table::num(r.stats.max_end_to_end_delay * 1e3, 3)});
  }
  table.print(std::cout);

  std::cout << "\nSCMP serves the distribution with the least data bandwidth; "
               "DVMRP pays for periodic refloods;\nMOSPF pays LSA floods for "
               "every client that churns.\n";
  return 0;
}
