// Regression test for the multi-observer transmit hook: TraceRecorder, a
// custom tap, and the metrics layer all observe the same transmissions
// without displacing each other (the old single set_transmit_callback
// silently dropped the previous hook).
#include <gtest/gtest.h>

#include <vector>

#include "helpers.hpp"
#include "sim/network.hpp"
#include "sim/trace.hpp"

namespace scmp::sim {
namespace {

struct NullAgent final : RouterAgent {
  void handle(const Packet&, graph::NodeId) override {}
};

class TransmitObserversTest : public ::testing::Test {
 protected:
  TransmitObserversTest() : g_(test::line(3)), net_(g_, queue_) {
    for (graph::NodeId v = 0; v < g_.num_nodes(); ++v) net_.attach(v, &agent_);
  }
  graph::Graph g_;
  EventQueue queue_;
  Network net_;
  NullAgent agent_;
};

TEST_F(TransmitObserversTest, ChainInRegistrationOrder) {
  std::vector<int> order;
  net_.add_transmit_observer(
      [&order](graph::NodeId, graph::NodeId, const Packet&, SimTime) {
        order.push_back(1);
      });
  net_.add_transmit_observer(
      [&order](graph::NodeId, graph::NodeId, const Packet&, SimTime) {
        order.push_back(2);
      });
  EXPECT_EQ(net_.transmit_observer_count(), 2u);

  Packet p;
  net_.send_link(0, 1, p);
  queue_.run_all();

  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

TEST_F(TransmitObserversTest, TraceRecorderCoexistsWithCustomTap) {
  TraceRecorder trace(net_);  // registers its own observer
  int tapped = 0;
  net_.add_transmit_observer(
      [&tapped](graph::NodeId, graph::NodeId, const Packet&, SimTime) {
        ++tapped;
      });
  EXPECT_EQ(net_.transmit_observer_count(), 2u);

  Packet p;
  net_.send_link(0, 1, p);
  net_.send_link(1, 2, p);
  queue_.run_all();

  // Both saw both transmissions.
  EXPECT_EQ(tapped, 2);
  EXPECT_EQ(trace.events().size(), 2u);
}

TEST_F(TransmitObserversTest, SecondRecorderDoesNotDisplaceFirst) {
  TraceRecorder first(net_);
  TraceRecorder second(net_);
  Packet p;
  p.dst = 2;
  net_.send_unicast(0, p);  // 0 -> 1 -> 2: two link crossings
  queue_.run_all();
  EXPECT_EQ(first.events().size(), 2u);
  EXPECT_EQ(second.events().size(), 2u);
}

using TransmitObserversDeathTest = TransmitObserversTest;

TEST_F(TransmitObserversDeathTest, RegistrationDuringDispatchIsRejected) {
  // Mutating the observer chain mid-dispatch would invalidate the iterator
  // driving it and make the observation order depend on when the mutation
  // landed; the dispatch guard turns that bug into a contract failure.
  net_.add_transmit_observer(
      [this](graph::NodeId, graph::NodeId, const Packet&, SimTime) {
        net_.add_transmit_observer(
            [](graph::NodeId, graph::NodeId, const Packet&, SimTime) {});
      });
  Packet p;
  // Observers dispatch at send time, so the send itself must die.
  EXPECT_DEATH(net_.send_link(0, 1, p), "dispatching_observers_");
}

TEST_F(TransmitObserversTest, ObserversSeeEveryUnicastHop) {
  int hops = 0;
  net_.add_transmit_observer(
      [this, &hops](graph::NodeId from, graph::NodeId to, const Packet&,
                    SimTime) {
        ++hops;
        EXPECT_TRUE(g_.has_edge(from, to));
      });
  Packet p;
  p.dst = 2;
  net_.send_unicast(0, p);
  queue_.run_all();
  EXPECT_EQ(hops, 2);
}

}  // namespace
}  // namespace scmp::sim
