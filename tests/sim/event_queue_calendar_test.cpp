// Calendar-queue-specific coverage: the edge cases of the bucket machinery
// (rollover, far-future events, epoch resizes, empty-bucket sweeps, node
// recycling), plus a randomized property test that replays the same
// schedule through the old binary-heap implementation — kept here as an
// oracle — and requires bit-identical execution order.
#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <queue>
#include <random>
#include <tuple>
#include <vector>

namespace scmp::sim {
namespace {

TEST(EventQueueCalendar, BucketRollover) {
  // Times that collide modulo the initial bucket count (16 buckets, width
  // 1): slots 3, 19, 35, ... all hash to bucket 3 but must drain in slot
  // order, not insertion order.
  EventQueue q;
  std::vector<double> fired;
  for (double t : {35.0, 3.0, 19.0, 51.0})
    q.schedule_at(t, [&fired, &q] { fired.push_back(q.now()); });
  q.run_all();
  EXPECT_EQ(fired, (std::vector<double>{3.0, 19.0, 35.0, 51.0}));
}

TEST(EventQueueCalendar, FarFutureEvent) {
  // An event far beyond one calendar revolution: the cursor sweep gives up
  // after a full lap and the queue falls back to a direct min-slot scan.
  EventQueue q;
  std::vector<double> fired;
  for (double t : {1e12, 0.5, 2.0})
    q.schedule_at(t, [&fired, &q] { fired.push_back(q.now()); });
  q.run_all();
  EXPECT_EQ(fired, (std::vector<double>{0.5, 2.0, 1e12}));
  EXPECT_DOUBLE_EQ(q.now(), 1e12);
}

TEST(EventQueueCalendar, BeyondExactIntegerRange) {
  // Slot arithmetic saturates past 2^53 (doubles lose integer exactness);
  // ordering must survive via the fallback scan. Ties at the same huge
  // timestamp still fire in schedule order.
  EventQueue q;
  std::vector<int> fired;
  const double huge = 1e16;
  q.schedule_at(huge, [&fired] { fired.push_back(1); });
  q.schedule_at(huge, [&fired] { fired.push_back(2); });
  q.schedule_at(1.0, [&fired] { fired.push_back(0); });
  q.run_all();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueueCalendar, EpochResizeGrowsAndShrinks) {
  // Bulk-load far above the initial calendar, drain through the growth
  // epoch, then keep draining: the calendar must grow past kMinBuckets and
  // later shrink back when the population collapses.
  EventQueue q;
  constexpr int kLoad = 5000;
  EXPECT_EQ(q.bucket_count(), EventQueue::kMinBuckets);
  std::size_t mid_drain_buckets = 0;
  for (int i = 0; i < kLoad; ++i) {
    const double t = static_cast<double>(i % 250);
    q.schedule_at(t, [&q, &mid_drain_buckets] {
      mid_drain_buckets = std::max(mid_drain_buckets, q.bucket_count());
    });
  }
  q.run_all();
  EXPECT_GT(mid_drain_buckets, EventQueue::kMinBuckets);
  // A fresh trickle after the storm: the next drain boundary re-sizes the
  // calendar back down toward the small population.
  for (int i = 0; i < 8; ++i)
    q.schedule_in(static_cast<double>(i), [] {});
  q.run_all();
  EXPECT_LT(q.bucket_count(), mid_drain_buckets);
}

TEST(EventQueueCalendar, EmptyBucketSkip) {
  // Sparse population: long empty stretches between occupied slots, within
  // one revolution and across several.
  EventQueue q;
  std::vector<double> fired;
  for (double t : {0.0, 7.0, 8.0, 15.0, 100.0, 101.0})
    q.schedule_at(t, [&fired, &q] { fired.push_back(q.now()); });
  q.run_all();
  EXPECT_EQ(fired,
            (std::vector<double>{0.0, 7.0, 8.0, 15.0, 100.0, 101.0}));
}

TEST(EventQueueCalendar, SteadyStateRecyclesNodes) {
  // After a warm-up round the pool should satisfy identical rounds from
  // the free list without growing.
  EventQueue q;
  auto round = [&q] {
    for (int i = 0; i < 256; ++i)
      q.schedule_in(static_cast<double>(i % 17), [] {});
    q.run_all();
  };
  round();
  const std::size_t warm = q.pool_allocated();
  for (int r = 0; r < 5; ++r) round();
  EXPECT_EQ(q.pool_allocated(), warm);
}

TEST(EventQueueCalendar, ZeroDelayCascadeIntoActiveSlot) {
  // Events scheduled at the *current* timestamp from inside a handler land
  // in the already-staged slot and must still run this round, after every
  // earlier (time, seq) event.
  EventQueue q;
  std::vector<int> fired;
  q.schedule_at(1.0, [&] {
    fired.push_back(0);
    q.schedule_in(0.0, [&] {
      fired.push_back(2);
      q.schedule_in(0.0, [&] { fired.push_back(3); });
    });
  });
  q.schedule_at(1.0, [&] { fired.push_back(1); });
  q.run_all();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 1.0);
}

// ---------------------------------------------------------------------------
// Heap oracle: the pre-calendar implementation, verbatim in behaviour — a
// (time, seq) min-heap. The property test replays random schedules through
// both and demands identical execution sequences, bit for bit.
// ---------------------------------------------------------------------------

class HeapOracle {
 public:
  double now() const { return now_; }
  bool empty() const { return heap_.empty(); }

  void schedule_at(double t, int id) {
    heap_.emplace(t, next_seq_++, id);
  }

  /// Pops the earliest event; returns its id, advancing the clock.
  int run_next() {
    const auto [t, seq, id] = heap_.top();
    heap_.pop();
    now_ = t;
    return id;
  }
  double front_time() const { return std::get<0>(heap_.top()); }

  void advance_to(double t) { now_ = t; }

 private:
  using Entry = std::tuple<double, std::uint64_t, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

/// One randomized episode: interleaved schedules (with same-timestamp
/// bursts), run_next batches and run_until boundaries, replayed through the
/// calendar queue and the heap oracle simultaneously.
void run_episode(std::uint32_t seed) {
  std::mt19937 rng(seed);
  EventQueue q;
  HeapOracle oracle;
  std::vector<int> q_order;
  std::vector<int> oracle_order;
  std::vector<double> q_times;
  std::vector<double> oracle_times;
  int next_id = 0;

  std::uniform_real_distribution<double> delay(0.0, 50.0);
  std::uniform_int_distribution<int> burst(1, 8);
  std::uniform_int_distribution<int> op(0, 9);

  for (int step = 0; step < 2000; ++step) {
    const int what = op(rng);
    if (what < 6) {
      // Schedule a burst; every event in it shares one timestamp, the
      // adversarial case for tie-breaking.
      const double t = q.now() + delay(rng);
      const int n = burst(rng);
      for (int i = 0; i < n; ++i) {
        const int id = next_id++;
        q.schedule_at(t, [id, &q_order, &q_times, &q] {
          q_order.push_back(id);
          q_times.push_back(q.now());
        });
        oracle.schedule_at(t, id);
      }
    } else if (what < 9) {
      for (int i = 0; i < 4 && !oracle.empty(); ++i) {
        ASSERT_TRUE(q.run_next());
        oracle_order.push_back(oracle.run_next());
        oracle_times.push_back(oracle.now());
      }
    } else {
      // run_until at a boundary that may bisect a burst's timestamp
      // exactly (delay 0 hits the front event's own time).
      const double horizon = q.now() + delay(rng) * 0.5;
      q.run_until(horizon);
      while (!oracle.empty() && oracle.front_time() <= horizon) {
        oracle_order.push_back(oracle.run_next());
        oracle_times.push_back(oracle.now());
      }
      oracle.advance_to(horizon);
      ASSERT_DOUBLE_EQ(q.now(), oracle.now());
    }
    ASSERT_EQ(q_order.size(), oracle_order.size());
  }
  while (!oracle.empty()) {
    ASSERT_TRUE(q.run_next());
    oracle_order.push_back(oracle.run_next());
    oracle_times.push_back(oracle.now());
  }
  EXPECT_FALSE(q.run_next());

  ASSERT_EQ(q_order, oracle_order);
  ASSERT_EQ(q_times.size(), oracle_times.size());
  for (std::size_t i = 0; i < q_times.size(); ++i)
    ASSERT_EQ(q_times[i], oracle_times[i]) << "event index " << i;
}

TEST(EventQueueOracle, BitIdenticalSeed1) { run_episode(1); }
TEST(EventQueueOracle, BitIdenticalSeed2) { run_episode(2); }
TEST(EventQueueOracle, BitIdenticalSeed3) { run_episode(3); }
TEST(EventQueueOracle, BitIdenticalSeed4) { run_episode(0xC0FFEE); }

}  // namespace
}  // namespace scmp::sim
