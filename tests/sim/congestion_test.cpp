// Finite egress queues and per-node port speeds: the physical model behind
// the paper's §I traffic-concentration argument and the §II-A claim that the
// m-router's ports have "sufficiently high bandwidth".
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "sim/network.hpp"

namespace scmp::sim {
namespace {

struct CountingAgent final : RouterAgent {
  int received = 0;
  void handle(const Packet&, graph::NodeId) override { ++received; }
};

class CongestionTest : public ::testing::Test {
 protected:
  CongestionTest() : g_(test::line(3)), net_(g_, queue_, /*bw=*/8000.0) {
    // 8 kbps: a 1000-byte packet takes exactly one second to transmit.
    for (graph::NodeId v = 0; v < g_.num_nodes(); ++v)
      net_.attach(v, &agents_[static_cast<std::size_t>(v)]);
  }

  Packet data() {
    Packet p;
    p.type = PacketType::kData;
    p.size_bytes = 1000;
    return p;
  }

  graph::Graph g_;
  EventQueue queue_;
  Network net_;
  CountingAgent agents_[3];
};

TEST_F(CongestionTest, UnlimitedQueueDropsNothing) {
  for (int i = 0; i < 20; ++i) net_.send_link(0, 1, data());
  queue_.run_all();
  EXPECT_EQ(agents_[1].received, 20);
  EXPECT_EQ(net_.stats().queue_drops, 0u);
}

TEST_F(CongestionTest, DropTailWhenQueueOverflows) {
  net_.set_queue_limit(4);
  for (int i = 0; i < 10; ++i) net_.send_link(0, 1, data());
  queue_.run_all();
  EXPECT_EQ(agents_[1].received, 4);
  EXPECT_EQ(net_.stats().queue_drops, 6u);
}

TEST_F(CongestionTest, BacklogDrainsOverTime) {
  net_.set_queue_limit(4);
  net_.send_link(0, 1, data());
  net_.send_link(0, 1, data());
  EXPECT_EQ(net_.link_backlog(0, 1), 2);
  queue_.run_until(1.5);  // first transmission (1 s) completed
  EXPECT_EQ(net_.link_backlog(0, 1), 1);
  queue_.run_all();
  EXPECT_EQ(net_.link_backlog(0, 1), 0);
  EXPECT_EQ(net_.stats().queue_drops, 0u);
}

TEST_F(CongestionTest, QueueFreesUpAfterDrain) {
  net_.set_queue_limit(2);
  net_.send_link(0, 1, data());
  net_.send_link(0, 1, data());
  net_.send_link(0, 1, data());  // dropped
  EXPECT_EQ(net_.stats().queue_drops, 1u);
  queue_.run_until(2.5);  // both queued packets transmitted
  net_.send_link(0, 1, data());  // fits again
  queue_.run_all();
  EXPECT_EQ(net_.stats().queue_drops, 1u);
  EXPECT_EQ(agents_[1].received, 3);
}

TEST_F(CongestionTest, FastPortDrainsFaster) {
  // Node 1 is upgraded to 10x the line rate (the m-router treatment).
  net_.set_node_bandwidth(1, 80000.0);
  net_.send_link(0, 1, data());  // 1 s transmission at node 0
  net_.send_link(1, 2, data());  // 0.1 s transmission at node 1
  std::vector<double> arrivals;
  queue_.run_until(0.2);
  EXPECT_EQ(agents_[2].received, 1);  // fast port already delivered
  EXPECT_EQ(agents_[1].received, 0);  // slow port still transmitting
  queue_.run_all();
  EXPECT_EQ(agents_[1].received, 1);
}

TEST_F(CongestionTest, FastPortAvoidsOverflow) {
  net_.set_queue_limit(3);
  // A burst of 8 packets through node 0 (slow) overflows; the same burst
  // through an upgraded node 1 does not.
  for (int i = 0; i < 8; ++i) net_.send_link(0, 1, data());
  queue_.run_all();
  const auto slow_drops = net_.stats().queue_drops;
  EXPECT_GT(slow_drops, 0u);

  net_.set_node_bandwidth(1, 8000.0 * 100);
  for (int i = 0; i < 8; ++i) net_.send_link(1, 2, data());
  queue_.run_all();
  // With 100x bandwidth, transmissions finish nearly instantly relative to
  // the enqueue cadence... but all 8 are enqueued at the same instant, so
  // the queue still bounds concurrency; drops depend only on queue depth.
  // What the fast port buys is latency, checked via backlog drain:
  EXPECT_EQ(net_.link_backlog(1, 2), 0);
}

TEST_F(CongestionTest, PerNodeQueueLimitOverridesGlobal) {
  net_.set_queue_limit(2);
  net_.set_node_queue_limit(0, 10);  // deep buffers at node 0 only
  for (int i = 0; i < 8; ++i) net_.send_link(0, 1, data());
  queue_.run_all();
  EXPECT_EQ(net_.stats().queue_drops, 0u);
  EXPECT_EQ(agents_[1].received, 8);
  // Node 1 still has the shallow queue.
  for (int i = 0; i < 8; ++i) net_.send_link(1, 2, data());
  queue_.run_all();
  EXPECT_EQ(net_.stats().queue_drops, 6u);
}

TEST_F(CongestionTest, SwitchCapacitySerializesAcrossPorts) {
  // Without a switch constraint, node 1's two ports transmit in parallel.
  net_.send_link(1, 0, data());
  net_.send_link(1, 2, data());
  queue_.run_all();
  const double parallel_finish = queue_.now();
  EXPECT_NEAR(parallel_finish, 1.0 + 1e-6, 1e-3);

  // A switch at the port rate forces the two transmissions through one
  // serialiser: the second port's packet starts a full switch-time later.
  EventQueue q2;
  Network net2(g_, q2, 8000.0);
  CountingAgent sink;
  for (graph::NodeId v = 0; v < 3; ++v) net2.attach(v, &sink);
  net2.set_node_switch_capacity(1, 8000.0);
  net2.send_link(1, 0, data());
  net2.send_link(1, 2, data());
  q2.run_all();
  EXPECT_NEAR(q2.now(), 3.0 + 1e-6, 1e-3);  // 2 s switch + 1 s port for #2
}

TEST_F(CongestionTest, FastSwitchIsNotTheBottleneck) {
  net_.set_node_switch_capacity(1, 8000.0 * 1000);
  net_.send_link(1, 0, data());
  net_.send_link(1, 2, data());
  queue_.run_all();
  EXPECT_NEAR(queue_.now(), 1.0 + 1e-6, 1e-2);  // ports dominate again
}

TEST_F(CongestionTest, QueueingDelayShowsInEndToEnd) {
  Packet p = data();
  p.created_at = 0.0;
  net_.send_link(0, 1, p);
  net_.send_link(0, 1, p);
  net_.send_link(0, 1, p);
  queue_.run_all();
  net_.report_delivery(p, 1);
  // The third packet waited ~2 s behind the first two.
  EXPECT_GT(queue_.now(), 3.0);
}

}  // namespace
}  // namespace scmp::sim
