#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace scmp::sim {
namespace {

TEST(EventQueue, StartsEmptyAtZero) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_DOUBLE_EQ(q.now(), 0.0);
  EXPECT_FALSE(q.run_next());
}

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, TiesExecuteInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    q.schedule_at(5.0, [&order, i] { order.push_back(i); });
  q.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, ScheduleInIsRelative) {
  EventQueue q;
  double fired_at = -1.0;
  q.schedule_at(2.0, [&] {
    q.schedule_in(1.5, [&] { fired_at = q.now(); });
  });
  q.run_all();
  EXPECT_DOUBLE_EQ(fired_at, 3.5);
}

TEST(EventQueue, HandlersCanScheduleMore) {
  EventQueue q;
  int count = 0;
  std::function<void()> chain = [&]() {
    if (++count < 5) q.schedule_in(1.0, chain);
  };
  q.schedule_at(0.0, chain);
  q.run_all();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(q.now(), 4.0);
}

TEST(EventQueue, RunUntilStopsAtHorizon) {
  EventQueue q;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0})
    q.schedule_at(t, [&fired, &q] { fired.push_back(q.now()); });
  q.run_until(2.5);
  EXPECT_EQ(fired.size(), 2u);
  EXPECT_DOUBLE_EQ(q.now(), 2.5);
  EXPECT_EQ(q.pending(), 2u);
}

TEST(EventQueue, RunUntilIncludesBoundary) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(2.0, [&] { ++fired; });
  q.run_until(2.0);
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, RunAllWithLimit) {
  EventQueue q;
  for (int i = 0; i < 10; ++i) q.schedule_at(i, [] {});
  EXPECT_EQ(q.run_all(4), 4u);
  EXPECT_EQ(q.pending(), 6u);
}

TEST(EventQueueDeath, RejectsPastScheduling) {
  EventQueue q;
  q.schedule_at(5.0, [] {});
  q.run_all();
  EXPECT_DEATH(q.schedule_at(1.0, [] {}), "Precondition");
}

TEST(EventQueue, ManyEventsStressOrder) {
  EventQueue q;
  std::vector<double> fired;
  for (int i = 999; i >= 0; --i)
    q.schedule_at(static_cast<double>(i % 100), [&fired, &q] {
      fired.push_back(q.now());
    });
  q.run_all();
  for (std::size_t i = 1; i < fired.size(); ++i)
    EXPECT_LE(fired[i - 1], fired[i]);
}

}  // namespace
}  // namespace scmp::sim
