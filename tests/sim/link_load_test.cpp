#include "sim/link_load.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"

namespace scmp::sim {
namespace {

struct NullAgent final : RouterAgent {
  void handle(const Packet&, graph::NodeId) override {}
};

class LinkLoadTest : public ::testing::Test {
 protected:
  LinkLoadTest() : g_(test::line(4)), net_(g_, queue_) {
    for (graph::NodeId v = 0; v < g_.num_nodes(); ++v) net_.attach(v, &agent_);
  }
  graph::Graph g_;
  EventQueue queue_;
  Network net_;
  NullAgent agent_;
};

TEST_F(LinkLoadTest, IdleNetworkHasZeroLoads) {
  EXPECT_EQ(max_link_load(net_), 0u);
  for (const auto& l : link_loads(net_)) EXPECT_EQ(l.bytes, 0u);
  EXPECT_EQ(link_loads(net_).size(), 3u);  // one entry per undirected link
}

TEST_F(LinkLoadTest, BytesAccumulatePerLink) {
  Packet p;
  p.size_bytes = 100;
  net_.send_link(0, 1, p);
  net_.send_link(1, 0, p);  // reverse direction counts toward the same link
  net_.send_link(1, 2, p);
  queue_.run_all();
  EXPECT_EQ(net_.bytes_on_link(0, 1), 200u);
  EXPECT_EQ(net_.bytes_on_link(1, 0), 200u);  // symmetric accessor
  EXPECT_EQ(net_.bytes_on_link(1, 2), 100u);
  EXPECT_EQ(net_.bytes_on_link(2, 3), 0u);
  EXPECT_EQ(max_link_load(net_), 200u);
}

TEST_F(LinkLoadTest, LoadsSortedDescending) {
  Packet p;
  p.size_bytes = 50;
  net_.send_link(2, 3, p);
  net_.send_link(2, 3, p);
  net_.send_link(0, 1, p);
  queue_.run_all();
  const auto loads = link_loads(net_);
  EXPECT_EQ(loads[0].u, 2);
  EXPECT_EQ(loads[0].v, 3);
  EXPECT_EQ(loads[0].bytes, 100u);
  EXPECT_EQ(loads[1].bytes, 50u);
  EXPECT_EQ(loads[2].bytes, 0u);
}

TEST_F(LinkLoadTest, UnicastLoadsEveryHop) {
  Packet p;
  p.size_bytes = 10;
  p.dst = 3;
  net_.send_unicast(0, p);
  queue_.run_all();
  EXPECT_EQ(net_.bytes_on_link(0, 1), 10u);
  EXPECT_EQ(net_.bytes_on_link(1, 2), 10u);
  EXPECT_EQ(net_.bytes_on_link(2, 3), 10u);
}

TEST_F(LinkLoadTest, AdjustedCostsScaleWithLoad) {
  Packet p;
  p.size_bytes = 100;
  net_.send_link(0, 1, p);
  net_.send_link(1, 2, p);
  net_.send_link(1, 2, p);
  queue_.run_all();
  const graph::Graph adj = utilization_adjusted(g_, net_, /*alpha=*/1.0);
  // Busiest link (1-2, 200 bytes): cost * (1 + 1.0) = 2. Half-loaded link
  // (0-1): cost * 1.5. Idle link (2-3): unchanged.
  EXPECT_DOUBLE_EQ(adj.edge(1, 2)->cost, 2.0);
  EXPECT_DOUBLE_EQ(adj.edge(0, 1)->cost, 1.5);
  EXPECT_DOUBLE_EQ(adj.edge(2, 3)->cost, 1.0);
  // Delays and structure untouched.
  EXPECT_DOUBLE_EQ(adj.edge(1, 2)->delay, 1.0);
  EXPECT_EQ(adj.num_edges(), g_.num_edges());
}

TEST_F(LinkLoadTest, AlphaZeroIsIdentity) {
  Packet p;
  net_.send_link(0, 1, p);
  queue_.run_all();
  const graph::Graph adj = utilization_adjusted(g_, net_, 0.0);
  for (graph::NodeId u = 0; u < g_.num_nodes(); ++u)
    for (const auto& nb : g_.neighbors(u))
      EXPECT_DOUBLE_EQ(adj.edge(u, nb.to)->cost, nb.attr.cost);
}

TEST_F(LinkLoadTest, IdleNetworkAdjustmentIsIdentity) {
  const graph::Graph adj = utilization_adjusted(g_, net_, 5.0);
  EXPECT_DOUBLE_EQ(adj.edge(0, 1)->cost, 1.0);
}

TEST_F(LinkLoadTest, TransmitCallbackSeesEveryCrossing) {
  int calls = 0;
  net_.add_transmit_observer(
      [&](graph::NodeId from, graph::NodeId to, const Packet&, SimTime) {
        ++calls;
        EXPECT_TRUE(g_.has_edge(from, to));
      });
  Packet p;
  p.dst = 3;
  net_.send_unicast(0, p);
  queue_.run_all();
  EXPECT_EQ(calls, 3);
}

}  // namespace
}  // namespace scmp::sim
