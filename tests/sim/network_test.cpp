#include "sim/network.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"

namespace scmp::sim {
namespace {

struct RecordingAgent final : RouterAgent {
  std::vector<std::pair<Packet, graph::NodeId>> received;
  void handle(const Packet& pkt, graph::NodeId from) override {
    received.emplace_back(pkt, from);
  }
};

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : g_(test::line(4)), net_(g_, queue_) {
    for (graph::NodeId v = 0; v < g_.num_nodes(); ++v)
      net_.attach(v, &agents_[static_cast<std::size_t>(v)]);
  }

  graph::Graph g_;
  EventQueue queue_;
  Network net_;
  RecordingAgent agents_[4];
};

TEST_F(NetworkTest, SendLinkDeliversToNeighborAgent) {
  Packet p;
  p.type = PacketType::kJoin;
  net_.send_link(0, 1, p);
  queue_.run_all();
  ASSERT_EQ(agents_[1].received.size(), 1u);
  EXPECT_EQ(agents_[1].received[0].second, 0);
  EXPECT_EQ(agents_[1].received[0].first.type, PacketType::kJoin);
  EXPECT_TRUE(agents_[0].received.empty());
}

TEST_F(NetworkTest, LinkDelayIsApplied) {
  Packet p;  // default control packet: 64 bytes
  double arrival = -1.0;
  net_.send_link(0, 1, p);
  queue_.run_all();
  arrival = queue_.now();
  // line() edges have delay 1 unit = 1e-6 s plus 64B/1Gbps = 5.12e-7 s tx.
  EXPECT_NEAR(arrival, 1e-6 + 5.12e-7, 1e-12);
}

TEST_F(NetworkTest, UnicastSkipsIntermediateAgents) {
  Packet p;
  p.type = PacketType::kLeave;
  p.dst = 3;
  net_.send_unicast(0, p);
  queue_.run_all();
  EXPECT_TRUE(agents_[1].received.empty());
  EXPECT_TRUE(agents_[2].received.empty());
  ASSERT_EQ(agents_[3].received.size(), 1u);
  EXPECT_EQ(agents_[3].received[0].second, 2);  // last hop
}

TEST_F(NetworkTest, UnicastToSelfDelivers) {
  Packet p;
  p.dst = 2;
  net_.send_unicast(2, p);
  queue_.run_all();
  ASSERT_EQ(agents_[2].received.size(), 1u);
  EXPECT_EQ(agents_[2].received[0].second, graph::kInvalidNode);
}

TEST_F(NetworkTest, OverheadClassifiesDataVsProtocol) {
  Packet data;
  data.type = PacketType::kData;
  net_.send_link(0, 1, data);
  Packet ctrl;
  ctrl.type = PacketType::kPrune;
  net_.send_link(0, 1, ctrl);
  queue_.run_all();
  // line() edges have cost 1.
  EXPECT_DOUBLE_EQ(net_.stats().data_overhead, 1.0);
  EXPECT_DOUBLE_EQ(net_.stats().protocol_overhead, 1.0);
  EXPECT_EQ(net_.stats().data_link_crossings, 1u);
  EXPECT_EQ(net_.stats().protocol_link_crossings, 1u);
}

TEST_F(NetworkTest, UnicastAccountsEveryHop) {
  Packet p;
  p.type = PacketType::kJoin;
  p.dst = 3;
  net_.send_unicast(0, p);
  queue_.run_all();
  EXPECT_DOUBLE_EQ(net_.stats().protocol_overhead, 3.0);  // 3 links crossed
}

TEST_F(NetworkTest, EncapCountsAsData) {
  Packet p;
  p.type = PacketType::kDataEncap;
  p.dst = 2;
  net_.send_unicast(0, p);
  queue_.run_all();
  EXPECT_DOUBLE_EQ(net_.stats().data_overhead, 2.0);
  EXPECT_DOUBLE_EQ(net_.stats().protocol_overhead, 0.0);
}

TEST_F(NetworkTest, InjectDeliversLocally) {
  Packet p;
  net_.inject(2, p);
  queue_.run_all();
  ASSERT_EQ(agents_[2].received.size(), 1u);
  EXPECT_EQ(agents_[2].received[0].second, graph::kInvalidNode);
  EXPECT_DOUBLE_EQ(net_.stats().data_overhead, 0.0);  // no link crossed
}

TEST_F(NetworkTest, FifoSerializesSameLink) {
  // Two packets queued back-to-back share the link: the second's arrival is
  // delayed by one transmission time.
  Packet a, b;
  net_.send_link(0, 1, a);
  net_.send_link(0, 1, b);
  queue_.run_all();
  // With 512 ns transmission each and 1 us propagation the second packet
  // arrives at 2 * 512 ns + 1 us.
  EXPECT_EQ(agents_[1].received.size(), 2u);
  EXPECT_NEAR(queue_.now(), 2 * 5.12e-7 + 1e-6, 1e-12);
}

TEST_F(NetworkTest, DeliveryCallbackAndMaxDelay) {
  Packet p;
  p.type = PacketType::kData;
  p.created_at = 0.0;
  int calls = 0;
  net_.set_delivery_callback(
      [&](const Packet&, graph::NodeId member, SimTime) {
        ++calls;
        EXPECT_EQ(member, 1);
      });
  net_.send_link(0, 1, p);
  queue_.run_all();
  net_.report_delivery(agents_[1].received[0].first, 1);
  EXPECT_EQ(calls, 1);
  EXPECT_GT(net_.stats().max_end_to_end_delay, 0.0);
  EXPECT_EQ(net_.stats().deliveries, 1u);
}

TEST_F(NetworkTest, UidsAreUnique) {
  EXPECT_NE(net_.next_uid(), net_.next_uid());
}

TEST_F(NetworkTest, SendOverMissingLinkIsDropped) {
  Packet p;
  net_.send_link(0, 2, p);  // no 0-2 edge on the line topology
  queue_.run_all();
  EXPECT_EQ(net_.stats().no_link_drops, 1u);
  EXPECT_TRUE(agents_[2].received.empty());
  EXPECT_DOUBLE_EQ(net_.stats().protocol_overhead, 0.0);
}

TEST_F(NetworkTest, QueueDroppedPacketAccruesNoOverhead) {
  // Regression: overhead used to be accounted before the drop-tail admission
  // check, so packets that never crossed the link still inflated the
  // overhead metrics. With a 1-deep queue the second and third back-to-back
  // sends are dropped and must leave no trace in the counters.
  net_.set_queue_limit(1);
  Packet a, b, c;
  a.type = PacketType::kData;
  b.type = PacketType::kData;
  c.type = PacketType::kPrune;
  net_.send_link(0, 1, a);  // admitted: queue was empty
  net_.send_link(0, 1, b);  // drop-tail: a is still in transmission
  net_.send_link(0, 1, c);  // drop-tail
  queue_.run_all();
  EXPECT_EQ(net_.stats().queue_drops, 2u);
  ASSERT_EQ(agents_[1].received.size(), 1u);
  EXPECT_DOUBLE_EQ(net_.stats().data_overhead, 1.0);  // only packet a
  EXPECT_EQ(net_.stats().data_link_crossings, 1u);
  EXPECT_DOUBLE_EQ(net_.stats().protocol_overhead, 0.0);
  EXPECT_EQ(net_.stats().protocol_link_crossings, 0u);
  EXPECT_EQ(net_.bytes_on_link(0, 1), a.size_bytes);
}

TEST_F(NetworkTest, FailLinkReconvergesRouting) {
  // Failing 1-2 on the line would disconnect it; use a ring instead.
  graph::Graph ring(4);
  ring.add_edge(0, 1, 1, 1);
  ring.add_edge(1, 2, 1, 1);
  ring.add_edge(2, 3, 1, 1);
  ring.add_edge(3, 0, 1, 1);
  EventQueue q;
  Network net(ring, q);
  RecordingAgent agents[4];
  for (graph::NodeId v = 0; v < 4; ++v) net.attach(v, &agents[v]);

  EXPECT_EQ(net.routing().next_hop(0, 2), 1);  // tie-break: smaller id
  net.fail_link(1, 2);
  EXPECT_FALSE(net.graph().has_edge(1, 2));
  EXPECT_EQ(net.routing().next_hop(0, 2), 3);  // rerouted the long way

  Packet p;
  p.dst = 2;
  net.send_unicast(1, p);
  q.run_all();
  ASSERT_EQ(agents[2].received.size(), 1u);  // via 1-0-3-2
  EXPECT_EQ(agents[2].received[0].second, 3);
}

TEST_F(NetworkTest, FailLinkPreservesByteCounters) {
  graph::Graph ring(4);
  ring.add_edge(0, 1, 1, 1);
  ring.add_edge(1, 2, 1, 1);
  ring.add_edge(2, 3, 1, 1);
  ring.add_edge(3, 0, 1, 1);
  EventQueue q;
  Network net(ring, q);
  RecordingAgent agent;
  for (graph::NodeId v = 0; v < 4; ++v) net.attach(v, &agent);
  Packet p;
  p.size_bytes = 77;
  net.send_link(0, 1, p);
  q.run_all();
  net.fail_link(2, 3);
  EXPECT_EQ(net.bytes_on_link(0, 1), 77u);
}

TEST(NetworkDeath, FailLinkRejectsDisconnection) {
  const auto g = test::line(4);
  EventQueue q;
  Network net(g, q);
  EXPECT_DEATH(net.fail_link(1, 2), "Precondition");
}

TEST(Network, PacketPoolRecyclesDeliveredPackets) {
  const auto g = test::line(3);
  EventQueue q;
  Network net(g, q);
  RecordingAgent a0;
  RecordingAgent a2;
  net.attach(0, &a0);
  net.attach(2, &a2);
  // Delivered packets park on the pool; a later clone reuses one.
  Packet p;
  p.type = PacketType::kData;
  p.dst = 2;
  p.path = {0, 1, 2};
  net.send_unicast(0, std::move(p));
  q.run_all();
  EXPECT_EQ(net.packet_pool().free_count(), 1u);
  Packet tmpl;
  tmpl.type = PacketType::kData;
  tmpl.group = 7;
  tmpl.payload = {1, 2, 3};
  const Packet clone = net.clone_packet(tmpl);
  EXPECT_EQ(net.packet_pool().free_count(), 0u);  // recycled, not fresh
  EXPECT_EQ(clone.group, 7);
  EXPECT_EQ(clone.payload, tmpl.payload);
  EXPECT_TRUE(clone.path.empty());
}

TEST(Network, PacketPoolRecyclesDroppedPackets) {
  const auto g = test::line(3);
  EventQueue q;
  Network net(g, q);
  RecordingAgent a1;
  net.attach(1, &a1);
  net.set_drop_filter([](graph::NodeId, graph::NodeId, const Packet&) {
    return true;
  });
  Packet p;
  p.type = PacketType::kData;
  net.send_link(0, 1, std::move(p));
  q.run_all();
  EXPECT_EQ(net.stats().injected_drops, 1u);
  EXPECT_EQ(net.packet_pool().free_count(), 1u);
}

}  // namespace
}  // namespace scmp::sim
