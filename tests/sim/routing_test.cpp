#include "sim/routing.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"

namespace scmp::sim {
namespace {

TEST(UnicastRouting, NextHopOnLine) {
  const auto g = test::line(4);
  const UnicastRouting r(g);
  EXPECT_EQ(r.next_hop(0, 3), 1);
  EXPECT_EQ(r.next_hop(1, 3), 2);
  EXPECT_EQ(r.next_hop(3, 0), 2);
  EXPECT_EQ(r.next_hop(2, 2), 2);  // self
}

TEST(UnicastRouting, DistancesMatchDijkstra) {
  const auto g = test::diamond();
  const UnicastRouting r(g);
  EXPECT_DOUBLE_EQ(r.distance(0, 3), 2.0);
  EXPECT_DOUBLE_EQ(r.distance(3, 0), 2.0);
  EXPECT_EQ(r.next_hop(0, 3), 1);  // delay-shortest route
}

TEST(UnicastRouting, RpfNeighborIsTowardSource) {
  const auto g = test::line(5);
  const UnicastRouting r(g);
  EXPECT_EQ(r.rpf_neighbor(4, 0), 3);
  EXPECT_EQ(r.rpf_neighbor(1, 0), 0);
}

class RoutingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoutingProperty, NextHopChainsReachDestination) {
  const auto topo = test::random_topology(GetParam(), 30);
  const graph::Graph& g = topo.graph;
  const UnicastRouting r(g);
  for (graph::NodeId s = 0; s < g.num_nodes(); s += 3) {
    for (graph::NodeId d = 0; d < g.num_nodes(); d += 2) {
      graph::NodeId cur = s;
      int hops = 0;
      while (cur != d) {
        const graph::NodeId next = r.next_hop(cur, d);
        ASSERT_TRUE(g.has_edge(cur, next) || cur == next);
        ASSERT_NE(next, cur);  // progress
        cur = next;
        ASSERT_LE(++hops, g.num_nodes());
      }
    }
  }
}

TEST_P(RoutingProperty, NextHopDecreasesDistance) {
  const auto topo = test::random_topology(GetParam(), 30);
  const graph::Graph& g = topo.graph;
  const UnicastRouting r(g);
  for (graph::NodeId s = 0; s < g.num_nodes(); ++s) {
    for (graph::NodeId d = 0; d < g.num_nodes(); ++d) {
      if (s == d) continue;
      const graph::NodeId next = r.next_hop(s, d);
      const graph::EdgeAttr* e = g.edge(s, next);
      ASSERT_NE(e, nullptr);
      EXPECT_NEAR(r.distance(s, d), e->delay + r.distance(next, d), 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoutingProperty,
                         ::testing::Values(1, 13, 222, 3456));

}  // namespace
}  // namespace scmp::sim
