// Fixture: a raw core send that bypasses the retransmission table.
void send_notify(int at, Packet pkt) {
  net().send_unicast(at, pkt);
}
