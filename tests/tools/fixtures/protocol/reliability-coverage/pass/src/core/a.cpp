// Fixture: the send wrapper arms the retransmission table — clean.
void send_control(int from, int to, Packet pkt) {
  pkt.req = next_req();
  retx_.arm(from, pkt.req, [=]() { net().send_link(from, to, pkt); });
  net().send_link(from, to, pkt);
}
