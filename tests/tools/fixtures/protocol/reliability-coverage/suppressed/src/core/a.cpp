// Fixture: the raw send carries a reviewed fire-and-forget annotation.
void send_notify(int at, Packet pkt) {
  // protocol: fire-and-forget(best-effort notification; the periodic
  // reconciliation pass repairs any loss)
  net().send_unicast(at, pkt);
}
