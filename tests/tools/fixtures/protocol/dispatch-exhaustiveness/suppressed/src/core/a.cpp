// Fixture: the silent default carries a reviewed allow annotation.
void send_all(Net& n) {
  Packet p;
  p.type = PacketType::kJoin;
  n.post(p);
  p.type = PacketType::kLeave;
  n.post(p);
}

void handle_packet(const Packet& pkt) {
  switch (pkt.type) {
    case PacketType::kJoin:
      on_join(pkt);
      break;
    case PacketType::kLeave:
      on_leave(pkt);
      break;
    // protocol: allow(foreign traffic is counted by the harness around this
    // fixture dispatcher)
    default:
      break;
  }
}
