#pragma once
int graph_util();
