#pragma once
#include "core/b.hpp"
int graph_util();
