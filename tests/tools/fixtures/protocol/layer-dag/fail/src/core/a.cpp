#include "graph/a.hpp"

int use_graph() { return graph_util(); }
