#pragma once
int core_helper();
