// Fixture: an annotation left behind after the finding it excused was fixed.
// protocol: allow(left over after the switch was made exhaustive)
void noop() {}
