// Fixture: kJoin is sent but no handle* function ever matches it.
void send_one(Net& n) {
  Packet p;
  p.type = PacketType::kJoin;
  n.post(p);
}
