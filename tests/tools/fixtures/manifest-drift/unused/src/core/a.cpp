// determinism: allow(nothing here needs suppressing any more)
int plain(int a, int b) { return a + b; }
