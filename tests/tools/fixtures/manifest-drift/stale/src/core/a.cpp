int plain(int a, int b) { return a + b; }
