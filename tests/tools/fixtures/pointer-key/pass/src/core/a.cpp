#include <map>

struct Node {
  int id;
};

// Pointer *values* are fine; only pointer keys order the container.
std::map<int, Node*> by_id;
