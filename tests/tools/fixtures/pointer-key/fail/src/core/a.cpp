#include <map>

struct Node {
  int id;
};

std::map<Node*, int> by_address;
