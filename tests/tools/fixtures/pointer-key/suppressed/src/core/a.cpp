#include <map>

struct Node {
  int id;
};

// determinism: allow(lookup only; nothing iterates or tie-breaks on it)
std::map<Node*, int> by_address;
