#include <unordered_map>

int sum_unordered() {
  std::unordered_map<int, int> weights;
  weights[2] = 3;
  int total = 0;
  // determinism: allow(sum is commutative; iteration order cannot change it)
  for (const auto& [k, v] : weights) total += v;
  return total;
}
