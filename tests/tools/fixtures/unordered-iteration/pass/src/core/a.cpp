#include <map>

int sum_ordered() {
  std::map<int, int> weights;
  weights[2] = 3;
  int total = 0;
  for (const auto& [k, v] : weights) total += v;
  return total;
}
