#include <unordered_map>

int sum_unordered() {
  std::unordered_map<int, int> weights;
  weights[2] = 3;
  int total = 0;
  for (const auto& [k, v] : weights) total += v;
  return total;
}
