bool tie(double cost, double best) {
  // determinism: allow(both sides computed by the same expression shape)
  return cost == best;
}
