bool same_id(int a, int b) { return a == b; }

// `cost` is a double elsewhere in the tree, but here it is an int: the rule
// resolves types per file (plus paired header), so this must not flag.
bool same_cost(int cost, int other) { return cost == other; }
