bool tie(double cost, double best) { return cost == best; }
