#include <thread>

int worker_count() {
  // determinism: allow(partitioning only; results identical at any count)
  return static_cast<int>(std::thread::hardware_concurrency());
}
