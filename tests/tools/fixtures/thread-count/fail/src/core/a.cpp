#include <thread>

int worker_count() {
  return static_cast<int>(std::thread::hardware_concurrency());
}
