int worker_count(int requested) { return requested > 0 ? requested : 1; }
