#include <chrono>

double seconds_now() {
  const auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}
