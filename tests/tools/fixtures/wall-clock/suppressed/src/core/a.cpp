#include <chrono>

double seconds_now() {
  // determinism: allow(wall-time reporting only; no result depends on it)
  const auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}
