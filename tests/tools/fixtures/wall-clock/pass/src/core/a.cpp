double next_time(double now, double step) { return now + step; }
