#!/usr/bin/env python3
"""Golden-fixture tests for tools/determinism_lint.py.

Each fixture under tests/tools/fixtures/<rule>/ is a miniature repository
(src/core/a.cpp + manifest.json) exercising one linter rule three ways:

  pass        clean code: the linter must exit 0 and report nothing
  fail        a violation with no annotation: exit 1, the finding names the
              rule and the offending file
  suppressed  the same violation carrying a `determinism: allow` annotation
              with a matching manifest entry: exit 0

The manifest-drift fixtures pin the cross-check itself: a manifest entry
with no live annotation (`stale`) and an annotation suppressing nothing
(`unused`) must both fail.

Runs under ctest (see tests/CMakeLists.txt); needs only the stdlib.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent.parent
LINTER = REPO / "tools" / "determinism_lint.py"
FIXTURES = pathlib.Path(__file__).resolve().parent / "fixtures"

RULES = ("unordered-iteration", "pointer-key", "wall-clock", "thread-count",
         "float-equality")

failures: list[str] = []


def run_case(case_dir: pathlib.Path) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(LINTER),
         "--root", str(case_dir),
         "--manifest", str(case_dir / "manifest.json"),
         "--scan", "src/core"],
        capture_output=True, text=True, check=False)


def expect(case: str, ok: bool, detail: str):
    tag = "ok  " if ok else "FAIL"
    print(f"{tag} {case}: {detail}")
    if not ok:
        failures.append(case)


def check_rule(rule: str):
    base = FIXTURES / rule

    r = run_case(base / "pass")
    expect(f"{rule}/pass", r.returncode == 0 and "clean" in r.stdout,
           f"exit={r.returncode}")

    r = run_case(base / "fail")
    flagged = f" {rule}: " in r.stdout and "src/core/a.cpp" in r.stdout
    expect(f"{rule}/fail", r.returncode == 1 and flagged,
           f"exit={r.returncode} flagged={flagged}")
    wrong_rule = any(f" {other}: " in r.stdout
                     for other in RULES if other != rule)
    expect(f"{rule}/fail-only-this-rule", not wrong_rule,
           f"other rules fired: {wrong_rule}")

    r = run_case(base / "suppressed")
    expect(f"{rule}/suppressed", r.returncode == 0 and "clean" in r.stdout,
           f"exit={r.returncode}")


def check_drift():
    r = run_case(FIXTURES / "manifest-drift" / "stale")
    expect("manifest-drift/stale",
           r.returncode == 1 and "stale entry" in r.stdout,
           f"exit={r.returncode}")

    r = run_case(FIXTURES / "manifest-drift" / "unused")
    expect("manifest-drift/unused",
           r.returncode == 1 and "suppresses no finding" in r.stdout,
           f"exit={r.returncode}")


def main() -> int:
    for rule in RULES:
        check_rule(rule)
    check_drift()
    if failures:
        print(f"\n{len(failures)} fixture case(s) failed: "
              f"{', '.join(failures)}", file=sys.stderr)
        return 1
    print("\nall fixture cases passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
