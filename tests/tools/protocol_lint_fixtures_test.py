#!/usr/bin/env python3
"""Golden-fixture tests for tools/protocol_lint.py.

Each fixture under tests/tools/fixtures/protocol/<rule>/ is a miniature
repository (src/ sources + manifest.json + layers.json) exercising one
linter rule three ways:

  pass        clean code: the linter must exit 0 and report nothing
  fail        a violation with no suppression: exit 1, the finding names the
              rule and the offending file
  suppressed  the same violation carrying the rule's suppression — a
              `protocol: allow` / `protocol: fire-and-forget` annotation
              with a matching manifest entry, an unpaired_types entry
              (handler-coverage), or a layer_exceptions entry (layer-dag):
              exit 0

The layer-dag fail case is the acceptance-criteria back edge: src/graph/
including src/core/. The manifest-drift fixtures pin the cross-check
itself: a manifest entry with no live annotation (`stale`) and an
annotation suppressing nothing (`unused`) must both fail.

Runs under ctest (see tests/CMakeLists.txt); needs only the stdlib.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent.parent
LINTER = REPO / "tools" / "protocol_lint.py"
FIXTURES = pathlib.Path(__file__).resolve().parent / "fixtures" / "protocol"

# rule -> the file its fail-case finding must name.
RULES = {
    "dispatch-exhaustiveness": "src/core/a.cpp",
    "handler-coverage": "src/core/a.cpp",
    "reliability-coverage": "src/core/a.cpp",
    "layer-dag": "src/graph/a.hpp",
}

failures: list[str] = []


def run_case(case_dir: pathlib.Path) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(LINTER),
         "--root", str(case_dir),
         "--manifest", str(case_dir / "manifest.json"),
         "--layers", str(case_dir / "layers.json"),
         "--scan", "src/core"],
        capture_output=True, text=True, check=False)


def expect(case: str, ok: bool, detail: str):
    tag = "ok  " if ok else "FAIL"
    print(f"{tag} {case}: {detail}")
    if not ok:
        failures.append(case)


def check_rule(rule: str, flagged_file: str):
    base = FIXTURES / rule

    r = run_case(base / "pass")
    expect(f"{rule}/pass", r.returncode == 0 and "clean" in r.stdout,
           f"exit={r.returncode}")

    r = run_case(base / "fail")
    flagged = f" {rule}: " in r.stdout and flagged_file in r.stdout
    expect(f"{rule}/fail", r.returncode == 1 and flagged,
           f"exit={r.returncode} flagged={flagged}")
    wrong_rule = any(f" {other}: " in r.stdout
                     for other in RULES if other != rule)
    expect(f"{rule}/fail-only-this-rule", not wrong_rule,
           f"other rules fired: {wrong_rule}")

    r = run_case(base / "suppressed")
    expect(f"{rule}/suppressed", r.returncode == 0 and "clean" in r.stdout,
           f"exit={r.returncode}")


def check_drift():
    r = run_case(FIXTURES / "manifest-drift" / "stale")
    expect("manifest-drift/stale",
           r.returncode == 1 and "stale entry" in r.stdout,
           f"exit={r.returncode}")

    r = run_case(FIXTURES / "manifest-drift" / "unused")
    expect("manifest-drift/unused",
           r.returncode == 1 and "suppresses no finding" in r.stdout,
           f"exit={r.returncode}")


def main() -> int:
    for rule, flagged_file in RULES.items():
        check_rule(rule, flagged_file)
    check_drift()
    if failures:
        print(f"\n{len(failures)} fixture case(s) failed: "
              f"{', '.join(failures)}", file=sys.stderr)
        return 1
    print("\nall fixture cases passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
