#include "fabric/ccn_circuit.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace scmp::fabric {
namespace {

TEST(CcnCircuit, EmptyConfigurationPassesThrough) {
  CcnCircuit c(8);
  c.configure({});
  EXPECT_EQ(c.element_count(), 0);
  EXPECT_EQ(c.stage_count(), 0);
  for (int l = 0; l < 8; ++l) EXPECT_EQ(c.leader_of(l), l);
}

TEST(CcnCircuit, PairBlockUsesOneElement) {
  CcnCircuit c(8);
  c.configure({{2, 2}});
  ASSERT_EQ(c.element_count(), 1);
  EXPECT_EQ(c.elements()[0].from_line, 3);
  EXPECT_EQ(c.elements()[0].into_line, 2);
  EXPECT_EQ(c.leader_of(3), 2);
  EXPECT_EQ(c.leader_of(2), 2);
}

TEST(CcnCircuit, BlockNeedsLenMinusOneElements) {
  // A binary reduction of k signals always uses exactly k-1 combiners.
  for (int len = 1; len <= 16; ++len) {
    CcnCircuit c(16);
    c.configure({{0, len}});
    EXPECT_EQ(c.element_count(), len - 1) << "len " << len;
    // ceil(log2(len)) stages.
    int stages = 0, span = 1;
    while (span < len) {
      span *= 2;
      ++stages;
    }
    EXPECT_EQ(c.stage_count(), stages) << "len " << len;
  }
}

TEST(CcnCircuit, PropagateMergesWholeBlockToLeader) {
  CcnCircuit c(8);
  c.configure({{1, 5}});
  std::vector<int> inputs(8, -1);
  for (int l = 1; l <= 5; ++l) inputs[static_cast<std::size_t>(l)] = 100 + l;
  const auto out = c.propagate(inputs);
  EXPECT_EQ(out[1], (std::vector<int>{1, 2, 3, 4, 5}));
  for (int l = 2; l <= 5; ++l)
    EXPECT_TRUE(out[static_cast<std::size_t>(l)].empty());
}

TEST(CcnCircuit, IdleLinesCarryNothing) {
  CcnCircuit c(4);
  c.configure({{0, 4}});
  std::vector<int> inputs{7, -1, -1, 9};  // only lines 0 and 3 active
  const auto out = c.propagate(inputs);
  EXPECT_EQ(out[0], (std::vector<int>{0, 3}));
}

TEST(CcnCircuit, MatchesAbstractCcnOnRandomBlocks) {
  Rng rng(55);
  for (int trial = 0; trial < 25; ++trial) {
    const int n = 32;
    CcnCircuit circuit(n);
    ConnectionComponentNetwork abstract(n);
    // Random disjoint contiguous blocks.
    std::vector<Block> blocks;
    int pos = 0;
    while (pos < n) {
      const int len = static_cast<int>(rng.uniform_int(1, 5));
      if (pos + len > n) break;
      if (rng.chance(0.7)) blocks.push_back({pos, len});
      pos += len + static_cast<int>(rng.uniform_int(0, 2));
    }
    circuit.configure(blocks);
    abstract.configure(blocks);
    for (int l = 0; l < n; ++l)
      ASSERT_EQ(circuit.leader_of(l), abstract.leader_of(l))
          << "trial " << trial << " line " << l;

    // Full propagation: every block's active lines land on its leader, and
    // nothing crosses between blocks.
    std::vector<int> inputs(static_cast<std::size_t>(n), -1);
    for (int l = 0; l < n; ++l)
      if (rng.chance(0.8)) inputs[static_cast<std::size_t>(l)] = l;
    const auto out = circuit.propagate(inputs);
    for (const Block& b : blocks) {
      std::vector<int> expect;
      for (int i = 0; i < b.length; ++i)
        if (inputs[static_cast<std::size_t>(b.start + i)] != -1)
          expect.push_back(b.start + i);
      ASSERT_EQ(out[static_cast<std::size_t>(b.start)], expect);
    }
  }
}

TEST(CcnCircuit, StageDepthMatchesAbstractMergeDepth) {
  CcnCircuit circuit(16);
  ConnectionComponentNetwork abstract(16);
  const std::vector<Block> blocks{{0, 7}, {8, 8}};
  circuit.configure(blocks);
  abstract.configure(blocks);
  EXPECT_EQ(circuit.stage_count(), 3);           // ceil(log2(8))
  EXPECT_EQ(abstract.merge_depth(0), 3);         // ceil(log2(7))
  EXPECT_EQ(abstract.merge_depth(8), 3);
}

TEST(CcnCircuitDeath, RejectsOverlappingBlocks) {
  CcnCircuit c(8);
  EXPECT_DEATH(c.configure({{0, 4}, {3, 2}}), "Precondition");
}

}  // namespace
}  // namespace scmp::fabric
