#include "fabric/ccn.hpp"

#include <gtest/gtest.h>

namespace scmp::fabric {
namespace {

TEST(Ccn, UnconfiguredPassesThrough) {
  ConnectionComponentNetwork ccn(8);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(ccn.leader_of(i), i);
    EXPECT_EQ(ccn.merge_depth(i), 0);
  }
  EXPECT_TRUE(ccn.verify_isolation());
}

TEST(Ccn, SingleBlockMerges) {
  ConnectionComponentNetwork ccn(8);
  ccn.configure({{2, 3}});
  EXPECT_EQ(ccn.leader_of(2), 2);
  EXPECT_EQ(ccn.leader_of(3), 2);
  EXPECT_EQ(ccn.leader_of(4), 2);
  EXPECT_EQ(ccn.leader_of(5), 5);  // outside the block
  EXPECT_TRUE(ccn.verify_isolation());
}

TEST(Ccn, MultipleDisjointBlocks) {
  ConnectionComponentNetwork ccn(8);
  ccn.configure({{0, 2}, {4, 4}});
  EXPECT_EQ(ccn.leader_of(1), 0);
  EXPECT_EQ(ccn.leader_of(7), 4);
  EXPECT_EQ(ccn.leader_of(2), 2);
  EXPECT_TRUE(ccn.verify_isolation());
}

TEST(Ccn, MergeDepthIsLogOfBlockSize) {
  ConnectionComponentNetwork ccn(16);
  ccn.configure({{0, 1}, {1, 2}, {3, 4}, {7, 5}});
  EXPECT_EQ(ccn.merge_depth(0), 0);
  EXPECT_EQ(ccn.merge_depth(1), 1);
  EXPECT_EQ(ccn.merge_depth(3), 2);
  EXPECT_EQ(ccn.merge_depth(7), 3);  // ceil(log2(5))
}

TEST(Ccn, ReconfigureClearsPrevious) {
  ConnectionComponentNetwork ccn(8);
  ccn.configure({{0, 8}});
  ccn.configure({{4, 2}});
  EXPECT_EQ(ccn.leader_of(0), 0);
  EXPECT_EQ(ccn.leader_of(5), 4);
  EXPECT_TRUE(ccn.verify_isolation());
}

TEST(CcnDeath, RejectsOverlappingBlocks) {
  ConnectionComponentNetwork ccn(8);
  EXPECT_DEATH(ccn.configure({{0, 3}, {2, 2}}), "Precondition");
}

TEST(CcnDeath, RejectsOutOfRangeBlock) {
  ConnectionComponentNetwork ccn(8);
  EXPECT_DEATH(ccn.configure({{6, 3}}), "Precondition");
}

}  // namespace
}  // namespace scmp::fabric
