#include "fabric/mrouter_fabric.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/rng.hpp"

namespace scmp::fabric {
namespace {

TEST(MRouterFabric, SingleSessionSingleSource) {
  MRouterFabric fab(8);
  fab.configure({{1, {3}}});
  EXPECT_EQ(fab.group_of_input(3), 1);
  EXPECT_EQ(fab.group_of_input(0), -1);
  EXPECT_EQ(fab.route_cell(3), fab.output_port(1));
  EXPECT_TRUE(fab.verify_no_cross_group());
}

TEST(MRouterFabric, ManyToOneMerging) {
  // All three sources of group 5 must land on the same output port.
  MRouterFabric fab(8);
  fab.configure({{5, {0, 4, 7}}});
  const int out = fab.output_port(5);
  EXPECT_EQ(fab.route_cell(0), out);
  EXPECT_EQ(fab.route_cell(4), out);
  EXPECT_EQ(fab.route_cell(7), out);
  EXPECT_TRUE(fab.verify_no_cross_group());
}

TEST(MRouterFabric, SimultaneousManyToManySessions) {
  MRouterFabric fab(16);
  fab.configure({{1, {0, 5}}, {2, {1, 9, 13}}, {3, {2}}, {4, {3, 4, 6, 7}}});
  std::set<int> outputs;
  for (int group : {1, 2, 3, 4}) outputs.insert(fab.output_port(group));
  EXPECT_EQ(outputs.size(), 4u);  // distinct ports per group
  EXPECT_TRUE(fab.verify_no_cross_group());
}

TEST(MRouterFabric, FullCapacity) {
  // Every input port carries a source: 4 groups x 4 sources on 16 ports.
  MRouterFabric fab(16);
  std::vector<FabricSession> sessions;
  for (int group = 0; group < 4; ++group) {
    FabricSession s;
    s.group = group;
    for (int i = 0; i < 4; ++i) s.input_ports.push_back(group * 4 + i);
    sessions.push_back(s);
  }
  fab.configure(sessions);
  EXPECT_TRUE(fab.verify_no_cross_group());
}

TEST(MRouterFabric, ReconfigureReplacesSessions) {
  MRouterFabric fab(8);
  fab.configure({{1, {0, 1}}});
  fab.configure({{2, {6, 7}}});
  EXPECT_EQ(fab.group_of_input(0), -1);
  EXPECT_EQ(fab.group_of_input(6), 2);
  EXPECT_TRUE(fab.verify_no_cross_group());
}

TEST(MRouterFabric, LoadBalancingSpreadsPorts) {
  // Repeated single-group configurations should rotate across output ports
  // instead of reusing one.
  MRouterFabric fab(8);
  std::set<int> used;
  for (int round = 0; round < 8; ++round) {
    fab.configure({{round, {0, 1}}});
    used.insert(fab.output_port(round));
  }
  EXPECT_EQ(used.size(), 8u);
}

TEST(MRouterFabric, PortLoadAccumulates) {
  MRouterFabric fab(8);
  fab.configure({{1, {0, 1, 2}}});
  std::uint64_t total = 0;
  for (auto l : fab.port_load()) total += l;
  EXPECT_EQ(total, 3u);
}

TEST(MRouterFabric, PathDepthPositiveForMerged) {
  MRouterFabric fab(16);
  fab.configure({{1, {0, 1, 2, 3}}});
  EXPECT_GE(fab.path_depth(0), 2 * fab.pn().stage_count());
  EXPECT_GT(fab.path_depth(0), fab.path_depth(15));  // merged vs idle line
}

class FabricRandomSessions
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FabricRandomSessions, IsolationAlwaysHolds) {
  Rng rng(GetParam());
  MRouterFabric fab(64);
  for (int round = 0; round < 10; ++round) {
    // Random disjoint sessions over 64 ports.
    std::vector<int> ports(64);
    for (int i = 0; i < 64; ++i) ports[static_cast<std::size_t>(i)] = i;
    rng.shuffle(ports);
    std::vector<FabricSession> sessions;
    std::size_t pos = 0;
    const int groups = static_cast<int>(rng.uniform_int(1, 8));
    for (int group = 0; group < groups && pos < ports.size(); ++group) {
      FabricSession s;
      s.group = group;
      const auto take = static_cast<std::size_t>(rng.uniform_int(1, 6));
      for (std::size_t i = 0; i < take && pos < ports.size(); ++i)
        s.input_ports.push_back(ports[pos++]);
      sessions.push_back(std::move(s));
    }
    fab.configure(sessions);
    ASSERT_TRUE(fab.verify_no_cross_group()) << "round " << round;
    // Every session's sources agree on one output port.
    for (const auto& s : sessions) {
      const int out = fab.output_port(s.group);
      for (int p : s.input_ports) ASSERT_EQ(fab.route_cell(p), out);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FabricRandomSessions,
                         ::testing::Values(1, 7, 19, 101, 9999));

TEST(MRouterFabricDeath, RejectsDuplicateInputPort) {
  MRouterFabric fab(8);
  EXPECT_DEATH(fab.configure({{1, {0, 0}}}), "Precondition");
}

TEST(MRouterFabricDeath, RejectsSharedPortAcrossGroups) {
  MRouterFabric fab(8);
  EXPECT_DEATH(fab.configure({{1, {0}}, {2, {0}}}), "Precondition");
}

TEST(MRouterFabricDeath, RejectsDuplicateGroup) {
  MRouterFabric fab(8);
  EXPECT_DEATH(fab.configure({{1, {0}}, {1, {1}}}), "Precondition");
}

TEST(MRouterFabricDeath, RejectsUnknownGroupQuery) {
  MRouterFabric fab(8);
  EXPECT_DEATH(fab.output_port(42), "Precondition");
}

}  // namespace
}  // namespace scmp::fabric
