#include "fabric/benes.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "util/rng.hpp"

namespace scmp::fabric {
namespace {

std::vector<int> identity_perm(int n) {
  std::vector<int> p(static_cast<std::size_t>(n));
  std::iota(p.begin(), p.end(), 0);
  return p;
}

TEST(Benes, PowerOfTwoHelper) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(2));
  EXPECT_TRUE(is_power_of_two(256));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(3));
  EXPECT_FALSE(is_power_of_two(12));
}

TEST(Benes, StageAndSwitchCounts) {
  EXPECT_EQ(BenesNetwork(2).stage_count(), 1);
  EXPECT_EQ(BenesNetwork(4).stage_count(), 3);
  EXPECT_EQ(BenesNetwork(8).stage_count(), 5);
  EXPECT_EQ(BenesNetwork(8).switch_count(), 20);
  EXPECT_EQ(BenesNetwork(16).stage_count(), 7);
}

TEST(Benes, TwoPortBothSettings) {
  BenesNetwork net(2);
  net.route({0, 1});
  EXPECT_EQ(net.forward(0), 0);
  EXPECT_EQ(net.forward(1), 1);
  net.route({1, 0});
  EXPECT_EQ(net.forward(0), 1);
  EXPECT_EQ(net.forward(1), 0);
}

TEST(Benes, FourPortAllPermutations) {
  std::vector<int> perm = identity_perm(4);
  BenesNetwork net(4);
  do {
    net.route(perm);
    for (int i = 0; i < 4; ++i)
      ASSERT_EQ(net.forward(i), perm[static_cast<std::size_t>(i)]);
  } while (std::next_permutation(perm.begin(), perm.end()));
}

TEST(Benes, EightPortAllCyclicShifts) {
  BenesNetwork net(8);
  for (int shift = 0; shift < 8; ++shift) {
    std::vector<int> perm(8);
    for (int i = 0; i < 8; ++i)
      perm[static_cast<std::size_t>(i)] = (i + shift) % 8;
    net.route(perm);
    for (int i = 0; i < 8; ++i)
      ASSERT_EQ(net.forward(i), perm[static_cast<std::size_t>(i)]) << shift;
  }
}

TEST(Benes, ReverseAndBitReversal) {
  BenesNetwork net(16);
  std::vector<int> rev(16);
  for (int i = 0; i < 16; ++i) rev[static_cast<std::size_t>(i)] = 15 - i;
  net.route(rev);
  for (int i = 0; i < 16; ++i) ASSERT_EQ(net.forward(i), 15 - i);

  std::vector<int> bitrev(16);
  for (int i = 0; i < 16; ++i) {
    int r = 0;
    for (int b = 0; b < 4; ++b)
      if (i & (1 << b)) r |= 1 << (3 - b);
    bitrev[static_cast<std::size_t>(i)] = r;
  }
  net.route(bitrev);
  for (int i = 0; i < 16; ++i)
    ASSERT_EQ(net.forward(i), bitrev[static_cast<std::size_t>(i)]);
}

TEST(Benes, ReRouteReplacesConfiguration) {
  BenesNetwork net(8);
  net.route({1, 0, 3, 2, 5, 4, 7, 6});
  net.route(identity_perm(8));
  for (int i = 0; i < 8; ++i) ASSERT_EQ(net.forward(i), i);
}

class BenesRandomPerms
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(BenesRandomPerms, RealizesPermutation) {
  const int n = std::get<0>(GetParam());
  Rng rng(std::get<1>(GetParam()));
  BenesNetwork net(n);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<int> perm = identity_perm(n);
    rng.shuffle(perm);
    net.route(perm);
    for (int i = 0; i < n; ++i)
      ASSERT_EQ(net.forward(i), perm[static_cast<std::size_t>(i)])
          << "n=" << n << " trial=" << trial << " input=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, BenesRandomPerms,
    ::testing::Combine(::testing::Values(4, 8, 16, 32, 64, 128, 256),
                       ::testing::Values(1, 2, 3)));

class BenesParallel
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(BenesParallel, MatchesSerialRouting) {
  const int n = std::get<0>(GetParam());
  Rng rng(std::get<1>(GetParam()));
  BenesNetwork serial(n);
  BenesNetwork parallel(n);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<int> perm = identity_perm(n);
    rng.shuffle(perm);
    serial.route(perm);
    parallel.route_parallel(perm, /*parallel_depth=*/2);
    for (int i = 0; i < n; ++i) {
      ASSERT_EQ(parallel.forward(i), perm[static_cast<std::size_t>(i)]);
      ASSERT_EQ(parallel.forward(i), serial.forward(i));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, BenesParallel,
    ::testing::Combine(::testing::Values(8, 16, 64, 256),
                       ::testing::Values(5, 6)));

TEST(BenesParallel, DepthZeroIsSerial) {
  BenesNetwork net(16);
  std::vector<int> perm = identity_perm(16);
  std::reverse(perm.begin(), perm.end());
  net.route_parallel(perm, 0);
  for (int i = 0; i < 16; ++i) ASSERT_EQ(net.forward(i), 15 - i);
}

TEST(BenesDeath, RejectsNonPowerOfTwo) {
  EXPECT_DEATH(BenesNetwork(6), "Precondition");
}

TEST(BenesDeath, RejectsNonPermutation) {
  BenesNetwork net(4);
  EXPECT_DEATH(net.route({0, 0, 1, 2}), "Precondition");
}

TEST(BenesDeath, RejectsWrongSize) {
  BenesNetwork net(4);
  EXPECT_DEATH(net.route({0, 1}), "Precondition");
}

}  // namespace
}  // namespace scmp::fabric
