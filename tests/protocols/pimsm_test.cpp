#include "protocols/pimsm.hpp"

#include <gtest/gtest.h>

#include <map>

#include "helpers.hpp"

namespace scmp::proto {
namespace {

constexpr GroupId kGroup = 1;

class PimFixture {
 public:
  explicit PimFixture(graph::Graph graph, graph::NodeId rp = 0,
                      bool switchover = true)
      : g_(std::move(graph)), net_(g_, queue_), igmp_(queue_, g_.num_nodes()),
        proto_(net_, igmp_, switchover) {
    proto_.set_rp(kGroup, rp);
    net_.set_delivery_callback(
        [this](const sim::Packet& pkt, graph::NodeId member, sim::SimTime) {
          deliveries_[pkt.uid].push_back(member);
        });
  }

  std::vector<graph::NodeId> send_and_collect(graph::NodeId source) {
    const auto before = deliveries_.size();
    proto_.send_data(source, kGroup);
    queue_.run_all();
    if (deliveries_.size() == before) return {};
    auto got = deliveries_.rbegin()->second;
    std::sort(got.begin(), got.end());
    return got;
  }

  graph::Graph g_;
  sim::EventQueue queue_;
  sim::Network net_;
  igmp::IgmpDomain igmp_;
  PimSm proto_;
  std::map<std::uint64_t, std::vector<graph::NodeId>> deliveries_;
};

TEST(PimSm, StarJoinBuildsSharedTreeState) {
  PimFixture f(test::line(4));
  f.proto_.host_join(3, kGroup);
  f.queue_.run_all();
  EXPECT_TRUE(f.proto_.on_rp_tree(3, kGroup));
  EXPECT_TRUE(f.proto_.on_rp_tree(2, kGroup));
  EXPECT_TRUE(f.proto_.on_rp_tree(1, kGroup));
  EXPECT_TRUE(f.proto_.on_rp_tree(0, kGroup));  // the RP itself
}

TEST(PimSm, FirstPacketArrivesViaRp) {
  PimFixture f(test::line(5), /*rp=*/2);
  f.proto_.host_join(0, kGroup);
  f.queue_.run_all();
  // Source 4 registers to RP 2; data flows 4=>2 encapsulated, then 2->1->0.
  EXPECT_EQ(f.send_and_collect(4), (std::vector<graph::NodeId>{0}));
  EXPECT_EQ(f.net_.stats().data_link_crossings, 2u + 2u);
}

TEST(PimSm, SwitchoverEstablishesSourceTree) {
  PimFixture f(test::line(5), /*rp=*/2);
  f.proto_.host_join(0, kGroup);
  f.queue_.run_all();
  f.send_and_collect(4);  // triggers the (S,G) join at member 0
  EXPECT_TRUE(f.proto_.has_spt_state(0, kGroup, 4));
  EXPECT_TRUE(f.proto_.has_spt_state(1, kGroup, 4));  // transit on 0's SPT
  EXPECT_TRUE(f.proto_.has_spt_state(4, kGroup, 4));  // the source
}

TEST(PimSm, AfterSwitchoverDeliveryIsExactlyOnce) {
  PimFixture f(test::line(5), /*rp=*/2);
  f.proto_.host_join(0, kGroup);
  f.queue_.run_all();
  f.send_and_collect(4);
  for (int round = 0; round < 3; ++round)
    EXPECT_EQ(f.send_and_collect(4), (std::vector<graph::NodeId>{0}))
        << "round " << round;
}

TEST(PimSm, SwitchoverShortensDeliveryPath) {
  // Member and source adjacent, RP far away: after switchover the data path
  // collapses from source=>RP->member to source->member.
  PimFixture f(test::line(6), /*rp=*/0);
  f.proto_.host_join(4, kGroup);
  f.queue_.run_all();
  f.send_and_collect(5);  // first packet via RP at node 0
  const auto before = f.net_.stats().data_link_crossings;
  f.send_and_collect(5);
  const auto second = f.net_.stats().data_link_crossings - before;
  // Native 5->4 delivery is one crossing. Register-stop is not modelled, so
  // the register still unicasts 5=>0 (5 crossings) and the shared-tree copy
  // travels 0->1->2->3 before the one-hop (S,G,rpt) prune at router 3 stops
  // it (3 crossings): 9 total, versus 10 for the first, pre-switchover
  // packet (which also crossed 3->4).
  EXPECT_EQ(second, 1u + 5u + 3u);
  EXPECT_TRUE(f.proto_.has_spt_state(4, kGroup, 5));
}

TEST(PimSm, WithoutSwitchoverStaysOnRpTree) {
  PimFixture f(test::line(6), /*rp=*/0, /*switchover=*/false);
  f.proto_.host_join(4, kGroup);
  f.queue_.run_all();
  f.send_and_collect(5);
  f.send_and_collect(5);
  EXPECT_FALSE(f.proto_.has_spt_state(4, kGroup, 5));
  EXPECT_EQ(f.send_and_collect(5), (std::vector<graph::NodeId>{4}));
}

TEST(PimSm, MultipleMembersAllDeliver) {
  const auto topo = test::random_topology(41, 30);
  PimFixture f(topo.graph);
  Rng rng(42);
  std::vector<graph::NodeId> members;
  for (int v : rng.sample_without_replacement(topo.graph.num_nodes() - 1, 10))
    members.push_back(v + 1);
  for (graph::NodeId m : members) f.proto_.host_join(m, kGroup);
  f.queue_.run_all();
  std::sort(members.begin(), members.end());
  // First packet (via RP), then three post-switchover packets.
  for (int round = 0; round < 4; ++round)
    EXPECT_EQ(f.send_and_collect(members[0]), members) << "round " << round;
}

TEST(PimSm, LeaveprunesSharedAndSourceTrees) {
  PimFixture f(test::line(5), /*rp=*/0);
  f.proto_.host_join(4, kGroup);
  f.queue_.run_all();
  f.send_and_collect(3);  // switches member 4 to source 3's SPT
  ASSERT_TRUE(f.proto_.has_spt_state(4, kGroup, 3));
  f.proto_.host_leave(4, kGroup);
  f.queue_.run_all();
  EXPECT_FALSE(f.proto_.on_rp_tree(4, kGroup));
  EXPECT_FALSE(f.proto_.has_spt_state(4, kGroup, 3));
  EXPECT_FALSE(f.proto_.on_rp_tree(1, kGroup));  // chain pruned
  EXPECT_TRUE(f.send_and_collect(3).empty());
}

TEST(PimSm, RejoinAfterLeaveWorks) {
  PimFixture f(test::line(5), /*rp=*/0);
  f.proto_.host_join(4, kGroup);
  f.queue_.run_all();
  f.send_and_collect(3);
  f.proto_.host_leave(4, kGroup);
  f.queue_.run_all();
  f.proto_.host_join(4, kGroup);
  f.queue_.run_all();
  EXPECT_EQ(f.send_and_collect(3), (std::vector<graph::NodeId>{4}));
}

TEST(PimSm, SourceIsAlsoMember) {
  PimFixture f(test::line(4), /*rp=*/0);
  f.proto_.host_join(1, kGroup);
  f.proto_.host_join(3, kGroup);
  f.queue_.run_all();
  for (int round = 0; round < 3; ++round)
    EXPECT_EQ(f.send_and_collect(3), (std::vector<graph::NodeId>{1, 3}))
        << "round " << round;
}

TEST(PimSm, RpAsMember) {
  PimFixture f(test::line(4), /*rp=*/0);
  f.proto_.host_join(0, kGroup);
  f.queue_.run_all();
  for (int round = 0; round < 2; ++round)
    EXPECT_EQ(f.send_and_collect(2), (std::vector<graph::NodeId>{0}));
}

TEST(PimSm, RpAsSource) {
  PimFixture f(test::line(4), /*rp=*/0);
  f.proto_.host_join(3, kGroup);
  f.queue_.run_all();
  for (int round = 0; round < 2; ++round)
    EXPECT_EQ(f.send_and_collect(0), (std::vector<graph::NodeId>{3}));
}

TEST(PimSm, NonLeafSwitchedMemberStillFeedsChildren) {
  // Member 2 sits on the shared-tree path of member 4: after 2 switches to
  // the SPT it must keep forwarding shared-tree copies toward 4.
  PimFixture f(test::line(5), /*rp=*/0);
  f.proto_.host_join(2, kGroup);
  f.proto_.host_join(4, kGroup);
  f.queue_.run_all();
  for (int round = 0; round < 4; ++round)
    EXPECT_EQ(f.send_and_collect(3), (std::vector<graph::NodeId>{2, 4}))
        << "round " << round;
}

TEST(PimSm, ChurnStaysExactlyOnce) {
  const auto topo = test::random_topology(43, 25);
  PimFixture f(topo.graph);
  Rng rng(44);
  std::set<graph::NodeId> joined;
  for (int step = 0; step < 40; ++step) {
    const auto v = static_cast<graph::NodeId>(
        rng.uniform_int(1, topo.graph.num_nodes() - 1));
    if (joined.contains(v)) {
      f.proto_.host_leave(v, kGroup);
      joined.erase(v);
    } else {
      f.proto_.host_join(v, kGroup);
      joined.insert(v);
    }
    f.queue_.run_all();
    if (joined.empty()) continue;
    const auto got = f.send_and_collect(5);
    ASSERT_EQ(got, std::vector(joined.begin(), joined.end()))
        << "step " << step;
  }
}

}  // namespace
}  // namespace scmp::proto
