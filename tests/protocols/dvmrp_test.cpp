#include "protocols/dvmrp.hpp"

#include <gtest/gtest.h>

#include <map>

#include "helpers.hpp"

namespace scmp::proto {
namespace {

constexpr GroupId kGroup = 1;

class DvmrpFixture {
 public:
  explicit DvmrpFixture(graph::Graph graph, double prune_lifetime = 8.0)
      : g_(std::move(graph)), net_(g_, queue_), igmp_(queue_, g_.num_nodes()),
        proto_(net_, igmp_, prune_lifetime) {
    net_.set_delivery_callback(
        [this](const sim::Packet& pkt, graph::NodeId member, sim::SimTime) {
          deliveries_[pkt.uid].push_back(member);
        });
  }

  std::vector<graph::NodeId> send_and_collect(graph::NodeId source) {
    const auto uid_before = deliveries_.size();
    proto_.send_data(source, kGroup);
    queue_.run_all();
    if (deliveries_.size() == uid_before) return {};
    auto got = deliveries_.rbegin()->second;
    std::sort(got.begin(), got.end());
    return got;
  }

  graph::Graph g_;
  sim::EventQueue queue_;
  sim::Network net_;
  igmp::IgmpDomain igmp_;
  Dvmrp proto_;
  std::map<std::uint64_t, std::vector<graph::NodeId>> deliveries_;
};

TEST(Dvmrp, FloodReachesAllMembers) {
  DvmrpFixture f(test::paper_fig5_topology());
  for (graph::NodeId m : {3, 4, 5}) f.proto_.host_join(m, kGroup);
  f.queue_.run_all();
  EXPECT_EQ(f.send_and_collect(0), (std::vector<graph::NodeId>{3, 4, 5}));
}

TEST(Dvmrp, DeliveryIsExactlyOncePerMember) {
  const auto topo = test::random_topology(3, 25);
  DvmrpFixture f(topo.graph);
  Rng rng(4);
  std::vector<graph::NodeId> members;
  for (int v : rng.sample_without_replacement(topo.graph.num_nodes() - 1, 8))
    members.push_back(v + 1);
  for (graph::NodeId m : members) f.proto_.host_join(m, kGroup);
  f.queue_.run_all();
  std::sort(members.begin(), members.end());
  EXPECT_EQ(f.send_and_collect(0), members);  // sorted & unique
}

TEST(Dvmrp, FirstPacketFloodsEverywhere) {
  // Truncated-broadcast: the first packet crosses every RPF-tree link, far
  // more than the member count requires.
  DvmrpFixture f(test::line(6));
  f.proto_.host_join(1, kGroup);
  f.queue_.run_all();
  f.send_and_collect(0);
  // The flood runs down the whole line (5 links) even though the only member
  // sits one hop away; prunes then come back.
  EXPECT_GE(f.net_.stats().data_link_crossings, 5u);
  EXPECT_GE(f.net_.stats().protocol_link_crossings, 1u);  // prunes
}

TEST(Dvmrp, PrunesStopSubsequentFlooding) {
  DvmrpFixture f(test::line(6), /*prune_lifetime=*/1000.0);
  f.proto_.host_join(1, kGroup);
  f.queue_.run_all();
  f.send_and_collect(0);
  const auto after_first = f.net_.stats().data_link_crossings;
  f.send_and_collect(0);
  const auto second_packet = f.net_.stats().data_link_crossings - after_first;
  // After pruning, the second packet only travels toward the member.
  EXPECT_LT(second_packet, after_first);
  EXPECT_LE(second_packet, 2u);
  EXPECT_TRUE(f.proto_.prune_active(5, kGroup, 0));
}

TEST(Dvmrp, PruneExpiryCausesReflood) {
  DvmrpFixture f(test::line(6), /*prune_lifetime=*/0.5);
  f.proto_.host_join(1, kGroup);
  f.queue_.run_all();
  f.send_and_collect(0);
  const auto after_first = f.net_.stats().data_link_crossings;
  // Wait past the prune lifetime, then send again: the flood repeats.
  f.queue_.run_until(f.queue_.now() + 1.0);
  f.send_and_collect(0);
  const auto second_packet = f.net_.stats().data_link_crossings - after_first;
  EXPECT_GE(second_packet, 5u);
}

TEST(Dvmrp, GraftRestoresPrunedBranch) {
  DvmrpFixture f(test::line(6), /*prune_lifetime=*/1000.0);
  f.proto_.host_join(1, kGroup);
  f.queue_.run_all();
  f.send_and_collect(0);  // prunes the tail of the line
  ASSERT_TRUE(f.proto_.prune_active(5, kGroup, 0));
  f.proto_.host_join(5, kGroup);  // join below the pruned branch
  f.queue_.run_all();
  EXPECT_FALSE(f.proto_.prune_active(5, kGroup, 0));
  EXPECT_EQ(f.send_and_collect(0), (std::vector<graph::NodeId>{1, 5}));
}

TEST(Dvmrp, GraftCascadesUpstream) {
  DvmrpFixture f(test::line(6), /*prune_lifetime=*/1000.0);
  f.proto_.host_join(1, kGroup);
  f.queue_.run_all();
  f.send_and_collect(0);
  // Intermediate routers 3 and 4 also pruned (cascade); the join at 5 must
  // graft the whole chain back.
  ASSERT_TRUE(f.proto_.prune_active(4, kGroup, 0));
  f.proto_.host_join(5, kGroup);
  f.queue_.run_all();
  EXPECT_FALSE(f.proto_.prune_active(4, kGroup, 0));
  EXPECT_FALSE(f.proto_.prune_active(3, kGroup, 0));
}

TEST(Dvmrp, SourceMayBeMember) {
  DvmrpFixture f(test::line(4));
  f.proto_.host_join(0, kGroup);
  f.proto_.host_join(3, kGroup);
  f.queue_.run_all();
  EXPECT_EQ(f.send_and_collect(0), (std::vector<graph::NodeId>{0, 3}));
}

TEST(Dvmrp, MemberlessDomainPrunesCompletely) {
  DvmrpFixture f(test::line(4), /*prune_lifetime=*/1000.0);
  f.send_and_collect(0);
  f.send_and_collect(0);
  // Second send is suppressed right at the source's neighbour.
  EXPECT_TRUE(f.proto_.prune_active(1, kGroup, 0));
}

class DvmrpSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DvmrpSeeds, SteadyStateDeliversToExactlyMembers) {
  const auto topo = test::random_topology(GetParam(), 30);
  DvmrpFixture f(topo.graph, /*prune_lifetime=*/1000.0);
  Rng rng(GetParam() + 5);
  std::vector<graph::NodeId> members;
  for (int v : rng.sample_without_replacement(topo.graph.num_nodes() - 1, 6))
    members.push_back(v + 1);
  for (graph::NodeId m : members) f.proto_.host_join(m, kGroup);
  f.queue_.run_all();
  std::sort(members.begin(), members.end());
  for (int round = 0; round < 3; ++round)
    EXPECT_EQ(f.send_and_collect(0), members) << "round " << round;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DvmrpSeeds, ::testing::Values(11, 22, 33));

}  // namespace
}  // namespace scmp::proto
