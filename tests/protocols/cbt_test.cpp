#include "protocols/cbt.hpp"

#include <gtest/gtest.h>

#include <map>

#include "helpers.hpp"

namespace scmp::proto {
namespace {

constexpr GroupId kGroup = 1;

class CbtFixture {
 public:
  explicit CbtFixture(graph::Graph graph, graph::NodeId core = 0)
      : g_(std::move(graph)), net_(g_, queue_), igmp_(queue_, g_.num_nodes()),
        proto_(net_, igmp_) {
    proto_.set_core(kGroup, core);
    net_.set_delivery_callback(
        [this](const sim::Packet& pkt, graph::NodeId member, sim::SimTime) {
          deliveries_[pkt.uid].push_back(member);
        });
  }

  std::vector<graph::NodeId> send_and_collect(graph::NodeId source) {
    const auto before = deliveries_.size();
    proto_.send_data(source, kGroup);
    queue_.run_all();
    if (deliveries_.size() == before) return {};
    auto got = deliveries_.rbegin()->second;
    std::sort(got.begin(), got.end());
    return got;
  }

  graph::Graph g_;
  sim::EventQueue queue_;
  sim::Network net_;
  igmp::IgmpDomain igmp_;
  Cbt proto_;
  std::map<std::uint64_t, std::vector<graph::NodeId>> deliveries_;
};

TEST(Cbt, JoinBuildsPathToCore) {
  CbtFixture f(test::line(4));
  f.proto_.host_join(3, kGroup);
  f.queue_.run_all();
  EXPECT_TRUE(f.proto_.on_tree(3, kGroup));
  EXPECT_TRUE(f.proto_.on_tree(2, kGroup));
  EXPECT_TRUE(f.proto_.on_tree(1, kGroup));
  EXPECT_EQ(f.proto_.upstream_of(3, kGroup), 2);
  EXPECT_EQ(f.proto_.upstream_of(2, kGroup), 1);
  EXPECT_EQ(f.proto_.upstream_of(1, kGroup), 0);
  EXPECT_EQ(f.proto_.downstream_of(1, kGroup), (std::set<graph::NodeId>{2}));
  EXPECT_EQ(f.proto_.downstream_of(0, kGroup), (std::set<graph::NodeId>{1}));
}

TEST(Cbt, SecondJoinGraftsAtExistingTree) {
  graph::Graph g(5);
  g.add_edge(0, 1, 1, 1);
  g.add_edge(1, 2, 1, 1);
  g.add_edge(1, 3, 1, 1);
  g.add_edge(3, 4, 1, 1);
  CbtFixture f(std::move(g));
  f.proto_.host_join(2, kGroup);
  f.queue_.run_all();
  const auto before = f.net_.stats().protocol_link_crossings;
  f.proto_.host_join(4, kGroup);
  f.queue_.run_all();
  // Join travels 4->3->1 (on tree) and the ACK returns 1->3->4: 4 crossings,
  // never reaching the core.
  EXPECT_EQ(f.net_.stats().protocol_link_crossings - before, 4u);
  EXPECT_EQ(f.proto_.downstream_of(1, kGroup),
            (std::set<graph::NodeId>{2, 3}));
}

TEST(Cbt, CoreAsMemberNeedsNoJoin) {
  CbtFixture f(test::line(3));
  f.proto_.host_join(0, kGroup);  // the core itself
  f.queue_.run_all();
  EXPECT_EQ(f.net_.stats().protocol_link_crossings, 0u);
  EXPECT_TRUE(f.proto_.on_tree(0, kGroup));
}

TEST(Cbt, OnTreeSourceForwardsBidirectionally) {
  CbtFixture f(test::line(5));
  f.proto_.host_join(2, kGroup);
  f.proto_.host_join(4, kGroup);
  f.queue_.run_all();
  // Member 4 sends: data flows up 4->3->2 (delivering at 2) and stops at the
  // core; no encapsulation.
  EXPECT_EQ(f.send_and_collect(4), (std::vector<graph::NodeId>{2, 4}));
}

TEST(Cbt, OffTreeSourceEncapsulatesToCore) {
  CbtFixture f(test::line(5), /*core=*/2);
  f.proto_.host_join(0, kGroup);
  f.queue_.run_all();
  // Source 4 is off the tree; data unicasts to core 2 then down to member 0.
  EXPECT_EQ(f.send_and_collect(4), (std::vector<graph::NodeId>{0}));
  EXPECT_EQ(f.net_.stats().data_link_crossings, 2u + 2u);
}

TEST(Cbt, QuitPrunesLeafChain) {
  CbtFixture f(test::line(4));
  f.proto_.host_join(3, kGroup);
  f.queue_.run_all();
  f.proto_.host_leave(3, kGroup);
  f.queue_.run_all();
  EXPECT_FALSE(f.proto_.on_tree(3, kGroup));
  EXPECT_FALSE(f.proto_.on_tree(2, kGroup));
  EXPECT_FALSE(f.proto_.on_tree(1, kGroup));
}

TEST(Cbt, QuitStopsAtBranchingRouter) {
  graph::Graph g(5);
  g.add_edge(0, 1, 1, 1);
  g.add_edge(1, 2, 1, 1);
  g.add_edge(1, 3, 1, 1);
  g.add_edge(3, 4, 1, 1);
  CbtFixture f(std::move(g));
  f.proto_.host_join(2, kGroup);
  f.proto_.host_join(4, kGroup);
  f.queue_.run_all();
  f.proto_.host_leave(4, kGroup);
  f.queue_.run_all();
  EXPECT_FALSE(f.proto_.on_tree(4, kGroup));
  EXPECT_FALSE(f.proto_.on_tree(3, kGroup));
  EXPECT_TRUE(f.proto_.on_tree(1, kGroup));  // still serves member 2
  EXPECT_EQ(f.proto_.downstream_of(1, kGroup), (std::set<graph::NodeId>{2}));
}

TEST(Cbt, RelayMemberLeaveKeepsRelay) {
  CbtFixture f(test::line(4));
  f.proto_.host_join(2, kGroup);
  f.proto_.host_join(3, kGroup);
  f.queue_.run_all();
  f.proto_.host_leave(2, kGroup);
  f.queue_.run_all();
  EXPECT_TRUE(f.proto_.on_tree(2, kGroup));  // still relays to 3
  EXPECT_EQ(f.send_and_collect(0), (std::vector<graph::NodeId>{3}));
}

TEST(Cbt, DeliversExactlyOnceOnRandomTopology) {
  const auto topo = test::random_topology(21, 30);
  CbtFixture f(topo.graph);
  Rng rng(22);
  std::vector<graph::NodeId> members;
  for (int v : rng.sample_without_replacement(topo.graph.num_nodes() - 1, 10))
    members.push_back(v + 1);
  for (graph::NodeId m : members) f.proto_.host_join(m, kGroup);
  f.queue_.run_all();
  std::sort(members.begin(), members.end());
  EXPECT_EQ(f.send_and_collect(0), members);
  // And from an arbitrary member as source.
  EXPECT_EQ(f.send_and_collect(members[0]), members);
}

TEST(Cbt, DataBeforeAnyJoinIsDropped) {
  CbtFixture f(test::line(3));
  EXPECT_TRUE(f.send_and_collect(2).empty());
}

TEST(Cbt, CoreFailureBlackholesEncapsulatedData) {
  CbtFixture f(test::line(5), /*core=*/2);
  f.proto_.host_join(0, kGroup);
  f.queue_.run_all();
  EXPECT_EQ(f.send_and_collect(4), (std::vector<graph::NodeId>{0}));

  f.proto_.fail_core(kGroup);
  EXPECT_TRUE(f.proto_.core_failed(kGroup));
  // Off-tree source 4 encapsulates to the dead core: nothing arrives.
  EXPECT_TRUE(f.send_and_collect(4).empty());
}

TEST(Cbt, CoreFailureBlocksNewJoins) {
  CbtFixture f(test::line(5), /*core=*/0);
  f.proto_.fail_core(kGroup);
  f.proto_.host_join(3, kGroup);
  f.queue_.run_all();
  // The join reached the dead core and was never acknowledged.
  EXPECT_FALSE(f.proto_.on_tree(3, kGroup));
  EXPECT_TRUE(f.send_and_collect(0).empty());
}

TEST(Cbt, OnTreeTrafficBelowTheCoreSurvives) {
  // The paper's point is the *core* failing; branches that do not cross it
  // keep working for on-tree sources.
  CbtFixture f(test::line(5), /*core=*/0);
  f.proto_.host_join(2, kGroup);
  f.proto_.host_join(4, kGroup);
  f.queue_.run_all();
  f.proto_.fail_core(kGroup);
  // Member 4's packets travel up the shared branch through 3 and 2 without
  // touching the dead core.
  EXPECT_EQ(f.send_and_collect(4), (std::vector<graph::NodeId>{2, 4}));
}

TEST(Cbt, ConcurrentJoinsConvergeToOneTree) {
  // Two joins racing through a shared path must not corrupt the tree.
  CbtFixture f(test::line(5));
  f.proto_.host_join(3, kGroup);
  f.proto_.host_join(4, kGroup);  // same instant: both traverse 1 and 2
  f.queue_.run_all();
  EXPECT_EQ(f.proto_.upstream_of(4, kGroup), 3);
  EXPECT_EQ(f.proto_.upstream_of(3, kGroup), 2);
  EXPECT_EQ(f.send_and_collect(0), (std::vector<graph::NodeId>{3, 4}));
}

}  // namespace
}  // namespace scmp::proto
