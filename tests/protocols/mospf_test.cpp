#include "protocols/mospf.hpp"

#include <gtest/gtest.h>

#include <map>

#include "graph/dijkstra.hpp"
#include "helpers.hpp"

namespace scmp::proto {
namespace {

constexpr GroupId kGroup = 1;

class MospfFixture {
 public:
  explicit MospfFixture(graph::Graph graph)
      : g_(std::move(graph)), net_(g_, queue_), igmp_(queue_, g_.num_nodes()),
        proto_(net_, igmp_) {
    net_.set_delivery_callback(
        [this](const sim::Packet& pkt, graph::NodeId member, sim::SimTime) {
          deliveries_[pkt.uid].push_back(member);
        });
  }

  std::vector<graph::NodeId> send_and_collect(graph::NodeId source) {
    const auto before = deliveries_.size();
    proto_.send_data(source, kGroup);
    queue_.run_all();
    if (deliveries_.size() == before) return {};
    auto got = deliveries_.rbegin()->second;
    std::sort(got.begin(), got.end());
    return got;
  }

  graph::Graph g_;
  sim::EventQueue queue_;
  sim::Network net_;
  igmp::IgmpDomain igmp_;
  Mospf proto_;
  std::map<std::uint64_t, std::vector<graph::NodeId>> deliveries_;
};

TEST(Mospf, LsaFloodConvergesAllViews) {
  const auto topo = test::random_topology(8, 20);
  MospfFixture f(topo.graph);
  f.proto_.host_join(3, kGroup);
  f.proto_.host_join(7, kGroup);
  f.queue_.run_all();
  for (graph::NodeId v = 0; v < topo.graph.num_nodes(); ++v) {
    EXPECT_EQ(f.proto_.view_of(v, kGroup),
              (std::set<graph::NodeId>{3, 7}))
        << "router " << v;
  }
}

TEST(Mospf, LeaveLsaRemovesMemberFromViews) {
  MospfFixture f(test::line(5));
  f.proto_.host_join(3, kGroup);
  f.proto_.host_join(4, kGroup);
  f.queue_.run_all();
  f.proto_.host_leave(3, kGroup);
  f.queue_.run_all();
  for (graph::NodeId v = 0; v < 5; ++v)
    EXPECT_EQ(f.proto_.view_of(v, kGroup), (std::set<graph::NodeId>{4}));
}

TEST(Mospf, EveryMembershipChangeFloodsDomainWide) {
  MospfFixture f(test::line(5));
  const auto before = f.net_.stats().protocol_link_crossings;
  f.proto_.host_join(2, kGroup);
  f.queue_.run_all();
  // Flooding crosses each of the 4 links at least once.
  EXPECT_GE(f.net_.stats().protocol_link_crossings - before, 4u);
}

TEST(Mospf, DataFollowsShortestPaths) {
  MospfFixture f(test::diamond());
  f.proto_.host_join(3, kGroup);
  f.queue_.run_all();
  EXPECT_EQ(f.send_and_collect(0), (std::vector<graph::NodeId>{3}));
  // Delay-shortest route 0-1-3 carries the data: exactly 2 data crossings.
  EXPECT_EQ(f.net_.stats().data_link_crossings, 2u);
}

TEST(Mospf, DataPrunedToMemberSubtrees) {
  MospfFixture f(test::line(6));
  f.proto_.host_join(2, kGroup);
  f.queue_.run_all();
  f.send_and_collect(0);
  // No data flows past the last member (links 3,4,5 unused).
  EXPECT_EQ(f.net_.stats().data_link_crossings, 2u);
}

TEST(Mospf, DeliversExactlyOnce) {
  const auto topo = test::random_topology(12, 30);
  MospfFixture f(topo.graph);
  Rng rng(13);
  std::vector<graph::NodeId> members;
  for (int v : rng.sample_without_replacement(topo.graph.num_nodes() - 1, 9))
    members.push_back(v + 1);
  for (graph::NodeId m : members) f.proto_.host_join(m, kGroup);
  f.queue_.run_all();
  std::sort(members.begin(), members.end());
  EXPECT_EQ(f.send_and_collect(0), members);
}

TEST(Mospf, MemberDelaysAreUnicastOptimal) {
  // SPT-based forwarding delivers each packet along the shortest-delay path,
  // the paper's explanation for Fig. 9's delay ranking.
  const auto topo = test::random_topology(14, 25);
  MospfFixture f(topo.graph);
  f.proto_.host_join(5, kGroup);
  f.queue_.run_all();
  std::map<graph::NodeId, double> arrival;
  f.net_.set_delivery_callback(
      [&](const sim::Packet&, graph::NodeId member, sim::SimTime at) {
        arrival[member] = at;
      });
  const double sent_at = f.queue_.now();
  f.proto_.send_data(0, kGroup);
  f.queue_.run_all();
  const graph::ShortestPaths sp =
      dijkstra(topo.graph, 0, graph::Metric::kDelay);
  ASSERT_TRUE(arrival.contains(5));
  // Propagation delay scaled by 1e-6, plus per-hop transmission (8 us each).
  const double expected = sp.distance(5) * 1e-6;
  const auto hops = static_cast<double>(sp.path_to(5).size() - 1);
  EXPECT_NEAR(arrival[5] - sent_at, expected + hops * 8e-6, 1e-9);
}

TEST(Mospf, SourceAlsoMemberDeliversLocally) {
  MospfFixture f(test::line(3));
  f.proto_.host_join(0, kGroup);
  f.proto_.host_join(2, kGroup);
  f.queue_.run_all();
  EXPECT_EQ(f.send_and_collect(0), (std::vector<graph::NodeId>{0, 2}));
}

TEST(Mospf, DuplicateLsasDropped) {
  // On a cycle the same LSA reaches routers via two paths; the dedup must
  // keep views correct and terminate flooding.
  graph::Graph g(4);
  g.add_edge(0, 1, 1, 1);
  g.add_edge(1, 2, 1, 1);
  g.add_edge(2, 3, 1, 1);
  g.add_edge(3, 0, 1, 1);
  MospfFixture f(std::move(g));
  f.proto_.host_join(0, kGroup);
  f.queue_.run_all();
  for (graph::NodeId v = 0; v < 4; ++v)
    EXPECT_EQ(f.proto_.view_of(v, kGroup), (std::set<graph::NodeId>{0}));
  // Each link is crossed at most twice (once per direction).
  EXPECT_LE(f.net_.stats().protocol_link_crossings, 8u);
}

}  // namespace
}  // namespace scmp::proto
