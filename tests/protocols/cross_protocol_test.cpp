// Cross-protocol conformance: whatever the routing machinery, a multicast
// protocol must deliver every data packet to every member router exactly
// once, and to nobody else. Parameterised over all four protocols, several
// topologies and seeds.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/experiment.hpp"
#include "helpers.hpp"
#include "topo/arpanet.hpp"

namespace scmp::core {
namespace {

struct Case {
  ProtocolKind kind;
  std::uint64_t seed;
  int members;
  bool member_source;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  std::string name = to_string(info.param.kind);
  name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
  return name + "_s" + std::to_string(info.param.seed) + "_m" +
         std::to_string(info.param.members) +
         (info.param.member_source ? "_memsrc" : "_extsrc");
}

class DeliveryConformance : public ::testing::TestWithParam<Case> {};

TEST_P(DeliveryConformance, ExactlyOnceToAllMembers) {
  const Case& c = GetParam();
  const auto topo = test::random_topology(c.seed, 30);
  const graph::Graph& g = topo.graph;

  ScenarioConfig cfg;
  cfg.mrouter = 0;
  Rng rng(c.seed * 97 + 13);
  for (int v : rng.sample_without_replacement(g.num_nodes() - 1, c.members))
    cfg.members.push_back(v + 1);
  cfg.source = c.member_source
                   ? cfg.members.front()
                   : [&] {
                       // deterministic non-member, non-root source
                       for (graph::NodeId v = 1; v < g.num_nodes(); ++v) {
                         if (std::find(cfg.members.begin(), cfg.members.end(),
                                       v) == cfg.members.end())
                           return v;
                       }
                       return graph::NodeId{1};
                     }();
  cfg.data_interval = 0.0;  // we drive data sends manually

  ScenarioHarness h(c.kind, g, cfg);
  // Per-packet delivery sets.
  std::map<std::uint64_t, std::multiset<graph::NodeId>> delivered;
  h.network().set_delivery_callback(
      [&](const sim::Packet& pkt, graph::NodeId member, sim::SimTime) {
        delivered[pkt.uid].insert(member);
      });

  for (graph::NodeId m : cfg.members) h.protocol().host_join(m, cfg.group);
  h.queue().run_all();

  std::set<graph::NodeId> expected(cfg.members.begin(), cfg.members.end());
  for (int round = 0; round < 3; ++round) {
    delivered.clear();
    h.protocol().send_data(cfg.source, cfg.group);
    h.queue().run_all();
    ASSERT_EQ(delivered.size(), 1u) << "round " << round;
    const auto& got = delivered.begin()->second;
    // Exactly once per member.
    std::multiset<graph::NodeId> want(expected.begin(), expected.end());
    EXPECT_EQ(got, want) << to_string(c.kind) << " round " << round;
  }
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  for (const auto kind :
       {ProtocolKind::kScmp, ProtocolKind::kDvmrp, ProtocolKind::kMospf,
        ProtocolKind::kCbt, ProtocolKind::kPimSm}) {
    for (const std::uint64_t seed : {31ull, 62ull, 93ull, 124ull, 155ull}) {
      for (const int members : {4, 12}) {
        cases.push_back({kind, seed, members, false});
        cases.push_back({kind, seed, members, true});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, DeliveryConformance,
                         ::testing::ValuesIn(all_cases()), case_name);

class ChurnConformance : public ::testing::TestWithParam<Case> {};

TEST_P(ChurnConformance, DeliveriesTrackMembershipUnderChurn) {
  const Case& c = GetParam();
  const auto topo = test::random_topology(c.seed + 500, 25);
  const graph::Graph& g = topo.graph;

  ScenarioConfig cfg;
  cfg.mrouter = 0;
  cfg.data_interval = 0.0;
  ScenarioHarness h(c.kind, g, cfg);
  std::map<std::uint64_t, std::multiset<graph::NodeId>> delivered;
  h.network().set_delivery_callback(
      [&](const sim::Packet& pkt, graph::NodeId member, sim::SimTime) {
        delivered[pkt.uid].insert(member);
      });

  Rng rng(c.seed * 17 + 1);
  std::set<graph::NodeId> joined;
  for (int step = 0; step < 30; ++step) {
    const auto v =
        static_cast<graph::NodeId>(rng.uniform_int(1, g.num_nodes() - 1));
    if (joined.contains(v)) {
      h.protocol().host_leave(v, cfg.group);
      joined.erase(v);
    } else {
      h.protocol().host_join(v, cfg.group);
      joined.insert(v);
    }
    h.queue().run_all();
    if (joined.empty()) continue;

    delivered.clear();
    h.protocol().send_data(0, cfg.group);
    h.queue().run_all();
    std::multiset<graph::NodeId> want(joined.begin(), joined.end());
    ASSERT_EQ(delivered.size(), 1u);
    ASSERT_EQ(delivered.begin()->second, want)
        << to_string(c.kind) << " step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, ChurnConformance,
    ::testing::Values(Case{ProtocolKind::kScmp, 1, 0, false},
                      Case{ProtocolKind::kDvmrp, 2, 0, false},
                      Case{ProtocolKind::kMospf, 3, 0, false},
                      Case{ProtocolKind::kCbt, 4, 0, false},
                      Case{ProtocolKind::kPimSm, 5, 0, false}),
    case_name);

TEST(CrossProtocol, ArpanetAllProtocolsDeliver) {
  Rng trng(7);
  const auto topo = topo::arpanet(trng);
  for (const auto kind :
       {ProtocolKind::kScmp, ProtocolKind::kDvmrp, ProtocolKind::kMospf,
        ProtocolKind::kCbt, ProtocolKind::kPimSm}) {
    ScenarioConfig cfg;
    cfg.mrouter = 0;
    cfg.members = {3, 8, 15, 19};
    cfg.data_interval = 0.0;
    ScenarioHarness h(kind, topo.graph, cfg);
    std::multiset<graph::NodeId> got;
    h.network().set_delivery_callback(
        [&](const sim::Packet&, graph::NodeId member, sim::SimTime) {
          got.insert(member);
        });
    for (graph::NodeId m : cfg.members) h.protocol().host_join(m, cfg.group);
    h.queue().run_all();
    h.protocol().send_data(10, cfg.group);
    h.queue().run_all();
    EXPECT_EQ(got, (std::multiset<graph::NodeId>{3, 8, 15, 19}))
        << to_string(kind);
  }
}

}  // namespace
}  // namespace scmp::core
