// A packet type a protocol's dispatch switch has no case for must be dropped
// visibly — one tick on net.drops.unexpected_type tagged with the protocol's
// name — never swallowed silently and never a crash. Foreign-protocol traffic
// can reach any agent through the shared Network plumbing (e.g. a harness
// wiring two protocols to one Network), so this is network input, not a
// programming error. Regression for the PR that converted the asserting
// dispatch defaults, and the live counterpart of protocol_lint.py's
// dispatch-exhaustiveness rule.
#include <gtest/gtest.h>

#include "core/scmp.hpp"
#include "helpers.hpp"
#include "obs/metrics.hpp"
#include "protocols/cbt.hpp"
#include "protocols/dvmrp.hpp"
#include "protocols/mospf.hpp"
#include "protocols/pimsm.hpp"

namespace scmp {
namespace {

constexpr igmp::GroupId kGroup = 1;

/// A foreign-protocol packet of type `t` addressed to `group`.
sim::Packet foreign(sim::PacketType t) {
  sim::Packet pkt;
  pkt.type = t;
  pkt.group = kGroup;
  pkt.src = 0;
  return pkt;
}

class MetricsOn {
 public:
  MetricsOn() { obs::set_metrics_enabled(true); }
  ~MetricsOn() { obs::set_metrics_enabled(false); }
};

/// Delivers `pkt` straight into `proto`'s dispatch at node 1 and returns the
/// growth of the protocol's unexpected-type drop counter.
template <typename Proto>
std::uint64_t drops_after(Proto& proto, const sim::Packet& pkt) {
  obs::Counter& drops =
      obs::counter("net.drops.unexpected_type", proto.name());
  const std::uint64_t before = drops.value();
  proto.handle_packet(1, pkt, 0);
  return drops.value() - before;
}

template <typename Proto, typename... Args>
void expect_counted_drop(sim::PacketType foreign_type, Args&&... args) {
  MetricsOn metrics;
  graph::Graph g = test::line(3);
  sim::EventQueue queue;
  sim::Network net(g, queue);
  igmp::IgmpDomain igmp(queue, g.num_nodes());
  Proto proto(net, igmp, std::forward<Args>(args)...);
  EXPECT_EQ(drops_after(proto, foreign(foreign_type)), 1u)
      << proto.name() << " did not count the unexpected "
      << sim::to_string(foreign_type) << " packet";
  queue.run_all();  // whatever was scheduled must still be side-effect free
}

TEST(UnexpectedType, DvmrpCountsForeignPacket) {
  expect_counted_drop<proto::Dvmrp>(sim::PacketType::kCbtJoin);
}

TEST(UnexpectedType, MospfCountsForeignPacket) {
  expect_counted_drop<proto::Mospf>(sim::PacketType::kDvmrpPrune);
}

TEST(UnexpectedType, CbtCountsForeignPacket) {
  expect_counted_drop<proto::Cbt>(sim::PacketType::kGroupLsa);
}

TEST(UnexpectedType, PimSmCountsForeignPacket) {
  expect_counted_drop<proto::PimSm>(sim::PacketType::kCbtQuit);
}

TEST(UnexpectedType, ScmpCountsForeignPacket) {
  expect_counted_drop<core::Scmp>(sim::PacketType::kPimJoin,
                                  core::Scmp::Config{});
}

TEST(UnexpectedType, EveryForeignTypeIsCountedNotCrashed) {
  // Sweep the whole enum through SCMP's dispatch: every type outside its
  // grammar must land on the drop counter, every type inside must not.
  MetricsOn metrics;
  graph::Graph g = test::line(3);
  sim::EventQueue queue;
  sim::Network net(g, queue);
  igmp::IgmpDomain igmp(queue, g.num_nodes());
  core::Scmp proto(net, igmp, core::Scmp::Config{});
  for (sim::PacketType t : {sim::PacketType::kCbtJoin,
                            sim::PacketType::kCbtAck,
                            sim::PacketType::kCbtQuit,
                            sim::PacketType::kDvmrpPrune,
                            sim::PacketType::kDvmrpGraft,
                            sim::PacketType::kPimJoin,
                            sim::PacketType::kPimPrune,
                            sim::PacketType::kGroupLsa,
                            sim::PacketType::kIgmpQuery,
                            sim::PacketType::kIgmpReport,
                            sim::PacketType::kIgmpLeave}) {
    EXPECT_EQ(drops_after(proto, foreign(t)), 1u)
        << "SCMP did not count " << sim::to_string(t);
  }
  // A native type must not be miscounted as unexpected.
  EXPECT_EQ(drops_after(proto, foreign(sim::PacketType::kData)), 0u);
}

}  // namespace
}  // namespace scmp
