#include "graph/mst.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "graph/dijkstra.hpp"
#include "helpers.hpp"

namespace scmp::graph {
namespace {

double mst_weight(const Graph& g, const std::vector<NodeId>& parent,
                  Metric metric) {
  double total = 0.0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const NodeId p = parent[static_cast<std::size_t>(v)];
    if (p == kInvalidNode) continue;
    const EdgeAttr* e = g.edge(v, p);
    EXPECT_NE(e, nullptr);
    total += weight_of(*e, metric);
  }
  return total;
}

/// Kruskal reference implementation for cross-checking Prim.
double kruskal_weight(const Graph& g, Metric metric) {
  struct E {
    double w;
    NodeId u, v;
  };
  std::vector<E> edges;
  for (NodeId u = 0; u < g.num_nodes(); ++u)
    for (const auto& nb : g.neighbors(u))
      if (u < nb.to) edges.push_back({weight_of(nb.attr, metric), u, nb.to});
  std::sort(edges.begin(), edges.end(),
            [](const E& a, const E& b) { return a.w < b.w; });
  std::vector<NodeId> uf(static_cast<std::size_t>(g.num_nodes()));
  std::iota(uf.begin(), uf.end(), 0);
  auto find = [&](NodeId x) {
    while (uf[static_cast<std::size_t>(x)] != x)
      x = uf[static_cast<std::size_t>(x)] =
          uf[static_cast<std::size_t>(uf[static_cast<std::size_t>(x)])];
    return x;
  };
  double total = 0.0;
  for (const E& e : edges) {
    const NodeId ru = find(e.u), rv = find(e.v);
    if (ru == rv) continue;
    uf[static_cast<std::size_t>(ru)] = rv;
    total += e.w;
  }
  return total;
}

TEST(PrimMst, LineGraph) {
  const Graph g = test::line(5);
  const auto parent = prim_mst(g, 0, Metric::kCost);
  EXPECT_EQ(parent[0], kInvalidNode);
  for (NodeId v = 1; v < 5; ++v) EXPECT_EQ(parent[static_cast<std::size_t>(v)], v - 1);
}

TEST(PrimMst, PrefersCheapEdges) {
  Graph g(3);
  g.add_edge(0, 1, 1, 10);
  g.add_edge(0, 2, 1, 1);
  g.add_edge(1, 2, 1, 1);
  const auto parent = prim_mst(g, 0, Metric::kCost);
  // MST must use 0-2 and 2-1 (total 2), not 0-1 (10).
  EXPECT_EQ(parent[2], 0);
  EXPECT_EQ(parent[1], 2);
}

TEST(PrimMst, DisconnectedLeavesUnreached) {
  Graph g(4);
  g.add_edge(0, 1, 1, 1);
  g.add_edge(2, 3, 1, 1);
  const auto parent = prim_mst(g, 0, Metric::kCost);
  EXPECT_EQ(parent[1], 0);
  EXPECT_EQ(parent[2], kInvalidNode);
  EXPECT_EQ(parent[3], kInvalidNode);
}

class PrimProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PrimProperty, MatchesKruskalWeight) {
  const auto topo = test::random_topology(GetParam(), 25);
  const Graph& g = topo.graph;
  for (const Metric metric : {Metric::kDelay, Metric::kCost}) {
    const auto parent = prim_mst(g, 0, metric);
    EXPECT_NEAR(mst_weight(g, parent, metric), kruskal_weight(g, metric), 1e-6);
  }
}

TEST_P(PrimProperty, SpansConnectedGraph) {
  const auto topo = test::random_topology(GetParam(), 25);
  const Graph& g = topo.graph;
  const auto parent = prim_mst(g, 0, Metric::kCost);
  int reached = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    if (v == 0 || parent[static_cast<std::size_t>(v)] != kInvalidNode)
      ++reached;
  EXPECT_EQ(reached, g.num_nodes());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrimProperty,
                         ::testing::Values(5, 17, 23, 404));

TEST(PrimDense, SmallMatrix) {
  // Complete graph on 3 nodes with weights 0-1:1, 0-2:5, 1-2:2.
  const double inf = kUnreachable;
  const std::vector<std::vector<double>> w{
      {inf, 1, 5}, {1, inf, 2}, {5, 2, inf}};
  const auto parent = prim_mst_dense(w, 0);
  EXPECT_EQ(parent[0], kInvalidNode);
  EXPECT_EQ(parent[1], 0);
  EXPECT_EQ(parent[2], 1);
}

TEST(PrimDense, UnreachablePartition) {
  const double inf = kUnreachable;
  const std::vector<std::vector<double>> w{
      {inf, 1, inf}, {1, inf, inf}, {inf, inf, inf}};
  const auto parent = prim_mst_dense(w, 0);
  EXPECT_EQ(parent[1], 0);
  EXPECT_EQ(parent[2], kInvalidNode);
}

TEST(PrimDense, SingleNode) {
  const auto parent = prim_mst_dense({{kUnreachable}}, 0);
  EXPECT_EQ(parent.size(), 1u);
  EXPECT_EQ(parent[0], kInvalidNode);
}

}  // namespace
}  // namespace scmp::graph
