// Incremental path-database updates: AllPairsPaths::apply_link_event must
// leave the database bit-identical to a from-scratch rebuild on the
// post-event graph, while recomputing only the dirty sources. Also covers
// the parallel rebuild path (one Dijkstra source per compute-pool task),
// which must be bit-identical to the serial one.
#include "graph/paths.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/compute_pool.hpp"
#include "helpers.hpp"
#include "topo/arpanet.hpp"
#include "util/rng.hpp"

namespace scmp::graph {
namespace {

void expect_identical(const AllPairsPaths& got, const AllPairsPaths& want) {
  ASSERT_EQ(got.num_nodes(), want.num_nodes());
  for (NodeId s = 0; s < got.num_nodes(); ++s) {
    for (const bool least_cost : {false, true}) {
      const ShortestPaths& x = least_cost ? got.lc_from(s) : got.sl_from(s);
      const ShortestPaths& y = least_cost ? want.lc_from(s) : want.sl_from(s);
      // operator== on the double vectors is exact; inf compares equal for
      // unreachable slots and no field is ever NaN.
      ASSERT_EQ(x.dist, y.dist) << "source " << s;
      ASSERT_EQ(x.companion, y.companion) << "source " << s;
      ASSERT_EQ(x.hops, y.hops) << "source " << s;
      ASSERT_EQ(x.parent, y.parent) << "source " << s;
    }
  }
}

/// Removes up to `rounds` random edges (keeping the graph connected, like
/// the churn model-checker does), applying each as an incremental event and
/// holding the database to the from-scratch oracle; then restores them.
void churn_edges(Graph g, std::uint64_t seed, int rounds) {
  AllPairsPaths db(g);
  Rng rng(seed);
  std::vector<std::pair<NodeId, NodeId>> removed;
  std::vector<EdgeAttr> attrs;
  for (int i = 0; i < rounds; ++i) {
    const auto u =
        static_cast<NodeId>(rng.uniform_int(0, g.num_nodes() - 1));
    const auto& nbs = g.neighbors(u);
    if (nbs.empty()) continue;
    const auto pick = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(nbs.size()) - 1));
    const NodeId v = nbs[pick].to;
    const EdgeAttr attr = nbs[pick].attr;
    Graph probe = g;
    probe.remove_edge(u, v);
    if (!probe.is_connected()) continue;
    g.remove_edge(u, v);
    const int recomputed = db.apply_link_event(g, u, v);
    EXPECT_GE(recomputed, 0);
    EXPECT_LE(recomputed, g.num_nodes());
    expect_identical(db, AllPairsPaths(g));
    removed.emplace_back(u, v);
    attrs.push_back(attr);
  }
  // Links coming back up are the same event in the other direction.
  for (std::size_t i = removed.size(); i-- > 0;) {
    const auto [u, v] = removed[i];
    g.add_edge(u, v, attrs[i].delay, attrs[i].cost);
    db.apply_link_event(g, u, v);
    expect_identical(db, AllPairsPaths(g));
  }
}

TEST(PathsIncremental, EdgeChurnMatchesOracleOnArpanet) {
  Rng rng(3);
  churn_edges(topo::arpanet(rng).graph, 17, 12);
}

class PathsIncrementalProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PathsIncrementalProperty, EdgeChurnMatchesOracleOnWaxman) {
  churn_edges(test::random_topology(GetParam(), 30).graph, GetParam() + 1, 8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PathsIncrementalProperty,
                         ::testing::Values(1u, 5u, 21u));

TEST(PathsIncremental, UnusedHeavyEdgeIsCleanForAllSources) {
  // Triangle where {0, 2} is far heavier than the two-hop detour under both
  // metrics: no canonical tree ever uses it, so failing it must recompute
  // nothing and changing nothing.
  Graph g(3);
  g.add_edge(0, 1, 1, 1);
  g.add_edge(1, 2, 1, 1);
  g.add_edge(0, 2, 10, 10);
  AllPairsPaths db(g);
  g.remove_edge(0, 2);
  EXPECT_EQ(db.apply_link_event(g, 0, 2), 0);
  expect_identical(db, AllPairsPaths(g));
}

TEST(PathsIncremental, TieRecanonicalizationIsDetected) {
  // A new edge that ties an existing distance via a smaller parent id must
  // dirty the run even though no distance changes: the canonical parent
  // (minimum id among predecessors achieving the distance) flips.
  Graph g(4);
  g.add_edge(0, 2, 1, 1);
  g.add_edge(2, 3, 1, 1);
  g.add_edge(0, 1, 2, 2);
  AllPairsPaths db(g);
  EXPECT_EQ(db.sl_from(0).parent[3], 2);
  g.add_edge(1, 3, 0, 0);  // dist(0,3) stays 2.0, but now also via parent 1
  db.apply_link_event(g, 1, 3);
  expect_identical(db, AllPairsPaths(g));
  EXPECT_EQ(db.sl_from(0).parent[3], 1);
}

TEST(PathsIncremental, ParallelRebuildBitIdenticalToSerial) {
  const auto topo = test::random_topology(9, 60);
  const AllPairsPaths serial(topo.graph);
  for (int threads : {1, 2, 4, 8}) {
    const core::TreeComputePool pool(topo.graph, serial, threads);
    const AllPairsPaths parallel(topo.graph, pool.parallel_for());
    expect_identical(parallel, serial);
  }
}

TEST(PathsIncremental, ParallelLinkEventBitIdenticalToSerial) {
  auto topo = test::random_topology(9, 60);
  Graph& g = topo.graph;
  AllPairsPaths serial_db(g);
  AllPairsPaths pool_db(g);
  const core::TreeComputePool pool(g, serial_db, 4);
  const ParallelFor pf = pool.parallel_for();
  const NodeId u = 1;
  const NodeId v = g.neighbors(u).front().to;
  g.remove_edge(u, v);
  const int serial_n = serial_db.apply_link_event(g, u, v);
  const int pool_n = pool_db.apply_link_event(g, u, v, pf);
  EXPECT_EQ(serial_n, pool_n);
  expect_identical(pool_db, serial_db);
  expect_identical(pool_db, AllPairsPaths(g));
}

// Repeated parallel rebuilds over the same database: the TSan preset runs
// this test to prove the one-source-per-task fan-out is race-free (workers
// write disjoint per-source slots and only join at the barrier).
TEST(PathsIncremental, RepeatedParallelRebuildsAreRaceFree) {
  const auto topo = test::random_topology(4, 40);
  AllPairsPaths db(topo.graph);
  const core::TreeComputePool pool(topo.graph, db, 4);
  const ParallelFor pf = pool.parallel_for();
  const AllPairsPaths oracle(topo.graph);
  for (int i = 0; i < 8; ++i) {
    db.rebuild(topo.graph, pf);
  }
  expect_identical(db, oracle);
}

}  // namespace
}  // namespace scmp::graph
