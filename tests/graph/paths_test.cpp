#include "graph/paths.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "helpers.hpp"

namespace scmp::graph {
namespace {

TEST(AllPairsPaths, DiamondBothMetrics) {
  const Graph g = test::diamond();
  const AllPairsPaths paths(g);
  EXPECT_DOUBLE_EQ(paths.sl_delay(0, 3), 2.0);
  EXPECT_DOUBLE_EQ(paths.lc_cost(0, 3), 2.0);
  EXPECT_EQ(paths.sl_path(0, 3), (std::vector<NodeId>{0, 1, 3}));
  EXPECT_EQ(paths.lc_path(0, 3), (std::vector<NodeId>{0, 2, 3}));
}

TEST(AllPairsPaths, SelfDistancesZero) {
  const Graph g = test::diamond();
  const AllPairsPaths paths(g);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_DOUBLE_EQ(paths.sl_delay(v, v), 0.0);
    EXPECT_DOUBLE_EQ(paths.lc_cost(v, v), 0.0);
  }
}

TEST(AllPairsPaths, NumNodes) {
  const Graph g = test::line(7);
  const AllPairsPaths paths(g);
  EXPECT_EQ(paths.num_nodes(), 7);
}

class AllPairsProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AllPairsProperty, SymmetricAndConsistent) {
  const auto topo = test::random_topology(GetParam(), 25);
  const Graph& g = topo.graph;
  const AllPairsPaths paths(g);
  for (NodeId u = 0; u < g.num_nodes(); u += 3) {
    for (NodeId v = 0; v < g.num_nodes(); v += 5) {
      EXPECT_NEAR(paths.sl_delay(u, v), paths.sl_delay(v, u), 1e-9);
      EXPECT_NEAR(paths.lc_cost(u, v), paths.lc_cost(v, u), 1e-9);
      // The least-cost path can never have lower delay-optimality than the
      // shortest-delay path and vice versa.
      const auto slp = paths.sl_path(u, v);
      const auto lcp = paths.lc_path(u, v);
      EXPECT_LE(path_weight(g, slp, Metric::kDelay),
                path_weight(g, lcp, Metric::kDelay) + 1e-9);
      EXPECT_LE(path_weight(g, lcp, Metric::kCost),
                path_weight(g, slp, Metric::kCost) + 1e-9);
    }
  }
}

TEST_P(AllPairsProperty, PathsAgreeWithDistances) {
  const auto topo = test::random_topology(GetParam(), 20);
  const Graph& g = topo.graph;
  const AllPairsPaths paths(g);
  for (NodeId u = 0; u < g.num_nodes(); u += 4) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_NEAR(path_weight(g, paths.sl_path(u, v), Metric::kDelay),
                  paths.sl_delay(u, v), 1e-9);
      EXPECT_NEAR(path_weight(g, paths.lc_path(u, v), Metric::kCost),
                  paths.lc_cost(u, v), 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllPairsProperty,
                         ::testing::Values(3, 11, 99, 2024));

/// Reference all-pairs distances by Floyd-Warshall.
std::vector<std::vector<double>> floyd_warshall(const Graph& g,
                                                Metric metric) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  std::vector<std::vector<double>> d(n, std::vector<double>(n, kUnreachable));
  for (std::size_t v = 0; v < n; ++v) d[v][v] = 0.0;
  for (NodeId u = 0; u < g.num_nodes(); ++u)
    for (const auto& nb : g.neighbors(u))
      d[static_cast<std::size_t>(u)][static_cast<std::size_t>(nb.to)] =
          weight_of(nb.attr, metric);
  for (std::size_t k = 0; k < n; ++k)
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j)
        d[i][j] = std::min(d[i][j], d[i][k] + d[k][j]);
  return d;
}

class FloydWarshallCrossCheck
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FloydWarshallCrossCheck, DistancesAgree) {
  const auto topo = test::random_topology(GetParam(), 22);
  const Graph& g = topo.graph;
  const AllPairsPaths paths(g);
  const auto fw_delay = floyd_warshall(g, Metric::kDelay);
  const auto fw_cost = floyd_warshall(g, Metric::kCost);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      ASSERT_NEAR(paths.sl_delay(u, v),
                  fw_delay[static_cast<std::size_t>(u)]
                          [static_cast<std::size_t>(v)],
                  1e-6);
      ASSERT_NEAR(paths.lc_cost(u, v),
                  fw_cost[static_cast<std::size_t>(u)]
                         [static_cast<std::size_t>(v)],
                  1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FloydWarshallCrossCheck,
                         ::testing::Values(4, 44, 444));

}  // namespace
}  // namespace scmp::graph
