// Dual-weight property tests: every Dijkstra run's companion weight and hop
// count must describe exactly the canonical path its dist/parent vectors
// describe — bit-identical to re-walking the materialized path with
// path_weight(), because both accumulate edge weights in the same
// source-to-destination order. DCDM's table-lookup candidate scan is only
// equivalent to the old materialize-and-rewalk scan because of this.
#include "graph/dijkstra.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "graph/paths.hpp"
#include "helpers.hpp"
#include "topo/arpanet.hpp"

namespace scmp::graph {
namespace {

void expect_dual_weights_exact(const Graph& g) {
  std::vector<NodeId> buf;
  for (Metric metric : {Metric::kDelay, Metric::kCost}) {
    const Metric comp = companion_of(metric);
    for (NodeId s = 0; s < g.num_nodes(); ++s) {
      const ShortestPaths sp = dijkstra(g, s, metric);
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        const std::vector<NodeId> path = sp.path_to(v);
        if (!sp.reachable(v)) {
          EXPECT_TRUE(path.empty());
          EXPECT_EQ(sp.hop_count(v), -1);
          EXPECT_EQ(sp.companion_distance(v), kUnreachable);
          continue;
        }
        // EXPECT_EQ, not EXPECT_NEAR: the claim is bit-identity, not
        // numerical closeness.
        EXPECT_EQ(sp.distance(v), path_weight(g, path, metric))
            << "source " << s << " dest " << v;
        EXPECT_EQ(sp.companion_distance(v), path_weight(g, path, comp))
            << "source " << s << " dest " << v;
        EXPECT_EQ(sp.hop_count(v),
                  static_cast<std::int32_t>(path.size()) - 1);
        sp.path_to_into(v, buf);
        EXPECT_EQ(buf, path);
      }
    }
  }
}

TEST(DualWeight, ExactOnArpanet) {
  Rng rng(3);
  expect_dual_weights_exact(topo::arpanet(rng).graph);
}

TEST(DualWeight, ExactOnPaperFig5) {
  expect_dual_weights_exact(test::paper_fig5_topology());
}

class DualWeightProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DualWeightProperty, ExactOnSeededWaxman) {
  expect_dual_weights_exact(test::random_topology(GetParam(), 40).graph);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DualWeightProperty,
                         ::testing::Values(1u, 7u, 13u, 99u, 2026u));

TEST(DualWeight, AllPairsTablesMatchMaterializedPaths) {
  const auto topo = test::random_topology(11, 30);
  const Graph& g = topo.graph;
  const AllPairsPaths paths(g);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(paths.sl_cost(u, v),
                path_weight(g, paths.sl_path(u, v), Metric::kCost));
      EXPECT_EQ(paths.lc_delay(u, v),
                path_weight(g, paths.lc_path(u, v), Metric::kDelay));
    }
  }
}

TEST(DualWeight, DisconnectedComponentStaysUnreachable) {
  Graph g(4);
  g.add_edge(0, 1, 1, 2);
  g.add_edge(2, 3, 3, 4);
  const ShortestPaths sp = dijkstra(g, 0, Metric::kDelay);
  EXPECT_FALSE(sp.reachable(2));
  EXPECT_EQ(sp.companion_distance(2), kUnreachable);
  EXPECT_EQ(sp.hop_count(2), -1);
  std::vector<NodeId> buf{99};
  sp.path_to_into(2, buf);
  EXPECT_TRUE(buf.empty());
}

}  // namespace
}  // namespace scmp::graph
