#include "graph/dijkstra.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"

namespace scmp::graph {
namespace {

TEST(Dijkstra, LineGraphDistances) {
  const Graph g = test::line(5);
  const ShortestPaths sp = dijkstra(g, 0, Metric::kDelay);
  for (NodeId v = 0; v < 5; ++v) EXPECT_DOUBLE_EQ(sp.distance(v), v);
}

TEST(Dijkstra, DiamondMetricsDiffer) {
  const Graph g = test::diamond();
  const ShortestPaths by_delay = dijkstra(g, 0, Metric::kDelay);
  const ShortestPaths by_cost = dijkstra(g, 0, Metric::kCost);
  EXPECT_DOUBLE_EQ(by_delay.distance(3), 2.0);   // 0-1-3
  EXPECT_DOUBLE_EQ(by_cost.distance(3), 2.0);    // 0-2-3
  EXPECT_EQ(by_delay.path_to(3), (std::vector<NodeId>{0, 1, 3}));
  EXPECT_EQ(by_cost.path_to(3), (std::vector<NodeId>{0, 2, 3}));
}

TEST(Dijkstra, SourceDistanceZero) {
  const Graph g = test::diamond();
  const ShortestPaths sp = dijkstra(g, 2, Metric::kDelay);
  EXPECT_DOUBLE_EQ(sp.distance(2), 0.0);
  EXPECT_EQ(sp.path_to(2), std::vector<NodeId>{2});
}

TEST(Dijkstra, UnreachableNode) {
  Graph g(3);
  g.add_edge(0, 1, 1, 1);
  const ShortestPaths sp = dijkstra(g, 0, Metric::kDelay);
  EXPECT_FALSE(sp.reachable(2));
  EXPECT_TRUE(sp.path_to(2).empty());
}

TEST(Dijkstra, PaperFig5UnicastDelays) {
  // The paper's worked example quotes these shortest delays from node 0.
  const Graph g = test::paper_fig5_topology();
  const ShortestPaths sp = dijkstra(g, 0, Metric::kDelay);
  EXPECT_DOUBLE_EQ(sp.distance(4), 12.0);  // ul(g1), via 0-1-4
  EXPECT_DOUBLE_EQ(sp.distance(3), 2.0);   // ul(g2), via 0-3
  EXPECT_DOUBLE_EQ(sp.distance(5), 11.0);  // ul(g3), via 0-2-5
  EXPECT_EQ(sp.path_to(4), (std::vector<NodeId>{0, 1, 4}));
  EXPECT_EQ(sp.path_to(5), (std::vector<NodeId>{0, 2, 5}));
}

TEST(Dijkstra, DeterministicTieBreaking) {
  // Two equal-delay paths 0->3: 0-1-3 and 0-2-3; canonical tree must pick the
  // smaller-id parent (1).
  Graph g(4);
  g.add_edge(0, 1, 1, 1);
  g.add_edge(0, 2, 1, 1);
  g.add_edge(1, 3, 1, 1);
  g.add_edge(2, 3, 1, 1);
  const ShortestPaths sp = dijkstra(g, 0, Metric::kDelay);
  EXPECT_EQ(sp.parent[3], 1);
}

TEST(Dijkstra, ZeroWeightEdges) {
  Graph g(3);
  g.add_edge(0, 1, 0, 0);
  g.add_edge(1, 2, 0, 0);
  const ShortestPaths sp = dijkstra(g, 0, Metric::kDelay);
  EXPECT_DOUBLE_EQ(sp.distance(2), 0.0);
  EXPECT_EQ(sp.path_to(2).size(), 3u);
}

class DijkstraProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DijkstraProperty, EdgeRelaxationHolds) {
  const auto topo = test::random_topology(GetParam());
  const Graph& g = topo.graph;
  for (const Metric metric : {Metric::kDelay, Metric::kCost}) {
    const ShortestPaths sp = dijkstra(g, 0, metric);
    // No edge can improve any distance (Bellman optimality).
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      for (const auto& nb : g.neighbors(u)) {
        EXPECT_LE(sp.distance(nb.to),
                  sp.distance(u) + weight_of(nb.attr, metric) + 1e-9);
      }
    }
  }
}

TEST_P(DijkstraProperty, PathsMatchDistances) {
  const auto topo = test::random_topology(GetParam());
  const Graph& g = topo.graph;
  const ShortestPaths sp = dijkstra(g, 3 % g.num_nodes(), Metric::kDelay);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto path = sp.path_to(v);
    ASSERT_FALSE(path.empty());
    EXPECT_NEAR(path_weight(g, path, Metric::kDelay), sp.distance(v), 1e-9);
  }
}

TEST_P(DijkstraProperty, SymmetricDistances) {
  // Links are symmetric, so d(u,v) == d(v,u).
  const auto topo = test::random_topology(GetParam(), 20);
  const Graph& g = topo.graph;
  const ShortestPaths from0 = dijkstra(g, 0, Metric::kDelay);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const ShortestPaths back = dijkstra(g, v, Metric::kDelay);
    EXPECT_NEAR(from0.distance(v), back.distance(0), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DijkstraProperty,
                         ::testing::Values(1, 7, 42, 1001, 31337));

}  // namespace
}  // namespace scmp::graph
