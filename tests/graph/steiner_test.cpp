#include "graph/steiner.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/mst.hpp"
#include "helpers.hpp"

namespace scmp::graph {
namespace {

/// Exact minimum-cost Steiner tree by brute force over Steiner-node subsets;
/// feasible only for tiny graphs.
double optimal_steiner_cost(const Graph& g, NodeId root,
                            const std::vector<NodeId>& members) {
  std::vector<NodeId> required{root};
  required.insert(required.end(), members.begin(), members.end());
  std::sort(required.begin(), required.end());
  required.erase(std::unique(required.begin(), required.end()),
                 required.end());
  std::vector<NodeId> optional;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    if (!std::binary_search(required.begin(), required.end(), v))
      optional.push_back(v);

  double best = kUnreachable;
  const int subsets = 1 << optional.size();
  for (int mask = 0; mask < subsets; ++mask) {
    // Induced subgraph on required + selected optionals; its MST cost (if it
    // spans all required nodes) is a candidate.
    std::vector<char> in(static_cast<std::size_t>(g.num_nodes()), 0);
    for (NodeId v : required) in[static_cast<std::size_t>(v)] = 1;
    for (std::size_t i = 0; i < optional.size(); ++i)
      if (mask & (1 << i)) in[static_cast<std::size_t>(optional[i])] = 1;

    Graph sub(g.num_nodes());
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (!in[static_cast<std::size_t>(u)]) continue;
      for (const auto& nb : g.neighbors(u)) {
        if (u < nb.to && in[static_cast<std::size_t>(nb.to)] &&
            !sub.has_edge(u, nb.to))
          sub.add_edge(u, nb.to, nb.attr.delay, nb.attr.cost);
      }
    }
    const auto parent = prim_mst(sub, root, Metric::kCost);
    double cost = 0.0;
    bool spans = true;
    for (NodeId v : required) {
      if (v != root && parent[static_cast<std::size_t>(v)] == kInvalidNode) {
        spans = false;
        break;
      }
    }
    if (!spans) continue;
    // Cost of the MST restricted to branches leading to required nodes: prune
    // non-required leaves first by walking up from required nodes.
    std::vector<char> keep(static_cast<std::size_t>(g.num_nodes()), 0);
    for (NodeId v : required) {
      NodeId cur = v;
      while (cur != kInvalidNode && !keep[static_cast<std::size_t>(cur)]) {
        keep[static_cast<std::size_t>(cur)] = 1;
        cur = parent[static_cast<std::size_t>(cur)];
      }
    }
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (!keep[static_cast<std::size_t>(v)]) continue;
      const NodeId p = parent[static_cast<std::size_t>(v)];
      if (p == kInvalidNode) continue;
      cost += g.edge(v, p)->cost;
    }
    best = std::min(best, cost);
  }
  return best;
}

TEST(KmbSteiner, TrivialSingleMember) {
  const Graph g = test::line(4);
  const AllPairsPaths paths(g);
  const MulticastTree t = kmb_steiner(g, paths, 0, {3});
  EXPECT_TRUE(t.on_tree(3));
  EXPECT_TRUE(t.is_member(3));
  EXPECT_DOUBLE_EQ(t.tree_cost(g), 3.0);
}

TEST(KmbSteiner, MemberEqualsRoot) {
  const Graph g = test::line(3);
  const AllPairsPaths paths(g);
  const MulticastTree t = kmb_steiner(g, paths, 0, {0});
  EXPECT_EQ(t.tree_size(), 1);
  EXPECT_DOUBLE_EQ(t.tree_cost(g), 0.0);
}

TEST(KmbSteiner, UsesSteinerNode) {
  // Star around node 4: terminals 0..2 are best connected through the hub,
  // and the hub routes are also the pairwise least-cost paths (2 < 2.5), so
  // KMB's terminal closure discovers the Steiner node.
  Graph g(5);
  g.add_edge(0, 4, 1, 1);
  g.add_edge(1, 4, 1, 1);
  g.add_edge(2, 4, 1, 1);
  g.add_edge(0, 1, 1, 2.5);
  g.add_edge(1, 2, 1, 2.5);
  const AllPairsPaths paths(g);
  const MulticastTree t = kmb_steiner(g, paths, 0, {1, 2});
  EXPECT_TRUE(t.on_tree(4));  // the Steiner node
  EXPECT_DOUBLE_EQ(t.tree_cost(g), 3.0);
}

TEST(KmbSteiner, PrunesUselessLeaves) {
  const Graph g = test::diamond();
  const AllPairsPaths paths(g);
  const MulticastTree t = kmb_steiner(g, paths, 0, {3});
  // Only one of the two 0->3 routes may survive.
  EXPECT_EQ(t.tree_size(), 3);
  EXPECT_DOUBLE_EQ(t.tree_cost(g), 2.0);  // cheap route 0-2-3
}

TEST(KmbSteiner, DuplicateMembersAccepted) {
  const Graph g = test::line(4);
  const AllPairsPaths paths(g);
  const MulticastTree t = kmb_steiner(g, paths, 0, {3, 3, 2});
  EXPECT_TRUE(t.is_member(3));
  EXPECT_TRUE(t.is_member(2));
}

class KmbProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KmbProperty, SpansAllMembersAndValidates) {
  const auto topo = test::random_topology(GetParam(), 30);
  const Graph& g = topo.graph;
  const AllPairsPaths paths(g);
  Rng rng(GetParam() * 31);
  const auto sample = rng.sample_without_replacement(g.num_nodes() - 1, 8);
  std::vector<NodeId> members;
  for (int v : sample) members.push_back(v + 1);  // avoid the root
  const MulticastTree t = kmb_steiner(g, paths, 0, members);
  EXPECT_TRUE(t.validate(g));
  for (NodeId m : members) {
    EXPECT_TRUE(t.on_tree(m));
    EXPECT_TRUE(t.is_member(m));
  }
  // Every tree leaf must be a member (or the root): KMB prunes the rest.
  for (NodeId v : t.on_tree_nodes()) {
    if (t.is_leaf(v) && v != t.root()) {
      EXPECT_TRUE(t.is_member(v));
    }
  }
}

TEST_P(KmbProperty, WithinTwiceOptimalOnSmallGraphs) {
  // KMB guarantees cost <= 2(1 - 1/|terminals|) * optimal.
  const auto topo = test::random_topology(GetParam(), 10, 0.4, 0.6);
  const Graph& g = topo.graph;
  const AllPairsPaths paths(g);
  const std::vector<NodeId> members{1, 3, 5};
  const MulticastTree t = kmb_steiner(g, paths, 0, members);
  const double opt = optimal_steiner_cost(g, 0, members);
  ASSERT_LT(opt, kUnreachable);
  EXPECT_LE(t.tree_cost(g), 2.0 * opt + 1e-6);
  EXPECT_GE(t.tree_cost(g), opt - 1e-6);
}

TEST_P(KmbProperty, NoWorseThanUnionOfLeastCostPaths) {
  const auto topo = test::random_topology(GetParam(), 25);
  const Graph& g = topo.graph;
  const AllPairsPaths paths(g);
  Rng rng(GetParam() * 77);
  const auto sample = rng.sample_without_replacement(g.num_nodes() - 1, 6);
  std::vector<NodeId> members;
  for (int v : sample) members.push_back(v + 1);
  const MulticastTree t = kmb_steiner(g, paths, 0, members);
  double union_bound = 0.0;
  for (NodeId m : members) union_bound += paths.lc_cost(0, m);
  EXPECT_LE(t.tree_cost(g), union_bound + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KmbProperty,
                         ::testing::Values(4, 8, 15, 16, 23, 42));

}  // namespace
}  // namespace scmp::graph
