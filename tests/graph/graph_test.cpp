#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"

namespace scmp::graph {
namespace {

TEST(Graph, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_nodes(), 0);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_TRUE(g.is_connected());  // vacuously
}

TEST(Graph, AddNodesAndEdges) {
  Graph g(3);
  EXPECT_EQ(g.num_nodes(), 3);
  g.add_edge(0, 1, 2.0, 3.0);
  g.add_edge(1, 2, 4.0, 5.0);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));  // symmetric
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(Graph, EdgeAttributes) {
  Graph g(2);
  g.add_edge(0, 1, 2.5, 7.5);
  const EdgeAttr* e = g.edge(0, 1);
  ASSERT_NE(e, nullptr);
  EXPECT_DOUBLE_EQ(e->delay, 2.5);
  EXPECT_DOUBLE_EQ(e->cost, 7.5);
  const EdgeAttr* rev = g.edge(1, 0);
  ASSERT_NE(rev, nullptr);
  EXPECT_DOUBLE_EQ(rev->delay, 2.5);  // symmetric links
  EXPECT_DOUBLE_EQ(rev->cost, 7.5);
}

TEST(Graph, AddNodeGrows) {
  Graph g(1);
  const NodeId v = g.add_node();
  EXPECT_EQ(v, 1);
  EXPECT_EQ(g.num_nodes(), 2);
  g.add_edge(0, v, 1, 1);
  EXPECT_TRUE(g.has_edge(0, 1));
}

TEST(Graph, RemoveEdge) {
  Graph g(3);
  g.add_edge(0, 1, 1, 1);
  g.add_edge(1, 2, 1, 1);
  EXPECT_TRUE(g.remove_edge(0, 1));
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_FALSE(g.remove_edge(0, 1));  // already gone
}

TEST(Graph, Degree) {
  Graph g = test::diamond();
  EXPECT_EQ(g.degree(0), 2);
  EXPECT_EQ(g.degree(3), 2);
  EXPECT_DOUBLE_EQ(g.average_degree(), 2.0);
}

TEST(Graph, Neighbors) {
  Graph g = test::line(4);
  EXPECT_EQ(g.neighbors(0).size(), 1u);
  EXPECT_EQ(g.neighbors(1).size(), 2u);
  EXPECT_EQ(g.neighbors(1)[0].to, 0);
  EXPECT_EQ(g.neighbors(1)[1].to, 2);
}

TEST(Graph, Connectivity) {
  Graph g(4);
  g.add_edge(0, 1, 1, 1);
  g.add_edge(2, 3, 1, 1);
  EXPECT_FALSE(g.is_connected());
  g.add_edge(1, 2, 1, 1);
  EXPECT_TRUE(g.is_connected());
}

TEST(Graph, SingleNodeConnected) {
  Graph g(1);
  EXPECT_TRUE(g.is_connected());
}

TEST(Graph, PathWeight) {
  Graph g = test::line(4);
  const std::vector<NodeId> path{0, 1, 2, 3};
  EXPECT_DOUBLE_EQ(path_weight(g, path, Metric::kDelay), 3.0);
  EXPECT_DOUBLE_EQ(path_weight(g, path, Metric::kCost), 3.0);
}

TEST(Graph, PathWeightEmptyAndSingle) {
  Graph g = test::line(3);
  EXPECT_DOUBLE_EQ(path_weight(g, {}, Metric::kDelay), 0.0);
  EXPECT_DOUBLE_EQ(path_weight(g, {1}, Metric::kDelay), 0.0);
}

TEST(GraphDeath, RejectsSelfLoop) {
  Graph g(2);
  EXPECT_DEATH(g.add_edge(0, 0, 1, 1), "Precondition");
}

TEST(GraphDeath, RejectsDuplicateEdge) {
  Graph g(2);
  g.add_edge(0, 1, 1, 1);
  EXPECT_DEATH(g.add_edge(0, 1, 2, 2), "Precondition");
}

TEST(GraphDeath, RejectsNegativeWeights) {
  Graph g(2);
  EXPECT_DEATH(g.add_edge(0, 1, -1, 1), "Precondition");
}

TEST(Graph, WeightOfSelectsMetric) {
  const EdgeAttr e{3.0, 9.0};
  EXPECT_DOUBLE_EQ(weight_of(e, Metric::kDelay), 3.0);
  EXPECT_DOUBLE_EQ(weight_of(e, Metric::kCost), 9.0);
}

TEST(Graph, CsrMatchesAdjacency) {
  Graph g = test::line(5);
  g.add_edge(0, 3, 2.0, 4.0);
  const Graph::CsrView& csr = g.csr();
  std::size_t total = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto& adj = g.neighbors(u);
    const auto row = csr.row(u);
    ASSERT_EQ(row.size(), adj.size());
    std::size_t i = 0;
    for (const auto& nb : row) {
      // Same neighbours in the same order, same attributes — CSR is a flat
      // relayout, not a reordering.
      EXPECT_EQ(nb.to, adj[i].to);
      EXPECT_DOUBLE_EQ(nb.attr.delay, adj[i].attr.delay);
      EXPECT_DOUBLE_EQ(nb.attr.cost, adj[i].attr.cost);
      ++i;
    }
    total += row.size();
  }
  EXPECT_EQ(csr.num_entries(), total);
  EXPECT_EQ(csr.num_entries(), 2 * static_cast<std::size_t>(g.num_edges()));
}

TEST(Graph, CsrInvalidatedByMutation) {
  Graph g = test::line(4);
  EXPECT_EQ(g.csr().num_entries(), 6u);
  g.add_edge(0, 2, 1.0, 1.0);
  EXPECT_EQ(g.csr().num_entries(), 8u);
  g.remove_edge(0, 1);
  EXPECT_EQ(g.csr().num_entries(), 6u);
  const NodeId n = g.add_node();
  g.add_edge(n, 0, 1.0, 1.0);
  const Graph::CsrView& csr = g.csr();
  EXPECT_EQ(csr.num_entries(), 8u);
  ASSERT_EQ(csr.row(n).size(), 1u);
  EXPECT_EQ(csr.row(n).begin()->to, 0);
}

}  // namespace
}  // namespace scmp::graph
