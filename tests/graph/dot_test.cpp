#include "graph/dot.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"

namespace scmp::graph {
namespace {

TEST(Dot, TopologyContainsAllNodesAndEdges) {
  const Graph g = test::diamond();
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("graph topology {"), std::string::npos);
  for (int v = 0; v < 4; ++v)
    EXPECT_NE(dot.find("n" + std::to_string(v)), std::string::npos);
  EXPECT_NE(dot.find("n0 -- n1"), std::string::npos);
  EXPECT_NE(dot.find("n2 -- n3"), std::string::npos);
  // Edge labels carry (delay, cost).
  EXPECT_NE(dot.find("(1,10)"), std::string::npos);
  EXPECT_NE(dot.find("(5,1)"), std::string::npos);
}

TEST(Dot, EachUndirectedEdgeEmittedOnce) {
  const Graph g = test::line(3);
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("n0 -- n1"), std::string::npos);
  EXPECT_EQ(dot.find("n1 -- n0"), std::string::npos);
}

TEST(Dot, TreeOverlayMarksRootMembersAndTreeEdges) {
  const Graph g = test::paper_fig5_topology();
  MulticastTree t(0, 6);
  t.graft_path({0, 1, 4});
  t.set_member(4, true);
  const std::string dot = to_dot(g, t);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);  // root
  EXPECT_NE(dot.find("(m-router)"), std::string::npos);
  EXPECT_NE(dot.find("fillcolor=lightgrey"), std::string::npos);  // member
  EXPECT_NE(dot.find("penwidth=3"), std::string::npos);           // tree edge
  EXPECT_NE(dot.find("style=dotted"), std::string::npos);  // non-tree edge
}

TEST(Dot, TreeEdgesMatchTreeStructure) {
  const Graph g = test::line(4);
  MulticastTree t(0, 4);
  t.graft_path({0, 1, 2});
  const std::string dot = to_dot(g, t);
  // 0-1 and 1-2 are tree edges; 2-3 is not.
  const auto pos01 = dot.find("n0 -- n1");
  const auto pos23 = dot.find("n2 -- n3");
  ASSERT_NE(pos01, std::string::npos);
  ASSERT_NE(pos23, std::string::npos);
  EXPECT_NE(dot.find("penwidth=3", pos01), std::string::npos);
  EXPECT_NE(dot.find("style=dotted", pos23), std::string::npos);
}

TEST(DotDeath, TreeMustMatchGraphSize) {
  const Graph g = test::line(4);
  MulticastTree t(0, 5);
  EXPECT_DEATH(to_dot(g, t), "Precondition");
}

}  // namespace
}  // namespace scmp::graph
