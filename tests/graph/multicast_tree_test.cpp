#include "graph/multicast_tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/dijkstra.hpp"
#include "helpers.hpp"

namespace scmp::graph {
namespace {

TEST(MulticastTree, InitiallyOnlyRoot) {
  const Graph g = test::line(4);
  MulticastTree t(0, g.num_nodes());
  EXPECT_EQ(t.root(), 0);
  EXPECT_TRUE(t.on_tree(0));
  EXPECT_FALSE(t.on_tree(1));
  EXPECT_EQ(t.tree_size(), 1);
  EXPECT_TRUE(t.validate(g));
}

TEST(MulticastTree, GraftSimplePath) {
  const Graph g = test::line(4);
  MulticastTree t(0, 4);
  t.graft_path({0, 1, 2, 3});
  EXPECT_TRUE(t.on_tree(3));
  EXPECT_EQ(t.parent(3), 2);
  EXPECT_EQ(t.parent(1), 0);
  EXPECT_EQ(t.tree_size(), 4);
  EXPECT_TRUE(t.validate(g));
}

TEST(MulticastTree, GraftOverlappingPathsShareEdges) {
  const Graph g = test::diamond();
  MulticastTree t(0, 4);
  t.graft_path({0, 1, 3});
  t.graft_path({0, 1});  // fully contained: no change
  EXPECT_EQ(t.tree_size(), 3);
  EXPECT_TRUE(t.validate(g));
}

TEST(MulticastTree, MembersTracked) {
  const Graph g = test::line(4);
  MulticastTree t(0, 4);
  t.graft_path({0, 1, 2});
  t.set_member(2, true);
  EXPECT_TRUE(t.is_member(2));
  EXPECT_EQ(t.members(), std::vector<NodeId>{2});
  t.set_member(2, false);
  EXPECT_TRUE(t.members().empty());
}

TEST(MulticastTreeDeath, MemberMustBeOnTree) {
  const Graph g = test::line(4);
  MulticastTree t(0, 4);
  EXPECT_DEATH(t.set_member(3, true), "Precondition");
}

TEST(MulticastTree, PruneRemovesDanglingChain) {
  const Graph g = test::line(5);
  MulticastTree t(0, 5);
  t.graft_path({0, 1, 2, 3, 4});
  t.set_member(4, true);
  t.set_member(4, false);
  t.prune_upward_from(4);
  EXPECT_EQ(t.tree_size(), 1);  // everything back to the root pruned
  EXPECT_TRUE(t.validate(g));
}

TEST(MulticastTree, PruneStopsAtMember) {
  const Graph g = test::line(5);
  MulticastTree t(0, 5);
  t.graft_path({0, 1, 2, 3, 4});
  t.set_member(2, true);
  t.prune_upward_from(4);
  EXPECT_TRUE(t.on_tree(2));
  EXPECT_FALSE(t.on_tree(3));
  EXPECT_FALSE(t.on_tree(4));
  EXPECT_TRUE(t.validate(g));
}

TEST(MulticastTree, PruneStopsAtBranchingNode) {
  Graph g(5);
  g.add_edge(0, 1, 1, 1);
  g.add_edge(1, 2, 1, 1);
  g.add_edge(1, 3, 1, 1);
  g.add_edge(3, 4, 1, 1);
  MulticastTree t(0, 5);
  t.graft_path({0, 1, 2});
  t.graft_path({1, 3, 4});
  t.set_member(2, true);
  t.prune_upward_from(4);
  // 4 and 3 go; 1 stays because it still leads to member 2.
  EXPECT_FALSE(t.on_tree(4));
  EXPECT_FALSE(t.on_tree(3));
  EXPECT_TRUE(t.on_tree(1));
  EXPECT_TRUE(t.validate(g));
}

TEST(MulticastTree, PruneNeverRemovesRoot) {
  const Graph g = test::line(3);
  MulticastTree t(0, 3);
  t.prune_upward_from(0);
  EXPECT_TRUE(t.on_tree(0));
}

TEST(MulticastTree, LoopEliminationReparents) {
  // Paper Fig. 5(c)->(d): grafting 0-2-5 when 2 is on the tree via 1
  // re-parents 2 under 0 and removes edge 1-2; 1 survives (it leads to 4).
  const Graph g = test::paper_fig5_topology();
  MulticastTree t(0, 6);
  t.graft_path({0, 1, 4});
  t.set_member(4, true);
  t.graft_path({1, 2, 3});
  t.set_member(3, true);

  t.graft_path({0, 2, 5});
  t.set_member(5, true);

  EXPECT_EQ(t.parent(2), 0);
  EXPECT_EQ(t.parent(3), 2);  // 2's old subtree stays attached
  EXPECT_EQ(t.parent(5), 2);
  EXPECT_TRUE(t.on_tree(1));
  EXPECT_EQ(t.parent(4), 1);
  // Children of 1 no longer include 2.
  const auto& kids1 = t.children(1);
  EXPECT_EQ(std::count(kids1.begin(), kids1.end(), 2), 0);
  EXPECT_TRUE(t.validate(g));
}

TEST(MulticastTree, LoopEliminationPrunesOldBranch) {
  // Old branch to the re-entered node becomes dangling and is removed.
  Graph g(6);
  g.add_edge(0, 1, 1, 1);
  g.add_edge(1, 2, 1, 1);
  g.add_edge(2, 3, 1, 1);
  g.add_edge(0, 4, 1, 1);
  g.add_edge(4, 3, 1, 1);
  g.add_edge(3, 5, 1, 1);
  MulticastTree t(0, 6);
  t.graft_path({0, 1, 2, 3});
  t.set_member(3, true);
  // New path re-enters at 3; old chain 1-2 carried no members -> pruned.
  t.graft_path({0, 4, 3, 5});
  t.set_member(5, true);
  EXPECT_FALSE(t.on_tree(1));
  EXPECT_FALSE(t.on_tree(2));
  EXPECT_EQ(t.parent(3), 4);
  EXPECT_EQ(t.parent(5), 3);
  EXPECT_TRUE(t.validate(g));
}

TEST(MulticastTree, GraftThroughAncestorDoesNotCycle) {
  // Path that climbs back through an ancestor must not create a cycle.
  const Graph g = test::line(5);
  MulticastTree t(0, 5);
  t.graft_path({0, 1, 2});
  t.set_member(2, true);
  // Path from graft node 2 back through ancestor 1 then descending again is
  // degenerate here, but exercises the ancestor guard.
  t.graft_path({2, 1, 0});
  EXPECT_TRUE(t.validate(g));
  EXPECT_TRUE(t.on_tree(2));
  EXPECT_EQ(t.parent(2), 1);
}

TEST(MulticastTree, CostAndDelay) {
  Graph g(4);
  g.add_edge(0, 1, 2, 10);
  g.add_edge(1, 2, 3, 20);
  g.add_edge(1, 3, 4, 30);
  MulticastTree t(0, 4);
  t.graft_path({0, 1, 2});
  t.graft_path({1, 3});
  t.set_member(2, true);
  t.set_member(3, true);
  EXPECT_DOUBLE_EQ(t.tree_cost(g), 60.0);
  EXPECT_DOUBLE_EQ(t.node_delay(g, 2), 5.0);
  EXPECT_DOUBLE_EQ(t.node_delay(g, 3), 6.0);
  EXPECT_DOUBLE_EQ(t.tree_delay(g), 6.0);
}

TEST(MulticastTree, TreeDelayIgnoresNonMembers) {
  Graph g(3);
  g.add_edge(0, 1, 5, 1);
  g.add_edge(1, 2, 5, 1);
  MulticastTree t(0, 3);
  t.graft_path({0, 1, 2});
  t.set_member(1, true);  // 2 is a non-member leaf (transient state)
  EXPECT_DOUBLE_EQ(t.tree_delay(g), 5.0);
}

TEST(MulticastTree, PathFromRoot) {
  const Graph g = test::line(4);
  MulticastTree t(0, 4);
  t.graft_path({0, 1, 2, 3});
  EXPECT_EQ(t.path_from_root(3), (std::vector<NodeId>{0, 1, 2, 3}));
  EXPECT_EQ(t.path_from_root(0), std::vector<NodeId>{0});
}

TEST(MulticastTree, EdgesList) {
  const Graph g = test::line(3);
  MulticastTree t(0, 3);
  t.graft_path({0, 1, 2});
  const auto edges = t.edges();
  EXPECT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], (std::pair<NodeId, NodeId>{1, 0}));
  EXPECT_EQ(edges[1], (std::pair<NodeId, NodeId>{2, 1}));
}

TEST(MulticastTree, ValidateDetectsMissingGraphEdge) {
  // Build a tree whose edge does not exist in a *different* graph.
  Graph g1 = test::line(3);
  Graph g2(3);
  g2.add_edge(0, 2, 1, 1);
  MulticastTree t(0, 3);
  t.graft_path({0, 1});
  EXPECT_TRUE(t.validate(g1));
  EXPECT_FALSE(t.validate(g2));
}

class TreeRandomOps : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TreeRandomOps, InvariantsUnderChurn) {
  const auto topo = test::random_topology(GetParam(), 30);
  const Graph& g = topo.graph;
  const ShortestPaths sp = dijkstra(g, 0, Metric::kDelay);
  Rng rng(GetParam() ^ 0xabcdef);
  MulticastTree t(0, g.num_nodes());
  std::set<NodeId> joined;
  for (int step = 0; step < 200; ++step) {
    const NodeId v =
        static_cast<NodeId>(rng.uniform_int(1, g.num_nodes() - 1));
    if (!joined.contains(v)) {
      if (!t.on_tree(v)) t.graft_path(sp.path_to(v));
      t.set_member(v, true);
      joined.insert(v);
    } else {
      t.set_member(v, false);
      t.prune_upward_from(v);
      joined.erase(v);
    }
    ASSERT_TRUE(t.validate(g)) << "step " << step;
    for (NodeId m : joined) ASSERT_TRUE(t.is_member(m));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeRandomOps,
                         ::testing::Values(2, 9, 77, 555, 90210));

}  // namespace
}  // namespace scmp::graph
