#include "graph/spt.hpp"

#include <gtest/gtest.h>

#include "graph/dijkstra.hpp"
#include "helpers.hpp"

namespace scmp::graph {
namespace {

TEST(Spt, SingleMember) {
  const Graph g = test::diamond();
  const MulticastTree t = shortest_path_tree(g, 0, {3});
  EXPECT_TRUE(t.is_member(3));
  EXPECT_DOUBLE_EQ(t.node_delay(g, 3), 2.0);  // 0-1-3
  EXPECT_TRUE(t.validate(g));
}

TEST(Spt, EmptyMembers) {
  const Graph g = test::line(3);
  const MulticastTree t = shortest_path_tree(g, 0, {});
  EXPECT_EQ(t.tree_size(), 1);
  EXPECT_DOUBLE_EQ(t.tree_delay(g), 0.0);
}

TEST(Spt, MemberDelaysEqualUnicastDelays) {
  const Graph g = test::paper_fig5_topology();
  const std::vector<NodeId> members{3, 4, 5};
  const MulticastTree t = shortest_path_tree(g, 0, members);
  const ShortestPaths sp = dijkstra(g, 0, Metric::kDelay);
  for (NodeId m : members)
    EXPECT_DOUBLE_EQ(t.node_delay(g, m), sp.distance(m));
  // SPT achieves the minimum possible tree delay: max unicast delay.
  EXPECT_DOUBLE_EQ(t.tree_delay(g), 12.0);
}

class SptProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SptProperty, AlwaysMinimalDelayPerMember) {
  const auto topo = test::random_topology(GetParam(), 30);
  const Graph& g = topo.graph;
  Rng rng(GetParam() + 1);
  const auto sample = rng.sample_without_replacement(g.num_nodes() - 1, 10);
  std::vector<NodeId> members;
  for (int v : sample) members.push_back(v + 1);
  const MulticastTree t = shortest_path_tree(g, 0, members);
  const ShortestPaths sp = dijkstra(g, 0, Metric::kDelay);
  EXPECT_TRUE(t.validate(g));
  for (NodeId m : members)
    EXPECT_NEAR(t.node_delay(g, m), sp.distance(m), 1e-9);
}

TEST_P(SptProperty, CostAtMostSumOfPaths) {
  const auto topo = test::random_topology(GetParam(), 30);
  const Graph& g = topo.graph;
  Rng rng(GetParam() + 2);
  const auto sample = rng.sample_without_replacement(g.num_nodes() - 1, 10);
  std::vector<NodeId> members;
  for (int v : sample) members.push_back(v + 1);
  const MulticastTree t = shortest_path_tree(g, 0, members);
  const ShortestPaths sp = dijkstra(g, 0, Metric::kDelay);
  double sum = 0.0;
  for (NodeId m : members)
    sum += path_weight(g, sp.path_to(m), Metric::kCost);
  EXPECT_LE(t.tree_cost(g), sum + 1e-9);  // shared prefixes only help
}

INSTANTIATE_TEST_SUITE_P(Seeds, SptProperty, ::testing::Values(6, 21, 300));

}  // namespace
}  // namespace scmp::graph
