// ThreadSanitizer-targeted stress test for the logger: worker threads
// (compute pool, parallel fabric routing) log while the driver changes the
// level. The level is a relaxed atomic — before that fix this test was a
// guaranteed TSan data-race report on g_level.
#include "util/log.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace scmp {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(LogRace, ConcurrentLoggingWhileLevelToggles) {
  LogLevelGuard guard;
  constexpr int kWriters = 4;
  constexpr int kIterations = 2000;

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([w] {
      for (int i = 0; i < kIterations; ++i) {
        // kOff/kError toggling keeps these suppressed (no stderr spam);
        // the point is the concurrent level *reads*.
        log_info("writer ", w, " iteration ", i);
        log_trace("writer ", w, " detail ", i);
      }
    });
  }
  // Toggle the level concurrently with the readers.
  for (int i = 0; i < 500; ++i)
    set_log_level(i % 2 == 0 ? LogLevel::kError : LogLevel::kOff);
  for (auto& t : writers) t.join();

  const LogLevel final = log_level();
  EXPECT_TRUE(final == LogLevel::kError || final == LogLevel::kOff);
}

TEST(LogRace, ConcurrentEmissionKeepsLinesWhole) {
  // Lines from concurrent log_line calls may interleave with each other but
  // never tear mid-line (single fprintf per line); this exercises the
  // emission path itself from several threads.
  LogLevelGuard guard;
  set_log_level(LogLevel::kInfo);
  constexpr int kWriters = 4;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([w] {
      for (int i = 0; i < 5; ++i) log_info("emitter ", w, " line ", i);
    });
  }
  for (auto& t : writers) t.join();
}

}  // namespace
}  // namespace scmp
