#include "util/table.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

namespace scmp {
namespace {

TEST(Table, PrintsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  // Header, rule and two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Table, CsvFormat) {
  Table t({"a", "b", "c"});
  t.add_row({"1", "2", "3"});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "a,b,c\n1,2,3\n");
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.14159, 0), "3");
  EXPECT_EQ(Table::num(-1.5, 1), "-1.5");
}

TEST(Table, RowCount) {
  Table t({"h"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"r1"});
  t.add_row({"r2"});
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TableDeath, RejectsWrongArity) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "Precondition");
}

}  // namespace
}  // namespace scmp
