#include "util/log.hpp"

#include <gtest/gtest.h>

#include "sim/packet.hpp"

namespace scmp {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, DefaultLevelIsOff) {
  EXPECT_EQ(log_level(), LogLevel::kOff);
}

TEST(Log, LevelsAreOrdered) {
  EXPECT_LT(LogLevel::kOff, LogLevel::kError);
  EXPECT_LT(LogLevel::kError, LogLevel::kInfo);
  EXPECT_LT(LogLevel::kInfo, LogLevel::kDebug);
  EXPECT_LT(LogLevel::kDebug, LogLevel::kTrace);
}

TEST(Log, SetAndRestoreLevel) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
}

TEST(Log, ConcatFormatsMixedArguments) {
  EXPECT_EQ(detail::concat("node ", 5, " cost ", 2.5), "node 5 cost 2.5");
  EXPECT_EQ(detail::concat(), "");
}

TEST(Log, EmittingAtEveryLevelDoesNotCrash) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kTrace);
  log_info("info ", 1);
  log_debug("debug ", 2);
  log_trace("trace ", 3);
  set_log_level(LogLevel::kOff);
  log_info("suppressed");
}

TEST(PacketDescribe, CoversEveryType) {
  using sim::PacketType;
  for (const auto type :
       {PacketType::kData, PacketType::kDataEncap, PacketType::kJoin,
        PacketType::kLeave, PacketType::kTree, PacketType::kBranch,
        PacketType::kPrune, PacketType::kClear, PacketType::kCbtJoin,
        PacketType::kCbtAck, PacketType::kCbtQuit, PacketType::kDvmrpPrune,
        PacketType::kDvmrpGraft, PacketType::kPimJoin, PacketType::kPimPrune,
        PacketType::kGroupLsa, PacketType::kIgmpQuery,
        PacketType::kIgmpReport, PacketType::kIgmpLeave}) {
    EXPECT_STRNE(sim::to_string(type), "UNKNOWN");
    sim::Packet p;
    p.type = type;
    p.group = 7;
    EXPECT_NE(sim::describe(p).find("group=7"), std::string::npos);
  }
}

TEST(PacketDescribe, DataClassification) {
  EXPECT_TRUE(sim::is_data_type(sim::PacketType::kData));
  EXPECT_TRUE(sim::is_data_type(sim::PacketType::kDataEncap));
  EXPECT_FALSE(sim::is_data_type(sim::PacketType::kTree));
  EXPECT_FALSE(sim::is_data_type(sim::PacketType::kGroupLsa));
}

}  // namespace
}  // namespace scmp
