#include "util/inline_function.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <memory>
#include <utility>

namespace scmp::util {
namespace {

TEST(InlineFunction, DefaultIsEmpty) {
  InlineFunction<int()> f;
  EXPECT_FALSE(static_cast<bool>(f));
  InlineFunction<int()> g = nullptr;
  EXPECT_FALSE(static_cast<bool>(g));
}

TEST(InlineFunction, InvokesSmallCallableInline) {
  int hits = 0;
  InlineFunction<void()> f{[&hits] { ++hits; }};
  static_assert(InlineFunction<void()>::stores_inline<decltype([] {})>());
  ASSERT_TRUE(static_cast<bool>(f));
  f();
  f();
  EXPECT_EQ(hits, 2);
}

TEST(InlineFunction, PassesArgumentsAndReturns) {
  InlineFunction<int(int, int)> add{[](int a, int b) { return a + b; }};
  EXPECT_EQ(add(2, 3), 5);
}

TEST(InlineFunction, MoveTransfersOwnership) {
  int hits = 0;
  InlineFunction<void()> f{[&hits] { ++hits; }};
  InlineFunction<void()> g = std::move(f);
  EXPECT_FALSE(static_cast<bool>(f));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(g));
  g();
  EXPECT_EQ(hits, 1);
}

TEST(InlineFunction, MoveAssignReplacesTarget) {
  int a = 0;
  int b = 0;
  InlineFunction<void()> f{[&a] { ++a; }};
  InlineFunction<void()> g{[&b] { ++b; }};
  g = std::move(f);
  g();
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 0);
}

TEST(InlineFunction, MoveOnlyCapture) {
  auto p = std::make_unique<int>(41);
  InlineFunction<int()> f{[p = std::move(p)] { return *p + 1; }};
  InlineFunction<int()> g = std::move(f);
  EXPECT_EQ(g(), 42);
}

TEST(InlineFunction, OversizedCallableBoxes) {
  // A capture larger than the inline buffer must still work (heap boxed).
  std::array<std::size_t, 64> big{};
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = i;
  auto fn = [big] {
    std::size_t sum = 0;
    for (const std::size_t v : big) sum += v;
    return sum;
  };
  static_assert(sizeof(fn) > 64);
  static_assert(!InlineFunction<std::size_t()>::stores_inline<decltype(fn)>());
  InlineFunction<std::size_t()> f{fn};
  InlineFunction<std::size_t()> g = std::move(f);
  EXPECT_EQ(g(), 64u * 63u / 2u);
}

TEST(InlineFunction, ResetClears) {
  InlineFunction<void()> f{[] {}};
  ASSERT_TRUE(static_cast<bool>(f));
  f.reset();
  EXPECT_FALSE(static_cast<bool>(f));
}

TEST(InlineFunction, CapacityBoundary) {
  // Exactly-at-capacity callables stay inline; one byte over boxes.
  struct Fit {
    std::array<std::byte, 64> pad;
    void operator()() const {}
  };
  static_assert(InlineFunction<void()>::stores_inline<Fit>());
  struct Over {
    std::array<std::byte, 65> pad;
    void operator()() const {}
  };
  static_assert(!InlineFunction<void()>::stores_inline<Over>());
  InlineFunction<void()> f{Fit{}};
  InlineFunction<void()> g{Over{}};
  f();
  g();
}

TEST(InlineFunctionDeath, InvokingEmptyTraps) {
  InlineFunction<void()> f;
  EXPECT_DEATH(f(), "Precondition");
}

}  // namespace
}  // namespace scmp::util
