#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace scmp {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(7.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 7.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 7.5);
  EXPECT_DOUBLE_EQ(s.max(), 7.5);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations = 32.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MatchesDirectComputation) {
  Rng rng(5);
  std::vector<double> xs;
  RunningStats s;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform_real(-100.0, 100.0);
    xs.push_back(x);
    s.add(x);
  }
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-7);
}

TEST(RunningStats, Ci95Shrinks) {
  Rng rng(6);
  RunningStats small, large;
  for (int i = 0; i < 10; ++i) small.add(rng.uniform01());
  Rng rng2(6);
  for (int i = 0; i < 1000; ++i) large.add(rng2.uniform01());
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(Summarize, FromVector) {
  const Summary s = summarize(std::vector<double>{1.0, 2.0, 3.0});
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
  EXPECT_NEAR(s.stddev, 1.0, 1e-12);
}

TEST(Median, OddCount) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
}

TEST(Median, EvenCount) {
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(Median, SingleElement) { EXPECT_DOUBLE_EQ(median({42.0}), 42.0); }

TEST(Median, Duplicates) {
  EXPECT_DOUBLE_EQ(median({5.0, 5.0, 5.0, 5.0}), 5.0);
}

}  // namespace
}  // namespace scmp
