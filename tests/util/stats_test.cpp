#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace scmp {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(7.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 7.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 7.5);
  EXPECT_DOUBLE_EQ(s.max(), 7.5);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations = 32.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MatchesDirectComputation) {
  Rng rng(5);
  std::vector<double> xs;
  RunningStats s;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform_real(-100.0, 100.0);
    xs.push_back(x);
    s.add(x);
  }
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-7);
}

TEST(RunningStats, Ci95Shrinks) {
  Rng rng(6);
  RunningStats small, large;
  for (int i = 0; i < 10; ++i) small.add(rng.uniform01());
  Rng rng2(6);
  for (int i = 0; i < 1000; ++i) large.add(rng2.uniform01());
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(Summarize, FromVector) {
  const Summary s = summarize(std::vector<double>{1.0, 2.0, 3.0});
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
  EXPECT_NEAR(s.stddev, 1.0, 1e-12);
}

TEST(Median, OddCount) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
}

TEST(Median, EvenCount) {
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(Median, SingleElement) { EXPECT_DOUBLE_EQ(median({42.0}), 42.0); }

TEST(Median, Duplicates) {
  EXPECT_DOUBLE_EQ(median({5.0, 5.0, 5.0, 5.0}), 5.0);
}

// ---- LogBuckets / histogram quantiles -------------------------------------

TEST(LogBuckets, IndexEdgeCases) {
  EXPECT_EQ(LogBuckets::index(0.0), 0);
  EXPECT_EQ(LogBuckets::index(-1.0), 0);
  EXPECT_EQ(LogBuckets::index(std::nan("")), 0);
  EXPECT_EQ(LogBuckets::index(std::ldexp(1.0, LogBuckets::kMaxExp)),
            LogBuckets::kCount - 1);
  EXPECT_EQ(LogBuckets::index(1e300), LogBuckets::kCount - 1);
  // Anything below 2^kMinExp underflows.
  EXPECT_EQ(LogBuckets::index(std::ldexp(1.0, LogBuckets::kMinExp - 1)), 0);
}

TEST(LogBuckets, IndexIsMonotone) {
  int prev = LogBuckets::index(1e-12);
  for (double x = 1e-12; x < 1e7; x *= 1.07) {
    const int i = LogBuckets::index(x);
    EXPECT_GE(i, prev) << "x=" << x;
    EXPECT_GE(i, 1);
    EXPECT_LE(i, LogBuckets::kCount - 2);
    prev = i;
  }
}

TEST(LogBuckets, RepresentativeWithinBucketBounds) {
  for (double x : {1e-9, 3.7e-4, 0.5, 1.0, 42.0, 9.9e6}) {
    const int i = LogBuckets::index(x);
    const double rep = LogBuckets::representative(i);
    EXPECT_GE(rep, LogBuckets::lower(i));
    EXPECT_LT(rep, LogBuckets::lower(i + 1));
  }
}

TEST(RunningStats, QuantileAccuracyUniform) {
  // Against a known uniform distribution the histogram quantiles must land
  // within the documented ~4.4% relative bucket error (plus sampling noise).
  Rng rng(42);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.uniform_real(0.0, 1000.0));
  EXPECT_NEAR(s.p50(), 500.0, 500.0 * 0.06);
  EXPECT_NEAR(s.p95(), 950.0, 950.0 * 0.06);
  EXPECT_NEAR(s.p99(), 990.0, 990.0 * 0.06);
}

TEST(RunningStats, QuantileAccuracyLogNormalish) {
  // Heavily skewed data spanning many octaves — exactly what the log layout
  // is for. Compare against the exact empirical quantiles.
  Rng rng(7);
  std::vector<double> xs;
  RunningStats s;
  for (int i = 0; i < 20000; ++i) {
    const double x = std::exp(rng.uniform_real(-5.0, 10.0));
    xs.push_back(x);
    s.add(x);
  }
  std::sort(xs.begin(), xs.end());
  for (double q : {0.50, 0.95, 0.99}) {
    const double exact =
        xs[static_cast<std::size_t>(q * (xs.size() - 1))];
    EXPECT_NEAR(s.quantile(q), exact, exact * 0.06) << "q=" << q;
  }
}

TEST(RunningStats, QuantileClampedToObservedRange) {
  RunningStats s;
  s.add(3.0);
  s.add(5.0);
  EXPECT_GE(s.quantile(0.0), 3.0);
  EXPECT_LE(s.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(RunningStats{}.quantile(0.5), 0.0);
}

TEST(RunningStats, QuantileSingleValue) {
  RunningStats s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.p50(), 7.0);
  EXPECT_DOUBLE_EQ(s.p99(), 7.0);
}

TEST(QuantileFromCounts, EmptyAndSimple) {
  std::vector<std::uint64_t> counts(
      static_cast<std::size_t>(LogBuckets::kCount), 0);
  EXPECT_DOUBLE_EQ(quantile_from_counts(counts, 0.5), 0.0);
  const int i1 = LogBuckets::index(1.0);
  const int i8 = LogBuckets::index(8.0);
  counts[static_cast<std::size_t>(i1)] = 99;
  counts[static_cast<std::size_t>(i8)] = 1;
  // p50 falls in the bucket of 1.0, p995+ in the bucket of 8.0.
  EXPECT_DOUBLE_EQ(quantile_from_counts(counts, 0.5),
                   LogBuckets::representative(i1));
  EXPECT_DOUBLE_EQ(quantile_from_counts(counts, 0.999),
                   LogBuckets::representative(i8));
}

TEST(Summarize, CarriesQuantiles) {
  RunningStats s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  const Summary sum = summarize(s);
  EXPECT_NEAR(sum.p50, 50.0, 50.0 * 0.06);
  EXPECT_NEAR(sum.p95, 95.0, 95.0 * 0.06);
  EXPECT_NEAR(sum.p99, 99.0, 99.0 * 0.06);
}

}  // namespace
}  // namespace scmp
