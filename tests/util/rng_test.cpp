#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace scmp {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, ZeroSeedIsValid) {
  Rng r(0);
  std::set<std::uint64_t> values;
  for (int i = 0; i < 100; ++i) values.insert(r.next_u64());
  EXPECT_GT(values.size(), 90u);  // not stuck
}

TEST(Rng, UniformIntInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.uniform_int(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(Rng, UniformIntSingleton) {
  Rng r(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.uniform_int(3, 3), 3);
}

TEST(Rng, UniformIntCoversRange) {
  Rng r(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(r.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformIntApproximatelyUniform) {
  Rng r(13);
  std::vector<int> counts(10, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i)
    ++counts[static_cast<std::size_t>(r.uniform_int(0, 9))];
  for (int c : counts) {
    EXPECT_GT(c, kDraws / 10 * 0.9);
    EXPECT_LT(c, kDraws / 10 * 1.1);
  }
}

TEST(Rng, Uniform01Bounds) {
  Rng r(17);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = r.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformRealBounds) {
  Rng r(19);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform_real(2.5, 7.5);
    EXPECT_GE(v, 2.5);
    EXPECT_LT(v, 7.5);
  }
}

TEST(Rng, UniformRealDegenerateRange) {
  Rng r(19);
  EXPECT_DOUBLE_EQ(r.uniform_real(4.0, 4.0), 4.0);
}

TEST(Rng, ChanceExtremes) {
  Rng r(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng r(29);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i)
    if (r.chance(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(31);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  r.shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
}

TEST(Rng, ShuffleEmptyAndSingle) {
  Rng r(31);
  std::vector<int> empty;
  r.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{5};
  r.shuffle(one);
  EXPECT_EQ(one, std::vector<int>{5});
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng r(37);
  const auto sample = r.sample_without_replacement(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<int> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), 20u);
  for (int v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 50);
  }
}

TEST(Rng, SampleFullPopulation) {
  Rng r(37);
  const auto sample = r.sample_without_replacement(10, 10);
  std::set<int> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), 10u);
}

TEST(Rng, SampleZero) {
  Rng r(37);
  EXPECT_TRUE(r.sample_without_replacement(10, 0).empty());
}

TEST(Rng, ForkIsIndependent) {
  Rng a(41);
  Rng b = a.fork();
  // The fork should not replay the parent's stream.
  Rng a2(41);
  a2.next_u64();  // advance like `a` did while forking
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (b.next_u64() == a2.next_u64()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitmixDeterministic) {
  std::uint64_t s1 = 99, s2 = 99;
  for (int i = 0; i < 10; ++i) EXPECT_EQ(splitmix64(s1), splitmix64(s2));
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, MeanNearHalf) {
  Rng r(GetParam());
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) sum += r.uniform01();
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST_P(RngSeedSweep, SampleAlwaysDistinct) {
  Rng r(GetParam());
  for (int k = 0; k <= 30; k += 10) {
    const auto s = r.sample_without_replacement(30, k);
    std::set<int> d(s.begin(), s.end());
    EXPECT_EQ(d.size(), static_cast<std::size_t>(k));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(1, 2, 3, 1234, 987654321,
                                           0xdeadbeefULL));

}  // namespace
}  // namespace scmp
