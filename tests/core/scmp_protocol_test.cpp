#include "core/scmp.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "helpers.hpp"

namespace scmp::core {
namespace {

constexpr proto::GroupId kGroup = 1;

/// Wires a full SCMP domain on a given topology and tracks data deliveries.
class ScmpFixture {
 public:
  explicit ScmpFixture(graph::Graph graph, graph::NodeId mrouter = 0,
                       Scmp::Config extra = {})
      : g_(std::move(graph)), net_(g_, queue_), igmp_(queue_, g_.num_nodes()) {
    extra.mrouter = mrouter;
    scmp_ = std::make_unique<Scmp>(net_, igmp_, extra);
    net_.set_delivery_callback(
        [this](const sim::Packet& pkt, graph::NodeId member, sim::SimTime) {
          deliveries_[pkt.uid].push_back(member);
        });
  }

  void join(graph::NodeId r) { scmp_->host_join(r, kGroup); }
  void leave(graph::NodeId r) { scmp_->host_leave(r, kGroup); }
  void drain() { queue_.run_all(); }

  /// Sends one data packet and returns the sorted list of member routers
  /// that received it.
  std::vector<graph::NodeId> send_and_collect(graph::NodeId source) {
    const auto before = deliveries_.size();
    scmp_->send_data(source, kGroup);
    drain();
    EXPECT_LE(deliveries_.size(), before + 1);
    if (deliveries_.size() == before) return {};
    auto got = deliveries_.rbegin()->second;
    std::sort(got.begin(), got.end());
    return got;
  }

  graph::Graph g_;
  sim::EventQueue queue_;
  sim::Network net_;
  igmp::IgmpDomain igmp_;
  std::unique_ptr<Scmp> scmp_;
  std::map<std::uint64_t, std::vector<graph::NodeId>> deliveries_;
};

TEST(ScmpProtocol, SingleJoinInstallsBranch) {
  ScmpFixture f(test::line(4));
  f.join(3);
  f.drain();
  EXPECT_TRUE(f.scmp_->network_state_consistent(kGroup));
  const Scmp::Entry* e = f.scmp_->entry_at(3, kGroup);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->upstream, 2);
  EXPECT_TRUE(e->downstream_routers.empty());
  EXPECT_EQ(e->downstream_ifaces.size(), 1u);
  // Relay routers 1 and 2 have entries with no interfaces.
  const Scmp::Entry* relay = f.scmp_->entry_at(1, kGroup);
  ASSERT_NE(relay, nullptr);
  EXPECT_EQ(relay->upstream, 0);
  EXPECT_EQ(relay->downstream_routers, std::set<graph::NodeId>{2});
  EXPECT_TRUE(relay->downstream_ifaces.empty());
}

TEST(ScmpProtocol, JoinRecordsSessionAndMembership) {
  ScmpFixture f(test::line(4));
  f.join(3);
  f.drain();
  EXPECT_TRUE(f.scmp_->database().session_active(kGroup));
  EXPECT_TRUE(f.scmp_->database().members_of(kGroup).contains(3));
  EXPECT_EQ(f.scmp_->database().billing_events(3), 1);
}

TEST(ScmpProtocol, DataReachesAllMembersExactlyOnce) {
  ScmpFixture f(test::paper_fig5_topology());
  for (graph::NodeId m : {4, 3, 5}) f.join(m);
  f.drain();
  EXPECT_TRUE(f.scmp_->network_state_consistent(kGroup));
  const auto got = f.send_and_collect(0);  // m-router originates
  EXPECT_EQ(got, (std::vector<graph::NodeId>{3, 4, 5}));
}

TEST(ScmpProtocol, OnTreeSourceUsesBidirectionalTree) {
  ScmpFixture f(test::paper_fig5_topology());
  for (graph::NodeId m : {4, 3, 5}) f.join(m);
  f.drain();
  // Member 4 sends: the packet travels up toward the root and down all other
  // branches without passing through an encapsulation step.
  const double encap_before = f.net_.stats().data_overhead;
  const auto got = f.send_and_collect(4);
  EXPECT_EQ(got, (std::vector<graph::NodeId>{3, 4, 5}));
  EXPECT_GT(f.net_.stats().data_overhead, encap_before);
}

TEST(ScmpProtocol, OffTreeSourceEncapsulatesToMRouter) {
  ScmpFixture f(test::line(5));
  f.join(2);
  f.drain();
  // Node 4 is off the tree (tree is 0-1-2): its packet is unicast to the
  // m-router first, crossing 4-3, 3-2, 2-1, 1-0 as encapsulated data, then
  // multicast down 0-1-2.
  const auto got = f.send_and_collect(4);
  EXPECT_EQ(got, (std::vector<graph::NodeId>{2}));
  EXPECT_EQ(f.net_.stats().data_link_crossings, 4u + 2u);
}

TEST(ScmpProtocol, SourceIsAlsoMember) {
  ScmpFixture f(test::paper_fig5_topology());
  for (graph::NodeId m : {4, 3}) f.join(m);
  f.drain();
  const auto got = f.send_and_collect(3);
  EXPECT_EQ(got, (std::vector<graph::NodeId>{3, 4}));
}

TEST(ScmpProtocol, LeavePrunesLeafBranch) {
  ScmpFixture f(test::line(4));
  f.join(3);
  f.drain();
  f.leave(3);
  f.drain();
  EXPECT_TRUE(f.scmp_->network_state_consistent(kGroup));
  EXPECT_EQ(f.scmp_->entry_at(3, kGroup), nullptr);
  EXPECT_EQ(f.scmp_->entry_at(2, kGroup), nullptr);  // relay chain pruned
  EXPECT_EQ(f.scmp_->entry_at(1, kGroup), nullptr);
  EXPECT_FALSE(f.scmp_->database().members_of(kGroup).contains(3));
}

TEST(ScmpProtocol, LeaveOfRelayMemberKeepsForwardingState) {
  ScmpFixture f(test::line(4));
  f.join(2);
  f.join(3);
  f.drain();
  f.leave(2);  // 2 still relays to 3
  f.drain();
  EXPECT_TRUE(f.scmp_->network_state_consistent(kGroup));
  ASSERT_NE(f.scmp_->entry_at(2, kGroup), nullptr);
  const auto got = f.send_and_collect(0);
  EXPECT_EQ(got, (std::vector<graph::NodeId>{3}));
}

TEST(ScmpProtocol, RestructureInstallsFullTree) {
  // The Fig. 5 join sequence: g3's join re-parents node 2, which cannot be
  // expressed as a BRANCH, so the m-router reinstalls whole subtrees.
  // Joins are drained one at a time to pin the paper's g1-then-g2 order
  // (otherwise the shorter unicast delay of g2's JOIN reorders them).
  ScmpFixture f(test::paper_fig5_topology());
  f.join(4);
  f.drain();
  f.join(3);
  f.drain();
  const Scmp::Entry* n1_before = f.scmp_->entry_at(1, kGroup);
  ASSERT_NE(n1_before, nullptr);
  EXPECT_TRUE(n1_before->downstream_routers.contains(2));

  f.join(5);
  f.drain();
  EXPECT_TRUE(f.scmp_->network_state_consistent(kGroup));
  const Scmp::Entry* n1 = f.scmp_->entry_at(1, kGroup);
  ASSERT_NE(n1, nullptr);
  EXPECT_FALSE(n1->downstream_routers.contains(2));  // re-parented away
  const Scmp::Entry* n2 = f.scmp_->entry_at(2, kGroup);
  ASSERT_NE(n2, nullptr);
  EXPECT_EQ(n2->upstream, 0);
  EXPECT_EQ(n2->downstream_routers, (std::set<graph::NodeId>{3, 5}));

  const auto got = f.send_and_collect(0);
  EXPECT_EQ(got, (std::vector<graph::NodeId>{3, 4, 5}));
}

TEST(ScmpProtocol, AlwaysFullTreeConfig) {
  Scmp::Config cfg;
  cfg.always_full_tree = true;
  ScmpFixture f(test::line(4), 0, cfg);
  f.join(3);
  f.join(2);
  f.drain();
  EXPECT_TRUE(f.scmp_->network_state_consistent(kGroup));
  const auto got = f.send_and_collect(0);
  EXPECT_EQ(got, (std::vector<graph::NodeId>{2, 3}));
}

TEST(ScmpProtocol, MRouterItselfCanBeMember) {
  ScmpFixture f(test::line(3));
  f.join(0);  // a host on the m-router's own subnet
  f.join(2);
  f.drain();
  const auto got = f.send_and_collect(1);  // off-tree source
  EXPECT_EQ(got, (std::vector<graph::NodeId>{0, 2}));
}

TEST(ScmpProtocol, SecondIfaceJoinIsSubnetLocal) {
  ScmpFixture f(test::line(3));
  f.scmp_->host_join(2, kGroup, /*iface=*/0, /*host=*/0);
  f.drain();
  const auto crossings = f.net_.stats().protocol_link_crossings;
  // Paper §III-B: a JOIN goes to the m-router only when the interface is the
  // *only* member interface; a second interface is handled locally.
  f.scmp_->host_join(2, kGroup, /*iface=*/1, /*host=*/1);
  f.drain();
  EXPECT_EQ(f.net_.stats().protocol_link_crossings, crossings);
  EXPECT_TRUE(f.scmp_->network_state_consistent(kGroup));
  const Scmp::Entry* e = f.scmp_->entry_at(2, kGroup);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->downstream_ifaces.size(), 2u);
  EXPECT_EQ(f.scmp_->database().billing_events(2), 1);
}

TEST(ScmpProtocol, RelayGainingFirstIfaceSendsAccountingJoin) {
  // A pure relay whose subnet gains its first member must inform the
  // m-router even though the tree does not change (paper §III-B).
  ScmpFixture f(test::line(4));
  f.join(3);  // makes 1 and 2 relays
  f.drain();
  const auto crossings = f.net_.stats().protocol_link_crossings;
  f.join(2);
  f.drain();
  EXPECT_GT(f.net_.stats().protocol_link_crossings, crossings);
  EXPECT_TRUE(f.scmp_->database().members_of(kGroup).contains(2));
  EXPECT_TRUE(f.scmp_->network_state_consistent(kGroup));
}

TEST(ScmpProtocol, PartialIfaceLeaveKeepsMembership) {
  ScmpFixture f(test::line(3));
  f.scmp_->host_join(2, kGroup, 0, 0);
  f.scmp_->host_join(2, kGroup, 1, 1);
  f.drain();
  f.scmp_->host_leave(2, kGroup, 0, 0);
  f.drain();
  EXPECT_TRUE(f.scmp_->network_state_consistent(kGroup));
  const auto got = f.send_and_collect(0);
  EXPECT_EQ(got, (std::vector<graph::NodeId>{2}));
}

TEST(ScmpProtocol, EndGroupSessionTearsDownEverything) {
  ScmpFixture f(test::line(4));
  f.join(2);
  f.join(3);
  f.drain();
  f.scmp_->end_group_session(kGroup);
  f.drain();
  for (graph::NodeId v = 0; v < 4; ++v)
    EXPECT_EQ(f.scmp_->entry_at(v, kGroup), nullptr);
  EXPECT_FALSE(f.scmp_->database().session_active(kGroup));
  // Data after teardown reaches nobody.
  EXPECT_TRUE(f.send_and_collect(0).empty());
}

TEST(ScmpProtocol, IdleSessionExpiresPerPolicy) {
  // NOTE: drain() (run_all) would execute the *future* expiry event too, so
  // these tests advance simulated time explicitly with run_until.
  ScmpFixture f(test::line(4));
  f.scmp_->set_session_idle_expiry(5.0);
  f.join(3);
  f.queue_.run_until(1.0);
  f.leave(3);
  f.queue_.run_until(2.0);
  EXPECT_TRUE(f.scmp_->database().session_active(kGroup));  // within grace
  f.queue_.run_until(10.0);
  EXPECT_FALSE(f.scmp_->database().session_active(kGroup));
  EXPECT_EQ(f.scmp_->group_tree(kGroup), nullptr);
}

TEST(ScmpProtocol, RejoinCancelsSessionExpiry) {
  ScmpFixture f(test::line(4));
  f.scmp_->set_session_idle_expiry(5.0);
  f.join(3);
  f.queue_.run_until(1.0);
  f.leave(3);
  f.queue_.run_until(3.0);
  f.join(2);  // rejoin inside the grace period
  f.queue_.run_until(20.0);
  EXPECT_TRUE(f.scmp_->database().session_active(kGroup));
  EXPECT_EQ(f.send_and_collect(0), (std::vector<graph::NodeId>{2}));
}

TEST(ScmpProtocol, ChurnedAndReEmptiedSessionStillExpiresEventually) {
  ScmpFixture f(test::line(4));
  f.scmp_->set_session_idle_expiry(3.0);
  f.join(3);
  f.queue_.run_until(1.0);
  f.leave(3);
  f.queue_.run_until(2.0);
  f.join(2);
  f.queue_.run_until(2.5);
  f.leave(2);  // empties again; a fresh grace period starts
  // The first grace (ends t=4) is cancelled by the churn; the second
  // (ends t=5.5) fires.
  f.queue_.run_until(4.5);
  EXPECT_TRUE(f.scmp_->database().session_active(kGroup));
  f.queue_.run_until(10.0);
  EXPECT_FALSE(f.scmp_->database().session_active(kGroup));
}

TEST(ScmpProtocol, NoExpiryWhenPolicyDisabled) {
  ScmpFixture f(test::line(4));
  f.join(3);
  f.drain();
  f.leave(3);
  f.drain();
  f.queue_.run_until(f.queue_.now() + 100.0);
  EXPECT_TRUE(f.scmp_->database().session_active(kGroup));
}

TEST(ScmpProtocol, BranchVsTreeOverheadAblation) {
  // always_full_tree must cost at least as much protocol overhead as the
  // BRANCH-based default (§III-E's motivation for BRANCH packets).
  const auto topo = test::random_topology(77, 30);
  double branch_overhead = 0.0, tree_overhead = 0.0;
  for (const bool full_tree : {false, true}) {
    Scmp::Config cfg;
    cfg.always_full_tree = full_tree;
    ScmpFixture f(topo.graph, 0, cfg);
    Rng rng(5);
    for (int v : rng.sample_without_replacement(topo.graph.num_nodes() - 1, 12))
      f.join(v + 1);
    f.drain();
    (full_tree ? tree_overhead : branch_overhead) =
        f.net_.stats().protocol_overhead;
  }
  EXPECT_LE(branch_overhead, tree_overhead);
}

class ScmpChurn : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScmpChurn, StateStaysConsistentUnderChurn) {
  const auto topo = test::random_topology(GetParam(), 35);
  ScmpFixture f(topo.graph);
  Rng rng(GetParam() * 1000 + 7);
  std::set<graph::NodeId> joined;
  for (int step = 0; step < 120; ++step) {
    const auto v = static_cast<graph::NodeId>(
        rng.uniform_int(1, topo.graph.num_nodes() - 1));
    if (joined.contains(v)) {
      f.leave(v);
      joined.erase(v);
    } else {
      f.join(v);
      joined.insert(v);
    }
    f.drain();
    ASSERT_TRUE(f.scmp_->network_state_consistent(kGroup)) << "step " << step;
  }
  // Everyone still joined hears the data.
  if (!joined.empty()) {
    const auto got = f.send_and_collect(0);
    EXPECT_EQ(got, std::vector(joined.begin(), joined.end()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScmpChurn,
                         ::testing::Values(1, 2, 3, 50, 51, 52));

}  // namespace
}  // namespace scmp::core
