// Route-level verification of SCMP's control and data plane using the
// transmit trace: not just *that* state converges, but that every packet
// walked exactly the path the paper prescribes.
#include <gtest/gtest.h>

#include "core/scmp.hpp"
#include "helpers.hpp"
#include "sim/trace.hpp"

namespace scmp::core {
namespace {

constexpr proto::GroupId kGroup = 1;

class RouteFixture {
 public:
  explicit RouteFixture(graph::Graph graph)
      : g_(std::move(graph)), net_(g_, queue_), igmp_(queue_, g_.num_nodes()),
        trace_(net_) {
    Scmp::Config cfg;
    cfg.mrouter = 0;
    scmp_ = std::make_unique<Scmp>(net_, igmp_, cfg);
  }

  graph::Graph g_;
  sim::EventQueue queue_;
  sim::Network net_;
  igmp::IgmpDomain igmp_;
  sim::TraceRecorder trace_;
  std::unique_ptr<Scmp> scmp_;
};

TEST(ScmpRoutes, JoinFollowsUnicastShortestPath) {
  // Diamond: delay-shortest 3->0 runs via 1 (delays 1+1), not via 2 (5+5).
  RouteFixture f(test::diamond());
  f.scmp_->host_join(3, kGroup);
  f.queue_.run_all();
  const auto joins = f.trace_.of_type(sim::PacketType::kJoin);
  ASSERT_EQ(joins.size(), 2u);  // two hops: 3->1, 1->0
  EXPECT_EQ(joins[0].from, 3);
  EXPECT_EQ(joins[0].to, 1);
  EXPECT_EQ(joins[1].from, 1);
  EXPECT_EQ(joins[1].to, 0);
}

TEST(ScmpRoutes, BranchWalksTheTreePathOutward) {
  RouteFixture f(test::line(5));
  f.scmp_->host_join(4, kGroup);
  f.queue_.run_all();
  const auto branches = f.trace_.of_type(sim::PacketType::kBranch);
  ASSERT_EQ(branches.size(), 4u);
  for (std::size_t i = 0; i < branches.size(); ++i) {
    EXPECT_EQ(branches[i].from, static_cast<graph::NodeId>(i));
    EXPECT_EQ(branches[i].to, static_cast<graph::NodeId>(i + 1));
  }
  // Strictly ordered in time (hop-by-hop store-and-forward).
  for (std::size_t i = 1; i < branches.size(); ++i)
    EXPECT_GT(branches[i].time, branches[i - 1].time);
}

TEST(ScmpRoutes, PruneWalksUpstreamHopByHop) {
  RouteFixture f(test::line(5));
  f.scmp_->host_join(4, kGroup);
  f.queue_.run_all();
  f.trace_.clear();
  f.scmp_->host_leave(4, kGroup);
  f.queue_.run_all();
  const auto prunes = f.trace_.of_type(sim::PacketType::kPrune);
  ASSERT_EQ(prunes.size(), 4u);  // 4->3, 3->2, 2->1, 1->0
  for (std::size_t i = 0; i < prunes.size(); ++i) {
    EXPECT_EQ(prunes[i].from, static_cast<graph::NodeId>(4 - i));
    EXPECT_EQ(prunes[i].to, static_cast<graph::NodeId>(3 - i));
  }
}

TEST(ScmpRoutes, DataPathOfOnTreeSourceIsTheTreePath) {
  RouteFixture f(test::paper_fig5_topology());
  for (graph::NodeId m : {4, 3, 5}) {
    f.scmp_->host_join(m, kGroup);
    f.queue_.run_all();
  }
  f.trace_.clear();
  f.scmp_->send_data(4, kGroup);
  f.queue_.run_all();
  // Fig. 5(d) tree: 0-1-4, 0-2, 2-3, 2-5. From member 4 the packet crosses
  // exactly the 5 tree edges, each once.
  const auto data = f.trace_.of_type(sim::PacketType::kData);
  EXPECT_EQ(data.size(), 5u);
  std::set<std::pair<graph::NodeId, graph::NodeId>> crossed;
  for (const auto& e : data) crossed.insert(std::minmax(e.from, e.to));
  const std::set<std::pair<graph::NodeId, graph::NodeId>> expected{
      {0, 1}, {1, 4}, {0, 2}, {2, 3}, {2, 5}};
  EXPECT_EQ(crossed, expected);
}

TEST(ScmpRoutes, EncapsulatedDataRoutesViaTheMRouter) {
  RouteFixture f(test::line(5));
  f.scmp_->host_join(2, kGroup);
  f.queue_.run_all();
  f.trace_.clear();
  f.scmp_->send_data(4, kGroup);  // off-tree
  f.queue_.run_all();
  // Encap hops 4->3->2->1->0, then native data 0->1->2.
  const auto encap = f.trace_.of_type(sim::PacketType::kDataEncap);
  ASSERT_EQ(encap.size(), 4u);
  EXPECT_EQ(encap.front().from, 4);
  EXPECT_EQ(encap.back().to, 0);
  const auto data = f.trace_.of_type(sim::PacketType::kData);
  ASSERT_EQ(data.size(), 2u);
  EXPECT_EQ(data[0].from, 0);
  EXPECT_EQ(data[1].to, 2);
  // The encapsulated copy keeps the original uid end to end.
  EXPECT_EQ(encap[0].uid, data[0].uid);
}

TEST(ScmpRoutes, TreeInstallSplitsPerSubtree) {
  // Star of three branches: a restructure-free full install (forced via
  // always_full_tree) sends one TREE packet per child of the root.
  graph::Graph g(4);
  g.add_edge(0, 1, 1, 1);
  g.add_edge(0, 2, 1, 1);
  g.add_edge(0, 3, 1, 1);
  sim::EventQueue queue;
  sim::Network net(g, queue);
  igmp::IgmpDomain igmp(queue, 4);
  sim::TraceRecorder trace(net);
  Scmp::Config cfg;
  cfg.mrouter = 0;
  cfg.always_full_tree = true;
  Scmp scmp(net, igmp, cfg);
  for (graph::NodeId m : {1, 2, 3}) {
    scmp.host_join(m, kGroup);
    queue.run_all();
  }
  // Joins 1, 2, 3 trigger full installs covering 1, then 2, then 3 subtrees.
  EXPECT_EQ(trace.count(sim::PacketType::kTree), 1u + 2u + 3u);
  EXPECT_TRUE(scmp.network_state_consistent(kGroup));
}

}  // namespace
}  // namespace scmp::core
