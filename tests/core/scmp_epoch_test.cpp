// Epoch-batched membership (Scmp::Config::epoch_interval) and the sharded
// service database: the batched pipeline must be *equivalent* to per-request
// processing — identical database membership and tree member sets at every
// quiescent point, full invariant catalog clean in both worlds — and its
// full distributed state must be bit-identical across database shard counts
// and compute-pool thread counts at any fixed interval. Plus the ISSUE's
// join-leave-burst regressions: a JOIN immediately followed by a LEAVE of
// the same member must converge to the no-member fixpoint with no orphan
// installed state on either path (per-request, and net-resolved at the
// epoch close), and a lossy join storm must drain the retransmission table
// back to zero.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "core/scmp.hpp"
#include "helpers.hpp"
#include "igmp/igmp.hpp"
#include "sim/event_queue.hpp"
#include "sim/network.hpp"
#include "topo/workload.hpp"
#include "util/rng.hpp"
#include "verify/auditor.hpp"
#include "verify/snapshot.hpp"

namespace scmp::core {
namespace {

struct Fixture {
  explicit Fixture(const graph::Graph& graph, Scmp::Config cfg = {})
      : g(graph), net(g, queue), igmp(queue, g.num_nodes()) {
    cfg.mrouter = 0;
    scmp = std::make_unique<Scmp>(net, igmp, cfg);
  }

  void drain() { queue.run_all(); }

  graph::Graph g;
  sim::EventQueue queue;
  sim::Network net;
  igmp::IgmpDomain igmp;
  std::unique_ptr<Scmp> scmp;
};

Scmp::Config config(double epoch_interval, int db_shards = 8) {
  Scmp::Config cfg;
  cfg.epoch_interval = epoch_interval;
  cfg.db_shards = db_shards;
  return cfg;
}

/// A deterministic churn stream chunked into bursts: every burst is applied
/// without draining in between, so a batched world folds it into one epoch.
std::vector<std::vector<topo::MemberEvent>> bursts(int num_routers,
                                                   int num_events,
                                                   int burst_size) {
  topo::ZipfChurnConfig cfg;
  cfg.num_groups = 5;
  cfg.num_events = num_events;
  cfg.horizon = 10.0;
  cfg.leave_fraction = 0.4;
  Rng rng(42);
  const std::vector<topo::MemberEvent> events =
      topo::zipf_churn(cfg, num_routers, rng);
  std::vector<std::vector<topo::MemberEvent>> out;
  for (std::size_t i = 0; i < events.size();
       i += static_cast<std::size_t>(burst_size)) {
    out.emplace_back(
        events.begin() + static_cast<std::ptrdiff_t>(i),
        events.begin() +
            static_cast<std::ptrdiff_t>(
                std::min(i + static_cast<std::size_t>(burst_size),
                         events.size())));
  }
  return out;
}

void apply_burst(Fixture& f, const std::vector<topo::MemberEvent>& burst) {
  for (const topo::MemberEvent& ev : burst) {
    if (ev.join)
      f.scmp->host_join(ev.router, ev.group, ev.iface, ev.host);
    else
      f.scmp->host_leave(ev.router, ev.group, ev.iface, ev.host);
  }
  f.drain();
}

std::vector<graph::NodeId> tree_members(const Scmp& scmp, GroupId group) {
  const DcdmTree* tree = scmp.group_tree(group);
  return tree == nullptr ? std::vector<graph::NodeId>{}
                         : tree->tree().members();
}

void expect_no_violations(const Scmp& scmp, const char* what) {
  const verify::InvariantAuditor auditor(scmp);
  for (const verify::Violation& v : auditor.audit())
    ADD_FAILURE() << what << ": " << v.invariant << ": " << v.detail;
}

// ---- equivalence property: batched vs sequential ---------------------------

TEST(ScmpEpoch, BatchedMatchesSequentialAtEveryQuiescentPoint) {
  const auto topo = test::random_topology(17, 30);
  for (const double interval : {0.25, 1.0, 5.0}) {
    Fixture batched(topo.graph, config(interval));
    Fixture sequential(topo.graph, config(0.0));
    int step = 0;
    for (const auto& burst : bursts(topo.graph.num_nodes(), 160, 7)) {
      apply_burst(batched, burst);
      apply_burst(sequential, burst);
      ++step;
      EXPECT_EQ(batched.scmp->epoch_pending(), 0u);
      std::set<GroupId> groups;
      for (GroupId g : batched.scmp->active_groups()) groups.insert(g);
      for (GroupId g : sequential.scmp->active_groups()) groups.insert(g);
      for (GroupId g : groups) {
        EXPECT_EQ(batched.scmp->database().members_of(g),
                  sequential.scmp->database().members_of(g))
            << "interval " << interval << " burst " << step << " group " << g;
        EXPECT_EQ(tree_members(*batched.scmp, g),
                  tree_members(*sequential.scmp, g))
            << "interval " << interval << " burst " << step << " group " << g;
      }
    }
    expect_no_violations(*batched.scmp, "batched");
    expect_no_violations(*sequential.scmp, "sequential");
  }
}

// ---- strict invariance: shards and pool threads are pure layout -----------

TEST(ScmpEpoch, SnapshotBitIdenticalAcrossShardAndThreadCounts) {
  const auto topo = test::random_topology(23, 30);
  const auto all_bursts = bursts(topo.graph.num_nodes(), 120, 9);
  constexpr double kInterval = 0.5;

  auto run = [&](int shards, int threads) {
    Fixture f(topo.graph, config(kInterval, shards));
    std::unique_ptr<TreeComputePool> pool;
    if (threads > 0) {
      pool = std::make_unique<TreeComputePool>(f.net.graph(),
                                               f.scmp->paths(), threads);
      f.scmp->set_compute_pool(pool.get());
    }
    for (const auto& burst : all_bursts) apply_burst(f, burst);
    return verify::take_snapshot(*f.scmp);
  };

  const verify::ScmpSnapshot reference = run(1, 0);
  EXPECT_FALSE(reference.groups.empty());
  for (const int shards : {4, 16}) {
    EXPECT_TRUE(run(shards, 0) == reference) << "shards=" << shards;
  }
  EXPECT_TRUE(run(8, 2) == reference) << "pooled rebuilds diverged";
  EXPECT_TRUE(run(8, 4) == reference) << "pooled rebuilds diverged";
}

// ---- join-leave burst regressions -----------------------------------------

TEST(ScmpEpoch, JoinThenLeaveSameBurstConvergesToNoMemberFixpoint) {
  // Per-request path: the LEAVE chases the JOIN through the m-router, so the
  // tree is built and then torn down — no installed state may survive.
  Fixture f(test::line(5), config(0.0));
  f.scmp->host_join(3, 1);
  f.scmp->host_leave(3, 1);
  f.drain();
  EXPECT_TRUE(f.scmp->database().members_of(1).empty());
  EXPECT_TRUE(tree_members(*f.scmp, 1).empty());
  const verify::GroupSnapshot snap = verify::take_group_snapshot(*f.scmp, 1);
  EXPECT_TRUE(snap.entries.empty()) << "orphan installed state survived";
  expect_no_violations(*f.scmp, "per-request join+leave");
}

TEST(ScmpEpoch, JoinThenLeaveSameEpochNetResolvesToNoOp) {
  // Batched path: both requests land in one epoch; the close net-resolves
  // them (members wanted == members on tree == none) and must not emit any
  // install wave at all.
  Fixture f(test::line(5), config(0.5));
  f.scmp->host_join(3, 1);
  f.scmp->host_leave(3, 1);
  f.drain();
  EXPECT_EQ(f.scmp->epoch_pending(), 0u);
  EXPECT_TRUE(f.scmp->database().members_of(1).empty());
  EXPECT_TRUE(tree_members(*f.scmp, 1).empty());
  const verify::GroupSnapshot snap = verify::take_group_snapshot(*f.scmp, 1);
  EXPECT_TRUE(snap.entries.empty()) << "net no-op still installed state";
  expect_no_violations(*f.scmp, "batched join+leave");
}

TEST(ScmpEpoch, RuntimeIntervalChangeTakesEffect) {
  Fixture f(test::line(6), config(0.0));
  f.scmp->host_join(3, 1);
  f.drain();
  EXPECT_EQ(tree_members(*f.scmp, 1), (std::vector<graph::NodeId>{3}));

  f.scmp->set_epoch_interval(100.0);
  f.scmp->host_join(4, 1);
  // Run far enough for the JOIN to reach the m-router but short of the
  // epoch close: the request must sit deferred, not on the tree yet.
  f.queue.run_until(f.queue.now() + 50.0);
  EXPECT_EQ(f.scmp->epoch_pending(), 1u);
  EXPECT_EQ(tree_members(*f.scmp, 1), (std::vector<graph::NodeId>{3}));
  f.drain();  // runs the epoch close
  EXPECT_EQ(f.scmp->epoch_pending(), 0u);
  EXPECT_EQ(tree_members(*f.scmp, 1), (std::vector<graph::NodeId>{3, 4}));
  expect_no_violations(*f.scmp, "runtime interval change");
}

// ---- retransmission-table high-water mark under a lossy join storm --------

TEST(ScmpEpoch, RetxTableDrainsToZeroAfterLossyJoinStorm) {
  Rng trng(5);
  const auto topo = topo::waxman_with_degree(40, 3.0, trng);
  Scmp::Config cfg = config(0.0);
  cfg.reliability.enabled = true;
  Fixture f(topo.graph, cfg);

  // Seeded coin drops 30% of control packets at egress; retransmission and
  // the reconciliation sweep must repair everything the storm lost.
  auto loss_rng = std::make_shared<Rng>(99);
  f.net.set_drop_filter(
      [loss_rng](graph::NodeId, graph::NodeId, const sim::Packet&) {
        return loss_rng->chance(0.3);
      });

  for (graph::NodeId r = 1; r <= 30; ++r)
    f.scmp->host_join(r, /*group=*/1, /*iface=*/0, /*host=*/0);
  f.drain();
  EXPECT_GT(f.scmp->retx().pending_hwm(), 0u)
      << "storm never grew the table — the regression guard is inert";

  for (int pass = 0; pass < 64; ++pass) {
    const int repairs = f.scmp->reconcile_all();
    f.drain();
    if (repairs == 0) break;
  }
  EXPECT_EQ(f.scmp->retx().pending_count(), 0u)
      << "pending retransmissions leaked past reconciliation";
  EXPECT_TRUE(f.scmp->network_state_consistent(1));
  expect_no_violations(*f.scmp, "lossy join storm");
}

}  // namespace
}  // namespace scmp::core
