// Hot-standby m-router failover (paper §V advantage 4): the secondary
// m-router runs concurrently with a replicated service database; on failover
// it rebuilds every group tree rooted at itself and reinstalls it.
#include <gtest/gtest.h>

#include <map>

#include "core/scmp.hpp"
#include "helpers.hpp"

namespace scmp::core {
namespace {

constexpr proto::GroupId kGroup = 1;

class FailoverFixture {
 public:
  explicit FailoverFixture(graph::Graph graph, graph::NodeId primary)
      : g_(std::move(graph)), net_(g_, queue_), igmp_(queue_, g_.num_nodes()) {
    Scmp::Config cfg;
    cfg.mrouter = primary;
    scmp_ = std::make_unique<Scmp>(net_, igmp_, cfg);
    net_.set_delivery_callback(
        [this](const sim::Packet& pkt, graph::NodeId member, sim::SimTime) {
          deliveries_[pkt.uid].push_back(member);
        });
  }

  std::vector<graph::NodeId> send_and_collect(graph::NodeId source) {
    scmp_->send_data(source, kGroup);
    queue_.run_all();
    if (deliveries_.empty()) return {};
    auto got = deliveries_.rbegin()->second;
    std::sort(got.begin(), got.end());
    return got;
  }

  graph::Graph g_;
  sim::EventQueue queue_;
  sim::Network net_;
  igmp::IgmpDomain igmp_;
  std::unique_ptr<Scmp> scmp_;
  std::map<std::uint64_t, std::vector<graph::NodeId>> deliveries_;
};

TEST(ScmpFailover, PromotesStandbyAndRebuildsTree) {
  const auto topo = test::random_topology(42, 30);
  FailoverFixture f(topo.graph, 0);
  Rng rng(9);
  std::vector<graph::NodeId> members;
  for (int v : rng.sample_without_replacement(topo.graph.num_nodes() - 2, 8))
    members.push_back(v + 2);  // avoid both m-router candidates 0 and 1
  for (graph::NodeId m : members) f.scmp_->host_join(m, kGroup);
  f.queue_.run_all();
  ASSERT_TRUE(f.scmp_->network_state_consistent(kGroup));

  f.scmp_->fail_over_to(1);
  f.queue_.run_all();
  EXPECT_EQ(f.scmp_->mrouter(), 1);
  EXPECT_TRUE(f.scmp_->network_state_consistent(kGroup));
  const DcdmTree* tree = f.scmp_->group_tree(kGroup);
  ASSERT_NE(tree, nullptr);
  EXPECT_EQ(tree->root(), 1);

  std::sort(members.begin(), members.end());
  EXPECT_EQ(f.send_and_collect(0), members);  // old primary is now off-tree
}

TEST(ScmpFailover, MembershipDatabaseSurvives) {
  FailoverFixture f(test::line(5), 0);
  f.scmp_->host_join(3, kGroup);
  f.scmp_->host_join(4, kGroup);
  f.queue_.run_all();
  f.scmp_->fail_over_to(2);
  f.queue_.run_all();
  EXPECT_TRUE(f.scmp_->database().members_of(kGroup).contains(3));
  EXPECT_TRUE(f.scmp_->database().members_of(kGroup).contains(4));
}

TEST(ScmpFailover, FailoverToSelfIsNoop) {
  FailoverFixture f(test::line(3), 0);
  f.scmp_->host_join(2, kGroup);
  f.queue_.run_all();
  const auto before = f.net_.stats().protocol_link_crossings;
  f.scmp_->fail_over_to(0);
  f.queue_.run_all();
  EXPECT_EQ(f.net_.stats().protocol_link_crossings, before);
  EXPECT_TRUE(f.scmp_->network_state_consistent(kGroup));
}

TEST(ScmpFailover, JoinsContinueAfterFailover) {
  FailoverFixture f(test::line(6), 0);
  f.scmp_->host_join(3, kGroup);
  f.queue_.run_all();
  f.scmp_->fail_over_to(5);
  f.queue_.run_all();
  f.scmp_->host_join(1, kGroup);
  f.queue_.run_all();
  EXPECT_TRUE(f.scmp_->network_state_consistent(kGroup));
  EXPECT_EQ(f.send_and_collect(5), (std::vector<graph::NodeId>{1, 3}));
}

TEST(ScmpFailover, LeavesContinueAfterFailover) {
  FailoverFixture f(test::line(6), 0);
  f.scmp_->host_join(3, kGroup);
  f.scmp_->host_join(1, kGroup);
  f.queue_.run_all();
  f.scmp_->fail_over_to(5);
  f.queue_.run_all();
  f.scmp_->host_leave(3, kGroup);
  f.queue_.run_all();
  EXPECT_TRUE(f.scmp_->network_state_consistent(kGroup));
  EXPECT_EQ(f.send_and_collect(5), (std::vector<graph::NodeId>{1}));
}

TEST(ScmpFailover, MultipleGroupsAllRebuilt) {
  FailoverFixture f(test::line(6), 0);
  f.scmp_->host_join(3, 1);
  f.scmp_->host_join(4, 2);
  f.queue_.run_all();
  f.scmp_->fail_over_to(5);
  f.queue_.run_all();
  EXPECT_TRUE(f.scmp_->network_state_consistent(1));
  EXPECT_TRUE(f.scmp_->network_state_consistent(2));
  EXPECT_EQ(f.scmp_->group_tree(1)->root(), 5);
  EXPECT_EQ(f.scmp_->group_tree(2)->root(), 5);
}

}  // namespace
}  // namespace scmp::core
