// Multi-group behaviour of SCMP: one m-router serves many simultaneous
// sessions (paper §II-B: the m-router "integrates multiple routers, each of
// which can serve more than one multicast groups").
#include <gtest/gtest.h>

#include <map>

#include "core/scmp.hpp"
#include "helpers.hpp"

namespace scmp::core {
namespace {

class MultiGroupFixture {
 public:
  explicit MultiGroupFixture(graph::Graph graph)
      : g_(std::move(graph)), net_(g_, queue_), igmp_(queue_, g_.num_nodes()) {
    Scmp::Config cfg;
    cfg.mrouter = 0;
    scmp_ = std::make_unique<Scmp>(net_, igmp_, cfg);
    net_.set_delivery_callback(
        [this](const sim::Packet& pkt, graph::NodeId member, sim::SimTime) {
          deliveries_[pkt.group][pkt.uid].push_back(member);
        });
  }

  void drain() { queue_.run_all(); }

  std::vector<graph::NodeId> send_and_collect(graph::NodeId src, int group) {
    const auto before = deliveries_[group].size();
    scmp_->send_data(src, group);
    drain();
    if (deliveries_[group].size() == before) return {};
    auto got = deliveries_[group].rbegin()->second;
    std::sort(got.begin(), got.end());
    return got;
  }

  graph::Graph g_;
  sim::EventQueue queue_;
  sim::Network net_;
  igmp::IgmpDomain igmp_;
  std::unique_ptr<Scmp> scmp_;
  std::map<int, std::map<std::uint64_t, std::vector<graph::NodeId>>>
      deliveries_;
};

TEST(ScmpMultiGroup, GroupsHaveIndependentTrees) {
  MultiGroupFixture f(test::random_topology(31, 30).graph);
  for (graph::NodeId m : {3, 9, 15}) f.scmp_->host_join(m, 1);
  for (graph::NodeId m : {4, 10, 16}) f.scmp_->host_join(m, 2);
  f.drain();
  EXPECT_TRUE(f.scmp_->network_state_consistent(1));
  EXPECT_TRUE(f.scmp_->network_state_consistent(2));
  EXPECT_EQ(f.scmp_->active_groups(), (std::vector<GroupId>{1, 2}));
  EXPECT_EQ(f.send_and_collect(0, 1), (std::vector<graph::NodeId>{3, 9, 15}));
  EXPECT_EQ(f.send_and_collect(0, 2), (std::vector<graph::NodeId>{4, 10, 16}));
}

TEST(ScmpMultiGroup, SameRouterInMultipleGroups) {
  MultiGroupFixture f(test::line(5));
  f.scmp_->host_join(3, 1);
  f.scmp_->host_join(3, 2);
  f.scmp_->host_join(4, 2);
  f.drain();
  const Scmp::Entry* e1 = f.scmp_->entry_at(3, 1);
  const Scmp::Entry* e2 = f.scmp_->entry_at(3, 2);
  ASSERT_NE(e1, nullptr);
  ASSERT_NE(e2, nullptr);
  EXPECT_TRUE(e1->downstream_routers.empty());
  EXPECT_EQ(e2->downstream_routers, (std::set<graph::NodeId>{4}));
  EXPECT_EQ(f.send_and_collect(0, 1), (std::vector<graph::NodeId>{3}));
  EXPECT_EQ(f.send_and_collect(0, 2), (std::vector<graph::NodeId>{3, 4}));
}

TEST(ScmpMultiGroup, LeavingOneGroupKeepsTheOther) {
  MultiGroupFixture f(test::line(5));
  f.scmp_->host_join(3, 1);
  f.scmp_->host_join(3, 2);
  f.drain();
  f.scmp_->host_leave(3, 1);
  f.drain();
  EXPECT_EQ(f.scmp_->entry_at(3, 1), nullptr);
  EXPECT_NE(f.scmp_->entry_at(3, 2), nullptr);
  EXPECT_EQ(f.send_and_collect(0, 2), (std::vector<graph::NodeId>{3}));
  EXPECT_TRUE(f.send_and_collect(0, 1).empty());
}

TEST(ScmpMultiGroup, EndingOneSessionDoesNotTouchOthers) {
  MultiGroupFixture f(test::line(5));
  f.scmp_->host_join(3, 1);
  f.scmp_->host_join(4, 2);
  f.drain();
  f.scmp_->end_group_session(1);
  f.drain();
  EXPECT_FALSE(f.scmp_->database().session_active(1));
  EXPECT_TRUE(f.scmp_->database().session_active(2));
  EXPECT_TRUE(f.send_and_collect(0, 1).empty());
  EXPECT_EQ(f.send_and_collect(0, 2), (std::vector<graph::NodeId>{4}));
}

TEST(ScmpMultiGroup, DistinctMulticastAddressesPerGroup) {
  MultiGroupFixture f(test::line(4));
  f.scmp_->host_join(2, 1);
  f.scmp_->host_join(3, 2);
  f.drain();
  const auto a1 = f.scmp_->database().address_of(1);
  const auto a2 = f.scmp_->database().address_of(2);
  ASSERT_TRUE(a1.has_value());
  ASSERT_TRUE(a2.has_value());
  EXPECT_NE(*a1, *a2);
}

TEST(ScmpMultiGroup, ManyGroupsChurnStress) {
  const auto topo = test::random_topology(77, 35);
  MultiGroupFixture f(topo.graph);
  Rng rng(1234);
  constexpr int kGroups = 8;
  std::map<int, std::set<graph::NodeId>> joined;
  for (int step = 0; step < 150; ++step) {
    const int group = 1 + static_cast<int>(rng.uniform_int(0, kGroups - 1));
    const auto v = static_cast<graph::NodeId>(
        rng.uniform_int(1, topo.graph.num_nodes() - 1));
    if (joined[group].contains(v)) {
      f.scmp_->host_leave(v, group);
      joined[group].erase(v);
    } else {
      f.scmp_->host_join(v, group);
      joined[group].insert(v);
    }
    f.drain();
  }
  for (int group = 1; group <= kGroups; ++group) {
    ASSERT_TRUE(f.scmp_->network_state_consistent(group)) << "group " << group;
    if (joined[group].empty()) continue;
    const auto got = f.send_and_collect(0, group);
    EXPECT_EQ(got, std::vector(joined[group].begin(), joined[group].end()))
        << "group " << group;
  }
}

}  // namespace
}  // namespace scmp::core
