// Scmp::handle_link_event — the incremental single-link repair path. It must
// leave the m-router in exactly the state on_topology_change() produces
// (same path database bit-for-bit, same trees, same installed network
// state), while recomputing only the dirty Dijkstra sources; and it must
// behave identically with a compute pool registered.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/compute_pool.hpp"
#include "core/scmp.hpp"
#include "helpers.hpp"
#include "igmp/igmp.hpp"
#include "sim/event_queue.hpp"
#include "sim/network.hpp"
#include "topo/arpanet.hpp"

namespace scmp::core {
namespace {

constexpr proto::GroupId kGroup = 1;

struct Fixture {
  explicit Fixture(const graph::Graph& graph)
      : g(graph), net(g, queue), igmp(queue, g.num_nodes()) {
    Scmp::Config cfg;
    cfg.mrouter = 0;
    scmp = std::make_unique<Scmp>(net, igmp, cfg);
  }

  void join_all(const std::vector<graph::NodeId>& members) {
    for (graph::NodeId m : members) scmp->host_join(m, kGroup);
    queue.run_all();
  }

  graph::Graph g;
  sim::EventQueue queue;
  sim::Network net;
  igmp::IgmpDomain igmp;
  std::unique_ptr<Scmp> scmp;
};

void expect_paths_identical(const graph::AllPairsPaths& got,
                            const graph::AllPairsPaths& want) {
  ASSERT_EQ(got.num_nodes(), want.num_nodes());
  for (graph::NodeId s = 0; s < got.num_nodes(); ++s) {
    for (const bool least_cost : {false, true}) {
      const graph::ShortestPaths& x =
          least_cost ? got.lc_from(s) : got.sl_from(s);
      const graph::ShortestPaths& y =
          least_cost ? want.lc_from(s) : want.sl_from(s);
      ASSERT_EQ(x.dist, y.dist) << "source " << s;
      ASSERT_EQ(x.companion, y.companion) << "source " << s;
      ASSERT_EQ(x.hops, y.hops) << "source " << s;
      ASSERT_EQ(x.parent, y.parent) << "source " << s;
    }
  }
}

/// An on-tree link of the group's current tree (repair is guaranteed to
/// change something), whose removal keeps the topology connected.
std::pair<graph::NodeId, graph::NodeId> pick_tree_link(const Fixture& f) {
  const DcdmTree* tree = f.scmp->group_tree(kGroup);
  EXPECT_NE(tree, nullptr);
  for (const auto& [child, parent] : tree->tree().edges()) {
    graph::Graph probe = f.net.graph();
    probe.remove_edge(child, parent);
    if (probe.is_connected()) return {child, parent};
  }
  ADD_FAILURE() << "no removable on-tree link";
  return {graph::kInvalidNode, graph::kInvalidNode};
}

TEST(ScmpLinkEvent, MatchesFullTopologyChange) {
  Rng rng(3);
  const auto topo = topo::arpanet(rng);
  const std::vector<graph::NodeId> members{5, 17, 29, 41};

  Fixture incremental(topo.graph);
  Fixture full(topo.graph);
  incremental.join_all(members);
  full.join_all(members);

  const auto [u, v] = pick_tree_link(incremental);
  ASSERT_NE(u, graph::kInvalidNode);

  incremental.net.fail_link(u, v);
  const int recomputed = incremental.scmp->handle_link_event(u, v);
  incremental.queue.run_all();

  full.net.fail_link(u, v);
  full.scmp->on_topology_change();
  full.queue.run_all();

  // A failed tree link dirties at least its two endpoints' runs, but never
  // requires every source.
  EXPECT_GE(recomputed, 1);
  EXPECT_LE(recomputed, topo.graph.num_nodes());

  expect_paths_identical(incremental.scmp->paths(), full.scmp->paths());
  expect_paths_identical(incremental.scmp->paths(),
                         graph::AllPairsPaths(incremental.net.graph()));
  ASSERT_NE(incremental.scmp->group_tree(kGroup), nullptr);
  ASSERT_NE(full.scmp->group_tree(kGroup), nullptr);
  EXPECT_EQ(incremental.scmp->group_tree(kGroup)->tree().edges(),
            full.scmp->group_tree(kGroup)->tree().edges());
  EXPECT_TRUE(incremental.scmp->network_state_consistent(kGroup));
}

TEST(ScmpLinkEvent, OffTreeLinkStillRepairsPathDatabase) {
  // Even when the failed link carries no tree edge, the path database must
  // end up identical to a from-scratch rebuild (relay candidates for future
  // joins come from it).
  const auto topo = test::random_topology(6, 30);
  Fixture f(topo.graph);
  f.join_all({3, 9, 21});

  const DcdmTree* tree = f.scmp->group_tree(kGroup);
  ASSERT_NE(tree, nullptr);
  graph::NodeId u = graph::kInvalidNode;
  graph::NodeId v = graph::kInvalidNode;
  for (graph::NodeId a = 0;
       a < topo.graph.num_nodes() && u == graph::kInvalidNode; ++a) {
    for (const auto& nb : topo.graph.neighbors(a)) {
      const bool tree_edge =
          tree->tree().on_tree(a) && tree->tree().on_tree(nb.to) &&
          (tree->tree().parent(a) == nb.to || tree->tree().parent(nb.to) == a);
      if (tree_edge) continue;
      graph::Graph probe = topo.graph;
      probe.remove_edge(a, nb.to);
      if (!probe.is_connected()) continue;
      u = a;
      v = nb.to;
      break;
    }
  }
  ASSERT_NE(u, graph::kInvalidNode) << "no removable off-tree link";

  f.net.fail_link(u, v);
  f.scmp->handle_link_event(u, v);
  f.queue.run_all();
  expect_paths_identical(f.scmp->paths(),
                         graph::AllPairsPaths(f.net.graph()));
  EXPECT_TRUE(f.scmp->network_state_consistent(kGroup));
}

TEST(ScmpLinkEvent, ComputePoolProducesIdenticalState) {
  Rng rng(3);
  const auto topo = topo::arpanet(rng);
  const std::vector<graph::NodeId> members{2, 11, 23, 37, 44};

  Fixture pooled(topo.graph);
  Fixture serial(topo.graph);
  pooled.join_all(members);
  serial.join_all(members);

  const core::TreeComputePool pool(pooled.net.graph(), pooled.scmp->paths(),
                                   4);
  pooled.scmp->set_compute_pool(&pool);

  const auto [u, v] = pick_tree_link(serial);
  ASSERT_NE(u, graph::kInvalidNode);

  pooled.net.fail_link(u, v);
  pooled.scmp->handle_link_event(u, v);
  pooled.queue.run_all();
  serial.net.fail_link(u, v);
  serial.scmp->handle_link_event(u, v);
  serial.queue.run_all();

  expect_paths_identical(pooled.scmp->paths(), serial.scmp->paths());
  ASSERT_NE(pooled.scmp->group_tree(kGroup), nullptr);
  ASSERT_NE(serial.scmp->group_tree(kGroup), nullptr);
  EXPECT_EQ(pooled.scmp->group_tree(kGroup)->tree().edges(),
            serial.scmp->group_tree(kGroup)->tree().edges());
  EXPECT_TRUE(pooled.scmp->network_state_consistent(kGroup));

  // on_topology_change with a pool goes through the same executor.
  pooled.scmp->on_topology_change();
  serial.scmp->on_topology_change();
  pooled.queue.run_all();
  serial.queue.run_all();
  expect_paths_identical(pooled.scmp->paths(), serial.scmp->paths());
  EXPECT_EQ(pooled.scmp->group_tree(kGroup)->tree().edges(),
            serial.scmp->group_tree(kGroup)->tree().edges());
}

}  // namespace
}  // namespace scmp::core
