#include "core/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace scmp::core {
namespace {

TEST(Wfq, EmptySchedulerIsIdle) {
  WfqScheduler s(1e9);
  EXPECT_TRUE(s.idle());
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_FALSE(s.dequeue().has_value());
}

TEST(Wfq, SinglePacketPassesThrough) {
  WfqScheduler s(1e9);
  s.enqueue(1, 100, 1000, 0.0);
  const auto got = s.dequeue();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->group, 1);
  EXPECT_EQ(got->uid, 100u);
  EXPECT_DOUBLE_EQ(got->dequeue_time, 1000.0 * 8.0 / 1e9);
  EXPECT_TRUE(s.idle());
}

TEST(Wfq, FifoWithinOneGroup) {
  WfqScheduler s(1e9);
  for (std::uint64_t uid = 0; uid < 5; ++uid) s.enqueue(1, uid, 500, 0.0);
  for (std::uint64_t uid = 0; uid < 5; ++uid) {
    const auto got = s.dequeue();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->uid, uid);
  }
}

TEST(Wfq, EqualWeightsInterleave) {
  // Two backlogged groups with equal weights and equal sizes alternate.
  WfqScheduler s(1e9);
  for (std::uint64_t i = 0; i < 4; ++i) {
    s.enqueue(1, i, 1000, 0.0);
    s.enqueue(2, 100 + i, 1000, 0.0);
  }
  std::vector<GroupId> order;
  while (const auto got = s.dequeue()) order.push_back(got->group);
  EXPECT_EQ(order, (std::vector<GroupId>{1, 2, 1, 2, 1, 2, 1, 2}));
}

TEST(Wfq, WeightsSplitBandwidthProportionally) {
  WfqScheduler s(1e9);
  s.set_weight(1, 2.0);
  s.set_weight(2, 1.0);
  for (std::uint64_t i = 0; i < 30; ++i) {
    s.enqueue(1, i, 1000, 0.0);
    s.enqueue(2, 100 + i, 1000, 0.0);
  }
  // Serve 18 packets and compare served bytes: should approach 2:1.
  for (int i = 0; i < 18; ++i) s.dequeue();
  const auto& served = s.served_bytes();
  EXPECT_NEAR(static_cast<double>(served.at(1)) /
                  static_cast<double>(served.at(2)),
              2.0, 0.35);
}

TEST(Wfq, SmallPacketsDoNotStarveBehindLargeOnes) {
  // Group 1 sends jumbo packets, group 2 small ones: group 2 still gets its
  // share (more packets through).
  WfqScheduler s(1e9);
  for (std::uint64_t i = 0; i < 10; ++i) {
    s.enqueue(1, i, 9000, 0.0);
    s.enqueue(2, 100 + i, 100, 0.0);
  }
  int small_served = 0;
  for (int i = 0; i < 10; ++i) {
    const auto got = s.dequeue();
    ASSERT_TRUE(got.has_value());
    if (got->group == 2) ++small_served;
  }
  EXPECT_GE(small_served, 8);  // nearly all small packets go first
}

TEST(Wfq, NewlyActiveGroupGetsNoStaleCredit) {
  WfqScheduler s(1e9);
  // Group 1 is served alone for a while.
  for (std::uint64_t i = 0; i < 5; ++i) s.enqueue(1, i, 1000, 0.0);
  while (s.dequeue().has_value()) {
  }
  // Group 2 wakes up much later; it must not monopolise the port to "catch
  // up" on the time it was idle.
  for (std::uint64_t i = 0; i < 3; ++i) {
    s.enqueue(1, 10 + i, 1000, 1.0);
    s.enqueue(2, 100 + i, 1000, 1.0);
  }
  std::vector<GroupId> order;
  while (const auto got = s.dequeue()) order.push_back(got->group);
  // Fair alternation, not a burst of group 2.
  EXPECT_EQ(order, (std::vector<GroupId>{1, 2, 1, 2, 1, 2}));
}

TEST(Wfq, DequeueTimesRespectLineRate) {
  WfqScheduler s(8000.0);  // 1000 bytes take exactly 1 s
  s.enqueue(1, 0, 1000, 0.0);
  s.enqueue(2, 1, 1000, 0.0);
  const auto a = s.dequeue();
  const auto b = s.dequeue();
  EXPECT_DOUBLE_EQ(a->dequeue_time, 1.0);
  EXPECT_DOUBLE_EQ(b->dequeue_time, 2.0);
}

TEST(Wfq, DequeueTimeNeverPrecedesArrival) {
  WfqScheduler s(8000.0);  // 1000 bytes = 1 s transmission
  s.enqueue(1, 0, 1000, /*now=*/50.0);
  const auto got = s.dequeue();
  ASSERT_TRUE(got.has_value());
  EXPECT_DOUBLE_EQ(got->dequeue_time, 51.0);
}

TEST(Wfq, IdleGapsDoNotCompress) {
  WfqScheduler s(8000.0);
  s.enqueue(1, 0, 1000, 0.0);
  EXPECT_DOUBLE_EQ(s.dequeue()->dequeue_time, 1.0);
  // Next packet arrives long after the port went idle.
  s.enqueue(1, 1, 1000, 10.0);
  EXPECT_DOUBLE_EQ(s.dequeue()->dequeue_time, 11.0);
}

TEST(Wfq, ServedBytesAccumulate) {
  WfqScheduler s(1e9);
  s.enqueue(1, 0, 700, 0.0);
  s.enqueue(1, 1, 300, 0.0);
  s.dequeue();
  s.dequeue();
  EXPECT_EQ(s.served_bytes().at(1), 1000u);
}

TEST(Wfq, DeterministicTieBreakByArrival) {
  WfqScheduler s(1e9);
  s.enqueue(2, 0, 1000, 0.0);
  s.enqueue(1, 1, 1000, 0.0);  // identical virtual finish: arrival wins
  EXPECT_EQ(s.dequeue()->group, 2);
  EXPECT_EQ(s.dequeue()->group, 1);
}

TEST(WfqDeath, RejectsNonPositiveWeight) {
  WfqScheduler s(1e9);
  EXPECT_DEATH(s.set_weight(1, 0.0), "Precondition");
}

TEST(WfqDeath, RejectsZeroCapacity) {
  EXPECT_DEATH(WfqScheduler(0.0), "Precondition");
}

TEST(WfqDeath, RejectsEmptyPacket) {
  WfqScheduler s(1e9);
  EXPECT_DEATH(s.enqueue(1, 0, 0, 0.0), "Precondition");
}

}  // namespace
}  // namespace scmp::core
