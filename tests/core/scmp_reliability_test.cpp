// Reliable control-plane delivery (src/core/retx.hpp + Scmp reconciliation):
// unit tests of the retransmission table, the ISSUE's parameterized
// single-drop sweep — every SCMP control packet type lost once at every hop
// of a join/leave/prune/refresh sequence, with the run required to converge
// to the zero-loss fixpoint — and the graceful-degradation path where the
// retry budget runs out and the soft-state reconciliation cycle repairs the
// divergence instead.
#include "core/retx.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>
#include <vector>

#include "core/scmp.hpp"
#include "igmp/igmp.hpp"
#include "sim/event_queue.hpp"
#include "sim/network.hpp"
#include "sim/trace.hpp"
#include "topo/arpanet.hpp"
#include "util/rng.hpp"

namespace scmp::core {
namespace {

RetxConfig reliable(double timeout = 5.0, int max_retries = 4) {
  RetxConfig cfg;
  cfg.enabled = true;
  cfg.timeout = timeout;
  cfg.max_retries = max_retries;
  return cfg;
}

// ---- RetxTable unit tests --------------------------------------------------

TEST(RetxTable, DisabledArmIsANoOp) {
  sim::EventQueue q;
  RetxTable table(q, RetxConfig{});  // enabled = false
  int resends = 0;
  table.arm(3, table.next_req(), [&] { ++resends; });
  q.run_all();
  EXPECT_EQ(table.pending_count(), 0u);
  EXPECT_EQ(resends, 0);
}

TEST(RetxTable, AckBeforeTimeoutRetiresEntryWithoutResend) {
  sim::EventQueue q;
  RetxTable table(q, reliable());
  int resends = 0;
  const std::uint64_t req = table.next_req();
  table.arm(3, req, [&] { ++resends; });
  EXPECT_TRUE(table.pending(3, req));
  table.ack(3, req);
  EXPECT_FALSE(table.pending(3, req));
  q.run_all();  // the armed timer fires as a no-op
  EXPECT_EQ(resends, 0);
  EXPECT_EQ(table.retransmissions(), 0u);
  EXPECT_EQ(table.acked(), 1u);
}

TEST(RetxTable, UnackedRequestBacksOffExponentiallyThenExhausts) {
  sim::EventQueue q;
  RetxTable table(q, reliable(/*timeout=*/1.0, /*max_retries=*/3));
  std::vector<double> resend_times;
  table.arm(7, table.next_req(), [&] { resend_times.push_back(q.now()); });
  q.run_all();
  // Retransmissions at t=1, 1+2, 1+2+4; the budget check fires at 1+2+4+8.
  ASSERT_EQ(resend_times.size(), 3u);
  EXPECT_DOUBLE_EQ(resend_times[0], 1.0);
  EXPECT_DOUBLE_EQ(resend_times[1], 3.0);
  EXPECT_DOUBLE_EQ(resend_times[2], 7.0);
  EXPECT_DOUBLE_EQ(q.now(), 15.0);
  EXPECT_EQ(table.retransmissions(), 3u);
  EXPECT_EQ(table.exhausted(), 1u);
  EXPECT_EQ(table.pending_count(), 0u);
}

TEST(RetxTable, LateAndUnknownAcksAreIgnored) {
  sim::EventQueue q;
  RetxTable table(q, reliable());
  const std::uint64_t req = table.next_req();
  table.arm(2, req, [] {});
  table.ack(5, req);    // wrong sender
  table.ack(2, 9999);   // unknown request
  EXPECT_TRUE(table.pending(2, req));
  table.ack(2, req);
  table.ack(2, req);    // duplicate ack
  EXPECT_EQ(table.acked(), 1u);
}

TEST(RetxTable, RequestUidsAreNeverZero) {
  sim::EventQueue q;
  RetxTable table(q, reliable());
  EXPECT_NE(table.next_req(), 0u);
  EXPECT_NE(table.next_req(), table.next_req());
}

// ---- protocol-level fixture ------------------------------------------------

struct World {
  explicit World(Scmp::Config cfg = {})
      : topo(topo::arpanet(rng)),
        net(topo.graph, queue),
        igmp(queue, topo.graph.num_nodes()),
        scmp(net, igmp, [&] {
          cfg.mrouter = 0;
          return cfg;
        }()),
        recorder(net) {}

  Rng rng{7};
  topo::Topology topo;
  sim::EventQueue queue;
  sim::Network net;
  igmp::IgmpDomain igmp;
  Scmp scmp;
  sim::TraceRecorder recorder;
};

constexpr GroupId kGroup = 0;

/// Strictly sequential membership churn (drain after every operation, so a
/// delayed retransmission can never reorder m-router processing): grows a
/// four-member tree, prunes it down, refreshes (full TREE install + stale
/// CLEARs), regrows and empties it. Covers every control packet type.
void run_sequential_scenario(Scmp& scmp, sim::EventQueue& q) {
  auto step = [&](auto&& fn) {
    fn();
    q.run_all();
  };
  step([&] { scmp.host_join(5, kGroup); });
  step([&] { scmp.host_join(12, kGroup); });
  step([&] { scmp.host_join(19, kGroup); });
  step([&] { scmp.host_join(3, kGroup); });
  step([&] { scmp.host_leave(12, kGroup); });
  step([&] { scmp.host_leave(19, kGroup); });
  step([&] { scmp.refresh_group(kGroup); });
  step([&] { scmp.host_join(27, kGroup); });
  step([&] { scmp.host_leave(3, kGroup); });
  step([&] { scmp.host_leave(27, kGroup); });
  step([&] { scmp.host_leave(5, kGroup); });
}

/// Everything the scenario's fixpoint is judged by: installed entries,
/// service-database membership, the billing log length (a retransmitted
/// request must never double-bill) and IGMP ground truth.
struct StateDigest {
  std::map<graph::NodeId,
           std::tuple<graph::NodeId, std::set<graph::NodeId>, std::set<int>,
                      std::uint64_t>>
      entries;
  std::set<graph::NodeId> db_members;
  std::size_t billing_log = 0;

  bool operator==(const StateDigest&) const = default;
};

StateDigest digest(const World& w) {
  StateDigest d;
  for (graph::NodeId v = 0; v < w.topo.graph.num_nodes(); ++v) {
    const Scmp::Entry* e = w.scmp.entry_at(v, kGroup);
    if (e == nullptr) continue;
    d.entries[v] = {e->upstream, e->downstream_routers, e->downstream_ifaces,
                    e->version};
  }
  d.db_members = w.scmp.database().members_of(kGroup);
  d.billing_log = w.scmp.database().membership_log().size();
  return d;
}

// ---- satellite: the single-drop sweep --------------------------------------

class ScmpSingleDrop : public ::testing::TestWithParam<sim::PacketType> {};

TEST_P(ScmpSingleDrop, EveryHopLossConvergesToZeroLossFixpoint) {
  const sim::PacketType type = GetParam();

  // Reference: reliability on, nothing lost.
  Scmp::Config cfg;
  cfg.reliability = reliable();
  World ref(cfg);
  run_sequential_scenario(ref.scmp, ref.queue);
  const StateDigest want = digest(ref);
  EXPECT_TRUE(want.entries.empty()) << "scenario should end with empty trees";
  const std::size_t crossings = ref.recorder.count(type);
  ASSERT_GT(crossings, 0u) << "scenario never sends " << sim::to_string(type)
                           << "; it no longer exercises every control type";

  // Drop the n-th link crossing of `type` — once — for every n: each
  // retransmission (or re-ack) must repair exactly that loss and the run
  // must land in the reference fixpoint.
  for (std::size_t n = 1; n <= crossings; ++n) {
    World w(cfg);
    std::size_t seen = 0;
    bool dropped = false;
    w.net.set_drop_filter(
        [&](graph::NodeId, graph::NodeId, const sim::Packet& pkt) {
          if (pkt.type != type || dropped) return false;
          if (++seen < n) return false;
          dropped = true;
          return true;
        });
    run_sequential_scenario(w.scmp, w.queue);
    ASSERT_TRUE(dropped) << "drop " << n << " never triggered";
    EXPECT_EQ(digest(w), want)
        << "dropping " << sim::to_string(type) << " crossing " << n << "/"
        << crossings << " did not converge back to the zero-loss state";
    EXPECT_EQ(w.scmp.retx().exhausted(), 0u);
    EXPECT_EQ(w.scmp.retx().pending_count(), 0u);
    // An ACK loss is repaired by re-acking the retransmission; every other
    // loss needs exactly one recovery retransmission.
    EXPECT_GE(w.scmp.retx().retransmissions(), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllControlTypes, ScmpSingleDrop,
    ::testing::Values(sim::PacketType::kJoin, sim::PacketType::kLeave,
                      sim::PacketType::kTree, sim::PacketType::kBranch,
                      sim::PacketType::kPrune, sim::PacketType::kClear,
                      sim::PacketType::kAck),
    [](const ::testing::TestParamInfo<sim::PacketType>& info) {
      return std::string(sim::to_string(info.param));
    });

// ---- graceful degradation + reconciliation ---------------------------------

TEST(ScmpReliability, ExhaustedJoinIsRepairedByReconciliation) {
  Scmp::Config cfg;
  cfg.reliability = reliable(/*timeout=*/0.5, /*max_retries=*/2);
  World w(cfg);
  // Seed the group so the tree and session exist.
  w.scmp.host_join(5, kGroup);
  w.queue.run_all();

  // Black-hole every JOIN: router 12's membership report exhausts its retry
  // budget and the m-router never learns of it.
  w.net.set_drop_filter(
      [](graph::NodeId, graph::NodeId, const sim::Packet& pkt) {
        return pkt.type == sim::PacketType::kJoin;
      });
  w.scmp.host_join(12, kGroup);
  w.queue.run_all();
  EXPECT_GE(w.scmp.retx().exhausted(), 1u);
  EXPECT_FALSE(w.scmp.database().members_of(kGroup).contains(12));

  // The soft-state pass diffs the database against IGMP ground truth and
  // re-solicits the lost JOIN (with a fresh request uid).
  w.net.set_drop_filter(nullptr);
  EXPECT_GT(w.scmp.reconcile_all(), 0);
  w.queue.run_all();
  EXPECT_TRUE(w.scmp.database().members_of(kGroup).contains(12));
  EXPECT_TRUE(w.scmp.network_state_consistent(kGroup));
  EXPECT_EQ(w.scmp.reconcile_all(), 0);  // fixpoint: nothing left to repair
}

TEST(ScmpReliability, ExhaustedBranchInstallIsRepairedByReconciliation) {
  Scmp::Config cfg;
  cfg.reliability = reliable(/*timeout=*/0.5, /*max_retries=*/2);
  World w(cfg);
  w.scmp.host_join(5, kGroup);
  w.queue.run_all();

  // Lose every BRANCH: the m-router accepts 12's JOIN (database and tree
  // update) but the install never reaches the network.
  w.net.set_drop_filter(
      [](graph::NodeId, graph::NodeId, const sim::Packet& pkt) {
        return pkt.type == sim::PacketType::kBranch;
      });
  w.scmp.host_join(12, kGroup);
  w.queue.run_all();
  EXPECT_TRUE(w.scmp.database().members_of(kGroup).contains(12));
  EXPECT_FALSE(w.scmp.network_state_consistent(kGroup));

  // Phase 2 diffs the installed digests against the authoritative tree and
  // reinstalls the missing member path.
  w.net.set_drop_filter(nullptr);
  EXPECT_GT(w.scmp.reconcile_all(), 0);
  w.queue.run_all();
  EXPECT_TRUE(w.scmp.network_state_consistent(kGroup));
  EXPECT_EQ(w.scmp.reconcile_all(), 0);
}

TEST(ScmpReliability, PeriodicReconciliationCycleRuns) {
  Scmp::Config cfg;
  cfg.reliability = reliable();
  World w(cfg);
  w.scmp.host_join(5, kGroup);
  w.queue.run_all();  // drains the join's acked-request timer no-ops too
  const double t0 = w.queue.now();
  w.scmp.start_reconciliation(/*interval=*/10.0, /*horizon=*/t0 + 25.0);
  w.queue.run_all();
  // Cycles at t0+10 and t0+20 (t0+30 passes the horizon); a healthy domain
  // reconciles to zero repairs every time, so the ticks are the only events
  // and the clock stops exactly on the last one.
  EXPECT_DOUBLE_EQ(w.queue.now(), t0 + 20.0);
  EXPECT_TRUE(w.scmp.network_state_consistent(kGroup));
}

}  // namespace
}  // namespace scmp::core
