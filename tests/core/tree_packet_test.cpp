#include "core/tree_packet.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/dijkstra.hpp"
#include "helpers.hpp"

namespace scmp::core {
namespace {

/// The multicast subtree of the paper's Fig. 6, rooted at node 2:
/// 2 -> {4, 5, 6}, 5 -> {7, 8}, 6 -> {9}; grid graph large enough to hold it.
graph::MulticastTree fig6_subtree(graph::Graph& g) {
  g = graph::Graph(11);
  // Chain of real edges so the tree validates.
  g.add_edge(1, 2, 1, 1);
  g.add_edge(2, 4, 1, 1);
  g.add_edge(2, 5, 1, 1);
  g.add_edge(2, 6, 1, 1);
  g.add_edge(5, 7, 1, 1);
  g.add_edge(5, 8, 1, 1);
  g.add_edge(6, 9, 1, 1);
  g.add_edge(4, 10, 1, 1);
  graph::MulticastTree t(1, 11);
  t.graft_path({1, 2, 4});
  t.graft_path({2, 5, 7});
  t.graft_path({5, 8});
  t.graft_path({2, 6, 9});
  return t;
}

TEST(TreePacket, PaperFig6ExactEncoding) {
  graph::Graph g;
  const graph::MulticastTree t = fig6_subtree(g);
  const TreeWords words = encode_subtree(t, 2);
  // Paper §III-E: (3; 4,1,(0); 5,7,(2,7,1,0,8,1,0); 6,4,(1,9,1,0)).
  const TreeWords expected{3, 4, 1, 0, 5, 7, 2, 7, 1, 0, 8, 1, 0,
                           6, 4, 1, 9, 1, 0};
  EXPECT_EQ(words, expected);
}

TEST(TreePacket, PaperFig6SplitAtNode2) {
  graph::Graph g;
  const graph::MulticastTree t = fig6_subtree(g);
  const auto children = split_tree_packet(encode_subtree(t, 2));
  ASSERT_EQ(children.size(), 3u);
  EXPECT_EQ(children[0].id, 4);
  EXPECT_EQ(children[0].subpacket, TreeWords{0});
  EXPECT_EQ(children[1].id, 5);
  EXPECT_EQ(children[1].subpacket, (TreeWords{2, 7, 1, 0, 8, 1, 0}));
  EXPECT_EQ(children[2].id, 6);
  EXPECT_EQ(children[2].subpacket, (TreeWords{1, 9, 1, 0}));
}

TEST(TreePacket, LeafEncodesAsZero) {
  graph::Graph g;
  const graph::MulticastTree t = fig6_subtree(g);
  EXPECT_EQ(encode_subtree(t, 9), TreeWords{0});
  EXPECT_TRUE(split_tree_packet(TreeWords{0}).empty());
}

TEST(TreePacket, DecodeEdgesMatchesTree) {
  graph::Graph g;
  const graph::MulticastTree t = fig6_subtree(g);
  const auto edges = decode_edges(encode_subtree(t, 2), 2);
  const std::set<std::pair<graph::NodeId, graph::NodeId>> expected{
      {4, 2}, {5, 2}, {6, 2}, {7, 5}, {8, 5}, {9, 6}};
  EXPECT_EQ(std::set(edges.begin(), edges.end()), expected);
}

TEST(TreePacket, NodeCount) {
  graph::Graph g;
  const graph::MulticastTree t = fig6_subtree(g);
  EXPECT_EQ(node_count(encode_subtree(t, 2)), 6);
  EXPECT_EQ(node_count(encode_subtree(t, 5)), 2);
  EXPECT_EQ(node_count(TreeWords{0}), 0);
}

TEST(TreePacket, BytesRoundTrip) {
  const TreeWords words{3, 4, 1, 0, 5, 7, 2, 7, 1, 0, 8, 1, 0, 6, 4, 1, 9, 1, 0};
  EXPECT_EQ(from_bytes(to_bytes(words)), words);
  EXPECT_EQ(to_bytes(words).size(), words.size() * 4);
}

TEST(TreePacket, BytesRoundTripLargeValues) {
  const TreeWords words{1, 0xdeadbeef, 1, 0};
  EXPECT_EQ(from_bytes(to_bytes(words)), words);
}

TEST(TreePacketDeath, MalformedLengthAborts) {
  // Claims one child of length 10 but provides fewer words.
  EXPECT_DEATH(split_tree_packet(TreeWords{1, 5, 10, 0}), "Precondition");
}

TEST(TreePacketDeath, TrailingGarbageAborts) {
  EXPECT_DEATH(split_tree_packet(TreeWords{0, 42}), "Precondition");
}

TEST(TreePacketDeath, EmptyPacketAborts) {
  EXPECT_DEATH(split_tree_packet(TreeWords{}), "Precondition");
}

TEST(TreePacketDeath, OddByteCountAborts) {
  EXPECT_DEATH(from_bytes(std::vector<std::uint8_t>{1, 2, 3}), "Precondition");
}

TEST(TreePacketValidation, AcceptsWellFormedPackets) {
  graph::Graph g;
  const graph::MulticastTree t = fig6_subtree(g);
  EXPECT_TRUE(is_well_formed(encode_subtree(t, 2)));
  EXPECT_TRUE(is_well_formed(TreeWords{0}));
  EXPECT_TRUE(is_well_formed(TreeWords{1, 9, 1, 0}));
}

TEST(TreePacketValidation, RejectsStructuralViolations) {
  EXPECT_FALSE(is_well_formed(TreeWords{}));             // empty
  EXPECT_FALSE(is_well_formed(TreeWords{0, 42}));        // trailing garbage
  EXPECT_FALSE(is_well_formed(TreeWords{1, 5, 10, 0}));  // length overruns
  EXPECT_FALSE(is_well_formed(TreeWords{2, 5, 1, 0}));   // missing child
  EXPECT_FALSE(is_well_formed(TreeWords{1, 5}));         // truncated header
  EXPECT_FALSE(is_well_formed(TreeWords{1, 5, 2, 1, 9}));  // bad subpacket
}

class TreePacketFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TreePacketFuzz, EncodedTreesAlwaysValidateAndMutationsNeverCrash) {
  const auto topo = test::random_topology(GetParam(), 30);
  const graph::Graph& g = topo.graph;
  const graph::ShortestPaths sp = dijkstra(g, 0, graph::Metric::kDelay);
  Rng rng(GetParam() * 17 + 1);
  graph::MulticastTree t(0, g.num_nodes());
  for (int v : rng.sample_without_replacement(g.num_nodes() - 1, 10))
    t.graft_path(sp.path_to(v + 1));

  for (graph::NodeId child : t.children(0)) {
    TreeWords words = encode_subtree(t, child);
    ASSERT_TRUE(is_well_formed(words));
    // Single-word mutations: the validator must classify every variant
    // without crashing, and splitting must be safe whenever it accepts.
    for (int trial = 0; trial < 50; ++trial) {
      TreeWords mutated = words;
      const auto idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(words.size()) - 1));
      mutated[idx] = static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 16));
      if (is_well_formed(mutated)) {
        const auto children = split_tree_packet(mutated);  // must not abort
        (void)children;
      }
    }
    // Truncations and extensions are always rejected (word counts encode
    // the exact length).
    TreeWords shorter(words.begin(), words.end() - 1);
    if (!shorter.empty()) {
      EXPECT_FALSE(is_well_formed(shorter));
    }
    TreeWords longer = words;
    longer.push_back(0);
    EXPECT_FALSE(is_well_formed(longer));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreePacketFuzz,
                         ::testing::Values(2, 3, 5, 8, 13, 21));

class TreePacketRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TreePacketRoundTrip, RandomTreesEncodeDecode) {
  const auto topo = test::random_topology(GetParam(), 35);
  const graph::Graph& g = topo.graph;
  const graph::ShortestPaths sp = dijkstra(g, 0, graph::Metric::kDelay);
  Rng rng(GetParam() + 99);
  graph::MulticastTree t(0, g.num_nodes());
  for (int v : rng.sample_without_replacement(g.num_nodes() - 1, 12))
    t.graft_path(sp.path_to(v + 1));

  // Encoding the whole tree below the root and decoding must reproduce the
  // exact edge set.
  std::set<std::pair<graph::NodeId, graph::NodeId>> decoded;
  for (graph::NodeId child : t.children(0)) {
    decoded.insert({child, 0});
    const TreeWords words = from_bytes(to_bytes(encode_subtree(t, child)));
    for (const auto& e : decode_edges(words, child)) decoded.insert(e);
  }
  const auto edges = t.edges();
  EXPECT_EQ(decoded, std::set(edges.begin(), edges.end()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreePacketRoundTrip,
                         ::testing::Values(1, 5, 12, 33, 64, 128));

}  // namespace
}  // namespace scmp::core
