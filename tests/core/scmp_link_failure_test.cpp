// Link-failure repair (the service-centric story applied to failures): the
// link-state substrate reconverges, the m-router alone recomputes and
// reinstalls every affected group tree, and delivery resumes.
#include <gtest/gtest.h>

#include <map>

#include "core/experiment.hpp"
#include "core/scmp.hpp"
#include "helpers.hpp"

namespace scmp::core {
namespace {

constexpr proto::GroupId kGroup = 1;

graph::Graph ring(int n) {
  graph::Graph g(n);
  for (int i = 0; i < n; ++i) g.add_edge(i, (i + 1) % n, 1, 1);
  return g;
}

class FailureFixture {
 public:
  explicit FailureFixture(graph::Graph graph)
      : g_(std::move(graph)), net_(g_, queue_), igmp_(queue_, g_.num_nodes()) {
    Scmp::Config cfg;
    cfg.mrouter = 0;
    scmp_ = std::make_unique<Scmp>(net_, igmp_, cfg);
    net_.set_delivery_callback(
        [this](const sim::Packet& pkt, graph::NodeId member, sim::SimTime) {
          deliveries_[pkt.uid].push_back(member);
        });
  }

  std::vector<graph::NodeId> send_and_collect(graph::NodeId src) {
    const auto before = deliveries_.size();
    scmp_->send_data(src, kGroup);
    queue_.run_all();
    if (deliveries_.size() == before) return {};
    auto got = deliveries_.rbegin()->second;
    std::sort(got.begin(), got.end());
    return got;
  }

  void fail_and_repair(graph::NodeId u, graph::NodeId v) {
    net_.fail_link(u, v);
    scmp_->on_topology_change();
    queue_.run_all();
  }

  graph::Graph g_;
  sim::EventQueue queue_;
  sim::Network net_;
  igmp::IgmpDomain igmp_;
  std::unique_ptr<Scmp> scmp_;
  std::map<std::uint64_t, std::vector<graph::NodeId>> deliveries_;
};

TEST(ScmpLinkFailure, TreeLinkFailureIsRepaired) {
  FailureFixture f(ring(6));
  f.scmp_->host_join(2, kGroup);
  f.scmp_->host_join(3, kGroup);
  f.queue_.run_all();
  EXPECT_EQ(f.send_and_collect(0), (std::vector<graph::NodeId>{2, 3}));

  // 1-2 carries the branch toward member 2 (canonical path 0-1-2).
  f.fail_and_repair(1, 2);
  EXPECT_TRUE(f.scmp_->network_state_consistent(kGroup));
  EXPECT_EQ(f.send_and_collect(0), (std::vector<graph::NodeId>{2, 3}));
  // The new tree cannot use the dead link.
  const DcdmTree* tree = f.scmp_->group_tree(kGroup);
  for (const auto& [child, parent] : tree->tree().edges())
    EXPECT_TRUE(f.net_.graph().has_edge(child, parent));
}

TEST(ScmpLinkFailure, NonTreeLinkFailureKeepsDelivering) {
  FailureFixture f(ring(6));
  f.scmp_->host_join(1, kGroup);
  f.queue_.run_all();
  f.fail_and_repair(3, 4);  // far from the 0-1 branch
  EXPECT_TRUE(f.scmp_->network_state_consistent(kGroup));
  EXPECT_EQ(f.send_and_collect(0), (std::vector<graph::NodeId>{1}));
}

TEST(ScmpLinkFailure, InFlightDataOverDeadLinkIsDropped) {
  FailureFixture f(ring(6));
  f.scmp_->host_join(2, kGroup);
  f.queue_.run_all();
  // Fail the tree link but do NOT repair: stale forwarding state now points
  // across a dead interface; the packet is dropped, not delivered twice nor
  // crashing the router.
  f.net_.fail_link(1, 2);
  EXPECT_TRUE(f.send_and_collect(0).empty());
  EXPECT_GE(f.net_.stats().no_link_drops, 1u);
}

TEST(ScmpLinkFailure, JoinsWorkAfterRepair) {
  FailureFixture f(ring(8));
  f.scmp_->host_join(3, kGroup);
  f.queue_.run_all();
  f.fail_and_repair(2, 3);
  f.scmp_->host_join(5, kGroup);
  f.queue_.run_all();
  EXPECT_TRUE(f.scmp_->network_state_consistent(kGroup));
  EXPECT_EQ(f.send_and_collect(0), (std::vector<graph::NodeId>{3, 5}));
}

TEST(ScmpLinkFailure, MultipleSequentialFailures) {
  const auto topo = test::random_topology(55, 30);
  FailureFixture f(topo.graph);
  Rng rng(56);
  std::vector<graph::NodeId> members;
  for (int v : rng.sample_without_replacement(topo.graph.num_nodes() - 1, 8))
    members.push_back(v + 1);
  for (graph::NodeId m : members) f.scmp_->host_join(m, kGroup);
  f.queue_.run_all();
  std::sort(members.begin(), members.end());

  int failures = 0;
  for (int attempt = 0; attempt < 20 && failures < 3; ++attempt) {
    // Pick a random existing link whose removal keeps the graph connected.
    const auto u = static_cast<graph::NodeId>(
        rng.uniform_int(0, f.net_.graph().num_nodes() - 1));
    if (f.net_.graph().neighbors(u).empty()) continue;
    const auto& nbs = f.net_.graph().neighbors(u);
    const auto v =
        nbs[static_cast<std::size_t>(rng.uniform_int(
               0, static_cast<std::int64_t>(nbs.size()) - 1))].to;
    graph::Graph probe = f.net_.graph();
    probe.remove_edge(u, v);
    if (!probe.is_connected()) continue;
    f.fail_and_repair(u, v);
    ++failures;
    ASSERT_TRUE(f.scmp_->network_state_consistent(kGroup));
    ASSERT_EQ(f.send_and_collect(0), members) << "failure " << failures;
  }
  EXPECT_EQ(failures, 3);
}

TEST(ScmpLinkFailure, MospfAlsoRecoversViaCacheInvalidation) {
  // The baseline comparison: MOSPF recovers too, but by every router
  // recomputing, not just one.
  const graph::Graph g = ring(6);
  ScenarioConfig cfg;
  cfg.mrouter = 0;
  cfg.members = {2, 3};
  cfg.data_interval = 0.0;
  ScenarioHarness h(ProtocolKind::kMospf, g, cfg);
  std::map<std::uint64_t, std::vector<graph::NodeId>> delivered;
  h.network().set_delivery_callback(
      [&](const sim::Packet& pkt, graph::NodeId member, sim::SimTime) {
        delivered[pkt.uid].push_back(member);
      });
  for (graph::NodeId m : cfg.members) h.protocol().host_join(m, cfg.group);
  h.queue().run_all();
  h.network().fail_link(1, 2);
  h.protocol().on_topology_change();
  h.queue().run_all();
  h.protocol().send_data(0, cfg.group);
  h.queue().run_all();
  ASSERT_EQ(delivered.size(), 1u);
  auto got = delivered.begin()->second;
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<graph::NodeId>{2, 3}));
}

}  // namespace
}  // namespace scmp::core
