// The SCMP_THREADS environment override for TreeComputePool's automatic
// thread count. Lives in its own binary because it mutates the process
// environment; the other pool tests must not observe a stray override.
#include "core/compute_pool.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "helpers.hpp"

namespace scmp::core {
namespace {

class ComputePoolEnvTest : public ::testing::Test {
 protected:
  void TearDown() override { unsetenv("SCMP_THREADS"); }

  int auto_count() {
    const auto topo = test::random_topology(1, 12);
    const graph::AllPairsPaths paths(topo.graph);
    return TreeComputePool(topo.graph, paths, 0).thread_count();
  }
};

TEST_F(ComputePoolEnvTest, OverrideSelectsExactCount) {
  setenv("SCMP_THREADS", "3", 1);
  EXPECT_EQ(auto_count(), 3);
  setenv("SCMP_THREADS", "1", 1);
  EXPECT_EQ(auto_count(), 1);
}

TEST_F(ComputePoolEnvTest, ExplicitArgumentBeatsOverride) {
  setenv("SCMP_THREADS", "7", 1);
  const auto topo = test::random_topology(1, 12);
  const graph::AllPairsPaths paths(topo.graph);
  EXPECT_EQ(TreeComputePool(topo.graph, paths, 2).thread_count(), 2);
}

TEST_F(ComputePoolEnvTest, MalformedOverrideFallsBackToHardware) {
  unsetenv("SCMP_THREADS");
  const int hardware = auto_count();
  EXPECT_GE(hardware, 1);  // hardware_concurrency()==0 degrades to serial
  for (const char* bad : {"", "0", "-4", "abc", "2x", "65537"}) {
    setenv("SCMP_THREADS", bad, 1);
    EXPECT_EQ(auto_count(), hardware) << "SCMP_THREADS=\"" << bad << '"';
  }
}

TEST_F(ComputePoolEnvTest, OverrideDoesNotChangeResults) {
  const auto topo = test::random_topology(9, 20);
  const graph::AllPairsPaths paths(topo.graph);
  std::vector<GroupMembership> groups;
  for (int i = 0; i < 4; ++i) {
    GroupMembership gm;
    gm.group = i + 1;
    for (int m = 0; m < 5; ++m)
      gm.join_order.push_back((3 * i + 2 * m + 1) % topo.graph.num_nodes());
    groups.push_back(std::move(gm));
  }
  const DcdmConfig cfg;

  setenv("SCMP_THREADS", "1", 1);
  const auto serial =
      TreeComputePool(topo.graph, paths, 0).build_trees(0, groups, cfg);
  setenv("SCMP_THREADS", "5", 1);
  const auto parallel =
      TreeComputePool(topo.graph, paths, 0).build_trees(0, groups, cfg);

  ASSERT_EQ(serial.size(), parallel.size());
  for (const auto& [group, tree] : serial) {
    const auto it = parallel.find(group);
    ASSERT_NE(it, parallel.end());
    EXPECT_DOUBLE_EQ(tree.tree_cost(), it->second.tree_cost());
    for (graph::NodeId v = 0; v < topo.graph.num_nodes(); ++v) {
      ASSERT_EQ(tree.tree().on_tree(v), it->second.tree().on_tree(v));
      if (tree.tree().on_tree(v))
        EXPECT_EQ(tree.tree().parent(v), it->second.tree().parent(v));
    }
  }
}

}  // namespace
}  // namespace scmp::core
