// Golden-trace pin for the SCMP control plane (the ISSUE's bit-identical
// acceptance gate): a fixed join/send/leave scenario on the seeded ARPANET
// topology must transmit exactly the packet stream recorded in
// tests/data/scmp_golden_trace.txt.
//
//  - With reliability *disabled* (the default) the serialized trace must be
//    byte-identical — timestamps included, printed as C hexfloats so no
//    rounding can hide a drift. Any control-plane change that perturbs the
//    zero-loss packet stream fails here first.
//  - With reliability *enabled* on a loss-free network the protocol may add
//    ACKs (and their queueing can shift timestamps), but it must send the
//    same control packets — same endpoints, types, groups and install
//    versions, no retransmissions — and converge to the same final state.
//
// Regenerating the golden (only after an *intentional* protocol change):
// rebuild this scenario's trace with the serializer below and overwrite the
// data file, then justify the diff in the commit message.
#include "core/scmp.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "igmp/igmp.hpp"
#include "sim/event_queue.hpp"
#include "sim/network.hpp"
#include "sim/trace.hpp"
#include "topo/arpanet.hpp"
#include "util/rng.hpp"

namespace scmp::core {
namespace {

std::string read_golden() {
  const std::string path =
      std::string(SCMP_TEST_DATA_DIR) + "/scmp_golden_trace.txt";
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "missing golden trace: " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// The pinned scenario: two groups sharing the ARPANET domain, concurrent
/// joins, on-tree and off-tree (unicast-encapsulated) senders, leaf prunes, a
/// leave racing a join, and both trees emptying out.
void run_scenario(proto::MulticastProtocol& p, sim::EventQueue& q) {
  auto drain = [&] { q.run_all(); };
  p.host_join(5, 0);
  p.host_join(12, 0);
  drain();
  p.host_join(19, 0);
  p.host_join(3, 0);  // two joins in flight together
  drain();
  p.send_data(5, 0);
  drain();
  p.send_data(33, 0);  // off-tree source: unicast-encapsulated
  drain();
  p.host_join(7, 1);
  p.host_join(21, 1);
  drain();
  p.host_join(9, 1);
  drain();
  p.send_data(21, 1);
  drain();
  p.host_leave(12, 0);
  drain();
  p.host_leave(19, 0);
  p.host_join(27, 0);  // leave racing a join
  drain();
  p.host_leave(3, 0);
  drain();
  p.host_leave(5, 0);
  drain();
  p.send_data(9, 1);
  drain();
  p.host_leave(7, 1);
  p.host_leave(21, 1);
  drain();
  p.host_leave(9, 1);
  drain();
}

/// One line per link transmission; times as hexfloats (%a) so equality means
/// bit-identical doubles, not just same-looking decimals.
std::string serialize_trace(const std::vector<sim::TraceEvent>& events) {
  std::ostringstream out;
  for (const sim::TraceEvent& ev : events) {
    char time[64];
    std::snprintf(time, sizeof time, "%a", ev.time);
    out << time << ' ' << ev.from << ' ' << ev.to << ' '
        << sim::to_string(ev.type) << ' ' << ev.group << ' ' << ev.src << ' '
        << ev.uid << ' ' << ev.size_bytes << '\n';
  }
  return out.str();
}

struct GoldenWorld {
  explicit GoldenWorld(Scmp::Config cfg = {})
      : topo(topo::arpanet(rng)),
        net(topo.graph, queue),
        igmp(queue, topo.graph.num_nodes()),
        scmp(net, igmp, [&] {
          cfg.mrouter = 0;
          return cfg;
        }()),
        recorder(net) {}

  Rng rng{7};
  topo::Topology topo;
  sim::EventQueue queue;
  sim::Network net;
  igmp::IgmpDomain igmp;
  Scmp scmp;
  sim::TraceRecorder recorder;
};

TEST(ScmpGoldenTrace, FireAndForgetTraceIsBitIdentical) {
  GoldenWorld w;
  run_scenario(w.scmp, w.queue);
  EXPECT_EQ(serialize_trace(w.recorder.events()), read_golden())
      << "zero-loss SCMP control trace diverged from the golden; if the "
         "protocol change is intentional, regenerate tests/data/"
         "scmp_golden_trace.txt (see this file's header comment)";
}

TEST(ScmpGoldenTrace, ReliableDeliveryAddsOnlyAcks) {
  Scmp::Config cfg;
  cfg.reliability.enabled = true;
  GoldenWorld w(cfg);
  run_scenario(w.scmp, w.queue);

  // Same control packets, ACKs aside. Timestamps are excluded (ACKs share
  // FIFO link queues, shifting later departures) and so is the event order
  // they induce: compare the sorted multiset of timeless event lines.
  auto timeless_sorted = [](const std::string& trace) {
    std::vector<std::string> lines;
    std::istringstream in(trace);
    std::string line;
    while (std::getline(in, line)) {
      if (line.find(" ACK ") != std::string::npos) continue;
      lines.push_back(line.substr(line.find(' ') + 1));  // drop the timestamp
    }
    std::sort(lines.begin(), lines.end());
    return lines;
  };
  EXPECT_EQ(timeless_sorted(serialize_trace(w.recorder.events())),
            timeless_sorted(read_golden()));

  // Loss-free means no timer may fire before its ACK lands: the default
  // timeout is chosen above the worst-case control RTT on ARPANET.
  EXPECT_EQ(w.scmp.retx().retransmissions(), 0u);
  EXPECT_EQ(w.scmp.retx().exhausted(), 0u);
  EXPECT_GT(w.scmp.retx().acked(), 0u);
  EXPECT_EQ(w.scmp.retx().pending_count(), 0u);
  EXPECT_GT(w.recorder.count(sim::PacketType::kAck), 0u);
}

}  // namespace
}  // namespace scmp::core
