// Multiple m-routers per domain (paper §II-A: "An ISP may own more than one
// m-routers ... our approach can be easily extended to multiple m-routers
// per domain"): each group is anchored at one m-router via a published
// static mapping.
#include <gtest/gtest.h>

#include <map>

#include "core/scmp.hpp"
#include "helpers.hpp"

namespace scmp::core {
namespace {

class MultiMRouterFixture {
 public:
  MultiMRouterFixture(graph::Graph graph, std::vector<graph::NodeId> mrouters)
      : g_(std::move(graph)), net_(g_, queue_), igmp_(queue_, g_.num_nodes()) {
    Scmp::Config cfg;
    cfg.mrouters = std::move(mrouters);
    scmp_ = std::make_unique<Scmp>(net_, igmp_, cfg);
    net_.set_delivery_callback(
        [this](const sim::Packet& pkt, graph::NodeId member, sim::SimTime) {
          deliveries_[pkt.group][pkt.uid].push_back(member);
        });
  }

  void drain() { queue_.run_all(); }

  std::vector<graph::NodeId> send_and_collect(graph::NodeId src, int group) {
    const auto before = deliveries_[group].size();
    scmp_->send_data(src, group);
    drain();
    if (deliveries_[group].size() == before) return {};
    auto got = deliveries_[group].rbegin()->second;
    std::sort(got.begin(), got.end());
    return got;
  }

  graph::Graph g_;
  sim::EventQueue queue_;
  sim::Network net_;
  igmp::IgmpDomain igmp_;
  std::unique_ptr<Scmp> scmp_;
  std::map<int, std::map<std::uint64_t, std::vector<graph::NodeId>>>
      deliveries_;
};

TEST(ScmpMultiMRouter, GroupsAnchorPerPublishedMapping) {
  MultiMRouterFixture f(test::line(8), {0, 7});
  EXPECT_EQ(f.scmp_->mrouters(), (std::vector<graph::NodeId>{0, 7}));
  EXPECT_EQ(f.scmp_->mrouter_of(2), 0);  // 2 % 2 == 0
  EXPECT_EQ(f.scmp_->mrouter_of(1), 7);  // 1 % 2 == 1
  EXPECT_EQ(f.scmp_->mrouter(), 0);      // the primary
}

TEST(ScmpMultiMRouter, TreesRootedAtTheirAnchor) {
  MultiMRouterFixture f(test::line(8), {0, 7});
  f.scmp_->host_join(3, 1);  // anchored at 7
  f.scmp_->host_join(4, 2);  // anchored at 0
  f.drain();
  ASSERT_NE(f.scmp_->group_tree(1), nullptr);
  ASSERT_NE(f.scmp_->group_tree(2), nullptr);
  EXPECT_EQ(f.scmp_->group_tree(1)->root(), 7);
  EXPECT_EQ(f.scmp_->group_tree(2)->root(), 0);
  EXPECT_TRUE(f.scmp_->network_state_consistent(1));
  EXPECT_TRUE(f.scmp_->network_state_consistent(2));
}

TEST(ScmpMultiMRouter, DeliveryWorksPerAnchor) {
  const auto topo = test::random_topology(61, 30);
  MultiMRouterFixture f(topo.graph, {0, 1, 2});
  for (int group = 1; group <= 3; ++group) {
    for (graph::NodeId m : {5, 11, 17})
      f.scmp_->host_join(m + group, group);
  }
  f.drain();
  for (int group = 1; group <= 3; ++group) {
    std::vector<graph::NodeId> want{5 + group, 11 + group, 17 + group};
    EXPECT_EQ(f.send_and_collect(25, group), want) << "group " << group;
    EXPECT_TRUE(f.scmp_->network_state_consistent(group));
  }
}

TEST(ScmpMultiMRouter, AnchorActsAsIRouterForOtherGroups) {
  // m-router 7 anchors group 1; for group 2 (anchored at 0) it is an
  // ordinary DR/i-router and may itself be a member.
  MultiMRouterFixture f(test::line(8), {0, 7});
  f.scmp_->host_join(7, 2);
  f.drain();
  EXPECT_NE(f.scmp_->entry_at(7, 2), nullptr);
  EXPECT_EQ(f.send_and_collect(0, 2), (std::vector<graph::NodeId>{7}));
  EXPECT_TRUE(f.scmp_->network_state_consistent(2));
}

TEST(ScmpMultiMRouter, EncapsulationTargetsTheRightAnchor) {
  MultiMRouterFixture f(test::line(8), {0, 7});
  f.scmp_->host_join(6, 1);  // anchored at 7; tree is just 7-6
  f.drain();
  const auto before = f.net_.stats().data_link_crossings;
  // Source 2 is off group 1's tree: the encapsulated packet unicasts all the
  // way to anchor 7 (5 hops, passing m-router 0's region by), then one hop
  // down the tree.
  EXPECT_EQ(f.send_and_collect(2, 1), (std::vector<graph::NodeId>{6}));
  EXPECT_EQ(f.net_.stats().data_link_crossings - before, 5u + 1u);
}

TEST(ScmpMultiMRouter, FailOverMovesOnlyAffectedGroups) {
  const auto topo = test::random_topology(63, 30);
  MultiMRouterFixture f(topo.graph, {0, 1});
  for (graph::NodeId m : {5, 9, 13}) f.scmp_->host_join(m, 1);   // anchor 1
  for (graph::NodeId m : {6, 10, 14}) f.scmp_->host_join(m, 2);  // anchor 0
  f.drain();

  f.scmp_->fail_over(/*failed=*/1, /*standby=*/2);
  f.drain();
  EXPECT_EQ(f.scmp_->mrouters(), (std::vector<graph::NodeId>{0, 2}));
  EXPECT_EQ(f.scmp_->group_tree(1)->root(), 2);   // moved
  EXPECT_EQ(f.scmp_->group_tree(2)->root(), 0);   // untouched
  EXPECT_TRUE(f.scmp_->network_state_consistent(1));
  EXPECT_TRUE(f.scmp_->network_state_consistent(2));
  EXPECT_EQ(f.send_and_collect(20, 1), (std::vector<graph::NodeId>{5, 9, 13}));
  EXPECT_EQ(f.send_and_collect(20, 2),
            (std::vector<graph::NodeId>{6, 10, 14}));
}

TEST(ScmpMultiMRouter, TopologyChangeRebuildsAllAnchors) {
  graph::Graph ring(8);
  for (int i = 0; i < 8; ++i) ring.add_edge(i, (i + 1) % 8, 1, 1);
  MultiMRouterFixture f(std::move(ring), {0, 4});
  f.scmp_->host_join(2, 1);  // anchored at 4
  f.scmp_->host_join(6, 2);  // anchored at 0
  f.drain();
  f.net_.fail_link(3, 4);
  f.scmp_->on_topology_change();
  f.drain();
  EXPECT_TRUE(f.scmp_->network_state_consistent(1));
  EXPECT_TRUE(f.scmp_->network_state_consistent(2));
  EXPECT_EQ(f.send_and_collect(4, 1), (std::vector<graph::NodeId>{2}));
  EXPECT_EQ(f.send_and_collect(0, 2), (std::vector<graph::NodeId>{6}));
}

TEST(ScmpMultiMRouterDeath, RejectsDuplicateMRouters) {
  const auto g = test::line(4);
  sim::EventQueue q;
  sim::Network net(g, q);
  igmp::IgmpDomain igmp(q, 4);
  Scmp::Config cfg;
  cfg.mrouters = {0, 0};
  EXPECT_DEATH(Scmp(net, igmp, cfg), "Precondition");
}

TEST(ScmpMultiMRouterDeath, FailOverRequiresKnownMRouter) {
  MultiMRouterFixture f(test::line(4), {0});
  EXPECT_DEATH(f.scmp_->fail_over(2, 3), "Precondition");
}

}  // namespace
}  // namespace scmp::core
