#include "core/mrouter_node.hpp"

#include <gtest/gtest.h>

#include <map>

#include "helpers.hpp"

namespace scmp::core {
namespace {

constexpr proto::GroupId kG1 = 1;
constexpr proto::GroupId kG2 = 2;

class MRouterNodeFixture {
 public:
  explicit MRouterNodeFixture(graph::Graph graph, int fabric_ports = 16)
      : g_(std::move(graph)), net_(g_, queue_), igmp_(queue_, g_.num_nodes()) {
    Scmp::Config cfg;
    cfg.mrouter = 0;
    node_ = std::make_unique<MRouterNode>(net_, igmp_, cfg, fabric_ports,
                                          /*threads=*/2);
  }

  void drain() { queue_.run_all(); }

  graph::Graph g_;
  sim::EventQueue queue_;
  sim::Network net_;
  igmp::IgmpDomain igmp_;
  std::unique_ptr<MRouterNode> node_;
};

TEST(MRouterNode, FabricSessionPerActiveGroupWithSenders) {
  MRouterNodeFixture f(test::random_topology(4, 25).graph);
  Scmp& scmp = f.node_->protocol();
  for (graph::NodeId m : {3, 7, 11}) scmp.host_join(m, kG1);
  for (graph::NodeId m : {5, 9}) scmp.host_join(m, kG2);
  f.drain();
  // Data from two senders in group 1, one in group 2.
  scmp.send_data(3, kG1);
  scmp.send_data(20, kG1);
  scmp.send_data(9, kG2);
  f.drain();

  const auto sync = f.node_->sync_fabric();
  EXPECT_EQ(sync.sessions_placed, 2);
  EXPECT_TRUE(sync.unplaced.empty());
  EXPECT_TRUE(f.node_->fabric().verify_no_cross_group());

  // Both of group 1's senders land on group 1's output port.
  const int out1 = f.node_->output_port_of(kG1);
  const int out2 = f.node_->output_port_of(kG2);
  EXPECT_NE(out1, out2);
  EXPECT_EQ(f.node_->fabric().route_cell(f.node_->input_port_of(kG1, 3)), out1);
  EXPECT_EQ(f.node_->fabric().route_cell(f.node_->input_port_of(kG1, 20)), out1);
  EXPECT_EQ(f.node_->fabric().route_cell(f.node_->input_port_of(kG2, 9)), out2);
}

TEST(MRouterNode, GroupsWithoutSendersAreSkipped) {
  MRouterNodeFixture f(test::line(5));
  f.node_->protocol().host_join(3, kG1);
  f.drain();
  const auto sync = f.node_->sync_fabric();
  EXPECT_EQ(sync.sessions_placed, 0);
  EXPECT_EQ(f.node_->input_port_of(kG1, 3), -1);
}

TEST(MRouterNode, CapacityOverflowReportsUnplaced) {
  MRouterNodeFixture f(test::random_topology(5, 25).graph, /*fabric_ports=*/2);
  Scmp& scmp = f.node_->protocol();
  scmp.host_join(3, kG1);
  scmp.host_join(5, kG2);
  f.drain();
  scmp.send_data(1, kG1);
  scmp.send_data(2, kG1);
  scmp.send_data(4, kG2);
  f.drain();
  const auto sync = f.node_->sync_fabric();
  // Group 1 occupies both ports; group 2 cannot be placed.
  EXPECT_EQ(sync.sessions_placed, 1);
  EXPECT_EQ(sync.unplaced, std::vector<proto::GroupId>{kG2});
}

TEST(MRouterNode, ParallelFailoverMatchesSerial) {
  const auto topo = test::random_topology(11, 35);
  // Two identical domains; one fails over serially, one through the node's
  // compute pool. The resulting installed state must be identical.
  MRouterNodeFixture parallel(topo.graph);
  MRouterNodeFixture serial(topo.graph);
  Rng rng(3);
  std::vector<graph::NodeId> members;
  for (int v : rng.sample_without_replacement(topo.graph.num_nodes() - 2, 10))
    members.push_back(v + 2);
  for (graph::NodeId m : members) {
    parallel.node_->protocol().host_join(m, kG1);
    serial.node_->protocol().host_join(m, kG1);
    if (m % 2 == 0) {
      parallel.node_->protocol().host_join(m, kG2);
      serial.node_->protocol().host_join(m, kG2);
    }
  }
  parallel.drain();
  serial.drain();

  parallel.node_->fail_over_to(1);                     // pool-backed
  serial.node_->protocol().fail_over_to(1, nullptr);   // serial
  parallel.drain();
  serial.drain();

  for (const proto::GroupId g : {kG1, kG2}) {
    EXPECT_TRUE(parallel.node_->protocol().network_state_consistent(g));
    EXPECT_TRUE(serial.node_->protocol().network_state_consistent(g));
    const DcdmTree* tp = parallel.node_->protocol().group_tree(g);
    const DcdmTree* ts = serial.node_->protocol().group_tree(g);
    ASSERT_NE(tp, nullptr);
    ASSERT_NE(ts, nullptr);
    EXPECT_DOUBLE_EQ(tp->tree_cost(), ts->tree_cost());
    for (graph::NodeId v = 0; v < topo.graph.num_nodes(); ++v) {
      ASSERT_EQ(tp->tree().on_tree(v), ts->tree().on_tree(v));
      if (tp->tree().on_tree(v)) {
        EXPECT_EQ(tp->tree().parent(v), ts->tree().parent(v));
      }
    }
  }
}

TEST(MRouterNode, PortSchedulersArePerPortAndPersistent) {
  MRouterNodeFixture f(test::line(5));
  WfqScheduler& s0 = f.node_->port_scheduler(0);
  s0.enqueue(kG1, 1, 1000, 0.0);
  EXPECT_EQ(f.node_->port_scheduler(0).pending(), 1u);  // same object
  EXPECT_EQ(f.node_->port_scheduler(1).pending(), 0u);  // distinct port
}

TEST(MRouterNode, PortSchedulerSharesBandwidthAcrossGroups) {
  MRouterNodeFixture f(test::line(5));
  WfqScheduler& s = f.node_->port_scheduler(3);
  s.set_weight(kG1, 3.0);
  s.set_weight(kG2, 1.0);
  for (std::uint64_t i = 0; i < 20; ++i) {
    s.enqueue(kG1, i, 1000, 0.0);
    s.enqueue(kG2, 100 + i, 1000, 0.0);
  }
  for (int i = 0; i < 16; ++i) s.dequeue();
  const auto& served = s.served_bytes();
  EXPECT_GT(served.at(kG1), 2 * served.at(kG2));
}

TEST(MRouterNodeDeath, SchedulerPortMustExist) {
  MRouterNodeFixture f(test::line(5), /*fabric_ports=*/8);
  EXPECT_DEATH(f.node_->port_scheduler(8), "Precondition");
}

TEST(MRouterNode, FabricTransitDelaysRootForwarding) {
  // Identical domains, one with the fabric transit model enabled: the data
  // that crosses the m-router arrives later by the configured stage delay.
  const graph::Graph g = test::line(4);
  double arrival_plain = -1.0, arrival_transit = -1.0;
  for (const bool with_transit : {false, true}) {
    MRouterNodeFixture f(g);
    Scmp& scmp = f.node_->protocol();
    scmp.host_join(3, kG1);
    f.drain();
    // Prime the sender registry and the fabric, then enable the model.
    scmp.send_data(0, kG1);
    f.drain();
    f.node_->sync_fabric();
    if (with_transit) f.node_->enable_fabric_transit(1e-4);

    double arrival = -1.0;
    f.net_.set_delivery_callback(
        [&](const sim::Packet&, graph::NodeId, sim::SimTime at) {
          arrival = at;
        });
    const double sent = f.queue_.now();
    scmp.send_data(0, kG1);  // the m-router originates: transit applies
    f.drain();
    (with_transit ? arrival_transit : arrival_plain) = arrival - sent;
  }
  ASSERT_GE(arrival_plain, 0.0);
  ASSERT_GE(arrival_transit, 0.0);
  // Through a 16-port fabric the baseline is PN+DN = 14 stages = 1.4 ms.
  EXPECT_NEAR(arrival_transit - arrival_plain, 14e-4, 1e-6);
}

TEST(MRouterNode, SendersAccumulateAcrossSends) {
  MRouterNodeFixture f(test::line(6));
  Scmp& scmp = f.node_->protocol();
  scmp.host_join(3, kG1);
  f.drain();
  scmp.send_data(5, kG1);
  f.drain();
  scmp.send_data(4, kG1);
  f.drain();
  const auto senders = scmp.senders_of(kG1);
  EXPECT_TRUE(senders.contains(5));
  EXPECT_TRUE(senders.contains(4));
}

}  // namespace
}  // namespace scmp::core
