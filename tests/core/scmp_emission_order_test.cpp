// Canonical-emission-order pin (the determinism linter's runtime
// counterpart): the BRANCH/PRUNE/DATA stream an SCMP domain emits must be a
// pure function of the scenario — independent of heap layout, hash seeding
// and process history. Two fresh worlds constructed back to back in one
// process occupy different addresses, so any protocol decision that leaks
// container-hash or pointer order diverges between them even though each
// run looks internally consistent; the golden-trace test alone cannot catch
// that class (it compares against a file, produced by the same biased run).
#include "core/scmp.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "igmp/igmp.hpp"
#include "sim/event_queue.hpp"
#include "sim/network.hpp"
#include "sim/trace.hpp"
#include "topo/arpanet.hpp"
#include "util/rng.hpp"

namespace scmp::core {
namespace {

struct World {
  World()
      : topo(topo::arpanet(rng)),
        net(topo.graph, queue),
        igmp(queue, topo.graph.num_nodes()),
        scmp(net, igmp,
             [] {
               Scmp::Config cfg;
               cfg.mrouter = 0;
               return cfg;
             }()),
        recorder(net) {}

  Rng rng{7};
  topo::Topology topo;
  sim::EventQueue queue;
  sim::Network net;
  igmp::IgmpDomain igmp;
  Scmp scmp;
  sim::TraceRecorder recorder;
};

/// Joins, sends and leaves with several packets in flight together — the
/// shapes where an unordered candidate scan or pointer tie-break would pick
/// a different but equally valid emission order.
void run_scenario(Scmp& p, sim::EventQueue& q) {
  p.host_join(5, 0);
  p.host_join(12, 0);
  p.host_join(19, 0);
  q.run_all();
  p.send_data(5, 0);
  p.host_join(7, 1);
  p.host_join(21, 1);
  q.run_all();
  p.send_data(21, 1);
  p.host_leave(12, 0);
  p.host_join(27, 0);
  q.run_all();
  p.host_leave(5, 0);
  p.host_leave(19, 0);
  p.host_leave(27, 0);
  q.run_all();
}

std::string serialize(const std::vector<sim::TraceEvent>& events) {
  std::ostringstream out;
  for (const sim::TraceEvent& ev : events) {
    char time[64];
    std::snprintf(time, sizeof time, "%a", ev.time);
    out << time << ' ' << ev.from << ' ' << ev.to << ' '
        << sim::to_string(ev.type) << ' ' << ev.group << ' ' << ev.src << ' '
        << ev.uid << ' ' << ev.size_bytes << '\n';
  }
  return out.str();
}

TEST(ScmpEmissionOrder, BitIdenticalAcrossFreshWorlds) {
  std::string first;
  for (int run = 0; run < 3; ++run) {
    World w;
    run_scenario(w.scmp, w.queue);
    const std::string trace = serialize(w.recorder.events());
    ASSERT_FALSE(trace.empty());
    if (run == 0) {
      first = trace;
    } else {
      EXPECT_EQ(trace, first)
          << "emission order changed between identical runs in one process; "
             "some protocol decision leaks heap-address or hash order";
    }
  }
}

TEST(ScmpEmissionOrder, TraceIsTimeOrdered) {
  World w;
  run_scenario(w.scmp, w.queue);
  const auto& events = w.recorder.events();
  ASSERT_FALSE(events.empty());
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_LE(events[i - 1].time, events[i].time)
        << "trace out of order at event " << i;
}

}  // namespace
}  // namespace scmp::core
