// ThreadSanitizer-targeted stress tests for TreeComputePool. The pool's
// determinism claim (bit-identical trees for any thread count) only holds if
// workers share nothing mutable; these tests hammer the pool hard enough
// that an introduced race is near-certain to trip TSan, and assert the
// determinism contract directly by comparing structural digests.
#include "core/compute_pool.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "helpers.hpp"

namespace scmp::core {
namespace {

std::vector<GroupMembership> make_groups(const graph::Graph& g, int count,
                                         std::uint64_t seed) {
  std::vector<GroupMembership> groups;
  Rng rng(seed);
  for (int i = 0; i < count; ++i) {
    GroupMembership gm;
    gm.group = i + 1;
    const int size = static_cast<int>(rng.uniform_int(2, 10));
    for (int v : rng.sample_without_replacement(g.num_nodes() - 1, size))
      gm.join_order.push_back(v + 1);
    groups.push_back(std::move(gm));
  }
  return groups;
}

/// FNV-1a over every tree's full structure: parent pointers, membership
/// flags and on-tree sets. Any divergence between runs changes the digest.
std::uint64_t structural_digest(const std::map<GroupId, DcdmTree>& trees,
                                const graph::Graph& g) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  for (const auto& [group, tree] : trees) {
    mix(static_cast<std::uint64_t>(group));
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      if (!tree.tree().on_tree(v)) continue;
      mix(static_cast<std::uint64_t>(v) * 3 + 1);
      mix(static_cast<std::uint64_t>(tree.tree().parent(v)) * 3 + 2);
      mix(tree.tree().is_member(v) ? 7 : 11);
    }
  }
  return h;
}

TEST(ComputePoolRace, BitIdenticalDigestAcrossThreadCounts) {
  const auto topo = test::random_topology(31, 24);
  const graph::Graph& g = topo.graph;
  const graph::AllPairsPaths paths(g);
  const auto groups = make_groups(g, 12, 17);
  const DcdmConfig cfg{1.5};

  const TreeComputePool serial(g, paths, 1);
  const std::uint64_t expected =
      structural_digest(serial.build_trees(0, groups, cfg), g);

  for (int round = 0; round < 3; ++round) {
    for (int threads : {2, 3, 4, 8}) {
      const TreeComputePool pool(g, paths, threads);
      const auto trees = pool.build_trees(0, groups, cfg);
      EXPECT_EQ(structural_digest(trees, g), expected)
          << "threads=" << threads << " round=" << round;
    }
  }
}

TEST(ComputePoolRace, ConcurrentBuildTreesOnSharedPool) {
  // build_trees is const; several simulation drivers may share one pool.
  // Every caller must get the same digest, and TSan must stay silent.
  const auto topo = test::random_topology(32, 24);
  const graph::Graph& g = topo.graph;
  const graph::AllPairsPaths paths(g);
  const auto groups = make_groups(g, 10, 23);
  const DcdmConfig cfg{2.0};

  const TreeComputePool pool(g, paths, 4);
  const std::uint64_t expected =
      structural_digest(pool.build_trees(0, groups, cfg), g);

  constexpr int kCallers = 4;
  std::vector<std::uint64_t> digests(kCallers, 0);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      digests[static_cast<std::size_t>(c)] =
          structural_digest(pool.build_trees(0, groups, cfg), g);
    });
  }
  for (auto& t : callers) t.join();
  for (std::uint64_t d : digests) EXPECT_EQ(d, expected);
}

TEST(ComputePoolRace, ForEachIndexHammered) {
  // Repeated wide fan-out with per-index slots: workers write disjoint
  // entries, the driver reads them after the implicit join. A lost write,
  // double dispatch, or missing join shows up as a wrong sum or a TSan race.
  const auto topo = test::random_topology(33, 16);
  const graph::AllPairsPaths paths(topo.graph);
  const TreeComputePool pool(topo.graph, paths, 8);

  constexpr std::size_t kIndices = 96;
  for (int round = 0; round < 20; ++round) {
    std::vector<std::uint64_t> slots(kIndices, 0);
    pool.for_each_index(kIndices, [&](std::size_t i) {
      slots[i] = static_cast<std::uint64_t>(i) + 1;
    });
    std::uint64_t sum = 0;
    for (std::uint64_t v : slots) sum += v;
    ASSERT_EQ(sum, kIndices * (kIndices + 1) / 2) << "round=" << round;
  }
}

}  // namespace
}  // namespace scmp::core
