#include "core/compute_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "helpers.hpp"

namespace scmp::core {
namespace {

std::vector<GroupMembership> make_groups(const graph::Graph& g, int count,
                                         std::uint64_t seed) {
  std::vector<GroupMembership> groups;
  Rng rng(seed);
  for (int i = 0; i < count; ++i) {
    GroupMembership gm;
    gm.group = i + 1;
    const int size = static_cast<int>(rng.uniform_int(2, 12));
    for (int v : rng.sample_without_replacement(g.num_nodes() - 1, size))
      gm.join_order.push_back(v + 1);
    groups.push_back(std::move(gm));
  }
  return groups;
}

TEST(TreeComputePool, ThreadCountDefaults) {
  const auto topo = test::random_topology(1, 20);
  const graph::AllPairsPaths paths(topo.graph);
  EXPECT_GE(TreeComputePool(topo.graph, paths, 0).thread_count(), 1);
  EXPECT_EQ(TreeComputePool(topo.graph, paths, 3).thread_count(), 3);
  EXPECT_EQ(TreeComputePool(topo.graph, paths, -5).thread_count(),
            TreeComputePool(topo.graph, paths, 0).thread_count());
}

TEST(TreeComputePool, ForEachIndexCoversEveryIndexOnce) {
  const auto topo = test::random_topology(2, 20);
  const graph::AllPairsPaths paths(topo.graph);
  const TreeComputePool pool(topo.graph, paths, 4);
  std::vector<std::atomic<int>> touched(101);
  pool.for_each_index(101, [&](std::size_t i) { ++touched[i]; });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(TreeComputePool, ForEachIndexEmpty) {
  const auto topo = test::random_topology(2, 20);
  const graph::AllPairsPaths paths(topo.graph);
  const TreeComputePool pool(topo.graph, paths, 4);
  pool.for_each_index(0, [](std::size_t) { FAIL(); });
}

TEST(TreeComputePool, ForEachIndexFewerItemsThanThreads) {
  const auto topo = test::random_topology(2, 20);
  const graph::AllPairsPaths paths(topo.graph);
  const TreeComputePool pool(topo.graph, paths, 16);
  std::vector<std::atomic<int>> touched(3);
  pool.for_each_index(3, [&](std::size_t i) { ++touched[i]; });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

class PoolDeterminism : public ::testing::TestWithParam<int> {};

TEST_P(PoolDeterminism, ParallelEqualsSerial) {
  const auto topo = test::random_topology(7, 40);
  const graph::Graph& g = topo.graph;
  const graph::AllPairsPaths paths(g);
  const auto groups = make_groups(g, 24, 99);

  const TreeComputePool serial(g, paths, 1);
  const TreeComputePool parallel(g, paths, GetParam());
  const DcdmConfig cfg{1.0};
  const auto a = serial.build_trees(0, groups, cfg);
  const auto b = parallel.build_trees(0, groups, cfg);

  ASSERT_EQ(a.size(), b.size());
  for (const auto& gm : groups) {
    const DcdmTree& ta = a.at(gm.group);
    const DcdmTree& tb = b.at(gm.group);
    EXPECT_DOUBLE_EQ(ta.tree_cost(), tb.tree_cost());
    EXPECT_DOUBLE_EQ(ta.tree_delay(), tb.tree_delay());
    // Structural equality, node by node.
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      ASSERT_EQ(ta.tree().on_tree(v), tb.tree().on_tree(v));
      if (ta.tree().on_tree(v)) {
        EXPECT_EQ(ta.tree().parent(v), tb.tree().parent(v));
        EXPECT_EQ(ta.tree().is_member(v), tb.tree().is_member(v));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, PoolDeterminism,
                         ::testing::Values(2, 3, 4, 8, 16));

TEST(TreeComputePool, BuildTreesValidatesEveryTree) {
  const auto topo = test::random_topology(9, 40);
  const graph::AllPairsPaths paths(topo.graph);
  const TreeComputePool pool(topo.graph, paths, 4);
  const auto groups = make_groups(topo.graph, 16, 5);
  const auto trees = pool.build_trees(0, groups, DcdmConfig{2.0});
  for (const auto& gm : groups) {
    const DcdmTree& t = trees.at(gm.group);
    EXPECT_TRUE(t.tree().validate(topo.graph));
    for (graph::NodeId m : gm.join_order) EXPECT_TRUE(t.tree().is_member(m));
  }
}

TEST(TreeComputePool, EmptyGroupList) {
  const auto topo = test::random_topology(9, 20);
  const graph::AllPairsPaths paths(topo.graph);
  const TreeComputePool pool(topo.graph, paths, 4);
  EXPECT_TRUE(pool.build_trees(0, {}, DcdmConfig{}).empty());
}

}  // namespace
}  // namespace scmp::core
