#include "core/dcdm.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph/spt.hpp"
#include "graph/steiner.hpp"
#include "helpers.hpp"

namespace scmp::core {
namespace {

std::vector<graph::NodeId> pick_members(Rng& rng, int n, int k) {
  const auto sample = rng.sample_without_replacement(n - 1, k);
  std::vector<graph::NodeId> members;
  for (int v : sample) members.push_back(v + 1);  // never the root (0)
  return members;
}

TEST(Dcdm, RootJoinIsMembershipOnly) {
  const graph::Graph g = test::line(4);
  const graph::AllPairsPaths paths(g);
  DcdmTree t(g, paths, 0);
  const JoinResult r = t.join(0);
  EXPECT_TRUE(r.already_on_tree);
  EXPECT_TRUE(t.tree().is_member(0));
  EXPECT_EQ(t.tree().tree_size(), 1);
}

TEST(Dcdm, LoosestSlackPicksCheapestGraft) {
  // With no delay constraint, DCDM grafts the minimum-cost path even when it
  // is slow.
  const graph::Graph g = test::diamond();
  const graph::AllPairsPaths paths(g);
  DcdmTree t(g, paths, 0, DcdmConfig{kLoosest});
  t.join(3);
  // Cheapest route is 0-2-3 (cost 2) despite delay 10 vs 2.
  EXPECT_EQ(t.tree().parent(3), 2);
  EXPECT_DOUBLE_EQ(t.tree_cost(), 2.0);
}

TEST(Dcdm, TightestSlackPicksFastGraft) {
  const graph::Graph g = test::diamond();
  const graph::AllPairsPaths paths(g);
  DcdmTree t(g, paths, 0, DcdmConfig{1.0});
  t.join(3);
  // Bound = ul(3) = 2 (via 0-1-3); the cheap slow path (delay 10) violates it.
  EXPECT_EQ(t.tree().parent(3), 1);
  EXPECT_DOUBLE_EQ(t.tree_delay(), 2.0);
}

TEST(DcdmDeath, RejectsSlackBelowOne) {
  const graph::Graph g = test::line(3);
  const graph::AllPairsPaths paths(g);
  EXPECT_DEATH(DcdmTree(g, paths, 0, DcdmConfig{0.5}), "Precondition");
}

struct SlackCase {
  std::uint64_t seed;
  double slack;
};

class DcdmProperty : public ::testing::TestWithParam<SlackCase> {};

TEST_P(DcdmProperty, InvariantsAfterEveryJoin) {
  const auto topo = test::random_topology(GetParam().seed, 40);
  const graph::Graph& g = topo.graph;
  const graph::AllPairsPaths paths(g);
  Rng rng(GetParam().seed * 3 + 1);
  const auto members = pick_members(rng, g.num_nodes(), 15);

  DcdmTree t(g, paths, 0, DcdmConfig{GetParam().slack});
  std::set<graph::NodeId> joined;
  for (graph::NodeId m : members) {
    const double bound = t.delay_bound_for(m);
    t.join(m);
    joined.insert(m);
    ASSERT_TRUE(t.tree().validate(g));
    for (graph::NodeId j : joined) ASSERT_TRUE(t.tree().is_member(j));
    // The freshly joined member's multicast delay respects the bound it was
    // admitted under (other members' delays can shift on restructures).
    EXPECT_LE(t.tree().node_delay(g, m), bound + 1e-9);
  }
}

TEST_P(DcdmProperty, LeavesShrinkTree) {
  const auto topo = test::random_topology(GetParam().seed, 40);
  const graph::Graph& g = topo.graph;
  const graph::AllPairsPaths paths(g);
  Rng rng(GetParam().seed * 5 + 7);
  const auto members = pick_members(rng, g.num_nodes(), 12);

  DcdmTree t(g, paths, 0, DcdmConfig{GetParam().slack});
  for (graph::NodeId m : members) t.join(m);
  auto remaining = members;
  while (!remaining.empty()) {
    const graph::NodeId m = remaining.back();
    remaining.pop_back();
    const int before = t.tree().tree_size();
    t.leave(m);
    EXPECT_LE(t.tree().tree_size(), before);
    ASSERT_TRUE(t.tree().validate(g));
    for (graph::NodeId still : remaining)
      ASSERT_TRUE(t.tree().is_member(still));
  }
  EXPECT_EQ(t.tree().tree_size(), 1);  // only the root remains
}

TEST_P(DcdmProperty, EveryLeafIsMemberOrRoot) {
  const auto topo = test::random_topology(GetParam().seed, 40);
  const graph::Graph& g = topo.graph;
  const graph::AllPairsPaths paths(g);
  Rng rng(GetParam().seed * 7 + 3);
  const auto members = pick_members(rng, g.num_nodes(), 10);
  DcdmTree t(g, paths, 0, DcdmConfig{GetParam().slack});
  for (graph::NodeId m : members) t.join(m);
  // Interleave leaves to exercise pruning, then re-check.
  t.leave(members[0]);
  t.leave(members[5]);
  for (graph::NodeId v : t.tree().on_tree_nodes()) {
    if (t.tree().is_leaf(v) && v != 0) {
      EXPECT_TRUE(t.tree().is_member(v));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndSlacks, DcdmProperty,
    ::testing::Values(SlackCase{1, 1.0}, SlackCase{2, 1.0}, SlackCase{3, 2.0},
                      SlackCase{4, 2.0}, SlackCase{5, kLoosest},
                      SlackCase{6, kLoosest}, SlackCase{7, 1.5},
                      SlackCase{8, 3.0}));

TEST(DcdmVsBaselines, TightestDelayMatchesSptDelay) {
  // At the tightest constraint DCDM achieves the same tree delay as SPT
  // (Fig. 7(a)): the bound equals the max unicast delay, which SPT attains.
  double dcdm_total = 0.0, spt_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto topo = test::random_topology(seed, 40);
    const graph::Graph& g = topo.graph;
    const graph::AllPairsPaths paths(g);
    Rng rng(seed * 11);
    const auto members = pick_members(rng, g.num_nodes(), 12);
    DcdmTree t(g, paths, 0, DcdmConfig{1.0});
    for (graph::NodeId m : members) t.join(m);
    const auto spt = graph::shortest_path_tree(g, 0, members);
    dcdm_total += t.tree_delay();
    spt_total += spt.tree_delay(g);
    EXPECT_GE(t.tree_delay(), spt.tree_delay(g) - 1e-9);  // SPT is optimal
  }
  // Within 25% on average: DCDM trades a little delay for cost.
  EXPECT_LE(dcdm_total, spt_total * 1.25);
}

TEST(DcdmVsBaselines, CostBetweenKmbAndSpt) {
  // Fig. 7(d)-(f): KMB <= DCDM <= SPT in tree cost, on average.
  double dcdm_total = 0.0, spt_total = 0.0, kmb_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto topo = test::random_topology(seed, 40);
    const graph::Graph& g = topo.graph;
    const graph::AllPairsPaths paths(g);
    Rng rng(seed * 13);
    const auto members = pick_members(rng, g.num_nodes(), 14);
    DcdmTree t(g, paths, 0, DcdmConfig{kLoosest});
    for (graph::NodeId m : members) t.join(m);
    dcdm_total += t.tree_cost();
    spt_total += graph::shortest_path_tree(g, 0, members).tree_cost(g);
    kmb_total += graph::kmb_steiner(g, paths, 0, members).tree_cost(g);
  }
  EXPECT_LT(dcdm_total, spt_total);
  EXPECT_GT(dcdm_total, kmb_total * 0.8);
}

TEST(DcdmVsBaselines, LooserSlackNeverCostsMore) {
  // Averaged over seeds, relaxing the constraint can only reduce tree cost.
  double tight_total = 0.0, loose_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto topo = test::random_topology(seed, 40);
    const graph::Graph& g = topo.graph;
    const graph::AllPairsPaths paths(g);
    Rng rng(seed * 17);
    const auto members = pick_members(rng, g.num_nodes(), 12);
    DcdmTree tight(g, paths, 0, DcdmConfig{1.0});
    DcdmTree loose(g, paths, 0, DcdmConfig{kLoosest});
    for (graph::NodeId m : members) {
      tight.join(m);
      loose.join(m);
    }
    tight_total += tight.tree_cost();
    loose_total += loose.tree_cost();
  }
  EXPECT_LE(loose_total, tight_total + 1e-9);
}

}  // namespace
}  // namespace scmp::core
