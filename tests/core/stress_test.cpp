// Large-scale soak tests: bigger domains, more members, more churn than the
// paper's configurations, asserting the global invariants (installed state
// consistency and exactly-once delivery) still hold.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/experiment.hpp"
#include "core/scmp.hpp"
#include "helpers.hpp"

namespace scmp::core {
namespace {

constexpr proto::GroupId kGroup = 1;

TEST(Stress, Scmp200NodesWithChurn) {
  const auto topo = test::random_topology(2024, 200, 0.25, 0.15);
  const graph::Graph& g = topo.graph;
  sim::EventQueue queue;
  sim::Network net(g, queue);
  igmp::IgmpDomain igmp(queue, g.num_nodes());
  Scmp::Config cfg;
  cfg.mrouter = 0;
  Scmp scmp(net, igmp, cfg);

  std::map<std::uint64_t, std::multiset<graph::NodeId>> delivered;
  net.set_delivery_callback(
      [&](const sim::Packet& pkt, graph::NodeId member, sim::SimTime) {
        delivered[pkt.uid].insert(member);
      });

  Rng rng(77);
  std::set<graph::NodeId> joined;
  for (int step = 0; step < 300; ++step) {
    const auto v =
        static_cast<graph::NodeId>(rng.uniform_int(1, g.num_nodes() - 1));
    if (joined.contains(v)) {
      scmp.host_leave(v, kGroup);
      joined.erase(v);
    } else {
      scmp.host_join(v, kGroup);
      joined.insert(v);
    }
    if (step % 25 == 24) {
      // Batched (concurrent) operations can race each other's install
      // packets; the soft-state refresh re-converges the installed state.
      queue.run_all();
      scmp.refresh_group(kGroup);
      queue.run_all();
      ASSERT_TRUE(scmp.network_state_consistent(kGroup)) << "step " << step;
    }
  }
  queue.run_all();
  scmp.refresh_group(kGroup);
  queue.run_all();
  ASSERT_TRUE(scmp.network_state_consistent(kGroup));

  delivered.clear();
  scmp.send_data(0, kGroup);
  queue.run_all();
  ASSERT_EQ(delivered.size(), 1u);
  const std::multiset<graph::NodeId> want(joined.begin(), joined.end());
  EXPECT_EQ(delivered.begin()->second, want);
}

TEST(Stress, AllProtocolsOn100NodesLargeGroup) {
  const auto topo = test::random_topology(3033, 100, 0.25, 0.2);
  const graph::Graph& g = topo.graph;
  ScenarioConfig cfg;
  cfg.mrouter = 0;
  cfg.data_interval = 0.0;
  Rng rng(90);
  for (int v : rng.sample_without_replacement(g.num_nodes() - 1, 60))
    cfg.members.push_back(v + 1);
  std::multiset<graph::NodeId> want(cfg.members.begin(), cfg.members.end());

  for (const auto kind :
       {ProtocolKind::kScmp, ProtocolKind::kDvmrp, ProtocolKind::kMospf,
        ProtocolKind::kCbt, ProtocolKind::kPimSm}) {
    ScenarioHarness h(kind, g, cfg);
    std::map<std::uint64_t, std::multiset<graph::NodeId>> delivered;
    h.network().set_delivery_callback(
        [&](const sim::Packet& pkt, graph::NodeId member, sim::SimTime) {
          delivered[pkt.uid].insert(member);
        });
    for (graph::NodeId m : cfg.members) h.protocol().host_join(m, cfg.group);
    h.queue().run_all();
    for (int round = 0; round < 2; ++round) {
      delivered.clear();
      h.protocol().send_data(cfg.members.front(), cfg.group);
      h.queue().run_all();
      ASSERT_EQ(delivered.size(), 1u) << to_string(kind);
      ASSERT_EQ(delivered.begin()->second, want)
          << to_string(kind) << " round " << round;
    }
  }
}

TEST(Stress, ManyGroupsManyMRouters) {
  const auto topo = test::random_topology(4044, 100, 0.25, 0.2);
  const graph::Graph& g = topo.graph;
  sim::EventQueue queue;
  sim::Network net(g, queue);
  igmp::IgmpDomain igmp(queue, g.num_nodes());
  Scmp::Config cfg;
  cfg.mrouters = {3, 33, 66, 99};
  Scmp scmp(net, igmp, cfg);

  Rng rng(91);
  constexpr int kGroups = 20;
  std::map<int, std::set<graph::NodeId>> members;
  for (int group = 1; group <= kGroups; ++group) {
    for (int v : rng.sample_without_replacement(g.num_nodes(), 12)) {
      members[group].insert(v);
      scmp.host_join(v, group);
    }
  }
  queue.run_all();
  std::map<std::uint64_t, std::pair<int, std::multiset<graph::NodeId>>> got;
  net.set_delivery_callback(
      [&](const sim::Packet& pkt, graph::NodeId member, sim::SimTime) {
        got[pkt.uid].first = pkt.group;
        got[pkt.uid].second.insert(member);
      });
  for (int group = 1; group <= kGroups; ++group) {
    ASSERT_TRUE(scmp.network_state_consistent(group)) << "group " << group;
    scmp.send_data(*members[group].begin(), group);
  }
  queue.run_all();
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kGroups));
  for (const auto& [uid, record] : got) {
    const std::multiset<graph::NodeId> want(members[record.first].begin(),
                                            members[record.first].end());
    EXPECT_EQ(record.second, want) << "group " << record.first;
  }
}

}  // namespace
}  // namespace scmp::core
