// Exact reproduction of the paper's Fig. 5 worked example of the DCDM
// algorithm: topology, join order g1=4, g2=3, g3=5, intermediate trees,
// graft-node choices and the loop-elimination step.
#include <gtest/gtest.h>

#include "core/dcdm.hpp"
#include "helpers.hpp"

namespace scmp::core {
namespace {

class Fig5 : public ::testing::Test {
 protected:
  Fig5() : g_(test::paper_fig5_topology()), paths_(g_), t_(g_, paths_, 0) {}

  graph::Graph g_;
  graph::AllPairsPaths paths_;
  DcdmTree t_;
};

TEST_F(Fig5, UnicastDelaysMatchPaper) {
  EXPECT_DOUBLE_EQ(t_.unicast_delay(4), 12.0);  // g1 via 0-1-4
  EXPECT_DOUBLE_EQ(t_.unicast_delay(3), 2.0);   // g2 via 0-3
  EXPECT_DOUBLE_EQ(t_.unicast_delay(5), 11.0);  // g3 via 0-2-5
}

TEST_F(Fig5, G1JoinTakesShortestDelayPath) {
  const JoinResult r = t_.join(4);
  EXPECT_TRUE(r.is_new_member);
  EXPECT_FALSE(r.already_on_tree);
  EXPECT_FALSE(r.restructured);
  EXPECT_EQ(r.graft_path, (std::vector<graph::NodeId>{0, 1, 4}));
  EXPECT_DOUBLE_EQ(t_.tree_delay(), 12.0);  // paper: 3 + 9
}

TEST_F(Fig5, G2GraftsAtNode1MinimizingCost) {
  t_.join(4);
  const JoinResult r = t_.join(3);
  // Paper: grafting at node 1 (via 1-2-3) costs +3 and keeps ml = 10 <= 12,
  // beating the direct path 0-3 which costs +6.
  EXPECT_EQ(r.graft_path, (std::vector<graph::NodeId>{1, 2, 3}));
  EXPECT_FALSE(r.restructured);
  EXPECT_DOUBLE_EQ(t_.tree().node_delay(g_, 3), 10.0);
  EXPECT_DOUBLE_EQ(t_.tree_delay(), 12.0);  // unchanged
  // Fig. 5(b): tree is 0-1-4 plus 1-2-3.
  EXPECT_EQ(t_.tree().parent(1), 0);
  EXPECT_EQ(t_.tree().parent(4), 1);
  EXPECT_EQ(t_.tree().parent(2), 1);
  EXPECT_EQ(t_.tree().parent(3), 2);
}

TEST_F(Fig5, G3JoinTriggersLoopElimination) {
  t_.join(4);
  t_.join(3);
  const JoinResult r = t_.join(5);
  // Paper: grafting at node 2 would give ml = 3+3+7 = 13 > 12, so the graft
  // node is 0 via path 0-2-5; node 2 is already on the tree, forming a loop
  // that is broken by pruning 2's old upstream branch toward node 1.
  EXPECT_EQ(r.graft_path, (std::vector<graph::NodeId>{0, 2, 5}));
  EXPECT_TRUE(r.restructured);
  EXPECT_TRUE(r.removed_nodes.empty());  // node 1 survives (leads to g1)

  // Fig. 5(d): final tree is 0-1-4, 0-2-5 and 2-3.
  EXPECT_EQ(t_.tree().parent(1), 0);
  EXPECT_EQ(t_.tree().parent(4), 1);
  EXPECT_EQ(t_.tree().parent(2), 0);
  EXPECT_EQ(t_.tree().parent(3), 2);
  EXPECT_EQ(t_.tree().parent(5), 2);
  EXPECT_DOUBLE_EQ(t_.tree().node_delay(g_, 5), 11.0);
  EXPECT_DOUBLE_EQ(t_.tree_delay(), 12.0);
  EXPECT_TRUE(t_.tree().validate(g_));
}

TEST_F(Fig5, GraftAtNode2WouldViolateBound) {
  t_.join(4);
  t_.join(3);
  // Direct edge 2-5 from on-tree node 2 would give ml(5) = 6 + 7 = 13 > 12.
  const double ml_via_2 = t_.tree().node_delay(g_, 2) + 7.0;
  EXPECT_GT(ml_via_2, t_.delay_bound_for(5));
}

TEST_F(Fig5, LeaveOfG1PrunesBranch) {
  t_.join(4);
  t_.join(3);
  t_.join(5);
  const LeaveResult r = t_.leave(4);
  EXPECT_TRUE(r.was_member);
  // Branch 1-4 dangles entirely after g1 leaves (node 1 no longer leads
  // anywhere after the Fig. 5(d) restructure).
  EXPECT_EQ(r.removed_nodes, (std::vector<graph::NodeId>{1, 4}));
  EXPECT_FALSE(t_.tree().on_tree(4));
  EXPECT_FALSE(t_.tree().on_tree(1));
  EXPECT_TRUE(t_.tree().validate(g_));
}

TEST_F(Fig5, LeaveOfRelayMemberKeepsRelay) {
  t_.join(4);
  t_.join(3);
  t_.join(5);
  // Node 2 relays to both 3 and 5; if 3 leaves, only the 2-3 edge goes.
  const LeaveResult r = t_.leave(3);
  EXPECT_EQ(r.removed_nodes, (std::vector<graph::NodeId>{3}));
  EXPECT_TRUE(t_.tree().on_tree(2));
  EXPECT_TRUE(t_.tree().on_tree(5));
}

TEST_F(Fig5, DuplicateJoinIsNoop) {
  t_.join(4);
  const JoinResult r = t_.join(4);
  EXPECT_FALSE(r.is_new_member);
  EXPECT_TRUE(r.graft_path.empty());
}

TEST_F(Fig5, LeaveOfNonMemberIsNoop) {
  const LeaveResult r = t_.leave(4);
  EXPECT_FALSE(r.was_member);
  EXPECT_TRUE(r.removed_nodes.empty());
}

TEST_F(Fig5, JoinOfOnTreeRelayOnlyFlipsMembership) {
  t_.join(4);
  t_.join(3);
  // Node 2 is now a relay (on tree, not member).
  const JoinResult r = t_.join(2);
  EXPECT_TRUE(r.is_new_member);
  EXPECT_TRUE(r.already_on_tree);
  EXPECT_TRUE(r.graft_path.empty());
  EXPECT_TRUE(t_.tree().is_member(2));
}

}  // namespace
}  // namespace scmp::core
