#include "core/placement.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"

namespace scmp::core {
namespace {

TEST(Placement, MinAverageDelayOnLine) {
  // On a 5-node line the centre node minimises average delay.
  const graph::Graph g = test::line(5);
  const graph::AllPairsPaths paths(g);
  EXPECT_EQ(place_mrouter(g, paths, PlacementRule::kMinAverageDelay), 2);
}

TEST(Placement, MaxDegreePicksHub) {
  graph::Graph g(5);
  g.add_edge(0, 2, 1, 1);
  g.add_edge(1, 2, 1, 1);
  g.add_edge(3, 2, 1, 1);
  g.add_edge(3, 4, 1, 1);
  const graph::AllPairsPaths paths(g);
  EXPECT_EQ(place_mrouter(g, paths, PlacementRule::kMaxDegree), 2);
}

TEST(Placement, DiameterMidpointOnLine) {
  const graph::Graph g = test::line(7);
  const graph::AllPairsPaths paths(g);
  EXPECT_EQ(place_mrouter(g, paths, PlacementRule::kDiameterMidpoint), 3);
}

TEST(Placement, FirstNodeBaseline) {
  const graph::Graph g = test::line(3);
  const graph::AllPairsPaths paths(g);
  EXPECT_EQ(place_mrouter(g, paths, PlacementRule::kFirstNode), 0);
}

TEST(Placement, Names) {
  EXPECT_STREQ(to_string(PlacementRule::kMinAverageDelay), "min-avg-delay");
  EXPECT_STREQ(to_string(PlacementRule::kMaxDegree), "max-degree");
  EXPECT_STREQ(to_string(PlacementRule::kDiameterMidpoint),
               "diameter-midpoint");
  EXPECT_STREQ(to_string(PlacementRule::kFirstNode), "first-node");
}

class PlacementProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PlacementProperty, AllRulesReturnValidNodes) {
  const auto topo = test::random_topology(GetParam(), 30);
  const graph::AllPairsPaths paths(topo.graph);
  for (const auto rule :
       {PlacementRule::kMinAverageDelay, PlacementRule::kMaxDegree,
        PlacementRule::kDiameterMidpoint, PlacementRule::kFirstNode}) {
    const graph::NodeId v = place_mrouter(topo.graph, paths, rule);
    EXPECT_TRUE(topo.graph.valid(v));
  }
}

TEST_P(PlacementProperty, MinAvgDelayBeatsWorstNode) {
  const auto topo = test::random_topology(GetParam(), 30);
  const graph::Graph& g = topo.graph;
  const graph::AllPairsPaths paths(g);
  const graph::NodeId best =
      place_mrouter(g, paths, PlacementRule::kMinAverageDelay);
  auto avg_delay = [&](graph::NodeId u) {
    double sum = 0.0;
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v)
      if (v != u) sum += paths.sl_delay(u, v);
    return sum;
  };
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v)
    EXPECT_LE(avg_delay(best), avg_delay(v) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlacementProperty,
                         ::testing::Values(10, 20, 30));

}  // namespace
}  // namespace scmp::core
