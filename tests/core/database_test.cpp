#include "core/database.hpp"

#include <gtest/gtest.h>

namespace scmp::core {
namespace {

TEST(Database, SessionLifecycle) {
  MRouterDatabase db;
  EXPECT_FALSE(db.session_active(1));
  const McastAddress addr = db.start_session(1, 10.0);
  EXPECT_TRUE(db.session_active(1));
  EXPECT_EQ(db.address_of(1), addr);
  db.end_session(1, 20.0);
  EXPECT_FALSE(db.session_active(1));
  EXPECT_EQ(db.address_of(1), std::nullopt);
  const auto rec = db.session(1);
  ASSERT_TRUE(rec.has_value());
  EXPECT_DOUBLE_EQ(rec->started_at, 10.0);
  ASSERT_TRUE(rec->ended_at.has_value());
  EXPECT_DOUBLE_EQ(*rec->ended_at, 20.0);
}

TEST(Database, StartIsIdempotent) {
  MRouterDatabase db;
  const McastAddress a = db.start_session(1, 0.0);
  const McastAddress b = db.start_session(1, 5.0);
  EXPECT_EQ(a, b);
}

TEST(Database, AddressesAreUniqueAndClassD) {
  MRouterDatabase db;
  const McastAddress a = db.start_session(1, 0.0);
  const McastAddress b = db.start_session(2, 0.0);
  EXPECT_NE(a, b);
  EXPECT_EQ(a >> 28, 0xEu);  // 224.0.0.0/4
  EXPECT_EQ(b >> 28, 0xEu);
}

TEST(Database, PublishedAddresses) {
  MRouterDatabase db;
  db.start_session(3, 0.0);
  db.start_session(7, 0.0);
  const auto published = db.published_addresses();
  ASSERT_EQ(published.size(), 2u);
  EXPECT_EQ(published[0].first, 3);
  EXPECT_EQ(published[1].first, 7);
  db.end_session(3, 1.0);
  EXPECT_EQ(db.published_addresses().size(), 1u);
}

TEST(Database, MembershipTracking) {
  MRouterDatabase db;
  db.start_session(1, 0.0);
  db.record_join(1, 5, 1.0);
  db.record_join(1, 9, 2.0);
  EXPECT_EQ(db.members_of(1).size(), 2u);
  EXPECT_TRUE(db.members_of(1).contains(5));
  db.record_leave(1, 5, 3.0);
  EXPECT_EQ(db.members_of(1).size(), 1u);
  EXPECT_FALSE(db.members_of(1).contains(5));
}

TEST(Database, MembershipLogForBilling) {
  MRouterDatabase db;
  db.record_join(1, 5, 1.0);
  db.record_leave(1, 5, 2.0);
  db.record_join(2, 5, 3.0);
  db.record_join(1, 6, 4.0);
  EXPECT_EQ(db.membership_log().size(), 4u);
  EXPECT_EQ(db.billing_events(5), 3);
  EXPECT_EQ(db.billing_events(6), 1);
  EXPECT_EQ(db.billing_events(7), 0);
}

TEST(Database, RetransmittedJoinIsDedupedByRequestUid) {
  // A reliably-delivered JOIN whose ACK was lost arrives twice with the same
  // request uid; only the first may create a membership/billing record.
  MRouterDatabase db;
  EXPECT_TRUE(db.record_join(1, 5, 1.0, 42));
  EXPECT_FALSE(db.record_join(1, 5, 1.5, 42));  // retransmission
  EXPECT_EQ(db.members_of(1).size(), 1u);
  EXPECT_EQ(db.membership_log().size(), 1u);
  EXPECT_EQ(db.billing_events(5), 1);
  // A fresh request uid (e.g. a reconciliation re-JOIN) records normally.
  EXPECT_TRUE(db.record_join(1, 5, 2.0, 43));
  EXPECT_EQ(db.billing_events(5), 2);
}

TEST(Database, FireAndForgetJoinsAreNeverDeduped) {
  MRouterDatabase db;
  EXPECT_TRUE(db.record_join(1, 5, 1.0));  // req = 0: no reliability layer
  EXPECT_TRUE(db.record_join(1, 5, 2.0));
  EXPECT_EQ(db.membership_log().size(), 2u);
}

TEST(Database, TrafficAccounting) {
  MRouterDatabase db;
  db.start_session(1, 0.0);
  db.record_data_forwarded(1, 1000);
  db.record_data_forwarded(1, 500);
  const auto rec = db.session(1);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->data_packets_forwarded, 2u);
  EXPECT_EQ(rec->data_bytes_forwarded, 1500u);
}

TEST(Database, TrafficForUnknownSessionIgnored) {
  MRouterDatabase db;
  db.record_data_forwarded(42, 1000);  // must not crash
  EXPECT_FALSE(db.session(42).has_value());
}

TEST(Database, EndSessionClearsMembers) {
  MRouterDatabase db;
  db.start_session(1, 0.0);
  db.record_join(1, 5, 1.0);
  db.end_session(1, 2.0);
  EXPECT_TRUE(db.members_of(1).empty());
}

TEST(Database, AllSessionsIncludesEnded) {
  MRouterDatabase db;
  db.start_session(1, 0.0);
  db.start_session(2, 0.0);
  db.end_session(1, 1.0);
  EXPECT_EQ(db.all_sessions().size(), 2u);
}

TEST(DatabaseDeath, EndingUnknownSessionAborts) {
  MRouterDatabase db;
  EXPECT_DEATH(db.end_session(9, 0.0), "Precondition");
}

// ---- sharded layout --------------------------------------------------------

TEST(DatabaseSharded, ShardOfIsStableAndInRange) {
  MRouterDatabase db(8);
  EXPECT_EQ(db.num_shards(), 8);
  for (GroupId g = 0; g < 100; ++g) {
    const std::size_t s = db.shard_of(g);
    EXPECT_LT(s, 8u);
    EXPECT_EQ(s, db.shard_of(g));  // deterministic
  }
}

TEST(DatabaseSharded, ShardCountIsPureLayout) {
  // The same operation sequence must produce identical query results for
  // any shard count — sharding is an internal storage layout, nothing more.
  auto drive = [](MRouterDatabase& db) {
    for (GroupId g : {7, 3, 12, 5, 9}) db.start_session(g, 0.1 * g);
    db.record_join(7, 4, 1.0);
    db.record_join(3, 4, 1.5);
    db.record_join(7, 11, 2.0);
    db.record_join(12, 2, 2.5);
    db.record_leave(7, 4, 3.0);
    db.record_data_forwarded(3, 800);
    db.end_session(5, 4.0);
  };
  MRouterDatabase reference(1);
  drive(reference);
  for (int shards : {2, 8, 31}) {
    MRouterDatabase db(shards);
    drive(db);
    EXPECT_EQ(db.published_addresses(), reference.published_addresses())
        << shards << " shards";
    for (GroupId g : {7, 3, 12, 5, 9}) {
      EXPECT_EQ(db.members_of(g), reference.members_of(g)) << "group " << g;
      EXPECT_EQ(db.session_active(g), reference.session_active(g));
      EXPECT_EQ(db.address_of(g), reference.address_of(g));
    }
    const auto all = db.all_sessions();
    const auto ref_all = reference.all_sessions();
    ASSERT_EQ(all.size(), ref_all.size());
    for (std::size_t i = 0; i < all.size(); ++i) {
      EXPECT_EQ(all[i].group, ref_all[i].group);
      EXPECT_EQ(all[i].address, ref_all[i].address);
    }
    EXPECT_EQ(db.billing_events(4), reference.billing_events(4));
    EXPECT_EQ(db.membership_log().size(), reference.membership_log().size());
  }
}

TEST(DatabaseShardedDeath, ZeroShardsAborts) {
  EXPECT_DEATH(MRouterDatabase db(0), "Precondition");
}

}  // namespace
}  // namespace scmp::core
