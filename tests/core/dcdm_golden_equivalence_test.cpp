// Golden equivalence: DcdmTree's table-lookup candidate scan against the
// pre-optimization reference scan that materialized all 2m candidate paths
// and re-walked them with path_weight(). The two must agree bit-for-bit —
// same trees, same graft paths, same loop-elimination prunes (and therefore
// the same BRANCH/PRUNE/CLEAR install traffic), same admitted bounds — over
// membership churn on the paper topologies and seeded random graphs.
#include "core/dcdm.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "helpers.hpp"
#include "topo/arpanet.hpp"
#include "util/rng.hpp"

namespace scmp::core {
namespace {

/// Test-only reference implementation of DCDM: the original join/leave scan,
/// kept verbatim as the oracle the optimized DcdmTree is held to.
class ReferenceDcdm {
 public:
  ReferenceDcdm(const graph::Graph& g, const graph::AllPairsPaths& paths,
                graph::NodeId root, DcdmConfig cfg = {})
      : g_(&g),
        paths_(&paths),
        cfg_(cfg),
        tree_(root, g.num_nodes()),
        admitted_bound_(static_cast<std::size_t>(g.num_nodes()),
                        std::numeric_limits<double>::quiet_NaN()) {}

  double unicast_delay(graph::NodeId v) const {
    return paths_->sl_delay(tree_.root(), v);
  }

  double delay_bound_for(graph::NodeId joining) const {
    if (cfg_.delay_slack == kLoosest) return kLoosest;
    double max_ul = unicast_delay(joining);
    for (graph::NodeId m : tree_.members())
      max_ul = std::max(max_ul, unicast_delay(m));
    return std::max(cfg_.delay_slack * max_ul, tree_.tree_delay(*g_));
  }

  JoinResult join(graph::NodeId s) {
    JoinResult result;
    if (tree_.is_member(s)) return result;
    result.is_new_member = true;
    if (tree_.on_tree(s)) {
      result.already_on_tree = true;
      tree_.set_member(s, true);
      admitted_bound_[static_cast<std::size_t>(s)] = delay_bound_for(s);
      return result;
    }

    const double bound = delay_bound_for(s);

    struct Candidate {
      double cost = 0.0;
      double ml = 0.0;
      graph::NodeId graft = graph::kInvalidNode;
      std::vector<graph::NodeId> path;
    };
    Candidate best;
    bool have_best = false;
    auto consider = [&](graph::NodeId t, std::vector<graph::NodeId> path) {
      if (path.empty()) return;
      const double pd = graph::path_weight(*g_, path, graph::Metric::kDelay);
      const double ml = tree_.node_delay(*g_, t) + pd;
      if (ml > bound) return;
      const double pc = graph::path_weight(*g_, path, graph::Metric::kCost);
      const bool better =
          !have_best || pc < best.cost ||
          (pc == best.cost &&
           (ml < best.ml || (ml == best.ml && t < best.graft)));
      if (better) {
        best = Candidate{pc, ml, t, std::move(path)};
        have_best = true;
      }
    };
    for (graph::NodeId t : tree_.on_tree_nodes()) {
      consider(t, paths_->sl_path(t, s));
      consider(t, paths_->lc_path(t, s));
    }
    EXPECT_TRUE(have_best);
    if (!have_best) return result;

    std::vector<graph::NodeId> old_parent(
        static_cast<std::size_t>(g_->num_nodes()), graph::kInvalidNode);
    std::vector<char> was_on_tree(static_cast<std::size_t>(g_->num_nodes()),
                                  0);
    for (graph::NodeId v : tree_.on_tree_nodes()) {
      was_on_tree[static_cast<std::size_t>(v)] = 1;
      old_parent[static_cast<std::size_t>(v)] = tree_.parent(v);
    }
    std::vector<std::pair<graph::NodeId, double>> old_member_delay;
    for (graph::NodeId m : tree_.members())
      old_member_delay.emplace_back(m, tree_.node_delay(*g_, m));

    tree_.graft_path(best.path);
    tree_.set_member(s, true);
    admitted_bound_[static_cast<std::size_t>(s)] = bound;
    for (const auto& [m, before] : old_member_delay) {
      const double after = tree_.node_delay(*g_, m);
      if (after != before) {
        admitted_bound_[static_cast<std::size_t>(m)] =
            std::max(admitted_bound_[static_cast<std::size_t>(m)], after);
      }
    }
    result.graft_path = std::move(best.path);

    for (graph::NodeId v = 0; v < g_->num_nodes(); ++v) {
      if (!was_on_tree[static_cast<std::size_t>(v)]) continue;
      if (!tree_.on_tree(v)) {
        result.removed_nodes.push_back(v);
        result.restructured = true;
      } else if (tree_.parent(v) !=
                 old_parent[static_cast<std::size_t>(v)]) {
        result.restructured = true;
      }
    }
    return result;
  }

  LeaveResult leave(graph::NodeId s) {
    LeaveResult result;
    if (!tree_.is_member(s)) return result;
    result.was_member = true;
    tree_.set_member(s, false);
    admitted_bound_[static_cast<std::size_t>(s)] =
        std::numeric_limits<double>::quiet_NaN();
    std::vector<char> was_on_tree(static_cast<std::size_t>(g_->num_nodes()),
                                  0);
    for (graph::NodeId v : tree_.on_tree_nodes())
      was_on_tree[static_cast<std::size_t>(v)] = 1;
    tree_.prune_upward_from(s);
    for (graph::NodeId v = 0; v < g_->num_nodes(); ++v) {
      if (was_on_tree[static_cast<std::size_t>(v)] && !tree_.on_tree(v))
        result.removed_nodes.push_back(v);
    }
    return result;
  }

  const graph::MulticastTree& tree() const { return tree_; }
  double admitted_bound(graph::NodeId m) const {
    return admitted_bound_[static_cast<std::size_t>(m)];
  }

 private:
  const graph::Graph* g_;
  const graph::AllPairsPaths* paths_;
  DcdmConfig cfg_;
  graph::MulticastTree tree_;
  std::vector<double> admitted_bound_;
};

void expect_join_results_equal(const JoinResult& got, const JoinResult& want) {
  EXPECT_EQ(got.is_new_member, want.is_new_member);
  EXPECT_EQ(got.already_on_tree, want.already_on_tree);
  EXPECT_EQ(got.graft_path, want.graft_path);
  EXPECT_EQ(got.restructured, want.restructured);
  EXPECT_EQ(got.removed_nodes, want.removed_nodes);
}

void expect_trees_equal(const graph::Graph& g, const DcdmTree& got,
                        const ReferenceDcdm& want) {
  // edges() pairs every on-tree node with its parent, so this covers
  // topology, membership and parents in one shot; bounds and aggregate
  // weights compare with exact == (bit-identity, not closeness).
  EXPECT_EQ(got.tree().edges(), want.tree().edges());
  EXPECT_EQ(got.tree().members(), want.tree().members());
  EXPECT_EQ(got.tree_cost(), want.tree().tree_cost(g));
  EXPECT_EQ(got.tree_delay(), want.tree().tree_delay(g));
  for (graph::NodeId m : got.tree().members())
    EXPECT_EQ(got.admitted_bound(m), want.admitted_bound(m)) << "member " << m;
}

void run_churn(const graph::Graph& g, double slack, std::uint64_t seed,
               int events) {
  const graph::AllPairsPaths paths(g);
  DcdmTree opt(g, paths, 0, DcdmConfig{slack});
  ReferenceDcdm ref(g, paths, 0, DcdmConfig{slack});
  Rng rng(seed);
  for (int i = 0; i < events; ++i) {
    const auto v =
        static_cast<graph::NodeId>(rng.uniform_int(1, g.num_nodes() - 1));
    if (rng.uniform01() < 0.65) {
      expect_join_results_equal(opt.join(v), ref.join(v));
    } else {
      const LeaveResult a = opt.leave(v);
      const LeaveResult b = ref.leave(v);
      EXPECT_EQ(a.was_member, b.was_member);
      EXPECT_EQ(a.removed_nodes, b.removed_nodes);
    }
    expect_trees_equal(g, opt, ref);
    if (::testing::Test::HasFailure()) return;  // first divergence is enough
  }
}

TEST(DcdmGoldenEquivalence, PaperFig5AllSlacks) {
  for (double slack : {1.0, 1.5, kLoosest})
    run_churn(test::paper_fig5_topology(), slack, 42, 60);
}

TEST(DcdmGoldenEquivalence, ArpanetTightest) {
  Rng rng(3);
  run_churn(topo::arpanet(rng).graph, 1.0, 7, 120);
}

TEST(DcdmGoldenEquivalence, ArpanetLoosest) {
  Rng rng(3);
  run_churn(topo::arpanet(rng).graph, kLoosest, 8, 120);
}

class GoldenProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GoldenProperty, SeededWaxmanChurn) {
  const auto topo = test::random_topology(GetParam(), 35);
  run_churn(topo.graph, 1.0, GetParam() * 31 + 1, 100);
  run_churn(topo.graph, 2.0, GetParam() * 31 + 2, 100);
  run_churn(topo.graph, kLoosest, GetParam() * 31 + 3, 100);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GoldenProperty,
                         ::testing::Values(1u, 5u, 11u, 23u));

}  // namespace
}  // namespace scmp::core
