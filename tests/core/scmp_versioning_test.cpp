// Install-version gates at i-routers: stale (overtaken) TREE/BRANCH/CLEAR
// packets must neither overwrite newer state nor resurrect cleared entries,
// and refresh_group() must re-converge a diverged network. The tests inject
// raw control packets to simulate the message races concurrent membership
// operations can produce.
#include <gtest/gtest.h>

#include "core/scmp.hpp"
#include "core/tree_packet.hpp"
#include "helpers.hpp"

namespace scmp::core {
namespace {

constexpr proto::GroupId kGroup = 1;

class VersioningFixture {
 public:
  VersioningFixture()
      : g_(test::line(5)), net_(g_, queue_), igmp_(queue_, g_.num_nodes()) {
    Scmp::Config cfg;
    cfg.mrouter = 0;
    scmp_ = std::make_unique<Scmp>(net_, igmp_, cfg);
    // Baseline tree 0-1-2-3-4 with member 4, installed at some version v>=1.
    scmp_->host_join(4, kGroup);
    queue_.run_all();
  }

  std::uint64_t entry_version(graph::NodeId v) const {
    const Scmp::Entry* e = scmp_->entry_at(v, kGroup);
    return e == nullptr ? 0 : e->version;
  }

  void inject_clear(graph::NodeId target, std::uint64_t version,
                    std::vector<graph::NodeId> detach = {}) {
    sim::Packet clear;
    clear.type = sim::PacketType::kClear;
    clear.group = kGroup;
    clear.src = 0;
    clear.dst = target;
    clear.uid = version;
    clear.path = std::move(detach);
    net_.send_unicast(0, std::move(clear));
    queue_.run_all();
  }

  void inject_branch(const std::vector<graph::NodeId>& path,
                     std::uint64_t version) {
    sim::Packet branch;
    branch.type = sim::PacketType::kBranch;
    branch.group = kGroup;
    branch.src = path.front();
    branch.uid = version;
    branch.path = path;
    net_.send_link(path[0], path[1], std::move(branch));
    queue_.run_all();
  }

  graph::Graph g_;
  sim::EventQueue queue_;
  sim::Network net_;
  igmp::IgmpDomain igmp_;
  std::unique_ptr<Scmp> scmp_;
};

TEST(ScmpVersioning, BaselineInstallCarriesVersion) {
  VersioningFixture f;
  EXPECT_GE(f.entry_version(4), 1u);
  EXPECT_EQ(f.entry_version(2), f.entry_version(4));  // same install op
}

TEST(ScmpVersioning, StaleClearIsIgnored) {
  VersioningFixture f;
  const auto v = f.entry_version(2);
  ASSERT_GE(v, 1u);
  f.inject_clear(2, /*version=*/0);
  EXPECT_NE(f.scmp_->entry_at(2, kGroup), nullptr);  // survived
  EXPECT_TRUE(f.scmp_->network_state_consistent(kGroup));
}

TEST(ScmpVersioning, StaleDetachIsIgnored) {
  VersioningFixture f;
  f.inject_clear(2, /*version=*/0, /*detach=*/{3});
  const Scmp::Entry* e = f.scmp_->entry_at(2, kGroup);
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->downstream_routers.contains(3));
}

TEST(ScmpVersioning, NewerClearAppliesAndTombstones) {
  VersioningFixture f;
  const auto v = f.entry_version(2);
  f.inject_clear(2, v + 10);
  EXPECT_EQ(f.scmp_->entry_at(2, kGroup), nullptr);

  // A stale BRANCH (older than the tombstone) must not resurrect the entry.
  f.inject_branch({0, 1, 2, 3, 4}, v);
  EXPECT_EQ(f.scmp_->entry_at(2, kGroup), nullptr);

  // A newer BRANCH may.
  f.inject_branch({0, 1, 2, 3, 4}, v + 11);
  EXPECT_NE(f.scmp_->entry_at(2, kGroup), nullptr);
}

TEST(ScmpVersioning, StaleBranchCannotOverwriteNewerEntry) {
  VersioningFixture f;
  const auto v = f.entry_version(2);
  // A newer detach removed child 3 from node 2.
  f.inject_clear(2, v + 1, /*detach=*/{3});
  // The overtaken BRANCH that would re-add it arrives late: dropped.
  f.inject_branch({0, 1, 2, 3, 4}, v);
  const Scmp::Entry* e = f.scmp_->entry_at(2, kGroup);
  ASSERT_NE(e, nullptr);
  EXPECT_FALSE(e->downstream_routers.contains(3));
}

TEST(ScmpVersioning, MalformedTreePacketIsDropped) {
  VersioningFixture f;
  const auto before = f.entry_version(1);
  sim::Packet tp;
  tp.type = sim::PacketType::kTree;
  tp.group = kGroup;
  tp.src = 0;
  tp.uid = before + 50;
  tp.payload = to_bytes(TreeWords{3, 1, 99, 0});  // length field overruns
  f.net_.send_link(0, 1, std::move(tp));
  f.queue_.run_all();
  // The corrupted install neither crashed the router nor disturbed state.
  EXPECT_EQ(f.entry_version(1), before);
  EXPECT_TRUE(f.scmp_->network_state_consistent(kGroup));
}

TEST(ScmpVersioning, RefreshReconvergesDivergedState) {
  VersioningFixture f;
  // Simulate a lost install: node 2's entry vanishes (a CLEAR one version
  // ahead models the race), so the network no longer matches the m-router.
  f.inject_clear(2, f.entry_version(2) + 1);
  EXPECT_FALSE(f.scmp_->network_state_consistent(kGroup));

  f.scmp_->refresh_group(kGroup);
  f.queue_.run_all();
  EXPECT_TRUE(f.scmp_->network_state_consistent(kGroup));
}

TEST(ScmpVersioning, RefreshClearsStaleOffTreeState) {
  VersioningFixture f;
  // Member 4 leaves: tree shrinks to just the root; then we forge stale
  // entries at nodes 1 and 2 (installs the prune "missed") via a TREE
  // packet with a far-ahead version.
  f.scmp_->host_leave(4, kGroup);
  f.queue_.run_all();
  EXPECT_TRUE(f.scmp_->network_state_consistent(kGroup));
  {
    sim::Packet tp;
    tp.type = sim::PacketType::kTree;
    tp.group = kGroup;
    tp.src = 0;
    tp.uid = 100;
    tp.payload = to_bytes(TreeWords{1, 2, 1, 0});  // subtree 1 -> 2
    f.net_.send_link(0, 1, std::move(tp));
    f.queue_.run_all();
  }
  ASSERT_NE(f.scmp_->entry_at(1, kGroup), nullptr);
  ASSERT_NE(f.scmp_->entry_at(2, kGroup), nullptr);
  EXPECT_FALSE(f.scmp_->network_state_consistent(kGroup));

  // The forged install used a version far ahead of the m-router's counter,
  // so several refreshes may be needed before its announcements win — the
  // counter advances by one per refresh. Anti-entropy still converges.
  for (int i = 0; i < 101 && !f.scmp_->network_state_consistent(kGroup);
       ++i) {
    f.scmp_->refresh_group(kGroup);
    f.queue_.run_all();
  }
  EXPECT_TRUE(f.scmp_->network_state_consistent(kGroup));
}

}  // namespace
}  // namespace scmp::core
