// Death tests pinning down the contract layer: invalid inputs to public API
// entry points must abort through SCMP_EXPECTS/SCMP_ASSERT with a diagnostic
// that names the violated condition, not crash later or silently misbehave.
#include <gtest/gtest.h>

#include "core/compute_pool.hpp"
#include "core/dcdm.hpp"
#include "sim/event_queue.hpp"
#include "util/contracts.hpp"
#include "util/log.hpp"

#include "helpers.hpp"

namespace scmp::core {
namespace {

class ContractsDeathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Fork-based death tests must not interact with running threads.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
};

TEST_F(ContractsDeathTest, DcdmConfigSlackBelowOneAborts) {
  const auto g = test::diamond();
  const graph::AllPairsPaths paths(g);
  EXPECT_DEATH(DcdmTree(g, paths, 0, DcdmConfig{0.5}),
               "Precondition violation.*delay_slack");
}

TEST_F(ContractsDeathTest, DcdmJoinInvalidNodeAborts) {
  const auto g = test::diamond();
  const graph::AllPairsPaths paths(g);
  DcdmTree tree(g, paths, 0);
  EXPECT_DEATH(tree.join(99), "Precondition violation");
}

TEST_F(ContractsDeathTest, BuildTreesEmptyJoinOrderAborts) {
  const auto g = test::diamond();
  const graph::AllPairsPaths paths(g);
  const TreeComputePool pool(g, paths, 2);
  GroupMembership empty_group;
  empty_group.group = 1;  // valid id, but no members
  EXPECT_DEATH(pool.build_trees(0, {empty_group}, DcdmConfig{}),
               "Precondition violation.*join_order");
}

TEST_F(ContractsDeathTest, BuildTreesNegativeGroupIdAborts) {
  const auto g = test::diamond();
  const graph::AllPairsPaths paths(g);
  const TreeComputePool pool(g, paths, 2);
  GroupMembership bad;
  bad.group = -7;
  bad.join_order = {1};
  EXPECT_DEATH(pool.build_trees(0, {bad}, DcdmConfig{}),
               "Precondition violation.*group");
}

TEST_F(ContractsDeathTest, BuildTreesInvalidRootAborts) {
  const auto g = test::diamond();
  const graph::AllPairsPaths paths(g);
  const TreeComputePool pool(g, paths, 2);
  GroupMembership gm;
  gm.group = 1;
  gm.join_order = {1};
  EXPECT_DEATH(pool.build_trees(-1, {gm}, DcdmConfig{}),
               "Precondition violation.*root");
}

TEST_F(ContractsDeathTest, EventQueueSchedulingInThePastAborts) {
  sim::EventQueue q;
  q.schedule_at(10.0, [] {});
  q.run_until(10.0);
  EXPECT_DEATH(q.schedule_at(5.0, [] {}), "Precondition violation.*now_");
}

TEST_F(ContractsDeathTest, EventQueueNullHandlerAborts) {
  sim::EventQueue q;
  EXPECT_DEATH(q.schedule_at(1.0, nullptr), "Precondition violation.*fn");
}

TEST_F(ContractsDeathTest, LogLevelOutOfRangeAborts) {
  EXPECT_DEATH(set_log_level(static_cast<LogLevel>(42)),
               "Precondition violation.*level");
}

}  // namespace
}  // namespace scmp::core
