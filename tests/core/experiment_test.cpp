#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "topo/arpanet.hpp"

namespace scmp::core {
namespace {

ScenarioConfig base_config(const graph::Graph& g, std::uint64_t seed,
                           int group_size) {
  ScenarioConfig cfg;
  cfg.mrouter = 0;
  Rng rng(seed);
  for (int v : rng.sample_without_replacement(g.num_nodes() - 1, group_size))
    cfg.members.push_back(v + 1);
  // Deterministic non-member source.
  for (graph::NodeId v = 1; v < g.num_nodes(); ++v) {
    if (std::find(cfg.members.begin(), cfg.members.end(), v) ==
        cfg.members.end()) {
      cfg.source = v;
      break;
    }
  }
  return cfg;
}

TEST(Experiment, ProtocolNames) {
  EXPECT_STREQ(to_string(ProtocolKind::kScmp), "SCMP");
  EXPECT_STREQ(to_string(ProtocolKind::kDvmrp), "DVMRP");
  EXPECT_STREQ(to_string(ProtocolKind::kMospf), "MOSPF");
  EXPECT_STREQ(to_string(ProtocolKind::kCbt), "CBT");
}

TEST(Experiment, AllProtocolsRunTheFullScenario) {
  Rng trng(1);
  const auto topo = topo::arpanet(trng);
  const ScenarioConfig cfg = base_config(topo.graph, 2, 6);
  for (const auto kind : {ProtocolKind::kScmp, ProtocolKind::kDvmrp,
                          ProtocolKind::kMospf, ProtocolKind::kCbt}) {
    const ScenarioResult r = run_scenario(kind, topo.graph, cfg);
    EXPECT_EQ(r.protocol, to_string(kind));
    // 29 packets (t = 2..30) each reaching 6 members.
    EXPECT_EQ(r.data_packets_sent, 29u);
    EXPECT_EQ(r.stats.deliveries, 29u * 6u) << to_string(kind);
    EXPECT_GT(r.stats.data_overhead, 0.0);
    EXPECT_GT(r.stats.protocol_overhead, 0.0);
    EXPECT_GT(r.stats.max_end_to_end_delay, 0.0);
    EXPECT_GT(r.igmp_messages, 0u);
  }
}

TEST(Experiment, LeavesReduceDeliveries) {
  Rng trng(1);
  const auto topo = topo::arpanet(trng);
  ScenarioConfig cfg = base_config(topo.graph, 2, 6);
  cfg.leaves.push_back({15.0, cfg.members[0]});
  const ScenarioResult r = run_scenario(ProtocolKind::kScmp, topo.graph, cfg);
  // Fewer deliveries than the no-leave run, but still every packet to the
  // remaining five members after t = 15.
  EXPECT_LT(r.stats.deliveries, 29u * 6u);
  EXPECT_GE(r.stats.deliveries, 29u * 5u);
}

TEST(Experiment, ScmpBeatsDvmrpOnDataOverhead) {
  // The paper's headline Fig. 8 ordering, aggregated over seeds.
  double scmp_total = 0.0, dvmrp_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    Rng trng(seed);
    const auto topo = topo::arpanet(trng);
    const ScenarioConfig cfg = base_config(topo.graph, seed * 7, 8);
    scmp_total +=
        run_scenario(ProtocolKind::kScmp, topo.graph, cfg).stats.data_overhead;
    dvmrp_total += run_scenario(ProtocolKind::kDvmrp, topo.graph, cfg)
                       .stats.data_overhead;
  }
  EXPECT_LT(scmp_total, dvmrp_total);
}

TEST(Experiment, MospfProtocolOverheadExceedsScmpAndCbt) {
  Rng trng(2);
  const auto topo = topo::arpanet(trng);
  const ScenarioConfig cfg = base_config(topo.graph, 11, 10);
  const double mospf = run_scenario(ProtocolKind::kMospf, topo.graph, cfg)
                           .stats.protocol_overhead;
  const double scmp = run_scenario(ProtocolKind::kScmp, topo.graph, cfg)
                          .stats.protocol_overhead;
  const double cbt =
      run_scenario(ProtocolKind::kCbt, topo.graph, cfg).stats.protocol_overhead;
  EXPECT_GT(mospf, scmp);
  EXPECT_GT(mospf, cbt);
}

TEST(Experiment, SptDelayAtMostSharedTreeDelay) {
  // Fig. 9: SPT-based protocols deliver with at most the shared-tree delay,
  // aggregated over seeds.
  double spt_total = 0.0, shared_total = 0.0;
  for (std::uint64_t seed = 4; seed <= 6; ++seed) {
    Rng trng(seed);
    const auto topo = topo::arpanet(trng);
    const ScenarioConfig cfg = base_config(topo.graph, seed, 8);
    spt_total += run_scenario(ProtocolKind::kMospf, topo.graph, cfg)
                     .stats.max_end_to_end_delay;
    shared_total += run_scenario(ProtocolKind::kScmp, topo.graph, cfg)
                        .stats.max_end_to_end_delay;
  }
  EXPECT_LE(spt_total, shared_total * 1.05);
}

TEST(Experiment, DeterministicAcrossRuns) {
  Rng trng(3);
  const auto topo = topo::arpanet(trng);
  const ScenarioConfig cfg = base_config(topo.graph, 5, 6);
  const ScenarioResult a = run_scenario(ProtocolKind::kScmp, topo.graph, cfg);
  const ScenarioResult b = run_scenario(ProtocolKind::kScmp, topo.graph, cfg);
  EXPECT_DOUBLE_EQ(a.stats.data_overhead, b.stats.data_overhead);
  EXPECT_DOUBLE_EQ(a.stats.protocol_overhead, b.stats.protocol_overhead);
  EXPECT_DOUBLE_EQ(a.stats.max_end_to_end_delay, b.stats.max_end_to_end_delay);
  EXPECT_EQ(a.stats.deliveries, b.stats.deliveries);
}

}  // namespace
}  // namespace scmp::core
