#include "topo/waxman.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace scmp::topo {
namespace {

TEST(Waxman, ProducesRequestedNodeCount) {
  Rng rng(1);
  WaxmanConfig cfg;
  cfg.num_nodes = 40;
  const Topology t = waxman(cfg, rng);
  EXPECT_EQ(t.graph.num_nodes(), 40);
  EXPECT_EQ(t.coords.size(), 40u);
}

TEST(Waxman, AlwaysConnected) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    WaxmanConfig cfg;
    cfg.num_nodes = 50;
    cfg.beta = 0.05;  // sparse: forces the repair path
    const Topology t = waxman(cfg, rng);
    EXPECT_TRUE(t.graph.is_connected()) << "seed " << seed;
  }
}

TEST(Waxman, CoordinatesInGrid) {
  Rng rng(3);
  WaxmanConfig cfg;
  cfg.num_nodes = 60;
  const Topology t = waxman(cfg, rng);
  for (const Point& p : t.coords) {
    EXPECT_GE(p.x, 0);
    EXPECT_LE(p.x, cfg.grid);
    EXPECT_GE(p.y, 0);
    EXPECT_LE(p.y, cfg.grid);
  }
}

TEST(Waxman, CostIsManhattanDistance) {
  Rng rng(4);
  WaxmanConfig cfg;
  cfg.num_nodes = 30;
  const Topology t = waxman(cfg, rng);
  for (graph::NodeId u = 0; u < t.graph.num_nodes(); ++u) {
    for (const auto& nb : t.graph.neighbors(u)) {
      const int d = manhattan(t.coords[static_cast<std::size_t>(u)],
                              t.coords[static_cast<std::size_t>(nb.to)]);
      EXPECT_DOUBLE_EQ(nb.attr.cost, static_cast<double>(d));
    }
  }
}

TEST(Waxman, DelayBoundedByCost) {
  // Paper §IV-A: link delay ~ Uniform(0, link cost).
  Rng rng(5);
  WaxmanConfig cfg;
  cfg.num_nodes = 50;
  const Topology t = waxman(cfg, rng);
  for (graph::NodeId u = 0; u < t.graph.num_nodes(); ++u) {
    for (const auto& nb : t.graph.neighbors(u)) {
      EXPECT_GE(nb.attr.delay, 0.0);
      EXPECT_LE(nb.attr.delay, nb.attr.cost);
    }
  }
}

TEST(Waxman, DeterministicPerSeed) {
  WaxmanConfig cfg;
  cfg.num_nodes = 30;
  Rng r1(99), r2(99);
  const Topology a = waxman(cfg, r1);
  const Topology b = waxman(cfg, r2);
  ASSERT_EQ(a.graph.num_edges(), b.graph.num_edges());
  for (graph::NodeId u = 0; u < a.graph.num_nodes(); ++u) {
    ASSERT_EQ(a.graph.neighbors(u).size(), b.graph.neighbors(u).size());
    for (std::size_t i = 0; i < a.graph.neighbors(u).size(); ++i) {
      EXPECT_EQ(a.graph.neighbors(u)[i].to, b.graph.neighbors(u)[i].to);
      EXPECT_DOUBLE_EQ(a.graph.neighbors(u)[i].attr.delay,
                       b.graph.neighbors(u)[i].attr.delay);
    }
  }
}

TEST(Waxman, HigherBetaMoreEdges) {
  WaxmanConfig sparse, dense;
  sparse.num_nodes = dense.num_nodes = 60;
  sparse.beta = 0.05;
  dense.beta = 0.5;
  Rng r1(7), r2(7);
  const Topology a = waxman(sparse, r1);
  const Topology b = waxman(dense, r2);
  EXPECT_LT(a.graph.num_edges(), b.graph.num_edges());
}

TEST(WaxmanDegree, HitsTargetDegree3) {
  Rng rng(11);
  const Topology t = waxman_with_degree(50, 3.0, rng);
  EXPECT_EQ(t.graph.num_nodes(), 50);
  EXPECT_TRUE(t.graph.is_connected());
  EXPECT_NEAR(t.graph.average_degree(), 3.0, 0.5);
}

TEST(WaxmanDegree, HitsTargetDegree5) {
  Rng rng(12);
  const Topology t = waxman_with_degree(50, 5.0, rng);
  EXPECT_NEAR(t.graph.average_degree(), 5.0, 0.5);
  EXPECT_TRUE(t.graph.is_connected());
}

TEST(WaxmanDegree, NameIncludesDegree) {
  Rng rng(13);
  const Topology t = waxman_with_degree(50, 3.0, rng);
  EXPECT_NE(t.name.find("deg3"), std::string::npos);
}

TEST(Waxman, EdgeProbabilityDecaysWithDistance) {
  // Pool edges over many seeds and compare the empirical edge frequency of
  // near pairs against far pairs: the Waxman kernel e^{-d/(alpha L)} must
  // make near pairs clearly more likely.
  int near_pairs = 0, near_edges = 0, far_pairs = 0, far_edges = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    Rng rng(seed * 7);
    WaxmanConfig cfg;
    cfg.num_nodes = 40;
    cfg.beta = 0.4;
    const Topology t = waxman(cfg, rng);
    const int threshold_near = cfg.grid / 4;       // d < L/8
    const int threshold_far = 3 * cfg.grid / 2;    // d > 3L/4
    for (graph::NodeId u = 0; u < t.graph.num_nodes(); ++u) {
      for (graph::NodeId v = u + 1; v < t.graph.num_nodes(); ++v) {
        const int d = manhattan(t.coords[static_cast<std::size_t>(u)],
                                t.coords[static_cast<std::size_t>(v)]);
        if (d < threshold_near) {
          ++near_pairs;
          if (t.graph.has_edge(u, v)) ++near_edges;
        } else if (d > threshold_far) {
          ++far_pairs;
          if (t.graph.has_edge(u, v)) ++far_edges;
        }
      }
    }
  }
  ASSERT_GT(near_pairs, 100);
  ASSERT_GT(far_pairs, 100);
  const double near_rate = static_cast<double>(near_edges) / near_pairs;
  const double far_rate = static_cast<double>(far_edges) / far_pairs;
  EXPECT_GT(near_rate, 3.0 * far_rate);
}

class WaxmanSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WaxmanSeedSweep, PaperConfigIsUsable) {
  // The Fig. 7 configuration: n=100, alpha=0.25, beta=0.2.
  Rng rng(GetParam());
  WaxmanConfig cfg;
  cfg.num_nodes = 100;
  cfg.alpha = 0.25;
  cfg.beta = 0.2;
  const Topology t = waxman(cfg, rng);
  EXPECT_TRUE(t.graph.is_connected());
  EXPECT_GE(t.graph.average_degree(), 2.0);
  EXPECT_LE(t.graph.average_degree(), 40.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WaxmanSeedSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace scmp::topo
