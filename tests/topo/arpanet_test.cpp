#include "topo/arpanet.hpp"

#include <gtest/gtest.h>

namespace scmp::topo {
namespace {

TEST(Arpanet, HasExpectedShape) {
  Rng rng(1);
  const Topology t = arpanet(rng);
  EXPECT_EQ(t.graph.num_nodes(), kArpanetNodes);
  EXPECT_EQ(t.graph.num_edges(), kArpanetLinks);
  EXPECT_TRUE(t.graph.is_connected());
  EXPECT_EQ(t.name, "arpanet");
}

TEST(Arpanet, SupportsThePaperGroupSweep) {
  // §IV-B sweeps group sizes up to 40, so the map must hold 40 members plus
  // a distinct source and m-router.
  EXPECT_GE(kArpanetNodes, 42);
}

TEST(Arpanet, DegreesInRealisticRange) {
  Rng rng(2);
  const Topology t = arpanet(rng);
  for (graph::NodeId v = 0; v < t.graph.num_nodes(); ++v) {
    EXPECT_GE(t.graph.degree(v), 2) << "node " << v;
    EXPECT_LE(t.graph.degree(v), 4) << "node " << v;
  }
}

TEST(Arpanet, CostModelMatchesRandomTopologies) {
  Rng rng(3);
  const Topology t = arpanet(rng);
  for (graph::NodeId u = 0; u < t.graph.num_nodes(); ++u) {
    for (const auto& nb : t.graph.neighbors(u)) {
      const int d = manhattan(t.coords[static_cast<std::size_t>(u)],
                              t.coords[static_cast<std::size_t>(nb.to)]);
      EXPECT_DOUBLE_EQ(nb.attr.cost, static_cast<double>(d));
      EXPECT_GE(nb.attr.delay, 0.0);
      EXPECT_LE(nb.attr.delay, nb.attr.cost);
    }
  }
}

TEST(Arpanet, AdjacencyIsSeedIndependent) {
  Rng r1(10), r2(20);
  const Topology a = arpanet(r1);
  const Topology b = arpanet(r2);
  ASSERT_EQ(a.graph.num_edges(), b.graph.num_edges());
  for (graph::NodeId u = 0; u < a.graph.num_nodes(); ++u) {
    ASSERT_EQ(a.graph.neighbors(u).size(), b.graph.neighbors(u).size());
    for (std::size_t i = 0; i < a.graph.neighbors(u).size(); ++i)
      EXPECT_EQ(a.graph.neighbors(u)[i].to, b.graph.neighbors(u)[i].to);
  }
}

TEST(Arpanet, DelaysAreSeedDependent) {
  Rng r1(10), r2(20);
  const Topology a = arpanet(r1);
  const Topology b = arpanet(r2);
  int differing = 0;
  for (graph::NodeId u = 0; u < a.graph.num_nodes(); ++u) {
    for (std::size_t i = 0; i < a.graph.neighbors(u).size(); ++i) {
      if (a.graph.neighbors(u)[i].attr.delay !=
          b.graph.neighbors(u)[i].attr.delay)
        ++differing;
    }
  }
  EXPECT_GT(differing, 0);
}

}  // namespace
}  // namespace scmp::topo
