#include "topo/transit_stub.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace scmp::topo {
namespace {

/// Flattened edge list (u, v, delay, cost) in adjacency order — two graphs
/// are identical iff these agree (undirected edges appear from both sides).
std::vector<std::tuple<graph::NodeId, graph::NodeId, double, double>>
edge_list(const graph::Graph& g) {
  std::vector<std::tuple<graph::NodeId, graph::NodeId, double, double>> out;
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const auto& nb : g.neighbors(u))
      out.emplace_back(u, nb.to, nb.attr.delay, nb.attr.cost);
  }
  return out;
}

TEST(TransitStub, ProducesConfiguredNodeCount) {
  TransitStubConfig cfg;  // 2x4 transit, 2x4 stubs per transit node
  Rng rng(1);
  const Topology t = transit_stub(cfg, rng);
  EXPECT_EQ(num_transit_nodes(cfg), 8);
  EXPECT_EQ(num_stub_nodes(cfg), 64);
  EXPECT_EQ(t.graph.num_nodes(), total_nodes(cfg));
  EXPECT_EQ(t.coords.size(), static_cast<std::size_t>(total_nodes(cfg)));
}

TEST(TransitStub, AlwaysConnected) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    TransitStubConfig cfg;
    cfg.transit_edge_prob = 0.1;  // sparse: forces every repair path
    cfg.stub_edge_prob = 0.05;
    Rng rng(seed);
    const Topology t = transit_stub(cfg, rng);
    EXPECT_TRUE(t.graph.is_connected()) << "seed " << seed;
  }
}

TEST(TransitStub, DeterministicForAGivenSeed) {
  TransitStubConfig cfg;
  cfg.transit_domains = 3;
  Rng a(77), b(77), c(78);
  const Topology ta = transit_stub(cfg, a);
  const Topology tb = transit_stub(cfg, b);
  const Topology tc = transit_stub(cfg, c);
  EXPECT_EQ(edge_list(ta.graph), edge_list(tb.graph));
  EXPECT_NE(edge_list(ta.graph), edge_list(tc.graph));
  EXPECT_EQ(ta.name, tb.name);
}

TEST(TransitStub, EdgeWeightsFollowTheWaxmanModel) {
  TransitStubConfig cfg;
  Rng rng(9);
  const Topology t = transit_stub(cfg, rng);
  for (const auto& [u, v, delay, cost] : edge_list(t.graph)) {
    EXPECT_GE(cost, 1.0) << u << "-" << v;
    EXPECT_GE(delay, 0.0) << u << "-" << v;
    EXPECT_LE(delay, cost) << u << "-" << v;
  }
}

}  // namespace
}  // namespace scmp::topo
