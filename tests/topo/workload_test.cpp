#include "topo/workload.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

namespace scmp::topo {
namespace {

TEST(ZipfSampler, ExponentZeroIsUniformSupport) {
  ZipfSampler sampler(10, 0.0);
  Rng rng(1);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 20000; ++i) ++hits[static_cast<std::size_t>(sampler.sample(rng))];
  for (int k = 0; k < 10; ++k) EXPECT_GT(hits[static_cast<std::size_t>(k)], 0);
  // Uniform: first and last rank within 3x of each other with 20k draws.
  EXPECT_LT(hits[0], hits[9] * 3);
}

TEST(ZipfSampler, SkewConcentratesOnLowRanks) {
  ZipfSampler sampler(100, 1.0);
  Rng rng(2);
  std::vector<int> hits(100, 0);
  for (int i = 0; i < 20000; ++i) ++hits[static_cast<std::size_t>(sampler.sample(rng))];
  EXPECT_GT(hits[0], hits[50] * 5);  // rank 0 is ~50x likelier at s=1
  for (int hit : hits) EXPECT_GE(hit, 0);
}

TEST(ZipfChurn, EveryLeaveFollowsItsJoin) {
  ZipfChurnConfig cfg;
  cfg.num_groups = 20;
  cfg.num_events = 2000;
  cfg.leave_fraction = 0.5;
  Rng rng(3);
  const std::vector<MemberEvent> events = zipf_churn(cfg, 30, rng);
  ASSERT_EQ(events.size(), 2000u);
  // Each (iface, host) pair is unique to one join; a leave reuses its pair.
  std::map<int, std::size_t> join_at;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const MemberEvent& ev = events[i];
    EXPECT_GE(ev.time, cfg.start);
    EXPECT_LT(ev.time, cfg.horizon);
    if (ev.join) {
      EXPECT_FALSE(join_at.contains(ev.iface)) << "iface reused by a join";
      join_at[ev.iface] = i;
    } else {
      ASSERT_TRUE(join_at.contains(ev.iface)) << "leave without a join";
      const MemberEvent& join = events[join_at[ev.iface]];
      EXPECT_GT(i, join_at[ev.iface]) << "leave sorted before its join";
      EXPECT_TRUE(join.join);
      EXPECT_EQ(join.group, ev.group);
      EXPECT_EQ(join.router, ev.router);
      EXPECT_LE(join.time, ev.time);
    }
  }
}

TEST(ZipfChurn, DeterministicForAGivenSeed) {
  ZipfChurnConfig cfg;
  cfg.num_events = 500;
  auto run = [&](std::uint64_t seed) {
    Rng rng(seed);
    return zipf_churn(cfg, 25, rng);
  };
  const auto a = run(7), b = run(7), c = run(8);
  auto keys = [](const std::vector<MemberEvent>& evs) {
    std::vector<std::tuple<double, int, graph::NodeId, int, int, bool>> out;
    out.reserve(evs.size());
    for (const MemberEvent& e : evs)
      out.emplace_back(e.time, e.group, e.router, e.iface, e.host, e.join);
    return out;
  };
  EXPECT_EQ(keys(a), keys(b));
  EXPECT_NE(keys(a), keys(c));
}

TEST(FlashCrowd, JoinsLandInsideTheWindowTimeSorted) {
  FlashCrowdConfig cfg;
  cfg.num_groups = 4;
  cfg.crowd = 1000;
  Rng rng(5);
  const std::vector<MemberEvent> events = flash_crowd(cfg, 50, rng);
  ASSERT_EQ(events.size(), 1000u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_TRUE(events[i].join);
    EXPECT_GE(events[i].time, cfg.start);
    EXPECT_LT(events[i].time, cfg.start + cfg.window);
    EXPECT_GE(events[i].group, 0);
    EXPECT_LT(events[i].group, cfg.num_groups);
    if (i > 0) EXPECT_LE(events[i - 1].time, events[i].time);
  }
}

TEST(FlashCrowd, DepartMirrorsEveryJoinOneWindowLater) {
  FlashCrowdConfig cfg;
  cfg.crowd = 300;
  cfg.depart = true;
  Rng rng(6);
  const std::vector<MemberEvent> events = flash_crowd(cfg, 50, rng);
  ASSERT_EQ(events.size(), 600u);
  std::map<int, const MemberEvent*> joins;
  int leaves = 0;
  for (const MemberEvent& ev : events) {
    if (ev.join) {
      joins[ev.iface] = &ev;
      continue;
    }
    ++leaves;
    ASSERT_TRUE(joins.contains(ev.iface)) << "depart sorted before its join";
    const MemberEvent& join = *joins[ev.iface];
    EXPECT_EQ(ev.group, join.group);
    EXPECT_EQ(ev.router, join.router);
    EXPECT_DOUBLE_EQ(ev.time, join.time + cfg.window);
  }
  EXPECT_EQ(leaves, 300);
}

}  // namespace
}  // namespace scmp::topo
