// Satellite 3 of the verification ISSUE: an intentionally-broken SCMP
// mutant must yield a minimized counterexample of at most 10 events that
// replays deterministically from its serialized artifact.
//
// The mutants are built by fault injection (Network::set_drop_filter), not
// by forking the protocol code: dropping every PRUNE models "leave never
// tears down state", dropping every CLEAR models "restructure never
// retracts stale branches", dropping every BRANCH models "install skips
// the forwarding (and reverse) edges" — the ISSUE's reverse-edge example.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "verify/churn.hpp"

namespace scmp::verify {
namespace {

/// Runs the full pipeline for one mutant: detect, shrink to <= 10 events,
/// serialize, re-read, replay — violations must reproduce identically.
void check_mutant_shrinks(sim::PacketType drop, std::uint64_t event_seed,
                          const char* expected_invariant) {
  ChurnConfig cfg;
  cfg.topo = ChurnTopo::kArpanet;
  cfg.num_events = 150;
  cfg.event_seed = event_seed;
  cfg.fault = FaultSpec{drop, 1};
  const ChurnModelChecker checker(cfg);

  // 1. The mutant is caught.
  const auto events = checker.generate();
  const CheckOutcome broken = checker.replay(events);
  ASSERT_FALSE(broken.ok) << "mutant was not detected";

  // 2. ddmin produces a minimal reproducer within the ISSUE's budget.
  const auto minimal = checker.shrink(events);
  EXPECT_LE(minimal.size(), 10u);
  EXPECT_GE(minimal.size(), 1u);
  const CheckOutcome still_broken = checker.replay(minimal);
  ASSERT_FALSE(still_broken.ok);
  bool found = false;
  for (const Violation& v : still_broken.violations)
    found = found || v.invariant == expected_invariant;
  EXPECT_TRUE(found) << "expected a " << expected_invariant
                     << " violation, got:\n"
                     << format(still_broken.violations);

  // 3. 1-minimality: dropping any single event loses the reproduction.
  for (std::size_t skip = 0; skip < minimal.size(); ++skip) {
    std::vector<ChurnEvent> smaller;
    for (std::size_t i = 0; i < minimal.size(); ++i) {
      if (i != skip) smaller.push_back(minimal[i]);
    }
    EXPECT_TRUE(smaller.empty() || checker.replay(smaller).ok)
        << "shrunk trace is not 1-minimal (event " << skip << " is dead "
        << "weight)";
  }

  // 4. The artifact round-trips and replays deterministically.
  TraceArtifact trace;
  trace.config = cfg;
  trace.events = minimal;
  trace.violations = still_broken.violations;
  const std::string path = testing::TempDir() + "/scmp_shrink_" +
                           std::to_string(event_seed) + ".txt";
  write_trace(path, trace);
  const TraceArtifact back = read_trace(path);
  std::remove(path.c_str());
  ASSERT_EQ(back.events, minimal);

  const ChurnModelChecker replayer(back.config);
  const CheckOutcome replayed = replayer.replay(back.events);
  ASSERT_FALSE(replayed.ok);
  ASSERT_EQ(replayed.violations.size(), still_broken.violations.size());
  for (std::size_t i = 0; i < replayed.violations.size(); ++i) {
    EXPECT_EQ(replayed.violations[i].invariant,
              still_broken.violations[i].invariant);
    EXPECT_EQ(replayed.violations[i].detail,
              still_broken.violations[i].detail);
  }
}

// Lost PRUNEs: a leave's teardown never happens, so the member's old branch
// survives as orphan forwarding state off the authoritative tree.
TEST(TraceShrink, DroppedPruneYieldsMinimalTrace) {
  check_mutant_shrinks(sim::PacketType::kPrune, 1, kNoOrphanState);
}

// Lost CLEARs: a restructuring join re-parents part of the tree, but the
// retraction of the superseded branch never reaches the routers on it.
TEST(TraceShrink, DroppedClearYieldsMinimalTrace) {
  check_mutant_shrinks(sim::PacketType::kClear, 5, kNoOrphanState);
}

// Lost BRANCH installs: the m-router grafts the path in its authoritative
// tree but no i-router learns the forwarding (and reverse) edges — the
// ISSUE's "skip reverse-edge installation" mutant.
TEST(TraceShrink, DroppedBranchYieldsMinimalTrace) {
  check_mutant_shrinks(sim::PacketType::kBranch, 9, kForwardingSymmetry);
}

// Shrinking is itself deterministic: same failing input, same minimal trace.
TEST(TraceShrink, ShrinkIsDeterministic) {
  ChurnConfig cfg;
  cfg.num_events = 120;
  cfg.event_seed = 1;
  cfg.fault = FaultSpec{sim::PacketType::kPrune, 1};
  const ChurnModelChecker checker(cfg);
  const auto events = checker.generate();
  ASSERT_FALSE(checker.replay(events).ok);
  EXPECT_EQ(checker.shrink(events), checker.shrink(events));
}

}  // namespace
}  // namespace scmp::verify
