// The path-db-consistent invariant: check_path_db holds an (incrementally
// maintained) AllPairsPaths to a from-scratch rebuild, and the churn
// model-checker — whose link-failure events now go through the incremental
// Scmp::handle_link_event — audits it at every stride.
#include <gtest/gtest.h>

#include <algorithm>
#include <string_view>

#include "helpers.hpp"
#include "verify/churn.hpp"
#include "verify/invariants.hpp"

namespace scmp::verify {
namespace {

TEST(PathDbInvariant, FreshDatabasePasses) {
  const auto topo = test::random_topology(5, 25);
  const graph::AllPairsPaths db(topo.graph);
  std::vector<Violation> out;
  check_path_db(db, topo.graph, out);
  EXPECT_TRUE(out.empty()) << format(out);
}

TEST(PathDbInvariant, StaleDatabaseIsFlagged) {
  auto topo = test::random_topology(5, 25);
  const graph::AllPairsPaths db(topo.graph);
  // Fail a link without telling the database: the stale runs must be caught.
  const graph::NodeId u = 0;
  const graph::NodeId v = topo.graph.neighbors(0).front().to;
  topo.graph.remove_edge(u, v);
  std::vector<Violation> out;
  check_path_db(db, topo.graph, out);
  ASSERT_FALSE(out.empty());
  for (const Violation& viol : out)
    EXPECT_EQ(viol.invariant, kPathDbConsistent);
}

TEST(PathDbInvariant, SizeMismatchIsFlagged) {
  const graph::Graph small = test::line(4);
  const graph::Graph big = test::line(6);
  const graph::AllPairsPaths db(small);
  std::vector<Violation> out;
  check_path_db(db, big, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].invariant, kPathDbConsistent);
}

TEST(PathDbInvariant, RegisteredInCatalog) {
  const auto* end = std::end(kInvariantIds);
  EXPECT_NE(std::find_if(std::begin(kInvariantIds), end,
                         [](const char* id) {
                           return std::string_view(id) == kPathDbConsistent;
                         }),
            end);
}

// Churn scenario with link failures leaning hard on the incremental update:
// every audit stride re-derives a from-scratch AllPairsPaths and requires
// bit-identity with the Scmp-held database (plus the whole regular catalog).
TEST(PathDbInvariant, ChurnWithLinkFailuresStaysConsistent) {
  ChurnConfig cfg;
  cfg.topo = ChurnTopo::kArpanet;
  cfg.num_events = 160;
  cfg.num_groups = 3;
  cfg.max_link_failures = 8;
  cfg.audit_stride = 4;
  cfg.event_seed = 12;
  const ChurnModelChecker checker(cfg);
  const CheckOutcome outcome = checker.run();
  EXPECT_TRUE(outcome.ok) << format(outcome.violations);
  EXPECT_GT(outcome.audits, 0);
}

TEST(PathDbInvariant, ChurnOnWaxmanStaysConsistent) {
  ChurnConfig cfg;
  cfg.topo = ChurnTopo::kWaxman;
  cfg.waxman_nodes = 40;
  cfg.num_events = 120;
  cfg.max_link_failures = 6;
  cfg.audit_stride = 5;
  cfg.topo_seed = 4;
  cfg.event_seed = 9;
  const ChurnModelChecker checker(cfg);
  const CheckOutcome outcome = checker.run();
  EXPECT_TRUE(outcome.ok) << format(outcome.violations);
}

}  // namespace
}  // namespace scmp::verify
