// Convergence observability under the churn model-checker: per-group
// time-to-convergence statistics ride along with lossy replays, the flight
// recorder captures the full control-plane lifecycle (retx and repair
// included) and reconstructs complete JOIN -> installed causal chains, and
// the exported time-series + flight JSONL streams are bit-identical across
// two fresh fixed-seed worlds — the property that makes the artifacts
// diffable across runs and machines.
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "verify/churn.hpp"

namespace scmp::verify {
namespace {

struct ObsRun {
  CheckOutcome outcome;
  std::string timeseries;             ///< scmp-timeseries-v1 stream
  std::string flight_jsonl;           ///< flight records, one per line
  std::vector<obs::FlightRecord> records;
};

/// Replays `cfg` in a fresh world with metrics, time-series sampling and the
/// flight recorder all enabled, starting every process-wide obs sink from
/// zero so back-to-back runs are directly comparable.
ObsRun replay_with_obs(const ChurnConfig& cfg) {
  obs::set_metrics_enabled(true);
  obs::reset_values();
  obs::timeseries().reset();
  obs::timeseries().set_enabled(true);
  obs::flight().clear();
  obs::set_flight_enabled(true);

  const ChurnModelChecker checker(cfg);
  ObsRun run;
  run.outcome = checker.replay(checker.generate());
  run.timeseries = obs::timeseries().serialize();
  std::ostringstream out;
  obs::write_flight_jsonl(out);
  run.flight_jsonl = out.str();
  run.records = obs::flight().snapshot();

  obs::set_flight_enabled(false);
  obs::flight().clear();
  obs::timeseries().set_enabled(false);
  obs::timeseries().reset();
  obs::set_metrics_enabled(false);
  obs::reset_values();
  return run;
}

int count_kind(const std::vector<obs::FlightRecord>& records,
               obs::FlightEventKind kind) {
  int n = 0;
  for (const obs::FlightRecord& r : records)
    if (r.kind == kind) ++n;
  return n;
}

/// Complete causal chains: a reliable JOIN handled at the m-router whose
/// story reaches at least one installed-state record.
int complete_join_chains(const std::vector<obs::FlightRecord>& records) {
  int complete = 0;
  for (const obs::FlightRecord& r : records) {
    if (r.kind != obs::FlightEventKind::kHandle || r.req == 0 ||
        std::strcmp(r.what, "JOIN") != 0)
      continue;
    for (const obs::FlightRecord& s : obs::story_of(records, r.req)) {
      if (s.kind == obs::FlightEventKind::kInstalled) {
        ++complete;
        break;
      }
    }
  }
  return complete;
}

TEST(ConvergenceObs, LossyReplayReportsPerGroupConvergence) {
  ChurnConfig cfg;
  cfg.topo = ChurnTopo::kArpanet;
  cfg.num_events = 300;
  cfg.event_seed = 1;
  cfg.control_loss_rate = 0.05;
  cfg.track_convergence = true;
  const ObsRun run = replay_with_obs(cfg);
  ASSERT_TRUE(run.outcome.ok) << format(run.outcome.violations);

  ASSERT_TRUE(run.outcome.convergence.has_value());
  const proto::ConvergenceTracker::Stats& c = *run.outcome.convergence;
  EXPECT_GT(c.events, 0u);
  EXPECT_GT(c.converged, 0u);
  EXPECT_LE(c.converged + c.timeouts, c.events);
  EXPECT_FALSE(c.per_group.empty());
  for (const auto& [group, s] : c.per_group) {
    EXPECT_GT(s.count, 0u) << "group " << group;
    EXPECT_GT(s.p50, 0.0) << "group " << group;
    EXPECT_LE(s.p50, s.p95) << "group " << group;
    EXPECT_LE(s.p95, s.p99) << "group " << group;
  }
}

TEST(ConvergenceObs, TrackingIsOffWithoutTheFlag) {
  ChurnConfig cfg;
  cfg.num_events = 100;
  cfg.event_seed = 3;
  const ChurnModelChecker checker(cfg);
  const CheckOutcome outcome = checker.replay(checker.generate());
  EXPECT_TRUE(outcome.ok);
  EXPECT_FALSE(outcome.convergence.has_value());
}

TEST(ConvergenceObs, FlightCapturesLossyLifecycle) {
  // A long 5% loss run exercises the whole reliability ladder:
  // retransmissions, exhausted retry budgets, and reconciliation repairs of
  // the resulting divergence — each leaving its record kind in the ring.
  ChurnConfig cfg;
  cfg.topo = ChurnTopo::kArpanet;
  cfg.num_events = 1000;
  cfg.event_seed = 3;
  cfg.control_loss_rate = 0.05;
  cfg.track_convergence = true;
  const ObsRun run = replay_with_obs(cfg);
  ASSERT_TRUE(run.outcome.ok) << format(run.outcome.violations);

  EXPECT_GT(count_kind(run.records, obs::FlightEventKind::kSend), 0);
  EXPECT_GT(count_kind(run.records, obs::FlightEventKind::kRetx), 0);
  EXPECT_GT(count_kind(run.records, obs::FlightEventKind::kExhausted), 0);
  EXPECT_GT(count_kind(run.records, obs::FlightEventKind::kRepair), 0);
  EXPECT_GT(complete_join_chains(run.records), 0);

  // Even at this loss rate the tracker still proves convergence for most
  // membership events (the rest time out against the authoritative tree).
  ASSERT_TRUE(run.outcome.convergence.has_value());
  EXPECT_GT(run.outcome.convergence->converged, 0u);
}

TEST(ConvergenceObs, ArtifactsAreBitIdenticalAcrossFreshWorlds) {
  ChurnConfig cfg;
  cfg.topo = ChurnTopo::kArpanet;
  cfg.num_events = 150;
  cfg.event_seed = 7;
  cfg.control_loss_rate = 0.05;
  cfg.track_convergence = true;
  const ObsRun first = replay_with_obs(cfg);
  const ObsRun second = replay_with_obs(cfg);
  ASSERT_TRUE(first.outcome.ok) << format(first.outcome.violations);

  // The streams carry only simulated time and sim-driven values, so two
  // fresh worlds with the same seed serialize byte for byte.
  EXPECT_FALSE(first.records.empty());
  EXPECT_GT(first.timeseries.size(),
            std::string("{\"schema\":\"scmp-timeseries-v1\"").size());
  EXPECT_EQ(first.timeseries, second.timeseries);
  EXPECT_EQ(first.flight_jsonl, second.flight_jsonl);
}

}  // namespace
}  // namespace scmp::verify
