// Satellite 2 of the verification ISSUE: the auditor pointed at the hard
// corners of the existing corpus — failover, multi-m-router anchoring, link
// failure repair, anti-entropy refresh, session teardown and idle expiry.
// Every scenario must audit clean at quiescence; a regression here is
// exactly the class of latent state-consistency bug the auditor exists to
// surface.
#include <gtest/gtest.h>

#include <memory>

#include "core/scmp.hpp"
#include "helpers.hpp"
#include "topo/arpanet.hpp"
#include "verify/auditor.hpp"

namespace scmp::verify {
namespace {

struct Domain {
  explicit Domain(graph::Graph graph, core::Scmp::Config cfg = {})
      : g(std::move(graph)), net(g, queue), igmp(queue, g.num_nodes()) {
    scmp = std::make_unique<core::Scmp>(net, igmp, cfg);
    auditor = std::make_unique<InvariantAuditor>(*scmp);
  }

  void drain_and_expect_clean(const char* when) {
    queue.run_all();
    const auto violations = auditor->audit();
    EXPECT_TRUE(violations.empty()) << when << ":\n" << format(violations);
  }

  graph::Graph g;
  sim::EventQueue queue;
  sim::Network net;
  igmp::IgmpDomain igmp;
  std::unique_ptr<core::Scmp> scmp;
  std::unique_ptr<InvariantAuditor> auditor;
};

topo::Topology arpanet_topo() {
  Rng rng(2);
  return topo::arpanet(rng);
}

TEST(AuditorScenarios, HotStandbyFailover) {
  core::Scmp::Config cfg;
  cfg.mrouter = 0;
  Domain d(arpanet_topo().graph, cfg);
  for (graph::NodeId r : {5, 17, 29, 41}) d.scmp->host_join(r, 1);
  for (graph::NodeId r : {8, 23}) d.scmp->host_join(r, 2);
  d.drain_and_expect_clean("after joins");

  d.scmp->fail_over_to(3);
  d.drain_and_expect_clean("after failover to the standby");

  // Membership keeps evolving against the new anchor.
  d.scmp->host_join(44, 1);
  d.scmp->host_leave(17, 1);
  d.drain_and_expect_clean("after churn against the standby");
}

TEST(AuditorScenarios, MultiMRouterAnchoring) {
  core::Scmp::Config cfg;
  cfg.mrouters = {0, 10, 20};  // group g anchored at mrouters[g % 3]
  Domain d(arpanet_topo().graph, cfg);
  for (proto::GroupId g = 0; g < 6; ++g) {
    d.scmp->host_join(30 + g, g);
    d.scmp->host_join(5 + g, g);
  }
  d.drain_and_expect_clean("after joins across three anchors");

  for (proto::GroupId g = 0; g < 6; ++g) d.scmp->host_leave(5 + g, g);
  d.drain_and_expect_clean("after leaves across three anchors");
}

TEST(AuditorScenarios, LinkFailureRepair) {
  Domain d(arpanet_topo().graph);
  for (graph::NodeId r : {7, 19, 33, 45}) d.scmp->host_join(r, 1);
  d.drain_and_expect_clean("before the link failure");

  // Fail a link the current tree uses, if any survives the guard; the
  // repair path (on_topology_change) must leave no stale state behind.
  const core::DcdmTree* tree = d.scmp->group_tree(1);
  ASSERT_NE(tree, nullptr);
  for (const auto& [child, parent] : tree->tree().edges()) {
    graph::Graph probe = d.net.graph();
    probe.remove_edge(child, parent);
    if (!probe.is_connected()) continue;
    d.net.fail_link(child, parent);
    d.scmp->on_topology_change();
    break;
  }
  d.drain_and_expect_clean("after the tree link failed and was repaired");
}

TEST(AuditorScenarios, SessionTeardownAndRefresh) {
  Domain d(test::paper_fig5_topology());
  d.scmp->host_join(4, 1);
  d.scmp->host_join(3, 1);
  d.drain_and_expect_clean("after joins");

  d.scmp->refresh_group(1);
  d.drain_and_expect_clean("after an anti-entropy refresh");

  d.scmp->end_group_session(1);
  d.drain_and_expect_clean("after the session was torn down");
}

TEST(AuditorScenarios, IdleSessionExpiry) {
  Domain d(test::paper_fig5_topology());
  d.scmp->set_session_idle_expiry(5.0);
  d.scmp->host_join(4, 1);
  d.queue.run_until(1.0);
  d.scmp->host_leave(4, 1);
  d.queue.run_until(2.0);  // inside the grace period: session idles, clean
  {
    const auto violations = d.auditor->audit();
    EXPECT_TRUE(violations.empty())
        << "mid-grace-period:\n" << format(violations);
  }
  // run_all executes the scheduled expiry event: the m-router must tear the
  // session down without leaving orphan state.
  d.drain_and_expect_clean("after the idle session expired");
  EXPECT_FALSE(d.scmp->database().session_active(1));
}

TEST(AuditorScenarios, AlwaysFullTreeAblation) {
  core::Scmp::Config cfg;
  cfg.always_full_tree = true;
  Domain d(arpanet_topo().graph, cfg);
  for (graph::NodeId r : {5, 17, 29}) d.scmp->host_join(r, 1);
  d.drain_and_expect_clean("after full-TREE installs");
  d.scmp->host_leave(17, 1);
  d.drain_and_expect_clean("after a leave under full-TREE installs");
}

}  // namespace
}  // namespace scmp::verify
