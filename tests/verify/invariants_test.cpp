// The invariant catalog under test, two ways:
//   1. healthy worlds audit clean (snapshots of real SCMP runs, plus the
//      auditor attached to the comparison protocols and the fabric);
//   2. mutant snapshots — a healthy snapshot corrupted exactly the way a
//      protocol bug of each invariant class would corrupt the live state —
//      make the matching check fire. The repo-wide suite is audit-clean
//      (see churn_test.cpp), so these mutants are the proof that every
//      invariant class actually detects its bug class rather than silently
//      passing everything.
#include "verify/invariants.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/scmp.hpp"
#include "fabric/mrouter_fabric.hpp"
#include "helpers.hpp"
#include "verify/auditor.hpp"
#include "verify/snapshot.hpp"

namespace scmp::verify {
namespace {

constexpr GroupId kGroup = 1;

/// Minimal SCMP world on the paper's Fig. 5 topology with members joined
/// and drained to quiescence — the healthy baseline every mutant corrupts.
class VerifyFixture {
 public:
  explicit VerifyFixture(graph::Graph graph = test::paper_fig5_topology())
      : g_(std::move(graph)), net_(g_, queue_), igmp_(queue_, g_.num_nodes()) {
    core::Scmp::Config cfg;
    cfg.mrouter = 0;
    scmp_ = std::make_unique<core::Scmp>(net_, igmp_, cfg);
  }

  void join(graph::NodeId r) {
    scmp_->host_join(r, kGroup);
    queue_.run_all();
  }
  void leave(graph::NodeId r) {
    scmp_->host_leave(r, kGroup);
    queue_.run_all();
  }

  GroupSnapshot snapshot() const {
    return take_group_snapshot(*scmp_, kGroup);
  }

  std::vector<Violation> check(const GroupSnapshot& s) const {
    std::vector<Violation> out;
    check_group(s, net_.graph(), out);
    return out;
  }

  graph::Graph g_;
  sim::EventQueue queue_;
  sim::Network net_;
  igmp::IgmpDomain igmp_;
  std::unique_ptr<core::Scmp> scmp_;
};

bool has_invariant(const std::vector<Violation>& vs, const char* id) {
  for (const Violation& v : vs) {
    if (v.invariant == id) return true;
  }
  return false;
}

TEST(Invariants, HealthySnapshotIsClean) {
  VerifyFixture f;
  f.join(4);
  f.join(3);
  f.join(5);
  const auto violations = f.check(f.snapshot());
  EXPECT_TRUE(violations.empty()) << format(violations);
}

TEST(Invariants, HealthyAfterLeaveIsClean) {
  VerifyFixture f;
  f.join(4);
  f.join(3);
  f.leave(4);
  const auto violations = f.check(f.snapshot());
  EXPECT_TRUE(violations.empty()) << format(violations);
}

TEST(Invariants, AuditorCleanOnHealthyWorld) {
  VerifyFixture f;
  f.join(4);
  f.join(5);
  const InvariantAuditor auditor(*f.scmp_);
  EXPECT_TRUE(auditor.audit().empty());
  EXPECT_EQ(auditor.audits_run(), 1u);
  auditor.audit_or_die();  // must not die
}

// ---- invariant class 1: tree well-formedness -------------------------------

// Mutant: the bug class where a graft wires a cycle into the parent map
// (e.g. loop elimination re-parenting the wrong node). 3's chain 3->2->3
// never reaches the root.
TEST(Invariants, TreeMutant_CycleDetected) {
  VerifyFixture f;
  f.join(4);
  f.join(3);
  GroupSnapshot s = f.snapshot();
  ASSERT_TRUE(s.parent.contains(3) && s.parent.contains(2));
  s.parent[2] = 3;  // 2's real parent is on the 0->...->3 chain: now a cycle
  EXPECT_TRUE(has_invariant(f.check(s), kTreeWellFormed));
}

// Mutant: a tree edge that does not exist in the topology (a graft that
// ignored the graph, or state surviving a link failure un-repaired).
TEST(Invariants, TreeMutant_PhantomEdgeDetected) {
  VerifyFixture f;
  f.join(4);
  GroupSnapshot s = f.snapshot();
  ASSERT_TRUE(s.parent.contains(4));
  s.parent[4] = 3;  // Fig. 5 has no 4-3 link
  EXPECT_TRUE(has_invariant(f.check(s), kTreeWellFormed));
}

// Mutant: a member the tree forgot (join recorded in IGMP/database but the
// graft never happened) — the tree no longer spans the membership.
TEST(Invariants, TreeMutant_MissingMemberDetected) {
  VerifyFixture f;
  f.join(4);
  f.join(5);
  GroupSnapshot s = f.snapshot();
  s.tree_members.erase(5);
  s.parent.erase(5);
  EXPECT_TRUE(has_invariant(f.check(s), kTreeWellFormed));
}

// Mutant: a dangling non-member leaf (a prune that stopped early and left
// the relay branch in the tree).
TEST(Invariants, TreeMutant_NonMemberLeafDetected) {
  VerifyFixture f;
  f.join(3);
  GroupSnapshot s = f.snapshot();
  // Attach relay node 1 as a childless leaf off the root.
  ASSERT_FALSE(s.parent.contains(1));
  s.parent[1] = 0;
  EXPECT_TRUE(has_invariant(f.check(s), kTreeWellFormed));
}

// ---- invariant class 2: bidirectional forwarding symmetry ------------------

// Mutant: the ISSUE's example bug — an install that skips the reverse edge:
// the child's entry points up, but the parent never learned the child.
TEST(Invariants, SymmetryMutant_MissingReverseEdgeDetected) {
  VerifyFixture f(test::line(4));
  f.join(3);
  GroupSnapshot s = f.snapshot();
  bool corrupted = false;
  for (EntrySnapshot& e : s.entries) {
    if (e.router == 1) {  // relay: drop its knowledge of downstream 2
      e.downstream_routers.erase(2);
      corrupted = true;
    }
  }
  ASSERT_TRUE(corrupted);
  EXPECT_TRUE(has_invariant(f.check(s), kForwardingSymmetry));
}

// Mutant: an i-router whose entry vanished while it is still on the tree
// (lost BRANCH install): upstream traffic has a hole.
TEST(Invariants, SymmetryMutant_MissingEntryDetected) {
  VerifyFixture f(test::line(4));
  f.join(3);
  GroupSnapshot s = f.snapshot();
  std::erase_if(s.entries,
                [](const EntrySnapshot& e) { return e.router == 2; });
  EXPECT_TRUE(has_invariant(f.check(s), kForwardingSymmetry));
}

// Mutant: an entry pointing upstream at a router that is not its tree
// parent (a BRANCH applied against a stale tree version).
TEST(Invariants, SymmetryMutant_WrongUpstreamDetected) {
  VerifyFixture f;
  f.join(4);
  f.join(3);
  GroupSnapshot s = f.snapshot();
  bool corrupted = false;
  for (EntrySnapshot& e : s.entries) {
    if (e.router == 3 && s.parent.contains(3)) {
      e.upstream = 4;  // real parent is 2 (or 0 via direct link)
      corrupted = e.upstream != s.parent[3];
    }
  }
  ASSERT_TRUE(corrupted);
  EXPECT_TRUE(has_invariant(f.check(s), kForwardingSymmetry));
}

// ---- invariant class 3: delay-constraint satisfaction ----------------------

// Mutant: a member whose tree path got longer than the bound it was admitted
// under (a restructure that ignored the delay constraint).
TEST(Invariants, DelayMutant_BoundExceededDetected) {
  VerifyFixture f;
  f.join(4);
  f.join(3);
  GroupSnapshot s = f.snapshot();
  ASSERT_TRUE(s.admitted_bound.contains(4));
  s.member_delay[4] = s.admitted_bound[4] + 1.0;
  EXPECT_TRUE(has_invariant(f.check(s), kDelayBound));
}

// Mutant: a member admitted without any recorded bound (the admission ledger
// and the membership went out of sync).
TEST(Invariants, DelayMutant_MissingAdmissionDetected) {
  VerifyFixture f;
  f.join(4);
  GroupSnapshot s = f.snapshot();
  s.admitted_bound.erase(4);
  EXPECT_TRUE(has_invariant(f.check(s), kDelayBound));
}

// ---- invariant class 4: no orphan forwarding state -------------------------

// Mutant: a router that kept its entry after the PRUNE removed it from the
// authoritative tree (lost PRUNE / lost CLEAR).
TEST(Invariants, OrphanMutant_StaleEntryDetected) {
  VerifyFixture f(test::line(4));
  f.join(3);
  GroupSnapshot s = f.snapshot();
  s.parent.erase(3);  // tree says 3 left...
  s.tree_members.erase(3);
  s.igmp_members.erase(3);
  s.db_members.erase(3);
  // ...but its entry (already in s.entries from the live join) remains.
  EXPECT_TRUE(has_invariant(f.check(s), kNoOrphanState));
}

// Mutant: installed state outliving its whole session (end_group_session
// whose CLEAR never reached a router).
TEST(Invariants, OrphanMutant_EndedSessionStateDetected) {
  VerifyFixture f(test::line(4));
  f.join(3);
  GroupSnapshot s = f.snapshot();
  s.session_active = false;
  s.parent.clear();
  s.tree_members.clear();
  s.member_delay.clear();
  s.admitted_bound.clear();
  EXPECT_TRUE(has_invariant(f.check(s), kNoOrphanState));
}

// ---- invariant class 5: fabric validity ------------------------------------

fabric::MRouterFabric configured_fabric() {
  fabric::MRouterFabric fabric(8);
  std::vector<fabric::FabricSession> sessions(2);
  sessions[0].group = 1;
  sessions[0].input_ports = {0, 3, 5};
  sessions[1].group = 2;
  sessions[1].input_ports = {1, 6};
  fabric.configure(sessions);
  return fabric;
}

TEST(Invariants, HealthyFabricIsClean) {
  const fabric::MRouterFabric fabric = configured_fabric();
  std::vector<Violation> out;
  check_fabric(view_of(fabric), out);
  EXPECT_TRUE(out.empty()) << format(out);
}

// Mutant: PN no longer a permutation (two inputs on one line — colliding
// cells inside the fabric).
TEST(Invariants, FabricMutant_BrokenPermutationDetected) {
  FabricView v = view_of(configured_fabric());
  v.pn_map[0] = v.pn_map[1];
  std::vector<Violation> out;
  check_fabric(v, out);
  EXPECT_TRUE(has_invariant(out, kFabricValidity));
}

// Mutant: a CCN component merging two groups' lines — the cross-group
// connection the sandwich fabric must never make.
TEST(Invariants, FabricMutant_CrossGroupMergeDetected) {
  FabricView v = view_of(configured_fabric());
  // Point group 2's first line at group 1's component leader.
  int g1_leader = -1, g2_line = -1;
  for (int p = 0; p < v.ports; ++p) {
    const int line = v.pn_map[static_cast<std::size_t>(p)];
    if (v.input_group[static_cast<std::size_t>(p)] == 1 && g1_leader < 0)
      g1_leader = v.line_leader[static_cast<std::size_t>(line)];
    if (v.input_group[static_cast<std::size_t>(p)] == 2 && g2_line < 0)
      g2_line = line;
  }
  ASSERT_GE(g1_leader, 0);
  ASSERT_GE(g2_line, 0);
  v.line_leader[static_cast<std::size_t>(g2_line)] = g1_leader;
  std::vector<Violation> out;
  check_fabric(v, out);
  EXPECT_TRUE(has_invariant(out, kFabricValidity));
}

// Mutant: the DN delivering a group's cells to another group's output port.
TEST(Invariants, FabricMutant_WrongOutputPortDetected) {
  FabricView v = view_of(configured_fabric());
  ASSERT_TRUE(v.group_output.contains(1) && v.group_output.contains(2));
  // Re-route group 1's leader line onto group 2's output port.
  for (int p = 0; p < v.ports; ++p) {
    if (v.input_group[static_cast<std::size_t>(p)] != 1) continue;
    const int line = v.pn_map[static_cast<std::size_t>(p)];
    const int leader = v.line_leader[static_cast<std::size_t>(line)];
    v.dn_map[static_cast<std::size_t>(leader)] = v.group_output[2];
  }
  std::vector<Violation> out;
  check_fabric(v, out);
  EXPECT_TRUE(has_invariant(out, kFabricValidity));
}

// The auditor wires the fabric check in when given a fabric.
TEST(Invariants, AuditorCoversFabric) {
  VerifyFixture f;
  f.join(4);
  const fabric::MRouterFabric fabric = configured_fabric();
  const InvariantAuditor auditor(*f.scmp_, &fabric);
  EXPECT_TRUE(auditor.audit().empty());
}

// ---- snapshot plumbing -----------------------------------------------------

TEST(Snapshot, CapturesMembershipAndEntries) {
  VerifyFixture f(test::line(4));
  f.join(3);
  const GroupSnapshot s = f.snapshot();
  EXPECT_EQ(s.group, kGroup);
  EXPECT_EQ(s.root, 0);
  EXPECT_TRUE(s.session_active);
  EXPECT_TRUE(s.tree_members.contains(3));
  EXPECT_TRUE(s.igmp_members.contains(3));
  EXPECT_TRUE(s.db_members.contains(3));
  EXPECT_EQ(s.parent.size(), 4u);  // 0-1-2-3 chain
  EXPECT_EQ(s.entries.size(), 3u);  // the m-router holds no entry
  EXPECT_TRUE(s.admitted_bound.contains(3));
}

TEST(Snapshot, FullSnapshotCoversAllGroups) {
  VerifyFixture f;
  f.scmp_->host_join(3, 1);
  f.scmp_->host_join(4, 2);
  f.queue_.run_all();
  const ScmpSnapshot snap = take_snapshot(*f.scmp_);
  EXPECT_EQ(snap.groups.size(), 2u);
}

}  // namespace
}  // namespace scmp::verify
