// The churn model-checker: clean protocol runs audit clean on both
// evaluation topologies, generation and replay are fully deterministic
// (the property the trace artifacts and ddmin subset replays rest on),
// the auditor holds across SCMP's failover/link-failure machinery, and the
// comparison protocols pass their own audit_state() self-checks under churn.
#include "verify/churn.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "protocols/cbt.hpp"
#include "protocols/pimsm.hpp"
#include "topo/arpanet.hpp"

namespace scmp::verify {
namespace {

TEST(Churn, CleanRunOnArpanet) {
  ChurnConfig cfg;
  cfg.topo = ChurnTopo::kArpanet;
  cfg.num_events = 400;
  cfg.event_seed = 11;
  const ChurnModelChecker checker(cfg);
  const CheckOutcome outcome = checker.run();
  EXPECT_TRUE(outcome.ok) << format(outcome.violations);
  EXPECT_GT(outcome.executed, 0);
}

TEST(Churn, CleanRunOnWaxman) {
  ChurnConfig cfg;
  cfg.topo = ChurnTopo::kWaxman;
  cfg.waxman_nodes = 40;
  cfg.num_events = 400;
  cfg.event_seed = 12;
  const ChurnModelChecker checker(cfg);
  const CheckOutcome outcome = checker.run();
  EXPECT_TRUE(outcome.ok) << format(outcome.violations);
}

TEST(Churn, CleanRunOnTransitStub) {
  ChurnConfig cfg;
  cfg.topo = ChurnTopo::kTransitStub;
  cfg.num_events = 300;
  cfg.event_seed = 13;
  const ChurnModelChecker checker(cfg);
  const CheckOutcome outcome = checker.run();
  EXPECT_TRUE(outcome.ok) << format(outcome.violations);
  EXPECT_GT(outcome.executed, 0);
}

TEST(Churn, EpochBatchedRunPassesTheEquivalenceCheck) {
  // epoch_interval > 0 drags the sequential shadow world along and audits
  // the batched-vs-sequential equivalence contract at every stride.
  ChurnConfig cfg;
  cfg.topo = ChurnTopo::kArpanet;
  cfg.num_events = 250;
  cfg.event_seed = 14;
  cfg.epoch_interval = 0.5;
  cfg.audit_stride = 5;
  const ChurnModelChecker checker(cfg);
  const CheckOutcome outcome = checker.run();
  EXPECT_TRUE(outcome.ok) << format(outcome.violations);
}

TEST(Churn, EpochBatchedLossyRunStillConverges) {
  ChurnConfig cfg;
  cfg.topo = ChurnTopo::kTransitStub;
  cfg.num_events = 120;
  cfg.event_seed = 15;
  cfg.epoch_interval = 1.0;
  cfg.control_loss_rate = 0.05;
  cfg.audit_stride = 10;
  const ChurnModelChecker checker(cfg);
  const CheckOutcome outcome = checker.run();
  EXPECT_TRUE(outcome.ok) << format(outcome.violations);
}

TEST(Churn, AuditStrideStillAuditsTheEnd) {
  ChurnConfig cfg;
  cfg.num_events = 97;  // not a multiple of the stride
  cfg.audit_stride = 10;
  const ChurnModelChecker checker(cfg);
  EXPECT_TRUE(checker.run().ok);
}

TEST(Churn, GenerationIsDeterministic) {
  ChurnConfig cfg;
  cfg.num_events = 200;
  cfg.event_seed = 42;
  const ChurnModelChecker checker(cfg);
  const auto a = checker.generate();
  const auto b = checker.generate();
  EXPECT_EQ(a, b);

  cfg.event_seed = 43;
  const auto c = ChurnModelChecker(cfg).generate();
  EXPECT_NE(a, c);  // different seed, different interleaving
}

TEST(Churn, GenerationCapsLinkFailures) {
  ChurnConfig cfg;
  cfg.num_events = 500;
  cfg.max_link_failures = 3;
  int failures = 0;
  for (const ChurnEvent& ev : ChurnModelChecker(cfg).generate()) {
    if (ev.type == ChurnEventType::kLinkFail) ++failures;
  }
  EXPECT_LE(failures, 3);
  EXPECT_GT(failures, 0);  // the 8% bucket hits within 500 draws
}

TEST(Churn, ReplayIsDeterministic) {
  ChurnConfig cfg;
  cfg.num_events = 150;
  cfg.event_seed = 7;
  cfg.fault = FaultSpec{sim::PacketType::kPrune, 1};
  const ChurnModelChecker checker(cfg);
  const auto events = checker.generate();
  const CheckOutcome first = checker.replay(events);
  const CheckOutcome second = checker.replay(events);
  EXPECT_EQ(first.ok, second.ok);
  EXPECT_EQ(first.executed, second.executed);
  EXPECT_EQ(first.failing_index, second.failing_index);
  ASSERT_EQ(first.violations.size(), second.violations.size());
  for (std::size_t i = 0; i < first.violations.size(); ++i) {
    EXPECT_EQ(first.violations[i].invariant, second.violations[i].invariant);
    EXPECT_EQ(first.violations[i].detail, second.violations[i].detail);
  }
}

// ---- trace artifact round-trip ---------------------------------------------

TEST(Trace, SerializeDeserializeRoundTrip) {
  TraceArtifact trace;
  trace.config.topo = ChurnTopo::kWaxman;
  trace.config.topo_seed = 99;
  trace.config.waxman_nodes = 30;
  trace.config.num_groups = 2;
  trace.config.event_seed = 5;
  trace.config.audit_stride = 3;
  trace.config.fault = FaultSpec{sim::PacketType::kClear, 2};
  trace.config.control_loss_rate = 0.05;
  trace.config.loss_seed = 11;
  trace.config.epoch_interval = 0.75;
  trace.events = {
      {ChurnEventType::kJoin, 0, 7, graph::kInvalidNode},
      {ChurnEventType::kSend, 1, 3, graph::kInvalidNode},
      {ChurnEventType::kLinkFail, -1, 2, 9},
      {ChurnEventType::kLeave, 0, 7, graph::kInvalidNode},
  };
  trace.violations = {{kNoOrphanState, "g0: router 9 holds an entry"}};

  const TraceArtifact back = deserialize(serialize(trace));
  EXPECT_EQ(back.config.topo, trace.config.topo);
  EXPECT_EQ(back.config.topo_seed, trace.config.topo_seed);
  EXPECT_EQ(back.config.waxman_nodes, trace.config.waxman_nodes);
  EXPECT_EQ(back.config.num_groups, trace.config.num_groups);
  EXPECT_EQ(back.config.event_seed, trace.config.event_seed);
  EXPECT_EQ(back.config.audit_stride, trace.config.audit_stride);
  ASSERT_TRUE(back.config.fault.has_value());
  EXPECT_EQ(back.config.fault->drop, trace.config.fault->drop);
  EXPECT_EQ(back.config.fault->every_nth, trace.config.fault->every_nth);
  EXPECT_DOUBLE_EQ(back.config.control_loss_rate,
                   trace.config.control_loss_rate);
  EXPECT_EQ(back.config.loss_seed, trace.config.loss_seed);
  EXPECT_DOUBLE_EQ(back.config.epoch_interval, trace.config.epoch_interval);
  EXPECT_EQ(back.events, trace.events);
  ASSERT_EQ(back.violations.size(), 1u);
  EXPECT_EQ(back.violations[0].invariant, trace.violations[0].invariant);
  EXPECT_EQ(back.violations[0].detail, trace.violations[0].detail);
}

TEST(Trace, TransitStubTopoNameRoundTrips) {
  TraceArtifact trace;
  trace.config.topo = ChurnTopo::kTransitStub;
  trace.config.topo_seed = 4;
  const std::string text = serialize(trace);
  EXPECT_NE(text.find("topo transit-stub"), std::string::npos);
  EXPECT_EQ(deserialize(text).config.topo, ChurnTopo::kTransitStub);
}

TEST(Trace, FileRoundTripReplaysIdentically) {
  ChurnConfig cfg;
  cfg.num_events = 60;
  cfg.event_seed = 21;
  const ChurnModelChecker checker(cfg);

  TraceArtifact trace;
  trace.config = cfg;
  trace.events = checker.generate();
  const std::string path =
      testing::TempDir() + "/scmp_churn_roundtrip_trace.txt";
  write_trace(path, trace);
  const TraceArtifact back = read_trace(path);
  std::remove(path.c_str());

  EXPECT_EQ(back.events, trace.events);
  const CheckOutcome a = checker.replay(trace.events);
  const CheckOutcome b = ChurnModelChecker(back.config).replay(back.events);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.executed, b.executed);
}

// ---- the comparison protocols under their own self-check -------------------

/// Drives CBT/PIM-SM membership churn and data, then audit_state() at
/// quiescence must be clean (their hard-state symmetry invariants).
template <typename Protocol, typename Setup>
void churn_protocol_and_audit(Setup setup) {
  Rng rng(3);
  topo::Topology topo = topo::arpanet(rng);
  sim::EventQueue queue;
  sim::Network net(topo.graph, queue);
  igmp::IgmpDomain igmp(queue, topo.graph.num_nodes());
  Protocol protocol(net, igmp);
  setup(protocol);

  Rng events(17);
  for (int i = 0; i < 300; ++i) {
    const auto group = static_cast<proto::GroupId>(events.uniform_int(0, 1));
    const auto node = static_cast<graph::NodeId>(
        events.uniform_int(1, topo.graph.num_nodes() - 1));
    const double r = events.uniform01();
    if (r < 0.5) {
      protocol.host_join(node, group);
    } else if (r < 0.8) {
      protocol.host_leave(node, group);
    } else {
      protocol.send_data(node, group);
    }
    queue.run_all();
    std::vector<std::string> violations;
    protocol.audit_state(violations);
    ASSERT_TRUE(violations.empty())
        << "event " << i << ": " << violations.front();
  }
}

TEST(ProtocolSelfCheck, CbtCleanUnderChurn) {
  churn_protocol_and_audit<proto::Cbt>([](proto::Cbt& cbt) {
    cbt.set_core(0, 5);
    cbt.set_core(1, 20);
  });
}

TEST(ProtocolSelfCheck, PimSmCleanUnderChurn) {
  churn_protocol_and_audit<proto::PimSm>([](proto::PimSm& pim) {
    pim.set_rp(0, 5);
    pim.set_rp(1, 20);
  });
}

}  // namespace
}  // namespace scmp::verify
