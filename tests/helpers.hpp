// Shared fixtures for the test suite: the paper's worked-example topologies
// and deterministic random graphs.
#pragma once

#include "graph/graph.hpp"
#include "topo/waxman.hpp"
#include "util/rng.hpp"

namespace scmp::test {

/// The 6-node topology of the paper's Fig. 5 (DCDM worked example).
/// Node 0 is the m-router; members join in the order g1=4, g2=3, g3=5.
/// Edges (delay, cost): 0-1 (3,6), 1-4 (9,3), 1-2 (3,2), 2-3 (4,1),
/// 0-3 (2,6), 0-2 (4,5), 2-5 (7,2).
inline graph::Graph paper_fig5_topology() {
  graph::Graph g(6);
  g.add_edge(0, 1, 3, 6);
  g.add_edge(1, 4, 9, 3);
  g.add_edge(1, 2, 3, 2);
  g.add_edge(2, 3, 4, 1);
  g.add_edge(0, 3, 2, 6);
  g.add_edge(0, 2, 4, 5);
  g.add_edge(2, 5, 7, 2);
  return g;
}

/// A 4-node diamond: 0-1, 0-2, 1-3, 2-3 with distinct delays/costs so the
/// shortest-delay and least-cost paths 0->3 differ (delay prefers 0-1-3,
/// cost prefers 0-2-3).
inline graph::Graph diamond() {
  graph::Graph g(4);
  g.add_edge(0, 1, 1, 10);
  g.add_edge(0, 2, 5, 1);
  g.add_edge(1, 3, 1, 10);
  g.add_edge(2, 3, 5, 1);
  return g;
}

/// A simple path 0-1-2-...-(n-1) with unit delays and costs.
inline graph::Graph line(int n) {
  graph::Graph g(n);
  for (int i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1, 1, 1);
  return g;
}

/// Deterministic connected random topology.
inline topo::Topology random_topology(std::uint64_t seed, int n = 30,
                                      double alpha = 0.25, double beta = 0.3) {
  Rng rng(seed);
  topo::WaxmanConfig cfg;
  cfg.num_nodes = n;
  cfg.alpha = alpha;
  cfg.beta = beta;
  return topo::waxman(cfg, rng);
}

}  // namespace scmp::test
