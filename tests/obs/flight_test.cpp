// Unit tests for the causal flight recorder: ring bounds with drop
// accounting, the causal-scope plumbing, story reconstruction, and golden
// JSONL / Chrome-trace serializations.
#include "obs/flight.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace scmp::obs {
namespace {

FlightRecord make(FlightEventKind kind, double t, std::uint64_t req,
                  std::uint64_t cause, const char* what = "",
                  std::int32_t group = -1, std::int32_t from = -1,
                  std::int32_t to = -1) {
  FlightRecord r;
  r.t = t;
  r.req = req;
  r.cause = cause;
  r.what = what;
  r.kind = kind;
  r.group = group;
  r.from = from;
  r.to = to;
  return r;
}

/// Tests touching the process-wide recorder start cleared-and-enabled and
/// restore the disabled default.
class FlightTest : public ::testing::Test {
 protected:
  void SetUp() override {
    flight().clear();
    set_flight_enabled(true);
  }
  void TearDown() override {
    set_flight_enabled(false);
    flight().clear();
  }
};

TEST(FlightRecorder, RingKeepsNewestAndCountsDropped) {
  FlightRecorder ring(4);
  for (int i = 1; i <= 6; ++i)
    ring.record(make(FlightEventKind::kSend, i, static_cast<std::uint64_t>(i),
                     0, "JOIN"));
  EXPECT_EQ(ring.total_recorded(), 6u);
  EXPECT_EQ(ring.dropped(), 2u);
  const std::vector<FlightRecord> kept = ring.snapshot();
  ASSERT_EQ(kept.size(), 4u);
  // Oldest first, and the two oldest records were overwritten.
  for (std::size_t i = 0; i < kept.size(); ++i)
    EXPECT_EQ(kept[i].req, i + 3);
}

TEST(FlightRecorder, ClearResetsCounters) {
  FlightRecorder ring(2);
  ring.record(make(FlightEventKind::kSend, 1, 1, 0));
  ring.record(make(FlightEventKind::kSend, 2, 2, 0));
  ring.record(make(FlightEventKind::kSend, 3, 3, 0));
  EXPECT_EQ(ring.dropped(), 1u);
  ring.clear();
  EXPECT_EQ(ring.total_recorded(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_TRUE(ring.snapshot().empty());
}

TEST_F(FlightTest, DisabledRecorderIsNoOp) {
  set_flight_enabled(false);
  flight_record(FlightEventKind::kSend, 1.0, 7, "JOIN", 1, 2, 3);
  EXPECT_TRUE(flight().snapshot().empty());
  EXPECT_EQ(flight().total_recorded(), 0u);
}

TEST_F(FlightTest, CauseScopeTagsRecords) {
  flight_record(FlightEventKind::kSend, 0.0, 1, "JOIN", 1, 5, -1);
  {
    FlightCause scope(1);
    EXPECT_EQ(current_cause(), 1u);
    flight_record(FlightEventKind::kSend, 0.1, 2, "BRANCH", 1, 0, 1);
    {
      // A zero req keeps the enclosing cause: nesting a fire-and-forget hop
      // inside a reliable one must not sever the chain.
      FlightCause inner(0);
      EXPECT_EQ(current_cause(), 1u);
    }
    {
      FlightCause inner(2);
      EXPECT_EQ(current_cause(), 2u);
    }
    EXPECT_EQ(current_cause(), 1u);
  }
  EXPECT_EQ(current_cause(), 0u);
  const std::vector<FlightRecord> records = flight().snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].cause, 0u);
  EXPECT_EQ(records[1].cause, 1u);
}

TEST_F(FlightTest, OverflowFeedsDroppedCounter) {
  set_metrics_enabled(true);
  reset_values();
  flight().set_capacity(2);
  for (int i = 1; i <= 5; ++i)
    flight_record(FlightEventKind::kSend, i, static_cast<std::uint64_t>(i),
                  "JOIN", 1, 0, 1);
  EXPECT_EQ(flight().dropped(), 3u);
  EXPECT_EQ(counter("obs.flight.dropped").value(), 3u);
  set_metrics_enabled(false);
  flight().set_capacity(FlightRecorder::kDefaultCapacity);
}

TEST(FlightStory, WalksTransitiveCauseChain) {
  const std::vector<FlightRecord> records = {
      make(FlightEventKind::kSend, 0.0, 1, 0, "JOIN"),
      make(FlightEventKind::kHandle, 0.1, 1, 1, "JOIN"),
      make(FlightEventKind::kSend, 0.1, 2, 1, "BRANCH"),
      make(FlightEventKind::kSend, 0.2, 9, 0, "JOIN"),  // unrelated root
      make(FlightEventKind::kInstalled, 0.3, 3, 2, "BRANCH"),
      make(FlightEventKind::kAck, 0.4, 0, 2, ""),  // fire-and-forget member
      make(FlightEventKind::kAck, 0.5, 0, 9, ""),  // ...of the other chain
  };
  const std::vector<FlightRecord> story = story_of(records, 1);
  ASSERT_EQ(story.size(), 5u);
  EXPECT_EQ(story[0].req, 1u);
  EXPECT_EQ(story[2].req, 2u);
  EXPECT_EQ(story[3].req, 3u);
  EXPECT_EQ(story[4].req, 0u);  // the ack caused by req 2
  EXPECT_TRUE(story_of(records, 0).empty());
}

TEST(FlightStory, FixpointHandlesOutOfOrderCauseDiscovery) {
  // Request 5's record appears before request 4's, yet 5 is caused by 4
  // which is caused by the root — one forward pass would miss 5.
  const std::vector<FlightRecord> records = {
      make(FlightEventKind::kSend, 0.0, 1, 0, "JOIN"),
      make(FlightEventKind::kSend, 0.1, 5, 4, "BRANCH"),
      make(FlightEventKind::kSend, 0.2, 4, 1, "BRANCH"),
  };
  const std::vector<FlightRecord> story = story_of(records, 1);
  ASSERT_EQ(story.size(), 3u);
  EXPECT_EQ(story[1].req, 5u);
  EXPECT_EQ(story[2].req, 4u);
}

TEST(FlightExport, JsonlGolden) {
  const std::vector<FlightRecord> records = {
      make(FlightEventKind::kSend, 0.5, 1, 0, "JOIN", 1, 27, -1),
      make(FlightEventKind::kInstalled, 0.75, 2, 1, "BRANCH", 1, 0, 1),
  };
  std::ostringstream out;
  write_flight_jsonl(out, records);
  EXPECT_EQ(out.str(),
            "{\"t\":0.5,\"kind\":\"send\",\"req\":1,\"cause\":0,"
            "\"what\":\"JOIN\",\"group\":1,\"from\":27,\"to\":-1}\n"
            "{\"t\":0.75,\"kind\":\"installed\",\"req\":2,\"cause\":1,"
            "\"what\":\"BRANCH\",\"group\":1,\"from\":0,\"to\":1}\n");
}

TEST(FlightExport, ChromeTraceHasMetadataSlicesAndFlow) {
  const std::vector<FlightRecord> records = {
      make(FlightEventKind::kSend, 0.001, 1, 0, "JOIN", 1, 27, -1),
      make(FlightEventKind::kInstalled, 0.002, 2, 1, "BRANCH", 1, 0, 1),
  };
  std::ostringstream out;
  write_flight_chrome(out, records);
  const std::string trace = out.str();
  EXPECT_NE(trace.find("\"args\":{\"name\":\"scmp flight\"}"),
            std::string::npos);
  EXPECT_NE(trace.find("\"args\":{\"name\":\"control-plane\"}"),
            std::string::npos);
  EXPECT_NE(trace.find("{\"name\":\"send\",\"cat\":\"scmp\",\"ph\":\"X\","
                       "\"ts\":1000.000"),
            std::string::npos);
  // The two records form one causal chain rooted at req 1: a flow start at
  // the JOIN and a flow finish at the install, both bound to id 1.
  EXPECT_NE(trace.find("\"ph\":\"s\",\"ts\":1000.000,\"pid\":1,\"tid\":0,"
                       "\"id\":1"),
            std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"f\",\"ts\":2000.000,\"pid\":1,\"tid\":0,"
                       "\"id\":1,\"bp\":\"e\""),
            std::string::npos);
}

}  // namespace
}  // namespace scmp::obs
