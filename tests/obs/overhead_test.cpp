// Overhead guard for the "instrumentation stays in permanently" promise:
// with metrics and tracing both off, OBS_SPAN and counter updates must not
// touch the heap, and the instrumented DCDM hot path must allocate exactly
// as much as an identical uninstrumented-equivalent run (i.e. the obs layer
// adds zero allocations). Global operator new/delete are replaced with
// counting versions — crude but exact.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/dcdm.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "sim/event_queue.hpp"
#include "helpers.hpp"

namespace {
std::atomic<std::uint64_t> g_news{0};
}  // namespace

void* operator new(std::size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace scmp::obs {
namespace {

std::uint64_t alloc_count() {
  return g_news.load(std::memory_order_relaxed);
}

TEST(Overhead, DisabledInstrumentationNeverAllocates) {
  set_metrics_enabled(false);
  set_tracing_enabled(false);
  // Warm up: the one-time registrations in the function-local statics are
  // the only allocations the pattern is allowed.
  static Counter& warm_counter = counter("test.overhead.counter");
  static Histogram& warm_hist = histogram("test.overhead.hist");
  { OBS_SPAN("test.overhead.span"); }
  warm_counter.inc();
  warm_hist.observe(1.0);

  const std::uint64_t before = alloc_count();
  for (int i = 0; i < 100000; ++i) {
    OBS_SPAN("test.overhead.span");
    warm_counter.inc();
    warm_hist.observe(1.0);
  }
  EXPECT_EQ(alloc_count(), before);
}

TEST(Overhead, DcdmHotPathAllocStableWithMetricsOff) {
  set_metrics_enabled(false);
  set_tracing_enabled(false);
  const graph::Graph g = test::random_topology(11).graph;
  const graph::AllPairsPaths paths(g);

  auto run = [&] {
    core::DcdmTree tree(g, paths, 0);
    for (graph::NodeId v = 1; v < g.num_nodes(); v += 2) tree.join(v);
    for (graph::NodeId v = 1; v < g.num_nodes(); v += 4) tree.leave(v);
  };

  run();  // warm up one-time statics (span tls, cached metric registrations)
  const std::uint64_t before = alloc_count();
  run();
  const std::uint64_t per_run = alloc_count() - before;
  run();
  // Identical runs must allocate identically: the obs layer contributes no
  // per-operation heap traffic when disabled.
  EXPECT_EQ(alloc_count() - before - per_run, per_run);
}

TEST(Overhead, EventPathAllocFreeWithMetricsOff) {
  set_metrics_enabled(false);
  set_tracing_enabled(false);
  sim::EventQueue q;
  auto round = [&q] {
    for (int i = 0; i < 512; ++i)
      q.schedule_in(static_cast<double>(i % 13), [] {});
    q.run_all();
  };
  // Warm up: slab allocation, calendar growth and the staging vectors'
  // capacity all happen in the first rounds and then stabilise.
  for (int r = 0; r < 3; ++r) round();
  const std::uint64_t before = alloc_count();
  for (int r = 0; r < 10; ++r) round();
  // Steady state: schedule_at/run_next recycle pooled event nodes and store
  // handlers inline — the event path makes zero heap allocations.
  EXPECT_EQ(alloc_count(), before);
}

}  // namespace
}  // namespace scmp::obs
