// Golden-file tests for the exporters, using the pure overloads with
// hand-built samples so the expected text is exact and deterministic.
#include "obs/export.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

namespace scmp::obs {
namespace {

MetricSample make_counter(const char* name, double value,
                          const char* tag = "") {
  MetricSample s;
  s.name = name;
  s.tag = tag;
  s.kind = MetricKind::kCounter;
  s.value = value;
  return s;
}

TEST(ExportPrometheus, CounterAndGauge) {
  MetricSample g;
  g.name = "wfq.pending";
  g.kind = MetricKind::kGauge;
  g.value = 2.5;
  std::ostringstream out;
  write_prometheus(out, {make_counter("scmp.joins", 3), g});
  EXPECT_EQ(out.str(),
            "# TYPE scmp_scmp_joins_total counter\n"
            "scmp_scmp_joins_total 3\n"
            "# TYPE scmp_wfq_pending gauge\n"
            "scmp_wfq_pending 2.5\n");
}

TEST(ExportPrometheus, TaggedSeriesShareOneTypeLine) {
  std::ostringstream out;
  write_prometheus(out, {make_counter("net.tx.packets", 10, "BRANCH"),
                         make_counter("net.tx.packets", 7, "DATA")});
  EXPECT_EQ(out.str(),
            "# TYPE scmp_net_tx_packets_total counter\n"
            "scmp_net_tx_packets_total{tag=\"BRANCH\"} 10\n"
            "scmp_net_tx_packets_total{tag=\"DATA\"} 7\n");
}

TEST(ExportPrometheus, HistogramAsSummary) {
  MetricSample h;
  h.name = "wfq.queue_delay.seconds";
  h.kind = MetricKind::kHistogram;
  h.count = 4;
  h.sum = 0.5;
  h.p50 = 0.1;
  h.p95 = 0.2;
  h.p99 = 0.25;
  std::ostringstream out;
  write_prometheus(out, {h});
  EXPECT_EQ(out.str(),
            "# TYPE scmp_wfq_queue_delay_seconds summary\n"
            "scmp_wfq_queue_delay_seconds{quantile=\"0.5\"} 0.1\n"
            "scmp_wfq_queue_delay_seconds{quantile=\"0.95\"} 0.2\n"
            "scmp_wfq_queue_delay_seconds{quantile=\"0.99\"} 0.25\n"
            "scmp_wfq_queue_delay_seconds_sum 0.5\n"
            "scmp_wfq_queue_delay_seconds_count 4\n");
}

TEST(ExportSpansJsonl, OneObjectPerLine) {
  std::vector<SpanRecord> spans(2);
  spans[0].name = "dcdm.join";
  spans[0].start_ns = 100;
  spans[0].dur_ns = 40;
  spans[0].tid = 0;
  spans[0].depth = 1;
  spans[1].name = "scmp.install.branch";
  spans[1].start_ns = 110;
  spans[1].dur_ns = 5;
  spans[1].tid = 2;
  spans[1].depth = 2;
  std::ostringstream out;
  write_spans_jsonl(out, spans);
  EXPECT_EQ(out.str(),
            "{\"name\":\"dcdm.join\",\"start_ns\":100,\"dur_ns\":40,"
            "\"tid\":0,\"depth\":1}\n"
            "{\"name\":\"scmp.install.branch\",\"start_ns\":110,"
            "\"dur_ns\":5,\"tid\":2,\"depth\":2}\n");
}

TEST(ExportChromeTrace, CompleteEventsMicroseconds) {
  std::vector<SpanRecord> spans(1);
  spans[0].name = "fabric.configure";
  spans[0].start_ns = 1500;   // 1.5 us
  spans[0].dur_ns = 250000;   // 250 us
  spans[0].tid = 3;
  spans[0].depth = 1;
  std::ostringstream out;
  write_chrome_trace(out, spans);
  EXPECT_EQ(out.str(),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
            "\"args\":{\"name\":\"scmp\"}},\n"
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":3,"
            "\"args\":{\"name\":\"worker-3\"}},\n"
            "{\"name\":\"fabric.configure\",\"cat\":\"scmp\",\"ph\":\"X\","
            "\"ts\":1.500,\"dur\":250.000,\"pid\":1,\"tid\":3}\n"
            "]}\n");
}

TEST(ExportChromeTrace, MainThreadTrackIsNamedMain) {
  std::vector<SpanRecord> spans(1);
  spans[0].name = "verify.audit";
  spans[0].start_ns = 0;
  spans[0].dur_ns = 1000;
  spans[0].tid = 0;
  spans[0].depth = 1;
  std::ostringstream out;
  write_chrome_trace(out, spans);
  EXPECT_NE(out.str().find("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                           "\"tid\":0,\"args\":{\"name\":\"main\"}}"),
            std::string::npos);
}

TEST(ExportChromeTrace, EmptyIsStillValidJson) {
  std::ostringstream out;
  write_chrome_trace(out, {});
  EXPECT_EQ(out.str(),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
            "\"args\":{\"name\":\"scmp\"}}\n"
            "]}\n");
}

}  // namespace
}  // namespace scmp::obs
