// Concurrency stress for the metrics registry and span sink — meaningful
// under ThreadSanitizer (the tsan CI job runs the whole test suite): writer
// threads hammer counters/gauges/histograms and spans while others register
// new series and take snapshots.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace scmp::obs {
namespace {

TEST(MetricsRace, ConcurrentUpdateRegisterSnapshot) {
  set_metrics_enabled(true);
  set_tracing_enabled(true);
  reset_values();
  span_sink().clear();

  constexpr int kWriters = 4;
  constexpr int kIters = 2000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;

  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([w] {
      Counter& c = counter("test.race.counter");
      Gauge& g = gauge("test.race.gauge");
      Histogram& h = histogram("test.race.hist");
      for (int i = 0; i < kIters; ++i) {
        OBS_SPAN("test.race.span");
        c.inc();
        g.set(static_cast<double>(w * kIters + i));
        h.observe(static_cast<double>(i % 100) + 0.5);
      }
    });
  }
  // Churn registrations of fresh series while the writers run.
  threads.emplace_back([] {
    for (int i = 0; i < 200; ++i)
      counter("test.race.fresh", std::to_string(i)).inc();
  });
  // Snapshot and export continuously until the writers finish.
  std::thread reader([&stop] {
    while (!stop.load(std::memory_order_acquire)) {
      const auto samples = snapshot();
      EXPECT_FALSE(samples.empty());
      std::ostringstream sink;
      write_prometheus(sink, samples);
      (void)span_sink().snapshot();
    }
  });

  for (auto& t : threads) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(counter("test.race.counter").value(),
            static_cast<std::uint64_t>(kWriters) * kIters);
  EXPECT_EQ(histogram("test.race.hist").count(),
            static_cast<std::uint64_t>(kWriters) * kIters);
  EXPECT_EQ(span_sink().total_recorded(),
            static_cast<std::uint64_t>(kWriters) * kIters);

  set_tracing_enabled(false);
  set_metrics_enabled(false);
  span_sink().clear();
}

}  // namespace
}  // namespace scmp::obs
