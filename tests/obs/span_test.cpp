#include "obs/span.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace scmp::obs {
namespace {

/// Spans record into the process-wide sink; each test starts from a cleared
/// sink with tracing on and metrics off, and restores both switches.
class SpanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_tracing_enabled(true);
    set_metrics_enabled(false);
    span_sink().clear();
  }
  void TearDown() override {
    set_tracing_enabled(false);
    span_sink().clear();
  }
};

TEST_F(SpanTest, RecordsScopeWithDuration) {
  {
    OBS_SPAN("test.span.basic");
  }
  const auto spans = span_sink().snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "test.span.basic");
  EXPECT_EQ(spans[0].depth, 1u);
  EXPECT_GE(spans[0].start_ns + spans[0].dur_ns, spans[0].start_ns);
}

TEST_F(SpanTest, NestingDepthAndCompletionOrder) {
  {
    OBS_SPAN("test.span.outer");
    {
      OBS_SPAN("test.span.inner");
      { OBS_SPAN("test.span.innermost"); }
    }
  }
  const auto spans = span_sink().snapshot();
  ASSERT_EQ(spans.size(), 3u);
  // Spans record on destruction, so the innermost completes first.
  EXPECT_STREQ(spans[0].name, "test.span.innermost");
  EXPECT_EQ(spans[0].depth, 3u);
  EXPECT_STREQ(spans[1].name, "test.span.inner");
  EXPECT_EQ(spans[1].depth, 2u);
  EXPECT_STREQ(spans[2].name, "test.span.outer");
  EXPECT_EQ(spans[2].depth, 1u);
  // The outer span encloses the inner ones in time.
  EXPECT_LE(spans[2].start_ns, spans[0].start_ns);
  EXPECT_GE(spans[2].start_ns + spans[2].dur_ns,
            spans[0].start_ns + spans[0].dur_ns);
}

TEST_F(SpanTest, DepthResetsBetweenTopLevelSpans) {
  { OBS_SPAN("test.span.first"); }
  { OBS_SPAN("test.span.second"); }
  const auto spans = span_sink().snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].depth, 1u);
  EXPECT_EQ(spans[1].depth, 1u);
}

TEST_F(SpanTest, RingBufferWrapsKeepingNewest) {
  span_sink().set_capacity(8);
  for (int i = 0; i < 20; ++i) {
    OBS_SPAN("test.span.wrap");
  }
  EXPECT_EQ(span_sink().total_recorded(), 20u);
  const auto spans = span_sink().snapshot();
  ASSERT_EQ(spans.size(), 8u);
  // Oldest first, and the retained records are the 8 newest: start times
  // must be non-decreasing and the last one the most recent overall.
  for (std::size_t i = 1; i < spans.size(); ++i)
    EXPECT_GE(spans[i].start_ns, spans[i - 1].start_ns);
  span_sink().set_capacity(SpanSink::kDefaultCapacity);
}

TEST_F(SpanTest, DisabledSpanRecordsNothing) {
  set_tracing_enabled(false);
  { OBS_SPAN("test.span.off"); }
  EXPECT_TRUE(span_sink().snapshot().empty());
  EXPECT_EQ(span_sink().total_recorded(), 0u);
}

TEST_F(SpanTest, MetricsOnlyModeFeedsHistogramNotSink) {
  set_tracing_enabled(false);
  set_metrics_enabled(true);
  reset_values();
  { OBS_SPAN("test.span.metrics_only"); }
  EXPECT_TRUE(span_sink().snapshot().empty());
  EXPECT_EQ(span_stats("test.span.metrics_only").count(), 1u);
  set_metrics_enabled(false);
}

TEST_F(SpanTest, WrapCountsDroppedAndFeedsCounter) {
  set_metrics_enabled(true);
  reset_values();
  span_sink().set_capacity(4);
  for (int i = 0; i < 10; ++i) {
    OBS_SPAN("test.span.dropped");
  }
  // 10 recorded into 4 slots: 6 overwritten, surfaced both through the
  // sink accessor and the obs.spans.dropped counter.
  EXPECT_EQ(span_sink().total_recorded(), 10u);
  EXPECT_EQ(span_sink().dropped(), 6u);
  EXPECT_EQ(counter("obs.spans.dropped").value(), 6u);
  span_sink().clear();
  EXPECT_EQ(span_sink().dropped(), 0u);
  span_sink().set_capacity(SpanSink::kDefaultCapacity);
  set_metrics_enabled(false);
}

TEST_F(SpanTest, ThreadsGetDistinctSmallTids) {
  { OBS_SPAN("test.span.main_thread"); }
  std::thread t([] { OBS_SPAN("test.span.worker"); });
  t.join();
  const auto spans = span_sink().snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_NE(spans[0].tid, spans[1].tid);
  // Sequential ids stay small, unlike std::thread::id hashes.
  EXPECT_LT(spans[0].tid, 1024u);
  EXPECT_LT(spans[1].tid, 1024u);
}

}  // namespace
}  // namespace scmp::obs
