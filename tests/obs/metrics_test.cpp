#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace scmp::obs {
namespace {

/// Every test runs with metrics on and a zeroed registry; the registry is
/// process-wide, so names are namespaced per test where identity matters.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_metrics_enabled(true);
    reset_values();
  }
  void TearDown() override { set_metrics_enabled(false); }
};

TEST_F(MetricsTest, CounterIncrements) {
  Counter& c = counter("test.metrics.counter");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST_F(MetricsTest, DisabledCounterIsInert) {
  Counter& c = counter("test.metrics.disabled");
  set_metrics_enabled(false);
  c.inc(100);
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(MetricsTest, RegistrationIsIdempotent) {
  Counter& a = counter("test.metrics.same");
  Counter& b = counter("test.metrics.same");
  EXPECT_EQ(&a, &b);
  // Distinct tags are distinct series.
  Counter& t1 = counter("test.metrics.tagged", "A");
  Counter& t2 = counter("test.metrics.tagged", "B");
  EXPECT_NE(&t1, &t2);
}

TEST_F(MetricsTest, GaugeLastWriteWins) {
  Gauge& g = gauge("test.metrics.gauge");
  g.set(3.0);
  g.set(-1.5);
  EXPECT_DOUBLE_EQ(g.value(), -1.5);
}

TEST_F(MetricsTest, HistogramQuantiles) {
  Histogram& h = histogram("test.metrics.hist");
  for (int i = 1; i <= 1000; ++i) h.observe(static_cast<double>(i));
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_NEAR(h.sum(), 500500.0, 1e-6);
  EXPECT_NEAR(h.quantile(0.5), 500.0, 500.0 * 0.06);
  EXPECT_NEAR(h.quantile(0.99), 990.0, 990.0 * 0.06);
}

TEST_F(MetricsTest, HistogramUnderAndOverflow) {
  Histogram& h = histogram("test.metrics.hist.edges");
  h.observe(0.0);
  h.observe(-5.0);
  h.observe(1e300);
  EXPECT_EQ(h.count(), 3u);
  // Quantiles stay finite: underflow reports 0, overflow the range cap.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_TRUE(std::isfinite(h.quantile(1.0)));
}

TEST_F(MetricsTest, SnapshotIsSortedAndComplete) {
  counter("test.metrics.snap.b").inc(2);
  counter("test.metrics.snap.a").inc(1);
  histogram("test.metrics.snap.h").observe(0.25);
  const auto samples = snapshot();
  ASSERT_FALSE(samples.empty());
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_LE(std::make_pair(samples[i - 1].name, samples[i - 1].tag),
              std::make_pair(samples[i].name, samples[i].tag));
  }
  bool saw_a = false, saw_h = false;
  for (const MetricSample& s : samples) {
    if (s.name == "test.metrics.snap.a") {
      saw_a = true;
      EXPECT_EQ(s.kind, MetricKind::kCounter);
      EXPECT_DOUBLE_EQ(s.value, 1.0);
    }
    if (s.name == "test.metrics.snap.h") {
      saw_h = true;
      EXPECT_EQ(s.kind, MetricKind::kHistogram);
      EXPECT_EQ(s.count, 1u);
      EXPECT_DOUBLE_EQ(s.sum, 0.25);
    }
  }
  EXPECT_TRUE(saw_a);
  EXPECT_TRUE(saw_h);
}

TEST_F(MetricsTest, ResetValuesKeepsReferencesValid) {
  Counter& c = counter("test.metrics.reset");
  c.inc(7);
  reset_values();
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  EXPECT_EQ(c.value(), 1u);
  EXPECT_EQ(&c, &counter("test.metrics.reset"));
}

TEST_F(MetricsTest, SpanStatsNaming) {
  Histogram& h = span_stats("test.metrics.spanny");
  h.observe(1.0);
  bool found = false;
  for (const MetricSample& s : snapshot()) {
    if (s.name == "span.test.metrics.spanny.seconds") found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace scmp::obs
