// Unit tests for the deterministic time-series sampler: per-window counter
// deltas, sparse emission, run partitioning, span-stat exclusion, and the
// golden scmp-timeseries-v1 serialization.
#include "obs/timeseries.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace scmp::obs {
namespace {

/// Each test samples the process-wide registry through its own sampler,
/// starting from zeroed metric values (registrations persist across tests
/// in this binary; zero values are omitted from windows, so leftovers from
/// other suites cannot leak in).
class TimeseriesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_metrics_enabled(true);
    reset_values();
    sampler_.set_enabled(true);
  }
  void TearDown() override {
    reset_values();
    set_metrics_enabled(false);
  }
  TimeseriesSampler sampler_;
};

TEST_F(TimeseriesTest, WindowsHoldCounterDeltasNotTotals) {
  Counter& c = counter("test.ts.joins");
  c.inc(3);
  sampler_.maybe_sample(1.0);
  c.inc(2);
  sampler_.maybe_sample(2.0);
  const std::vector<TimeseriesSampler::Window> windows = sampler_.windows();
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_DOUBLE_EQ(windows[0].t, 1.0);
  EXPECT_DOUBLE_EQ(windows[0].counters.at("test.ts.joins"), 3.0);
  EXPECT_DOUBLE_EQ(windows[1].counters.at("test.ts.joins"), 2.0);
}

TEST_F(TimeseriesTest, EmissionIsSparse) {
  counter("test.ts.burst").inc(5);
  // One call crossing four boundaries: only the first window (holding the
  // delta) is emitted; the three idle windows are skipped entirely.
  sampler_.maybe_sample(4.5);
  const std::vector<TimeseriesSampler::Window> windows = sampler_.windows();
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_DOUBLE_EQ(windows[0].t, 1.0);
  // A window's counter map omits series that did not move.
  counter("test.ts.other").inc(1);
  sampler_.maybe_sample(5.0);
  ASSERT_EQ(sampler_.windows().size(), 2u);
  EXPECT_EQ(sampler_.windows()[1].counters.count("test.ts.burst"), 0u);
}

TEST_F(TimeseriesTest, DisabledSamplerEmitsNothing) {
  sampler_.set_enabled(false);
  counter("test.ts.off").inc(1);
  sampler_.maybe_sample(10.0);
  EXPECT_TRUE(sampler_.windows().empty());
}

TEST_F(TimeseriesTest, GaugesAndHistogramsAppearWhenLive) {
  gauge("test.ts.pending").set(2.5);
  histogram("test.ts.latency").observe(0.5);
  sampler_.maybe_sample(1.0);
  // The histogram did not move in window two: it is omitted; the gauge is a
  // level, not a delta, so it reappears while nonzero.
  sampler_.maybe_sample(2.0);
  const std::vector<TimeseriesSampler::Window> windows = sampler_.windows();
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_DOUBLE_EQ(windows[0].gauges.at("test.ts.pending"), 2.5);
  const TimeseriesSampler::HistEntry& h =
      windows[0].histograms.at("test.ts.latency");
  EXPECT_EQ(h.count, 1u);
  EXPECT_EQ(h.delta, 1u);
  EXPECT_GT(h.p50, 0.0);
  EXPECT_EQ(windows[1].histograms.count("test.ts.latency"), 0u);
  EXPECT_DOUBLE_EQ(windows[1].gauges.at("test.ts.pending"), 2.5);
}

TEST_F(TimeseriesTest, SpanStatsExcludedByDefault) {
  histogram("span.test_ts.seconds").observe(0.25);
  counter("test.ts.tick").inc(1);
  sampler_.maybe_sample(1.0);
  ASSERT_EQ(sampler_.windows().size(), 1u);
  EXPECT_EQ(sampler_.windows()[0].histograms.count("span.test_ts.seconds"),
            0u);

  TimeseriesSampler with_spans;
  with_spans.set_enabled(true);
  with_spans.set_include_span_stats(true);
  histogram("span.test_ts.seconds").observe(0.25);
  with_spans.maybe_sample(1.0);
  ASSERT_EQ(with_spans.windows().size(), 1u);
  EXPECT_EQ(
      with_spans.windows()[0].histograms.count("span.test_ts.seconds"), 1u);
}

TEST_F(TimeseriesTest, BeginRunPartitionsAndRebasesClock) {
  // begin_run before any window is sampled keeps run 0 (fresh processes
  // call it once up front).
  sampler_.begin_run();
  counter("test.ts.run").inc(1);
  sampler_.maybe_sample(3.0);
  sampler_.begin_run();
  counter("test.ts.run").inc(4);
  sampler_.maybe_sample(1.0);  // rebased: t=1 is a fresh boundary
  const std::vector<TimeseriesSampler::Window> windows = sampler_.windows();
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].run, 0);
  EXPECT_DOUBLE_EQ(windows[0].t, 1.0);
  EXPECT_EQ(windows[1].run, 1);
  EXPECT_DOUBLE_EQ(windows[1].t, 1.0);
  EXPECT_DOUBLE_EQ(windows[1].counters.at("test.ts.run"), 4.0);
}

TEST_F(TimeseriesTest, SerializeGolden) {
  sampler_.set_interval(0.5);
  counter("test.ts.golden").inc(3);
  gauge("test.ts.depth").set(2.5);
  histogram("test.ts.wait").observe(1.0);
  histogram("test.ts.wait").observe(1.0);
  sampler_.maybe_sample(0.5);
  const double q = histogram("test.ts.wait").quantile(0.5);
  char want[512];
  std::snprintf(
      want, sizeof(want),
      "{\"schema\":\"scmp-timeseries-v1\",\"interval\":0.5}\n"
      "{\"run\":0,\"t\":0.5,\"counters\":{\"test.ts.golden\":3},"
      "\"gauges\":{\"test.ts.depth\":2.5},"
      "\"histograms\":{\"test.ts.wait\":{\"count\":2,\"delta\":2,"
      "\"p50\":%.9g,\"p95\":%.9g,\"p99\":%.9g}}}\n",
      q, q, q);
  EXPECT_EQ(sampler_.serialize(), want);
}

TEST_F(TimeseriesTest, ResetDropsWindowsAndBaselines) {
  counter("test.ts.reset").inc(2);
  sampler_.maybe_sample(1.0);
  sampler_.reset();
  EXPECT_TRUE(sampler_.windows().empty());
  // Baselines cleared: the next window sees the counter's absolute value.
  sampler_.maybe_sample(1.0);
  ASSERT_EQ(sampler_.windows().size(), 1u);
  EXPECT_EQ(sampler_.windows()[0].run, 0);
  EXPECT_DOUBLE_EQ(sampler_.windows()[0].counters.at("test.ts.reset"), 2.0);
}

}  // namespace
}  // namespace scmp::obs
