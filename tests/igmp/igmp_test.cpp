#include "igmp/igmp.hpp"

#include <gtest/gtest.h>

namespace scmp::igmp {
namespace {

struct RecordingListener final : MembershipListener {
  struct Event {
    bool joined;
    graph::NodeId router;
    GroupId group;
    int iface;
    bool edge_flag;  // first_iface / last_iface
  };
  std::vector<Event> events;

  void interface_joined(graph::NodeId router, GroupId group, int iface,
                        bool first_iface) override {
    events.push_back({true, router, group, iface, first_iface});
  }
  void interface_left(graph::NodeId router, GroupId group, int iface,
                      bool last_iface) override {
    events.push_back({false, router, group, iface, last_iface});
  }
};

class IgmpTest : public ::testing::Test {
 protected:
  IgmpTest() : domain_(queue_, 5) { domain_.set_listener(&listener_); }
  sim::EventQueue queue_;
  IgmpDomain domain_;
  RecordingListener listener_;
};

TEST_F(IgmpTest, FirstHostTriggersFirstIface) {
  domain_.host_join(1, 0, 100, 7);
  ASSERT_EQ(listener_.events.size(), 1u);
  EXPECT_TRUE(listener_.events[0].joined);
  EXPECT_TRUE(listener_.events[0].edge_flag);
  EXPECT_TRUE(domain_.router_is_member(1, 7));
}

TEST_F(IgmpTest, SecondHostSameIfaceIsSilent) {
  domain_.host_join(1, 0, 100, 7);
  domain_.host_join(1, 0, 101, 7);
  EXPECT_EQ(listener_.events.size(), 1u);
  EXPECT_EQ(domain_.host_count(1, 7), 2);
}

TEST_F(IgmpTest, SecondIfaceIsNotFirst) {
  domain_.host_join(1, 0, 100, 7);
  domain_.host_join(1, 1, 200, 7);
  ASSERT_EQ(listener_.events.size(), 2u);
  EXPECT_FALSE(listener_.events[1].edge_flag);
  EXPECT_EQ(domain_.member_ifaces(1, 7), (std::vector<int>{0, 1}));
}

TEST_F(IgmpTest, DuplicateJoinIgnored) {
  domain_.host_join(1, 0, 100, 7);
  domain_.host_join(1, 0, 100, 7);
  EXPECT_EQ(listener_.events.size(), 1u);
  EXPECT_EQ(domain_.host_count(1, 7), 1);
}

TEST_F(IgmpTest, LastHostTriggersLastIface) {
  domain_.host_join(1, 0, 100, 7);
  domain_.host_leave(1, 0, 100, 7);
  ASSERT_EQ(listener_.events.size(), 2u);
  EXPECT_FALSE(listener_.events[1].joined);
  EXPECT_TRUE(listener_.events[1].edge_flag);
  EXPECT_FALSE(domain_.router_is_member(1, 7));
}

TEST_F(IgmpTest, LeaveWithRemainingIfaceNotLast) {
  domain_.host_join(1, 0, 100, 7);
  domain_.host_join(1, 1, 200, 7);
  domain_.host_leave(1, 0, 100, 7);
  ASSERT_EQ(listener_.events.size(), 3u);
  EXPECT_FALSE(listener_.events[2].edge_flag);
  EXPECT_TRUE(domain_.router_is_member(1, 7));
}

TEST_F(IgmpTest, LeaveWithRemainingHostIsSilent) {
  domain_.host_join(1, 0, 100, 7);
  domain_.host_join(1, 0, 101, 7);
  domain_.host_leave(1, 0, 100, 7);
  EXPECT_EQ(listener_.events.size(), 1u);  // only the original join
}

TEST_F(IgmpTest, LeaveOfUnknownHostIgnored) {
  domain_.host_leave(1, 0, 100, 7);
  EXPECT_TRUE(listener_.events.empty());
  EXPECT_EQ(domain_.igmp_message_count(), 0u);
}

TEST_F(IgmpTest, GroupsAreIndependent) {
  domain_.host_join(1, 0, 100, 7);
  domain_.host_join(1, 0, 100, 8);
  EXPECT_EQ(listener_.events.size(), 2u);
  EXPECT_TRUE(domain_.router_is_member(1, 7));
  EXPECT_TRUE(domain_.router_is_member(1, 8));
  domain_.host_leave(1, 0, 100, 7);
  EXPECT_FALSE(domain_.router_is_member(1, 7));
  EXPECT_TRUE(domain_.router_is_member(1, 8));
}

TEST_F(IgmpTest, MemberRouters) {
  domain_.host_join(1, 0, 100, 7);
  domain_.host_join(3, 0, 200, 7);
  EXPECT_EQ(domain_.member_routers(7), (std::vector<graph::NodeId>{1, 3}));
}

TEST_F(IgmpTest, MessageCounting) {
  domain_.host_join(1, 0, 100, 7);   // 1 report
  domain_.host_join(1, 0, 101, 7);   // 1 report
  domain_.host_leave(1, 0, 100, 7);  // 1 leave
  EXPECT_EQ(domain_.igmp_message_count(), 3u);
}

TEST_F(IgmpTest, QueryCycleCountsQueriesAndReports) {
  domain_.host_join(1, 0, 100, 7);
  domain_.host_join(1, 1, 101, 7);
  const auto before = domain_.igmp_message_count();
  domain_.start_query_cycle(1.0, 3.5);
  queue_.run_all();
  // 3 query rounds; each: 1 query + 2 suppressed reports (two ifaces).
  EXPECT_EQ(domain_.igmp_message_count(), before + 3 * 3);
}

TEST_F(IgmpTest, QueryCycleSkipsMemberlessRouters) {
  domain_.start_query_cycle(1.0, 5.0);
  queue_.run_all();
  EXPECT_EQ(domain_.igmp_message_count(), 0u);
}

TEST_F(IgmpTest, ListenerDetachable) {
  domain_.set_listener(nullptr);
  domain_.host_join(1, 0, 100, 7);  // must not crash
  EXPECT_TRUE(domain_.router_is_member(1, 7));
}

// --- Soft-state expiry (failure injection: silently dead hosts) ---

TEST_F(IgmpTest, CrashedHostExpiresAfterHoldtime) {
  domain_.enable_soft_state(/*holdtime=*/2.0);
  domain_.host_join(1, 0, 100, 7);
  domain_.host_crash(1, 0, 100);
  domain_.start_query_cycle(1.0, 10.0);
  queue_.run_until(1.5);  // first tick: crash too recent
  EXPECT_TRUE(domain_.router_is_member(1, 7));
  queue_.run_until(3.5);  // holdtime elapsed by the t=3 tick
  EXPECT_FALSE(domain_.router_is_member(1, 7));
  // The expiry fired the listener's leave transition.
  ASSERT_FALSE(listener_.events.empty());
  EXPECT_FALSE(listener_.events.back().joined);
  EXPECT_TRUE(listener_.events.back().edge_flag);
}

TEST_F(IgmpTest, ExpirySendsNoLeaveMessage) {
  domain_.enable_soft_state(1.5);
  domain_.host_join(1, 0, 100, 7);  // 1 report
  const auto after_join = domain_.igmp_message_count();
  domain_.host_crash(1, 0, 100);
  domain_.start_query_cycle(1.0, 3.5);
  queue_.run_all();
  EXPECT_FALSE(domain_.router_is_member(1, 7));
  // The t=1 tick queried (host not yet expired, and a crashed host sends no
  // Report); the t=2 tick expired it, after which the router has no state.
  // No IGMP Leave is ever counted.
  EXPECT_EQ(domain_.igmp_message_count(), after_join + 1);
}

TEST_F(IgmpTest, LiveHostsKeepCrashedHostsGroupAlive) {
  domain_.enable_soft_state(1.0);
  domain_.host_join(1, 0, 100, 7);
  domain_.host_join(1, 0, 101, 7);  // second, live host
  domain_.host_crash(1, 0, 100);
  domain_.start_query_cycle(1.0, 5.0);
  queue_.run_all();
  EXPECT_TRUE(domain_.router_is_member(1, 7));  // 101 keeps it alive
  EXPECT_EQ(domain_.host_count(1, 7), 1);       // but 100 expired
}

TEST_F(IgmpTest, CrashExpiresMembershipInAllGroups) {
  domain_.enable_soft_state(1.0);
  domain_.host_join(1, 0, 100, 7);
  domain_.host_join(1, 0, 100, 8);
  domain_.host_crash(1, 0, 100);
  domain_.start_query_cycle(1.0, 3.0);
  queue_.run_all();
  EXPECT_FALSE(domain_.router_is_member(1, 7));
  EXPECT_FALSE(domain_.router_is_member(1, 8));
}

TEST_F(IgmpTest, SoftStateDisabledNeverExpires) {
  domain_.host_join(1, 0, 100, 7);
  domain_.host_crash(1, 0, 100);
  domain_.start_query_cycle(1.0, 10.0);
  queue_.run_all();
  EXPECT_TRUE(domain_.router_is_member(1, 7));
}

TEST_F(IgmpTest, CrashBeforeJoinIsHarmless) {
  domain_.enable_soft_state(1.0);
  domain_.host_crash(1, 0, 100);
  domain_.start_query_cycle(1.0, 3.0);
  queue_.run_all();
  EXPECT_FALSE(domain_.router_is_member(1, 7));
}

}  // namespace
}  // namespace scmp::igmp
