// Reproduces paper Fig. 8: data overhead (panels a-c) and protocol overhead
// (panels d-f) versus group size for SCMP, DVMRP, MOSPF and CBT on the three
// evaluation topologies (ARPANET; random n=50, avg degree 3; random n=50,
// avg degree 5). One source sends one packet per second for 30 s; overhead
// is accumulated in link-cost units per link crossing (§IV-B definitions).
// Panels (e)/(f) in the paper switch to log scale to separate SCMP from CBT;
// we print the raw values plus the SCMP/CBT ratio instead.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace scmp;
  bench::TableSink sink(argc, argv);
  bench::BenchJson json("fig8_overhead", argc, argv);
  constexpr const char* kNames[] = {"scmp", "dvmrp", "mospf", "cbt"};
  constexpr int kSeeds = 3;

  std::cout << "Fig. 8 reproduction: data & protocol overhead vs group size\n"
               "(1 pkt/s for 30 s, averages over " << kSeeds << " seeds)\n\n";

  for (std::size_t t = 0; t < 3; ++t) {
    const std::string topo_name = bench::evaluation_topologies(1)[t].name;
    Table data_table({"group", "SCMP", "DVMRP", "MOSPF", "CBT"});
    Table proto_table(
        {"group", "SCMP", "DVMRP", "MOSPF", "CBT", "log10(SCMP/CBT)"});

    for (int group_size = 8; group_size <= 40; group_size += 8) {
      RunningStats data[4], proto[4];
      for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        const auto topos = bench::evaluation_topologies(seed * 100);
        const graph::Graph& g = topos[t].graph;
        const core::ScenarioConfig cfg =
            bench::scenario_for(g, group_size, seed);
        for (int p = 0; p < 4; ++p) {
          const core::ScenarioResult r =
              core::run_scenario(bench::kProtocols[p], g, cfg);
          data[p].add(r.stats.data_overhead);
          proto[p].add(r.stats.protocol_overhead);
        }
      }
      for (int p = 0; p < 4; ++p) {
        json.add_point(topo_name + "." + kNames[p] + ".data", group_size,
                       data[p]);
        json.add_point(topo_name + "." + kNames[p] + ".protocol", group_size,
                       proto[p]);
      }
      data_table.add_row({std::to_string(group_size),
                          Table::num(data[0].mean(), 0),
                          Table::num(data[1].mean(), 0),
                          Table::num(data[2].mean(), 0),
                          Table::num(data[3].mean(), 0)});
      proto_table.add_row(
          {std::to_string(group_size), Table::num(proto[0].mean(), 0),
           Table::num(proto[1].mean(), 0), Table::num(proto[2].mean(), 0),
           Table::num(proto[3].mean(), 0),
           Table::num(std::log10(proto[0].mean() / proto[3].mean()), 3)});
    }

    sink.emit("Fig. 8 DATA overhead, topology: " + topo_name,
              "fig8_data_" + topo_name, data_table);
    sink.emit("Fig. 8 PROTOCOL overhead, topology: " + topo_name,
              "fig8_protocol_" + topo_name, proto_table);
  }

  std::cout << "Expected shapes (paper): SCMP lowest data overhead, DVMRP far "
               "highest (flood-and-prune);\nMOSPF steepest protocol overhead "
               "(domain-wide LSA floods); DVMRP protocol overhead falls\nwith "
               "group size; SCMP and CBT lowest and nearly equal, CBT "
               "slightly below SCMP.\n";
  return 0;
}
