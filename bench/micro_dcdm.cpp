// Micro-benchmarks of the DCDM dynamic tree algorithm: join-storm throughput
// (the m-router's hot path) and single join/leave latency.
#include <benchmark/benchmark.h>

#include "core/dcdm.hpp"
#include "topo/waxman.hpp"

namespace {

using namespace scmp;

struct Env {
  topo::Topology topo;
  graph::AllPairsPaths paths;
  std::vector<graph::NodeId> members;

  Env(int n, int group)
      : topo([n] {
          Rng rng(11);
          topo::WaxmanConfig cfg;
          cfg.num_nodes = n;
          cfg.alpha = 0.25;
          cfg.beta = 0.2;
          return topo::waxman(cfg, rng);
        }()),
        paths(topo.graph) {
    Rng rng(13);
    for (int v : rng.sample_without_replacement(n - 1, group))
      members.push_back(v + 1);
  }
};

void BM_DcdmJoinStorm(benchmark::State& state) {
  const Env env(100, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    core::DcdmTree tree(env.topo.graph, env.paths, 0, core::DcdmConfig{1.0});
    for (graph::NodeId m : env.members) tree.join(m);
    benchmark::DoNotOptimize(tree.tree_cost());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(env.members.size()));
}
BENCHMARK(BM_DcdmJoinStorm)->Arg(10)->Arg(50)->Arg(90);

void BM_DcdmChurn(benchmark::State& state) {
  const Env env(100, 40);
  for (auto _ : state) {
    core::DcdmTree tree(env.topo.graph, env.paths, 0, core::DcdmConfig{2.0});
    for (graph::NodeId m : env.members) tree.join(m);
    for (std::size_t i = 0; i < env.members.size(); i += 2)
      tree.leave(env.members[i]);
    for (std::size_t i = 0; i < env.members.size(); i += 2)
      tree.join(env.members[i]);
    benchmark::DoNotOptimize(tree.tree_delay());
  }
}
BENCHMARK(BM_DcdmChurn);

void BM_DcdmLoosestVsTightest(benchmark::State& state) {
  const Env env(100, 50);
  const double slack = state.range(0) == 0 ? 1.0 : core::kLoosest;
  for (auto _ : state) {
    core::DcdmTree tree(env.topo.graph, env.paths, 0, core::DcdmConfig{slack});
    for (graph::NodeId m : env.members) tree.join(m);
    benchmark::DoNotOptimize(tree.tree_cost());
  }
}
BENCHMARK(BM_DcdmLoosestVsTightest)->Arg(0)->Arg(1);

}  // namespace
