// Micro-benchmarks of the m-router switching fabric: Beneš looping-algorithm
// routing, full sandwich (PN/CCN/DN) session configuration, and per-cell
// forwarding.
#include <benchmark/benchmark.h>

#include <numeric>

#include "fabric/mrouter_fabric.hpp"
#include "util/rng.hpp"

namespace {

using namespace scmp;

void BM_BenesRoute(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  fabric::BenesNetwork net(n);
  Rng rng(23);
  std::vector<int> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  for (auto _ : state) {
    state.PauseTiming();
    rng.shuffle(perm);
    state.ResumeTiming();
    net.route(perm);
    benchmark::DoNotOptimize(net);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_BenesRoute)->Arg(16)->Arg(64)->Arg(256)->Complexity();

std::vector<fabric::FabricSession> make_sessions(int ports, int groups,
                                                 Rng& rng) {
  std::vector<int> all(static_cast<std::size_t>(ports));
  std::iota(all.begin(), all.end(), 0);
  rng.shuffle(all);
  std::vector<fabric::FabricSession> sessions;
  std::size_t pos = 0;
  for (int group = 0; group < groups; ++group) {
    fabric::FabricSession s;
    s.group = group;
    const std::size_t take = static_cast<std::size_t>(ports / groups);
    for (std::size_t i = 0; i < take; ++i)
      s.input_ports.push_back(all[pos++]);
    sessions.push_back(std::move(s));
  }
  return sessions;
}

void BM_FabricConfigure(benchmark::State& state) {
  const int ports = static_cast<int>(state.range(0));
  fabric::MRouterFabric fab(ports);
  Rng rng(29);
  const auto sessions = make_sessions(ports, 8, rng);
  for (auto _ : state) {
    fab.configure(sessions);
    benchmark::DoNotOptimize(fab);
  }
}
BENCHMARK(BM_FabricConfigure)->Arg(32)->Arg(128)->Arg(256);

void BM_BenesRouteParallel(benchmark::State& state) {
  const int n = 256;
  fabric::BenesNetwork net(n);
  Rng rng(37);
  std::vector<int> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  const int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    rng.shuffle(perm);
    state.ResumeTiming();
    net.route_parallel(perm, depth);
    benchmark::DoNotOptimize(net);
  }
}
BENCHMARK(BM_BenesRouteParallel)->Arg(0)->Arg(1)->Arg(2)->UseRealTime();

void BM_FabricRouteCell(benchmark::State& state) {
  fabric::MRouterFabric fab(256);
  Rng rng(31);
  fab.configure(make_sessions(256, 16, rng));
  int port = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fab.route_cell(port));
    port = (port + 1) & 255;
  }
}
BENCHMARK(BM_FabricRouteCell);

}  // namespace
