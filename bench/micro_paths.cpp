// Micro-benchmarks of the dual-weight path database: full rebuilds (serial
// and on the compute pool, one Dijkstra source per task), incremental
// single-link updates, and path materialization into a reused buffer.
#include <benchmark/benchmark.h>

#include "core/compute_pool.hpp"
#include "graph/paths.hpp"
#include "topo/waxman.hpp"

namespace {

using namespace scmp;

topo::Topology make_topo(int n) {
  Rng rng(42);
  topo::WaxmanConfig cfg;
  cfg.num_nodes = n;
  cfg.alpha = 0.25;
  cfg.beta = 0.2;
  return topo::waxman(cfg, rng);
}

void BM_PathsRebuildSerial(benchmark::State& state) {
  const auto topo = make_topo(static_cast<int>(state.range(0)));
  graph::AllPairsPaths paths(topo.graph);
  for (auto _ : state) {
    paths.rebuild(topo.graph);
    benchmark::DoNotOptimize(paths);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PathsRebuildSerial)->Arg(50)->Arg(100)->Arg(200)->Complexity();

// Arg pair: (nodes, threads). On a single-core host the parallel numbers
// track the serial ones plus thread overhead; the thread axis is what CI
// machines with real parallelism exercise.
void BM_PathsRebuildPool(benchmark::State& state) {
  const auto topo = make_topo(static_cast<int>(state.range(0)));
  graph::AllPairsPaths paths(topo.graph);
  const core::TreeComputePool pool(topo.graph, paths,
                                   static_cast<int>(state.range(1)));
  const graph::ParallelFor pf = pool.parallel_for();
  for (auto _ : state) {
    paths.rebuild(topo.graph, pf);
    benchmark::DoNotOptimize(paths);
  }
}
BENCHMARK(BM_PathsRebuildPool)
    ->Args({100, 1})
    ->Args({100, 2})
    ->Args({100, 4})
    ->Args({100, 8})
    ->Args({200, 8});

// One link fails, then comes back, alternately: each iteration is one
// incremental apply_link_event on the dirty-source subset. Compare against
// BM_PathsRebuildSerial at the same node count for the incremental win.
void BM_PathsLinkEvent(benchmark::State& state) {
  auto topo = make_topo(static_cast<int>(state.range(0)));
  // A mid-degree node's first edge: representative, deterministic.
  const graph::NodeId u = 1;
  const auto& nbs = topo.graph.neighbors(u);
  const graph::NodeId v = nbs.front().to;
  const graph::EdgeAttr attr = nbs.front().attr;
  graph::AllPairsPaths paths(topo.graph);
  bool present = true;
  for (auto _ : state) {
    if (present) {
      topo.graph.remove_edge(u, v);
    } else {
      topo.graph.add_edge(u, v, attr.delay, attr.cost);
    }
    present = !present;
    benchmark::DoNotOptimize(paths.apply_link_event(topo.graph, u, v));
  }
}
BENCHMARK(BM_PathsLinkEvent)->Arg(50)->Arg(100)->Arg(200);

void BM_PathToInto(benchmark::State& state) {
  const auto topo = make_topo(100);
  const graph::AllPairsPaths paths(topo.graph);
  std::vector<graph::NodeId> buf;
  graph::NodeId dst = 1;
  for (auto _ : state) {
    paths.sl_path_into(0, dst, buf);
    benchmark::DoNotOptimize(buf);
    dst = dst % 99 + 1;
  }
}
BENCHMARK(BM_PathToInto);

}  // namespace
