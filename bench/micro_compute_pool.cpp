// Micro-benchmark of the m-router's parallel tree-compute pool (§II-B):
// rebuilding many group trees serially vs on worker threads — the hot path
// of a hot-standby failover at an ISP m-router serving many sessions.
#include <benchmark/benchmark.h>

#include "core/compute_pool.hpp"
#include "topo/waxman.hpp"

namespace {

using namespace scmp;

struct Env {
  topo::Topology topo;
  graph::AllPairsPaths paths;
  std::vector<core::GroupMembership> groups;

  Env() : topo([] {
            Rng rng(3);
            topo::WaxmanConfig cfg;
            cfg.num_nodes = 100;
            cfg.alpha = 0.25;
            cfg.beta = 0.2;
            return topo::waxman(cfg, rng);
          }()),
          paths(topo.graph) {
    Rng rng(5);
    for (int i = 0; i < 64; ++i) {
      core::GroupMembership gm;
      gm.group = i + 1;
      for (int v : rng.sample_without_replacement(99, 20))
        gm.join_order.push_back(v + 1);
      groups.push_back(std::move(gm));
    }
  }
};

const Env& env() {
  static const Env e;
  return e;
}

void BM_BuildTreesThreads(benchmark::State& state) {
  const core::TreeComputePool pool(env().topo.graph, env().paths,
                                   static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pool.build_trees(0, env().groups, core::DcdmConfig{1.0}));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(env().groups.size()));
}
BENCHMARK(BM_BuildTreesThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()->MeasureProcessCPUTime();

}  // namespace
