// Micro-benchmarks of the graph substrate: Dijkstra, the all-pairs path
// cache the m-router keeps, and the KMB Steiner approximation.
#include <benchmark/benchmark.h>

#include "graph/paths.hpp"
#include "graph/steiner.hpp"
#include "topo/waxman.hpp"

namespace {

using namespace scmp;

topo::Topology make_topo(int n) {
  Rng rng(42);
  topo::WaxmanConfig cfg;
  cfg.num_nodes = n;
  cfg.alpha = 0.25;
  cfg.beta = 0.2;
  return topo::waxman(cfg, rng);
}

void BM_Dijkstra(benchmark::State& state) {
  const auto topo = make_topo(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        graph::dijkstra(topo.graph, 0, graph::Metric::kDelay));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Dijkstra)->Arg(50)->Arg(100)->Arg(200)->Complexity();

void BM_AllPairsPaths(benchmark::State& state) {
  const auto topo = make_topo(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    graph::AllPairsPaths paths(topo.graph);
    benchmark::DoNotOptimize(paths);
  }
}
BENCHMARK(BM_AllPairsPaths)->Arg(50)->Arg(100);

void BM_KmbSteiner(benchmark::State& state) {
  const auto topo = make_topo(100);
  const graph::AllPairsPaths paths(topo.graph);
  Rng rng(7);
  std::vector<graph::NodeId> members;
  for (int v : rng.sample_without_replacement(
           topo.graph.num_nodes() - 1, static_cast<int>(state.range(0))))
    members.push_back(v + 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        graph::kmb_steiner(topo.graph, paths, 0, members));
  }
}
BENCHMARK(BM_KmbSteiner)->Arg(10)->Arg(50)->Arg(90);

}  // namespace
