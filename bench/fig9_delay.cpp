// Reproduces paper Fig. 9: maximum end-to-end delay (seconds) versus group
// size for SCMP, DVMRP, MOSPF and CBT on the three evaluation topologies.
// SPT-based protocols (DVMRP, MOSPF) deliver along per-source shortest
// paths; shared-tree protocols (SCMP, CBT) route off-tree sources through
// the m-router/core first, giving slightly longer delays that converge as
// group size or node degree grows.
#include <iostream>

#include "bench_common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace scmp;
  bench::TableSink sink(argc, argv);
  bench::BenchJson json("fig9_delay", argc, argv);
  constexpr const char* kNames[] = {"scmp", "dvmrp", "mospf", "cbt"};
  constexpr int kSeeds = 3;

  std::cout << "Fig. 9 reproduction: maximum end-to-end delay (ms) vs group "
               "size\n(averages over " << kSeeds << " seeds)\n\n";

  for (std::size_t t = 0; t < 3; ++t) {
    const std::string topo_name = bench::evaluation_topologies(1)[t].name;
    Table table({"group", "SCMP", "SCMP p95", "DVMRP", "MOSPF", "CBT",
                 "SCMP/MOSPF"});
    for (int group_size = 8; group_size <= 40; group_size += 8) {
      RunningStats delay[4];
      for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        const auto topos = bench::evaluation_topologies(seed * 100);
        const graph::Graph& g = topos[t].graph;
        const core::ScenarioConfig cfg =
            bench::scenario_for(g, group_size, seed);
        for (int p = 0; p < 4; ++p) {
          const core::ScenarioResult r =
              core::run_scenario(bench::kProtocols[p], g, cfg);
          delay[p].add(r.stats.max_end_to_end_delay * 1e3);  // ms
        }
      }
      for (int p = 0; p < 4; ++p)
        json.add_point(topo_name + "." + kNames[p] + ".max_delay_ms",
                       group_size, delay[p]);
      table.add_row({std::to_string(group_size), Table::num(delay[0].mean(), 3),
                     Table::num(delay[0].p95(), 3),
                     Table::num(delay[1].mean(), 3),
                     Table::num(delay[2].mean(), 3),
                     Table::num(delay[3].mean(), 3),
                     Table::num(delay[0].mean() / delay[2].mean(), 3)});
    }
    sink.emit("Fig. 9 max end-to-end delay, topology: " + topo_name,
              "fig9_delay_" + topo_name, table);
  }

  std::cout << "Expected shapes (paper): SCMP ~= CBT, slightly above the "
               "SPT-based DVMRP/MOSPF;\nthe gap narrows as group size or "
               "average node degree increases.\n";
  return 0;
}
