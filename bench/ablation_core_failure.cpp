// Ablation for the paper's single-core-failure argument (§I: ST-based
// multicast "cannot tolerate any failure of the core"; §V advantage 4: the
// ISP-administered m-router runs with a hot standby that "will take over the
// job automatically").
//
// The same workload runs under CBT and SCMP; halfway through, the core /
// primary m-router fails. CBT has no repair mechanism: new members cannot
// join and off-tree senders blackhole at the dead core. SCMP fails over to
// the standby and full service resumes.
#include <iostream>
#include <map>

#include "bench_common.hpp"

#include "core/placement.hpp"
#include "core/scmp.hpp"
#include "protocols/cbt.hpp"
#include "topo/waxman.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace scmp;

constexpr int kGroup = 1;
constexpr int kInitialMembers = 10;

struct Phase {
  double delivery_ratio = 0.0;  ///< fraction of expected deliveries
  bool late_joiner_served = false;
};

struct Result {
  Phase before;
  Phase after;
};

Result run(const graph::Graph& g, graph::NodeId core, graph::NodeId standby,
           bool use_scmp, std::uint64_t seed) {
  sim::EventQueue queue;
  sim::Network net(g, queue);
  igmp::IgmpDomain igmp(queue, g.num_nodes());

  core::Scmp* scmp = nullptr;
  proto::Cbt* cbt = nullptr;
  std::unique_ptr<proto::MulticastProtocol> protocol;
  if (use_scmp) {
    core::Scmp::Config cfg;
    cfg.mrouter = core;
    auto p = std::make_unique<core::Scmp>(net, igmp, cfg);
    scmp = p.get();
    protocol = std::move(p);
  } else {
    auto p = std::make_unique<proto::Cbt>(net, igmp);
    p->set_core(kGroup, core);
    cbt = p.get();
    protocol = std::move(p);
  }

  std::uint64_t delivered = 0;
  net.set_delivery_callback(
      [&](const sim::Packet&, graph::NodeId, sim::SimTime) { ++delivered; });

  Rng rng(seed);
  std::vector<graph::NodeId> members;
  graph::NodeId off_tree_sender = graph::kInvalidNode;
  graph::NodeId late_joiner = graph::kInvalidNode;
  {
    auto sample =
        rng.sample_without_replacement(g.num_nodes(), kInitialMembers + 2);
    std::size_t i = 0;
    for (; i < kInitialMembers; ++i) {
      const auto v = static_cast<graph::NodeId>(sample[i]);
      if (v == core || v == standby) continue;
      members.push_back(v);
    }
    off_tree_sender = static_cast<graph::NodeId>(sample[kInitialMembers]);
    late_joiner = static_cast<graph::NodeId>(sample[kInitialMembers + 1]);
  }
  for (graph::NodeId m : members) protocol->host_join(m, kGroup);
  queue.run_all();

  auto measure_phase = [&](bool with_late_joiner) {
    Phase phase;
    // Off-tree sender: 5 packets through the core.
    delivered = 0;
    for (int p = 0; p < 5; ++p) {
      protocol->send_data(off_tree_sender, kGroup);
      queue.run_all();
    }
    const double expected = 5.0 * static_cast<double>(members.size());
    phase.delivery_ratio = static_cast<double>(delivered) / expected;

    if (with_late_joiner) {
      protocol->host_join(late_joiner, kGroup);
      queue.run_all();
      delivered = 0;
      protocol->send_data(off_tree_sender, kGroup);
      queue.run_all();
      // Did the late joiner hear anything at all?
      phase.late_joiner_served =
          delivered > static_cast<std::uint64_t>(0) &&
          delivered >= static_cast<std::uint64_t>(members.size()) + 1;
      protocol->host_leave(late_joiner, kGroup);
      queue.run_all();
    }
    return phase;
  };

  Result result;
  result.before = measure_phase(false);

  // *** The core / primary m-router fails. ***
  if (use_scmp) {
    scmp->fail_over_to(standby);  // the hot standby takes over (§V)
  } else {
    cbt->fail_core(kGroup);  // CBT has nothing to fail over to
  }
  queue.run_all();

  result.after = measure_phase(true);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  scmp::bench::BenchJson json("ablation_core_failure", argc, argv);
  constexpr int kSeeds = 5;
  std::cout << "Ablation: core / m-router failure mid-session\n"
            << "(random n=50 deg-3 topologies, " << kSeeds
            << " seeds; off-tree sender, then a late joiner, after the "
               "failure)\n\n";

  Table table({"configuration", "pre-fail delivery", "post-fail delivery",
               "late joiner served"});
  for (const bool use_scmp : {false, true}) {
    RunningStats before, after;
    int joiner_ok = 0;
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      Rng trng(seed * 100);
      const topo::Topology topo = topo::waxman_with_degree(50, 3.0, trng);
      const graph::AllPairsPaths paths(topo.graph);
      const graph::NodeId core = core::place_mrouter(
          topo.graph, paths, core::PlacementRule::kMinAverageDelay);
      graph::NodeId standby = core::place_mrouter(
          topo.graph, paths, core::PlacementRule::kMaxDegree);
      if (standby == core) standby = (core + 1) % topo.graph.num_nodes();
      const Result r = run(topo.graph, core, standby, use_scmp, seed * 13);
      before.add(r.before.delivery_ratio);
      after.add(r.after.delivery_ratio);
      if (r.after.late_joiner_served) ++joiner_ok;
    }
    const std::string proto = use_scmp ? "scmp" : "cbt";
    json.add_point(proto + ".pre_fail_delivery", use_scmp ? 1 : 0, before);
    json.add_point(proto + ".post_fail_delivery", use_scmp ? 1 : 0, after);
    table.add_row({use_scmp ? "SCMP + hot standby" : "CBT (no repair)",
                   Table::num(before.mean(), 3), Table::num(after.mean(), 3),
                   std::to_string(joiner_ok) + "/" + std::to_string(kSeeds)});
  }
  table.print(std::cout);
  std::cout << "\nExpected: both deliver fully before the failure; afterwards "
               "CBT blackholes the off-tree sender at the dead core and "
               "cannot admit the late joiner, while SCMP's standby restores "
               "full service (§V advantage 4).\n";
  return 0;
}
