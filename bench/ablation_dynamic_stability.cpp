// Ablation for the paper's choice of a *dynamic* tree algorithm (§III-D:
// "when a group member leaves, the branch leading to the leaving group
// member will be pruned and the rest of the tree is intact"; the m-router
// must physically install every tree change with TREE/BRANCH packets, so
// tree churn is control-plane cost).
//
// Over random join/leave sequences we compare incremental DCDM against
// rebuilding the near-optimal KMB tree from scratch at every membership
// event, measuring both tree cost (what the paper's Fig. 7 reports) and
// *churn*: how many tree edges change per event, i.e. how much installed
// routing state every change invalidates.
#include <algorithm>
#include <iostream>
#include <set>

#include "bench_common.hpp"

#include "core/dcdm.hpp"
#include "graph/steiner.hpp"
#include "topo/waxman.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace scmp;

using EdgeSet = std::set<std::pair<graph::NodeId, graph::NodeId>>;

EdgeSet edge_set(const graph::MulticastTree& tree) {
  EdgeSet out;
  for (const auto& [child, parent] : tree.edges())
    out.insert(std::minmax(child, parent));
  return out;
}

int churn(const EdgeSet& before, const EdgeSet& after) {
  int changed = 0;
  for (const auto& e : before)
    if (!after.contains(e)) ++changed;
  for (const auto& e : after)
    if (!before.contains(e)) ++changed;
  return changed;
}

struct Metrics {
  RunningStats cost;       ///< tree cost sampled after every event
  RunningStats event_churn;  ///< edges changed per membership event
};

}  // namespace

int main(int argc, char** argv) {
  scmp::bench::BenchJson json("ablation_dynamic_stability", argc, argv);
  constexpr int kSeeds = 5;
  constexpr int kEvents = 120;
  std::cout << "Ablation: dynamic tree stability — incremental DCDM vs "
               "rebuilding KMB per membership event\n(Waxman n=100, "
            << kEvents << " join/leave events, " << kSeeds << " seeds)\n\n";

  Metrics dcdm_tight, dcdm_loose, kmb_rebuild;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    Rng trng(seed * 1000);
    topo::WaxmanConfig cfg;
    cfg.num_nodes = 100;
    cfg.alpha = 0.25;
    cfg.beta = 0.2;
    const topo::Topology topo = topo::waxman(cfg, trng);
    const graph::Graph& g = topo.graph;
    const graph::AllPairsPaths paths(g);

    core::DcdmTree tight(g, paths, 0, core::DcdmConfig{1.0});
    core::DcdmTree loose(g, paths, 0, core::DcdmConfig{core::kLoosest});
    std::vector<graph::NodeId> members;  // in KMB join order

    EdgeSet tight_edges, loose_edges, kmb_edges;
    Rng rng(seed * 77 + 5);
    std::set<graph::NodeId> joined;
    for (int event = 0; event < kEvents; ++event) {
      const auto v =
          static_cast<graph::NodeId>(rng.uniform_int(1, g.num_nodes() - 1));
      if (joined.contains(v)) {
        joined.erase(v);
        members.erase(std::find(members.begin(), members.end(), v));
        tight.leave(v);
        loose.leave(v);
      } else {
        joined.insert(v);
        members.push_back(v);
        tight.join(v);
        loose.join(v);
      }

      const EdgeSet tight_now = edge_set(tight.tree());
      const EdgeSet loose_now = edge_set(loose.tree());
      dcdm_tight.event_churn.add(churn(tight_edges, tight_now));
      dcdm_loose.event_churn.add(churn(loose_edges, loose_now));
      tight_edges = tight_now;
      loose_edges = loose_now;
      dcdm_tight.cost.add(tight.tree_cost());
      dcdm_loose.cost.add(loose.tree_cost());

      const auto kmb = graph::kmb_steiner(g, paths, 0, members);
      const EdgeSet kmb_now = edge_set(kmb);
      kmb_rebuild.event_churn.add(churn(kmb_edges, kmb_now));
      kmb_edges = kmb_now;
      kmb_rebuild.cost.add(kmb.tree_cost(g));
    }
  }

  json.add_point("dcdm_tightest.tree_cost", 0, dcdm_tight.cost);
  json.add_point("dcdm_tightest.edges_changed", 0, dcdm_tight.event_churn);
  json.add_point("dcdm_loosest.tree_cost", 1, dcdm_loose.cost);
  json.add_point("dcdm_loosest.edges_changed", 1, dcdm_loose.event_churn);
  json.add_point("kmb_rebuild.tree_cost", 2, kmb_rebuild.cost);
  json.add_point("kmb_rebuild.edges_changed", 2, kmb_rebuild.event_churn);
  Table table({"algorithm", "avg tree cost", "avg edges changed/event"});
  table.add_row({"DCDM tightest (incremental)",
                 Table::num(dcdm_tight.cost.mean(), 0),
                 Table::num(dcdm_tight.event_churn.mean(), 2)});
  table.add_row({"DCDM loosest (incremental)",
                 Table::num(dcdm_loose.cost.mean(), 0),
                 Table::num(dcdm_loose.event_churn.mean(), 2)});
  table.add_row({"KMB rebuilt every event",
                 Table::num(kmb_rebuild.cost.mean(), 0),
                 Table::num(kmb_rebuild.event_churn.mean(), 2)});
  table.print(std::cout);

  std::cout << "\nExpected: rebuilding KMB gives the cheapest trees but "
               "changes roughly 3x as many tree edges per event (every "
               "changed edge is installed routing state to tear down and "
               "set up); incremental DCDM touches essentially only the "
               "joining/leaving branch — the reason §III-D maintains the "
               "tree dynamically, at a cost premium Fig. 7 quantifies.\n";
  return 0;
}
