// Micro-benchmarks of the reliable control-plane delivery layer: raw
// retransmission-table throughput, the zero-loss overhead the ack machinery
// adds to membership churn (the cost of turning Config::reliability on), and
// the price of a soft-state reconciliation pass over a healthy domain.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/retx.hpp"
#include "core/scmp.hpp"
#include "igmp/igmp.hpp"
#include "sim/event_queue.hpp"
#include "sim/network.hpp"
#include "topo/arpanet.hpp"
#include "util/rng.hpp"

namespace {

using namespace scmp;

void BM_RetxArmAck(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  core::RetxConfig cfg;
  cfg.enabled = true;
  for (auto _ : state) {
    sim::EventQueue q;
    core::RetxTable table(q, cfg);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t req = table.next_req();
      table.arm(static_cast<graph::NodeId>(i % 32), req, [] {});
      table.ack(static_cast<graph::NodeId>(i % 32), req);
    }
    q.run_all();  // retired timers fire as no-ops
    benchmark::DoNotOptimize(table.acked());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RetxArmAck)->Arg(1000)->Arg(100000);

/// One world per iteration: `rounds` join/leave pairs per group, drained to
/// quiescence, with the reliability layer on or off (state.range(1)).
void churn_rounds(benchmark::State& state, bool reliable) {
  const int rounds = static_cast<int>(state.range(0));
  Rng rng(7);
  const topo::Topology topo = topo::arpanet(rng);
  for (auto _ : state) {
    sim::EventQueue queue;
    sim::Network net(topo.graph, queue);
    igmp::IgmpDomain igmp(queue, topo.graph.num_nodes());
    core::Scmp::Config cfg;
    cfg.mrouter = 0;
    cfg.reliability.enabled = reliable;
    core::Scmp scmp(net, igmp, cfg);
    for (int r = 0; r < rounds; ++r) {
      const graph::NodeId member = 3 + (r * 7) % (topo::kArpanetNodes - 4);
      scmp.host_join(member, /*group=*/0);
      queue.run_all();
      scmp.host_leave(member, /*group=*/0);
      queue.run_all();
    }
    benchmark::DoNotOptimize(scmp.retx().acked());
  }
  state.SetItemsProcessed(state.iterations() * 2 * rounds);
}

void BM_ChurnFireAndForget(benchmark::State& state) {
  churn_rounds(state, /*reliable=*/false);
}
BENCHMARK(BM_ChurnFireAndForget)->Arg(50);

void BM_ChurnReliable(benchmark::State& state) {
  churn_rounds(state, /*reliable=*/true);
}
BENCHMARK(BM_ChurnReliable)->Arg(50);

/// Reliable churn with the per-group convergence tracker enabled — the cost
/// of measuring time-to-convergence (pending-set upkeep, a consistency
/// predicate per handled control packet, timeout timers) relative to
/// BM_ChurnReliable's identical workload.
void BM_ChurnConvergenceTracked(benchmark::State& state) {
  const int rounds = static_cast<int>(state.range(0));
  Rng rng(7);
  const topo::Topology topo = topo::arpanet(rng);
  for (auto _ : state) {
    sim::EventQueue queue;
    sim::Network net(topo.graph, queue);
    igmp::IgmpDomain igmp(queue, topo.graph.num_nodes());
    core::Scmp::Config cfg;
    cfg.mrouter = 0;
    cfg.reliability.enabled = true;
    core::Scmp scmp(net, igmp, cfg);
    scmp.enable_convergence_tracking();
    for (int r = 0; r < rounds; ++r) {
      const graph::NodeId member = 3 + (r * 7) % (topo::kArpanetNodes - 4);
      scmp.host_join(member, /*group=*/0);
      queue.run_all();
      scmp.host_leave(member, /*group=*/0);
      queue.run_all();
    }
    benchmark::DoNotOptimize(scmp.convergence_tracker()->stats().converged);
  }
  state.SetItemsProcessed(state.iterations() * 2 * rounds);
}
BENCHMARK(BM_ChurnConvergenceTracked)->Arg(50);

void BM_ReconcileHealthyDomain(benchmark::State& state) {
  const int groups = static_cast<int>(state.range(0));
  Rng rng(7);
  const topo::Topology topo = topo::arpanet(rng);
  sim::EventQueue queue;
  sim::Network net(topo.graph, queue);
  igmp::IgmpDomain igmp(queue, topo.graph.num_nodes());
  core::Scmp::Config cfg;
  cfg.mrouter = 0;
  cfg.reliability.enabled = true;
  core::Scmp scmp(net, igmp, cfg);
  for (int g = 0; g < groups; ++g) {
    for (graph::NodeId m : {5 + g, 12 + g, 19 + g}) scmp.host_join(m, g);
    queue.run_all();
  }
  for (auto _ : state) {
    // A healthy domain: both phases diff everything and repair nothing.
    benchmark::DoNotOptimize(scmp.reconcile_all());
    queue.run_all();
  }
  state.SetItemsProcessed(state.iterations() * groups);
}
BENCHMARK(BM_ReconcileHealthyDomain)->Arg(1)->Arg(8);

}  // namespace
