// Shared main() for the google-benchmark micro-benches: runs the standard
// benchmark driver, but interposes a reporter that folds every benchmark's
// per-iteration real time into a RunningStats, so each binary also emits a
// BENCH_<name>.json (see BenchJson in bench_common.hpp) alongside the normal
// console output. `--json <dir>` / SCMP_BENCH_JSON_DIR select the output
// directory; without them the run is byte-identical to benchmark_main's.
#include <benchmark/benchmark.h>
#include <unistd.h>

#include <cstdio>
#include <map>
#include <string>

#include "bench_common.hpp"
#include "util/stats.hpp"

namespace {

/// ConsoleReporter that additionally records every timing run. Aggregate
/// pseudo-runs (mean/median/stddev rows under --benchmark_repetitions) are
/// skipped: the JSON summarises raw runs itself.
class RecordingReporter : public benchmark::ConsoleReporter {
 public:
  explicit RecordingReporter(OutputOptions opts)
      : benchmark::ConsoleReporter(opts) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      if (run.iterations > 0) {
        stats_[run.benchmark_name()].add(run.real_accumulated_time /
                                         static_cast<double>(run.iterations));
      }
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  const std::map<std::string, scmp::RunningStats>& stats() const {
    return stats_;
  }

 private:
  std::map<std::string, scmp::RunningStats> stats_;
};

/// The binary's own name, for the BENCH_<name>.json stem.
std::string binary_stem(const char* argv0) {
  std::string stem = argv0;
  const std::size_t slash = stem.find_last_of('/');
  if (slash != std::string::npos) stem = stem.substr(slash + 1);
  return stem;
}

}  // namespace

int main(int argc, char** argv) {
  scmp::bench::BenchJson json(binary_stem(argv[0]), argc, argv);
  // Strip --json <dir> before benchmark's parser rejects it as unknown.
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      ++i;
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  // Bypassing benchmark's reporter factory skips its colour auto-detection;
  // re-create the "colour only on a terminal" default here.
  RecordingReporter reporter(
      isatty(fileno(stdout)) ? benchmark::ConsoleReporter::OO_ColorTabular
                             : benchmark::ConsoleReporter::OO_Tabular);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  for (const auto& [name, stats] : reporter.stats())
    json.add_point(name, 0.0, stats);
  json.write();
  return 0;
}
