// Reproduces paper Fig. 7: tree delay (panels a-c) and tree cost (panels
// d-f) of SPT, KMB and DCDM (SCMP's algorithm) versus group size, under the
// tightest / moderate / loosest delay constraints.
//
// Setup per §IV-A: Waxman topologies with n = 100, alpha = 0.25, beta = 0.2
// on a 32767^2 grid; cost = Manhattan distance, delay ~ U(0, cost); group
// sizes 10..90 step 10; each point averages 10 seeds. Members join the DCDM
// tree one at a time in random order (it is a *dynamic* algorithm); SPT and
// KMB are built on the final member set.
#include <iostream>

#include "bench_common.hpp"

#include "core/dcdm.hpp"
#include "graph/spt.hpp"
#include "graph/steiner.hpp"
#include "topo/waxman.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace scmp;

struct Level {
  const char* name;
  double slack;
};

constexpr Level kLevels[] = {
    {"tightest", 1.0},
    {"moderate", 2.0},
    {"loosest", core::kLoosest},
};

constexpr int kSeeds = 10;

struct Point {
  RunningStats spt_delay, kmb_delay, dcdm_delay;
  RunningStats spt_cost, kmb_cost, dcdm_cost;
};

}  // namespace

int main(int argc, char** argv) {
  scmp::bench::TableSink sink(argc, argv);
  scmp::bench::BenchJson json("fig7_tree_quality", argc, argv);
  std::cout << "Fig. 7 reproduction: multicast tree quality "
               "(Waxman n=100, alpha=0.25, beta=0.2, 10 seeds)\n\n";

  for (const Level& level : kLevels) {
    std::vector<Point> points;
    for (int group_size = 10; group_size <= 90; group_size += 10) {
      Point pt;
      for (int seed = 1; seed <= kSeeds; ++seed) {
        Rng rng(static_cast<std::uint64_t>(seed) * 1000 + group_size);
        topo::WaxmanConfig cfg;
        cfg.num_nodes = 100;
        cfg.alpha = 0.25;
        cfg.beta = 0.2;
        const topo::Topology topo = topo::waxman(cfg, rng);
        const graph::Graph& g = topo.graph;
        const graph::AllPairsPaths paths(g);

        const graph::NodeId root = 0;
        std::vector<graph::NodeId> members;
        for (int v : rng.sample_without_replacement(g.num_nodes() - 1,
                                                    group_size))
          members.push_back(v + 1);

        core::DcdmTree dcdm(g, paths, root, core::DcdmConfig{level.slack});
        for (graph::NodeId m : members) dcdm.join(m);
        const auto spt = graph::shortest_path_tree(g, root, members);
        const auto kmb = graph::kmb_steiner(g, paths, root, members);

        pt.dcdm_delay.add(dcdm.tree_delay());
        pt.dcdm_cost.add(dcdm.tree_cost());
        pt.spt_delay.add(spt.tree_delay(g));
        pt.spt_cost.add(spt.tree_cost(g));
        pt.kmb_delay.add(kmb.tree_delay(g));
        pt.kmb_cost.add(kmb.tree_cost(g));
      }
      points.push_back(std::move(pt));
    }

    const std::string level_name = level.name;
    for (std::size_t i = 0; i < points.size(); ++i) {
      const int gs = 10 + static_cast<int>(i) * 10;
      const Point& p = points[i];
      json.add_point(level_name + ".spt.delay", gs, p.spt_delay);
      json.add_point(level_name + ".kmb.delay", gs, p.kmb_delay);
      json.add_point(level_name + ".dcdm.delay", gs, p.dcdm_delay);
      json.add_point(level_name + ".spt.cost", gs, p.spt_cost);
      json.add_point(level_name + ".kmb.cost", gs, p.kmb_cost);
      json.add_point(level_name + ".dcdm.cost", gs, p.dcdm_cost);
    }
    Table delay_table({"group", "SPT", "KMB", "DCDM", "DCDM/SPT"});
    for (std::size_t i = 0; i < points.size(); ++i) {
      const int gs = 10 + static_cast<int>(i) * 10;
      const Point& p = points[i];
      delay_table.add_row({std::to_string(gs), Table::num(p.spt_delay.mean(), 0),
                           Table::num(p.kmb_delay.mean(), 0),
                           Table::num(p.dcdm_delay.mean(), 0),
                           Table::num(p.dcdm_delay.mean() /
                                          p.spt_delay.mean(), 3)});
    }

    Table cost_table({"group", "SPT", "KMB", "DCDM", "DCDM/KMB", "DCDM/SPT"});
    for (std::size_t i = 0; i < points.size(); ++i) {
      const int gs = 10 + static_cast<int>(i) * 10;
      const Point& p = points[i];
      cost_table.add_row(
          {std::to_string(gs), Table::num(p.spt_cost.mean(), 0),
           Table::num(p.kmb_cost.mean(), 0), Table::num(p.dcdm_cost.mean(), 0),
           Table::num(p.dcdm_cost.mean() / p.kmb_cost.mean(), 3),
           Table::num(p.dcdm_cost.mean() / p.spt_cost.mean(), 3)});
    }
    sink.emit("Fig. 7 tree DELAY, constraint: " + level_name,
              "fig7_delay_" + level_name, delay_table);
    sink.emit("Fig. 7 tree COST, constraint: " + level_name,
              "fig7_cost_" + level_name, cost_table);
  }

  std::cout << "Expected shapes (paper): SPT lowest delay; DCDM ~= SPT delay "
               "at the tightest level;\nKMB lowest cost with oscillating "
               "delay; DCDM cost between KMB and SPT, closer to KMB;\n"
               "the KMB-DCDM cost gap narrows as the constraint loosens.\n";
  return 0;
}
