// Extension ablation: PIM-SM's SPT switchover. Compares steady-state (post-
// switchover) maximum end-to-end delay and per-packet data overhead for
// PIM-SM with switchover, PIM-SM pinned to the RP tree, and SCMP. The first
// packet of every flow travels via the RP in both PIM variants, so the
// steady state is measured from the second packet on.
#include <algorithm>
#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace scmp;

struct SteadyState {
  double max_e2e_ms = 0.0;
  double data_overhead_per_packet = 0.0;
};

SteadyState run(core::ProtocolKind kind, const graph::Graph& g,
                core::ScenarioConfig cfg) {
  cfg.data_interval = 0.0;  // data driven manually
  core::ScenarioHarness h(kind, g, cfg);

  std::map<std::uint64_t, double> send_time;
  double max_e2e = 0.0;
  bool measuring = false;
  h.network().set_delivery_callback(
      [&](const sim::Packet& pkt, graph::NodeId, sim::SimTime at) {
        if (measuring)
          max_e2e = std::max(max_e2e, at - pkt.created_at);
      });

  for (graph::NodeId m : cfg.members) h.protocol().host_join(m, cfg.group);
  h.queue().run_all();

  // Packet 1 triggers the switchover; packets 2..6 are steady state.
  h.protocol().send_data(cfg.source, cfg.group);
  h.queue().run_all();
  measuring = true;
  const double overhead_before = h.network().stats().data_overhead;
  constexpr int kSteadyPackets = 5;
  for (int i = 0; i < kSteadyPackets; ++i) {
    h.protocol().send_data(cfg.source, cfg.group);
    h.queue().run_all();
  }
  SteadyState out;
  out.max_e2e_ms = max_e2e * 1e3;
  out.data_overhead_per_packet =
      (h.network().stats().data_overhead - overhead_before) / kSteadyPackets;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  scmp::bench::BenchJson json("ablation_pimsm_switchover", argc, argv);
  constexpr const char* kNames[] = {"pimsm_spt", "pimsm_rpt", "scmp"};
  constexpr int kSeeds = 3;
  std::cout << "Ablation: PIM-SM SPT switchover, steady state after the "
               "first packet\n(random n=50 deg-3 topologies, " << kSeeds
            << " seeds, source = group member)\n\n";

  Table table(
      {"group", "metric", "PIM-SM(spt)", "PIM-SM(rpt-only)", "SCMP"});
  for (int group_size = 8; group_size <= 40; group_size += 16) {
    RunningStats delay[3], data[3];
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      const auto topos = bench::evaluation_topologies(seed * 100);
      const graph::Graph& g = topos[1].graph;
      core::ScenarioConfig cfg = bench::scenario_for(g, group_size, seed);

      cfg.pimsm_spt_switchover = true;
      const SteadyState spt = run(core::ProtocolKind::kPimSm, g, cfg);
      cfg.pimsm_spt_switchover = false;
      const SteadyState rpt = run(core::ProtocolKind::kPimSm, g, cfg);
      const SteadyState scmp = run(core::ProtocolKind::kScmp, g, cfg);

      delay[0].add(spt.max_e2e_ms);
      delay[1].add(rpt.max_e2e_ms);
      delay[2].add(scmp.max_e2e_ms);
      data[0].add(spt.data_overhead_per_packet);
      data[1].add(rpt.data_overhead_per_packet);
      data[2].add(scmp.data_overhead_per_packet);
    }
    for (int p = 0; p < 3; ++p) {
      json.add_point(std::string(kNames[p]) + ".max_e2e_ms", group_size,
                     delay[p]);
      json.add_point(std::string(kNames[p]) + ".data_per_pkt", group_size,
                     data[p]);
    }
    table.add_row({std::to_string(group_size), "max-e2e (ms)",
                   Table::num(delay[0].mean(), 3),
                   Table::num(delay[1].mean(), 3),
                   Table::num(delay[2].mean(), 3)});
    table.add_row({std::to_string(group_size), "data/pkt (lc)",
                   Table::num(data[0].mean(), 0), Table::num(data[1].mean(), 0),
                   Table::num(data[2].mean(), 0)});
  }
  table.print(std::cout);
  std::cout << "\nExpected: with switchover, steady-state delay drops toward "
               "the per-source SPT bound (below both shared-tree columns); "
               "without register-stop the switchover costs extra data "
               "bandwidth (source tree + register + residual shared tree), "
               "so its benefit is purely latency.\n";
  return 0;
}
