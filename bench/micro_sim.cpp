// Micro-benchmarks of the discrete-event simulator: event-queue throughput
// and end-to-end SCMP scenario execution speed (events per second is the
// figure of merit for scaling the Fig. 8/9 sweeps).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "sim/event_queue.hpp"

namespace {

using namespace scmp;

void BM_EventQueueThroughput(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    long counter = 0;
    for (std::size_t i = 0; i < n; ++i)
      q.schedule_at(static_cast<double>(i % 97), [&counter] { ++counter; });
    q.run_all();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueThroughput)->Arg(1000)->Arg(100000);

void BM_ScenarioScmp(benchmark::State& state) {
  const auto topos = bench::evaluation_topologies(100);
  const graph::Graph& g = topos[1].graph;  // random n=50 deg 3
  const core::ScenarioConfig cfg = bench::scenario_for(g, 20, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::run_scenario(core::ProtocolKind::kScmp, g, cfg));
  }
}
BENCHMARK(BM_ScenarioScmp);

void BM_ScenarioDvmrp(benchmark::State& state) {
  const auto topos = bench::evaluation_topologies(100);
  const graph::Graph& g = topos[1].graph;
  const core::ScenarioConfig cfg = bench::scenario_for(g, 20, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::run_scenario(core::ProtocolKind::kDvmrp, g, cfg));
  }
}
BENCHMARK(BM_ScenarioDvmrp);

}  // namespace
