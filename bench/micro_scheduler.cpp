// Micro-benchmark of the m-router's WFQ egress scheduler (§II-A traffic
// scheduling): enqueue/dequeue throughput as the number of competing groups
// grows.
#include <benchmark/benchmark.h>

#include "core/scheduler.hpp"
#include "util/rng.hpp"

namespace {

using namespace scmp;

void BM_WfqEnqueueDequeue(benchmark::State& state) {
  const int groups = static_cast<int>(state.range(0));
  Rng rng(9);
  for (auto _ : state) {
    core::WfqScheduler s(1e9);
    for (int g = 0; g < groups; ++g)
      s.set_weight(g, 1.0 + static_cast<double>(g % 4));
    std::uint64_t uid = 0;
    for (int round = 0; round < 64; ++round) {
      for (int g = 0; g < groups; ++g)
        s.enqueue(g, uid++, 500 + static_cast<std::size_t>(g) * 7, 0.0);
    }
    while (s.dequeue().has_value()) {
    }
    benchmark::DoNotOptimize(s.served_bytes());
  }
  state.SetItemsProcessed(state.iterations() * 64 *
                          static_cast<std::int64_t>(groups));
}
BENCHMARK(BM_WfqEnqueueDequeue)->Arg(2)->Arg(16)->Arg(128);

void BM_WfqBurstInterleave(benchmark::State& state) {
  for (auto _ : state) {
    core::WfqScheduler s(1e9);
    s.set_weight(1, 4.0);
    s.set_weight(2, 1.0);
    for (std::uint64_t i = 0; i < 256; ++i) {
      s.enqueue(1, i, 9000, 0.0);
      s.enqueue(2, 1000 + i, 100, 0.0);
    }
    while (s.dequeue().has_value()) {
    }
    benchmark::DoNotOptimize(s.pending());
  }
}
BENCHMARK(BM_WfqBurstInterleave);

}  // namespace
