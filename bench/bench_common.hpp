// Shared scaffolding for the Fig. 8 / Fig. 9 network-wide experiments
// (paper §IV-B): the three evaluation topologies and the scenario runner.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "util/stats.hpp"
#include "util/table.hpp"

#include "core/experiment.hpp"
#include "core/placement.hpp"
#include "topo/arpanet.hpp"
#include "topo/waxman.hpp"
#include "util/rng.hpp"

namespace scmp::bench {

inline std::vector<topo::Topology> evaluation_topologies(std::uint64_t seed) {
  std::vector<topo::Topology> topos;
  {
    Rng rng(seed);
    topos.push_back(topo::arpanet(rng));
  }
  {
    Rng rng(seed + 1);
    topos.push_back(topo::waxman_with_degree(50, 3.0, rng));
  }
  {
    Rng rng(seed + 2);
    topos.push_back(topo::waxman_with_degree(50, 5.0, rng));
  }
  return topos;
}

constexpr core::ProtocolKind kProtocols[] = {
    core::ProtocolKind::kScmp, core::ProtocolKind::kDvmrp,
    core::ProtocolKind::kMospf, core::ProtocolKind::kCbt};

/// Builds the §IV-B scenario: `group_size` random members, a source drawn
/// from the group (so shared-tree protocols need no per-packet
/// encapsulation — the data-overhead comparison then reflects pure tree
/// cost, which is what Fig. 8 correlates it with), one packet per second
/// from t=2 to t=30. Set `member_source=false` for an off-tree sender.
inline core::ScenarioConfig scenario_for(const graph::Graph& g,
                                         int group_size, std::uint64_t seed,
                                         bool member_source = true) {
  core::ScenarioConfig cfg;
  // The m-router (and CBT core) is placed by the paper's rule 1: the node
  // with the least average delay to all other nodes (§IV-A).
  {
    const graph::AllPairsPaths paths(g);
    cfg.mrouter =
        core::place_mrouter(g, paths, core::PlacementRule::kMinAverageDelay);
  }
  Rng rng(seed * 7919 + static_cast<std::uint64_t>(group_size));
  for (int v : rng.sample_without_replacement(g.num_nodes() - 1, group_size))
    cfg.members.push_back(v + 1);
  cfg.source = cfg.members.front();
  if (!member_source) {
    for (int attempt = 0; attempt < 64; ++attempt) {
      const auto v =
          static_cast<graph::NodeId>(rng.uniform_int(1, g.num_nodes() - 1));
      if (std::find(cfg.members.begin(), cfg.members.end(), v) ==
          cfg.members.end()) {
        cfg.source = v;
        break;
      }
    }
  }
  return cfg;
}

/// Prints each result table under a title and, when the binary was invoked
/// with `--csv <dir>`, mirrors it to <dir>/<stem>.csv for plotting.
class TableSink {
 public:
  TableSink(int argc, char** argv) {
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::string(argv[i]) == "--csv") csv_dir_ = argv[i + 1];
    }
  }

  void emit(const std::string& title, const std::string& stem,
            const Table& table) {
    std::cout << "== " << title << " ==\n";
    table.print(std::cout);
    std::cout << "\n";
    if (csv_dir_.empty()) return;
    const std::string path = csv_dir_ + "/" + stem + ".csv";
    std::ofstream out(path);
    if (!out) {
      std::cerr << "warning: cannot write " << path << "\n";
      return;
    }
    table.write_csv(out);
  }

  bool csv_enabled() const { return !csv_dir_.empty(); }

 private:
  std::string csv_dir_;
};

/// Machine-readable result export shared by every bench binary: each series
/// point's distribution summary is collected and, on destruction, written to
/// `<dir>/BENCH_<name>.json` (schema "scmp-bench-v1"). The directory comes
/// from `--json <dir>` on the command line or the SCMP_BENCH_JSON_DIR
/// environment variable; without either, the collector is inert. CI's
/// bench-smoke job validates every emitted file with tools/check_bench_json.py.
class BenchJson {
 public:
  BenchJson(std::string name, int argc, char** argv)
      : name_(std::move(name)) {
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::string(argv[i]) == "--json") dir_ = argv[i + 1];
    }
    if (dir_.empty()) {
      if (const char* env = std::getenv("SCMP_BENCH_JSON_DIR")) dir_ = env;
    }
  }

  ~BenchJson() { write(); }

  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;

  bool enabled() const { return !dir_.empty(); }

  /// Records one (series, x) point. `series` names the curve (protocol,
  /// topology, metric); `x` is the sweep coordinate (group size, event
  /// count, ...); `stats` holds the repetition distribution.
  void add_point(const std::string& series, double x,
                 const RunningStats& stats) {
    if (!enabled()) return;
    points_.push_back(Point{series, x, summarize(stats)});
  }

  /// Writes the JSON file now (also called by the destructor, once).
  void write() {
    if (!enabled() || written_) return;
    written_ = true;
    const std::string path = dir_ + "/BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (!out) {
      std::cerr << "warning: cannot write " << path << "\n";
      return;
    }
    out << "{\n  \"schema\": \"scmp-bench-v1\",\n  \"bench\": \""
        << escape(name_) << "\",\n  \"points\": [";
    for (std::size_t i = 0; i < points_.size(); ++i) {
      const Point& p = points_[i];
      out << (i == 0 ? "" : ",") << "\n    {\"series\": \""
          << escape(p.series) << "\", \"x\": " << num(p.x)
          << ", \"count\": " << p.summary.count
          << ", \"mean\": " << num(p.summary.mean)
          << ", \"ci95\": " << num(p.summary.ci95)
          << ", \"p50\": " << num(p.summary.p50)
          << ", \"p95\": " << num(p.summary.p95)
          << ", \"p99\": " << num(p.summary.p99)
          << ", \"min\": " << num(p.summary.min)
          << ", \"max\": " << num(p.summary.max) << "}";
    }
    out << "\n  ]\n}\n";
  }

 private:
  struct Point {
    std::string series;
    double x = 0.0;
    Summary summary;
  };

  static std::string escape(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  static std::string num(double v) {
    if (!std::isfinite(v)) return "null";  // JSON has no NaN / Inf
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
  }

  std::string name_;
  std::string dir_;
  std::vector<Point> points_;
  bool written_ = false;
};

}  // namespace scmp::bench
