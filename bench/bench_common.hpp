// Shared scaffolding for the Fig. 8 / Fig. 9 network-wide experiments
// (paper §IV-B): the three evaluation topologies and the scenario runner.
#pragma once

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "util/table.hpp"

#include "core/experiment.hpp"
#include "core/placement.hpp"
#include "topo/arpanet.hpp"
#include "topo/waxman.hpp"
#include "util/rng.hpp"

namespace scmp::bench {

inline std::vector<topo::Topology> evaluation_topologies(std::uint64_t seed) {
  std::vector<topo::Topology> topos;
  {
    Rng rng(seed);
    topos.push_back(topo::arpanet(rng));
  }
  {
    Rng rng(seed + 1);
    topos.push_back(topo::waxman_with_degree(50, 3.0, rng));
  }
  {
    Rng rng(seed + 2);
    topos.push_back(topo::waxman_with_degree(50, 5.0, rng));
  }
  return topos;
}

constexpr core::ProtocolKind kProtocols[] = {
    core::ProtocolKind::kScmp, core::ProtocolKind::kDvmrp,
    core::ProtocolKind::kMospf, core::ProtocolKind::kCbt};

/// Builds the §IV-B scenario: `group_size` random members, a source drawn
/// from the group (so shared-tree protocols need no per-packet
/// encapsulation — the data-overhead comparison then reflects pure tree
/// cost, which is what Fig. 8 correlates it with), one packet per second
/// from t=2 to t=30. Set `member_source=false` for an off-tree sender.
inline core::ScenarioConfig scenario_for(const graph::Graph& g,
                                         int group_size, std::uint64_t seed,
                                         bool member_source = true) {
  core::ScenarioConfig cfg;
  // The m-router (and CBT core) is placed by the paper's rule 1: the node
  // with the least average delay to all other nodes (§IV-A).
  {
    const graph::AllPairsPaths paths(g);
    cfg.mrouter =
        core::place_mrouter(g, paths, core::PlacementRule::kMinAverageDelay);
  }
  Rng rng(seed * 7919 + static_cast<std::uint64_t>(group_size));
  for (int v : rng.sample_without_replacement(g.num_nodes() - 1, group_size))
    cfg.members.push_back(v + 1);
  cfg.source = cfg.members.front();
  if (!member_source) {
    for (int attempt = 0; attempt < 64; ++attempt) {
      const auto v =
          static_cast<graph::NodeId>(rng.uniform_int(1, g.num_nodes() - 1));
      if (std::find(cfg.members.begin(), cfg.members.end(), v) ==
          cfg.members.end()) {
        cfg.source = v;
        break;
      }
    }
  }
  return cfg;
}

/// Prints each result table under a title and, when the binary was invoked
/// with `--csv <dir>`, mirrors it to <dir>/<stem>.csv for plotting.
class TableSink {
 public:
  TableSink(int argc, char** argv) {
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::string(argv[i]) == "--csv") csv_dir_ = argv[i + 1];
    }
  }

  void emit(const std::string& title, const std::string& stem,
            const Table& table) {
    std::cout << "== " << title << " ==\n";
    table.print(std::cout);
    std::cout << "\n";
    if (csv_dir_.empty()) return;
    const std::string path = csv_dir_ + "/" + stem + ".csv";
    std::ofstream out(path);
    if (!out) {
      std::cerr << "warning: cannot write " << path << "\n";
      return;
    }
    table.write_csv(out);
  }

  bool csv_enabled() const { return !csv_dir_.empty(); }

 private:
  std::string csv_dir_;
};

}  // namespace scmp::bench
