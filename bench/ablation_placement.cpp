// Ablation for the paper's m-router placement heuristics (§IV-A): compares
// the three rules (min average delay, max degree, diameter midpoint) and a
// naive first-node baseline by the DCDM tree cost and delay they produce,
// averaged over seeds and group sizes on the Fig. 7 Waxman configuration.
// The paper reports no single winner but says the rules do well "in most
// cases" — the table shows how each rule compares against the naive choice.
#include <iostream>

#include "bench_common.hpp"

#include "core/dcdm.hpp"
#include "core/placement.hpp"
#include "topo/waxman.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace scmp;
  bench::BenchJson json("ablation_placement", argc, argv);
  constexpr core::PlacementRule kRules[] = {
      core::PlacementRule::kFirstNode, core::PlacementRule::kMinAverageDelay,
      core::PlacementRule::kMaxDegree, core::PlacementRule::kDiameterMidpoint};
  constexpr int kSeeds = 10;
  constexpr int kGroupSizes[] = {10, 30, 50};

  std::cout << "Ablation: m-router placement rules (Waxman n=100, DCDM "
               "tightest constraint, " << kSeeds << " seeds)\n\n";

  Table table({"rule", "group", "tree-cost", "tree-delay", "cost/first-node"});
  for (const int group_size : kGroupSizes) {
    RunningStats cost[4], delay[4];
    for (int seed = 1; seed <= kSeeds; ++seed) {
      Rng rng(static_cast<std::uint64_t>(seed) * 131 + group_size);
      topo::WaxmanConfig cfg;
      cfg.num_nodes = 100;
      cfg.alpha = 0.25;
      cfg.beta = 0.2;
      const topo::Topology topo = topo::waxman(cfg, rng);
      const graph::Graph& g = topo.graph;
      const graph::AllPairsPaths paths(g);

      std::vector<graph::NodeId> members;
      for (int v :
           rng.sample_without_replacement(g.num_nodes(), group_size))
        members.push_back(v);

      for (std::size_t r = 0; r < 4; ++r) {
        const graph::NodeId root = core::place_mrouter(g, paths, kRules[r]);
        core::DcdmTree tree(g, paths, root, core::DcdmConfig{1.0});
        for (graph::NodeId m : members)
          if (m != root) tree.join(m);
        cost[r].add(tree.tree_cost());
        delay[r].add(tree.tree_delay());
      }
    }
    for (std::size_t r = 0; r < 4; ++r) {
      const std::string rule = core::to_string(kRules[r]);
      json.add_point(rule + ".tree_cost", group_size, cost[r]);
      json.add_point(rule + ".tree_delay", group_size, delay[r]);
      table.add_row({core::to_string(kRules[r]), std::to_string(group_size),
                     Table::num(cost[r].mean(), 0),
                     Table::num(delay[r].mean(), 0),
                     Table::num(cost[r].mean() / cost[0].mean(), 3)});
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected: the three paper rules produce cheaper/faster "
               "trees than the naive first-node placement in most "
               "configurations, with no single rule dominating.\n";
  return 0;
}
