// Ablation for the paper's traffic-concentration argument (§I: "the ST-based
// approach may cause traffic jam around the core, since packets from
// multiple sources may reach the core simultaneously ... packet loss and
// longer communication delay"; §V advantage 3: the m-router is "specially
// designed ... to efficiently handle heavy network traffic").
//
// Off-tree sources unicast-encapsulate to the shared-tree core, so their
// flows *converge* there. With ordinary-router buffers the convergence
// overflows the core's drop-tail queues; giving only the core the
// m-router's deep input/output buffers (Fig. 2(b)) absorbs the same burst.
// (A faster core alone would merely shift the loss one hop downstream — the
// buffering is the load-bearing piece of the design.)
#include <iostream>
#include <map>

#include "bench_common.hpp"

#include "core/placement.hpp"
#include "core/scmp.hpp"
#include "protocols/cbt.hpp"
#include "topo/waxman.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace scmp;

constexpr int kGroup = 1;
constexpr int kMembers = 12;
constexpr int kSenders = 8;      // off-tree sources (not group members)
constexpr int kBurst = 4;        // packets per sender per round
constexpr int kRounds = 3;
constexpr double kPortBps = 2e6;        // 1000 B packet = 4 ms transmission
constexpr double kSpacing = 1e-3;       // per-sender pacing inside a burst
constexpr std::size_t kQueueLimit = 4;  // ordinary-router buffers
constexpr std::size_t kDeepBuffers = 64;  // the m-router's buffers

struct Result {
  std::uint64_t queue_drops = 0;
  double delivery_ratio = 0.0;
  double max_e2e_ms = 0.0;
};

Result run(const graph::Graph& g, graph::NodeId core, bool scmp_protocol,
           bool deep_core_buffers, std::uint64_t seed) {
  sim::EventQueue queue;
  sim::Network net(g, queue, kPortBps);
  net.set_queue_limit(kQueueLimit);
  if (deep_core_buffers) net.set_node_queue_limit(core, kDeepBuffers);
  igmp::IgmpDomain igmp(queue, g.num_nodes());

  std::unique_ptr<proto::MulticastProtocol> protocol;
  if (scmp_protocol) {
    core::Scmp::Config cfg;
    cfg.mrouter = core;
    protocol = std::make_unique<core::Scmp>(net, igmp, cfg);
  } else {
    auto cbt = std::make_unique<proto::Cbt>(net, igmp);
    cbt->set_core(kGroup, core);
    protocol = std::move(cbt);
  }

  std::uint64_t delivered = 0;
  net.set_delivery_callback(
      [&](const sim::Packet&, graph::NodeId, sim::SimTime) { ++delivered; });

  Rng rng(seed);
  std::vector<graph::NodeId> members;
  std::vector<graph::NodeId> senders;
  {
    auto sample = rng.sample_without_replacement(g.num_nodes() - 1,
                                                 kMembers + kSenders);
    for (int i = 0; i < kMembers; ++i)
      members.push_back(sample[static_cast<std::size_t>(i)] + 1);
    for (int i = 0; i < kSenders; ++i)
      senders.push_back(sample[static_cast<std::size_t>(kMembers + i)] + 1);
  }
  for (graph::NodeId m : members) protocol->host_join(m, kGroup);
  queue.run_all();

  for (int round = 0; round < kRounds; ++round) {
    const double t0 = queue.now() + 0.5;
    // Every off-tree sender paces its own packets, but the eight
    // encapsulated flows still converge at the core within milliseconds.
    for (int p = 0; p < kBurst; ++p) {
      for (int s = 0; s < kSenders; ++s) {
        queue.schedule_at(t0 + p * kSpacing,
                          [&protocol, src = senders[static_cast<std::size_t>(s)]]() {
                            protocol->send_data(src, kGroup);
                          });
      }
    }
    queue.run_all();
  }

  Result r;
  r.queue_drops = net.stats().queue_drops;
  const double expected =
      static_cast<double>(kRounds) * kSenders * kBurst * kMembers;
  r.delivery_ratio = static_cast<double>(delivered) / expected;
  r.max_e2e_ms = net.stats().max_end_to_end_delay * 1e3;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  scmp::bench::BenchJson json("ablation_traffic_concentration", argc, argv);
  constexpr int kSeeds = 5;
  std::cout << "Ablation: traffic concentration at the shared-tree core\n"
            << "(" << kSenders << " off-tree senders x " << kBurst
            << "-packet bursts x " << kRounds << " rounds, "
            << kPortBps / 1e6 << " Mbps ports, ordinary buffers of "
            << kQueueLimit << " vs m-router buffers of " << kDeepBuffers
            << ")\n\n";

  Table table({"configuration", "queue-drops", "delivery-ratio",
               "max-e2e (ms)"});
  struct Config {
    const char* name;
    bool scmp;
    bool deep;
  };
  const Config configs[] = {
      {"CBT, ordinary core", false, false},
      {"SCMP, ordinary-router root", true, false},
      {"SCMP, m-router buffers at root", true, true},
  };
  int config_index = 0;
  for (const Config& c : configs) {
    RunningStats drops, ratio, delay;
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      Rng trng(seed * 100);
      const topo::Topology topo = topo::waxman_with_degree(50, 3.0, trng);
      const graph::AllPairsPaths paths(topo.graph);
      const graph::NodeId core = core::place_mrouter(
          topo.graph, paths, core::PlacementRule::kMinAverageDelay);
      const Result r = run(topo.graph, core, c.scmp, c.deep, seed * 31);
      drops.add(static_cast<double>(r.queue_drops));
      ratio.add(r.delivery_ratio);
      delay.add(r.max_e2e_ms);
    }
    json.add_point(std::string(c.name) + ".queue_drops", config_index, drops);
    json.add_point(std::string(c.name) + ".delivery_ratio", config_index,
                   ratio);
    json.add_point(std::string(c.name) + ".max_e2e_ms", config_index, delay);
    ++config_index;
    table.add_row({c.name, Table::num(drops.mean(), 0),
                   Table::num(ratio.mean(), 4), Table::num(delay.mean(), 1)});
  }
  table.print(std::cout);
  std::cout << "\nExpected: with ordinary buffers the convergence of the "
               "encapsulated flows overflows the core and packets are lost; "
               "the m-router's buffers absorb the burst (delivery ratio "
               "~1.0) at the cost of queueing delay at the core — the "
               "paper's §V trade-off made concrete.\n";
  return 0;
}
