// Micro-benchmarks of the self-routing TREE packet codec: encode, split (the
// per-hop i-router operation) and byte serialisation.
#include <benchmark/benchmark.h>

#include "core/tree_packet.hpp"
#include "graph/dijkstra.hpp"
#include "topo/waxman.hpp"

namespace {

using namespace scmp;

graph::MulticastTree make_tree(int n, int members) {
  Rng rng(17);
  topo::WaxmanConfig cfg;
  cfg.num_nodes = n;
  cfg.alpha = 0.25;
  cfg.beta = 0.2;
  const topo::Topology topo = topo::waxman(cfg, rng);
  const graph::ShortestPaths sp =
      dijkstra(topo.graph, 0, graph::Metric::kDelay);
  graph::MulticastTree tree(0, n);
  for (int v : rng.sample_without_replacement(n - 1, members))
    tree.graft_path(sp.path_to(v + 1));
  return tree;
}

void BM_EncodeSubtree(benchmark::State& state) {
  const auto tree = make_tree(200, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    for (graph::NodeId child : tree.children(0))
      benchmark::DoNotOptimize(core::encode_subtree(tree, child));
  }
}
BENCHMARK(BM_EncodeSubtree)->Arg(20)->Arg(100)->Arg(180);

void BM_SplitTreePacket(benchmark::State& state) {
  const auto tree = make_tree(200, static_cast<int>(state.range(0)));
  std::vector<core::TreeWords> packets;
  for (graph::NodeId child : tree.children(0))
    packets.push_back(core::encode_subtree(tree, child));
  for (auto _ : state) {
    for (const auto& words : packets)
      benchmark::DoNotOptimize(core::split_tree_packet(words));
  }
}
BENCHMARK(BM_SplitTreePacket)->Arg(100)->Arg(180);

void BM_BytesRoundTrip(benchmark::State& state) {
  const auto tree = make_tree(200, 180);
  core::TreeWords biggest;
  for (graph::NodeId child : tree.children(0)) {
    auto words = core::encode_subtree(tree, child);
    if (words.size() > biggest.size()) biggest = std::move(words);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::from_bytes(core::to_bytes(biggest)));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(biggest.size() * 4));
}
BENCHMARK(BM_BytesRoundTrip);

}  // namespace
