// Ablation for §III-E's design choice: incremental BRANCH packets versus
// reinstalling the full tree with TREE packets on every join. Measures SCMP
// protocol overhead for a join storm under both policies.
#include <iostream>

#include "bench_common.hpp"

#include "core/experiment.hpp"
#include "topo/waxman.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace scmp;
  bench::BenchJson json("ablation_branch_vs_tree", argc, argv);
  constexpr int kSeeds = 5;

  std::cout << "Ablation: BRANCH packets vs full TREE reinstalls "
               "(SCMP join storm, random n=50 topologies, " << kSeeds
            << " seeds)\n\n";

  Table table({"group", "branch(default)", "always-full-tree", "ratio"});
  for (int group_size = 8; group_size <= 40; group_size += 8) {
    RunningStats branch_oh, tree_oh;
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      Rng rng(seed * 313);
      const topo::Topology topo = topo::waxman_with_degree(50, 3.0, rng);
      const graph::Graph& g = topo.graph;

      core::ScenarioConfig cfg;
      cfg.mrouter = 0;
      Rng mrng(seed * 77 + static_cast<std::uint64_t>(group_size));
      for (int v :
           mrng.sample_without_replacement(g.num_nodes() - 1, group_size))
        cfg.members.push_back(v + 1);
      cfg.source = graph::kInvalidNode;  // join storm only, no data
      cfg.data_interval = 0.0;

      cfg.scmp_always_full_tree = false;
      branch_oh.add(core::run_scenario(core::ProtocolKind::kScmp, g, cfg)
                        .stats.protocol_overhead);
      cfg.scmp_always_full_tree = true;
      tree_oh.add(core::run_scenario(core::ProtocolKind::kScmp, g, cfg)
                      .stats.protocol_overhead);
    }
    json.add_point("branch.protocol_overhead", group_size, branch_oh);
    json.add_point("full_tree.protocol_overhead", group_size, tree_oh);
    table.add_row({std::to_string(group_size), Table::num(branch_oh.mean(), 0),
                   Table::num(tree_oh.mean(), 0),
                   Table::num(tree_oh.mean() / branch_oh.mean(), 2)});
  }
  table.print(std::cout);
  std::cout << "\nExpected: full-tree reinstalls cost strictly more protocol "
               "overhead, and the gap widens with group size — the paper's "
               "rationale for BRANCH packets.\n";
  return 0;
}
