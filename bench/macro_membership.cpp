// Macro benchmark for the epoch-batched membership pipeline: how many DCDM
// recomputations does the control plane pay per membership event, and how
// fast does it chew through a membership storm?
//
// Two workloads on a GT-ITM-style transit-stub internetwork (624 routers):
//
//   flash  — 10k joins hit 20 hot groups inside a 5-second window (the
//            flash-crowd regime the ISSUE targets). Per-request processing
//            recomputes a tree for every single join; epoch batching folds
//            the whole window into a handful of net-resolved recomputations.
//   zipf   — 20k Zipf-popular join/leave churn events over 50 seconds across
//            500 groups (the steady-state regime).
//
// Each workload sweeps the epoch close interval; x = interval seconds.
// Emitted series (BENCH_macro_membership.json, schema scmp-bench-v1):
//
//   <wl>/recomputes_per_event — DCDM recomputations per membership event.
//       Deterministic (pure counter arithmetic) and committed to
//       bench/baseline/: lower is better, so bench_diff.py flags a batching
//       regression as a slowdown.
//   <wl>/seconds_per_event — wall-clock per event. Machine-dependent, NOT
//       committed to the baseline (bench_diff reports it informally as
//       "new").
//
// The binary also enforces the ISSUE's acceptance bar directly: at the
// flash crowd, interval=0.5 must spend at least 10x fewer recomputations
// per event than interval=0, else it exits non-zero.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

#include "core/scmp.hpp"
#include "igmp/igmp.hpp"
#include "obs/metrics.hpp"
#include "sim/event_queue.hpp"
#include "sim/network.hpp"
#include "topo/transit_stub.hpp"
#include "topo/workload.hpp"
#include "util/rng.hpp"

namespace {

using namespace scmp;

struct RunResult {
  int events = 0;
  std::uint64_t recomputes = 0;  ///< DCDM tree computations performed
  std::uint64_t flushes = 0;     ///< epoch closes (0 in per-request mode)
  std::uint64_t coalesced = 0;   ///< groups skipped as net no-ops at a close
  double seconds = 0.0;          ///< wall clock for the whole storm
};

/// Replays `events` through a fresh world at the given epoch interval.
RunResult run_storm(const topo::Topology& topo,
                    const std::vector<topo::MemberEvent>& events,
                    double interval) {
  sim::EventQueue queue;
  sim::Network net(topo.graph, queue);
  igmp::IgmpDomain igmp(queue, topo.graph.num_nodes());
  core::Scmp::Config cfg;
  cfg.mrouter = 0;
  cfg.epoch_interval = interval;
  core::Scmp scmp(net, igmp, cfg);

  for (const topo::MemberEvent& ev : events) {
    queue.schedule_in(ev.time, [&scmp, ev] {
      if (ev.join)
        scmp.host_join(ev.router, ev.group, ev.iface, ev.host);
      else
        scmp.host_leave(ev.router, ev.group, ev.iface, ev.host);
    });
  }

  // Per-request mode recomputes on every m-router membership request; the
  // epoch pipeline counts its own recomputations at each close.
  const obs::Counter& joins = obs::counter("scmp.joins");
  const obs::Counter& leaves = obs::counter("scmp.leaves");
  const obs::Counter& epoch_recomputes = obs::counter("scmp.epoch.recomputes");
  const obs::Counter& epoch_flushes = obs::counter("scmp.epoch.flushes");
  const obs::Counter& epoch_coalesced = obs::counter("scmp.epoch.coalesced");
  const std::uint64_t joins0 = joins.value();
  const std::uint64_t leaves0 = leaves.value();
  const std::uint64_t recomputes0 = epoch_recomputes.value();
  const std::uint64_t flushes0 = epoch_flushes.value();
  const std::uint64_t coalesced0 = epoch_coalesced.value();

  const auto t0 = std::chrono::steady_clock::now();
  queue.run_all();
  const auto t1 = std::chrono::steady_clock::now();

  RunResult r;
  r.events = static_cast<int>(events.size());
  r.recomputes = interval > 0.0
                     ? epoch_recomputes.value() - recomputes0
                     : (joins.value() - joins0) + (leaves.value() - leaves0);
  r.flushes = epoch_flushes.value() - flushes0;
  r.coalesced = epoch_coalesced.value() - coalesced0;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  return r;
}

RunningStats single(double v) {
  RunningStats s;
  s.add(v);
  return s;
}

void report(bench::BenchJson& json, const char* workload,
            const topo::Topology& topo,
            const std::vector<topo::MemberEvent>& events, double interval,
            RunResult& out) {
  out = run_storm(topo, events, interval);
  const double per_event =
      out.events == 0 ? 0.0
                      : static_cast<double>(out.recomputes) / out.events;
  std::printf(
      "  %-5s interval=%-4g  %6d events  %6llu recomputes  (%7.4f/event)  "
      "%4llu flush(es)  %5llu coalesced  %7.3fs wall  (%.0f events/s)\n",
      workload, interval, out.events,
      static_cast<unsigned long long>(out.recomputes), per_event,
      static_cast<unsigned long long>(out.flushes),
      static_cast<unsigned long long>(out.coalesced), out.seconds,
      out.seconds > 0.0 ? out.events / out.seconds : 0.0);
  const std::string prefix = std::string(workload) + "/";
  json.add_point(prefix + "recomputes_per_event", interval,
                 single(per_event));
  json.add_point(prefix + "seconds_per_event", interval,
                 single(out.events == 0 ? 0.0 : out.seconds / out.events));
}

}  // namespace

int main(int argc, char** argv) {
  obs::set_metrics_enabled(true);
  bench::BenchJson json("macro_membership", argc, argv);

  // 4 transit domains x 6 routers, 5 stub domains of 5 routers per transit
  // node: 624 routers, the ROADMAP's "large internetwork" scale.
  topo::TransitStubConfig tcfg;
  tcfg.transit_domains = 4;
  tcfg.transit_nodes = 6;
  tcfg.stub_domains_per_node = 5;
  tcfg.stub_nodes = 5;
  Rng topo_rng(7);
  const topo::Topology topo = topo::transit_stub(tcfg, topo_rng);
  const int n = topo.graph.num_nodes();
  std::printf("macro_membership: %s (%d routers, %d edges)\n\n",
              topo.name.c_str(), n, topo.graph.num_edges());

  topo::FlashCrowdConfig fcfg;  // 10k joins, 20 hot groups, 5 s window
  fcfg.num_groups = 20;
  fcfg.crowd = 10000;
  Rng flash_rng(11);
  const std::vector<topo::MemberEvent> flash =
      topo::flash_crowd(fcfg, n, flash_rng);

  topo::ZipfChurnConfig zcfg;  // 20k churn events, 500 groups, 50 s horizon
  zcfg.num_groups = 500;
  zcfg.num_events = 20000;
  zcfg.horizon = 50.0;
  Rng zipf_rng(13);
  const std::vector<topo::MemberEvent> zipf =
      topo::zipf_churn(zcfg, n, zipf_rng);

  RunResult flash_base, flash_batched, scratch;
  report(json, "flash", topo, flash, 0.0, flash_base);
  report(json, "flash", topo, flash, 0.5, flash_batched);
  report(json, "flash", topo, flash, 1.0, scratch);
  report(json, "flash", topo, flash, 2.0, scratch);
  std::printf("\n");
  report(json, "zipf", topo, zipf, 0.0, scratch);
  report(json, "zipf", topo, zipf, 0.5, scratch);

  // Acceptance bar: the flash crowd must see >= 10x fewer recomputations
  // per event at interval=0.5 than per-request processing pays.
  const double base = static_cast<double>(flash_base.recomputes);
  const double batched = static_cast<double>(flash_batched.recomputes);
  const double ratio = batched > 0.0 ? base / batched : 0.0;
  std::printf("\nflash recompute reduction at interval=0.5: %.1fx %s\n",
              ratio, ratio >= 10.0 ? "(PASS, bar is 10x)" : "(FAIL)");
  return ratio >= 10.0 ? 0 : 1;
}
