// Extension ablation for §II-A's multi-m-router deployment: "An ISP may own
// more than one m-routers in the Internet for serving its customers in
// different geographic regions". We model exactly that premise: groups are
// regional (members cluster around a random point), m-routers are placed by
// greedy k-median (central but spread out), and the ISP allocates each
// group's id from its regional m-router's block (so the published static
// id -> m-router mapping sends each group to its nearest anchor). The same
// workload is then served by 1, 2 or 4 m-routers.
#include <algorithm>
#include <iostream>
#include <map>

#include "bench_common.hpp"

#include "core/scmp.hpp"
#include "topo/waxman.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace scmp;

/// Greedy k-median: repeatedly add the node that most reduces the sum over
/// all nodes of the delay to their nearest chosen m-router.
std::vector<graph::NodeId> kmedian_mrouters(const graph::Graph& g,
                                            const graph::AllPairsPaths& paths,
                                            int k) {
  const int n = g.num_nodes();
  std::vector<graph::NodeId> chosen;
  std::vector<double> nearest(static_cast<std::size_t>(n),
                              graph::kUnreachable);
  for (int round = 0; round < k; ++round) {
    graph::NodeId best = graph::kInvalidNode;
    double best_total = graph::kUnreachable;
    for (graph::NodeId cand = 0; cand < n; ++cand) {
      if (std::find(chosen.begin(), chosen.end(), cand) != chosen.end())
        continue;
      double total = 0.0;
      for (graph::NodeId v = 0; v < n; ++v)
        total += std::min(nearest[static_cast<std::size_t>(v)],
                          paths.sl_delay(cand, v));
      if (total < best_total) {
        best_total = total;
        best = cand;
      }
    }
    chosen.push_back(best);
    for (graph::NodeId v = 0; v < n; ++v)
      nearest[static_cast<std::size_t>(v)] =
          std::min(nearest[static_cast<std::size_t>(v)],
                   paths.sl_delay(best, v));
  }
  return chosen;
}

/// The `count` nodes closest to `center` by delay (deterministic tie-break).
std::vector<graph::NodeId> regional_members(const graph::AllPairsPaths& paths,
                                            graph::NodeId center, int count) {
  std::vector<graph::NodeId> all(static_cast<std::size_t>(paths.num_nodes()));
  for (int v = 0; v < paths.num_nodes(); ++v)
    all[static_cast<std::size_t>(v)] = v;
  std::sort(all.begin(), all.end(), [&](graph::NodeId a, graph::NodeId b) {
    const double da = paths.sl_delay(center, a);
    const double db = paths.sl_delay(center, b);
    if (da != db) return da < db;
    return a < b;
  });
  all.resize(static_cast<std::size_t>(count));
  return all;
}

struct Metrics {
  double protocol_overhead = 0.0;
  double data_overhead = 0.0;
  double max_e2e_ms = 0.0;
};

Metrics run(const graph::Graph& g, const graph::AllPairsPaths& paths, int k,
            std::uint64_t seed) {
  sim::EventQueue queue;
  sim::Network net(g, queue);
  igmp::IgmpDomain igmp(queue, g.num_nodes());
  core::Scmp::Config cfg;
  cfg.mrouters = kmedian_mrouters(g, paths, k);
  core::Scmp scmp(net, igmp, cfg);

  constexpr int kGroups = 8;
  constexpr int kMembers = 8;
  Rng rng(seed);
  std::vector<std::pair<int, std::vector<graph::NodeId>>> groups;
  for (int i = 0; i < kGroups; ++i) {
    const auto center =
        static_cast<graph::NodeId>(rng.uniform_int(0, g.num_nodes() - 1));
    auto members = regional_members(paths, center, kMembers);
    // The ISP allocates the group id from the regional m-router's block, so
    // the static id -> m-router mapping anchors the group at its nearest
    // m-router.
    int nearest_idx = 0;
    for (int j = 1; j < k; ++j) {
      if (paths.sl_delay(center, cfg.mrouters[static_cast<std::size_t>(j)]) <
          paths.sl_delay(center,
                         cfg.mrouters[static_cast<std::size_t>(nearest_idx)]))
        nearest_idx = j;
    }
    const int gid = (i + 1) * k + nearest_idx;
    groups.emplace_back(gid, std::move(members));
  }

  for (const auto& [gid, members] : groups)
    for (graph::NodeId m : members) scmp.host_join(m, gid);
  queue.run_all();

  for (int round = 0; round < 10; ++round) {
    for (const auto& [gid, members] : groups)
      scmp.send_data(members.front(), gid);
    queue.run_all();
  }

  Metrics m;
  m.protocol_overhead = net.stats().protocol_overhead;
  m.data_overhead = net.stats().data_overhead;
  m.max_e2e_ms = net.stats().max_end_to_end_delay * 1e3;
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  scmp::bench::BenchJson json("ablation_multi_mrouter", argc, argv);
  constexpr int kSeeds = 5;
  std::cout << "Ablation: 1 vs 2 vs 4 m-routers serving 8 regional groups\n"
               "(random n=50 deg-3 topologies, " << kSeeds << " seeds)\n\n";

  Table table({"m-routers", "protocol-overhead", "data-overhead",
               "max-e2e (ms)"});
  for (const int k : {1, 2, 4}) {
    RunningStats proto, data, delay;
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      Rng trng(seed * 100);
      const topo::Topology topo = topo::waxman_with_degree(50, 3.0, trng);
      const graph::AllPairsPaths paths(topo.graph);
      const Metrics m = run(topo.graph, paths, k, seed * 7 + 3);
      proto.add(m.protocol_overhead);
      data.add(m.data_overhead);
      delay.add(m.max_e2e_ms);
    }
    json.add_point("protocol_overhead", k, proto);
    json.add_point("data_overhead", k, data);
    json.add_point("max_e2e_ms", k, delay);
    table.add_row({std::to_string(k), Table::num(proto.mean(), 0),
                   Table::num(data.mean(), 0), Table::num(delay.mean(), 3)});
  }
  table.print(std::cout);
  std::cout << "\nExpected: with regional groups, more m-routers keep JOINs, "
               "tree installs and shared trees local — protocol overhead, "
               "data overhead and worst-case delay all drop versus one "
               "domain-central m-router.\n";
  return 0;
}
