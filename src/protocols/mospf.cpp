#include "protocols/mospf.hpp"

#include "util/log.hpp"

namespace scmp::proto {

Mospf::Mospf(sim::Network& net, igmp::IgmpDomain& igmp)
    : MulticastProtocol(net, igmp) {
  const auto n = static_cast<std::size_t>(net.graph().num_nodes());
  views_.resize(n);
  seen_.resize(n);
  next_seq_.assign(n, 0);
}

void Mospf::handle_packet(graph::NodeId at, const sim::Packet& pkt,
                          graph::NodeId from) {
  switch (pkt.type) {
    case sim::PacketType::kData:
      handle_data(at, pkt, from);
      break;
    case sim::PacketType::kGroupLsa:
      handle_lsa(at, pkt, from);
      break;
    default:
      // Foreign-protocol traffic through the shared Network plumbing:
      // counted + logged (net.drops.unexpected_type), not a crash.
      drop_unexpected(at, pkt);
      break;
  }
}

void Mospf::flood_lsa(graph::NodeId origin, GroupId group, bool is_member) {
  sim::Packet lsa;
  lsa.type = sim::PacketType::kGroupLsa;
  lsa.group = group;
  lsa.src = origin;
  lsa.uid = ++next_seq_[static_cast<std::size_t>(origin)];
  lsa.payload = {static_cast<std::uint8_t>(is_member ? 1 : 0)};

  // The originator applies the LSA to its own view, then floods.
  seen_[static_cast<std::size_t>(origin)].insert({origin, lsa.uid});
  auto& view = views_[static_cast<std::size_t>(origin)][group];
  if (is_member) view.insert(origin); else view.erase(origin);
  if (convergence() != nullptr) convergence()->note_state_change(group);

  for (const auto& nb : net().graph().neighbors(origin))
    net().send_link(origin, nb.to, lsa);
}

void Mospf::handle_lsa(graph::NodeId at, const sim::Packet& pkt,
                       graph::NodeId from) {
  if (!seen_[static_cast<std::size_t>(at)].insert({pkt.src, pkt.uid}).second)
    return;  // already flooded through this router
  auto& view = views_[static_cast<std::size_t>(at)][pkt.group];
  SCMP_EXPECTS(!pkt.payload.empty());
  if (pkt.payload[0] != 0) view.insert(pkt.src); else view.erase(pkt.src);
  if (convergence() != nullptr) convergence()->note_state_change(pkt.group);
  for (const auto& nb : net().graph().neighbors(at)) {
    if (nb.to != from) net().send_link(at, nb.to, pkt);
  }
}

const graph::ShortestPaths& Mospf::spt(graph::NodeId source) {
  auto it = spt_cache_.find(source);
  if (it == spt_cache_.end()) {
    it = spt_cache_
             .emplace(source, graph::dijkstra(net().graph(), source,
                                              graph::Metric::kDelay))
             .first;
  }
  return it->second;
}

void Mospf::handle_data(graph::NodeId at, const sim::Packet& pkt,
                        graph::NodeId from) {
  const graph::ShortestPaths& tree = spt(pkt.src);

  // RPF against the canonical SPT: accept only from the tree parent.
  if (from != graph::kInvalidNode &&
      tree.parent[static_cast<std::size_t>(at)] != from) {
    return;
  }

  if (router_is_member(at, pkt.group)) deliver_locally(at, pkt);

  // Forward to exactly those SPT children whose subtree contains a member
  // according to this router's LSA view: for each viewed member, the child
  // on the member's root path (if it runs through `at`) must receive a copy.
  const auto& view = views_[static_cast<std::size_t>(at)][pkt.group];
  std::set<graph::NodeId> forward_to;
  for (graph::NodeId member : view) {
    if (member == at) continue;
    // Walk the member's path toward the source; if `at` is on it, the node
    // walked through just before `at` is the child that needs the packet.
    graph::NodeId prev = graph::kInvalidNode;
    for (graph::NodeId cur = member; cur != graph::kInvalidNode;
         cur = tree.parent[static_cast<std::size_t>(cur)]) {
      if (cur == at) {
        if (prev != graph::kInvalidNode) forward_to.insert(prev);
        break;
      }
      prev = cur;
    }
  }
  for (graph::NodeId child : forward_to) net().send_link(at, child, pkt);
}

void Mospf::send_data(graph::NodeId source, GroupId group) {
  sim::Packet pkt = make_data_packet(source, group);
  net().inject(source, std::move(pkt));
}

void Mospf::interface_joined(graph::NodeId router, GroupId group,
                             int /*iface*/, bool /*first_iface*/) {
  // The paper attributes MOSPF's steep protocol overhead to an LSA flood on
  // *every* membership change, so we flood per host transition, not only on
  // first/last interface.
  if (convergence() != nullptr) convergence()->note_event(group);
  flood_lsa(router, group, /*is_member=*/true);
}

void Mospf::interface_left(graph::NodeId router, GroupId group, int /*iface*/,
                           bool last_iface) {
  if (convergence() != nullptr) convergence()->note_event(group);
  flood_lsa(router, group, /*is_member=*/!last_iface ||
                               router_is_member(router, group));
}

std::set<graph::NodeId> Mospf::view_of(graph::NodeId router,
                                       GroupId group) const {
  const auto& groups = views_[static_cast<std::size_t>(router)];
  const auto it = groups.find(group);
  return it == groups.end() ? std::set<graph::NodeId>{} : it->second;
}

}  // namespace scmp::proto
