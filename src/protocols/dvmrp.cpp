#include "protocols/dvmrp.hpp"

#include "util/log.hpp"

namespace scmp::proto {

Dvmrp::Dvmrp(sim::Network& net, igmp::IgmpDomain& igmp, double prune_lifetime)
    : MulticastProtocol(net, igmp), prune_lifetime_(prune_lifetime) {
  SCMP_EXPECTS(prune_lifetime > 0.0);
  const auto n = static_cast<std::size_t>(net.graph().num_nodes());
  prunes_received_.resize(n);
  prune_sent_.resize(n);
}

std::vector<graph::NodeId> Dvmrp::rpf_children(graph::NodeId at,
                                               graph::NodeId source) const {
  std::vector<graph::NodeId> kids;
  for (const auto& nb : net().graph().neighbors(at)) {
    if (nb.to == source) continue;
    if (net().routing().rpf_neighbor(nb.to, source) == at) kids.push_back(nb.to);
  }
  return kids;
}

void Dvmrp::send_data(graph::NodeId source, GroupId group) {
  sim::Packet pkt = make_data_packet(source, group);
  net().inject(source, std::move(pkt));
}

void Dvmrp::handle_packet(graph::NodeId at, const sim::Packet& pkt,
                          graph::NodeId from) {
  switch (pkt.type) {
    case sim::PacketType::kData:
      handle_data(at, pkt, from);
      break;
    case sim::PacketType::kDvmrpPrune:
      handle_prune(at, pkt, from);
      break;
    case sim::PacketType::kDvmrpGraft:
      handle_graft(at, pkt, from);
      break;
    default:
      // Foreign-protocol traffic through the shared Network plumbing:
      // counted + logged (net.drops.unexpected_type), not a crash.
      drop_unexpected(at, pkt);
      break;
  }
}

void Dvmrp::handle_data(graph::NodeId at, const sim::Packet& pkt,
                        graph::NodeId from) {
  const graph::NodeId source = pkt.src;
  const SgKey key{pkt.group, source};

  // RPF check: accept only from the reverse-path neighbour toward the source.
  if (from != graph::kInvalidNode && at != source &&
      net().routing().rpf_neighbor(at, source) != from) {
    return;  // duplicate off-tree copy; dropped
  }

  if (router_is_member(at, pkt.group)) deliver_locally(at, pkt);

  // Forward down the truncated broadcast tree, skipping pruned branches.
  const double now = net().now();
  auto& pruned = prunes_received_[static_cast<std::size_t>(at)][key];
  int forwarded = 0;
  for (graph::NodeId child : rpf_children(at, source)) {
    const auto it = pruned.find(child);
    if (it != pruned.end() && it->second > now) continue;  // prune active
    net().send_link(at, child, pkt);
    ++forwarded;
  }

  // A leaf of the broadcast tree with no members prunes itself upstream.
  if (forwarded == 0 && !router_is_member(at, pkt.group) && at != source &&
      from != graph::kInvalidNode) {
    send_prune_upstream(at, pkt.group, source);
  }
}

void Dvmrp::send_prune_upstream(graph::NodeId at, GroupId group,
                                graph::NodeId source) {
  auto& sent = prune_sent_[static_cast<std::size_t>(at)];
  const SgKey key{group, source};
  const double now = net().now();
  const auto it = sent.find(key);
  if (it != sent.end() && it->second > now) return;  // already pruned
  sent[key] = now + prune_lifetime_;
  if (convergence() != nullptr) convergence()->note_state_change(group);

  sim::Packet prune;
  prune.type = sim::PacketType::kDvmrpPrune;
  prune.group = group;
  prune.src = source;  // identifies the (source, group) pair being pruned
  prune.created_at = now;  // the lifetime is anchored at the sender's clock
  net().send_link(at, net().routing().rpf_neighbor(at, source), prune);
}

void Dvmrp::handle_prune(graph::NodeId at, const sim::Packet& pkt,
                         graph::NodeId from) {
  SCMP_EXPECTS(from != graph::kInvalidNode);
  const graph::NodeId source = pkt.src;
  const SgKey key{pkt.group, source};
  const double now = net().now();
  // Expiry anchored at the sender's timestamp so both ends of the link agree
  // on when the prune lapses (no one-propagation-delay suppression window).
  prunes_received_[static_cast<std::size_t>(at)][key][from] =
      pkt.created_at + prune_lifetime_;
  if (convergence() != nullptr) convergence()->note_state_change(pkt.group);

  // If every downstream branch is now pruned and we have no members either,
  // the prune cascades upstream.
  if (router_is_member(at, pkt.group) || at == source) return;
  for (graph::NodeId child : rpf_children(at, source)) {
    const auto& pruned = prunes_received_[static_cast<std::size_t>(at)][key];
    const auto it = pruned.find(child);
    if (it == pruned.end() || it->second <= now) return;  // live branch left
  }
  send_prune_upstream(at, pkt.group, source);
}

void Dvmrp::send_graft_upstream(graph::NodeId at, GroupId group,
                                graph::NodeId source) {
  sim::Packet graft;
  graft.type = sim::PacketType::kDvmrpGraft;
  graft.group = group;
  graft.src = source;
  net().send_link(at, net().routing().rpf_neighbor(at, source), graft);
}

void Dvmrp::handle_graft(graph::NodeId at, const sim::Packet& pkt,
                         graph::NodeId from) {
  SCMP_EXPECTS(from != graph::kInvalidNode);
  const SgKey key{pkt.group, pkt.src};
  auto& pruned = prunes_received_[static_cast<std::size_t>(at)];
  const auto it = pruned.find(key);
  if (it != pruned.end()) it->second.erase(from);
  if (convergence() != nullptr) convergence()->note_state_change(pkt.group);

  // The graft propagates all the way to the source, clearing any suppression
  // a cascade may have left on the reverse path (a cascaded ancestor's prune
  // can outlive the joiner's own record, so stopping at routers without an
  // active prune_sent entry would strand the branch).
  prune_sent_[static_cast<std::size_t>(at)].erase(key);
  if (at != pkt.src) send_graft_upstream(at, pkt.group, pkt.src);
}

void Dvmrp::interface_joined(graph::NodeId router, GroupId group,
                             int /*iface*/, bool first_iface) {
  if (!first_iface) return;
  if (convergence() != nullptr) convergence()->note_event(group);
  // Graft back every (source, group) branch this router had pruned. The
  // graft is sent even when the local prune record has already expired: the
  // upstream's copy expires one propagation delay later, so a join landing
  // in that window would otherwise leave the branch suppressed while no
  // graft repairs it. A stale graft is harmless.
  auto& sent = prune_sent_[static_cast<std::size_t>(router)];
  for (auto it = sent.begin(); it != sent.end();) {
    if (it->first.group == group) {
      send_graft_upstream(router, group, it->first.source);
      it = sent.erase(it);
    } else {
      ++it;
    }
  }
}

void Dvmrp::interface_left(graph::NodeId /*router*/, GroupId group,
                           int /*iface*/, bool last_iface) {
  // Nothing proactive: the next data packet arriving at a now-memberless
  // leaf triggers the prune (dense-mode behaviour). The convergence
  // measurement still opens — dense-mode leaves settle only when data
  // traffic provokes the prune, and that latency is exactly what the
  // tracker should surface.
  if (last_iface && convergence() != nullptr) convergence()->note_event(group);
}

bool Dvmrp::prune_active(graph::NodeId at, GroupId group,
                         graph::NodeId source) const {
  const auto& sent = prune_sent_[static_cast<std::size_t>(at)];
  const auto it = sent.find(SgKey{group, source});
  return it != sent.end() && it->second > net().now();
}

}  // namespace scmp::proto
