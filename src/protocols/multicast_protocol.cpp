#include "protocols/multicast_protocol.hpp"

#include "obs/metrics.hpp"
#include "util/contracts.hpp"
#include "util/log.hpp"

namespace scmp::proto {

MulticastProtocol::MulticastProtocol(sim::Network& net, igmp::IgmpDomain& igmp)
    : net_(&net), igmp_(&igmp) {
  const int n = net.graph().num_nodes();
  SCMP_EXPECTS(n > 0);
  adapters_.reserve(static_cast<std::size_t>(n));
  for (graph::NodeId v = 0; v < n; ++v) {
    auto adapter = std::make_unique<NodeAdapter>();
    adapter->protocol = this;
    adapter->node = v;
    net.attach(v, adapter.get());
    adapters_.push_back(std::move(adapter));
  }
  igmp.set_listener(this);
}

MulticastProtocol::~MulticastProtocol() {
  igmp_->set_listener(nullptr);
  for (graph::NodeId v = 0; v < net_->graph().num_nodes(); ++v)
    net_->attach(v, nullptr);
}

void MulticastProtocol::audit_state(
    std::vector<std::string>& violations) const {
  (void)violations;  // nothing to check by default
}

void MulticastProtocol::host_join(graph::NodeId router, GroupId group,
                                  int iface, int host) {
  igmp_->host_join(router, iface, host, group);
}

void MulticastProtocol::host_leave(graph::NodeId router, GroupId group,
                                   int iface, int host) {
  igmp_->host_leave(router, iface, host, group);
}

void MulticastProtocol::enable_convergence_tracking(double quiet_period,
                                                    double timeout) {
  ConvergenceTracker::Config cfg;
  cfg.quiescence = convergence_by_quiescence();
  cfg.quiet_period = quiet_period;
  cfg.timeout = timeout;
  convergence_ = std::make_unique<ConvergenceTracker>(net_->queue(), name(),
                                                      cfg);
}

void MulticastProtocol::drop_unexpected(graph::NodeId at,
                                        const sim::Packet& pkt) {
  obs::counter("net.drops.unexpected_type", name()).inc();
  log_debug(name(), ": dropping unexpected ", sim::to_string(pkt.type),
            " packet at node ", at);
}

sim::Packet MulticastProtocol::make_data_packet(graph::NodeId source,
                                                GroupId group) {
  sim::Packet pkt;
  pkt.type = sim::PacketType::kData;
  pkt.group = group;
  pkt.src = source;
  pkt.uid = net_->next_uid();
  pkt.created_at = net_->now();
  pkt.size_bytes = sim::kDataPacketBytes;
  return pkt;
}

}  // namespace scmp::proto
