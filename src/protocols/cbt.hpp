// CBT baseline (paper ref [5]): a single bidirectional shared tree per group
// rooted at a core router. A joining router sends a JOIN_REQUEST hop-by-hop
// toward the core; the first on-tree router (or the core) answers with a
// JOIN_ACK that travels back along the recorded path, instantiating
// forwarding state at every hop. Leaves QUIT upstream. Off-tree sources
// unicast-encapsulate data to the core. Per the paper's §IV-A methodology the
// core is placed at the same node as SCMP's m-router, and core election is
// not simulated.
#pragma once

#include <map>
#include <set>

#include "protocols/multicast_protocol.hpp"

namespace scmp::proto {

class Cbt final : public MulticastProtocol {
 public:
  Cbt(sim::Network& net, igmp::IgmpDomain& igmp);

  std::string name() const override { return "CBT"; }

  /// Assigns the core router of a group (must precede any join for it).
  void set_core(GroupId group, graph::NodeId core);
  graph::NodeId core_of(GroupId group) const;

  /// Simulates a core failure (the single point of failure §I criticises
  /// ST-based protocols for): the core stops processing every packet — new
  /// joins get no service, off-tree senders' encapsulated data blackholes,
  /// and traffic crossing the core on the shared tree dies. CBT has no
  /// repair mechanism (core re-election is out of scope, as in the paper's
  /// own simulations).
  void fail_core(GroupId group);
  bool core_failed(GroupId group) const;

  void handle_packet(graph::NodeId at, const sim::Packet& pkt,
                     graph::NodeId from) override;
  void send_data(graph::NodeId source, GroupId group) override;

  void interface_joined(graph::NodeId router, GroupId group, int iface,
                        bool first_iface) override;
  void interface_left(graph::NodeId router, GroupId group, int iface,
                      bool last_iface) override;

  /// CBT's hard-state invariants at quiescence: upstream/downstream edge
  /// symmetry, acyclic upstream chains anchored at the core, no memberless
  /// leaf state, and every member router on the tree. Groups whose core
  /// failed are skipped — with the core dead, joins stall mid-flight by
  /// design and the state is legitimately inconsistent.
  void audit_state(std::vector<std::string>& violations) const override;

  // Introspection for tests.
  bool on_tree(graph::NodeId router, GroupId group) const;
  graph::NodeId upstream_of(graph::NodeId router, GroupId group) const;
  std::set<graph::NodeId> downstream_of(graph::NodeId router,
                                        GroupId group) const;

 private:
  struct Entry {
    graph::NodeId upstream = graph::kInvalidNode;  ///< kInvalidNode at core
    std::set<graph::NodeId> downstream;
  };

  Entry* entry(graph::NodeId at, GroupId group);
  const Entry* entry(graph::NodeId at, GroupId group) const;

  void start_join(graph::NodeId router, GroupId group);
  void handle_join(graph::NodeId at, const sim::Packet& pkt,
                   graph::NodeId from);
  void handle_ack(graph::NodeId at, const sim::Packet& pkt,
                  graph::NodeId from);
  void handle_quit(graph::NodeId at, const sim::Packet& pkt,
                   graph::NodeId from);
  void handle_data(graph::NodeId at, const sim::Packet& pkt,
                   graph::NodeId from);
  void maybe_quit(graph::NodeId at, GroupId group);

  std::map<GroupId, graph::NodeId> cores_;
  std::set<GroupId> failed_cores_;
  /// state_[router][group] -> Entry (present iff on tree).
  std::vector<std::map<GroupId, Entry>> state_;
  /// Joins in flight, to suppress duplicates: pending_[router] ∋ group.
  std::vector<std::set<GroupId>> pending_;
};

}  // namespace scmp::proto
