// DVMRP baseline (paper ref [2]): dense-mode flood-and-prune on per-source
// reverse-path trees. Data is flooded down the RPF (truncated broadcast)
// tree; leaf routers without members prune their (source, group) branch
// upstream; prune state expires after a lifetime, causing the periodic
// re-floods that dominate DVMRP's data overhead in Fig. 8. A member joining
// below a pruned branch grafts it back immediately.
#pragma once

#include <map>

#include "protocols/multicast_protocol.hpp"

namespace scmp::proto {

class Dvmrp final : public MulticastProtocol {
 public:
  /// `prune_lifetime` is the seconds a prune stays effective before its
  /// branch refloods (real DVMRP uses ~2h; simulations shorten it so the
  /// reflood behaviour is visible inside the run).
  Dvmrp(sim::Network& net, igmp::IgmpDomain& igmp, double prune_lifetime = 8.0);

  std::string name() const override { return "DVMRP"; }

  void handle_packet(graph::NodeId at, const sim::Packet& pkt,
                     graph::NodeId from) override;
  void send_data(graph::NodeId source, GroupId group) override;

  // IGMP transitions.
  void interface_joined(graph::NodeId router, GroupId group, int iface,
                        bool first_iface) override;
  void interface_left(graph::NodeId router, GroupId group, int iface,
                      bool last_iface) override;

  /// True when `at` currently has an active prune sent upstream for
  /// (group, source) — exposed for tests.
  bool prune_active(graph::NodeId at, GroupId group,
                    graph::NodeId source) const;

 private:
  struct SgKey {
    GroupId group;
    graph::NodeId source;
    auto operator<=>(const SgKey&) const = default;
  };

  /// Downstream neighbours of `at` on the RPF tree of `source`, i.e. the
  /// neighbours whose reverse path toward the source runs through `at`.
  std::vector<graph::NodeId> rpf_children(graph::NodeId at,
                                          graph::NodeId source) const;

  void handle_data(graph::NodeId at, const sim::Packet& pkt,
                   graph::NodeId from);
  void handle_prune(graph::NodeId at, const sim::Packet& pkt,
                    graph::NodeId from);
  void handle_graft(graph::NodeId at, const sim::Packet& pkt,
                    graph::NodeId from);
  void send_prune_upstream(graph::NodeId at, GroupId group,
                           graph::NodeId source);
  void send_graft_upstream(graph::NodeId at, GroupId group,
                           graph::NodeId source);

  double prune_lifetime_;
  /// prunes_received_[at][{g,s}][child] = expiry time.
  std::vector<std::map<SgKey, std::map<graph::NodeId, double>>> prunes_received_;
  /// prune_sent_[at][{g,s}] = expiry time of the prune `at` sent upstream.
  std::vector<std::map<SgKey, double>> prune_sent_;
};

}  // namespace scmp::proto
