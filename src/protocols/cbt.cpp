#include "protocols/cbt.hpp"

#include <algorithm>
#include <string>

#include "util/log.hpp"

namespace scmp::proto {

Cbt::Cbt(sim::Network& net, igmp::IgmpDomain& igmp)
    : MulticastProtocol(net, igmp) {
  const auto n = static_cast<std::size_t>(net.graph().num_nodes());
  state_.resize(n);
  pending_.resize(n);
}

void Cbt::set_core(GroupId group, graph::NodeId core) {
  SCMP_EXPECTS(net().graph().valid(core));
  cores_[group] = core;
}

graph::NodeId Cbt::core_of(GroupId group) const {
  const auto it = cores_.find(group);
  SCMP_EXPECTS(it != cores_.end());
  return it->second;
}

Cbt::Entry* Cbt::entry(graph::NodeId at, GroupId group) {
  auto& groups = state_[static_cast<std::size_t>(at)];
  const auto it = groups.find(group);
  return it == groups.end() ? nullptr : &it->second;
}

const Cbt::Entry* Cbt::entry(graph::NodeId at, GroupId group) const {
  const auto& groups = state_[static_cast<std::size_t>(at)];
  const auto it = groups.find(group);
  return it == groups.end() ? nullptr : &it->second;
}

bool Cbt::on_tree(graph::NodeId router, GroupId group) const {
  return entry(router, group) != nullptr || router == core_of(group);
}

graph::NodeId Cbt::upstream_of(graph::NodeId router, GroupId group) const {
  const Entry* e = entry(router, group);
  return e == nullptr ? graph::kInvalidNode : e->upstream;
}

std::set<graph::NodeId> Cbt::downstream_of(graph::NodeId router,
                                           GroupId group) const {
  const Entry* e = entry(router, group);
  return e == nullptr ? std::set<graph::NodeId>{} : e->downstream;
}

void Cbt::fail_core(GroupId group) {
  SCMP_EXPECTS(cores_.contains(group));
  failed_cores_.insert(group);
}

bool Cbt::core_failed(GroupId group) const {
  return failed_cores_.contains(group);
}

void Cbt::handle_packet(graph::NodeId at, const sim::Packet& pkt,
                        graph::NodeId from) {
  if (core_failed(pkt.group) && at == core_of(pkt.group)) {
    return;  // the dead core processes nothing
  }
  switch (pkt.type) {
    case sim::PacketType::kCbtJoin: handle_join(at, pkt, from); break;
    case sim::PacketType::kCbtAck: handle_ack(at, pkt, from); break;
    case sim::PacketType::kCbtQuit: handle_quit(at, pkt, from); break;
    case sim::PacketType::kData:
    case sim::PacketType::kDataEncap: handle_data(at, pkt, from); break;
    default:
      // Foreign-protocol traffic through the shared Network plumbing:
      // counted + logged (net.drops.unexpected_type), not a crash.
      drop_unexpected(at, pkt);
      break;
  }
}

void Cbt::interface_joined(graph::NodeId router, GroupId group, int /*iface*/,
                           bool first_iface) {
  if (!first_iface) return;
  if (convergence() != nullptr) convergence()->note_event(group);
  start_join(router, group);
}

void Cbt::start_join(graph::NodeId router, GroupId group) {
  const graph::NodeId core = core_of(group);
  if (on_tree(router, group)) return;
  if (router == core) return;  // core is implicitly on the tree
  auto& pend = pending_[static_cast<std::size_t>(router)];
  if (!pend.insert(group).second) return;  // join already in flight

  sim::Packet join;
  join.type = sim::PacketType::kCbtJoin;
  join.group = group;
  join.src = router;
  join.path = {router};
  net().send_link(router, net().routing().next_hop(router, core), join);
}

void Cbt::handle_join(graph::NodeId at, const sim::Packet& pkt,
                      graph::NodeId from) {
  SCMP_EXPECTS(from != graph::kInvalidNode);
  const GroupId group = pkt.group;
  const graph::NodeId core = core_of(group);

  if (on_tree(at, group)) {
    // Graft node found: acknowledge back along the recorded path; the ACK
    // instantiates the forwarding state hop by hop (and this node learns the
    // new downstream branch).
    if (at != core || entry(at, group) == nullptr)
      state_[static_cast<std::size_t>(at)][group];  // ensure core entry exists
    entry(at, group)->downstream.insert(from);
    if (convergence() != nullptr) convergence()->note_state_change(group);

    sim::Packet ack = pkt;
    ack.type = sim::PacketType::kCbtAck;
    ack.path.push_back(at);
    net().send_link(at, from, ack);
    return;
  }

  // Transit router: keep forwarding toward the core.
  sim::Packet join = pkt;
  join.path.push_back(at);
  net().send_link(at, net().routing().next_hop(at, core), join);
}

void Cbt::handle_ack(graph::NodeId at, const sim::Packet& pkt,
                     graph::NodeId from) {
  SCMP_EXPECTS(from != graph::kInvalidNode);
  const GroupId group = pkt.group;
  // path = [joiner, ..., graft]; this router appears somewhere before graft.
  const auto& path = pkt.path;
  const auto pos = std::find(path.begin(), path.end(), at);
  SCMP_ASSERT(pos != path.end() && pos + 1 != path.end());

  Entry& e = state_[static_cast<std::size_t>(at)][group];
  if (e.upstream == graph::kInvalidNode && at != core_of(group))
    e.upstream = *(pos + 1);
  if (convergence() != nullptr) convergence()->note_state_change(group);
  if (pos != path.begin()) {
    e.downstream.insert(*(pos - 1));
    net().send_link(at, *(pos - 1), pkt);
    return;
  }

  // The original joiner: join complete.
  pending_[static_cast<std::size_t>(at)].erase(group);
  // The hosts may have left while the join was in flight.
  maybe_quit(at, group);
}

void Cbt::interface_left(graph::NodeId router, GroupId group, int /*iface*/,
                         bool last_iface) {
  if (!last_iface) return;
  if (convergence() != nullptr) convergence()->note_event(group);
  maybe_quit(router, group);
}

void Cbt::maybe_quit(graph::NodeId at, GroupId group) {
  Entry* e = entry(at, group);
  if (e == nullptr || at == core_of(group)) return;
  if (router_is_member(at, group) || !e->downstream.empty()) return;
  // Leaf without members: quit upstream and drop state.
  const graph::NodeId up = e->upstream;
  state_[static_cast<std::size_t>(at)].erase(group);
  if (convergence() != nullptr) convergence()->note_state_change(group);
  if (up == graph::kInvalidNode) return;
  sim::Packet quit;
  quit.type = sim::PacketType::kCbtQuit;
  quit.group = group;
  quit.src = at;
  net().send_link(at, up, quit);
}

void Cbt::handle_quit(graph::NodeId at, const sim::Packet& pkt,
                      graph::NodeId from) {
  SCMP_EXPECTS(from != graph::kInvalidNode);
  Entry* e = entry(at, pkt.group);
  if (e == nullptr) return;
  e->downstream.erase(from);
  if (convergence() != nullptr) convergence()->note_state_change(pkt.group);
  maybe_quit(at, pkt.group);
}

void Cbt::audit_state(std::vector<std::string>& violations) const {
  const int n = net().graph().num_nodes();
  auto note = [&](GroupId group, const std::string& what) {
    violations.push_back("CBT g" + std::to_string(group) + ": " + what);
  };
  for (const auto& [group, core] : cores_) {
    if (core_failed(group)) continue;
    for (graph::NodeId v = 0; v < n; ++v) {
      const Entry* e = entry(v, group);
      if (e == nullptr) {
        if (router_is_member(v, group) && v != core)
          note(group, "member router " + std::to_string(v) + " is off-tree");
        continue;
      }
      if (v != core && e->upstream == graph::kInvalidNode) {
        note(group, "router " + std::to_string(v) + " has no upstream");
      } else if (v != core) {
        const Entry* up = entry(e->upstream, group);
        if (up == nullptr || !up->downstream.contains(v))
          note(group, "upstream " + std::to_string(e->upstream) +
                          " does not list " + std::to_string(v) +
                          " as downstream");
      }
      for (graph::NodeId d : e->downstream) {
        const Entry* down = entry(d, group);
        if (down == nullptr || down->upstream != v)
          note(group, "downstream " + std::to_string(d) + " of " +
                          std::to_string(v) + " lacks the reverse edge");
      }
      if (e->downstream.empty() && v != core && !router_is_member(v, group))
        note(group, "memberless leaf state at " + std::to_string(v));
      // Acyclicity: the upstream chain must reach the core within n hops.
      graph::NodeId walk = v;
      int hops = 0;
      while (walk != core && walk != graph::kInvalidNode && hops <= n) {
        const Entry* w = entry(walk, group);
        walk = w == nullptr ? graph::kInvalidNode : w->upstream;
        ++hops;
      }
      if (hops > n)
        note(group,
             "upstream chain from " + std::to_string(v) + " never ends");
    }
  }
}

void Cbt::send_data(graph::NodeId source, GroupId group) {
  sim::Packet pkt = make_data_packet(source, group);
  if (on_tree(source, group)) {
    net().inject(source, std::move(pkt));
    return;
  }
  // Off-tree source: unicast-encapsulate toward the core (paper §I: packets
  // from sources outside the tree reach the core first).
  pkt.type = sim::PacketType::kDataEncap;
  pkt.dst = core_of(group);
  net().send_unicast(source, std::move(pkt));
}

void Cbt::handle_data(graph::NodeId at, const sim::Packet& pkt,
                      graph::NodeId from) {
  const GroupId group = pkt.group;
  sim::Packet data = pkt;

  if (pkt.type == sim::PacketType::kDataEncap) {
    // Only the core decapsulates.
    SCMP_ASSERT(at == core_of(group));
    data.type = sim::PacketType::kData;
    data.dst = graph::kInvalidNode;
    from = graph::kInvalidNode;  // treat as locally originated on the tree
  }

  const Entry* e = entry(at, group);
  if (e == nullptr) {
    // The core with no joined members yet, or a stray copy: deliver locally
    // if we are a member (core can be a member), otherwise drop.
    if (router_is_member(at, group)) deliver_locally(at, pkt);
    return;
  }

  // Bidirectional shared-tree forwarding: F = {upstream} ∪ downstream.
  std::vector<graph::NodeId> fset(e->downstream.begin(), e->downstream.end());
  if (e->upstream != graph::kInvalidNode) fset.push_back(e->upstream);

  if (from != graph::kInvalidNode &&
      std::find(fset.begin(), fset.end(), from) == fset.end()) {
    return;  // arrived from outside the tree: drop (paper's forwarding rule)
  }

  if (router_is_member(at, group)) deliver_locally(at, data);
  for (graph::NodeId next : fset) {
    if (next != from) net().send_link(at, next, data);
  }
}

}  // namespace scmp::proto
