// MOSPF baseline (paper ref [3]): link-state multicast. Every membership
// change at a designated router floods a group-membership LSA through the
// whole domain (the cause of MOSPF's steep protocol-overhead curve in
// Fig. 8), after which every router shares the membership view and forwards
// data along the per-source shortest-path tree pruned to member subtrees.
#pragma once

#include <cstdint>
#include <map>
#include <set>

#include "graph/dijkstra.hpp"
#include "protocols/multicast_protocol.hpp"

namespace scmp::proto {

class Mospf final : public MulticastProtocol {
 public:
  Mospf(sim::Network& net, igmp::IgmpDomain& igmp);

  std::string name() const override { return "MOSPF"; }

  void handle_packet(graph::NodeId at, const sim::Packet& pkt,
                     graph::NodeId from) override;
  void send_data(graph::NodeId source, GroupId group) override;

  void interface_joined(graph::NodeId router, GroupId group, int iface,
                        bool first_iface) override;
  void interface_left(graph::NodeId router, GroupId group, int iface,
                      bool last_iface) override;

  /// Topology change: every router recomputes its per-source SPTs from the
  /// (already reconverged) link-state database.
  void on_topology_change() override { spt_cache_.clear(); }

  /// Membership view a particular router currently holds (exposed for tests
  /// of flood convergence).
  std::set<graph::NodeId> view_of(graph::NodeId router, GroupId group) const;

 private:
  void flood_lsa(graph::NodeId origin, GroupId group, bool is_member);
  void handle_lsa(graph::NodeId at, const sim::Packet& pkt,
                  graph::NodeId from);
  void handle_data(graph::NodeId at, const sim::Packet& pkt,
                   graph::NodeId from);
  const graph::ShortestPaths& spt(graph::NodeId source);

  /// views_[router][group] = member routers, per that router's LSA database.
  std::vector<std::map<GroupId, std::set<graph::NodeId>>> views_;
  /// seen_[router] = (origin, seq) pairs already flooded through.
  std::vector<std::set<std::pair<graph::NodeId, std::uint64_t>>> seen_;
  std::vector<std::uint64_t> next_seq_;
  /// Canonical per-source SPTs; identical at every router, so shared.
  std::map<graph::NodeId, graph::ShortestPaths> spt_cache_;
};

}  // namespace scmp::proto
