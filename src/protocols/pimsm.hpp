// PIM-SM extension (paper §I names Protocol-Independent Multicast Sparse
// Mode as the other shared-tree protocol but does not simulate it; we
// implement it as the optional fourth baseline).
//
// Simplified but behaviour-complete sparse mode:
//   * receivers join a *unidirectional* shared tree rooted at the RP with
//     hop-by-hop (*,G) JOINs (state is created by the join itself; no ACK);
//   * sources always register-encapsulate data to the RP, which forwards it
//     down the shared tree (register-stop is not modelled; the registers
//     keep flowing, which only costs overhead once receivers switch);
//   * on the first data packet from a source S, a member DR switches to the
//     shortest-path tree: it sends an (S,G) JOIN hop-by-hop toward S and an
//     (S,G,rpt) prune to its shared-tree parent, after which S's packets
//     arrive on the SPT; copies still arriving via the shared tree are
//     dropped by the "have (S,G) state" rule, so members never see
//     duplicates even mid-switchover.
#pragma once

#include <map>
#include <set>

#include "protocols/multicast_protocol.hpp"

namespace scmp::proto {

class PimSm final : public MulticastProtocol {
 public:
  /// `spt_switchover` false keeps everything on the RP tree (the "threshold
  /// infinity" configuration real deployments use for low-rate groups).
  PimSm(sim::Network& net, igmp::IgmpDomain& igmp, bool spt_switchover = true);

  std::string name() const override { return "PIM-SM"; }

  /// Assigns the rendezvous point of a group (must precede any join).
  void set_rp(GroupId group, graph::NodeId rp);
  graph::NodeId rp_of(GroupId group) const;

  void handle_packet(graph::NodeId at, const sim::Packet& pkt,
                     graph::NodeId from) override;
  void send_data(graph::NodeId source, GroupId group) override;

  void interface_joined(graph::NodeId router, GroupId group, int iface,
                        bool first_iface) override;
  void interface_left(graph::NodeId router, GroupId group, int iface,
                      bool last_iface) override;

  /// PIM-SM's hard-state invariants at quiescence: (*,G) and (S,G)
  /// upstream/downstream symmetry, upstream chains that terminate at the RP
  /// (resp. the source), (S,G,rpt) prunes only against actual children, no
  /// memberless leaf state, and every member router on the RP tree.
  void audit_state(std::vector<std::string>& violations) const override;

  // Introspection for tests.
  bool on_rp_tree(graph::NodeId router, GroupId group) const;
  bool has_spt_state(graph::NodeId router, GroupId group,
                     graph::NodeId source) const;

 private:
  /// (*,G) shared-tree state at one router.
  struct RptEntry {
    graph::NodeId upstream = graph::kInvalidNode;  ///< toward RP; invalid at RP
    std::set<graph::NodeId> downstream;
    /// (S,G,rpt): children that asked not to receive S via the shared tree.
    std::map<graph::NodeId, std::set<graph::NodeId>> rpt_pruned;  // S -> kids
  };
  /// (S,G) source-tree state at one router.
  struct SptEntry {
    graph::NodeId upstream = graph::kInvalidNode;  ///< toward S; invalid at S
    std::set<graph::NodeId> downstream;
  };

  enum Flag : std::uint8_t {
    kStarG = 0,
    kSG = 1,
    kSGrpt = 2,
    /// Cancels an earlier (S,G,rpt) prune: sent when a switched shared-tree
    /// leaf gains a downstream child that still needs S via the shared tree.
    kSGrptCancel = 3,
  };

  RptEntry* rpt(graph::NodeId at, GroupId group);
  const RptEntry* rpt(graph::NodeId at, GroupId group) const;
  SptEntry* spt(graph::NodeId at, GroupId group, graph::NodeId source);
  const SptEntry* spt(graph::NodeId at, GroupId group,
                      graph::NodeId source) const;

  void send_star_join(graph::NodeId router, GroupId group);
  void send_sg_join(graph::NodeId router, GroupId group, graph::NodeId source);
  void handle_join(graph::NodeId at, const sim::Packet& pkt,
                   graph::NodeId from);
  void handle_prune(graph::NodeId at, const sim::Packet& pkt,
                    graph::NodeId from);
  void handle_data(graph::NodeId at, const sim::Packet& pkt,
                   graph::NodeId from);
  void maybe_prune_rpt(graph::NodeId at, GroupId group);
  void maybe_prune_spt(graph::NodeId at, GroupId group, graph::NodeId source);
  void consider_switchover(graph::NodeId at, GroupId group,
                           graph::NodeId source);

  bool spt_switchover_;
  std::map<GroupId, graph::NodeId> rps_;
  std::vector<std::map<GroupId, RptEntry>> rpt_state_;
  std::vector<std::map<std::pair<GroupId, graph::NodeId>, SptEntry>> spt_state_;
  /// Sources a member DR has already switched (or decided) for.
  std::vector<std::set<std::pair<GroupId, graph::NodeId>>> switched_;
  std::vector<std::set<GroupId>> pending_join_;
};

}  // namespace scmp::proto
