// Per-group time-to-convergence measurement, comparable across protocols.
//
// A membership or link event opens a measurement (`note_event`); the
// tracker stamps the sim-time until the group's distributed state settles,
// feeds it into `scmp.convergence.seconds` (histogram, tagged with the
// protocol name) and a per-group RunningStats, and abandons measurements
// that outlive the deadline (`scmp.convergence.timeouts`).
//
// Two resolution modes:
//   * Predicate (SCMP): the owner calls `check(group, consistent)` whenever
//     installed state may have changed; the measurement resolves the first
//     time the predicate holds (installed digests match the authoritative
//     tree, Scmp::network_state_consistent).
//   * Quiescence (DVMRP/MOSPF/CBT/PIM-SM, which have no authoritative tree
//     to compare against): the owner calls `note_state_change(group)` on
//     every forwarding-state mutation; the measurement resolves once no
//     mutation has happened for `quiet_period` simulated seconds, stamped
//     at the *last* mutation so the quiet wait does not inflate samples.
//
// All timers run on the simulation event queue — no wall clock — and the
// tracker sends no packets, so enabling it never perturbs a fixed-seed
// packet trace.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "igmp/igmp.hpp"
#include "sim/event_queue.hpp"
#include "util/stats.hpp"

namespace scmp::proto {

class ConvergenceTracker {
 public:
  struct Config {
    bool quiescence = true;    ///< resolve by quiet period (vs. predicate)
    double quiet_period = 1.0;  ///< quiescence mode: settle window, sim-s
    double timeout = 60.0;      ///< abandon a measurement after this long
  };

  /// The queue must outlive the tracker (both owned by the same harness).
  ConvergenceTracker(sim::EventQueue& queue, std::string protocol,
                     Config cfg);

  /// A membership/link event touched `group`: open (or re-arm) its
  /// measurement at the current sim time.
  void note_event(igmp::GroupId group);

  /// Quiescence mode: `group`'s forwarding state mutated.
  void note_state_change(igmp::GroupId group);

  /// Predicate mode: resolves `group`'s measurement if one is open and
  /// `consistent` holds.
  void check(igmp::GroupId group, bool consistent);

  bool is_pending(igmp::GroupId group) const {
    return pending_.contains(group);
  }
  std::size_t pending() const { return pending_.size(); }
  std::vector<igmp::GroupId> pending_groups() const;

  struct Stats {
    std::uint64_t events = 0;
    std::uint64_t converged = 0;
    std::uint64_t timeouts = 0;
    std::map<igmp::GroupId, Summary> per_group;  ///< seconds-to-converge
  };
  Stats stats() const;

  const Config& config() const { return cfg_; }
  const std::string& protocol() const { return protocol_; }

 private:
  struct Pending {
    double start = 0.0;        ///< sim time of the opening event
    double last_change = 0.0;  ///< sim time of the last state mutation
    std::uint64_t epoch = 0;   ///< invalidates stale timers
  };

  void resolve(igmp::GroupId group, double converged_at);
  void arm_quiet_timer(igmp::GroupId group);
  void on_quiet(igmp::GroupId group, std::uint64_t epoch);
  void on_deadline(igmp::GroupId group, std::uint64_t epoch);
  void update_pending_gauge();

  sim::EventQueue* queue_;
  std::string protocol_;
  Config cfg_;
  std::map<igmp::GroupId, Pending> pending_;
  std::map<igmp::GroupId, RunningStats> per_group_;
  std::uint64_t next_epoch_ = 0;
  std::uint64_t events_ = 0;
  std::uint64_t converged_ = 0;
  std::uint64_t timeouts_ = 0;
};

}  // namespace scmp::proto
