// Common frame for all four simulated multicast routing protocols (SCMP plus
// the DVMRP / MOSPF / CBT baselines of §IV). A protocol instance owns the
// routing state of *every* router in the domain and receives:
//   * interface-level membership transitions from the IGMP domain, and
//   * every packet any router receives (dispatched with the router id).
// Harnesses drive it through host_join/host_leave/send_data.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "igmp/igmp.hpp"
#include "protocols/convergence.hpp"
#include "sim/network.hpp"

namespace scmp::proto {

using GroupId = igmp::GroupId;

class MulticastProtocol : public igmp::MembershipListener {
 public:
  /// Registers this protocol as the agent of every router and as the IGMP
  /// membership listener. The network and IGMP domain must outlive it.
  MulticastProtocol(sim::Network& net, igmp::IgmpDomain& igmp);
  ~MulticastProtocol() override;

  MulticastProtocol(const MulticastProtocol&) = delete;
  MulticastProtocol& operator=(const MulticastProtocol&) = delete;

  virtual std::string name() const = 0;

  /// Packet dispatch: `at` received `pkt` from neighbour `from`
  /// (kInvalidNode when locally injected).
  virtual void handle_packet(graph::NodeId at, const sim::Packet& pkt,
                             graph::NodeId from) = 0;

  /// Originates one multicast data packet for `group` at router `source`
  /// (scheduled through the event queue at the current time).
  virtual void send_data(graph::NodeId source, GroupId group) = 0;

  /// Called after the topology changed (Network::fail_link) and the unicast
  /// routing substrate reconverged — the moment a link-state protocol would
  /// notify its clients. Default: no reaction (DVMRP adapts implicitly
  /// through its RPF checks; CBT has no repair mechanism in this model).
  virtual void on_topology_change() {}

  /// Hard-state self-check, the attachment point of the invariant auditor in
  /// src/verify: appends one human-readable line per violated internal-state
  /// invariant (upstream/downstream symmetry, acyclicity, ...). Only
  /// meaningful at a quiescent instant — with control packets in flight the
  /// distributed state is legitimately mid-transition. The default reports
  /// nothing (soft-state protocols have no hard invariants to cross-check);
  /// SCMP's full catalog lives in verify::InvariantAuditor instead, which
  /// inspects the m-router's authoritative tree directly.
  virtual void audit_state(std::vector<std::string>& violations) const;

  /// Convenience wrappers for harnesses: a single host on iface 0.
  void host_join(graph::NodeId router, GroupId group, int iface = 0,
                 int host = 0);
  void host_leave(graph::NodeId router, GroupId group, int iface = 0,
                  int host = 0);

  /// Opt-in per-group time-to-convergence measurement (off by default so
  /// fixed-seed packet traces and uninstrumented benches are unaffected).
  /// The resolution mode is the protocol's choice: quiescence unless it
  /// overrides convergence_by_quiescence() (SCMP resolves by predicate
  /// against its authoritative trees).
  void enable_convergence_tracking(double quiet_period = 1.0,
                                   double timeout = 60.0);
  const ConvergenceTracker* convergence_tracker() const {
    return convergence_.get();
  }

  sim::Network& net() { return *net_; }
  const sim::Network& net() const { return *net_; }
  igmp::IgmpDomain& igmp() { return *igmp_; }
  const igmp::IgmpDomain& igmp() const { return *igmp_; }

 protected:
  bool router_is_member(graph::NodeId router, GroupId group) const {
    return igmp_->router_is_member(router, group);
  }

  /// Whether the tracker resolves by forwarding-state quiescence (the only
  /// option for protocols without an authoritative tree to compare against).
  virtual bool convergence_by_quiescence() const { return true; }

  /// The tracker when enabled, nullptr otherwise — instrumentation sites
  /// null-check it, so disabled tracking costs one load and a branch.
  ConvergenceTracker* convergence() { return convergence_.get(); }

  /// Reports application-level delivery of a data packet at a member router.
  void deliver_locally(graph::NodeId at, const sim::Packet& pkt) {
    net_->report_delivery(pkt, at);
  }

  /// A fresh data packet (uid, timestamps and default size filled in).
  sim::Packet make_data_packet(graph::NodeId source, GroupId group);

  /// Counts + debug-logs a packet the dispatch switch had no case for.
  /// Foreign-protocol traffic can reach any agent through the shared Network
  /// plumbing, so an unknown type is dropped visibly — one tick on the
  /// net.drops.unexpected_type counter tagged with name() — never swallowed
  /// silently and never a crash.
  void drop_unexpected(graph::NodeId at, const sim::Packet& pkt);

 private:
  struct NodeAdapter final : sim::RouterAgent {
    MulticastProtocol* protocol = nullptr;
    graph::NodeId node = graph::kInvalidNode;
    void handle(const sim::Packet& pkt, graph::NodeId from) override {
      protocol->handle_packet(node, pkt, from);
    }
  };

  sim::Network* net_;
  igmp::IgmpDomain* igmp_;
  std::vector<std::unique_ptr<NodeAdapter>> adapters_;
  std::unique_ptr<ConvergenceTracker> convergence_;
};

}  // namespace scmp::proto
