#include "protocols/convergence.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/contracts.hpp"

namespace scmp::proto {

ConvergenceTracker::ConvergenceTracker(sim::EventQueue& queue,
                                       std::string protocol, Config cfg)
    : queue_(&queue), protocol_(std::move(protocol)), cfg_(cfg) {
  SCMP_EXPECTS(cfg.quiet_period > 0.0);
  SCMP_EXPECTS(cfg.timeout > 0.0);
}

void ConvergenceTracker::note_event(igmp::GroupId group) {
  const double now = queue_->now();
  ++events_;
  obs::counter("scmp.convergence.events", protocol_).inc();
  auto [it, fresh] = pending_.try_emplace(group);
  if (fresh) {
    it->second.start = now;
  }
  it->second.last_change = now;
  it->second.epoch = ++next_epoch_;
  const std::uint64_t epoch = it->second.epoch;
  queue_->schedule_in(cfg_.timeout,
                      [this, group, epoch] { on_deadline(group, epoch); });
  // Quiescence mode: an event that provokes no state mutation at all (e.g.
  // a leave at an already-pruned router) must still settle, so the quiet
  // window starts immediately.
  if (cfg_.quiescence) arm_quiet_timer(group);
  update_pending_gauge();
}

void ConvergenceTracker::note_state_change(igmp::GroupId group) {
  const auto it = pending_.find(group);
  if (it == pending_.end()) return;
  it->second.last_change = queue_->now();
  it->second.epoch = ++next_epoch_;
  if (cfg_.quiescence) arm_quiet_timer(group);
}

void ConvergenceTracker::check(igmp::GroupId group, bool consistent) {
  const auto it = pending_.find(group);
  if (it == pending_.end() || !consistent) return;
  resolve(group, queue_->now());
}

void ConvergenceTracker::arm_quiet_timer(igmp::GroupId group) {
  const std::uint64_t epoch = pending_.at(group).epoch;
  queue_->schedule_in(cfg_.quiet_period,
                      [this, group, epoch] { on_quiet(group, epoch); });
}

void ConvergenceTracker::on_quiet(igmp::GroupId group, std::uint64_t epoch) {
  const auto it = pending_.find(group);
  if (it == pending_.end() || it->second.epoch != epoch) return;
  // Quiet period elapsed with no further mutation: the group converged at
  // its last state change (converging "instantly" when nothing mutated).
  resolve(group, it->second.last_change);
}

void ConvergenceTracker::on_deadline(igmp::GroupId group,
                                     std::uint64_t epoch) {
  const auto it = pending_.find(group);
  if (it == pending_.end() || it->second.epoch != epoch) return;
  ++timeouts_;
  obs::counter("scmp.convergence.timeouts", protocol_).inc();
  pending_.erase(it);
  update_pending_gauge();
}

void ConvergenceTracker::resolve(igmp::GroupId group, double converged_at) {
  const auto it = pending_.find(group);
  SCMP_ASSERT(it != pending_.end());
  const double seconds = std::max(0.0, converged_at - it->second.start);
  per_group_[group].add(seconds);
  obs::histogram("scmp.convergence.seconds", protocol_).observe(seconds);
  ++converged_;
  pending_.erase(it);
  update_pending_gauge();
}

void ConvergenceTracker::update_pending_gauge() {
  obs::gauge("scmp.convergence.pending", protocol_)
      .set(static_cast<double>(pending_.size()));
}

std::vector<igmp::GroupId> ConvergenceTracker::pending_groups() const {
  std::vector<igmp::GroupId> out;
  out.reserve(pending_.size());
  for (const auto& [group, p] : pending_) out.push_back(group);
  return out;
}

ConvergenceTracker::Stats ConvergenceTracker::stats() const {
  Stats s;
  s.events = events_;
  s.converged = converged_;
  s.timeouts = timeouts_;
  for (const auto& [group, stats] : per_group_)
    s.per_group[group] = summarize(stats);
  return s;
}

}  // namespace scmp::proto
