#include "protocols/pimsm.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace scmp::proto {

PimSm::PimSm(sim::Network& net, igmp::IgmpDomain& igmp, bool spt_switchover)
    : MulticastProtocol(net, igmp), spt_switchover_(spt_switchover) {
  const auto n = static_cast<std::size_t>(net.graph().num_nodes());
  rpt_state_.resize(n);
  spt_state_.resize(n);
  switched_.resize(n);
}

void PimSm::set_rp(GroupId group, graph::NodeId rp) {
  SCMP_EXPECTS(net().graph().valid(rp));
  rps_[group] = rp;
}

graph::NodeId PimSm::rp_of(GroupId group) const {
  const auto it = rps_.find(group);
  SCMP_EXPECTS(it != rps_.end());
  return it->second;
}

PimSm::RptEntry* PimSm::rpt(graph::NodeId at, GroupId group) {
  auto& groups = rpt_state_[static_cast<std::size_t>(at)];
  const auto it = groups.find(group);
  return it == groups.end() ? nullptr : &it->second;
}

const PimSm::RptEntry* PimSm::rpt(graph::NodeId at, GroupId group) const {
  const auto& groups = rpt_state_[static_cast<std::size_t>(at)];
  const auto it = groups.find(group);
  return it == groups.end() ? nullptr : &it->second;
}

PimSm::SptEntry* PimSm::spt(graph::NodeId at, GroupId group,
                            graph::NodeId source) {
  auto& entries = spt_state_[static_cast<std::size_t>(at)];
  const auto it = entries.find({group, source});
  return it == entries.end() ? nullptr : &it->second;
}

const PimSm::SptEntry* PimSm::spt(graph::NodeId at, GroupId group,
                                  graph::NodeId source) const {
  const auto& entries = spt_state_[static_cast<std::size_t>(at)];
  const auto it = entries.find({group, source});
  return it == entries.end() ? nullptr : &it->second;
}

bool PimSm::on_rp_tree(graph::NodeId router, GroupId group) const {
  return router == rp_of(group) || rpt(router, group) != nullptr;
}

bool PimSm::has_spt_state(graph::NodeId router, GroupId group,
                          graph::NodeId source) const {
  return spt(router, group, source) != nullptr;
}

void PimSm::audit_state(std::vector<std::string>& violations) const {
  const int n = net().graph().num_nodes();
  auto note = [&](GroupId group, const std::string& what) {
    violations.push_back("PIM-SM g" + std::to_string(group) + ": " + what);
  };
  for (const auto& [group, rp] : rps_) {
    for (graph::NodeId v = 0; v < n; ++v) {
      const RptEntry* e = rpt(v, group);
      if (e == nullptr) {
        if (router_is_member(v, group) && v != rp)
          note(group, "member router " + std::to_string(v) +
                          " is off the RP tree");
        continue;
      }
      if (v != rp) {
        if (e->upstream == graph::kInvalidNode) {
          note(group, "(*,G) at " + std::to_string(v) + " has no upstream");
        } else {
          const RptEntry* up = rpt(e->upstream, group);
          if (up == nullptr || !up->downstream.contains(v))
            note(group, "(*,G) upstream " + std::to_string(e->upstream) +
                            " does not list " + std::to_string(v));
        }
        if (e->downstream.empty() && !router_is_member(v, group))
          note(group, "memberless (*,G) leaf at " + std::to_string(v));
      }
      for (graph::NodeId d : e->downstream) {
        const RptEntry* down = rpt(d, group);
        if (down == nullptr || down->upstream != v)
          note(group, "(*,G) downstream " + std::to_string(d) + " of " +
                          std::to_string(v) + " lacks the reverse edge");
      }
      for (const auto& [source, kids] : e->rpt_pruned) {
        for (graph::NodeId k : kids) {
          if (!e->downstream.contains(k))
            note(group, "(S,G,rpt) prune by non-child " + std::to_string(k) +
                            " at " + std::to_string(v));
        }
      }
      // Acyclicity: the (*,G) upstream chain must reach the RP in <= n hops.
      graph::NodeId walk = v;
      int hops = 0;
      while (walk != rp && walk != graph::kInvalidNode && hops <= n) {
        const RptEntry* w = rpt(walk, group);
        walk = w == nullptr ? graph::kInvalidNode : w->upstream;
        ++hops;
      }
      if (hops > n)
        note(group, "(*,G) upstream chain from " + std::to_string(v) +
                        " never reaches the RP");
    }
  }
  // (S,G) source trees.
  for (graph::NodeId v = 0; v < n; ++v) {
    for (const auto& [key, e] : spt_state_[static_cast<std::size_t>(v)]) {
      const auto& [group, source] = key;
      if (v != source) {
        if (e.upstream == graph::kInvalidNode) {
          note(group, "(S,G) at " + std::to_string(v) + " for source " +
                          std::to_string(source) + " has no upstream");
        } else {
          const SptEntry* up = spt(e.upstream, group, source);
          if (up == nullptr || !up->downstream.contains(v))
            note(group, "(S,G) upstream " + std::to_string(e.upstream) +
                            " does not list " + std::to_string(v));
        }
        if (e.downstream.empty() &&
            !(router_is_member(v, group) &&
              switched_[static_cast<std::size_t>(v)].contains(key)))
          note(group, "useless (S,G) leaf at " + std::to_string(v) +
                          " for source " + std::to_string(source));
      }
      for (graph::NodeId d : e.downstream) {
        const SptEntry* down = spt(d, group, source);
        if (down == nullptr || down->upstream != v)
          note(group, "(S,G) downstream " + std::to_string(d) + " of " +
                          std::to_string(v) + " lacks the reverse edge");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Joins.
// ---------------------------------------------------------------------------

void PimSm::interface_joined(graph::NodeId router, GroupId group,
                             int /*iface*/, bool first_iface) {
  if (!first_iface) return;
  if (convergence() != nullptr) convergence()->note_event(group);
  send_star_join(router, group);
}

void PimSm::send_star_join(graph::NodeId router, GroupId group) {
  const graph::NodeId rp = rp_of(group);
  if (on_rp_tree(router, group)) return;
  // Unidirectional shared tree: the join creates (*,G) state at every hop on
  // its way toward the RP, starting with the joining DR itself.
  RptEntry& e = rpt_state_[static_cast<std::size_t>(router)][group];
  e.upstream = net().routing().next_hop(router, rp);
  if (convergence() != nullptr) convergence()->note_state_change(group);

  sim::Packet join;
  join.type = sim::PacketType::kPimJoin;
  join.group = group;
  join.payload = {kStarG};
  net().send_link(router, e.upstream, join);
}

void PimSm::send_sg_join(graph::NodeId router, GroupId group,
                         graph::NodeId source) {
  if (router == source || spt(router, group, source) != nullptr) return;
  SptEntry& e =
      spt_state_[static_cast<std::size_t>(router)][{group, source}];
  e.upstream = net().routing().next_hop(router, source);
  if (convergence() != nullptr) convergence()->note_state_change(group);

  sim::Packet join;
  join.type = sim::PacketType::kPimJoin;
  join.group = group;
  join.src = source;
  join.payload = {kSG};
  net().send_link(router, e.upstream, join);
}

void PimSm::handle_join(graph::NodeId at, const sim::Packet& pkt,
                        graph::NodeId from) {
  SCMP_EXPECTS(from != graph::kInvalidNode && !pkt.payload.empty());
  if (convergence() != nullptr) convergence()->note_state_change(pkt.group);
  if (pkt.payload[0] == kStarG) {
    const graph::NodeId rp = rp_of(pkt.group);
    RptEntry& e = rpt_state_[static_cast<std::size_t>(at)][pkt.group];
    const bool was_on_tree = e.upstream != graph::kInvalidNode || at == rp;
    const bool new_child = e.downstream.insert(from).second;
    if (new_child && e.upstream != graph::kInvalidNode) {
      // This router may have (S,G,rpt)-pruned sources off its shared-tree
      // uplink while it was a leaf; the new child still needs them, so the
      // prunes are cancelled (otherwise the child would starve of S and
      // never get the packet that triggers its own switchover).
      for (const auto& [group, source] : switched_[static_cast<std::size_t>(at)]) {
        if (group != pkt.group) continue;
        sim::Packet cancel;
        cancel.type = sim::PacketType::kPimPrune;
        cancel.group = group;
        cancel.src = source;
        cancel.payload = {kSGrptCancel};
        net().send_link(at, e.upstream, cancel);
      }
    }
    if (was_on_tree) return;  // the join spliced into the existing tree
    e.upstream = net().routing().next_hop(at, rp);
    net().send_link(at, e.upstream, pkt);
    return;
  }
  SCMP_EXPECTS(pkt.payload[0] == kSG);
  const graph::NodeId source = pkt.src;
  SptEntry& e = spt_state_[static_cast<std::size_t>(at)][{pkt.group, source}];
  const bool was_on_tree = e.upstream != graph::kInvalidNode || at == source;
  e.downstream.insert(from);
  if (was_on_tree) return;
  e.upstream = net().routing().next_hop(at, source);
  net().send_link(at, e.upstream, pkt);
}

// ---------------------------------------------------------------------------
// Prunes / leaves.
// ---------------------------------------------------------------------------

void PimSm::interface_left(graph::NodeId router, GroupId group,
                           int /*iface*/, bool last_iface) {
  if (!last_iface) return;
  if (convergence() != nullptr) convergence()->note_event(group);
  // Drop switchover decisions and any now-useless (S,G) state, then the
  // shared-tree membership itself.
  auto& marks = switched_[static_cast<std::size_t>(router)];
  for (auto it = marks.begin(); it != marks.end();) {
    if (it->first == group) it = marks.erase(it); else ++it;
  }
  std::vector<graph::NodeId> sources;
  for (const auto& [key, entry] : spt_state_[static_cast<std::size_t>(router)])
    if (key.first == group) sources.push_back(key.second);
  for (graph::NodeId s : sources) maybe_prune_spt(router, group, s);
  maybe_prune_rpt(router, group);
}

void PimSm::maybe_prune_rpt(graph::NodeId at, GroupId group) {
  RptEntry* e = rpt(at, group);
  if (e == nullptr || at == rp_of(group)) return;
  if (router_is_member(at, group) || !e->downstream.empty()) return;
  const graph::NodeId up = e->upstream;
  rpt_state_[static_cast<std::size_t>(at)].erase(group);
  if (convergence() != nullptr) convergence()->note_state_change(group);
  if (up == graph::kInvalidNode) return;
  sim::Packet prune;
  prune.type = sim::PacketType::kPimPrune;
  prune.group = group;
  prune.payload = {kStarG};
  net().send_link(at, up, prune);
}

void PimSm::maybe_prune_spt(graph::NodeId at, GroupId group,
                            graph::NodeId source) {
  SptEntry* e = spt(at, group, source);
  if (e == nullptr || at == source) return;
  if (!e->downstream.empty()) return;
  // A member that switched to this SPT still needs the state.
  if (router_is_member(at, group) &&
      switched_[static_cast<std::size_t>(at)].contains({group, source}))
    return;
  const graph::NodeId up = e->upstream;
  spt_state_[static_cast<std::size_t>(at)].erase({group, source});
  if (convergence() != nullptr) convergence()->note_state_change(group);
  if (up == graph::kInvalidNode) return;
  sim::Packet prune;
  prune.type = sim::PacketType::kPimPrune;
  prune.group = group;
  prune.src = source;
  prune.payload = {kSG};
  net().send_link(at, up, prune);
}

void PimSm::handle_prune(graph::NodeId at, const sim::Packet& pkt,
                         graph::NodeId from) {
  SCMP_EXPECTS(from != graph::kInvalidNode && !pkt.payload.empty());
  if (convergence() != nullptr) convergence()->note_state_change(pkt.group);
  switch (pkt.payload[0]) {
    case kStarG: {
      RptEntry* e = rpt(at, pkt.group);
      if (e == nullptr) return;
      e->downstream.erase(from);
      for (auto& [source, kids] : e->rpt_pruned) kids.erase(from);
      maybe_prune_rpt(at, pkt.group);
      return;
    }
    case kSG: {
      SptEntry* e = spt(at, pkt.group, pkt.src);
      if (e == nullptr) return;
      e->downstream.erase(from);
      maybe_prune_spt(at, pkt.group, pkt.src);
      return;
    }
    case kSGrpt: {
      RptEntry* e = rpt(at, pkt.group);
      if (e != nullptr) e->rpt_pruned[pkt.src].insert(from);
      return;
    }
    case kSGrptCancel: {
      RptEntry* e = rpt(at, pkt.group);
      if (e != nullptr) {
        const auto it = e->rpt_pruned.find(pkt.src);
        if (it != e->rpt_pruned.end()) it->second.erase(from);
      }
      return;
    }
    default:
      SCMP_ASSERT(false && "bad PIM prune flag");
  }
}

// ---------------------------------------------------------------------------
// Data plane.
// ---------------------------------------------------------------------------

void PimSm::send_data(graph::NodeId source, GroupId group) {
  sim::Packet pkt = make_data_packet(source, group);
  net().inject(source, std::move(pkt));
}

void PimSm::consider_switchover(graph::NodeId at, GroupId group,
                                graph::NodeId source) {
  if (!spt_switchover_) return;
  if (at == source || at == rp_of(group)) return;
  if (!router_is_member(at, group)) return;
  auto& marks = switched_[static_cast<std::size_t>(at)];
  if (!marks.insert({group, source}).second) return;  // already decided

  send_sg_join(at, group, source);
  // If this DR is a shared-tree leaf, also stop S's packets from coming down
  // the shared tree (one-hop (S,G,rpt) prune); non-leaves keep receiving the
  // shared-tree copy for their children and just do not deliver it locally.
  const RptEntry* e = rpt(at, group);
  if (e != nullptr && e->downstream.empty() &&
      e->upstream != graph::kInvalidNode) {
    sim::Packet prune;
    prune.type = sim::PacketType::kPimPrune;
    prune.group = group;
    prune.src = source;
    prune.payload = {kSGrpt};
    net().send_link(at, e->upstream, prune);
  }
}

void PimSm::handle_data(graph::NodeId at, const sim::Packet& pkt,
                        graph::NodeId from) {
  const GroupId group = pkt.group;
  const graph::NodeId source = pkt.src;
  const graph::NodeId rp = rp_of(group);
  const SptEntry* se = spt(at, group, source);
  const RptEntry* re = rpt(at, group);

  // Each data copy carries a tree tag in payload[0] (kSG = source tree,
  // kStarG = shared tree). Real PIM disambiguates the two trees by the RPF
  // *interface* a copy arrives on; the simulator's links do not model
  // interfaces, and when the paths toward S and toward the RP share the
  // upstream link the copies would otherwise be indistinguishable.
  auto tagged = [&](Flag tree) {
    sim::Packet data = pkt;
    data.type = sim::PacketType::kData;
    data.dst = graph::kInvalidNode;
    data.payload = {static_cast<std::uint8_t>(tree)};
    return data;
  };

  // Forwards a shared-tree copy to this router's shared-tree children,
  // skipping the (S,G,rpt)-pruned ones.
  auto forward_rpt = [&](graph::NodeId skip) {
    if (re == nullptr) return;
    const sim::Packet data = tagged(kStarG);
    const auto pruned_it = re->rpt_pruned.find(source);
    for (graph::NodeId child : re->downstream) {
      if (child == skip) continue;
      if (pruned_it != re->rpt_pruned.end() &&
          pruned_it->second.contains(child))
        continue;
      net().send_link(at, child, data);
    }
  };
  auto forward_spt = [&](graph::NodeId skip) {
    if (se == nullptr) return;
    const sim::Packet data = tagged(kSG);
    for (graph::NodeId child : se->downstream) {
      if (child != skip) net().send_link(at, child, data);
    }
  };

  // --- Source origination ---
  if (from == graph::kInvalidNode && pkt.type == sim::PacketType::kData &&
      at == source) {
    if (router_is_member(at, group)) deliver_locally(at, pkt);
    forward_spt(graph::kInvalidNode);
    if (at == rp) {
      // The source is the RP: the packet enters the shared tree directly.
      forward_rpt(graph::kInvalidNode);
    } else {
      // Register-encapsulation toward the RP (register-stop not modelled).
      sim::Packet reg = pkt;
      reg.type = sim::PacketType::kDataEncap;
      reg.dst = rp;
      reg.payload.clear();
      net().send_unicast(at, std::move(reg));
    }
    return;
  }

  // --- Register arrival at the RP: decapsulate into the shared tree ---
  if (pkt.type == sim::PacketType::kDataEncap) {
    SCMP_ASSERT(at == rp);
    if (router_is_member(at, group) && se == nullptr && at != source)
      deliver_locally(at, pkt);
    forward_rpt(graph::kInvalidNode);
    consider_switchover(at, group, source);
    return;
  }

  SCMP_EXPECTS(!pkt.payload.empty());
  // --- Source-tree copy ---
  if (pkt.payload[0] == kSG) {
    if (se == nullptr || from != se->upstream) return;  // stray: drop
    // (at != source: the source delivered locally at origination.)
    if (router_is_member(at, group) && at != source)
      deliver_locally(at, pkt);
    forward_spt(from);
    return;
  }

  // --- Shared-tree copy ---
  SCMP_EXPECTS(pkt.payload[0] == kStarG);
  if (re == nullptr || from != re->upstream) return;  // stray: drop
  // Routers holding (S,G) state receive S on the source tree; the shared-
  // tree copy is forward-only for them (this kills switchover duplicates).
  // The source itself delivered at origination.
  if (router_is_member(at, group) && se == nullptr && at != source)
    deliver_locally(at, pkt);
  forward_rpt(from);
  consider_switchover(at, group, source);
}

// ---------------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------------

void PimSm::handle_packet(graph::NodeId at, const sim::Packet& pkt,
                          graph::NodeId from) {
  switch (pkt.type) {
    case sim::PacketType::kPimJoin: handle_join(at, pkt, from); break;
    case sim::PacketType::kPimPrune: handle_prune(at, pkt, from); break;
    case sim::PacketType::kData:
    case sim::PacketType::kDataEncap: handle_data(at, pkt, from); break;
    default:
      // Foreign-protocol traffic through the shared Network plumbing:
      // counted + logged (net.drops.unexpected_type), not a crash.
      drop_unexpected(at, pkt);
      break;
  }
}

}  // namespace scmp::proto
