// IGMP host/designated-router model (paper §II-C). Hosts register group
// membership on their subnet; the designated router (one per subnet, which in
// our domain model is the router the subnet hangs off) tracks which of its
// interfaces have at least one member host and notifies the multicast routing
// protocol of interface-level changes. IGMP traffic stays inside the subnet
// and therefore never crosses an inter-router link — it contributes zero to
// the paper's data/protocol overhead metrics — but Query/Report/Leave
// exchanges are still modelled and counted for completeness.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "graph/graph.hpp"
#include "sim/event_queue.hpp"

namespace scmp::igmp {

using GroupId = int;

/// Routing-protocol side of IGMP: interface-level membership transitions at a
/// designated router.
class MembershipListener {
 public:
  virtual ~MembershipListener() = default;

  /// Interface `iface` at `router` gained its first member host of `group`.
  /// `first_iface` is true when the router previously had no member
  /// interfaces for the group at all (the paper's trigger for JOIN requests).
  virtual void interface_joined(graph::NodeId router, GroupId group, int iface,
                                bool first_iface) = 0;

  /// Interface `iface` lost its last member host of `group`. `last_iface` is
  /// true when the router now has no member interfaces left for the group.
  virtual void interface_left(graph::NodeId router, GroupId group, int iface,
                              bool last_iface) = 0;
};

class IgmpDomain {
 public:
  IgmpDomain(sim::EventQueue& queue, int num_routers);

  void set_listener(MembershipListener* listener) { listener_ = listener; }

  /// Host `host` on subnet (`router`, `iface`) reports membership of `group`
  /// (an unsolicited IGMP Report). Idempotent per host.
  void host_join(graph::NodeId router, int iface, int host, GroupId group);

  /// Host leaves (IGMP Leave). Idempotent per host.
  void host_leave(graph::NodeId router, int iface, int host, GroupId group);

  /// True when any interface of `router` has a member host of `group`.
  bool router_is_member(graph::NodeId router, GroupId group) const;

  /// Interfaces of `router` that currently have member hosts of `group`.
  std::vector<int> member_ifaces(graph::NodeId router, GroupId group) const;

  /// All routers that are members of `group`.
  std::vector<graph::NodeId> member_routers(GroupId group) const;

  /// All groups with at least one member host anywhere in the domain — the
  /// ground truth the m-router's soft-state reconciliation pass walks when
  /// re-soliciting membership lost to dropped JOIN/LEAVE packets.
  std::vector<GroupId> groups_with_members() const;

  int host_count(graph::NodeId router, GroupId group) const;

  /// Schedules periodic Host Membership Queries on every router with members
  /// until `horizon`; each member interface with at least one live host
  /// answers with one (suppressed) Report per group.
  void start_query_cycle(double interval, double horizon);

  /// Enables soft-state membership: a host that stops answering queries (see
  /// host_crash) is expired `holdtime` seconds after its crash, at the next
  /// query tick — the DR-side robustness IGMP's query/report cycle exists
  /// for. Expiry triggers the same listener transitions as an explicit
  /// leave, but sends no IGMP Leave (the host is gone).
  void enable_soft_state(double holdtime);

  /// Marks a host as silently dead: it no longer refreshes its memberships.
  void host_crash(graph::NodeId router, int iface, int host);

  /// Total IGMP messages exchanged (Queries + Reports + Leaves).
  std::uint64_t igmp_message_count() const { return igmp_messages_; }

 private:
  void query_tick(double interval, double horizon);
  void expire_crashed_hosts();
  /// Removes one host's membership; `silent` suppresses the Leave counter
  /// (used by soft-state expiry).
  void remove_host(graph::NodeId router, int iface, int host, GroupId group,
                   bool silent);

  struct HostKey {
    graph::NodeId router;
    int iface;
    int host;
    auto operator<=>(const HostKey&) const = default;
  };

  sim::EventQueue* queue_;
  int num_routers_;
  // membership_[router][group][iface] = set of member host ids.
  std::vector<std::map<GroupId, std::map<int, std::set<int>>>> membership_;
  MembershipListener* listener_ = nullptr;
  std::uint64_t igmp_messages_ = 0;
  double holdtime_ = 0.0;  ///< 0 = soft state disabled
  std::map<HostKey, double> crashed_;  ///< host -> crash time
};

}  // namespace scmp::igmp
