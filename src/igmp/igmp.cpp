#include "igmp/igmp.hpp"

#include "util/contracts.hpp"
#include "util/log.hpp"

namespace scmp::igmp {

IgmpDomain::IgmpDomain(sim::EventQueue& queue, int num_routers)
    : queue_(&queue), num_routers_(num_routers) {
  SCMP_EXPECTS(num_routers > 0);
  membership_.resize(static_cast<std::size_t>(num_routers));
}

void IgmpDomain::host_join(graph::NodeId router, int iface, int host,
                           GroupId group) {
  SCMP_EXPECTS(router >= 0 && router < num_routers_ && iface >= 0);
  auto& groups = membership_[static_cast<std::size_t>(router)];
  const bool had_any_iface = router_is_member(router, group);
  auto& hosts = groups[group][iface];
  const bool iface_was_empty = hosts.empty();
  if (!hosts.insert(host).second) return;  // duplicate report
  ++igmp_messages_;                        // the host's IGMP Report

  if (iface_was_empty && listener_ != nullptr) {
    log_debug("igmp: router ", router, " iface ", iface, " first member of g",
              group, had_any_iface ? "" : " (first iface)");
    listener_->interface_joined(router, group, iface, !had_any_iface);
  }
}

void IgmpDomain::host_leave(graph::NodeId router, int iface, int host,
                            GroupId group) {
  remove_host(router, iface, host, group, /*silent=*/false);
}

void IgmpDomain::remove_host(graph::NodeId router, int iface, int host,
                             GroupId group, bool silent) {
  SCMP_EXPECTS(router >= 0 && router < num_routers_ && iface >= 0);
  auto& groups = membership_[static_cast<std::size_t>(router)];
  auto git = groups.find(group);
  if (git == groups.end()) return;
  auto iit = git->second.find(iface);
  if (iit == git->second.end()) return;
  if (iit->second.erase(host) == 0) return;  // host was not a member
  if (!silent) ++igmp_messages_;             // the host's IGMP Leave

  if (!iit->second.empty()) return;  // other hosts keep the iface subscribed
  git->second.erase(iit);
  const bool last_iface = git->second.empty();
  if (last_iface) groups.erase(git);
  if (listener_ != nullptr) {
    log_debug("igmp: router ", router, " iface ", iface, " lost members of g",
              group, last_iface ? " (last iface)" : "");
    listener_->interface_left(router, group, iface, last_iface);
  }
}

void IgmpDomain::enable_soft_state(double holdtime) {
  SCMP_EXPECTS(holdtime > 0.0);
  holdtime_ = holdtime;
}

void IgmpDomain::host_crash(graph::NodeId router, int iface, int host) {
  SCMP_EXPECTS(router >= 0 && router < num_routers_ && iface >= 0);
  crashed_.emplace(HostKey{router, iface, host}, queue_->now());
}

void IgmpDomain::expire_crashed_hosts() {
  if (holdtime_ <= 0.0 || crashed_.empty()) return;
  const double now = queue_->now();
  // Collect expired (router, iface, host, group) tuples before mutating.
  struct Expired {
    graph::NodeId router;
    int iface;
    int host;
    GroupId group;
  };
  std::vector<Expired> expired;
  for (const auto& [key, crash_time] : crashed_) {
    if (now < crash_time + holdtime_) continue;
    const auto& groups = membership_[static_cast<std::size_t>(key.router)];
    for (const auto& [group, ifaces] : groups) {
      const auto it = ifaces.find(key.iface);
      if (it != ifaces.end() && it->second.contains(key.host))
        expired.push_back({key.router, key.iface, key.host, group});
    }
  }
  for (const auto& e : expired)
    remove_host(e.router, e.iface, e.host, e.group, /*silent=*/true);
}

bool IgmpDomain::router_is_member(graph::NodeId router, GroupId group) const {
  SCMP_EXPECTS(router >= 0 && router < num_routers_);
  const auto& groups = membership_[static_cast<std::size_t>(router)];
  const auto it = groups.find(group);
  return it != groups.end() && !it->second.empty();
}

std::vector<int> IgmpDomain::member_ifaces(graph::NodeId router,
                                           GroupId group) const {
  SCMP_EXPECTS(router >= 0 && router < num_routers_);
  std::vector<int> out;
  const auto& groups = membership_[static_cast<std::size_t>(router)];
  const auto it = groups.find(group);
  if (it == groups.end()) return out;
  for (const auto& [iface, hosts] : it->second)
    if (!hosts.empty()) out.push_back(iface);
  return out;
}

std::vector<graph::NodeId> IgmpDomain::member_routers(GroupId group) const {
  std::vector<graph::NodeId> out;
  for (graph::NodeId r = 0; r < num_routers_; ++r)
    if (router_is_member(r, group)) out.push_back(r);
  return out;
}

std::vector<GroupId> IgmpDomain::groups_with_members() const {
  std::set<GroupId> seen;
  for (const auto& groups : membership_) {
    for (const auto& [group, ifaces] : groups) {
      for (const auto& [iface, hosts] : ifaces) {
        if (!hosts.empty()) {
          seen.insert(group);
          break;
        }
      }
    }
  }
  return {seen.begin(), seen.end()};
}

int IgmpDomain::host_count(graph::NodeId router, GroupId group) const {
  SCMP_EXPECTS(router >= 0 && router < num_routers_);
  const auto& groups = membership_[static_cast<std::size_t>(router)];
  const auto it = groups.find(group);
  if (it == groups.end()) return 0;
  int total = 0;
  for (const auto& [iface, hosts] : it->second)
    total += static_cast<int>(hosts.size());
  return total;
}

void IgmpDomain::start_query_cycle(double interval, double horizon) {
  SCMP_EXPECTS(interval > 0.0);
  queue_->schedule_in(interval, [this, interval, horizon]() {
    query_tick(interval, horizon);
  });
}

void IgmpDomain::query_tick(double interval, double horizon) {
  expire_crashed_hosts();
  for (graph::NodeId r = 0; r < num_routers_; ++r) {
    const auto& groups = membership_[static_cast<std::size_t>(r)];
    if (groups.empty()) continue;
    ++igmp_messages_;  // the DR's Host Membership Query
    for (const auto& [group, ifaces] : groups) {
      // Report suppression: one Report per member interface per group, from
      // interfaces that still have a live (non-crashed) host.
      for (const auto& [iface, hosts] : ifaces) {
        for (int host : hosts) {
          if (!crashed_.contains(HostKey{r, iface, host})) {
            ++igmp_messages_;
            break;
          }
        }
      }
    }
  }
  if (queue_->now() + interval <= horizon) {
    queue_->schedule_in(interval, [this, interval, horizon]() {
      query_tick(interval, horizon);
    });
  }
}

}  // namespace scmp::igmp
