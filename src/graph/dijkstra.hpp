// Single-source shortest paths under either link metric. Used to build the
// paper's P_sl (shortest-delay) and P_lc (least-cost) paths and the link-state
// unicast forwarding tables every router is assumed to run (paper §II-D).
#pragma once

#include <limits>
#include <vector>

#include "graph/graph.hpp"

namespace scmp::graph {

inline constexpr double kUnreachable = std::numeric_limits<double>::infinity();

/// Result of one Dijkstra run: distance and predecessor per node.
struct ShortestPaths {
  NodeId source = kInvalidNode;
  Metric metric = Metric::kDelay;
  std::vector<double> dist;     ///< dist[v] == kUnreachable when v unreachable
  std::vector<NodeId> parent;   ///< parent[source] == kInvalidNode

  bool reachable(NodeId v) const {
    return dist[static_cast<std::size_t>(v)] < kUnreachable;
  }
  double distance(NodeId v) const { return dist[static_cast<std::size_t>(v)]; }

  /// Path source..dst inclusive; empty when dst is unreachable.
  std::vector<NodeId> path_to(NodeId dst) const;
};

/// Dijkstra with a binary heap; ties broken by smaller node id so results are
/// deterministic across platforms.
ShortestPaths dijkstra(const Graph& g, NodeId source, Metric metric);

}  // namespace scmp::graph
