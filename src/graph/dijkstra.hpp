// Single-source shortest paths under either link metric. Used to build the
// paper's P_sl (shortest-delay) and P_lc (least-cost) paths and the link-state
// unicast forwarding tables every router is assumed to run (paper §II-D).
//
// Every run carries *dual weights*: alongside the optimized distance it
// accumulates, per destination, the companion metric of the same canonical
// path (cost of the shortest-delay path, delay of the least-cost path) and
// the hop count. DCDM's candidate scan (§III-D) scores all 2m precomputed
// paths from these tables alone — no path has to be materialized until the
// winner is grafted — and the companion sums are bit-identical to re-walking
// the path with path_weight(), because both accumulate edge weights in the
// same source-to-destination order.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/graph.hpp"

namespace scmp::graph {

inline constexpr double kUnreachable = std::numeric_limits<double>::infinity();

/// The metric a run does not optimise but still accumulates.
inline constexpr Metric companion_of(Metric m) {
  return m == Metric::kDelay ? Metric::kCost : Metric::kDelay;
}

/// Result of one Dijkstra run: distance, companion weight, hop count and
/// predecessor per node.
struct ShortestPaths {
  NodeId source = kInvalidNode;
  Metric metric = Metric::kDelay;
  std::vector<double> dist;      ///< dist[v] == kUnreachable when v unreachable
  std::vector<double> companion; ///< companion-metric weight of the same path
  std::vector<std::int32_t> hops;  ///< edges on the canonical path; -1 unreachable
  std::vector<NodeId> parent;    ///< parent[source] == kInvalidNode

  bool reachable(NodeId v) const {
    return dist[static_cast<std::size_t>(v)] < kUnreachable;
  }
  double distance(NodeId v) const { return dist[static_cast<std::size_t>(v)]; }
  /// Companion-metric weight of the canonical path source..v (bit-identical
  /// to path_weight(path_to(v), companion_of(metric))).
  double companion_distance(NodeId v) const {
    return companion[static_cast<std::size_t>(v)];
  }
  /// Edge count of the canonical path source..v; -1 when unreachable.
  std::int32_t hop_count(NodeId v) const {
    return hops[static_cast<std::size_t>(v)];
  }

  /// Path source..dst inclusive; empty when dst is unreachable. Pre-sizes the
  /// result from the stored hop count (exactly one allocation).
  std::vector<NodeId> path_to(NodeId dst) const;

  /// path_to() into a caller-owned buffer: `out` is overwritten with the
  /// path (empty when unreachable); no allocation once `out`'s capacity has
  /// grown to the longest requested path.
  void path_to_into(NodeId dst, std::vector<NodeId>& out) const;
};

/// Dijkstra with a binary heap; ties broken by smaller node id so results are
/// deterministic across platforms.
ShortestPaths dijkstra(const Graph& g, NodeId source, Metric metric);

/// dijkstra() into an existing result object, reusing its vectors' capacity
/// (the incremental path-database rebuild re-runs dirty sources in place).
void dijkstra_into(const Graph& g, NodeId source, Metric metric,
                   ShortestPaths& out);

}  // namespace scmp::graph
