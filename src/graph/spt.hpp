// Shortest-path shared tree: the union of the canonical shortest-delay paths
// from the root/core to every member. This is the tree CBT, DVMRP and MOSPF
// all produce once the source is co-located with the core (the assumption the
// paper makes in §IV-A), so it serves as the SPT baseline in Fig. 7.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "graph/multicast_tree.hpp"

namespace scmp::graph {

/// Union of single-source shortest paths (by `metric`) from root to members.
/// The canonical Dijkstra predecessor tree guarantees the union is loop-free.
MulticastTree shortest_path_tree(const Graph& g, NodeId root,
                                 const std::vector<NodeId>& members,
                                 Metric metric = Metric::kDelay);

}  // namespace scmp::graph
