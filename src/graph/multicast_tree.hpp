// Rooted shared multicast tree, the central data structure the m-router
// maintains per group (paper §III). Supports the paper's dynamic operations:
// grafting a path for a joining member (including the loop-elimination rule of
// Fig. 5(c)-(d), where hitting an on-tree node re-parents it and prunes its
// old upstream branch) and pruning dangling branches after a member leaves.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace scmp::graph {

class MulticastTree {
 public:
  /// An empty tree containing only `root` (the m-router's tree anchor).
  MulticastTree(NodeId root, int num_nodes);

  NodeId root() const { return root_; }
  int num_nodes() const { return static_cast<int>(parent_.size()); }

  bool on_tree(NodeId v) const;
  /// Parent of an on-tree node; kInvalidNode for the root.
  NodeId parent(NodeId v) const;
  const std::vector<NodeId>& children(NodeId v) const;

  bool is_member(NodeId v) const;
  /// Marks/unmarks group membership. A node must be on the tree to be a member.
  void set_member(NodeId v, bool member);
  std::vector<NodeId> members() const;

  std::vector<NodeId> on_tree_nodes() const;
  /// Number of nodes currently on the tree (including the root).
  int tree_size() const { return tree_size_; }
  bool is_leaf(NodeId v) const;

  /// Grafts `path` onto the tree. path[0] must already be on the tree; the
  /// remaining nodes are attached in order. When the path re-enters the tree
  /// at a node x, x is re-parented onto the new path and the branch that used
  /// to lead into x is pruned upward (paper Fig. 5 loop elimination) —
  /// unless re-parenting would create a cycle (x is the root or an ancestor
  /// of the new segment), in which case the redundant new segment is pruned
  /// instead.
  void graft_path(const std::vector<NodeId>& path);

  /// Removes `v` and then its ancestors while they remain non-member leaves
  /// (never removes the root). Models the hop-by-hop PRUNE of §III-C.
  void prune_upward_from(NodeId v);

  /// Path root..v along tree edges. Requires v on tree.
  std::vector<NodeId> path_from_root(NodeId v) const;

  /// Sum of link costs over all tree edges.
  double tree_cost(const Graph& g) const;
  /// Delay of the tree path root->v (the paper's multicast delay "ml").
  double node_delay(const Graph& g, NodeId v) const;
  /// Longest multicast delay over all members (the paper's tree delay).
  double tree_delay(const Graph& g) const;

  /// All tree edges as (child, parent) pairs.
  std::vector<std::pair<NodeId, NodeId>> edges() const;

  /// Structural invariants: root on tree, parents on tree, parent edges exist
  /// in g, children lists mirror parents, no cycles, members on tree.
  bool validate(const Graph& g) const;

 private:
  void attach(NodeId child, NodeId parent);
  void detach(NodeId child);
  void remove_node(NodeId v);
  bool is_ancestor(NodeId anc, NodeId v) const;

  NodeId root_;
  std::vector<NodeId> parent_;          ///< kInvalidNode when off-tree or root
  std::vector<char> on_tree_;
  std::vector<char> member_;
  std::vector<std::vector<NodeId>> children_;
  int tree_size_ = 0;
};

}  // namespace scmp::graph
