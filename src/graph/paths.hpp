// All-pairs path cache holding, for every source, both the shortest-delay
// tree (P_sl paths) and the least-cost tree (P_lc paths). The paper's DCDM
// algorithm consults exactly these 2m candidate paths per join (§III-D), and
// the m-router is assumed to have them precomputed from its global topology DB.
//
// Each per-source run carries dual weights (see dijkstra.hpp), so both the
// optimized and the companion metric of every candidate path are O(1) table
// lookups: sl_delay/sl_cost for P_sl, lc_delay/lc_cost for P_lc.
//
// The database is rebuildable in place. rebuild() recomputes every source —
// optionally fanning the per-source Dijkstra runs out over a caller-supplied
// parallel-for executor (one source per task; the m-router's TreeComputePool
// provides one). apply_link_event() handles a single changed/failed/added
// link incrementally: a source is re-run only when the edge lies on its
// cached shortest-path tree (parent-edge membership) or, for a present edge,
// when relaxing it would improve or re-canonicalize a path — every other
// source's cached run is provably still the canonical answer.
#pragma once

#include <functional>
#include <vector>

#include "graph/dijkstra.hpp"
#include "graph/graph.hpp"

namespace scmp::graph {

/// Parallel-for executor shape: pf(count, fn) must invoke fn(i) exactly once
/// for every i in [0, count), in any order, on any threads, and return only
/// after all invocations finished. An empty function means "run serially".
using ParallelFor =
    std::function<void(std::size_t, const std::function<void(std::size_t)>&)>;

class AllPairsPaths {
 public:
  explicit AllPairsPaths(const Graph& g, const ParallelFor& pf = {});

  /// Recomputes every source from `g` in place (the m-routers' link-state
  /// view reconverged wholesale). With `pf`, sources run in parallel; the
  /// result is bit-identical to a serial rebuild.
  void rebuild(const Graph& g, const ParallelFor& pf = {});

  /// Incremental update after the single link {u, v} changed: failed, came
  /// up, or changed weight. `g` is the post-event graph. Re-runs Dijkstra
  /// only for the (source, metric) runs the event can actually affect and
  /// returns how many runs were recomputed (the paths.rebuild.sources_
  /// recomputed counter tracks the same quantity). The result is always
  /// bit-identical to a from-scratch rebuild on `g`.
  int apply_link_event(const Graph& g, NodeId u, NodeId v,
                       const ParallelFor& pf = {});

  /// Delay of the shortest-delay path u->v (the paper's "unicast delay").
  double sl_delay(NodeId u, NodeId v) const;
  /// Cost of that same shortest-delay path (companion weight).
  double sl_cost(NodeId u, NodeId v) const;
  /// Cost of the least-cost path u->v.
  double lc_cost(NodeId u, NodeId v) const;
  /// Delay of that same least-cost path (companion weight).
  double lc_delay(NodeId u, NodeId v) const;

  /// The P_sl path u..v (shortest delay).
  std::vector<NodeId> sl_path(NodeId u, NodeId v) const;
  /// The P_lc path u..v (least cost).
  std::vector<NodeId> lc_path(NodeId u, NodeId v) const;

  /// sl_path()/lc_path() into a caller-owned buffer (no allocation once the
  /// buffer's capacity covers the path).
  void sl_path_into(NodeId u, NodeId v, std::vector<NodeId>& out) const;
  void lc_path_into(NodeId u, NodeId v, std::vector<NodeId>& out) const;

  const ShortestPaths& sl_from(NodeId u) const;
  const ShortestPaths& lc_from(NodeId u) const;

  int num_nodes() const { return static_cast<int>(by_delay_.size()); }

 private:
  /// True when the cached run `sp` must be recomputed after link {u, v}
  /// changed; `attr` is the edge's post-event attributes (nullptr = gone).
  static bool run_dirty(const ShortestPaths& sp, NodeId u, NodeId v,
                        const EdgeAttr* attr);

  std::vector<ShortestPaths> by_delay_;
  std::vector<ShortestPaths> by_cost_;
};

}  // namespace scmp::graph
