// All-pairs path cache holding, for every source, both the shortest-delay
// tree (P_sl paths) and the least-cost tree (P_lc paths). The paper's DCDM
// algorithm consults exactly these 2m candidate paths per join (§III-D), and
// the m-router is assumed to have them precomputed from its global topology DB.
#pragma once

#include <vector>

#include "graph/dijkstra.hpp"
#include "graph/graph.hpp"

namespace scmp::graph {

class AllPairsPaths {
 public:
  explicit AllPairsPaths(const Graph& g);

  /// Delay of the shortest-delay path u->v (the paper's "unicast delay").
  double sl_delay(NodeId u, NodeId v) const;
  /// Cost of the least-cost path u->v.
  double lc_cost(NodeId u, NodeId v) const;

  /// The P_sl path u..v (shortest delay).
  std::vector<NodeId> sl_path(NodeId u, NodeId v) const;
  /// The P_lc path u..v (least cost).
  std::vector<NodeId> lc_path(NodeId u, NodeId v) const;

  const ShortestPaths& sl_from(NodeId u) const;
  const ShortestPaths& lc_from(NodeId u) const;

  int num_nodes() const { return static_cast<int>(by_delay_.size()); }

 private:
  std::vector<ShortestPaths> by_delay_;
  std::vector<ShortestPaths> by_cost_;
};

}  // namespace scmp::graph
