// Undirected network graph with the paper's two symmetric link parameters:
// link delay (queueing + transmission + propagation) and link cost
// (a utilisation-derived price for using the link). See paper §III.
#pragma once

#include <cstddef>
#include <vector>

#include "util/contracts.hpp"

namespace scmp::graph {

using NodeId = int;
inline constexpr NodeId kInvalidNode = -1;

/// Per-link attributes; identical in both directions (paper assumes symmetric links).
struct EdgeAttr {
  double delay = 0.0;
  double cost = 0.0;
};

/// Which of the two link parameters a path computation optimises.
enum class Metric { kDelay, kCost };

inline double weight_of(const EdgeAttr& e, Metric m) {
  return m == Metric::kDelay ? e.delay : e.cost;
}

/// Adjacency-list undirected graph. NodeIds are dense 0..num_nodes()-1.
class Graph {
 public:
  struct Neighbor {
    NodeId to = kInvalidNode;
    EdgeAttr attr;
  };

  Graph() = default;
  explicit Graph(int num_nodes);

  /// Appends an isolated node and returns its id.
  NodeId add_node();

  /// Adds the undirected edge {u, v}. Requires u != v and no existing {u, v}.
  void add_edge(NodeId u, NodeId v, double delay, double cost);

  /// Removes the undirected edge {u, v} if present; returns whether it existed.
  bool remove_edge(NodeId u, NodeId v);

  bool has_edge(NodeId u, NodeId v) const;

  /// Attributes of edge {u, v}, or nullptr when absent.
  const EdgeAttr* edge(NodeId u, NodeId v) const;

  int num_nodes() const { return static_cast<int>(adj_.size()); }
  int num_edges() const { return num_edges_; }

  const std::vector<Neighbor>& neighbors(NodeId u) const {
    SCMP_EXPECTS(valid(u));
    return adj_[static_cast<std::size_t>(u)];
  }

  int degree(NodeId u) const {
    return static_cast<int>(neighbors(u).size());
  }

  double average_degree() const;

  /// True when every node can reach every other node.
  bool is_connected() const;

  bool valid(NodeId u) const { return u >= 0 && u < num_nodes(); }

 private:
  std::vector<std::vector<Neighbor>> adj_;
  int num_edges_ = 0;
};

/// Sum of `metric` over consecutive path edges. Requires every hop to exist.
double path_weight(const Graph& g, const std::vector<NodeId>& path, Metric metric);

}  // namespace scmp::graph
