// Undirected network graph with the paper's two symmetric link parameters:
// link delay (queueing + transmission + propagation) and link cost
// (a utilisation-derived price for using the link). See paper §III.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/contracts.hpp"

namespace scmp::graph {

using NodeId = int;
inline constexpr NodeId kInvalidNode = -1;

/// Per-link attributes; identical in both directions (paper assumes symmetric links).
struct EdgeAttr {
  double delay = 0.0;
  double cost = 0.0;
};

/// Which of the two link parameters a path computation optimises.
enum class Metric { kDelay, kCost };

inline double weight_of(const EdgeAttr& e, Metric m) {
  return m == Metric::kDelay ? e.delay : e.cost;
}

/// Adjacency-list undirected graph. NodeIds are dense 0..num_nodes()-1.
class Graph {
 public:
  struct Neighbor {
    NodeId to = kInvalidNode;
    EdgeAttr attr;
  };

  Graph() = default;
  explicit Graph(int num_nodes);

  /// Appends an isolated node and returns its id.
  NodeId add_node();

  /// Adds the undirected edge {u, v}. Requires u != v and no existing {u, v}.
  void add_edge(NodeId u, NodeId v, double delay, double cost);

  /// Removes the undirected edge {u, v} if present; returns whether it existed.
  bool remove_edge(NodeId u, NodeId v);

  bool has_edge(NodeId u, NodeId v) const;

  /// Attributes of edge {u, v}, or nullptr when absent.
  const EdgeAttr* edge(NodeId u, NodeId v) const;

  int num_nodes() const { return static_cast<int>(adj_.size()); }
  int num_edges() const { return num_edges_; }

  const std::vector<Neighbor>& neighbors(NodeId u) const {
    SCMP_EXPECTS(valid(u));
    return adj_[static_cast<std::size_t>(u)];
  }

  /// Compressed-sparse-row snapshot of the adjacency: every node's
  /// neighbours packed into one flat array (in exactly the neighbors(u)
  /// order, so canonical tie-breaks are unchanged) indexed by per-node
  /// offsets. Traversals that sweep many rows — Dijkstra relaxation, Prim —
  /// walk contiguous memory instead of chasing per-node vectors.
  class CsrView {
   public:
    /// Half-open neighbour range of `u`; iterable with a range-for.
    struct Row {
      const Neighbor* first;
      const Neighbor* last;
      const Neighbor* begin() const { return first; }
      const Neighbor* end() const { return last; }
      std::size_t size() const {
        return static_cast<std::size_t>(last - first);
      }
    };
    Row row(NodeId u) const {
      const auto i = static_cast<std::size_t>(u);
      SCMP_EXPECTS(i + 1 < offsets_.size());
      return {flat_.data() + offsets_[i], flat_.data() + offsets_[i + 1]};
    }
    std::size_t num_entries() const { return flat_.size(); }

   private:
    friend class Graph;
    std::vector<std::uint32_t> offsets_;  ///< num_nodes()+1 entries
    std::vector<Neighbor> flat_;          ///< adjacency order preserved
  };

  /// The CSR snapshot, built lazily on first use and cached until the next
  /// mutation (add_node/add_edge/remove_edge), which invalidates it.
  ///
  /// Thread confinement: the lazy build mutates the cache under const, so
  /// workers sharing one Graph must not race a cold csr() — warm it from a
  /// single thread first (AllPairsPaths does, before its ParallelFor).
  const CsrView& csr() const;

  int degree(NodeId u) const {
    return static_cast<int>(neighbors(u).size());
  }

  double average_degree() const;

  /// True when every node can reach every other node.
  bool is_connected() const;

  bool valid(NodeId u) const { return u >= 0 && u < num_nodes(); }

 private:
  std::vector<std::vector<Neighbor>> adj_;
  int num_edges_ = 0;
  mutable CsrView csr_;          ///< cached flat adjacency (see csr())
  mutable bool csr_valid_ = false;
};

/// Sum of `metric` over consecutive path edges. Requires every hop to exist.
double path_weight(const Graph& g, const std::vector<NodeId>& path, Metric metric);

}  // namespace scmp::graph
