#include "graph/graph.hpp"

#include <algorithm>

namespace scmp::graph {

Graph::Graph(int num_nodes) {
  SCMP_EXPECTS(num_nodes >= 0);
  adj_.resize(static_cast<std::size_t>(num_nodes));
}

NodeId Graph::add_node() {
  adj_.emplace_back();
  csr_valid_ = false;
  return num_nodes() - 1;
}

const Graph::CsrView& Graph::csr() const {
  if (!csr_valid_) {
    const auto n = adj_.size();
    csr_.offsets_.assign(n + 1, 0);
    std::size_t total = 0;
    for (std::size_t i = 0; i < n; ++i) {
      csr_.offsets_[i] = static_cast<std::uint32_t>(total);
      total += adj_[i].size();
    }
    csr_.offsets_[n] = static_cast<std::uint32_t>(total);
    csr_.flat_.clear();
    csr_.flat_.reserve(total);
    for (const auto& row : adj_)
      csr_.flat_.insert(csr_.flat_.end(), row.begin(), row.end());
    csr_valid_ = true;
  }
  return csr_;
}

void Graph::add_edge(NodeId u, NodeId v, double delay, double cost) {
  SCMP_EXPECTS(valid(u) && valid(v) && u != v);
  SCMP_EXPECTS(!has_edge(u, v));
  SCMP_EXPECTS(delay >= 0.0 && cost >= 0.0);
  const EdgeAttr attr{delay, cost};
  adj_[static_cast<std::size_t>(u)].push_back({v, attr});
  adj_[static_cast<std::size_t>(v)].push_back({u, attr});
  ++num_edges_;
  csr_valid_ = false;
}

bool Graph::remove_edge(NodeId u, NodeId v) {
  if (!valid(u) || !valid(v) || !has_edge(u, v)) return false;
  auto erase_from = [](std::vector<Neighbor>& list, NodeId target) {
    list.erase(std::remove_if(list.begin(), list.end(),
                              [target](const Neighbor& n) {
                                return n.to == target;
                              }),
               list.end());
  };
  erase_from(adj_[static_cast<std::size_t>(u)], v);
  erase_from(adj_[static_cast<std::size_t>(v)], u);
  --num_edges_;
  csr_valid_ = false;
  return true;
}

bool Graph::has_edge(NodeId u, NodeId v) const { return edge(u, v) != nullptr; }

const EdgeAttr* Graph::edge(NodeId u, NodeId v) const {
  if (!valid(u) || !valid(v)) return nullptr;
  for (const auto& n : adj_[static_cast<std::size_t>(u)]) {
    if (n.to == v) return &n.attr;
  }
  return nullptr;
}

double Graph::average_degree() const {
  if (num_nodes() == 0) return 0.0;
  return 2.0 * num_edges() / num_nodes();
}

bool Graph::is_connected() const {
  const int n = num_nodes();
  if (n <= 1) return true;
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  std::vector<NodeId> stack{0};
  seen[0] = 1;
  int visited = 1;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    for (const auto& nb : neighbors(u)) {
      if (!seen[static_cast<std::size_t>(nb.to)]) {
        seen[static_cast<std::size_t>(nb.to)] = 1;
        ++visited;
        stack.push_back(nb.to);
      }
    }
  }
  return visited == n;
}

double path_weight(const Graph& g, const std::vector<NodeId>& path,
                   Metric metric) {
  double total = 0.0;
  for (std::size_t i = 1; i < path.size(); ++i) {
    const EdgeAttr* e = g.edge(path[i - 1], path[i]);
    SCMP_EXPECTS(e != nullptr);
    total += weight_of(*e, metric);
  }
  return total;
}

}  // namespace scmp::graph
