// Graphviz DOT export for topologies and multicast trees: `dot -Tsvg` on the
// output visualises the shared tree the m-router computed (members boxed,
// tree edges bold), which the examples use to make runs inspectable.
#pragma once

#include <string>

#include "graph/graph.hpp"
#include "graph/multicast_tree.hpp"

namespace scmp::graph {

/// The whole topology as an undirected DOT graph with (delay, cost) labels.
std::string to_dot(const Graph& g);

/// The topology with `tree` overlaid: tree edges bold/directed from parent
/// to child, the root double-circled, members shaded boxes.
std::string to_dot(const Graph& g, const MulticastTree& tree);

}  // namespace scmp::graph
