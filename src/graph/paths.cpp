#include "graph/paths.hpp"

#include <algorithm>

namespace scmp::graph {

AllPairsPaths::AllPairsPaths(const Graph& g) {
  const int n = g.num_nodes();
  by_delay_.reserve(static_cast<std::size_t>(n));
  by_cost_.reserve(static_cast<std::size_t>(n));
  for (NodeId u = 0; u < n; ++u) {
    by_delay_.push_back(dijkstra(g, u, Metric::kDelay));
    by_cost_.push_back(dijkstra(g, u, Metric::kCost));
  }
}

double AllPairsPaths::sl_delay(NodeId u, NodeId v) const {
  return sl_from(u).distance(v);
}

double AllPairsPaths::lc_cost(NodeId u, NodeId v) const {
  return lc_from(u).distance(v);
}

std::vector<NodeId> AllPairsPaths::sl_path(NodeId u, NodeId v) const {
  return sl_from(u).path_to(v);
}

std::vector<NodeId> AllPairsPaths::lc_path(NodeId u, NodeId v) const {
  return lc_from(u).path_to(v);
}

const ShortestPaths& AllPairsPaths::sl_from(NodeId u) const {
  SCMP_EXPECTS(u >= 0 && u < num_nodes());
  return by_delay_[static_cast<std::size_t>(u)];
}

const ShortestPaths& AllPairsPaths::lc_from(NodeId u) const {
  SCMP_EXPECTS(u >= 0 && u < num_nodes());
  return by_cost_[static_cast<std::size_t>(u)];
}

}  // namespace scmp::graph
