#include "graph/paths.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace scmp::graph {

namespace {

obs::Counter& sources_recomputed_counter() {
  static obs::Counter& c = obs::counter("paths.rebuild.sources_recomputed");
  return c;
}

}  // namespace

AllPairsPaths::AllPairsPaths(const Graph& g, const ParallelFor& pf) {
  rebuild(g, pf);
}

void AllPairsPaths::rebuild(const Graph& g, const ParallelFor& pf) {
  OBS_SPAN("paths.rebuild");
  const auto n = static_cast<std::size_t>(g.num_nodes());
  by_delay_.resize(n);
  by_cost_.resize(n);
  sources_recomputed_counter().inc(n);
  // Warm the CSR cache before fanning out: the lazy build mutates the
  // graph's cache under const, so it must happen on this thread, not raced
  // by the pool workers' first g.csr() calls.
  g.csr();
  const auto recompute_source = [&](std::size_t i) {
    const auto u = static_cast<NodeId>(i);
    dijkstra_into(g, u, Metric::kDelay, by_delay_[i]);
    dijkstra_into(g, u, Metric::kCost, by_cost_[i]);
  };
  if (pf) {
    pf(n, recompute_source);
  } else {
    for (std::size_t i = 0; i < n; ++i) recompute_source(i);
  }
}

bool AllPairsPaths::run_dirty(const ShortestPaths& sp, NodeId u, NodeId v,
                              const EdgeAttr* attr) {
  const auto su = static_cast<std::size_t>(u);
  const auto sv = static_cast<std::size_t>(v);
  // The cached canonical SPT routed through {u, v}: any removal or weight
  // change invalidates the paths through it.
  if (sp.parent[su] == v || sp.parent[sv] == u) return true;
  // The edge is gone and the cached tree never used it: every cached path
  // still exists with unchanged weight, and the canonical parent choice
  // (minimum id among predecessors achieving the distance) cannot gain or
  // lose a candidate.
  if (attr == nullptr) return false;
  const double w = weight_of(*attr, sp.metric);
  const double du = sp.dist[su];
  const double dv = sp.dist[sv];
  // A present (new or re-weighted) edge affects the run iff relaxing it would
  // improve an endpoint's distance — any path through the edge crosses it, so
  // an improvement anywhere implies one at an endpoint first — ...
  if (du + w < dv || dv + w < du) return true;
  // ... or ties an endpoint's distance via a smaller parent id, which would
  // re-canonicalize the SPT without changing any distance.
  // determinism: allow(canonical-SPT tie test: the sum mirrors the exact
  // relaxation Dijkstra performs, so a tie here is the same bit-identical
  // tie the rebuild would break by parent id)
  if (du + w == dv && sp.parent[sv] != kInvalidNode && u < sp.parent[sv])
    return true;
  // determinism: allow(canonical-SPT tie test: the sum mirrors the exact
  // relaxation Dijkstra performs, so a tie here is the same bit-identical
  // tie the rebuild would break by parent id)
  if (dv + w == du && sp.parent[su] != kInvalidNode && v < sp.parent[su])
    return true;
  return false;
}

int AllPairsPaths::apply_link_event(const Graph& g, NodeId u, NodeId v,
                                    const ParallelFor& pf) {
  OBS_SPAN("paths.link_event");
  SCMP_EXPECTS(g.valid(u) && g.valid(v) && u != v);
  SCMP_EXPECTS(static_cast<std::size_t>(g.num_nodes()) == by_delay_.size());
  const EdgeAttr* attr = g.edge(u, v);

  // Dirty-source scan: O(n) table lookups against the cached runs. A source
  // is recomputed (both metrics — one source per task) when either of its
  // runs can be affected; every clean source's cached runs are provably the
  // canonical answer on the new graph already.
  std::vector<std::size_t> dirty;
  for (std::size_t i = 0; i < by_delay_.size(); ++i) {
    if (run_dirty(by_delay_[i], u, v, attr) ||
        run_dirty(by_cost_[i], u, v, attr)) {
      dirty.push_back(i);
    }
  }
  sources_recomputed_counter().inc(dirty.size());
  g.csr();  // single-threaded warm-up, as in rebuild()
  const auto recompute = [&](std::size_t k) {
    const std::size_t i = dirty[k];
    const auto s = static_cast<NodeId>(i);
    dijkstra_into(g, s, Metric::kDelay, by_delay_[i]);
    dijkstra_into(g, s, Metric::kCost, by_cost_[i]);
  };
  if (pf) {
    pf(dirty.size(), recompute);
  } else {
    for (std::size_t k = 0; k < dirty.size(); ++k) recompute(k);
  }
  return static_cast<int>(dirty.size());
}

double AllPairsPaths::sl_delay(NodeId u, NodeId v) const {
  return sl_from(u).distance(v);
}

double AllPairsPaths::sl_cost(NodeId u, NodeId v) const {
  return sl_from(u).companion_distance(v);
}

double AllPairsPaths::lc_cost(NodeId u, NodeId v) const {
  return lc_from(u).distance(v);
}

double AllPairsPaths::lc_delay(NodeId u, NodeId v) const {
  return lc_from(u).companion_distance(v);
}

std::vector<NodeId> AllPairsPaths::sl_path(NodeId u, NodeId v) const {
  return sl_from(u).path_to(v);
}

std::vector<NodeId> AllPairsPaths::lc_path(NodeId u, NodeId v) const {
  return lc_from(u).path_to(v);
}

void AllPairsPaths::sl_path_into(NodeId u, NodeId v,
                                 std::vector<NodeId>& out) const {
  sl_from(u).path_to_into(v, out);
}

void AllPairsPaths::lc_path_into(NodeId u, NodeId v,
                                 std::vector<NodeId>& out) const {
  lc_from(u).path_to_into(v, out);
}

const ShortestPaths& AllPairsPaths::sl_from(NodeId u) const {
  SCMP_EXPECTS(u >= 0 && u < num_nodes());
  return by_delay_[static_cast<std::size_t>(u)];
}

const ShortestPaths& AllPairsPaths::lc_from(NodeId u) const {
  SCMP_EXPECTS(u >= 0 && u < num_nodes());
  return by_cost_[static_cast<std::size_t>(u)];
}

}  // namespace scmp::graph
