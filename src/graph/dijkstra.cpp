#include "graph/dijkstra.hpp"

#include <algorithm>
#include <queue>
#include <tuple>

namespace scmp::graph {

std::vector<NodeId> ShortestPaths::path_to(NodeId dst) const {
  SCMP_EXPECTS(dst >= 0 && dst < static_cast<NodeId>(dist.size()));
  if (!reachable(dst)) return {};
  std::vector<NodeId> path;
  for (NodeId v = dst; v != kInvalidNode; v = parent[static_cast<std::size_t>(v)])
    path.push_back(v);
  std::reverse(path.begin(), path.end());
  SCMP_ENSURES(path.front() == source);
  return path;
}

ShortestPaths dijkstra(const Graph& g, NodeId source, Metric metric) {
  SCMP_EXPECTS(g.valid(source));
  const auto n = static_cast<std::size_t>(g.num_nodes());
  ShortestPaths out;
  out.source = source;
  out.metric = metric;
  out.dist.assign(n, kUnreachable);
  out.parent.assign(n, kInvalidNode);
  out.dist[static_cast<std::size_t>(source)] = 0.0;

  // (distance, node); the node id in the key makes pop order deterministic.
  using Entry = std::pair<double, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  heap.emplace(0.0, source);
  std::vector<char> done(n, 0);

  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (done[static_cast<std::size_t>(u)]) continue;
    done[static_cast<std::size_t>(u)] = 1;
    for (const auto& nb : g.neighbors(u)) {
      const double nd = d + weight_of(nb.attr, metric);
      auto& cur = out.dist[static_cast<std::size_t>(nb.to)];
      auto& par = out.parent[static_cast<std::size_t>(nb.to)];
      // Strict improvement, or equal distance via a smaller parent id: the
      // second clause pins down one canonical shortest-path tree.
      if (nd < cur || (nd == cur && par != kInvalidNode && u < par)) {
        cur = nd;
        par = u;
        heap.emplace(nd, nb.to);
      }
    }
  }
  return out;
}

}  // namespace scmp::graph
