#include "graph/dijkstra.hpp"

#include <algorithm>
#include <queue>
#include <tuple>

namespace scmp::graph {

std::vector<NodeId> ShortestPaths::path_to(NodeId dst) const {
  SCMP_EXPECTS(dst >= 0 && dst < static_cast<NodeId>(dist.size()));
  if (!reachable(dst)) return {};
  std::vector<NodeId> path;
  path.reserve(static_cast<std::size_t>(hops[static_cast<std::size_t>(dst)]) +
               1);
  for (NodeId v = dst; v != kInvalidNode; v = parent[static_cast<std::size_t>(v)])
    path.push_back(v);
  std::reverse(path.begin(), path.end());
  SCMP_ENSURES(path.front() == source);
  return path;
}

void ShortestPaths::path_to_into(NodeId dst, std::vector<NodeId>& out) const {
  SCMP_EXPECTS(dst >= 0 && dst < static_cast<NodeId>(dist.size()));
  out.clear();
  if (!reachable(dst)) return;
  out.reserve(static_cast<std::size_t>(hops[static_cast<std::size_t>(dst)]) +
              1);
  for (NodeId v = dst; v != kInvalidNode; v = parent[static_cast<std::size_t>(v)])
    out.push_back(v);
  std::reverse(out.begin(), out.end());
  SCMP_ENSURES(out.front() == source);
}

void dijkstra_into(const Graph& g, NodeId source, Metric metric,
                   ShortestPaths& out) {
  SCMP_EXPECTS(g.valid(source));
  const auto n = static_cast<std::size_t>(g.num_nodes());
  const Metric comp = companion_of(metric);
  out.source = source;
  out.metric = metric;
  out.dist.assign(n, kUnreachable);
  out.companion.assign(n, kUnreachable);
  out.hops.assign(n, -1);
  out.parent.assign(n, kInvalidNode);
  out.dist[static_cast<std::size_t>(source)] = 0.0;
  out.companion[static_cast<std::size_t>(source)] = 0.0;
  out.hops[static_cast<std::size_t>(source)] = 0;

  // (distance, node); the node id in the key makes pop order deterministic.
  using Entry = std::pair<double, NodeId>;
  // hot-path: allow(one-time per-run setup, outside the relaxation loop)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  heap.emplace(0.0, source);
  // hot-path: allow(one-time per-run setup, outside the relaxation loop)
  std::vector<char> done(n, 0);

  // Relax over the flat CSR rows: the whole frontier's neighbours live in
  // one contiguous array instead of n separate vectors.
  const Graph::CsrView& csr = g.csr();

  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (done[static_cast<std::size_t>(u)]) continue;
    done[static_cast<std::size_t>(u)] = 1;
    const double cu = out.companion[static_cast<std::size_t>(u)];
    const std::int32_t hu = out.hops[static_cast<std::size_t>(u)];
    for (const auto& nb : csr.row(u)) {
      // A finalized node never re-parents: with positive weights no later
      // relaxation can match its distance anyway, and for zero-weight edges
      // the guard keeps every descendant's companion/hops consistent with
      // the parent pointers (a post-finalization flip would desynchronize
      // the accumulated sums from the canonical path).
      if (done[static_cast<std::size_t>(nb.to)]) continue;
      const double nd = d + weight_of(nb.attr, metric);
      auto& cur = out.dist[static_cast<std::size_t>(nb.to)];
      auto& par = out.parent[static_cast<std::size_t>(nb.to)];
      // Strict improvement, or equal distance via a smaller parent id: the
      // second clause pins down one canonical shortest-path tree. The
      // companion weight and hop count follow the parent choice, so they
      // always describe the same canonical path as dist/parent.
      // determinism: allow(canonical-SPT tie-break: equal distances reached
      // by the same left-to-right relaxation sums on one platform; ties
      // resolve by parent id, pinned by the golden traces)
      if (nd < cur || (nd == cur && par != kInvalidNode && u < par)) {
        cur = nd;
        par = u;
        out.companion[static_cast<std::size_t>(nb.to)] =
            cu + weight_of(nb.attr, comp);
        out.hops[static_cast<std::size_t>(nb.to)] = hu + 1;
        heap.emplace(nd, nb.to);
      }
    }
  }
}

ShortestPaths dijkstra(const Graph& g, NodeId source, Metric metric) {
  ShortestPaths out;
  dijkstra_into(g, source, metric, out);
  return out;
}

}  // namespace scmp::graph
