// KMB Steiner-tree approximation (Kou, Markowsky & Berman 1981, the paper's
// reference [19]): the best known simple approximation on tree cost, used as
// the cost-only baseline in Fig. 7. It ignores delay entirely, which is why
// its tree delay oscillates in the paper's plots.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "graph/multicast_tree.hpp"
#include "graph/paths.hpp"

namespace scmp::graph {

/// Builds the KMB approximate minimum-cost tree spanning {root} ∪ members.
/// `metric` selects the optimised link weight (the paper uses cost).
/// Members are marked on the returned tree.
MulticastTree kmb_steiner(const Graph& g, const AllPairsPaths& paths,
                          NodeId root, const std::vector<NodeId>& members,
                          Metric metric = Metric::kCost);

}  // namespace scmp::graph
