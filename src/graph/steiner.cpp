#include "graph/steiner.hpp"

#include <algorithm>

#include "graph/mst.hpp"

namespace scmp::graph {

namespace {

double pair_distance(const AllPairsPaths& paths, Metric metric, NodeId u,
                     NodeId v) {
  return metric == Metric::kCost ? paths.lc_cost(u, v) : paths.sl_delay(u, v);
}

std::vector<NodeId> pair_path(const AllPairsPaths& paths, Metric metric,
                              NodeId u, NodeId v) {
  return metric == Metric::kCost ? paths.lc_path(u, v) : paths.sl_path(u, v);
}

}  // namespace

MulticastTree kmb_steiner(const Graph& g, const AllPairsPaths& paths,
                          NodeId root, const std::vector<NodeId>& members,
                          Metric metric) {
  SCMP_EXPECTS(g.valid(root));

  // Terminal set: root plus members, deduplicated, deterministic order.
  std::vector<NodeId> terminals{root};
  terminals.insert(terminals.end(), members.begin(), members.end());
  std::sort(terminals.begin() + 1, terminals.end());
  terminals.erase(std::unique(terminals.begin() + 1, terminals.end()),
                  terminals.end());
  terminals.erase(
      std::remove_if(terminals.begin() + 1, terminals.end(),
                     [root](NodeId v) { return v == root; }),
      terminals.end());

  const int t = static_cast<int>(terminals.size());

  // Step 1: complete distance graph over the terminals.
  std::vector<std::vector<double>> dist(
      static_cast<std::size_t>(t),
      std::vector<double>(static_cast<std::size_t>(t), kUnreachable));
  for (int i = 0; i < t; ++i) {
    for (int j = i + 1; j < t; ++j) {
      const double d = pair_distance(paths, metric, terminals[static_cast<std::size_t>(i)],
                                     terminals[static_cast<std::size_t>(j)]);
      dist[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = d;
      dist[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] = d;
    }
  }

  // Step 2: MST of the distance graph.
  const std::vector<int> closure_parent = prim_mst_dense(dist, 0);

  // Step 3: expand every closure edge into its underlying path; the union
  // forms a connected subgraph of g.
  Graph sub(g.num_nodes());
  auto add_path_edges = [&](const std::vector<NodeId>& path) {
    for (std::size_t i = 1; i < path.size(); ++i) {
      if (!sub.has_edge(path[i - 1], path[i])) {
        const EdgeAttr* e = g.edge(path[i - 1], path[i]);
        SCMP_EXPECTS(e != nullptr);
        sub.add_edge(path[i - 1], path[i], e->delay, e->cost);
      }
    }
  };
  for (int i = 1; i < t; ++i) {
    const int p = closure_parent[static_cast<std::size_t>(i)];
    SCMP_EXPECTS(p != kInvalidNode);  // g is connected => closure is connected
    add_path_edges(pair_path(paths, metric, terminals[static_cast<std::size_t>(p)],
                             terminals[static_cast<std::size_t>(i)]));
  }

  // Step 4: MST of the expanded subgraph, rooted at the multicast root.
  const std::vector<NodeId> sub_parent = prim_mst(sub, root, metric);

  MulticastTree tree(root, g.num_nodes());
  std::vector<char> is_terminal(static_cast<std::size_t>(g.num_nodes()), 0);
  for (NodeId v : terminals) is_terminal[static_cast<std::size_t>(v)] = 1;

  // Attach every subgraph node reachable from root, in BFS-from-root order so
  // each parent is on the tree before its children.
  {
    std::vector<std::vector<NodeId>> kids(
        static_cast<std::size_t>(g.num_nodes()));
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const NodeId p = sub_parent[static_cast<std::size_t>(v)];
      if (p != kInvalidNode) kids[static_cast<std::size_t>(p)].push_back(v);
    }
    std::vector<NodeId> queue{root};
    for (std::size_t qi = 0; qi < queue.size(); ++qi) {
      const NodeId u = queue[qi];
      for (NodeId c : kids[static_cast<std::size_t>(u)]) {
        tree.graft_path({u, c});
        queue.push_back(c);
      }
    }
  }

  // Mark members first so leaf pruning cannot remove a terminal that happens
  // to sit on a dangling chain (prune_upward_from stops at members).
  for (NodeId v : members)
    if (tree.on_tree(v)) tree.set_member(v, true);

  // Step 5: repeatedly delete non-terminal leaves.
  for (NodeId v : tree.on_tree_nodes()) {
    if (tree.on_tree(v) && tree.is_leaf(v) &&
        !is_terminal[static_cast<std::size_t>(v)])
      tree.prune_upward_from(v);
  }
  SCMP_ENSURES(tree.validate(g));
  return tree;
}

}  // namespace scmp::graph
