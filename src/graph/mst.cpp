#include "graph/mst.hpp"

#include <queue>

#include "graph/dijkstra.hpp"

namespace scmp::graph {

std::vector<NodeId> prim_mst(const Graph& g, NodeId root, Metric metric) {
  SCMP_EXPECTS(g.valid(root));
  const auto n = static_cast<std::size_t>(g.num_nodes());
  std::vector<double> key(n, kUnreachable);
  std::vector<NodeId> parent(n, kInvalidNode);
  std::vector<char> done(n, 0);
  key[static_cast<std::size_t>(root)] = 0.0;

  using Entry = std::pair<double, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  heap.emplace(0.0, root);
  // Same CSR sweep as Dijkstra: neighbour order matches neighbors(u), so
  // the canonical tie-breaks below are unaffected.
  const Graph::CsrView& csr = g.csr();
  while (!heap.empty()) {
    const auto [k, u] = heap.top();
    heap.pop();
    if (done[static_cast<std::size_t>(u)]) continue;
    done[static_cast<std::size_t>(u)] = 1;
    for (const auto& nb : csr.row(u)) {
      const double w = weight_of(nb.attr, metric);
      const auto idx = static_cast<std::size_t>(nb.to);
      if (!done[idx] &&
          // determinism: allow(canonical-MST tie-break: equal keys are raw
          // edge weights, not accumulated sums; ties resolve by parent id so
          // Prim yields one canonical tree)
          (w < key[idx] || (w == key[idx] && parent[idx] != kInvalidNode &&
                            u < parent[idx]))) {
        key[idx] = w;
        parent[idx] = u;
        heap.emplace(w, nb.to);
      }
    }
  }
  return parent;
}

std::vector<int> prim_mst_dense(const std::vector<std::vector<double>>& w,
                                int root) {
  const int n = static_cast<int>(w.size());
  SCMP_EXPECTS(root >= 0 && root < n);
  std::vector<double> key(static_cast<std::size_t>(n), kUnreachable);
  std::vector<int> parent(static_cast<std::size_t>(n), kInvalidNode);
  std::vector<char> done(static_cast<std::size_t>(n), 0);
  key[static_cast<std::size_t>(root)] = 0.0;

  for (int iter = 0; iter < n; ++iter) {
    int best = -1;
    for (int v = 0; v < n; ++v) {
      const auto idx = static_cast<std::size_t>(v);
      if (!done[idx] && key[idx] < kUnreachable &&
          (best == -1 || key[idx] < key[static_cast<std::size_t>(best)]))
        best = v;
    }
    if (best == -1) break;  // remaining vertices unreachable
    done[static_cast<std::size_t>(best)] = 1;
    for (int v = 0; v < n; ++v) {
      const auto idx = static_cast<std::size_t>(v);
      const double cand = w[static_cast<std::size_t>(best)][idx];
      if (!done[idx] && cand < key[idx]) {
        key[idx] = cand;
        parent[idx] = best;
      }
    }
  }
  return parent;
}

}  // namespace scmp::graph
