#include "graph/multicast_tree.hpp"

#include <algorithm>

namespace scmp::graph {

MulticastTree::MulticastTree(NodeId root, int num_nodes) : root_(root) {
  SCMP_EXPECTS(num_nodes > 0 && root >= 0 && root < num_nodes);
  parent_.assign(static_cast<std::size_t>(num_nodes), kInvalidNode);
  on_tree_.assign(static_cast<std::size_t>(num_nodes), 0);
  member_.assign(static_cast<std::size_t>(num_nodes), 0);
  children_.resize(static_cast<std::size_t>(num_nodes));
  on_tree_[static_cast<std::size_t>(root)] = 1;
  tree_size_ = 1;
}

bool MulticastTree::on_tree(NodeId v) const {
  SCMP_EXPECTS(v >= 0 && v < num_nodes());
  return on_tree_[static_cast<std::size_t>(v)] != 0;
}

NodeId MulticastTree::parent(NodeId v) const {
  SCMP_EXPECTS(on_tree(v));
  return parent_[static_cast<std::size_t>(v)];
}

const std::vector<NodeId>& MulticastTree::children(NodeId v) const {
  SCMP_EXPECTS(v >= 0 && v < num_nodes());
  return children_[static_cast<std::size_t>(v)];
}

bool MulticastTree::is_member(NodeId v) const {
  SCMP_EXPECTS(v >= 0 && v < num_nodes());
  return member_[static_cast<std::size_t>(v)] != 0;
}

void MulticastTree::set_member(NodeId v, bool member) {
  SCMP_EXPECTS(!member || on_tree(v));
  member_[static_cast<std::size_t>(v)] = member ? 1 : 0;
}

std::vector<NodeId> MulticastTree::members() const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < num_nodes(); ++v)
    if (member_[static_cast<std::size_t>(v)]) out.push_back(v);
  return out;
}

std::vector<NodeId> MulticastTree::on_tree_nodes() const {
  std::vector<NodeId> out;
  out.reserve(static_cast<std::size_t>(tree_size_));
  for (NodeId v = 0; v < num_nodes(); ++v)
    if (on_tree_[static_cast<std::size_t>(v)]) out.push_back(v);
  return out;
}

bool MulticastTree::is_leaf(NodeId v) const {
  return on_tree(v) && children(v).empty();
}

void MulticastTree::attach(NodeId child, NodeId parent) {
  SCMP_EXPECTS(on_tree(parent));
  SCMP_EXPECTS(child != root_);
  parent_[static_cast<std::size_t>(child)] = parent;
  children_[static_cast<std::size_t>(parent)].push_back(child);
  if (!on_tree_[static_cast<std::size_t>(child)]) {
    on_tree_[static_cast<std::size_t>(child)] = 1;
    ++tree_size_;
  }
}

void MulticastTree::detach(NodeId child) {
  const NodeId p = parent_[static_cast<std::size_t>(child)];
  if (p == kInvalidNode) return;
  auto& sib = children_[static_cast<std::size_t>(p)];
  sib.erase(std::remove(sib.begin(), sib.end(), child), sib.end());
  parent_[static_cast<std::size_t>(child)] = kInvalidNode;
}

void MulticastTree::remove_node(NodeId v) {
  SCMP_EXPECTS(v != root_ && on_tree(v) && children(v).empty());
  detach(v);
  on_tree_[static_cast<std::size_t>(v)] = 0;
  member_[static_cast<std::size_t>(v)] = 0;
  --tree_size_;
}

bool MulticastTree::is_ancestor(NodeId anc, NodeId v) const {
  for (NodeId cur = v; cur != kInvalidNode;
       cur = parent_[static_cast<std::size_t>(cur)]) {
    if (cur == anc) return true;
  }
  return false;
}

void MulticastTree::graft_path(const std::vector<NodeId>& path) {
  SCMP_EXPECTS(!path.empty());
  SCMP_EXPECTS(on_tree(path.front()));
  NodeId prev = path.front();
  for (std::size_t i = 1; i < path.size(); ++i) {
    const NodeId cur = path[i];
    SCMP_EXPECTS(cur >= 0 && cur < num_nodes());
    if (cur == prev) continue;
    if (!on_tree(cur)) {
      attach(cur, prev);
    } else if (parent_[static_cast<std::size_t>(cur)] == prev) {
      // Path segment already coincides with a tree edge.
    } else if (cur == root_ || is_ancestor(cur, prev)) {
      // Re-parenting cur under prev would create a cycle; the new segment
      // ending at prev is the redundant branch, so prune it instead.
      prune_upward_from(prev);
    } else {
      // Loop elimination (paper Fig. 5): cur joins the new path, and the old
      // branch that led into it is pruned upward.
      const NodeId old_parent = parent_[static_cast<std::size_t>(cur)];
      detach(cur);
      attach(cur, prev);
      if (old_parent != kInvalidNode) prune_upward_from(old_parent);
    }
    prev = cur;
  }
}

void MulticastTree::prune_upward_from(NodeId v) {
  NodeId cur = v;
  while (cur != root_ && on_tree(cur) && children(cur).empty() &&
         !is_member(cur)) {
    const NodeId p = parent_[static_cast<std::size_t>(cur)];
    remove_node(cur);
    cur = p;
  }
}

std::vector<NodeId> MulticastTree::path_from_root(NodeId v) const {
  SCMP_EXPECTS(on_tree(v));
  std::vector<NodeId> path;
  for (NodeId cur = v; cur != kInvalidNode;
       cur = parent_[static_cast<std::size_t>(cur)])
    path.push_back(cur);
  std::reverse(path.begin(), path.end());
  SCMP_ENSURES(path.front() == root_);
  return path;
}

double MulticastTree::tree_cost(const Graph& g) const {
  double total = 0.0;
  for (NodeId v = 0; v < num_nodes(); ++v) {
    if (!on_tree_[static_cast<std::size_t>(v)] || v == root_) continue;
    const EdgeAttr* e = g.edge(v, parent_[static_cast<std::size_t>(v)]);
    SCMP_EXPECTS(e != nullptr);
    total += e->cost;
  }
  return total;
}

double MulticastTree::node_delay(const Graph& g, NodeId v) const {
  SCMP_EXPECTS(on_tree(v));
  double total = 0.0;
  for (NodeId cur = v; cur != root_;
       cur = parent_[static_cast<std::size_t>(cur)]) {
    const EdgeAttr* e = g.edge(cur, parent_[static_cast<std::size_t>(cur)]);
    SCMP_EXPECTS(e != nullptr);
    total += e->delay;
  }
  return total;
}

double MulticastTree::tree_delay(const Graph& g) const {
  // Flag scan instead of members(): this sits on DCDM's per-join bound
  // computation and must not allocate.
  double worst = 0.0;
  for (NodeId v = 0; v < num_nodes(); ++v) {
    if (member_[static_cast<std::size_t>(v)])
      worst = std::max(worst, node_delay(g, v));
  }
  return worst;
}

std::vector<std::pair<NodeId, NodeId>> MulticastTree::edges() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  for (NodeId v = 0; v < num_nodes(); ++v) {
    if (on_tree_[static_cast<std::size_t>(v)] && v != root_)
      out.emplace_back(v, parent_[static_cast<std::size_t>(v)]);
  }
  return out;
}

bool MulticastTree::validate(const Graph& g) const {
  if (!on_tree(root_)) return false;
  if (parent_[static_cast<std::size_t>(root_)] != kInvalidNode) return false;
  int counted = 0;
  for (NodeId v = 0; v < num_nodes(); ++v) {
    const auto idx = static_cast<std::size_t>(v);
    if (member_[idx] && !on_tree_[idx]) return false;
    if (!on_tree_[idx]) {
      if (parent_[idx] != kInvalidNode || !children_[idx].empty()) return false;
      continue;
    }
    ++counted;
    if (v == root_) continue;
    const NodeId p = parent_[idx];
    if (p == kInvalidNode || !on_tree(p)) return false;
    if (g.edge(v, p) == nullptr) return false;
    const auto& sib = children_[static_cast<std::size_t>(p)];
    if (std::count(sib.begin(), sib.end(), v) != 1) return false;
    // Cycle check: the walk to the root must terminate within tree_size_ hops.
    int hops = 0;
    for (NodeId cur = v; cur != root_;
         cur = parent_[static_cast<std::size_t>(cur)]) {
      if (++hops > tree_size_) return false;
    }
  }
  if (counted != tree_size_) return false;
  for (NodeId v = 0; v < num_nodes(); ++v) {
    for (NodeId c : children_[static_cast<std::size_t>(v)]) {
      if (parent_[static_cast<std::size_t>(c)] != v) return false;
    }
  }
  return true;
}

}  // namespace scmp::graph
