#include "graph/dot.hpp"

#include <sstream>

namespace scmp::graph {

namespace {

void emit_plain_edges(const Graph& g, std::ostringstream& os) {
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const auto& nb : g.neighbors(u)) {
      if (u >= nb.to) continue;
      os << "  n" << u << " -- n" << nb.to << " [label=\"(" << nb.attr.delay
         << "," << nb.attr.cost << ")\"];\n";
    }
  }
}

}  // namespace

std::string to_dot(const Graph& g) {
  std::ostringstream os;
  os << "graph topology {\n  node [shape=circle];\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) os << "  n" << v << ";\n";
  emit_plain_edges(g, os);
  os << "}\n";
  return os.str();
}

std::string to_dot(const Graph& g, const MulticastTree& tree) {
  SCMP_EXPECTS(tree.num_nodes() == g.num_nodes());
  std::ostringstream os;
  os << "graph multicast_tree {\n  node [shape=circle];\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    os << "  n" << v;
    if (v == tree.root()) {
      os << " [shape=doublecircle,label=\"" << v << "\\n(m-router)\"]";
    } else if (tree.is_member(v)) {
      os << " [shape=box,style=filled,fillcolor=lightgrey]";
    } else if (tree.on_tree(v)) {
      os << " [style=bold]";
    }
    os << ";\n";
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const auto& nb : g.neighbors(u)) {
      if (u >= nb.to) continue;
      const bool tree_edge =
          (tree.on_tree(u) && tree.on_tree(nb.to) &&
           (tree.parent(u) == nb.to || tree.parent(nb.to) == u));
      os << "  n" << u << " -- n" << nb.to;
      if (tree_edge) {
        os << " [penwidth=3]";
      } else {
        os << " [style=dotted,color=grey]";
      }
      os << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace scmp::graph
