#include "graph/spt.hpp"

#include "graph/dijkstra.hpp"

namespace scmp::graph {

MulticastTree shortest_path_tree(const Graph& g, NodeId root,
                                 const std::vector<NodeId>& members,
                                 Metric metric) {
  const ShortestPaths sp = dijkstra(g, root, metric);
  MulticastTree tree(root, g.num_nodes());
  for (NodeId m : members) {
    SCMP_EXPECTS(sp.reachable(m));
    tree.graft_path(sp.path_to(m));
    tree.set_member(m, true);
  }
  SCMP_ENSURES(tree.validate(g));
  return tree;
}

}  // namespace scmp::graph
