// Minimum spanning trees: Prim's algorithm over a sparse Graph (used to
// reduce KMB's expanded subgraph) and over a dense distance matrix (used for
// KMB's terminal-closure graph).
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace scmp::graph {

/// Prim MST rooted at `root`. Returns one parent per node; kInvalidNode for
/// the root and for nodes unreachable from it. Deterministic tie-breaking by
/// node id.
std::vector<NodeId> prim_mst(const Graph& g, NodeId root, Metric metric);

/// Prim MST over a symmetric dense weight matrix (kUnreachable = no edge).
/// Returns parents as indices into the matrix; kInvalidNode for `root`.
std::vector<int> prim_mst_dense(const std::vector<std::vector<double>>& w,
                                int root);

}  // namespace scmp::graph
