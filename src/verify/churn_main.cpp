// scmp_churn_check — CLI front end of the churn model-checker. CI's verify
// job runs it with fixed seeds and a short event budget; locally it scales
// to the ISSUE's 50k-event acceptance runs.
//
//   scmp_churn_check [--topo=arpanet|waxman|transit-stub] [--topo-seed=N]
//                    [--nodes=N] [--degree=D] [--groups=N] [--events=N]
//                    [--seeds=a,b,c] [--audit-stride=N]
//                    [--max-link-failures=N] [--fault=<packet-type>[:nth]]
//                    [--loss=RATE[:SEED]] [--epoch=SECONDS] [--convergence]
//                    [--dump-dir=DIR] [--replay=TRACE] [--no-shrink]
//                    [--verbose] [--metrics[=FILE]] [--trace[=BASE]]
//                    [--timeseries[=FILE]] [--timeseries-interval=S]
//                    [--flight[=BASE]]
//
// --loss drops every SCMP control packet (ACKs included) independently with
// probability RATE, enabling the protocol's reliable-delivery layer and the
// reconcile-before-audit loop — the ISSUE's lossy acceptance mode.
//
// --epoch enables epoch-batched membership with the given close interval and
// makes every replay run the batched-vs-sequential differential check (see
// ChurnConfig::epoch_interval).
//
// --convergence enables per-group time-to-convergence tracking (implied by
// --loss); each seed then reports events/converged/timeouts and per-group
// p50/p95/p99 seconds-to-converge.
//
// --metrics / --trace / --timeseries / --flight (obs::ObsSession) export the
// run's metrics, per-audit spans, the deterministic metric time-series and
// the causal flight-recorder artifacts; each run also reports its
// invariant-audit wall time, and with --flight enabled a per-seed summary of
// reconstructed JOIN -> installed causal chains.
//
// Default mode: for every event seed, generate + replay the churn sequence.
// On a violation, shrink it to a minimal trace, dump the replayable artifact
// into --dump-dir (default ".") and exit 1. --replay re-runs a dumped trace
// instead (exit 1 when it still reproduces its violation — the expected
// outcome when triaging).
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "obs/flight.hpp"
#include "obs/session.hpp"
#include "obs/timeseries.hpp"
#include "util/contracts.hpp"
#include "verify/churn.hpp"

namespace {

using scmp::verify::ChurnConfig;
using scmp::verify::ChurnModelChecker;
using scmp::verify::ChurnTopo;
using scmp::verify::CheckOutcome;
using scmp::verify::FaultSpec;
using scmp::verify::TraceArtifact;

struct Options {
  ChurnConfig cfg;
  std::vector<std::uint64_t> seeds = {1};
  std::string dump_dir = ".";
  std::string replay_path;
  bool shrink = true;
  bool verbose = false;
  bool parse_ok = true;
};

bool consume(const std::string& arg, const std::string& key,
             std::string& value) {
  const std::string prefix = key + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  value = arg.substr(prefix.size());
  return true;
}

std::vector<std::uint64_t> parse_seeds(const std::string& csv) {
  std::vector<std::uint64_t> seeds;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    std::size_t next = csv.find(',', pos);
    if (next == std::string::npos) next = csv.size();
    seeds.push_back(std::stoull(csv.substr(pos, next - pos)));
    pos = next + 1;
  }
  return seeds;
}

FaultSpec parse_fault(const std::string& spec) {
  FaultSpec fault;
  const std::size_t colon = spec.find(':');
  const std::string name = spec.substr(0, colon);
  if (colon != std::string::npos)
    fault.every_nth = std::stoi(spec.substr(colon + 1));
  // Round-trip through the trace grammar's parser for the name mapping.
  const TraceArtifact probe = scmp::verify::deserialize(
      "scmp-churn-trace v1\nfault " + name + " " +
      std::to_string(fault.every_nth) + "\n");
  SCMP_ASSERT(probe.config.fault.has_value());
  return *probe.config.fault;
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string v;
    if (consume(arg, "--topo", v)) {
      if (v == "arpanet") {
        opt.cfg.topo = ChurnTopo::kArpanet;
      } else if (v == "waxman") {
        opt.cfg.topo = ChurnTopo::kWaxman;
      } else if (v == "transit-stub") {
        opt.cfg.topo = ChurnTopo::kTransitStub;
      } else {
        std::fprintf(stderr, "unknown --topo=%s\n", v.c_str());
        opt.parse_ok = false;
      }
    } else if (consume(arg, "--topo-seed", v)) {
      opt.cfg.topo_seed = std::stoull(v);
    } else if (consume(arg, "--nodes", v)) {
      opt.cfg.waxman_nodes = std::stoi(v);
    } else if (consume(arg, "--degree", v)) {
      opt.cfg.waxman_degree = std::stod(v);
    } else if (consume(arg, "--groups", v)) {
      opt.cfg.num_groups = std::stoi(v);
    } else if (consume(arg, "--events", v)) {
      opt.cfg.num_events = std::stoi(v);
    } else if (consume(arg, "--seeds", v)) {
      opt.seeds = parse_seeds(v);
    } else if (consume(arg, "--audit-stride", v)) {
      opt.cfg.audit_stride = std::stoi(v);
    } else if (consume(arg, "--max-link-failures", v)) {
      opt.cfg.max_link_failures = std::stoi(v);
    } else if (consume(arg, "--fault", v)) {
      opt.cfg.fault = parse_fault(v);
    } else if (consume(arg, "--loss", v)) {
      const std::size_t colon = v.find(':');
      opt.cfg.control_loss_rate = std::stod(v.substr(0, colon));
      if (colon != std::string::npos)
        opt.cfg.loss_seed = std::stoull(v.substr(colon + 1));
      if (opt.cfg.control_loss_rate < 0.0 || opt.cfg.control_loss_rate >= 1.0) {
        std::fprintf(stderr, "--loss rate must be in [0, 1)\n");
        opt.parse_ok = false;
      }
    } else if (consume(arg, "--epoch", v)) {
      opt.cfg.epoch_interval = std::stod(v);
      if (opt.cfg.epoch_interval < 0.0) {
        std::fprintf(stderr, "--epoch interval must be >= 0\n");
        opt.parse_ok = false;
      }
    } else if (arg == "--convergence") {
      opt.cfg.track_convergence = true;
    } else if (consume(arg, "--dump-dir", v)) {
      opt.dump_dir = v;
    } else if (consume(arg, "--replay", v)) {
      opt.replay_path = v;
    } else if (arg == "--no-shrink") {
      opt.shrink = false;
    } else if (arg == "--verbose") {
      opt.verbose = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      opt.parse_ok = false;
    }
  }
  if (opt.seeds.empty()) {
    std::fprintf(stderr, "--seeds must name at least one seed\n");
    opt.parse_ok = false;
  }
  // Lossy runs are exactly the runs whose convergence latency is
  // interesting: tracking rides along automatically.
  if (opt.cfg.control_loss_rate > 0.0) opt.cfg.track_convergence = true;
  return opt;
}

void print_outcome(const char* what, const CheckOutcome& outcome) {
  if (outcome.audits > 0) {
    std::printf("%s: %d audit(s), %.3f ms audit time (%.1f us/audit)\n", what,
                outcome.audits, outcome.audit_seconds * 1e3,
                outcome.audit_seconds * 1e6 / outcome.audits);
  }
  if (outcome.ok) {
    std::printf("%s: OK (%d events executed, no violations)\n", what,
                outcome.executed);
    return;
  }
  std::printf("%s: VIOLATION after event %d (%zu finding(s))\n", what,
              outcome.failing_index, outcome.violations.size());
  for (const auto& violation : outcome.violations)
    std::printf("  %s: %s\n", violation.invariant.c_str(),
                violation.detail.c_str());
}

void print_convergence(const CheckOutcome& outcome) {
  if (!outcome.convergence.has_value()) return;
  const auto& c = *outcome.convergence;
  std::printf("  convergence: %llu event(s), %llu converged, %llu timeout(s)\n",
              static_cast<unsigned long long>(c.events),
              static_cast<unsigned long long>(c.converged),
              static_cast<unsigned long long>(c.timeouts));
  for (const auto& [group, s] : c.per_group) {
    std::printf("    g%d: n=%zu p50=%.3fs p95=%.3fs p99=%.3fs\n", group,
                s.count, s.p50, s.p95, s.p99);
  }
}

/// Reconstructs causal JOIN stories from the flight recorder's retained
/// records: a story is complete once its chain reaches at least one
/// installed-state record (the acceptance criterion for the lossy runs).
void print_flight_summary() {
  if (!scmp::obs::flight_enabled()) return;
  const std::vector<scmp::obs::FlightRecord> records =
      scmp::obs::flight().snapshot();
  int stories = 0;
  int complete = 0;
  for (const auto& r : records) {
    if (r.kind != scmp::obs::FlightEventKind::kHandle || r.req == 0 ||
        std::strcmp(r.what, "JOIN") != 0)
      continue;
    ++stories;
    for (const auto& s : scmp::obs::story_of(records, r.req)) {
      if (s.kind == scmp::obs::FlightEventKind::kInstalled) {
        ++complete;
        break;
      }
    }
  }
  std::printf(
      "  flight: %zu record(s), %d JOIN story(ies), %d complete "
      "JOIN->installed chain(s)\n",
      records.size(), stories, complete);
}

int replay_mode(const Options& opt) {
  const TraceArtifact trace = scmp::verify::read_trace(opt.replay_path);
  const ChurnModelChecker checker(trace.config);
  const CheckOutcome outcome = checker.replay(trace.events);
  print_outcome(opt.replay_path.c_str(), outcome);
  print_convergence(outcome);
  return outcome.ok ? 0 : 1;
}

int check_mode(const Options& opt) {
  int failures = 0;
  for (std::uint64_t seed : opt.seeds) {
    // Fresh observability partitions per seed: the time-series opens a new
    // run (its window clock rebases to zero) and the flight ring is cleared,
    // so per-seed stories never mix. Exported flight artifacts therefore
    // hold the final seed's records.
    scmp::obs::timeseries().begin_run();
    scmp::obs::flight().clear();
    ChurnConfig cfg = opt.cfg;
    cfg.event_seed = seed;
    const ChurnModelChecker checker(cfg);
    const std::vector<scmp::verify::ChurnEvent> events = checker.generate();
    const CheckOutcome outcome = checker.replay(events);
    const std::string label = "seed " + std::to_string(seed);
    print_outcome(label.c_str(), outcome);
    print_convergence(outcome);
    print_flight_summary();
    if (outcome.ok) continue;
    ++failures;

    TraceArtifact trace;
    trace.config = cfg;
    trace.events = opt.shrink ? checker.shrink(events) : events;
    trace.violations = checker.replay(trace.events).violations;
    std::filesystem::create_directories(opt.dump_dir);
    const std::string path =
        opt.dump_dir + "/churn_trace_seed" + std::to_string(seed) + ".txt";
    scmp::verify::write_trace(path, trace);
    std::printf("  minimized to %zu event(s); trace written to %s\n",
                trace.events.size(), path.c_str());
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  scmp::obs::ObsSession obs(argc, argv);
  const Options opt = parse_args(argc, argv);
  if (!opt.parse_ok) return 2;
  if (!opt.replay_path.empty()) return replay_mode(opt);
  return check_mode(opt);
}
