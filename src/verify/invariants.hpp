// The invariant catalog: pure checks over state snapshots, one function per
// invariant class. Each violation names the invariant id (stable,
// machine-readable — the coverage manifest and the lint verify-hygiene rule
// key on these) plus a human-readable detail line.
//
// The catalog (ISSUE: the five classes the auditor must cover):
//   tree-well-formed     the m-router's authoritative tree is acyclic,
//                        connected, rooted at the anchoring m-router and
//                        spans exactly the current members (every member on
//                        the tree, every leaf a member, the three membership
//                        views — tree, database, IGMP — agree).
//   forwarding-symmetry  the installed i-router state forms a bidirectional
//                        tree: every downstream edge has its reverse
//                        upstream edge and vice versa (the shared tree
//                        forwards data both ways, so a missing reverse edge
//                        silently drops traffic from part of the group).
//   delay-bound          every member's current multicast delay respects the
//                        DCDM delay bound it was admitted under.
//   no-orphan-state      no i-router holds an installed entry off the
//                        current authoritative tree (stale state after
//                        PRUNE/CLEAR/restructure), and none at all for an
//                        ended session.
//   fabric-validity      the m-router's sandwich fabric is sane: PN and DN
//                        realise true permutations, the CCN merges only
//                        lines of one group per component, and the DN never
//                        connects ports of different groups.
//   protocol-self-check  whatever MulticastProtocol::audit_state of the
//                        audited protocol reports (CBT / PIM-SM hard-state
//                        symmetry; empty by default).
//   path-db-consistent   the m-router's incrementally-maintained dual-weight
//                        path database (AllPairsPaths::apply_link_event)
//                        matches a from-scratch rebuild on the current
//                        topology bit-for-bit: dist, companion weight, hop
//                        count and canonical parent, per source and metric.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "graph/paths.hpp"
#include "verify/snapshot.hpp"

namespace scmp::fabric {
class MRouterFabric;
}  // namespace scmp::fabric

namespace scmp::verify {

struct Violation {
  std::string invariant;  ///< one of kInvariantIds
  std::string detail;     ///< human-readable: group, router, what broke
};

inline constexpr const char* kTreeWellFormed = "tree-well-formed";
inline constexpr const char* kForwardingSymmetry = "forwarding-symmetry";
inline constexpr const char* kDelayBound = "delay-bound";
inline constexpr const char* kNoOrphanState = "no-orphan-state";
inline constexpr const char* kFabricValidity = "fabric-validity";
inline constexpr const char* kProtocolSelfCheck = "protocol-self-check";
inline constexpr const char* kPathDbConsistent = "path-db-consistent";

/// Every invariant id the auditor can emit, in catalog order. The coverage
/// manifest (coverage_manifest.json) and tools/lint.py's verify-hygiene rule
/// cross-check against this list.
inline constexpr const char* kInvariantIds[] = {
    kTreeWellFormed,  kForwardingSymmetry, kDelayBound,    kNoOrphanState,
    kFabricValidity,  kProtocolSelfCheck,  kPathDbConsistent,
};

/// Invariant 1: authoritative-tree well-formedness (see file header).
void check_tree_well_formed(const GroupSnapshot& s, const graph::Graph& g,
                            std::vector<Violation>& out);

/// Invariant 2: bidirectional symmetry of the installed forwarding state.
void check_forwarding_symmetry(const GroupSnapshot& s,
                               std::vector<Violation>& out);

/// Invariant 3: every member's delay within its admitted DCDM bound.
void check_delay_bound(const GroupSnapshot& s, std::vector<Violation>& out);

/// Invariant 4: no installed entry off the authoritative tree.
void check_no_orphan_state(const GroupSnapshot& s,
                           std::vector<Violation>& out);

/// Runs invariants 1-4 over one group snapshot.
void check_group(const GroupSnapshot& s, const graph::Graph& g,
                 std::vector<Violation>& out);

/// Pure-data view of a configured sandwich fabric, so the fabric invariant
/// is snapshot-mutant-testable like the protocol ones.
struct FabricView {
  int ports = 0;
  std::vector<int> pn_map;         ///< input port -> PN line
  std::vector<int> line_leader;    ///< line -> CCN component leader line
  std::vector<int> dn_map;         ///< line -> DN output port
  std::vector<int> input_group;    ///< input port -> group (-1 = idle)
  std::map<int, int> group_output; ///< group -> assigned output port
  bool ccn_isolated = true;        ///< CCN's own isolation self-check
};

/// Extracts the view of the fabric's current configuration.
FabricView view_of(const fabric::MRouterFabric& fabric);

/// Invariant 5: fabric validity (PN/DN permutations, CCN conflict-free,
/// no cross-group connection through the DN).
void check_fabric(const FabricView& v, std::vector<Violation>& out);

/// Invariant 7: the (possibly incrementally-maintained) path database `db`
/// is bit-identical to a from-scratch AllPairsPaths built on `g` — every
/// source's dist/companion/hops/parent under both metrics. O(n * Dijkstra):
/// an oracle check, meant for audit strides, not hot paths.
void check_path_db(const graph::AllPairsPaths& db, const graph::Graph& g,
                   std::vector<Violation>& out);

/// One line per violation: "<invariant>: <detail>".
std::string format(const std::vector<Violation>& violations);

}  // namespace scmp::verify
