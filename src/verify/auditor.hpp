// The invariant auditor: attaches to any MulticastProtocol instance (plus,
// optionally, an m-router switching fabric) and re-validates the full
// invariant catalog on demand — the churn model-checker calls audit() after
// every simulation event. For an Scmp instance the auditor snapshots the
// distributed state and runs the catalog of invariants.hpp; for every
// protocol it also collects the protocol's own audit_state() self-check.
//
// Audits are only meaningful at a quiescent instant (event queue drained):
// with control packets in flight the distributed state is legitimately
// mid-transition.
#pragma once

#include <cstdint>
#include <vector>

#include "verify/invariants.hpp"

namespace scmp::verify {

class InvariantAuditor {
 public:
  /// Attaches to `protocol` (must outlive the auditor). When `fabric` is
  /// given, its configuration is audited too (invariant class 5).
  explicit InvariantAuditor(const proto::MulticastProtocol& protocol,
                            const fabric::MRouterFabric* fabric = nullptr);

  /// Runs every applicable invariant once; returns all violations found.
  std::vector<Violation> audit() const;

  /// audit() that dies with the formatted violations on any finding — the
  /// assert-style entry point tests and the model-checker use.
  void audit_or_die() const;

  /// Total audit() calls so far (model-checker statistics).
  std::uint64_t audits_run() const { return audits_; }

 private:
  const proto::MulticastProtocol* protocol_;
  const fabric::MRouterFabric* fabric_;
  mutable std::uint64_t audits_ = 0;
};

}  // namespace scmp::verify
