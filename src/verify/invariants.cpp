#include "verify/invariants.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "fabric/mrouter_fabric.hpp"
#include "util/contracts.hpp"

namespace scmp::verify {

namespace {

/// Slack for floating-point delay comparisons: tree delays are sums of a few
/// dozen doubles, so anything past 1e-9 relative is a real violation.
constexpr double kDelayEps = 1e-6;

std::string node_str(graph::NodeId v) {
  return v == graph::kInvalidNode ? std::string("<invalid>")
                                  : std::to_string(v);
}

void note(std::vector<Violation>& out, const char* invariant, GroupId group,
          const std::string& what) {
  out.push_back({invariant, "g" + std::to_string(group) + ": " + what});
}

std::string set_str(const std::set<graph::NodeId>& s) {
  std::string r = "{";
  for (graph::NodeId v : s) {
    if (r.size() > 1) r += ",";
    r += std::to_string(v);
  }
  return r + "}";
}

}  // namespace

void check_tree_well_formed(const GroupSnapshot& s, const graph::Graph& g,
                            std::vector<Violation>& out) {
  if (!s.session_active) return;  // ended sessions have no tree to check
  auto bad = [&](const std::string& what) {
    note(out, kTreeWellFormed, s.group, what);
  };

  if (!s.parent.contains(s.root)) {
    bad("root " + node_str(s.root) + " is not on its own tree");
    return;  // everything below keys off the root
  }
  if (s.parent.at(s.root) != graph::kInvalidNode)
    bad("root " + node_str(s.root) + " has a parent " +
        node_str(s.parent.at(s.root)));

  // Parent closure + real edges + acyclicity: every node's parent chain must
  // reach the root within |tree| hops over existing links.
  const int limit = static_cast<int>(s.parent.size());
  std::set<graph::NodeId> non_leaf;
  for (const auto& [v, p] : s.parent) {
    if (v == s.root) continue;
    if (p == graph::kInvalidNode) {
      bad("non-root node " + node_str(v) + " has no parent");
      continue;
    }
    non_leaf.insert(p);
    if (!s.parent.contains(p)) {
      bad("parent " + node_str(p) + " of " + node_str(v) +
          " is not on the tree (disconnected)");
      continue;
    }
    if (!g.has_edge(v, p))
      bad("tree edge " + node_str(v) + "-" + node_str(p) +
          " does not exist in the topology");
    graph::NodeId walk = v;
    int hops = 0;
    while (walk != s.root && hops <= limit) {
      const auto it = s.parent.find(walk);
      if (it == s.parent.end()) break;  // reported above as disconnected
      walk = it->second;
      ++hops;
    }
    if (hops > limit)
      bad("parent chain from " + node_str(v) + " cycles (never reaches root)");
  }

  // Spanning exactly the current members: the three membership views agree,
  // every member is on the tree, and every leaf is a member (no dangling
  // relay branch survives a prune).
  if (s.tree_members != s.igmp_members)
    bad("tree members " + set_str(s.tree_members) + " != IGMP members " +
        set_str(s.igmp_members));
  if (s.db_members != s.igmp_members)
    bad("database members " + set_str(s.db_members) + " != IGMP members " +
        set_str(s.igmp_members));
  for (graph::NodeId m : s.tree_members) {
    if (!s.parent.contains(m))
      bad("member " + node_str(m) + " is not on the tree");
  }
  for (const auto& [v, p] : s.parent) {
    (void)p;
    if (v != s.root && !non_leaf.contains(v) && !s.tree_members.contains(v))
      bad("leaf " + node_str(v) + " is neither a member nor the root");
  }
}

void check_forwarding_symmetry(const GroupSnapshot& s,
                               std::vector<Violation>& out) {
  auto bad = [&](const std::string& what) {
    note(out, kForwardingSymmetry, s.group, what);
  };
  std::map<graph::NodeId, const EntrySnapshot*> by_router;
  for (const EntrySnapshot& e : s.entries) by_router[e.router] = &e;

  // Completeness against the authoritative tree: a bidirectional shared tree
  // only forwards both ways if *every* on-tree i-router holds its entry and
  // points upstream at its tree parent (a lost BRANCH leaves a hole that
  // silently unplugs the whole subtree).
  if (s.session_active) {
    for (const auto& [v, p] : s.parent) {
      if (v == s.root) continue;
      const auto it = by_router.find(v);
      if (it == by_router.end()) {
        bad("on-tree router " + node_str(v) + " holds no installed entry");
      } else if (it->second->upstream != p) {
        bad("entry at " + node_str(v) + " points upstream at " +
            node_str(it->second->upstream) + " but its tree parent is " +
            node_str(p));
      }
    }
  }

  for (const EntrySnapshot& e : s.entries) {
    // Downstream edge -> the child's entry must point back up at us.
    for (graph::NodeId d : e.downstream_routers) {
      const auto it = by_router.find(d);
      if (it == by_router.end()) {
        bad("entry at " + node_str(e.router) + " lists downstream " +
            node_str(d) + " which holds no entry");
      } else if (it->second->upstream != e.router) {
        bad("downstream " + node_str(d) + " of " + node_str(e.router) +
            " points upstream at " + node_str(it->second->upstream) +
            " instead");
      }
    }
    // Upstream edge -> the parent lists us as downstream. The anchoring
    // m-router holds no entry (its child set is the authoritative tree's and
    // the completeness check above ties entries to tree parents), so only
    // non-root upstreams need the reverse edge.
    if (e.upstream == graph::kInvalidNode) {
      bad("entry at " + node_str(e.router) + " has no upstream");
    } else if (e.upstream != s.root) {
      const auto it = by_router.find(e.upstream);
      if (it == by_router.end()) {
        bad("upstream " + node_str(e.upstream) + " of " + node_str(e.router) +
            " holds no entry");
      } else if (!it->second->downstream_routers.contains(e.router)) {
        bad("upstream " + node_str(e.upstream) + " does not list " +
            node_str(e.router) + " as downstream (missing reverse edge)");
      }
    }
  }
}

void check_delay_bound(const GroupSnapshot& s, std::vector<Violation>& out) {
  for (const auto& [m, delay] : s.member_delay) {
    const auto it = s.admitted_bound.find(m);
    if (it == s.admitted_bound.end()) {
      note(out, kDelayBound, s.group,
           "member " + node_str(m) + " has no recorded admitted bound");
      continue;
    }
    if (std::isnan(it->second)) {
      note(out, kDelayBound, s.group,
           "member " + node_str(m) + " has a NaN admitted bound");
      continue;
    }
    if (delay > it->second * (1.0 + kDelayEps) + kDelayEps)
      note(out, kDelayBound, s.group,
           "member " + node_str(m) + " delay " + std::to_string(delay) +
               " exceeds its admitted bound " + std::to_string(it->second));
  }
}

void check_no_orphan_state(const GroupSnapshot& s,
                           std::vector<Violation>& out) {
  for (const EntrySnapshot& e : s.entries) {
    if (!s.session_active) {
      note(out, kNoOrphanState, s.group,
           "router " + node_str(e.router) +
               " still holds an entry for an ended session");
      continue;
    }
    if (!s.parent.contains(e.router))
      note(out, kNoOrphanState, s.group,
           "router " + node_str(e.router) +
               " holds an entry but is off the authoritative tree");
  }
}

void check_group(const GroupSnapshot& s, const graph::Graph& g,
                 std::vector<Violation>& out) {
  SCMP_EXPECTS(s.group >= 0);
  check_tree_well_formed(s, g, out);
  check_forwarding_symmetry(s, out);
  check_delay_bound(s, out);
  check_no_orphan_state(s, out);
}

FabricView view_of(const fabric::MRouterFabric& fabric) {
  FabricView v;
  v.ports = fabric.ports();
  v.pn_map.resize(static_cast<std::size_t>(v.ports));
  v.line_leader.resize(static_cast<std::size_t>(v.ports));
  v.dn_map.resize(static_cast<std::size_t>(v.ports));
  v.input_group.resize(static_cast<std::size_t>(v.ports));
  for (int p = 0; p < v.ports; ++p) {
    v.pn_map[static_cast<std::size_t>(p)] = fabric.pn().forward(p);
    v.line_leader[static_cast<std::size_t>(p)] = fabric.ccn().leader_of(p);
    v.dn_map[static_cast<std::size_t>(p)] = fabric.dn().forward(p);
    v.input_group[static_cast<std::size_t>(p)] = fabric.group_of_input(p);
  }
  for (int group : fabric.configured_groups())
    v.group_output[group] = fabric.output_port(group);
  v.ccn_isolated = fabric.ccn().verify_isolation();
  return v;
}

void check_fabric(const FabricView& v, std::vector<Violation>& out) {
  SCMP_EXPECTS(v.ports >= 2);
  auto bad = [&](const std::string& what) {
    out.push_back({kFabricValidity, what});
  };

  // PN and DN must realise true permutations of the ports.
  auto check_perm = [&](const std::vector<int>& map, const char* stage) {
    std::vector<int> seen(static_cast<std::size_t>(v.ports), 0);
    for (int x : map) {
      if (x < 0 || x >= v.ports) {
        bad(std::string(stage) + " maps outside [0, ports)");
        return;
      }
      ++seen[static_cast<std::size_t>(x)];
    }
    for (int p = 0; p < v.ports; ++p) {
      if (seen[static_cast<std::size_t>(p)] != 1) {
        bad(std::string(stage) + " is not a permutation (output " +
            std::to_string(p) + " hit " +
            std::to_string(seen[static_cast<std::size_t>(p)]) + " times)");
        return;
      }
    }
  };
  check_perm(v.pn_map, "PN");
  check_perm(v.dn_map, "DN");

  if (!v.ccn_isolated) bad("CCN isolation self-check failed");

  // CCN conflict freedom: a merge component never spans two groups, and an
  // idle input's line is never merged into a group's component.
  std::map<int, int> leader_group;  // leader line -> group that owns it
  for (int p = 0; p < v.ports; ++p) {
    const int group = v.input_group[static_cast<std::size_t>(p)];
    const int line = v.pn_map[static_cast<std::size_t>(p)];
    if (line < 0 || line >= v.ports) continue;  // reported by check_perm
    const int leader = v.line_leader[static_cast<std::size_t>(line)];
    if (group < 0) {
      if (leader != line)
        bad("idle input " + std::to_string(p) + "'s line " +
            std::to_string(line) + " is merged into component " +
            std::to_string(leader));
      continue;
    }
    const auto [it, inserted] = leader_group.emplace(leader, group);
    if (!inserted && it->second != group)
      bad("CCN component " + std::to_string(leader) + " merges groups " +
          std::to_string(it->second) + " and " + std::to_string(group));
  }

  // Output-port assignment: distinct per group.
  std::map<int, int> port_owner;  // output port -> group
  for (const auto& [group, port] : v.group_output) {
    if (port < 0 || port >= v.ports) {
      bad("group " + std::to_string(group) + " assigned invalid output port " +
          std::to_string(port));
      continue;
    }
    const auto [it, inserted] = port_owner.emplace(port, group);
    if (!inserted)
      bad("groups " + std::to_string(it->second) + " and " +
          std::to_string(group) + " share output port " +
          std::to_string(port));
  }

  // DN never connects ports of different groups: every configured input's
  // cell lands exactly on its group's output port; idle inputs never land on
  // any group's port.
  for (int p = 0; p < v.ports; ++p) {
    const int group = v.input_group[static_cast<std::size_t>(p)];
    const int line = v.pn_map[static_cast<std::size_t>(p)];
    if (line < 0 || line >= v.ports) continue;
    const int leader = v.line_leader[static_cast<std::size_t>(line)];
    if (leader < 0 || leader >= v.ports) {
      bad("CCN leader of line " + std::to_string(line) + " out of range");
      continue;
    }
    const int outp = v.dn_map[static_cast<std::size_t>(leader)];
    if (group >= 0) {
      const auto it = v.group_output.find(group);
      if (it == v.group_output.end()) {
        bad("input " + std::to_string(p) + " belongs to group " +
            std::to_string(group) + " which has no output port");
      } else if (outp != it->second) {
        bad("input " + std::to_string(p) + " of group " +
            std::to_string(group) + " reaches port " + std::to_string(outp) +
            " instead of the group's port " + std::to_string(it->second));
      }
    } else if (port_owner.contains(outp)) {
      bad("idle input " + std::to_string(p) + " reaches group " +
          std::to_string(port_owner.at(outp)) + "'s output port " +
          std::to_string(outp));
    }
  }
}

void check_path_db(const graph::AllPairsPaths& db, const graph::Graph& g,
                   std::vector<Violation>& out) {
  if (db.num_nodes() != g.num_nodes()) {
    out.push_back({kPathDbConsistent,
                   "database covers " + std::to_string(db.num_nodes()) +
                       " nodes, topology has " +
                       std::to_string(g.num_nodes())});
    return;
  }
  const graph::AllPairsPaths oracle(g);
  auto compare_run = [&](const graph::ShortestPaths& got,
                         const graph::ShortestPaths& want, const char* which,
                         graph::NodeId src) {
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      const auto idx = static_cast<std::size_t>(v);
      // Exact == on doubles is intentional: the audited claim is bit-identity
      // of the incremental update, not numerical closeness (inf == inf holds
      // for unreachable nodes, and no field is ever NaN).
      if (got.dist[idx] == want.dist[idx] &&
          got.companion[idx] == want.companion[idx] &&
          got.hops[idx] == want.hops[idx] &&
          got.parent[idx] == want.parent[idx])
        continue;
      out.push_back({kPathDbConsistent,
                     std::string(which) + " run from " + node_str(src) +
                         " diverges from a from-scratch rebuild at node " +
                         node_str(v)});
      return;  // one violation per run keeps the report readable
    }
  };
  for (graph::NodeId s = 0; s < g.num_nodes(); ++s) {
    compare_run(db.sl_from(s), oracle.sl_from(s), "P_sl", s);
    compare_run(db.lc_from(s), oracle.lc_from(s), "P_lc", s);
  }
}

std::string format(const std::vector<Violation>& violations) {
  std::string r;
  for (const Violation& v : violations) {
    r += v.invariant;
    r += ": ";
    r += v.detail;
    r += "\n";
  }
  return r;
}

}  // namespace scmp::verify
