#include "verify/auditor.hpp"

#include <string>

#include "core/scmp.hpp"
#include "fabric/mrouter_fabric.hpp"
#include "util/contracts.hpp"
#include "util/log.hpp"

namespace scmp::verify {

InvariantAuditor::InvariantAuditor(const proto::MulticastProtocol& protocol,
                                   const fabric::MRouterFabric* fabric)
    : protocol_(&protocol), fabric_(fabric) {}

std::vector<Violation> InvariantAuditor::audit() const {
  ++audits_;
  std::vector<Violation> out;

  if (const auto* scmp = dynamic_cast<const core::Scmp*>(protocol_)) {
    const ScmpSnapshot snap = take_snapshot(*scmp);
    for (const GroupSnapshot& group : snap.groups)
      check_group(group, scmp->net().graph(), out);
    // Oracle check: the incrementally-maintained path database must match a
    // from-scratch rebuild bit-for-bit (catches a wrong dirty-source test in
    // apply_link_event the moment churn exercises it).
    check_path_db(scmp->paths(), scmp->net().graph(), out);
  }

  std::vector<std::string> self_check;
  protocol_->audit_state(self_check);
  for (std::string& line : self_check)
    out.push_back({kProtocolSelfCheck, std::move(line)});

  if (fabric_ != nullptr) check_fabric(view_of(*fabric_), out);
  return out;
}

void InvariantAuditor::audit_or_die() const {
  const std::vector<Violation> violations = audit();
  if (violations.empty()) return;
  // log_line prints unconditionally (the level filter lives in the
  // log_error/log_info templates): the diagnostic must reach stderr before
  // the contract abort regardless of the configured level.
  log_line(LogLevel::kError, "invariant audit failed:\n" + format(violations));
  SCMP_ASSERT(false && "invariant audit failed (violations logged above)");
}

}  // namespace scmp::verify
