// Trace artifact grammar (line-oriented, '#' starts a comment line):
//
//   scmp-churn-trace v1
//   topo <arpanet|waxman|transit-stub>
//   topo-seed <u64>
//   waxman-nodes <int>
//   waxman-degree <double>
//   groups <int>
//   event-seed <u64>
//   max-link-failures <int>
//   audit-stride <int>
//   fault <packet-type> <every-nth>        (absent when no fault injected)
//   loss <rate> <seed>                     (absent when control loss is off)
//   epoch <interval>                       (absent when batching is off)
//   events <count>
//   join g<group> n<node>                  (one line per event, in order)
//   leave g<group> n<node>
//   send g<group> n<node>
//   linkfail n<u> n<v>
//   violation <invariant>: <detail>        (zero or more, what it reproduces)
#include "verify/churn.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstddef>
#include <fstream>
#include <limits>
#include <memory>
#include <set>
#include <sstream>
#include <string>

#include "core/scmp.hpp"
#include "obs/span.hpp"
#include "obs/timeseries.hpp"
#include "igmp/igmp.hpp"
#include "sim/event_queue.hpp"
#include "sim/network.hpp"
#include "topo/arpanet.hpp"
#include "topo/transit_stub.hpp"
#include "topo/waxman.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace scmp::verify {

namespace {

topo::Topology build_topology(const ChurnConfig& cfg) {
  Rng rng(cfg.topo_seed);
  if (cfg.topo == ChurnTopo::kArpanet) return topo::arpanet(rng);
  if (cfg.topo == ChurnTopo::kTransitStub) {
    // Churn-sized hierarchical topology: 2 transit domains of 3 routers,
    // 2 stub domains of 4 routers per transit node — 54 nodes, the same
    // order as the Waxman runs but with the GT-ITM backbone/stub shape.
    topo::TransitStubConfig tcfg;
    tcfg.transit_domains = 2;
    tcfg.transit_nodes = 3;
    tcfg.stub_domains_per_node = 2;
    tcfg.stub_nodes = 4;
    return topo::transit_stub(tcfg, rng);
  }
  return topo::waxman_with_degree(cfg.waxman_nodes, cfg.waxman_degree, rng);
}

/// One disposable simulation world; replay() builds a fresh one per call so
/// subsequence replays share nothing.
/// SCMP control-plane types subject to the probabilistic loss model. The
/// ACKs are included: a reliability layer that only works when its own
/// acknowledgements arrive would be no reliability layer at all.
bool lossy_control_type(sim::PacketType t) {
  switch (t) {
    case sim::PacketType::kJoin:
    case sim::PacketType::kLeave:
    case sim::PacketType::kTree:
    case sim::PacketType::kBranch:
    case sim::PacketType::kPrune:
    case sim::PacketType::kClear:
    case sim::PacketType::kAck:
      return true;
    default:
      return false;
  }
}

struct World {
  explicit World(const ChurnConfig& cfg)
      : topo(build_topology(cfg)), loss_rng(cfg.loss_seed) {
    net = std::make_unique<sim::Network>(topo.graph, queue);
    igmp = std::make_unique<igmp::IgmpDomain>(queue, topo.graph.num_nodes());
    core::Scmp::Config scfg;
    scfg.mrouter = 0;
    SCMP_EXPECTS(cfg.control_loss_rate >= 0.0 && cfg.control_loss_rate < 1.0);
    SCMP_EXPECTS(cfg.epoch_interval >= 0.0);
    scfg.epoch_interval = cfg.epoch_interval;
    const double loss = cfg.control_loss_rate;
    if (loss > 0.0) scfg.reliability.enabled = true;
    scmp = std::make_unique<core::Scmp>(*net, *igmp, scfg);
    if (cfg.track_convergence) scmp->enable_convergence_tracking();
    if (cfg.fault.has_value() || loss > 0.0) {
      const std::optional<FaultSpec> fault = cfg.fault;
      if (fault.has_value()) SCMP_EXPECTS(fault->every_nth >= 1);
      net->set_drop_filter([this, fault, loss](graph::NodeId, graph::NodeId,
                                               const sim::Packet& pkt) {
        if (fault.has_value() && pkt.type == fault->drop &&
            ++fault_seen % fault->every_nth == 0)
          return true;
        // Seeded coin per matching egress attempt: deterministic for a
        // given event sequence, independent across retransmissions.
        return loss > 0.0 && lossy_control_type(pkt.type) &&
               loss_rng.chance(loss);
      });
    }
  }

  topo::Topology topo;
  Rng loss_rng;
  sim::EventQueue queue;
  std::unique_ptr<sim::Network> net;
  std::unique_ptr<igmp::IgmpDomain> igmp;
  std::unique_ptr<core::Scmp> scmp;
  int fault_seen = 0;
};

/// Applies one event; returns false when the event is inapplicable and was
/// skipped (deterministically, from current world state only).
bool apply(World& w, const ChurnEvent& ev) {
  switch (ev.type) {
    case ChurnEventType::kJoin:
      w.scmp->host_join(ev.node, ev.group);
      return true;
    case ChurnEventType::kLeave:
      w.scmp->host_leave(ev.node, ev.group);
      return true;
    case ChurnEventType::kSend:
      w.scmp->send_data(ev.node, ev.group);
      return true;
    case ChurnEventType::kLinkFail: {
      // fail_link requires the edge to exist and the residual topology to
      // stay connected (the unicast substrate needs reachability) — guard
      // both so any subsequence stays executable.
      if (!w.net->graph().has_edge(ev.node, ev.node2)) return false;
      graph::Graph probe = w.net->graph();
      probe.remove_edge(ev.node, ev.node2);
      if (!probe.is_connected()) return false;
      w.net->fail_link(ev.node, ev.node2);
      // Incremental path: only dirty Dijkstra sources re-run. The auditor's
      // path-db-consistent invariant holds this against a from-scratch
      // AllPairsPaths at every audit stride.
      w.scmp->handle_link_event(ev.node, ev.node2);
      return true;
    }
  }
  SCMP_ASSERT(false && "unreachable churn event type");
  return false;
}

}  // namespace

const char* to_string(ChurnEventType t) {
  switch (t) {
    case ChurnEventType::kJoin: return "join";
    case ChurnEventType::kLeave: return "leave";
    case ChurnEventType::kSend: return "send";
    case ChurnEventType::kLinkFail: return "linkfail";
  }
  return "?";
}

ChurnModelChecker::ChurnModelChecker(ChurnConfig cfg) : cfg_(cfg) {
  SCMP_EXPECTS(cfg_.num_groups >= 1);
  SCMP_EXPECTS(cfg_.num_events >= 1);
  SCMP_EXPECTS(cfg_.audit_stride >= 1);
  SCMP_EXPECTS(cfg_.max_link_failures >= 0);
}

std::vector<ChurnEvent> ChurnModelChecker::generate() const {
  const topo::Topology topo = build_topology(cfg_);
  const int n = topo.graph.num_nodes();
  Rng rng(cfg_.event_seed);
  std::vector<ChurnEvent> events;
  events.reserve(static_cast<std::size_t>(cfg_.num_events));
  int link_failures = 0;

  auto random_group = [&] {
    return static_cast<GroupId>(rng.uniform_int(0, cfg_.num_groups - 1));
  };
  auto random_router = [&] {
    // Any router but the m-router (node 0): membership churn at the anchor
    // itself is exercised by the dedicated tests, not the random walk.
    return static_cast<graph::NodeId>(rng.uniform_int(1, n - 1));
  };

  for (int i = 0; i < cfg_.num_events; ++i) {
    const double r = rng.uniform01();
    ChurnEvent ev;
    if (r < 0.45) {
      ev = {ChurnEventType::kJoin, random_group(), random_router(),
            graph::kInvalidNode};
    } else if (r < 0.75) {
      ev = {ChurnEventType::kLeave, random_group(), random_router(),
            graph::kInvalidNode};
    } else if (r < 0.92 || link_failures >= cfg_.max_link_failures) {
      ev = {ChurnEventType::kSend, random_group(), random_router(),
            graph::kInvalidNode};
    } else {
      // A random edge of the *initial* topology; replay guards keep the
      // event a no-op when it is no longer applicable.
      const auto u = static_cast<graph::NodeId>(rng.uniform_int(0, n - 1));
      const auto& nbs = topo.graph.neighbors(u);
      SCMP_ASSERT(!nbs.empty());  // generated topologies are connected
      const auto pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(nbs.size()) - 1));
      ev = {ChurnEventType::kLinkFail, -1, u, nbs[pick].to};
      ++link_failures;
    }
    events.push_back(ev);
  }
  return events;
}

CheckOutcome ChurnModelChecker::replay(
    const std::vector<ChurnEvent>& events) const {
  World w(cfg_);
  // Epoch-equivalence differential check: a batched run (epoch_interval > 0)
  // drags a sequential shadow world (identical config, interval 0) through
  // the same event sequence. At every audit point — both worlds drained and
  // reconciled to their fixpoints — batched and sequential must agree on the
  // service database's membership and on each tree's member set, and the
  // shadow must pass the full invariant catalog itself. The *internal* tree
  // shapes may legitimately differ: per-request processing grafts members in
  // arrival order onto a tree carrying relay residue of past members, while
  // the epoch close recomputes canonically from the final membership.
  std::unique_ptr<World> shadow;
  std::unique_ptr<InvariantAuditor> shadow_auditor;
  if (cfg_.epoch_interval > 0.0) {
    ChurnConfig seq = cfg_;
    seq.epoch_interval = 0.0;
    seq.track_convergence = false;
    shadow = std::make_unique<World>(seq);
    shadow_auditor = std::make_unique<InvariantAuditor>(*shadow->scmp);
  }
  const InvariantAuditor auditor(*w.scmp);
  CheckOutcome outcome;

  // Under the lossy-link model the protocol is *entitled* to diverge between
  // reconciliation cycles — that is the soft-state design. Audits therefore
  // model the quiescent instant after a reconciliation pass converged: run
  // passes (draining after each, since repair packets can be lost too) until
  // one finds nothing to repair. The pass budget only bounds pathological
  // luck; a genuinely broken protocol never reaches the fixpoint and the
  // audit below reports exactly what stayed divergent.
  auto reconcile_to_fixpoint = [&](World& world) {
    if (cfg_.control_loss_rate <= 0.0) return;
    constexpr int kMaxPasses = 64;
    for (int pass = 0; pass < kMaxPasses; ++pass) {
      const int repairs = world.scmp->reconcile_all();
      world.queue.run_all();
      if (repairs == 0) return;
    }
  };

  // The equivalence contract both worlds must satisfy at a fixpoint.
  auto equivalence_violations = [&]() {
    std::vector<Violation> found;
    if (shadow == nullptr) return found;
    std::set<GroupId> groups;
    for (GroupId g : w.scmp->active_groups()) groups.insert(g);
    for (GroupId g : shadow->scmp->active_groups()) groups.insert(g);
    for (GroupId g : groups) {
      if (w.scmp->database().members_of(g) !=
          shadow->scmp->database().members_of(g)) {
        found.push_back(
            {"epoch-equivalence",
             "group " + std::to_string(g) +
                 ": database membership diverged between the batched and "
                 "sequential worlds"});
      }
      const core::DcdmTree* bt = w.scmp->group_tree(g);
      const core::DcdmTree* st = shadow->scmp->group_tree(g);
      const std::vector<graph::NodeId> bm =
          bt == nullptr ? std::vector<graph::NodeId>{} : bt->tree().members();
      const std::vector<graph::NodeId> sm =
          st == nullptr ? std::vector<graph::NodeId>{} : st->tree().members();
      if (bm != sm) {
        found.push_back(
            {"epoch-equivalence",
             "group " + std::to_string(g) +
                 ": tree member sets diverged between the batched and "
                 "sequential worlds"});
      }
    }
    for (Violation v : shadow_auditor->audit()) {
      v.detail = "[sequential shadow] " + v.detail;
      found.push_back(std::move(v));
    }
    return found;
  };

  auto audit_at = [&](int index) {
    OBS_SPAN("verify.audit");
    // determinism: allow(wall-clock measurement of audit cost, reported in
    // audit_seconds only; no protocol decision or trace output reads it)
    const auto t0 = std::chrono::steady_clock::now();
    outcome.violations = auditor.audit();
    for (Violation& v : equivalence_violations())
      outcome.violations.push_back(std::move(v));
    outcome.audit_seconds +=
        // determinism: allow(wall-clock measurement of audit cost, reported
        // in audit_seconds only; no protocol decision or trace output reads
        // it)
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    ++outcome.audits;
    if (outcome.violations.empty()) return true;
    outcome.ok = false;
    outcome.failing_index = index;
    return false;
  };

  // Snapshot convergence stats before the world (and its tracker) dies; a
  // final timeseries sample flushes every window boundary the run crossed.
  auto finalize = [&] {
    obs::timeseries().maybe_sample(w.queue.now());
    if (const proto::ConvergenceTracker* t = w.scmp->convergence_tracker())
      outcome.convergence = t->stats();
  };

  for (std::size_t i = 0; i < events.size(); ++i) {
    if (apply(w, events[i])) ++outcome.executed;
    w.queue.run_all();  // drain to quiescence: audits are only valid here
    if (shadow != nullptr) {
      // The shadow's applicability guards agree with the main world's (both
      // graphs evolve identically from the same topo seed), so the executed
      // sequences match.
      apply(*shadow, events[i]);
      shadow->queue.run_all();
    }
    obs::timeseries().maybe_sample(w.queue.now());
    const bool stride_hit =
        (i + 1) % static_cast<std::size_t>(cfg_.audit_stride) == 0;
    if (stride_hit || i + 1 == events.size()) {
      reconcile_to_fixpoint(w);
      if (shadow != nullptr) reconcile_to_fixpoint(*shadow);
      if (!audit_at(static_cast<int>(i))) {
        finalize();
        return outcome;
      }
    }
  }
  if (events.empty()) audit_at(-1);
  finalize();
  return outcome;
}

CheckOutcome ChurnModelChecker::run() const { return replay(generate()); }

std::vector<ChurnEvent> ChurnModelChecker::shrink(
    const std::vector<ChurnEvent>& failing) const {
  SCMP_EXPECTS(!replay(failing).ok);
  std::vector<ChurnEvent> events = failing;

  // Classic ddmin. Subsets/complements are contiguous chunk selections; the
  // loop ends at 1-minimality (complement tests at max granularity are
  // exactly single-event removals).
  std::size_t granularity = 2;
  while (events.size() >= 2) {
    const std::size_t chunk =
        (events.size() + granularity - 1) / granularity;
    bool reduced = false;
    for (std::size_t start = 0; start < events.size(); start += chunk) {
      const std::size_t end = std::min(start + chunk, events.size());
      // Complement: everything but [start, end).
      std::vector<ChurnEvent> complement;
      complement.reserve(events.size() - (end - start));
      complement.insert(complement.end(), events.begin(),
                        events.begin() + static_cast<std::ptrdiff_t>(start));
      complement.insert(complement.end(),
                        events.begin() + static_cast<std::ptrdiff_t>(end),
                        events.end());
      if (!complement.empty() && !replay(complement).ok) {
        events = std::move(complement);
        granularity = std::max<std::size_t>(granularity - 1, 2);
        reduced = true;
        break;
      }
      // Subset: just [start, end) — catches single-chunk reproducers fast.
      std::vector<ChurnEvent> subset(
          events.begin() + static_cast<std::ptrdiff_t>(start),
          events.begin() + static_cast<std::ptrdiff_t>(end));
      if (subset.size() < events.size() && !replay(subset).ok) {
        events = std::move(subset);
        granularity = 2;
        reduced = true;
        break;
      }
    }
    if (reduced) continue;
    if (granularity >= events.size()) break;
    granularity = std::min(events.size(), granularity * 2);
  }
  SCMP_ENSURES(!replay(events).ok);
  return events;
}

// ---- trace artifacts -------------------------------------------------------

namespace {

const char* fault_name(sim::PacketType t) { return sim::to_string(t); }

sim::PacketType fault_from_name(const std::string& name) {
  std::string upper = name;
  for (char& c : upper) c = static_cast<char>(std::toupper(c));
  // Only SCMP control and data types make useful fault targets.
  static constexpr sim::PacketType kTypes[] = {
      sim::PacketType::kJoin,  sim::PacketType::kLeave,
      sim::PacketType::kTree,  sim::PacketType::kBranch,
      sim::PacketType::kPrune, sim::PacketType::kClear,
      sim::PacketType::kAck,   sim::PacketType::kData,
      sim::PacketType::kDataEncap,
  };
  for (sim::PacketType t : kTypes) {
    if (upper == sim::to_string(t)) return t;
  }
  SCMP_EXPECTS(false && "unknown fault packet type in trace");
  return sim::PacketType::kPrune;
}

/// "g12" -> 12, "n7" -> 7 (with the expected prefix checked).
int tagged_int(const std::string& token, char tag) {
  SCMP_EXPECTS(!token.empty() && token[0] == tag);
  return std::stoi(token.substr(1));
}

}  // namespace

std::string serialize(const TraceArtifact& trace) {
  const ChurnConfig& cfg = trace.config;
  std::ostringstream out;
  out << "scmp-churn-trace v1\n";
  out << "topo "
      << (cfg.topo == ChurnTopo::kArpanet      ? "arpanet"
          : cfg.topo == ChurnTopo::kTransitStub ? "transit-stub"
                                                : "waxman")
      << "\n";
  out << "topo-seed " << cfg.topo_seed << "\n";
  out << "waxman-nodes " << cfg.waxman_nodes << "\n";
  out << "waxman-degree " << cfg.waxman_degree << "\n";
  out << "groups " << cfg.num_groups << "\n";
  out << "event-seed " << cfg.event_seed << "\n";
  out << "max-link-failures " << cfg.max_link_failures << "\n";
  out << "audit-stride " << cfg.audit_stride << "\n";
  if (cfg.fault.has_value())
    out << "fault " << fault_name(cfg.fault->drop) << " "
        << cfg.fault->every_nth << "\n";
  if (cfg.control_loss_rate > 0.0) {
    // max_digits10 so the replayed loss RNG sees the bit-exact rate.
    const auto old_precision =
        out.precision(std::numeric_limits<double>::max_digits10);
    out << "loss " << cfg.control_loss_rate << " " << cfg.loss_seed << "\n";
    out.precision(old_precision);
  }
  if (cfg.epoch_interval > 0.0) {
    // max_digits10 so the replayed epoch close lands at the bit-exact time.
    const auto old_precision =
        out.precision(std::numeric_limits<double>::max_digits10);
    out << "epoch " << cfg.epoch_interval << "\n";
    out.precision(old_precision);
  }
  out << "events " << trace.events.size() << "\n";
  for (const ChurnEvent& ev : trace.events) {
    out << to_string(ev.type);
    if (ev.type == ChurnEventType::kLinkFail)
      out << " n" << ev.node << " n" << ev.node2;
    else
      out << " g" << ev.group << " n" << ev.node;
    out << "\n";
  }
  for (const Violation& v : trace.violations)
    out << "violation " << v.invariant << ": " << v.detail << "\n";
  return out.str();
}

TraceArtifact deserialize(const std::string& text) {
  TraceArtifact trace;
  std::istringstream in(text);
  std::string line;
  SCMP_EXPECTS(std::getline(in, line) && line == "scmp-churn-trace v1");

  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "topo") {
      std::string name;
      ls >> name;
      SCMP_EXPECTS(name == "arpanet" || name == "waxman" ||
                   name == "transit-stub");
      trace.config.topo = name == "arpanet"      ? ChurnTopo::kArpanet
                          : name == "transit-stub" ? ChurnTopo::kTransitStub
                                                   : ChurnTopo::kWaxman;
    } else if (key == "topo-seed") {
      ls >> trace.config.topo_seed;
    } else if (key == "waxman-nodes") {
      ls >> trace.config.waxman_nodes;
    } else if (key == "waxman-degree") {
      ls >> trace.config.waxman_degree;
    } else if (key == "groups") {
      ls >> trace.config.num_groups;
    } else if (key == "event-seed") {
      ls >> trace.config.event_seed;
    } else if (key == "max-link-failures") {
      ls >> trace.config.max_link_failures;
    } else if (key == "audit-stride") {
      ls >> trace.config.audit_stride;
    } else if (key == "fault") {
      std::string name;
      FaultSpec fault;
      ls >> name >> fault.every_nth;
      fault.drop = fault_from_name(name);
      trace.config.fault = fault;
    } else if (key == "loss") {
      ls >> trace.config.control_loss_rate >> trace.config.loss_seed;
    } else if (key == "epoch") {
      ls >> trace.config.epoch_interval;
    } else if (key == "events") {
      // Count line; the per-event lines follow and carry their own tags.
    } else if (key == "join" || key == "leave" || key == "send") {
      ChurnEvent ev;
      ev.type = key == "join"    ? ChurnEventType::kJoin
                : key == "leave" ? ChurnEventType::kLeave
                                 : ChurnEventType::kSend;
      std::string g, node;
      ls >> g >> node;
      ev.group = tagged_int(g, 'g');
      ev.node = tagged_int(node, 'n');
      trace.events.push_back(ev);
    } else if (key == "linkfail") {
      ChurnEvent ev;
      ev.type = ChurnEventType::kLinkFail;
      std::string u, v;
      ls >> u >> v;
      ev.node = tagged_int(u, 'n');
      ev.node2 = tagged_int(v, 'n');
      trace.events.push_back(ev);
    } else if (key == "violation") {
      Violation v;
      ls >> v.invariant;
      SCMP_EXPECTS(!v.invariant.empty() && v.invariant.back() == ':');
      v.invariant.pop_back();
      std::getline(ls, v.detail);
      if (!v.detail.empty() && v.detail.front() == ' ')
        v.detail.erase(v.detail.begin());
      trace.violations.push_back(std::move(v));
    } else {
      SCMP_EXPECTS(false && "unknown key in churn trace");
    }
  }
  trace.config.num_events = static_cast<int>(trace.events.size());
  if (trace.config.num_events == 0) trace.config.num_events = 1;
  return trace;
}

void write_trace(const std::string& path, const TraceArtifact& trace) {
  std::ofstream out(path);
  SCMP_EXPECTS(out.good() && "cannot open trace file for writing");
  out << serialize(trace);
  SCMP_ENSURES(out.good());
}

TraceArtifact read_trace(const std::string& path) {
  std::ifstream in(path);
  SCMP_EXPECTS(in.good() && "cannot open trace file for reading");
  std::ostringstream buf;
  buf << in.rdbuf();
  return deserialize(buf.str());
}

}  // namespace scmp::verify
