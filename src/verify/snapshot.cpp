#include "verify/snapshot.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace scmp::verify {

GroupSnapshot take_group_snapshot(const core::Scmp& scmp, GroupId group) {
  SCMP_EXPECTS(group >= 0);
  GroupSnapshot snap;
  snap.group = group;
  snap.root = scmp.mrouter_of(group);
  snap.session_active = scmp.database().session_active(group);

  const graph::Graph& g = scmp.net().graph();
  if (const core::DcdmTree* tree = scmp.group_tree(group)) {
    for (graph::NodeId v : tree->tree().on_tree_nodes())
      snap.parent[v] = tree->tree().parent(v);
    for (graph::NodeId m : tree->tree().members()) {
      snap.tree_members.insert(m);
      snap.member_delay[m] = tree->tree().node_delay(g, m);
      snap.admitted_bound[m] = tree->admitted_bound(m);
    }
  }
  const auto& db_members = scmp.database().members_of(group);
  snap.db_members.insert(db_members.begin(), db_members.end());
  for (graph::NodeId m : scmp.igmp().member_routers(group))
    snap.igmp_members.insert(m);

  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    const core::Scmp::Entry* e = scmp.entry_at(v, group);
    if (e == nullptr) continue;
    EntrySnapshot es;
    es.router = v;
    es.upstream = e->upstream;
    es.downstream_routers = e->downstream_routers;
    es.downstream_ifaces = e->downstream_ifaces;
    snap.entries.push_back(std::move(es));
  }
  return snap;
}

ScmpSnapshot take_snapshot(const core::Scmp& scmp) {
  ScmpSnapshot snap;
  snap.mrouters = scmp.mrouters();

  std::set<GroupId> groups;
  for (GroupId group : scmp.active_groups()) groups.insert(group);
  for (GroupId group : scmp.groups_with_installed_state()) groups.insert(group);
  snap.groups.reserve(groups.size());
  for (GroupId group : groups)
    snap.groups.push_back(take_group_snapshot(scmp, group));
  return snap;
}

}  // namespace scmp::verify
