// Pure-data snapshots of an Scmp instance's distributed multicast state,
// taken through the public API only. The invariant catalog (invariants.hpp)
// consists of pure functions over these structs, which keeps every check
// unit-testable against hand-corrupted snapshots — the mutant tests prove
// each invariant class actually fires without needing friend access to the
// protocol internals.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "core/scmp.hpp"

namespace scmp::verify {

using core::GroupId;

/// One i-router's installed forwarding entry for a group (the distributed
/// state the m-router's install packets created).
struct EntrySnapshot {
  graph::NodeId router = graph::kInvalidNode;
  graph::NodeId upstream = graph::kInvalidNode;
  std::set<graph::NodeId> downstream_routers;
  std::set<int> downstream_ifaces;

  bool operator==(const EntrySnapshot&) const = default;
};

/// Everything the auditor needs to know about one group at one instant:
/// the m-router's authoritative tree, the three membership views (tree,
/// service database, IGMP), the delay ledger, and the installed entries.
struct GroupSnapshot {
  GroupId group = -1;
  graph::NodeId root = graph::kInvalidNode;  ///< anchoring m-router
  bool session_active = false;

  /// Authoritative tree as a parent map: on-tree node -> parent
  /// (root -> kInvalidNode). Empty when the m-router holds no tree.
  std::map<graph::NodeId, graph::NodeId> parent;
  std::set<graph::NodeId> tree_members;  ///< members per the tree
  std::set<graph::NodeId> db_members;    ///< members per the service database
  std::set<graph::NodeId> igmp_members;  ///< routers with member hosts

  /// Current multicast delay root -> member, and the delay bound each member
  /// was admitted under (DcdmTree::admitted_bound), per member.
  std::map<graph::NodeId, double> member_delay;
  std::map<graph::NodeId, double> admitted_bound;

  std::vector<EntrySnapshot> entries;  ///< installed i-router state

  bool operator==(const GroupSnapshot&) const = default;
};

struct ScmpSnapshot {
  std::vector<graph::NodeId> mrouters;
  std::vector<GroupSnapshot> groups;

  bool operator==(const ScmpSnapshot&) const = default;
};

/// Snapshot of one group: authoritative tree + memberships + entries.
/// `group` need not have an active session (stale installed state still
/// shows up in `entries`, which is exactly what the orphan-state invariant
/// inspects).
GroupSnapshot take_group_snapshot(const core::Scmp& scmp, GroupId group);

/// Snapshot of every group the instance knows about: active sessions plus
/// groups that only survive as installed i-router state.
ScmpSnapshot take_snapshot(const core::Scmp& scmp);

}  // namespace scmp::verify
