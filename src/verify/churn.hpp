// Deterministic churn model-checker (the ISSUE's tentpole driver): explores
// a seeded random interleaving of JOIN / LEAVE / SEND / link-failure events
// against a fresh SCMP world, draining the event queue to quiescence after
// every event and re-validating the full invariant catalog. On a violation
// the failing event sequence is shrunk with delta debugging (ddmin) to a
// minimal reproducing trace, which serialises to a replayable text artifact.
//
// Everything is deterministic by construction: the topology and the event
// sequence derive from explicit seeds through the repo's portable Rng, and
// replay() rebuilds the world from scratch for any (sub)sequence — which is
// exactly what makes ddmin's subset replays and the dumped artifacts
// trustworthy reproducers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "protocols/convergence.hpp"
#include "sim/packet.hpp"
#include "verify/auditor.hpp"

namespace scmp::verify {

enum class ChurnEventType { kJoin, kLeave, kSend, kLinkFail };

const char* to_string(ChurnEventType t);

struct ChurnEvent {
  ChurnEventType type = ChurnEventType::kJoin;
  GroupId group = -1;                         ///< join / leave / send
  graph::NodeId node = graph::kInvalidNode;   ///< router, or link endpoint u
  graph::NodeId node2 = graph::kInvalidNode;  ///< link endpoint v

  bool operator==(const ChurnEvent&) const = default;
};

/// Protocol mutant via fault injection: every `every_nth`-th packet of type
/// `drop` is silently lost at its sender's egress (Network::set_drop_filter).
/// Dropping every PRUNE, CLEAR or BRANCH turns the real protocol into the
/// ISSUE's intentionally-broken mutants without touching protocol code.
struct FaultSpec {
  sim::PacketType drop = sim::PacketType::kPrune;
  int every_nth = 1;  ///< 1 = drop all matching packets

  bool operator==(const FaultSpec&) const = default;
};

enum class ChurnTopo { kArpanet, kWaxman, kTransitStub };

struct ChurnConfig {
  ChurnTopo topo = ChurnTopo::kArpanet;
  std::uint64_t topo_seed = 1;  ///< link delays (and Waxman structure)
  int waxman_nodes = 50;        ///< paper §IV-A size; ignored for ARPANET
  double waxman_degree = 3.0;   ///< target average degree (paper: 3 and 5)
  int num_groups = 3;
  int num_events = 200;
  std::uint64_t event_seed = 1;
  int max_link_failures = 2;  ///< cap on generated link-failure events
  int audit_stride = 1;       ///< audit after every k-th event (and at the end)
  std::optional<FaultSpec> fault;
  /// Lossy-link fault model: every SCMP control packet (JOIN/LEAVE/TREE/
  /// BRANCH/PRUNE/CLEAR, and the ACKs themselves) is independently dropped
  /// with this probability, seeded by `loss_seed`. A nonzero rate enables the
  /// protocol's reliable delivery (Scmp::Config::reliability) and makes
  /// replay() run soft-state reconciliation to a fixpoint before each audit —
  /// exercising *recovery* instead of only proving invariants catch mutants.
  double control_loss_rate = 0.0;
  std::uint64_t loss_seed = 1;
  /// Epoch-batched membership (Scmp::Config::epoch_interval). When > 0 the
  /// replay additionally runs a *sequential shadow world* (identical config
  /// with interval 0) through the same event sequence and checks the
  /// batched-vs-sequential equivalence contract at every audit point: both
  /// worlds must agree on database membership and tree member sets per
  /// group, and the shadow world must pass the full invariant catalog too.
  /// Divergence is reported as "epoch-equivalence" violations.
  double epoch_interval = 0.0;
  /// Runtime-only knob (never serialized into trace artifacts): enable the
  /// per-group convergence tracker on each replay world and copy its stats
  /// into CheckOutcome::convergence. Tracking schedules only event-queue
  /// timers — the packet trace of a fixed-seed replay is unchanged.
  bool track_convergence = false;
};

struct CheckOutcome {
  bool ok = true;
  int executed = 0;        ///< events actually applied (guards may skip some)
  int failing_index = -1;  ///< index of the event whose audit failed
  std::vector<Violation> violations;
  int audits = 0;             ///< invariant audits performed during replay
  double audit_seconds = 0.0; ///< wall-clock time spent in those audits
  /// Convergence stats snapshotted from the tracker before the world is torn
  /// down (engaged only when ChurnConfig::track_convergence is set).
  std::optional<proto::ConvergenceTracker::Stats> convergence;
};

class ChurnModelChecker {
 public:
  explicit ChurnModelChecker(ChurnConfig cfg);

  const ChurnConfig& config() const { return cfg_; }

  /// The seeded event sequence this configuration explores.
  std::vector<ChurnEvent> generate() const;

  /// Replays `events` against a fresh world, auditing per audit_stride.
  /// Inapplicable events (a link failure whose edge is already gone or whose
  /// removal would disconnect the topology) are skipped deterministically.
  CheckOutcome replay(const std::vector<ChurnEvent>& events) const;

  /// generate() + replay().
  CheckOutcome run() const;

  /// Delta-debugs `failing` (a sequence replay() rejects) down to a
  /// 1-minimal subsequence that still fails.
  std::vector<ChurnEvent> shrink(const std::vector<ChurnEvent>& failing) const;

 private:
  ChurnConfig cfg_;
};

// ---- replayable trace artifacts -------------------------------------------

struct TraceArtifact {
  ChurnConfig config;
  std::vector<ChurnEvent> events;
  std::vector<Violation> violations;  ///< what replaying the trace reproduces
};

/// Line-oriented text form (see churn.cpp header comment for the grammar).
std::string serialize(const TraceArtifact& trace);
TraceArtifact deserialize(const std::string& text);

void write_trace(const std::string& path, const TraceArtifact& trace);
TraceArtifact read_trace(const std::string& path);

}  // namespace scmp::verify
