// Hierarchical transit-stub topologies after GT-ITM (Zegura/Calvert/
// Bhattacharjee, INFOCOM 1996) — the Internet-like model the paper's §IV
// simulation family comes from, alongside the flat Waxman generator:
//
//   * `transit_domains` well-separated transit (backbone) domains, each with
//     `transit_nodes` routers placed around the domain's grid cell;
//   * every transit node anchors `stub_domains_per_node` stub domains of
//     `stub_nodes` routers each, placed tightly around their transit node;
//   * dense random intra-domain meshes (repaired to connectivity), one
//     gateway edge per stub domain, and one closest-pair edge between every
//     pair of transit domains;
//   * the cost/delay model matches Waxman/ARPANET: cost = Manhattan distance
//     (>= 1), delay = Uniform(0, cost).
//
// Node ids are layered: transit nodes occupy [0, num_transit_nodes()), in
// domain-major order, followed by stub nodes grouped by their stub domain.
// Placing m-routers on transit nodes therefore needs no extra bookkeeping.
//
// Fully deterministic from the seeded Rng (determinism lint covers src/topo).
#pragma once

#include "topo/waxman.hpp"
#include "util/rng.hpp"

namespace scmp::topo {

struct TransitStubConfig {
  int transit_domains = 2;
  int transit_nodes = 4;  ///< routers per transit domain
  int stub_domains_per_node = 2;
  int stub_nodes = 4;  ///< routers per stub domain
  /// Intra-domain edge probabilities (GT-ITM's defaults are dense transit
  /// meshes and sparser stubs); connectivity is repaired either way.
  double transit_edge_prob = 0.6;
  double stub_edge_prob = 0.42;
  int grid = 32767;  ///< coordinate range [0, grid]
};

/// Transit routers in the generated topology (ids [0, num_transit_nodes())).
inline int num_transit_nodes(const TransitStubConfig& cfg) {
  return cfg.transit_domains * cfg.transit_nodes;
}

inline int num_stub_nodes(const TransitStubConfig& cfg) {
  return num_transit_nodes(cfg) * cfg.stub_domains_per_node * cfg.stub_nodes;
}

inline int total_nodes(const TransitStubConfig& cfg) {
  return num_transit_nodes(cfg) + num_stub_nodes(cfg);
}

/// Generates a connected transit-stub topology.
Topology transit_stub(const TransitStubConfig& cfg, Rng& rng);

}  // namespace scmp::topo
