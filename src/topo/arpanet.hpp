// The ARPANET topology used as the first evaluation network in §IV-B.
//
// The paper's exact ARPANET map is not published, but its member sweep runs
// to 40 group members, so the map must have had well over 40 nodes (the
// late-1980s ARPANET). We use a 48-node, 64-link continental backbone with
// the ARPANET's characteristic ring-with-chords structure and node degrees
// between 2 and 4: a Hamiltonian ring over a jittered 8x6 geographic grid
// plus 16 long-haul chords. Coordinates live on the same 32767 x 32767 grid
// as the random topologies; link cost is the Manhattan distance and link
// delay is Uniform(0, cost), i.e. the identical cost/delay model as §IV-A,
// so the three evaluation topologies differ only in structure.
#pragma once

#include "topo/waxman.hpp"
#include "util/rng.hpp"

namespace scmp::topo {

/// Number of nodes in the ARPANET-like map.
inline constexpr int kArpanetNodes = 48;

/// Number of links in the ARPANET-like map.
inline constexpr int kArpanetLinks = 64;

/// Builds the ARPANET-like topology; `rng` draws only the link delays (the
/// adjacency and coordinates are fixed).
Topology arpanet(Rng& rng);

}  // namespace scmp::topo
