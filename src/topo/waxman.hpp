// Random topologies per the paper's simulation model (§IV-A), which follows
// Waxman (JSAC 1988, the paper's reference [18]):
//
//   * n nodes placed uniformly at random on a 32767 x 32767 integer grid;
//   * edge {u,v} exists with probability P(u,v) = beta * exp(-d(u,v)/(alpha*L))
//     where d is Manhattan distance and L = 2*32767 the maximum distance;
//   * link cost  = Manhattan distance between the endpoints;
//   * link delay = Uniform(0, cost).
//
// GT-ITM's flat random model is this same generator, so the paper's two
// 50-node topologies with average node degree 3 and 5 are produced here by
// calibrating beta to a target average degree.
#pragma once

#include <cstdlib>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace scmp::topo {

struct Point {
  int x = 0;
  int y = 0;
};

inline int manhattan(const Point& a, const Point& b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

/// A generated topology: the graph plus node grid coordinates.
struct Topology {
  graph::Graph graph;
  std::vector<Point> coords;
  std::string name;
};

struct WaxmanConfig {
  int num_nodes = 100;
  double alpha = 0.25;   ///< larger -> more long edges
  double beta = 0.2;     ///< larger -> higher degree
  int grid = 32767;      ///< coordinate range [0, grid]
};

/// Waxman topology, repaired to be connected (disconnected components are
/// joined through their closest node pairs, keeping the cost/delay model).
Topology waxman(const WaxmanConfig& cfg, Rng& rng);

/// Waxman topology whose beta is calibrated so the average node degree lands
/// within `tolerance` of `target_degree` (paper's GT-ITM substitutes:
/// n=50, degree 3 and 5).
Topology waxman_with_degree(int num_nodes, double target_degree, Rng& rng,
                            double tolerance = 0.25);

}  // namespace scmp::topo
