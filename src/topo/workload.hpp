// Membership workload generators for the scale experiments the ROADMAP
// targets (10⁴ groups, 10⁵–10⁶ member events): a Zipf-popularity churn
// stream (a few hot services take most of the membership traffic, the long
// tail stays cold) and a flash-crowd burst (a storm of joins over a short
// window — the regime that separates per-request from epoch-batched
// control planes).
//
// Generators only produce timestamped event lists; the driver (bench or
// test) applies them through the protocol's host_join/host_leave surface.
// Every event carries a fresh (iface, host) pair so each one is a real
// designated-router membership transition at the IGMP layer, while the
// m-router still sees one JOIN per (router, group) — exactly the paper's
// aggregation semantics.
//
// Fully deterministic from the seeded Rng (determinism lint covers
// src/topo).
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace scmp::topo {

struct MemberEvent {
  double time = 0.0;
  int group = 0;
  graph::NodeId router = 0;
  int iface = 0;
  int host = 0;
  bool join = true;  ///< false = leave of a previously generated join
};

/// Zipf(s) sampler over ranks [0, n): P(k) ∝ 1 / (k+1)^s, drawn by CDF
/// inversion over precomputed cumulative weights. s = 0 is uniform.
class ZipfSampler {
 public:
  ZipfSampler(int n, double exponent);

  int n() const { return static_cast<int>(cdf_.size()); }
  int sample(Rng& rng) const;

 private:
  std::vector<double> cdf_;  ///< normalized cumulative weights
};

struct ZipfChurnConfig {
  int num_groups = 1000;
  double zipf_exponent = 1.0;  ///< group-popularity skew
  int num_events = 100000;
  double start = 0.0;
  double horizon = 100.0;      ///< event times uniform in [start, horizon)
  double leave_fraction = 0.3; ///< target fraction of leave events
};

/// Churn stream: each event joins a Zipf-popular group at a uniform router,
/// or (with probability `leave_fraction`, when members exist) leaves a
/// uniformly chosen live membership. Events are returned time-sorted.
std::vector<MemberEvent> zipf_churn(const ZipfChurnConfig& cfg,
                                    int num_routers, Rng& rng);

struct FlashCrowdConfig {
  int num_groups = 16;    ///< the crowd spreads over this many hot groups
  int crowd = 10000;      ///< join events in the burst
  double start = 1.0;
  double window = 5.0;    ///< joins uniform in [start, start + window)
  /// When true, every join is mirrored by a leave in a second window of the
  /// same length directly after the first (the crowd departs as fast as it
  /// arrived).
  bool depart = false;
};

/// Flash crowd: `crowd` joins uniform over the window, groups and routers
/// uniform. Events are returned time-sorted.
std::vector<MemberEvent> flash_crowd(const FlashCrowdConfig& cfg,
                                     int num_routers, Rng& rng);

}  // namespace scmp::topo
