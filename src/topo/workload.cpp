#include "topo/workload.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace scmp::topo {

namespace {

/// Stable time sort: ties keep generation order, so the applied sequence is
/// deterministic even when two events share a timestamp.
void sort_by_time(std::vector<MemberEvent>& events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const MemberEvent& a, const MemberEvent& b) {
                     return a.time < b.time;
                   });
}

}  // namespace

ZipfSampler::ZipfSampler(int n, double exponent) {
  SCMP_EXPECTS(n >= 1);
  SCMP_EXPECTS(exponent >= 0.0);
  cdf_.resize(static_cast<std::size_t>(n));
  double total = 0.0;
  for (int k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), exponent);
    cdf_[static_cast<std::size_t>(k)] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

int ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform01();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<int>(it - cdf_.begin());
}

std::vector<MemberEvent> zipf_churn(const ZipfChurnConfig& cfg,
                                    int num_routers, Rng& rng) {
  SCMP_EXPECTS(num_routers >= 1);
  SCMP_EXPECTS(cfg.num_groups >= 1 && cfg.num_events >= 0);
  SCMP_EXPECTS(cfg.horizon > cfg.start);
  SCMP_EXPECTS(cfg.leave_fraction >= 0.0 && cfg.leave_fraction <= 1.0);

  const ZipfSampler groups(cfg.num_groups, cfg.zipf_exponent);
  std::vector<MemberEvent> events;
  events.reserve(static_cast<std::size_t>(cfg.num_events));
  std::vector<MemberEvent> live;  // joins without a matching leave yet
  int next_id = 0;                // fresh (iface, host) per join
  for (int i = 0; i < cfg.num_events; ++i) {
    const bool leave = !live.empty() && rng.chance(cfg.leave_fraction);
    if (leave) {
      const auto idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      MemberEvent ev = live[idx];
      // Drawn within [join time, horizon): a leave never precedes its join,
      // and the stable time sort keeps the pair ordered on ties (the join
      // was generated first).
      ev.time = rng.uniform_real(ev.time, cfg.horizon);
      ev.join = false;
      live[idx] = live.back();
      live.pop_back();
      events.push_back(ev);
    } else {
      MemberEvent ev;
      ev.time = rng.uniform_real(cfg.start, cfg.horizon);
      ev.group = groups.sample(rng);
      ev.router = static_cast<graph::NodeId>(
          rng.uniform_int(0, num_routers - 1));
      ev.iface = next_id;
      ev.host = next_id;
      ++next_id;
      ev.join = true;
      live.push_back(ev);
      events.push_back(ev);
    }
  }
  sort_by_time(events);
  return events;
}

std::vector<MemberEvent> flash_crowd(const FlashCrowdConfig& cfg,
                                     int num_routers, Rng& rng) {
  SCMP_EXPECTS(num_routers >= 1);
  SCMP_EXPECTS(cfg.num_groups >= 1 && cfg.crowd >= 0);
  SCMP_EXPECTS(cfg.window > 0.0);

  std::vector<MemberEvent> events;
  events.reserve(static_cast<std::size_t>(cfg.crowd) * (cfg.depart ? 2 : 1));
  for (int i = 0; i < cfg.crowd; ++i) {
    MemberEvent ev;
    ev.time = rng.uniform_real(cfg.start, cfg.start + cfg.window);
    ev.group = static_cast<int>(rng.uniform_int(0, cfg.num_groups - 1));
    ev.router =
        static_cast<graph::NodeId>(rng.uniform_int(0, num_routers - 1));
    ev.iface = i;
    ev.host = i;
    ev.join = true;
    events.push_back(ev);
    if (cfg.depart) {
      MemberEvent leave = ev;
      leave.time = ev.time + cfg.window;  // departs one window later
      leave.join = false;
      events.push_back(leave);
    }
  }
  sort_by_time(events);
  return events;
}

}  // namespace scmp::topo
