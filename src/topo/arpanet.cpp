#include "topo/arpanet.hpp"

namespace scmp::topo {

namespace {

// 16 long-haul chords layered over the 48-node Hamiltonian ring. Together
// with the ring they give every node degree 2..4, matching the sparse
// backbone character of the ARPANET maps used in routing studies.
constexpr int kChords[][2] = {
    {0, 12}, {4, 20},  {8, 28},  {16, 36}, {24, 40}, {2, 46},
    {6, 34}, {10, 42}, {14, 30}, {18, 44}, {22, 38}, {26, 47},
    {3, 17}, {7, 25},  {11, 33}, {15, 41},
};

/// Fixed site coordinates: an 8-column snake over 6 rows with deterministic
/// jitter, spanning the full 32767-grid like the Waxman topologies.
Point site_coordinates(int i) {
  const int row = i / 8;
  const int col = (row % 2 == 0) ? (i % 8) : (7 - i % 8);
  const int jitter_x = (i * 37) % 997 * 3;
  const int jitter_y = (i * 61) % 1009 * 3;
  return Point{col * 4400 + jitter_x, row * 6200 + jitter_y};
}

}  // namespace

Topology arpanet(Rng& rng) {
  Topology topo;
  topo.name = "arpanet";
  topo.graph = graph::Graph(kArpanetNodes);
  topo.coords.resize(kArpanetNodes);
  for (int i = 0; i < kArpanetNodes; ++i)
    topo.coords[static_cast<std::size_t>(i)] = site_coordinates(i);

  auto add = [&](int u, int v) {
    if (topo.graph.has_edge(u, v)) return;
    const double cost = static_cast<double>(
        manhattan(topo.coords[static_cast<std::size_t>(u)],
                  topo.coords[static_cast<std::size_t>(v)]));
    topo.graph.add_edge(u, v, rng.uniform_real(0.0, cost), cost);
  };

  // The backbone ring.
  for (int i = 0; i < kArpanetNodes; ++i) add(i, (i + 1) % kArpanetNodes);
  // Long-haul chords.
  for (const auto& chord : kChords) add(chord[0], chord[1]);

  SCMP_ENSURES(topo.graph.num_edges() == kArpanetLinks);
  SCMP_ENSURES(topo.graph.is_connected());
  return topo;
}

}  // namespace scmp::topo
