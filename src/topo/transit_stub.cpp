#include "topo/transit_stub.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

namespace scmp::topo {

namespace {

/// Manhattan cost clamped away from zero so coincident placements never
/// produce a zero-cost link (the dual-weight path model divides by cost).
double edge_cost(const Point& a, const Point& b) {
  return static_cast<double>(std::max(manhattan(a, b), 1));
}

void add_ts_edge(graph::Graph& g, const std::vector<Point>& coords,
                 graph::NodeId u, graph::NodeId v, Rng& rng) {
  const double cost = edge_cost(coords[static_cast<std::size_t>(u)],
                                coords[static_cast<std::size_t>(v)]);
  g.add_edge(u, v, rng.uniform_real(0.0, cost), cost);
}

int clamp_coord(int value, int grid) { return std::clamp(value, 0, grid); }

/// A random point within `radius` (Chebyshev) of `center`, clamped to grid.
Point jitter(const Point& center, int radius, int grid, Rng& rng) {
  Point p;
  p.x = clamp_coord(
      center.x + static_cast<int>(rng.uniform_int(-radius, radius)), grid);
  p.y = clamp_coord(
      center.y + static_cast<int>(rng.uniform_int(-radius, radius)), grid);
  return p;
}

/// Random mesh over `domain` (each pair with probability `p`), then repaired
/// to intra-domain connectivity by joining closest cross-component pairs —
/// the subset analogue of the Waxman generator's repair.
void build_domain_mesh(graph::Graph& g, const std::vector<Point>& coords,
                       const std::vector<graph::NodeId>& domain, double p,
                       Rng& rng) {
  const std::size_t k = domain.size();
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = i + 1; j < k; ++j) {
      if (rng.chance(p)) add_ts_edge(g, coords, domain[i], domain[j], rng);
    }
  }

  // Union-find-free component labeling restricted to the domain's nodes.
  std::vector<int> comp(k, -1);
  auto label = [&]() {
    std::fill(comp.begin(), comp.end(), -1);
    auto index_of = [&](graph::NodeId v) {
      const auto it = std::find(domain.begin(), domain.end(), v);
      return it == domain.end()
                 ? static_cast<std::size_t>(-1)
                 : static_cast<std::size_t>(it - domain.begin());
    };
    int next = 0;
    for (std::size_t s = 0; s < k; ++s) {
      if (comp[s] != -1) continue;
      std::vector<std::size_t> stack{s};
      comp[s] = next;
      while (!stack.empty()) {
        const std::size_t u = stack.back();
        stack.pop_back();
        for (const auto& nb : g.neighbors(domain[u])) {
          const std::size_t t = index_of(nb.to);
          if (t != static_cast<std::size_t>(-1) && comp[t] == -1) {
            comp[t] = next;
            stack.push_back(t);
          }
        }
      }
      ++next;
    }
    return next;
  };

  while (label() > 1) {
    std::size_t best_i = 0, best_j = 0;
    long best_d = std::numeric_limits<long>::max();
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = i + 1; j < k; ++j) {
        if (comp[i] == comp[j]) continue;
        const long d =
            manhattan(coords[static_cast<std::size_t>(domain[i])],
                      coords[static_cast<std::size_t>(domain[j])]);
        if (d < best_d) {
          best_d = d;
          best_i = i;
          best_j = j;
        }
      }
    }
    add_ts_edge(g, coords, domain[best_i], domain[best_j], rng);
  }
}

}  // namespace

Topology transit_stub(const TransitStubConfig& cfg, Rng& rng) {
  SCMP_EXPECTS(cfg.transit_domains >= 1 && cfg.transit_nodes >= 1);
  SCMP_EXPECTS(cfg.stub_domains_per_node >= 0 && cfg.stub_nodes >= 1);
  SCMP_EXPECTS(cfg.transit_edge_prob >= 0.0 && cfg.transit_edge_prob <= 1.0);
  SCMP_EXPECTS(cfg.stub_edge_prob >= 0.0 && cfg.stub_edge_prob <= 1.0);
  SCMP_EXPECTS(cfg.grid >= 1);
  SCMP_EXPECTS(total_nodes(cfg) >= 2);

  const int n = total_nodes(cfg);
  Topology topo;
  topo.name = "transit-stub-t" + std::to_string(cfg.transit_domains) + "x" +
              std::to_string(cfg.transit_nodes) + "-s" +
              std::to_string(cfg.stub_domains_per_node) + "x" +
              std::to_string(cfg.stub_nodes);
  topo.graph = graph::Graph(n);
  topo.coords.resize(static_cast<std::size_t>(n));

  // Transit domain centers: one per cell of a near-square partition of the
  // grid, so domains are well separated and inter-domain links are the long
  // expensive ones (the GT-ITM shape).
  const int cols = static_cast<int>(
      std::ceil(std::sqrt(static_cast<double>(cfg.transit_domains))));
  const int rows = (cfg.transit_domains + cols - 1) / cols;
  const int cell_w = cfg.grid / cols;
  const int cell_h = cfg.grid / rows;
  std::vector<Point> centers(static_cast<std::size_t>(cfg.transit_domains));
  for (int d = 0; d < cfg.transit_domains; ++d) {
    const int cx = (d % cols) * cell_w;
    const int cy = (d / cols) * cell_h;
    centers[static_cast<std::size_t>(d)].x = clamp_coord(
        cx + cell_w / 4 +
            static_cast<int>(rng.uniform_int(0, std::max(cell_w / 2, 1))),
        cfg.grid);
    centers[static_cast<std::size_t>(d)].y = clamp_coord(
        cy + cell_h / 4 +
            static_cast<int>(rng.uniform_int(0, std::max(cell_h / 2, 1))),
        cfg.grid);
  }

  // Place transit nodes (ids [0, T*Nt), domain-major) around their centers.
  const int transit_radius = std::max(cfg.grid / 10, 1);
  for (int d = 0; d < cfg.transit_domains; ++d) {
    for (int i = 0; i < cfg.transit_nodes; ++i) {
      const int id = d * cfg.transit_nodes + i;
      topo.coords[static_cast<std::size_t>(id)] =
          jitter(centers[static_cast<std::size_t>(d)], transit_radius,
                 cfg.grid, rng);
    }
  }

  // Place stub nodes, grouped by stub domain, each domain tight around its
  // anchoring transit node.
  const int stub_center_radius = std::max(cfg.grid / 16, 1);
  const int stub_radius = std::max(cfg.grid / 40, 1);
  int next_id = num_transit_nodes(cfg);
  for (int t = 0; t < num_transit_nodes(cfg); ++t) {
    for (int s = 0; s < cfg.stub_domains_per_node; ++s) {
      const Point stub_center = jitter(topo.coords[static_cast<std::size_t>(t)],
                                       stub_center_radius, cfg.grid, rng);
      for (int i = 0; i < cfg.stub_nodes; ++i) {
        topo.coords[static_cast<std::size_t>(next_id + i)] =
            jitter(stub_center, stub_radius, cfg.grid, rng);
      }
      next_id += cfg.stub_nodes;
    }
  }
  SCMP_ASSERT(next_id == n);

  // Intra-transit-domain meshes.
  for (int d = 0; d < cfg.transit_domains; ++d) {
    std::vector<graph::NodeId> domain;
    domain.reserve(static_cast<std::size_t>(cfg.transit_nodes));
    for (int i = 0; i < cfg.transit_nodes; ++i)
      domain.push_back(d * cfg.transit_nodes + i);
    build_domain_mesh(topo.graph, topo.coords, domain, cfg.transit_edge_prob,
                      rng);
  }

  // One closest-pair edge between every pair of transit domains: the
  // backbone stays connected and inter-domain paths pay the long haul.
  for (int a = 0; a < cfg.transit_domains; ++a) {
    for (int b = a + 1; b < cfg.transit_domains; ++b) {
      int best_u = -1, best_v = -1;
      long best_d = std::numeric_limits<long>::max();
      for (int i = 0; i < cfg.transit_nodes; ++i) {
        for (int j = 0; j < cfg.transit_nodes; ++j) {
          const int u = a * cfg.transit_nodes + i;
          const int v = b * cfg.transit_nodes + j;
          const long d = manhattan(topo.coords[static_cast<std::size_t>(u)],
                                   topo.coords[static_cast<std::size_t>(v)]);
          if (d < best_d) {
            best_d = d;
            best_u = u;
            best_v = v;
          }
        }
      }
      add_ts_edge(topo.graph, topo.coords, best_u, best_v, rng);
    }
  }

  // Stub domains: intra-domain mesh plus one gateway edge from a random
  // stub router to the anchoring transit node.
  int stub_base = num_transit_nodes(cfg);
  for (int t = 0; t < num_transit_nodes(cfg); ++t) {
    for (int s = 0; s < cfg.stub_domains_per_node; ++s) {
      std::vector<graph::NodeId> domain;
      domain.reserve(static_cast<std::size_t>(cfg.stub_nodes));
      for (int i = 0; i < cfg.stub_nodes; ++i) domain.push_back(stub_base + i);
      build_domain_mesh(topo.graph, topo.coords, domain, cfg.stub_edge_prob,
                        rng);
      const graph::NodeId gateway = domain[static_cast<std::size_t>(
          rng.uniform_int(0, cfg.stub_nodes - 1))];
      add_ts_edge(topo.graph, topo.coords, gateway, t, rng);
      stub_base += cfg.stub_nodes;
    }
  }

  SCMP_ENSURES(topo.graph.is_connected());
  return topo;
}

}  // namespace scmp::topo
