#include "topo/waxman.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace scmp::topo {

namespace {

/// Connects a possibly-disconnected graph by repeatedly joining the two
/// closest nodes that lie in different components, preserving the cost/delay
/// model (cost = Manhattan distance, delay = U(0, cost)).
void repair_connectivity(graph::Graph& g, const std::vector<Point>& coords,
                         Rng& rng) {
  const int n = g.num_nodes();
  std::vector<int> comp(static_cast<std::size_t>(n), -1);
  auto label_components = [&]() {
    std::fill(comp.begin(), comp.end(), -1);
    int next = 0;
    for (int s = 0; s < n; ++s) {
      if (comp[static_cast<std::size_t>(s)] != -1) continue;
      std::vector<int> stack{s};
      comp[static_cast<std::size_t>(s)] = next;
      while (!stack.empty()) {
        const int u = stack.back();
        stack.pop_back();
        for (const auto& nb : g.neighbors(u)) {
          if (comp[static_cast<std::size_t>(nb.to)] == -1) {
            comp[static_cast<std::size_t>(nb.to)] = next;
            stack.push_back(nb.to);
          }
        }
      }
      ++next;
    }
    return next;
  };

  while (label_components() > 1) {
    int best_u = -1, best_v = -1;
    long best_d = std::numeric_limits<long>::max();
    for (int u = 0; u < n; ++u) {
      for (int v = u + 1; v < n; ++v) {
        if (comp[static_cast<std::size_t>(u)] ==
            comp[static_cast<std::size_t>(v)])
          continue;
        const long d = manhattan(coords[static_cast<std::size_t>(u)],
                                 coords[static_cast<std::size_t>(v)]);
        if (d < best_d) {
          best_d = d;
          best_u = u;
          best_v = v;
        }
      }
    }
    SCMP_ASSERT(best_u != -1);
    const double cost = static_cast<double>(best_d);
    g.add_edge(best_u, best_v, rng.uniform_real(0.0, cost), cost);
  }
}

}  // namespace

Topology waxman(const WaxmanConfig& cfg, Rng& rng) {
  SCMP_EXPECTS(cfg.num_nodes >= 2 && cfg.grid >= 1);
  SCMP_EXPECTS(cfg.alpha > 0.0 && cfg.beta > 0.0);

  Topology topo;
  topo.name = "waxman-n" + std::to_string(cfg.num_nodes);
  topo.graph = graph::Graph(cfg.num_nodes);
  topo.coords.resize(static_cast<std::size_t>(cfg.num_nodes));
  for (auto& p : topo.coords) {
    p.x = static_cast<int>(rng.uniform_int(0, cfg.grid));
    p.y = static_cast<int>(rng.uniform_int(0, cfg.grid));
  }

  const double L = 2.0 * cfg.grid;  // maximum Manhattan distance
  for (int u = 0; u < cfg.num_nodes; ++u) {
    for (int v = u + 1; v < cfg.num_nodes; ++v) {
      const int d = manhattan(topo.coords[static_cast<std::size_t>(u)],
                              topo.coords[static_cast<std::size_t>(v)]);
      if (d == 0) continue;  // coincident nodes would make a zero-cost link
      const double p =
          cfg.beta * std::exp(-static_cast<double>(d) / (cfg.alpha * L));
      if (rng.chance(p)) {
        const double cost = static_cast<double>(d);
        topo.graph.add_edge(u, v, rng.uniform_real(0.0, cost), cost);
      }
    }
  }
  repair_connectivity(topo.graph, topo.coords, rng);
  SCMP_ENSURES(topo.graph.is_connected());
  return topo;
}

Topology waxman_with_degree(int num_nodes, double target_degree, Rng& rng,
                            double tolerance) {
  SCMP_EXPECTS(target_degree > 1.0);
  WaxmanConfig cfg;
  cfg.num_nodes = num_nodes;
  cfg.beta = 0.2;
  // Multiplicative calibration of beta: edge count scales ~linearly in beta,
  // so a handful of iterations converges. Each attempt uses a forked stream
  // so a rejected topology does not perturb the accepted one.
  for (int attempt = 0; attempt < 40; ++attempt) {
    Rng trial = rng.fork();
    Topology topo = waxman(cfg, trial);
    const double deg = topo.graph.average_degree();
    if (std::abs(deg - target_degree) <= tolerance) {
      topo.name = "random-n" + std::to_string(num_nodes) + "-deg" +
                  std::to_string(static_cast<int>(target_degree + 0.5));
      return topo;
    }
    cfg.beta = std::clamp(cfg.beta * target_degree / std::max(deg, 0.1),
                          1e-4, 1.0);
  }
  // Calibration failed to land inside tolerance; return the closest attempt.
  Rng trial = rng.fork();
  Topology topo = waxman(cfg, trial);
  topo.name = "random-n" + std::to_string(num_nodes) + "-deg" +
              std::to_string(static_cast<int>(target_degree + 0.5));
  return topo;
}

}  // namespace scmp::topo
