#include "core/scmp.hpp"

#include <algorithm>

#include "core/tree_packet.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/log.hpp"

namespace scmp::core {

namespace {

/// SCMP control types that travel reliably when Config::reliability is on.
/// Exhaustive on purpose: adding a PacketType forces a decision here
/// (-Wswitch) about whether it participates in the reliability machinery.
bool is_scmp_control(sim::PacketType t) {
  switch (t) {
    case sim::PacketType::kJoin:
    case sim::PacketType::kLeave:
    case sim::PacketType::kTree:
    case sim::PacketType::kBranch:
    case sim::PacketType::kPrune:
    case sim::PacketType::kClear:
      return true;
    case sim::PacketType::kData:
    case sim::PacketType::kDataEncap:
    case sim::PacketType::kAck:
    case sim::PacketType::kCbtJoin:
    case sim::PacketType::kCbtAck:
    case sim::PacketType::kCbtQuit:
    case sim::PacketType::kDvmrpPrune:
    case sim::PacketType::kDvmrpGraft:
    case sim::PacketType::kPimJoin:
    case sim::PacketType::kPimPrune:
    case sim::PacketType::kGroupLsa:
    case sim::PacketType::kIgmpQuery:
    case sim::PacketType::kIgmpReport:
    case sim::PacketType::kIgmpLeave:
      return false;
  }
  return false;
}

/// Flight-record label for a control packet (string literals only: the
/// recorder stores the pointer, not a copy). Non-SCMP types label as "?" —
/// SCMP's send sites never pass one.
const char* control_name(sim::PacketType t) {
  switch (t) {
    case sim::PacketType::kJoin: return "JOIN";
    case sim::PacketType::kLeave: return "LEAVE";
    case sim::PacketType::kTree: return "TREE";
    case sim::PacketType::kBranch: return "BRANCH";
    case sim::PacketType::kPrune: return "PRUNE";
    case sim::PacketType::kClear: return "CLEAR";
    case sim::PacketType::kAck: return "ACK";
    case sim::PacketType::kData:
    case sim::PacketType::kDataEncap:
    case sim::PacketType::kCbtJoin:
    case sim::PacketType::kCbtAck:
    case sim::PacketType::kCbtQuit:
    case sim::PacketType::kDvmrpPrune:
    case sim::PacketType::kDvmrpGraft:
    case sim::PacketType::kGroupLsa:
    case sim::PacketType::kPimJoin:
    case sim::PacketType::kPimPrune:
    case sim::PacketType::kIgmpQuery:
    case sim::PacketType::kIgmpReport:
    case sim::PacketType::kIgmpLeave:
      return "?";
  }
  return "?";
}

}  // namespace

Scmp::Scmp(sim::Network& net, igmp::IgmpDomain& igmp, Config cfg)
    : MulticastProtocol(net, igmp),
      cfg_(cfg),
      db_(cfg.db_shards),
      paths_(net.graph()),
      retx_(net.queue(), cfg.reliability),
      epoch_interval_(cfg.epoch_interval) {
  SCMP_EXPECTS(cfg.epoch_interval >= 0.0);
  mrouters_ = cfg.mrouters.empty()
                  ? std::vector<graph::NodeId>{cfg.mrouter}
                  : cfg.mrouters;
  for (graph::NodeId m : mrouters_) SCMP_EXPECTS(net.graph().valid(m));
  {
    auto sorted = mrouters_;
    std::sort(sorted.begin(), sorted.end());
    SCMP_EXPECTS(std::adjacent_find(sorted.begin(), sorted.end()) ==
                 sorted.end());
  }
  entries_.resize(static_cast<std::size_t>(net.graph().num_nodes()));
  cleared_version_.resize(static_cast<std::size_t>(net.graph().num_nodes()));
  seen_req_.resize(static_cast<std::size_t>(net.graph().num_nodes()));
}

// ---------------------------------------------------------------------------
// Reliable control-plane delivery (acks + retransmission, src/core/retx.hpp).
// ---------------------------------------------------------------------------

void Scmp::send_control_link(graph::NodeId from, graph::NodeId to,
                             sim::Packet pkt) {
  if (!retx_.config().enabled) {
    net().send_link(from, to, std::move(pkt));
    return;
  }
  pkt.req = retx_.next_req();
  obs::flight_record(obs::FlightEventKind::kSend, net().now(), pkt.req,
                     control_name(pkt.type), pkt.group, from, to);
  retx_.arm(from, pkt.req, [this, from, to, copy = pkt]() {
    net().send_link(from, to, copy);
  });
  net().send_link(from, to, std::move(pkt));
}

void Scmp::send_control_unicast(graph::NodeId from, sim::Packet pkt) {
  if (!retx_.config().enabled) {
    net().send_unicast(from, std::move(pkt));
    return;
  }
  pkt.req = retx_.next_req();
  obs::flight_record(obs::FlightEventKind::kSend, net().now(), pkt.req,
                     control_name(pkt.type), pkt.group, from, pkt.dst);
  retx_.arm(from, pkt.req, [this, from, copy = pkt]() {
    net().send_unicast(from, copy);
  });
  net().send_unicast(from, std::move(pkt));
}

void Scmp::send_ack(graph::NodeId at, const sim::Packet& pkt,
                    graph::NodeId from) {
  sim::Packet ack;
  ack.type = sim::PacketType::kAck;
  ack.group = pkt.group;
  ack.src = at;
  ack.req = pkt.req;
  switch (pkt.type) {
    case sim::PacketType::kTree:
    case sim::PacketType::kBranch:
    case sim::PacketType::kPrune:
      // Link-delivered control is acknowledged hop-by-hop: the retransmitting
      // endpoint is the neighbour that put the packet on this link.
      SCMP_ASSERT(from != graph::kInvalidNode);
      ack.dst = from;
      // protocol: fire-and-forget(acks terminate the reliability handshake —
      // retransmitting an ACK reliably would itself need ACKs; a lost ack is
      // repaired by the sender's retry of the original request (hop-by-hop
      // ack).)
      net().send_link(at, from, std::move(ack));
      break;
    case sim::PacketType::kJoin:
    case sim::PacketType::kLeave:
    case sim::PacketType::kClear:
      // JOIN / LEAVE / CLEAR travel by unicast; the originator is pkt.src.
      SCMP_ASSERT(pkt.src != graph::kInvalidNode);
      ack.dst = pkt.src;
      // protocol: fire-and-forget(acks terminate the reliability handshake —
      // retransmitting an ACK reliably would itself need ACKs; a lost ack is
      // repaired by the sender's retry of the original request (end-to-end
      // ack).)
      net().send_unicast(at, std::move(ack));
      break;
    default:
      // Acknowledgements exist only for the SCMP control grammar; asking for
      // one on any other type is a programming error, not network input.
      SCMP_ASSERT(false && "ack requested for a non-control packet type");
      break;
  }
}

graph::NodeId Scmp::mrouter_of(GroupId group) const {
  // The published group -> m-router mapping every DR knows (§II-A): a static
  // function of the group id over the configured m-router set.
  const auto idx = static_cast<std::size_t>(group) % mrouters_.size();
  return mrouters_[idx];
}

DcdmTree& Scmp::tree_for(GroupId group) {
  auto it = trees_.find(group);
  if (it == trees_.end()) {
    it = trees_
             .emplace(group, DcdmTree(net().graph(), paths_,
                                      mrouter_of(group), cfg_.dcdm))
             .first;
  }
  return it->second;
}

const DcdmTree* Scmp::group_tree(GroupId group) const {
  const auto it = trees_.find(group);
  return it == trees_.end() ? nullptr : &it->second;
}

std::vector<GroupId> Scmp::active_groups() const {
  std::vector<GroupId> out;
  out.reserve(trees_.size());
  for (const auto& [group, tree] : trees_) out.push_back(group);
  return out;
}

std::vector<GroupId> Scmp::groups_with_installed_state() const {
  std::set<GroupId> seen;
  for (const auto& groups : entries_)
    for (const auto& [group, entry] : groups) seen.insert(group);
  return {seen.begin(), seen.end()};
}

std::set<graph::NodeId> Scmp::senders_of(GroupId group) const {
  const auto it = senders_.find(group);
  return it == senders_.end() ? std::set<graph::NodeId>{} : it->second;
}

Scmp::Entry* Scmp::mutable_entry_at(graph::NodeId router, GroupId group) {
  auto& groups = entries_[static_cast<std::size_t>(router)];
  const auto it = groups.find(group);
  return it == groups.end() ? nullptr : &it->second;
}

const Scmp::Entry* Scmp::entry_at(graph::NodeId router, GroupId group) const {
  const auto& groups = entries_[static_cast<std::size_t>(router)];
  const auto it = groups.find(group);
  return it == groups.end() ? nullptr : &it->second;
}

// ---------------------------------------------------------------------------
// Designated-router side (paper §III-B/§III-C pseudo-code).
// ---------------------------------------------------------------------------

void Scmp::interface_joined(graph::NodeId router, GroupId group, int iface,
                            bool first_iface) {
  const graph::NodeId root = mrouter_of(group);
  // The convergence clock starts at the membership event itself, so the
  // measured time covers request loss, retransmission and repair latency.
  if (first_iface && convergence() != nullptr) convergence()->note_event(group);
  if (router == root) {
    local_membership_change(group, /*joined=*/true);
    // No packet will flow for a root-local join; resolve the measurement now.
    check_convergence(group);
    return;
  }
  Entry* e = mutable_entry_at(router, group);
  if (e != nullptr) {
    e->downstream_ifaces.insert(iface);
    if (!first_iface) return;
    // Already on the tree as a relay: the tree does not change, but the
    // m-router needs the JOIN for accounting and billing (paper §III-B).
  }
  sim::Packet join;
  join.type = sim::PacketType::kJoin;
  join.group = group;
  join.src = router;
  join.dst = root;
  send_control_unicast(router, std::move(join));
}

void Scmp::interface_left(graph::NodeId router, GroupId group, int iface,
                          bool last_iface) {
  const graph::NodeId root = mrouter_of(group);
  if (last_iface && convergence() != nullptr) convergence()->note_event(group);
  if (router == root) {
    if (last_iface) {
      local_membership_change(group, /*joined=*/false);
      check_convergence(group);
    }
    return;
  }
  Entry* e = mutable_entry_at(router, group);
  if (e != nullptr) e->downstream_ifaces.erase(iface);
  if (!last_iface) return;  // other interfaces keep the DR a member

  if (e != nullptr && e->downstream_routers.empty()) {
    // Became a leaf: prune upstream and tell the m-router (paper §III-C).
    send_prune_and_leave(router, group);
    return;
  }
  // Still a relay (downstream routers remain) or the entry has not been
  // installed yet: only the LEAVE goes out.
  sim::Packet leave;
  leave.type = sim::PacketType::kLeave;
  leave.group = group;
  leave.src = router;
  leave.dst = root;
  send_control_unicast(router, std::move(leave));
}

void Scmp::send_prune_and_leave(graph::NodeId at, GroupId group) {
  Entry* e = mutable_entry_at(at, group);
  SCMP_EXPECTS(e != nullptr);
  const graph::NodeId up = e->upstream;
  entries_[static_cast<std::size_t>(at)].erase(group);

  if (up != graph::kInvalidNode) {
    sim::Packet prune;
    prune.type = sim::PacketType::kPrune;
    prune.group = group;
    prune.src = at;
    send_control_link(at, up, std::move(prune));
  }
  sim::Packet leave;
  leave.type = sim::PacketType::kLeave;
  leave.group = group;
  leave.src = at;
  leave.dst = mrouter_of(group);
  send_control_unicast(at, std::move(leave));
}

void Scmp::local_membership_change(GroupId group, bool joined) {
  const double now = net().now();
  const graph::NodeId root = mrouter_of(group);
  if (joined) {
    db_.start_session(group, now);
    db_.record_join(group, root, now);
    if (epoch_enabled()) {
      epoch_enqueue(group);
      return;
    }
    tree_for(group).join(root);
  } else {
    db_.record_leave(group, root, now);
    if (epoch_enabled()) {
      epoch_enqueue(group);
      return;
    }
    tree_for(group).leave(root);
  }
}

// ---------------------------------------------------------------------------
// m-router side (paper §III-D/§III-E).
// ---------------------------------------------------------------------------

void Scmp::mrouter_handle_join(GroupId group, graph::NodeId requester,
                               std::uint64_t req) {
  // The span covers the m-router's whole JOIN turnaround: DCDM admission,
  // diffing, and handing the install packets to the network.
  OBS_SPAN("scmp.join");
  static obs::Counter& joins = obs::counter("scmp.joins");
  joins.inc();
  const double now = net().now();
  obs::flight_record(obs::FlightEventKind::kHandle, now, req, "JOIN", group,
                     requester, mrouter_of(group));
  db_.start_session(group, now);
  db_.record_join(group, requester, now, req);

  if (epoch_enabled()) {
    // Batched mode: the database record above keeps billing / dedup /
    // session semantics identical, but the tree work is deferred to the
    // epoch close where the group gets one net-resolved recomputation.
    epoch_enqueue(group);
    return;
  }

  DcdmTree& t = tree_for(group);

  // Snapshot the children sets so a loop-eliminating join can be installed
  // as a minimal diff (BRANCH + targeted detaches) instead of a full tree.
  std::vector<std::vector<graph::NodeId>> old_children;
  if (!cfg_.always_full_tree) {
    old_children.resize(static_cast<std::size_t>(net().graph().num_nodes()));
    for (graph::NodeId v : t.tree().on_tree_nodes())
      old_children[static_cast<std::size_t>(v)] = t.tree().children(v);
  }

  const JoinResult res = t.join(requester);
  obs::flight_record(obs::FlightEventKind::kCompute, now, req, "DCDM", group,
                     requester, mrouter_of(group));
  if (!res.is_new_member || res.already_on_tree) return;  // no topology change

  const std::uint64_t version = next_install_version(group);
  if (cfg_.always_full_tree) {
    install_full_tree(group, res.removed_nodes, version);
    return;
  }
  if (res.restructured) {
    // Routers that fell off the tree drop their entries; surviving routers
    // that lost a child (the re-parented node or a pruned chain head) detach
    // it. Child *additions* all lie on the new branch, which the BRANCH
    // packet installs, including the re-parented node's new upstream.
    const graph::NodeId root = mrouter_of(group);
    for (graph::NodeId r : res.removed_nodes)
      send_clear(group, r, {}, version);
    for (graph::NodeId v = 0; v < net().graph().num_nodes(); ++v) {
      const auto& before = old_children[static_cast<std::size_t>(v)];
      if (before.empty() || v == root || !t.tree().on_tree(v)) continue;
      const auto& after = t.tree().children(v);
      for (graph::NodeId c : before) {
        if (std::find(after.begin(), after.end(), c) == after.end())
          send_clear(group, v, {c}, version);
      }
    }
  }
  install_branch(group, requester, version);
}

void Scmp::send_clear(GroupId group, graph::NodeId target,
                      std::vector<graph::NodeId> detach,
                      std::uint64_t version) {
  const graph::NodeId root = mrouter_of(group);
  if (target == root) return;  // the anchor holds no Entry for its group
  sim::Packet clear;
  clear.type = sim::PacketType::kClear;
  clear.group = group;
  clear.src = root;
  clear.dst = target;
  clear.uid = version;
  clear.path = std::move(detach);  // empty = drop entry, else detach children
  send_control_unicast(root, std::move(clear));
}

void Scmp::set_session_idle_expiry(double idle_seconds) {
  SCMP_EXPECTS(idle_seconds >= 0.0);
  session_idle_expiry_ = idle_seconds;
}

void Scmp::mrouter_handle_leave(GroupId group, graph::NodeId requester) {
  OBS_SPAN("scmp.leave");
  static obs::Counter& leaves = obs::counter("scmp.leaves");
  leaves.inc();
  obs::flight_record(obs::FlightEventKind::kHandle, net().now(),
                     obs::current_cause(), "LEAVE", group, requester,
                     mrouter_of(group));
  db_.record_leave(group, requester, net().now());
  if (epoch_enabled()) {
    epoch_enqueue(group);
  } else {
    tree_for(group).leave(requester);
  }
  // The physical prune travels hop-by-hop from the leaving DR (§III-C); the
  // m-router only updates its authoritative copy.

  // Session lifecycle policy (§II-C): an abandoned session expires after the
  // configured idle time unless someone rejoins in the meantime.
  if (session_idle_expiry_ > 0.0 && db_.members_of(group).empty()) {
    const double emptied_at = net().now();
    net().queue().schedule_in(session_idle_expiry_, [this, group,
                                                     emptied_at]() {
      if (!db_.session_active(group)) return;
      if (!db_.members_of(group).empty()) return;  // someone rejoined
      // Still empty: confirm no membership event happened since.
      for (auto it = db_.membership_log().rbegin();
           it != db_.membership_log().rend(); ++it) {
        if (it->group != group) continue;
        if (it->time > emptied_at) return;  // churned meanwhile
        break;
      }
      end_group_session(group);
    });
  }
}

void Scmp::install_branch(GroupId group, graph::NodeId member,
                          std::uint64_t version) {
  OBS_SPAN("scmp.install.branch");
  const graph::MulticastTree& tree = tree_for(group).tree();
  SCMP_EXPECTS(tree.on_tree(member));
  const std::vector<graph::NodeId> path = tree.path_from_root(member);
  if (path.size() < 2) return;  // member is the anchoring m-router itself
  static obs::Counter& installs = obs::counter("scmp.installs.branch");
  installs.inc();
  for (std::size_t i = 1; i < path.size(); ++i)
    ever_installed_[group].insert(path[i]);

  sim::Packet branch;
  branch.type = sim::PacketType::kBranch;
  branch.group = group;
  branch.src = path.front();
  branch.uid = version;
  branch.path = path;
  branch.size_bytes = sim::kControlPacketBytes + 4 * path.size();
  send_control_link(path.front(), path[1], std::move(branch));
}

void Scmp::install_full_tree(GroupId group,
                             const std::vector<graph::NodeId>& removed,
                             std::uint64_t version) {
  OBS_SPAN("scmp.install.tree");
  static obs::Counter& installs = obs::counter("scmp.installs.tree");
  installs.inc();
  const graph::MulticastTree& tree = tree_for(group).tree();
  const graph::NodeId root = mrouter_of(group);
  for (graph::NodeId v : tree.on_tree_nodes())
    if (v != root) ever_installed_[group].insert(v);

  // Routers that fell off the tree drop their entries.
  for (graph::NodeId r : removed) {
    SCMP_ASSERT(!tree.on_tree(r));
    send_clear(group, r, {}, version);
  }

  // One self-routing TREE packet per subtree hanging off the root (§III-E).
  for (graph::NodeId child : tree.children(root)) {
    const TreeWords words = encode_subtree(tree, child);
    sim::Packet tp;
    tp.type = sim::PacketType::kTree;
    tp.group = group;
    tp.src = root;
    tp.uid = version;
    tp.payload = to_bytes(words);
    tp.size_bytes = sim::kControlPacketBytes + tp.payload.size();
    send_control_link(root, child, std::move(tp));
  }
}

void Scmp::end_group_session(GroupId group) {
  const auto it = trees_.find(group);
  if (it == trees_.end()) return;
  if (convergence() != nullptr) convergence()->note_event(group);
  const graph::NodeId root = mrouter_of(group);
  const std::uint64_t version = next_install_version(group);
  for (graph::NodeId v : ever_installed_[group]) {
    if (v != root) send_clear(group, v, {}, version);
  }
  ever_installed_.erase(group);
  senders_.erase(group);
  trees_.erase(it);
  if (db_.session_active(group)) db_.end_session(group, net().now());
}

void Scmp::refresh_group(GroupId group) {
  const auto it = trees_.find(group);
  if (it == trees_.end()) return;
  if (convergence() != nullptr) convergence()->note_event(group);
  const graph::NodeId root = mrouter_of(group);
  const std::uint64_t version = next_install_version(group);
  // Anti-entropy: routers that held install state since the last refresh but
  // are off the current tree get cleared; the tree itself is re-announced.
  const graph::MulticastTree& tree = it->second.tree();
  std::set<graph::NodeId> current;
  for (graph::NodeId v : tree.on_tree_nodes()) current.insert(v);
  // ever_installed_ stays cumulative: without acknowledgements the m-router
  // cannot know a CLEAR was applied (it may have lost a version race), so
  // every refresh re-clears all ever-installed off-tree routers.
  for (graph::NodeId v : ever_installed_[group]) {
    if (v != root && !current.contains(v)) send_clear(group, v, {}, version);
  }
  install_full_tree(group, {}, version);
}

// ---------------------------------------------------------------------------
// Soft-state reconciliation (the control-plane analogue of the IGMP query
// cycle): the m-router diffs per-group state digests against the domain's
// ground truth and repairs divergence left behind by lost control packets —
// including requests the retransmission budget abandoned.
// ---------------------------------------------------------------------------

int Scmp::resolicit_membership() {
  static obs::Counter& resolicits = obs::counter("scmp.reconcile.resolicits");
  int count = 0;
  std::set<GroupId> groups;
  for (GroupId g : igmp().groups_with_members()) groups.insert(g);
  for (GroupId g : active_groups()) groups.insert(g);
  for (GroupId g : groups) {
    const graph::NodeId root = mrouter_of(g);
    const auto actual_vec = igmp().member_routers(g);
    const std::set<graph::NodeId> actual(actual_vec.begin(), actual_vec.end());
    // Copy: the m-router-local transitions below mutate the live set.
    const std::set<graph::NodeId> recorded = db_.members_of(g);

    for (graph::NodeId r : actual) {
      if (recorded.contains(r)) continue;
      // The DR's JOIN never registered (lost, or its retries ran out): the
      // soft-state probe makes it re-report its membership.
      ++count;
      if (r == root) {
        local_membership_change(g, /*joined=*/true);
        continue;
      }
      sim::Packet join;
      join.type = sim::PacketType::kJoin;
      join.group = g;
      join.src = r;
      join.dst = root;
      send_control_unicast(r, std::move(join));
    }
    for (graph::NodeId r : recorded) {
      if (actual.contains(r)) continue;
      // The DR's LEAVE never registered: it re-announces its departure.
      ++count;
      if (r == root) {
        local_membership_change(g, /*joined=*/false);
        continue;
      }
      Entry* e = mutable_entry_at(r, g);
      if (e != nullptr && e->downstream_routers.empty()) {
        // Stale leaf: redo the whole exit (PRUNE upstream + LEAVE).
        send_prune_and_leave(r, g);
        continue;
      }
      sim::Packet leave;
      leave.type = sim::PacketType::kLeave;
      leave.group = g;
      leave.src = r;
      leave.dst = root;
      send_control_unicast(r, std::move(leave));
    }
  }
  resolicits.inc(static_cast<std::uint64_t>(count));
  return count;
}

int Scmp::repair_installed_state() {
  static obs::Counter& repair_counter = obs::counter("scmp.reconcile.repairs");
  int repairs = 0;
  // Candidates: every live session plus every group some i-router still
  // holds an entry for (orphans of an ended or restructured session).
  std::set<GroupId> groups;
  for (GroupId g : active_groups()) groups.insert(g);
  for (GroupId g : groups_with_installed_state()) groups.insert(g);
  const graph::NodeId n = net().graph().num_nodes();

  for (GroupId g : groups) {
    const graph::NodeId root = mrouter_of(g);
    const auto tit = trees_.find(g);
    const graph::MulticastTree* tree =
        tit == trees_.end() ? nullptr : &tit->second.tree();

    // Digest diff against the authoritative tree.
    std::vector<graph::NodeId> orphaned;  // entry but off-tree: drop it
    std::map<graph::NodeId, std::vector<graph::NodeId>> extra_children;
    std::set<graph::NodeId> divergent;  // on-tree, digest wrong or missing
    for (graph::NodeId v = 0; v < n; ++v) {
      const Entry* e = entry_at(v, g);
      const bool on_tree = tree != nullptr && v != root && tree->on_tree(v);
      if (!on_tree) {
        if (e != nullptr) orphaned.push_back(v);
        continue;
      }
      const auto& kids = tree->children(v);
      const std::set<graph::NodeId> want(kids.begin(), kids.end());
      if (e == nullptr) {
        divergent.insert(v);
        continue;
      }
      if (e->upstream != tree->parent(v)) divergent.insert(v);
      for (graph::NodeId c : want) {
        if (!e->downstream_routers.contains(c)) divergent.insert(v);
      }
      std::vector<graph::NodeId> extras;
      for (graph::NodeId c : e->downstream_routers) {
        if (!want.contains(c)) extras.push_back(c);
      }
      if (!extras.empty()) extra_children.emplace(v, std::move(extras));
    }
    if (orphaned.empty() && extra_children.empty() && divergent.empty())
      continue;

    // One install operation per group per pass versions every repair.
    const std::uint64_t version = next_install_version(g);
    const double now = net().now();
    for (graph::NodeId v : orphaned) {
      obs::flight_record(obs::FlightEventKind::kRepair, now, 0, "clear", g,
                         root, v);
      send_clear(g, v, {}, version);
      ++repairs;
    }
    for (auto& [v, extras] : extra_children) {
      obs::flight_record(obs::FlightEventKind::kRepair, now, 0, "detach", g,
                         root, v);
      send_clear(g, v, std::move(extras), version);
      ++repairs;
    }
    if (!divergent.empty()) {
      SCMP_ASSERT(tree != nullptr);
      // Reinstall the root path of every member it crosses a divergent
      // router on: the BRANCH rewrites upstream + downstream of each hop en
      // route and terminates at a member DR, so it can never trigger the
      // terminal-relay prune cascade a truncated reinstall could.
      for (graph::NodeId m : db_.members_of(g)) {
        if (m == root || !tree->on_tree(m)) continue;
        const std::vector<graph::NodeId> path = tree->path_from_root(m);
        const bool crosses =
            std::any_of(path.begin(), path.end(), [&](graph::NodeId v) {
              return divergent.contains(v);
            });
        if (!crosses) continue;
        obs::flight_record(obs::FlightEventKind::kRepair, now, 0, "branch", g,
                           root, m);
        install_branch(g, m, version);
        ++repairs;
      }
    }
  }
  repair_counter.inc(static_cast<std::uint64_t>(repairs));
  return repairs;
}

int Scmp::reconcile_all() {
  OBS_SPAN("scmp.reconcile");
  const int resolicited = resolicit_membership();
  const int repaired = repair_installed_state();
  // A clean pass (nothing to repair) is the moment a group whose install
  // packets were all lost finally proves consistent: resolve pending
  // convergence measurements that no packet arrival will ever check.
  if (convergence() != nullptr) {
    for (GroupId g : convergence()->pending_groups()) check_convergence(g);
  }
  return resolicited + repaired;
}

void Scmp::check_convergence(GroupId group) {
  proto::ConvergenceTracker* c = convergence();
  if (c == nullptr || !c->is_pending(group)) return;
  c->check(group, network_state_consistent(group));
}

void Scmp::start_reconciliation(double interval, double horizon) {
  SCMP_EXPECTS(interval > 0.0);
  // Mirrors igmp::IgmpDomain::start_query_cycle: one tick per interval until
  // the horizon passes.
  if (net().now() + interval > horizon) return;
  net().queue().schedule_in(interval, [this, interval, horizon]() {
    static obs::Counter& cycles = obs::counter("scmp.reconcile.cycles");
    cycles.inc();
    reconcile_all();
    start_reconciliation(interval, horizon);
  });
}

// ---------------------------------------------------------------------------
// Epoch-batched membership pipeline: a flash crowd of JOIN/LEAVE arrivals is
// coalesced per epoch — O(epochs × touched groups) DCDM recomputations
// instead of O(events) — and installed with one versioned wave per group
// (the nox mcrouteinstaller pattern: coalesce, recompute once, install).
// ---------------------------------------------------------------------------

void Scmp::set_epoch_interval(double seconds) {
  SCMP_EXPECTS(seconds >= 0.0);
  epoch_interval_ = seconds;
}

void Scmp::epoch_enqueue(GroupId group) {
  static obs::Counter& deferred = obs::counter("scmp.epoch.deferred");
  deferred.inc();
  epoch_touched_.insert(group);
  if (epoch_flush_scheduled_) return;
  // One-shot close, scheduled only while work is pending: the event queue
  // stays drainable (a periodic tick would never let run_all terminate), and
  // a drained queue implies every deferred membership change was flushed.
  epoch_flush_scheduled_ = true;
  net().queue().schedule_in(epoch_interval_, [this]() { flush_epoch(); });
}

void Scmp::flush_epoch() {
  OBS_SPAN("scmp.epoch.flush");
  static obs::Counter& flushes = obs::counter("scmp.epoch.flushes");
  static obs::Counter& recomputes = obs::counter("scmp.epoch.recomputes");
  static obs::Counter& coalesced = obs::counter("scmp.epoch.coalesced");
  epoch_flush_scheduled_ = false;
  if (epoch_touched_.empty()) return;
  flushes.inc();
  // std::set iteration = ascending group order: the batch handed to
  // rebuild_trees is deterministic regardless of arrival interleaving.
  std::vector<GroupId> changed;
  changed.reserve(epoch_touched_.size());
  for (GroupId group : epoch_touched_) {
    if (!db_.session_active(group) && !trees_.contains(group))
      continue;  // session ended mid-epoch (idle expiry raced the close)
    // Net resolution: a member that joined and left (or left and rejoined)
    // within the epoch cancels out. Only groups whose database membership
    // differs from the authoritative tree's member set need a recomputation.
    const auto& want = db_.members_of(group);
    const std::vector<graph::NodeId> have = tree_for(group).tree().members();
    if (std::equal(have.begin(), have.end(), want.begin(), want.end())) {
      coalesced.inc();
      continue;
    }
    changed.push_back(group);
  }
  epoch_touched_.clear();
  if (changed.empty()) return;
  recomputes.inc(static_cast<std::uint64_t>(changed.size()));
  // One DCDM recomputation and one versioned install wave per net-changed
  // group, in parallel across groups when a pool is registered. Arrivals
  // during the wave open a fresh epoch.
  rebuild_trees(changed, pool_);
}

void Scmp::rebuild_trees(const std::vector<GroupId>& groups,
                         const TreeComputePool* pool) {
  OBS_SPAN("scmp.rebuild");
  if (convergence() != nullptr) {
    for (GroupId group : groups) convergence()->note_event(group);
  }
  // Rebuild the given groups' trees from the membership database — on the
  // compute pool's worker threads when one is provided (per-group rebuilds
  // are independent, §II-B), serially otherwise. Join order is the
  // database's sorted member order in both paths, so the two produce
  // identical trees. Groups are partitioned by their anchoring m-router.
  std::map<GroupId, DcdmTree> rebuilt;
  if (pool != nullptr) {
    std::map<graph::NodeId, std::vector<GroupMembership>> jobs_by_root;
    for (GroupId group : groups) {
      GroupMembership gm;
      gm.group = group;
      const auto& members = db_.members_of(group);
      if (members.empty()) {
        // A memberless session (everyone left, idle expiry pending) rebuilds
        // to the bare root; build_trees requires a non-empty snapshot.
        rebuilt.emplace(group, DcdmTree(net().graph(), paths_,
                                        mrouter_of(group), cfg_.dcdm));
        continue;
      }
      gm.join_order.assign(members.begin(), members.end());
      jobs_by_root[mrouter_of(group)].push_back(std::move(gm));
    }
    for (const auto& [root, jobs] : jobs_by_root) {
      auto built = pool->build_trees(root, jobs, cfg_.dcdm);
      for (auto& [group, tree] : built)
        rebuilt.emplace(group, std::move(tree));
    }
  } else {
    for (GroupId group : groups) {
      DcdmTree fresh(net().graph(), paths_, mrouter_of(group), cfg_.dcdm);
      for (graph::NodeId member : db_.members_of(group)) fresh.join(member);
      rebuilt.emplace(group, std::move(fresh));
    }
  }

  for (GroupId group : groups) {
    auto it = trees_.find(group);
    SCMP_ASSERT(it != trees_.end());
    DcdmTree& old_tree = it->second;
    DcdmTree& fresh = rebuilt.at(group);
    const graph::NodeId root = mrouter_of(group);
    const std::uint64_t version = next_install_version(group);
    // Clear stale state everywhere the new tree will not overwrite it;
    // versioning makes this safe against racing older installs.
    for (graph::NodeId v : ever_installed_[group]) {
      if (v == root || fresh.tree().on_tree(v)) continue;
      send_clear(group, v, {}, version);
    }
    old_tree = std::move(fresh);
    install_full_tree(group, {}, version);
  }
}

void Scmp::fail_over(graph::NodeId failed, graph::NodeId standby,
                     const TreeComputePool* pool) {
  OBS_SPAN("scmp.failover");
  SCMP_EXPECTS(net().graph().valid(standby));
  if (failed == standby) return;
  const auto it = std::find(mrouters_.begin(), mrouters_.end(), failed);
  SCMP_EXPECTS(it != mrouters_.end());
  SCMP_EXPECTS(std::find(mrouters_.begin(), mrouters_.end(), standby) ==
               mrouters_.end());
  *it = standby;  // the published mapping now points at the standby

  // Groups anchored at the failed m-router get rebuilt at the standby.
  std::vector<GroupId> affected;
  for (const auto& [group, tree] : trees_) {
    if (mrouter_of(group) == standby) {
      affected.push_back(group);
      // The standby may have been an ordinary i-router relay for the group;
      // as its new root it forwards from the authoritative tree instead.
      entries_[static_cast<std::size_t>(standby)].erase(group);
    }
  }
  rebuild_trees(affected, pool);
}

std::vector<GroupId> Scmp::rebuild_candidates() const {
  static obs::Counter& skipped = obs::counter("scmp.rebuild.skipped_empty");
  std::vector<GroupId> out;
  out.reserve(trees_.size());
  for (const auto& [group, tree] : trees_) {
    // A memberless session whose tree is already bare (root-only) has
    // nothing a topology change can invalidate: no tree edges, no installed
    // state the rebuild's install wave would touch. Rebuilding it anyway
    // wastes a DCDM run and emits empty-tree install traffic (anti-entropy
    // CLEARs to every ever-installed router). The tree-size check keeps the
    // guard precise in batched mode, where a group can be memberless in the
    // database while its tree still awaits the epoch flush.
    if (db_.members_of(group).empty() && tree.tree().tree_size() == 1) {
      skipped.inc();
      continue;
    }
    out.push_back(group);
  }
  return out;
}

void Scmp::on_topology_change() {
  OBS_SPAN("scmp.topology_change");
  // The m-routers' link-state view reconverged: refresh the global path
  // database (P_sl / P_lc) — on the registered compute pool's workers when
  // one is set (one source per task) — then recompute and reinstall every
  // group tree with live membership.
  paths_.rebuild(net().graph(),
                 pool_ != nullptr ? pool_->parallel_for()
                                  : graph::ParallelFor{});
  rebuild_trees(rebuild_candidates(), pool_);
}

int Scmp::handle_link_event(graph::NodeId u, graph::NodeId v) {
  OBS_SPAN("scmp.link_event");
  // Single-link change: patch the path database incrementally (only dirty
  // sources re-run Dijkstra; the result is bit-identical to a from-scratch
  // rebuild), then recompute and reinstall the group trees as usual.
  const int recomputed = paths_.apply_link_event(
      net().graph(), u, v,
      pool_ != nullptr ? pool_->parallel_for() : graph::ParallelFor{});
  rebuild_trees(rebuild_candidates(), pool_);
  return recomputed;
}

// ---------------------------------------------------------------------------
// i-router side.
// ---------------------------------------------------------------------------

void Scmp::ir_handle_tree(graph::NodeId at, const sim::Packet& pkt,
                          graph::NodeId from) {
  SCMP_EXPECTS(from != graph::kInvalidNode);
  // Install-version gate: never let an older install overwrite newer state
  // or resurrect a cleared entry.
  if (const Entry* existing = entry_at(at, pkt.group);
      existing != nullptr && existing->version > pkt.uid)
    return;
  if (cleared_version_[static_cast<std::size_t>(at)].count(pkt.group) &&
      cleared_version_[static_cast<std::size_t>(at)][pkt.group] > pkt.uid)
    return;
  const TreeWords words = from_bytes(pkt.payload);
  if (!is_well_formed(words)) {
    log_debug("scmp: router ", at, " dropped malformed TREE packet for g",
              pkt.group);
    return;
  }

  Entry fresh;
  fresh.upstream = from;
  fresh.version = pkt.uid;
  const auto ifaces = igmp().member_ifaces(at, pkt.group);
  fresh.downstream_ifaces.insert(ifaces.begin(), ifaces.end());

  for (const TreeChild& child : split_tree_packet(words)) {
    fresh.downstream_routers.insert(child.id);
    sim::Packet sub;
    sub.type = sim::PacketType::kTree;
    sub.group = pkt.group;
    sub.src = pkt.src;
    sub.uid = pkt.uid;  // the split keeps the install version
    sub.payload = to_bytes(child.subpacket);
    sub.size_bytes = sim::kControlPacketBytes + sub.payload.size();
    send_control_link(at, child.id, std::move(sub));
  }
  entries_[static_cast<std::size_t>(at)][pkt.group] = std::move(fresh);
  obs::flight_record(obs::FlightEventKind::kInstalled, net().now(), pkt.req,
                     "TREE", pkt.group, from, at);
}

void Scmp::ir_handle_branch(graph::NodeId at, const sim::Packet& pkt,
                            graph::NodeId from) {
  SCMP_EXPECTS(from != graph::kInvalidNode);
  const auto& path = pkt.path;
  const auto pos = std::find(path.begin(), path.end(), at);
  SCMP_ASSERT(pos != path.end());

  Entry* e = mutable_entry_at(at, pkt.group);
  if (e != nullptr && e->version > pkt.uid) return;  // overtaken install
  auto& tombs = cleared_version_[static_cast<std::size_t>(at)];
  if (e == nullptr && tombs.count(pkt.group) &&
      tombs[pkt.group] > pkt.uid)
    return;  // would resurrect a cleared entry
  if (e == nullptr) {
    Entry fresh;
    e = &(entries_[static_cast<std::size_t>(at)][pkt.group] = std::move(fresh));
  }
  e->version = std::max(e->version, pkt.uid);
  // The BRANCH always arrives over this node's (possibly new, after a loop
  // elimination) tree edge toward the root, so the upstream is authoritative.
  e->upstream = from;
  if (pos + 1 != path.end()) {
    e->downstream_routers.insert(*(pos + 1));
    obs::flight_record(obs::FlightEventKind::kInstalled, net().now(), pkt.req,
                       "BRANCH", pkt.group, from, at);
    // Forwarded under a fresh request uid: each hop retransmits toward its
    // own next hop, so reliability is hop-by-hop like the delivery itself.
    send_control_link(at, *(pos + 1), pkt);
    return;
  }

  // Terminal hop: the new member's DR attaches its marked interfaces.
  const auto ifaces = igmp().member_ifaces(at, pkt.group);
  e->downstream_ifaces.insert(ifaces.begin(), ifaces.end());
  if (e->downstream_ifaces.empty() && e->downstream_routers.empty()) {
    // The hosts already left while the BRANCH was in flight: undo.
    send_prune_and_leave(at, pkt.group);
    return;
  }
  obs::flight_record(obs::FlightEventKind::kInstalled, net().now(), pkt.req,
                     "BRANCH", pkt.group, from, at);
}

void Scmp::ir_handle_prune(graph::NodeId at, const sim::Packet& pkt,
                           graph::NodeId from) {
  SCMP_EXPECTS(from != graph::kInvalidNode);
  if (at == mrouter_of(pkt.group)) {
    // The authoritative copy is updated by the LEAVE message; the PRUNE
    // reaching the root needs no further action.
    return;
  }
  Entry* e = mutable_entry_at(at, pkt.group);
  if (e == nullptr) return;
  e->downstream_routers.erase(from);
  if (e->downstream_routers.empty() && e->downstream_ifaces.empty()) {
    // Relay became a useless leaf; prune continues upstream (§III-C). No
    // LEAVE is sent: a pure relay never joined the group.
    const graph::NodeId up = e->upstream;
    entries_[static_cast<std::size_t>(at)].erase(pkt.group);
    if (up != graph::kInvalidNode) {
      sim::Packet prune;
      prune.type = sim::PacketType::kPrune;
      prune.group = pkt.group;
      prune.src = at;
      send_control_link(at, up, std::move(prune));
    }
  }
}

void Scmp::ir_handle_clear(graph::NodeId at, const sim::Packet& pkt) {
  Entry* e = mutable_entry_at(at, pkt.group);
  if (e != nullptr && e->version > pkt.uid) return;  // overtaken CLEAR
  if (pkt.path.empty()) {
    entries_[static_cast<std::size_t>(at)].erase(pkt.group);
    auto& tomb = cleared_version_[static_cast<std::size_t>(at)][pkt.group];
    tomb = std::max(tomb, pkt.uid);
    return;
  }
  if (e == nullptr) return;
  for (graph::NodeId child : pkt.path) e->downstream_routers.erase(child);
  e->version = std::max(e->version, pkt.uid);
}

// ---------------------------------------------------------------------------
// Data plane (paper §III-F).
// ---------------------------------------------------------------------------

void Scmp::send_data(graph::NodeId source, GroupId group) {
  sim::Packet pkt = make_data_packet(source, group);
  if (source == mrouter_of(group) ||
      mutable_entry_at(source, group) != nullptr) {
    // protocol: fire-and-forget(data traffic is best-effort by design — the
    // paper's reliability machinery covers control packets only (on-tree
    // DATA injection).)
    net().inject(source, std::move(pkt));
    return;
  }
  // Off-tree source: encapsulate in a unicast packet to the m-router.
  pkt.type = sim::PacketType::kDataEncap;
  pkt.dst = mrouter_of(group);
  // protocol: fire-and-forget(data traffic is best-effort by design — the
  // paper's reliability machinery covers control packets only (DATA_ENCAP
  // toward the m-router).)
  net().send_unicast(source, std::move(pkt));
}

void Scmp::forward_data(graph::NodeId at, const sim::Packet& pkt,
                        graph::NodeId from) {
  const graph::NodeId root = mrouter_of(pkt.group);
  std::vector<graph::NodeId> fset;
  if (at == root) {
    const auto it = trees_.find(pkt.group);
    if (it != trees_.end()) {
      const auto& kids = it->second.tree().children(root);
      fset.assign(kids.begin(), kids.end());
    }
    db_.record_data_forwarded(pkt.group, pkt.size_bytes);
    if (pkt.src != graph::kInvalidNode) senders_[pkt.group].insert(pkt.src);
  } else {
    const Entry* e = entry_at(at, pkt.group);
    if (e == nullptr) {
      if (router_is_member(at, pkt.group)) deliver_locally(at, pkt);
      return;
    }
    fset.assign(e->downstream_routers.begin(), e->downstream_routers.end());
    if (e->upstream != graph::kInvalidNode) fset.push_back(e->upstream);
  }

  // The paper's forwarding rule: accept only from F = {upstream} ∪
  // downstream, forward to the rest of F.
  if (from != graph::kInvalidNode &&
      std::find(fset.begin(), fset.end(), from) == fset.end()) {
    return;
  }
  if (router_is_member(at, pkt.group)) deliver_locally(at, pkt);

  // At the anchoring m-router, the configured transit model (fabric stage
  // depth + scheduling) holds the packet before it leaves on the tree.
  const double transit =
      (at == root && transit_model_) ? transit_model_(pkt) : 0.0;
  if (transit > 0.0) {
    net().queue().schedule_in(
        transit, [this, at, from, fset, p = pkt]() {
          for (graph::NodeId next : fset) {
            // protocol: fire-and-forget(data traffic is best-effort by
            // design — the paper's reliability machinery covers control
            // packets only (delayed on-tree DATA fan-out behind the fabric
            // transit model).)
            if (next != from) net().send_link(at, next, net().clone_packet(p));
          }
        });
    return;
  }
  for (graph::NodeId next : fset) {
    // Each branch gets a pooled clone instead of a fresh copy, recycling
    // path/payload capacity released by past deliveries.
    // protocol: fire-and-forget(data traffic is best-effort by design — the
    // paper's reliability machinery covers control packets only (on-tree
    // DATA fan-out).)
    if (next != from) net().send_link(at, next, net().clone_packet(pkt));
  }
}

// ---------------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------------

void Scmp::handle_packet(graph::NodeId at, const sim::Packet& pkt,
                         graph::NodeId from) {
  if (pkt.type == sim::PacketType::kAck) {
    retx_.ack(at, pkt.req);
    return;
  }
  if (pkt.req != 0 && is_scmp_control(pkt.type)) {
    // At-least-once delivery: every copy is (re-)acknowledged — the original
    // ack may have been lost — but only the first copy is processed.
    send_ack(at, pkt, from);
    const auto idx = static_cast<std::size_t>(at);
    if (!seen_req_[idx].insert(pkt.req).second) {
      static obs::Counter& dups = obs::counter("scmp.retx.duplicates");
      dups.inc();
      obs::flight_record(obs::FlightEventKind::kDuplicate, net().now(),
                         pkt.req, control_name(pkt.type), pkt.group, from, at);
      return;
    }
    obs::flight_record(obs::FlightEventKind::kRecv, net().now(), pkt.req,
                       control_name(pkt.type), pkt.group, from, at);
  }
  // Causal scope: flight records appended while this packet is dispatched —
  // including records for new requests sent when forwarding — carry its
  // request id as their cause, chaining hops into one story.
  obs::FlightCause flight_scope(pkt.req);
  switch (pkt.type) {
    case sim::PacketType::kJoin:
      SCMP_ASSERT(at == mrouter_of(pkt.group));
      mrouter_handle_join(pkt.group, pkt.src, pkt.req);
      break;
    case sim::PacketType::kLeave:
      SCMP_ASSERT(at == mrouter_of(pkt.group));
      mrouter_handle_leave(pkt.group, pkt.src);
      break;
    case sim::PacketType::kTree:
      ir_handle_tree(at, pkt, from);
      break;
    case sim::PacketType::kBranch:
      ir_handle_branch(at, pkt, from);
      break;
    case sim::PacketType::kPrune:
      ir_handle_prune(at, pkt, from);
      break;
    case sim::PacketType::kClear:
      ir_handle_clear(at, pkt);
      break;
    case sim::PacketType::kData:
      forward_data(at, pkt, from);
      break;
    case sim::PacketType::kDataEncap: {
      SCMP_ASSERT(at == mrouter_of(pkt.group));
      sim::Packet data = pkt;
      data.type = sim::PacketType::kData;
      data.dst = graph::kInvalidNode;
      forward_data(at, data, graph::kInvalidNode);
      break;
    }
    default:
      // Foreign-protocol traffic arriving through the shared Network
      // plumbing: counted + logged (net.drops.unexpected_type), not a crash.
      drop_unexpected(at, pkt);
      break;
  }
  // Every control packet either mutates installed state (TREE/BRANCH/PRUNE/
  // CLEAR) or the authoritative tree (JOIN/LEAVE); either side of the
  // convergence predicate may have flipped.
  if (is_scmp_control(pkt.type)) check_convergence(pkt.group);
}

bool Scmp::network_state_consistent(GroupId group) const {
  const auto it = trees_.find(group);
  const graph::MulticastTree* tree =
      it == trees_.end() ? nullptr : &it->second.tree();
  const graph::NodeId root = mrouter_of(group);

  for (graph::NodeId v = 0; v < net().graph().num_nodes(); ++v) {
    const Entry* e = entry_at(v, group);
    if (v == root) {
      if (e != nullptr) return false;  // the anchor holds no Entry
      continue;
    }
    const bool should_be_on_tree = tree != nullptr && tree->on_tree(v);
    if (!should_be_on_tree) {
      if (e != nullptr) return false;
      continue;
    }
    if (e == nullptr) return false;
    if (e->upstream != tree->parent(v)) return false;
    const auto& kids = tree->children(v);
    if (e->downstream_routers !=
        std::set<graph::NodeId>(kids.begin(), kids.end()))
      return false;
  }
  return true;
}

}  // namespace scmp::core
