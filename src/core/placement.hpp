// m-router placement heuristics (paper §IV-A): there is no single best
// location, but three rules work well in most cases:
//   Rule 1 — pick the node with the least average shortest-path delay to all
//            other nodes;
//   Rule 2 — pick the node with the largest degree;
//   Rule 3 — pick a node lying on a path whose delay equals the graph
//            diameter (we take the node of that path whose eccentricity
//            along it is smallest, i.e. the path's midpoint).
#pragma once

#include "graph/graph.hpp"
#include "graph/paths.hpp"

namespace scmp::core {

enum class PlacementRule {
  kMinAverageDelay,  ///< rule 1
  kMaxDegree,        ///< rule 2
  kDiameterMidpoint, ///< rule 3
  kFirstNode,        ///< naive baseline (node 0) for the ablation
};

const char* to_string(PlacementRule rule);

/// Chooses an m-router location; deterministic (ties broken by node id).
graph::NodeId place_mrouter(const graph::Graph& g,
                            const graph::AllPairsPaths& paths,
                            PlacementRule rule);

}  // namespace scmp::core
