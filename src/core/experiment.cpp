#include "core/experiment.hpp"

#include "core/scmp.hpp"
#include "protocols/cbt.hpp"
#include "protocols/dvmrp.hpp"
#include "protocols/mospf.hpp"
#include "protocols/pimsm.hpp"
#include "util/contracts.hpp"

namespace scmp::core {

const char* to_string(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kScmp: return "SCMP";
    case ProtocolKind::kDvmrp: return "DVMRP";
    case ProtocolKind::kMospf: return "MOSPF";
    case ProtocolKind::kCbt: return "CBT";
    case ProtocolKind::kPimSm: return "PIM-SM";
  }
  return "unknown";
}

ScenarioHarness::ScenarioHarness(ProtocolKind kind, const graph::Graph& g,
                                 const ScenarioConfig& cfg) {
  SCMP_EXPECTS(g.valid(cfg.mrouter));
  SCMP_EXPECTS(cfg.group >= 0);
  network_ = std::make_unique<sim::Network>(g, queue_);
  igmp_ = std::make_unique<igmp::IgmpDomain>(queue_, g.num_nodes());
  switch (kind) {
    case ProtocolKind::kScmp: {
      Scmp::Config sc;
      sc.mrouter = cfg.mrouter;
      sc.dcdm.delay_slack = cfg.dcdm_slack;
      sc.always_full_tree = cfg.scmp_always_full_tree;
      protocol_ = std::make_unique<Scmp>(*network_, *igmp_, sc);
      break;
    }
    case ProtocolKind::kDvmrp:
      protocol_ = std::make_unique<proto::Dvmrp>(*network_, *igmp_,
                                                 cfg.dvmrp_prune_lifetime);
      break;
    case ProtocolKind::kMospf:
      protocol_ = std::make_unique<proto::Mospf>(*network_, *igmp_);
      break;
    case ProtocolKind::kCbt: {
      auto cbt = std::make_unique<proto::Cbt>(*network_, *igmp_);
      cbt->set_core(cfg.group, cfg.mrouter);
      protocol_ = std::move(cbt);
      break;
    }
    case ProtocolKind::kPimSm: {
      auto pim = std::make_unique<proto::PimSm>(*network_, *igmp_,
                                                cfg.pimsm_spt_switchover);
      pim->set_rp(cfg.group, cfg.mrouter);
      protocol_ = std::move(pim);
      break;
    }
  }
}

ScenarioHarness::~ScenarioHarness() = default;

void ScenarioHarness::schedule(const ScenarioConfig& cfg) {
  // Staggered joins: one host per member router, iface 0.
  double t = cfg.join_spacing;
  for (graph::NodeId member : cfg.members) {
    queue_.schedule_at(t, [this, member, group = cfg.group]() {
      protocol_->host_join(member, group);
    });
    t += cfg.join_spacing;
  }
  for (const auto& [when, router] : cfg.leaves) {
    queue_.schedule_at(when, [this, router, group = cfg.group]() {
      protocol_->host_leave(router, group);
    });
  }
  if (cfg.source != graph::kInvalidNode && cfg.data_interval > 0.0) {
    for (double ts = cfg.data_start; ts <= cfg.duration;
         ts += cfg.data_interval) {
      queue_.schedule_at(ts, [this, src = cfg.source, group = cfg.group]() {
        protocol_->send_data(src, group);
        ++data_sent_;
      });
    }
  }
}

ScenarioResult run_scenario(ProtocolKind kind, const graph::Graph& g,
                            const ScenarioConfig& cfg) {
  ScenarioHarness harness(kind, g, cfg);
  harness.schedule(cfg);
  harness.queue().run_until(cfg.duration);
  harness.queue().run_all();  // drain in-flight packets past the horizon

  ScenarioResult result;
  result.protocol = to_string(kind);
  result.stats = harness.network().stats();
  result.data_packets_sent = harness.data_packets_sent();
  result.igmp_messages = harness.igmp().igmp_message_count();
  return result;
}

}  // namespace scmp::core
