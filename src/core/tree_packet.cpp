#include "core/tree_packet.hpp"

#include "util/contracts.hpp"

namespace scmp::core {

TreeWords encode_subtree(const graph::MulticastTree& tree,
                         graph::NodeId subtree_root) {
  const auto& children = tree.children(subtree_root);
  TreeWords words;
  words.push_back(static_cast<std::uint32_t>(children.size()));
  for (graph::NodeId child : children) {
    const TreeWords sub = encode_subtree(tree, child);
    words.push_back(static_cast<std::uint32_t>(child));
    words.push_back(static_cast<std::uint32_t>(sub.size()));
    words.insert(words.end(), sub.begin(), sub.end());
  }
  return words;
}

namespace {

/// Validates the packet occupying words[pos, pos+len); returns false on any
/// structural violation.
bool well_formed_range(const TreeWords& words, std::size_t pos,
                       std::size_t len) {
  if (len == 0) return false;  // a packet is at least its child count
  const std::size_t end = pos + len;
  const std::uint32_t k = words[pos];
  std::size_t cur = pos + 1;
  for (std::uint32_t i = 0; i < k; ++i) {
    if (cur + 2 > end) return false;  // child id + length must fit
    const std::size_t sub_len = words[cur + 1];
    cur += 2;
    if (sub_len > end - cur) return false;
    if (!well_formed_range(words, cur, sub_len)) return false;
    cur += sub_len;
  }
  return cur == end;  // no trailing garbage
}

}  // namespace

bool is_well_formed(const TreeWords& words) {
  return well_formed_range(words, 0, words.size());
}

std::vector<TreeChild> split_tree_packet(const TreeWords& words) {
  SCMP_EXPECTS(!words.empty());
  const std::uint32_t k = words[0];
  std::vector<TreeChild> out;
  out.reserve(k);
  std::size_t pos = 1;
  for (std::uint32_t i = 0; i < k; ++i) {
    SCMP_EXPECTS(pos + 2 <= words.size());
    TreeChild child;
    child.id = static_cast<graph::NodeId>(words[pos]);
    const std::size_t len = words[pos + 1];
    pos += 2;
    SCMP_EXPECTS(pos + len <= words.size());
    child.subpacket.assign(words.begin() + static_cast<std::ptrdiff_t>(pos),
                           words.begin() + static_cast<std::ptrdiff_t>(pos + len));
    pos += len;
    out.push_back(std::move(child));
  }
  SCMP_EXPECTS(pos == words.size());
  return out;
}

std::vector<std::pair<graph::NodeId, graph::NodeId>> decode_edges(
    const TreeWords& words, graph::NodeId recipient) {
  std::vector<std::pair<graph::NodeId, graph::NodeId>> edges;
  for (const TreeChild& child : split_tree_packet(words)) {
    edges.emplace_back(child.id, recipient);
    const auto sub = decode_edges(child.subpacket, child.id);
    edges.insert(edges.end(), sub.begin(), sub.end());
  }
  return edges;
}

int node_count(const TreeWords& words) {
  int total = 0;
  for (const TreeChild& child : split_tree_packet(words))
    total += 1 + node_count(child.subpacket);
  return total;
}

std::vector<std::uint8_t> to_bytes(const TreeWords& words) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(words.size() * 4);
  for (std::uint32_t w : words) {
    bytes.push_back(static_cast<std::uint8_t>(w & 0xff));
    bytes.push_back(static_cast<std::uint8_t>((w >> 8) & 0xff));
    bytes.push_back(static_cast<std::uint8_t>((w >> 16) & 0xff));
    bytes.push_back(static_cast<std::uint8_t>((w >> 24) & 0xff));
  }
  return bytes;
}

TreeWords from_bytes(const std::vector<std::uint8_t>& bytes) {
  SCMP_EXPECTS(bytes.size() % 4 == 0);
  TreeWords words;
  words.reserve(bytes.size() / 4);
  for (std::size_t i = 0; i < bytes.size(); i += 4) {
    words.push_back(static_cast<std::uint32_t>(bytes[i]) |
                    (static_cast<std::uint32_t>(bytes[i + 1]) << 8) |
                    (static_cast<std::uint32_t>(bytes[i + 2]) << 16) |
                    (static_cast<std::uint32_t>(bytes[i + 3]) << 24));
  }
  return words;
}

}  // namespace scmp::core
