#include "core/placement.hpp"

#include <algorithm>

namespace scmp::core {

const char* to_string(PlacementRule rule) {
  switch (rule) {
    case PlacementRule::kMinAverageDelay: return "min-avg-delay";
    case PlacementRule::kMaxDegree: return "max-degree";
    case PlacementRule::kDiameterMidpoint: return "diameter-midpoint";
    case PlacementRule::kFirstNode: return "first-node";
  }
  return "unknown";
}

namespace {

graph::NodeId min_average_delay(const graph::Graph& g,
                                const graph::AllPairsPaths& paths) {
  graph::NodeId best = 0;
  double best_sum = graph::kUnreachable;
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    double sum = 0.0;
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v)
      if (v != u) sum += paths.sl_delay(u, v);
    if (sum < best_sum) {
      best_sum = sum;
      best = u;
    }
  }
  return best;
}

graph::NodeId max_degree(const graph::Graph& g) {
  graph::NodeId best = 0;
  for (graph::NodeId u = 1; u < g.num_nodes(); ++u)
    if (g.degree(u) > g.degree(best)) best = u;
  return best;
}

graph::NodeId diameter_midpoint(const graph::Graph& g,
                                const graph::AllPairsPaths& paths) {
  // Find the endpoint pair realising the delay diameter.
  graph::NodeId a = 0, b = 0;
  double diameter = -1.0;
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    for (graph::NodeId v = u + 1; v < g.num_nodes(); ++v) {
      const double d = paths.sl_delay(u, v);
      if (d > diameter) {
        diameter = d;
        a = u;
        b = v;
      }
    }
  }
  // Midpoint: the node on the diameter path minimising its worse distance to
  // the two endpoints.
  const std::vector<graph::NodeId> path = paths.sl_path(a, b);
  graph::NodeId best = a;
  double best_ecc = graph::kUnreachable;
  for (graph::NodeId v : path) {
    const double ecc = std::max(paths.sl_delay(v, a), paths.sl_delay(v, b));
    if (ecc < best_ecc) {
      best_ecc = ecc;
      best = v;
    }
  }
  return best;
}

}  // namespace

graph::NodeId place_mrouter(const graph::Graph& g,
                            const graph::AllPairsPaths& paths,
                            PlacementRule rule) {
  SCMP_EXPECTS(g.num_nodes() > 0);
  switch (rule) {
    case PlacementRule::kMinAverageDelay: return min_average_delay(g, paths);
    case PlacementRule::kMaxDegree: return max_degree(g);
    case PlacementRule::kDiameterMidpoint: return diameter_midpoint(g, paths);
    case PlacementRule::kFirstNode: return 0;
  }
  return 0;
}

}  // namespace scmp::core
