// Reliable delivery for the SCMP control plane: a per-endpoint
// retransmission table. Every reliably-sent control packet (JOIN / LEAVE /
// TREE / BRANCH / PRUNE / CLEAR) carries a request uid (sim::Packet::req);
// the sender arms an entry here and the receiver answers with an ACK packet
// carrying the same uid. Unacknowledged requests are retransmitted with
// exponential backoff until a bounded retry budget runs out, at which point
// the request is abandoned gracefully (counter + debug log — the periodic
// soft-state reconciliation pass re-solicits whatever state the lost packet
// carried; see Scmp::reconcile_all).
//
// Modeled on HPIM-DM's sequence-numbered control-message reliability
// (PAPERS.md): acks + retransmission give at-least-once delivery, and the
// receiver-side dedup by request uid (kept in Scmp, which owns per-router
// state) plus SCMP's existing install versioning give idempotency.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "graph/graph.hpp"
#include "sim/event_queue.hpp"

namespace scmp::core {

struct RetxConfig {
  /// Off by default: the control plane stays fire-and-forget and the packet
  /// streams stay bit-identical to the unreliable protocol.
  bool enabled = false;
  /// Seconds before the first retransmission. Must exceed the worst-case
  /// control round-trip or zero-loss runs retransmit spuriously (the default
  /// covers the evaluation topologies' diameters with margin).
  double timeout = 5.0;
  double backoff = 2.0;  ///< timeout multiplier per retransmission
  /// Retransmissions after the original send before giving up.
  int max_retries = 4;
};

/// Retransmission state of every in-flight reliable request, grouped by the
/// sending endpoint (each router retransmits its own requests; the table is
/// centralised only because the simulation hosts all routers in one object).
class RetxTable {
 public:
  RetxTable(sim::EventQueue& queue, RetxConfig cfg);

  const RetxConfig& config() const { return cfg_; }

  /// Fresh request uid (never 0; 0 marks fire-and-forget packets).
  std::uint64_t next_req() { return ++req_counter_; }

  /// Arms retransmission of request `req` sent by `sender`. `resend` is
  /// invoked for every retransmission; it must repeat the original packet
  /// (same req) so the receiver can dedup. No-op unless enabled.
  void arm(graph::NodeId sender, std::uint64_t req,
           std::function<void()> resend);

  /// Acknowledges `req` at `sender`: the pending entry (if any) is retired
  /// and its outstanding timer becomes a no-op.
  void ack(graph::NodeId sender, std::uint64_t req);

  bool pending(graph::NodeId sender, std::uint64_t req) const;
  std::size_t pending_count() const;

  /// Most entries ever simultaneously pending — the table's high-water mark.
  /// A join storm under loss grows the table to O(in-flight requests); the
  /// mark (mirrored to the scmp.retx.pending_hwm gauge) bounds that growth
  /// and regression tests assert the table drains back to zero after
  /// reconciliation.
  std::size_t pending_hwm() const { return pending_hwm_; }

  // Lifetime totals (plain counters for tests; obs mirrors them).
  std::uint64_t retransmissions() const { return retransmissions_; }
  std::uint64_t acked() const { return acked_; }
  std::uint64_t exhausted() const { return exhausted_; }

 private:
  struct Pending {
    int attempts = 0;  ///< retransmissions already sent
    double next_timeout = 0.0;
    std::function<void()> resend;
  };

  void schedule_timer(graph::NodeId sender, std::uint64_t req, double delay);

  sim::EventQueue* queue_;
  RetxConfig cfg_;
  std::map<graph::NodeId, std::map<std::uint64_t, Pending>> by_sender_;
  std::size_t live_ = 0;  ///< entries currently pending (all senders)
  std::size_t pending_hwm_ = 0;
  std::uint64_t req_counter_ = 0;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t acked_ = 0;
  std::uint64_t exhausted_ = 0;
};

}  // namespace scmp::core
