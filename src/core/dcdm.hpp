// DCDM — Delay Constrained Dynamic Multicast (paper §III-D, and its
// reference [20]): the incremental tree algorithm SCMP's m-router runs.
//
// On a join of member s the algorithm considers, for every node t already on
// the tree, the two precomputed paths P_lc(t,s) (least cost) and P_sl(t,s)
// (shortest delay) — 2m candidates — and grafts the cheapest one that keeps
// s's multicast delay within the delay bound. If the chosen path re-enters
// the tree, the loop is broken by re-parenting the re-entered node and
// pruning its old upstream branch (Fig. 5). On a leave, the branch to the
// leaving member is pruned and the rest of the tree is left intact.
//
// The delay bound generalises the paper's dynamic rule with a slack factor
// for Fig. 7's three constraint levels:
//   bound = max(slack * max_{v in members} ul(v), current tree delay)
// slack = 1 reproduces the paper's rule exactly (the "tightest" level:
// a new member with ul > tree delay raises the bound to its ul, i.e. takes
// its shortest-delay path); slack = infinity is the "loosest" level (pure
// greedy cost minimisation).
#pragma once

#include <limits>
#include <vector>

#include "graph/graph.hpp"
#include "graph/multicast_tree.hpp"
#include "graph/paths.hpp"

namespace scmp::core {

struct DcdmConfig {
  /// Delay-constraint slack: 1 = tightest, infinity = loosest (see above).
  double delay_slack = 1.0;
};

inline constexpr double kLoosest = std::numeric_limits<double>::infinity();

struct JoinResult {
  bool is_new_member = false;    ///< false when s was already a member
  bool already_on_tree = false;  ///< s was a relay node; no graft needed
  std::vector<graph::NodeId> graft_path;  ///< chosen path (graft node first)
  bool restructured = false;     ///< loop elimination re-parented some node
  std::vector<graph::NodeId> removed_nodes;  ///< pruned by loop elimination
};

struct LeaveResult {
  bool was_member = false;
  std::vector<graph::NodeId> removed_nodes;  ///< pruned branch (includes s when removed)
};

class DcdmTree {
 public:
  DcdmTree(const graph::Graph& g, const graph::AllPairsPaths& paths,
           graph::NodeId root, DcdmConfig cfg = {});

  JoinResult join(graph::NodeId s);
  LeaveResult leave(graph::NodeId s);

  const graph::MulticastTree& tree() const { return tree_; }
  graph::NodeId root() const { return tree_.root(); }

  /// Unicast delay ul(v): shortest-delay distance from the root.
  double unicast_delay(graph::NodeId v) const;
  /// Current delay bound the next join must respect.
  double delay_bound_for(graph::NodeId joining) const;

  /// The delay bound `m` was admitted under: the bound in force at its join,
  /// raised to its new multicast delay whenever a later loop-eliminating
  /// restructure re-parents its root path (the dynamic rule's bound grows
  /// with the tree delay, so a restructure re-admits the members it moves).
  /// This is the per-member constraint the verification auditor holds every
  /// tree mutation to. Requires `m` to be a current member.
  double admitted_bound(graph::NodeId m) const;

  double tree_cost() const { return tree_.tree_cost(*g_); }
  double tree_delay() const { return tree_.tree_delay(*g_); }

 private:
  /// Records `m` as admitted under `bound`; raises stale records of members
  /// whose delay a restructure changed.
  void record_admission(graph::NodeId m, double bound);

  const graph::Graph* g_;
  const graph::AllPairsPaths* paths_;
  DcdmConfig cfg_;
  graph::MulticastTree tree_;
  /// Per-member admitted bound (see admitted_bound); unused slots hold NaN.
  std::vector<double> admitted_bound_;

  // Per-instance scratch, sized once for the graph: join() is the m-router's
  // hot path and must not allocate per call (tools/lint.py hot-path-alloc).
  std::vector<graph::NodeId> scratch_old_parent_;
  std::vector<char> scratch_was_on_tree_;
  /// Pre-graft multicast delay per member; NaN for non-members.
  std::vector<double> scratch_old_delay_;
  /// Winning graft path, materialized once per join via path_to_into().
  std::vector<graph::NodeId> scratch_graft_;
};

}  // namespace scmp::core
