// Shared scenario driver for the network-wide experiments (Fig. 8 / Fig. 9)
// and the integration tests: builds a simulated domain on a given topology,
// instantiates one of the four protocols, replays a membership/traffic
// schedule and returns the paper's metrics.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "igmp/igmp.hpp"
#include "protocols/multicast_protocol.hpp"
#include "sim/network.hpp"

namespace scmp::core {

enum class ProtocolKind {
  kScmp,
  kDvmrp,
  kMospf,
  kCbt,
  /// Extension: the paper names PIM-SM but does not simulate it.
  kPimSm,
};

const char* to_string(ProtocolKind kind);

struct ScenarioConfig {
  proto::GroupId group = 1;
  std::vector<graph::NodeId> members;       ///< routers whose hosts join
  graph::NodeId source = graph::kInvalidNode;  ///< data source router
  graph::NodeId mrouter = 0;                ///< m-router / CBT core / DCDM root

  double join_spacing = 0.05;   ///< seconds between successive joins
  double data_start = 2.0;      ///< first data packet
  double data_interval = 1.0;   ///< paper: one packet per second
  double duration = 30.0;       ///< paper: 30 s total simulation

  /// Members that leave mid-run: (time, router). Optional.
  std::vector<std::pair<double, graph::NodeId>> leaves;

  double dcdm_slack = 1.0;
  bool pimsm_spt_switchover = true;
  /// ns-2's dense-mode prune timeout default (0.5 s). With the paper's one
  /// packet per second, essentially every packet refloods — the behaviour
  /// §IV-B.1 attributes DVMRP's data overhead to.
  double dvmrp_prune_lifetime = 0.5;
  bool scmp_always_full_tree = false;
};

struct ScenarioResult {
  std::string protocol;
  sim::NetStats stats;
  std::uint64_t data_packets_sent = 0;
  std::uint64_t igmp_messages = 0;
};

/// Runs one full scenario and returns the measured metrics.
ScenarioResult run_scenario(ProtocolKind kind, const graph::Graph& g,
                            const ScenarioConfig& cfg);

/// The pieces of a running scenario, for tests that need to poke at protocol
/// state mid-run. Construction wires everything; the caller drives the queue.
class ScenarioHarness {
 public:
  ScenarioHarness(ProtocolKind kind, const graph::Graph& g,
                  const ScenarioConfig& cfg);
  ~ScenarioHarness();

  sim::EventQueue& queue() { return queue_; }
  sim::Network& network() { return *network_; }
  igmp::IgmpDomain& igmp() { return *igmp_; }
  proto::MulticastProtocol& protocol() { return *protocol_; }

  /// Schedules the configured joins/leaves/data sends.
  void schedule(const ScenarioConfig& cfg);
  std::uint64_t data_packets_sent() const { return data_sent_; }

 private:
  sim::EventQueue queue_;
  std::unique_ptr<sim::Network> network_;
  std::unique_ptr<igmp::IgmpDomain> igmp_;
  std::unique_ptr<proto::MulticastProtocol> protocol_;
  std::uint64_t data_sent_ = 0;
};

}  // namespace scmp::core
