// The complete m-router device model (paper §II-B, Fig. 2(b)): the SCMP
// protocol engine with its service database, the n x n sandwich switching
// fabric, and the multiprocessor compute pool, wired together.
//
//   * sync_fabric() maps every active group onto a fabric session: the
//     sources the m-router has seen occupy input ports, the fabric merges
//     them (PN -> CCN) and the DN delivers the merged stream to the output
//     port that roots the group's multicast tree in the domain.
//   * fail_over_to() performs the hot-standby failover with all per-group
//     tree rebuilds running on the compute pool.
#pragma once

#include <map>
#include <memory>

#include "core/compute_pool.hpp"
#include "core/scheduler.hpp"
#include "core/scmp.hpp"
#include "fabric/mrouter_fabric.hpp"

namespace scmp::core {

class MRouterNode {
 public:
  /// `fabric_ports` must be a power of two; `threads` <= 0 selects the
  /// hardware concurrency.
  MRouterNode(sim::Network& net, igmp::IgmpDomain& igmp, Scmp::Config cfg,
              int fabric_ports = 64, int threads = 0);

  Scmp& protocol() { return scmp_; }
  const Scmp& protocol() const { return scmp_; }
  fabric::MRouterFabric& fabric() { return fabric_; }
  const fabric::MRouterFabric& fabric() const { return fabric_; }
  const TreeComputePool& pool() const { return pool_; }

  /// Reprograms the switching fabric from the protocol's current sessions:
  /// one fabric session per active group that has known senders, each sender
  /// on its own input port (assigned in deterministic order). Groups beyond
  /// the fabric's port capacity are reported back as unplaced.
  struct FabricSync {
    int sessions_placed = 0;
    std::vector<GroupId> unplaced;
  };
  FabricSync sync_fabric();

  /// Input port carrying `sender`'s uplink for `group` in the current fabric
  /// configuration, or -1 when not placed.
  int input_port_of(GroupId group, graph::NodeId sender) const;

  /// Output port rooting `group`'s tree, per the current configuration.
  int output_port_of(GroupId group) const {
    return fabric_.output_port(group);
  }

  /// Hot-standby failover with parallel tree rebuilds (§II-B + §V).
  void fail_over_to(graph::NodeId standby) {
    scmp_.fail_over_to(standby, &pool_);
  }

  /// Makes data transiting the m-router pay for its path through the
  /// sandwich fabric: `per_stage_seconds` per 2x2 switch stage (and merge
  /// level), looked up from the current fabric configuration by the sending
  /// router's input port. Call after sync_fabric(); senders not placed on
  /// the fabric pay the PN+DN baseline depth.
  void enable_fabric_transit(double per_stage_seconds);

  /// The WFQ scheduler of an egress port (created lazily at the port's line
  /// rate): groups sharing a port get weighted bandwidth shares (§II-A's
  /// traffic scheduling / bandwidth management duties).
  WfqScheduler& port_scheduler(int port);
  /// Sets the line rate used for ports whose scheduler is created later.
  void set_port_capacity(double bps) { port_capacity_bps_ = bps; }

 private:
  graph::AllPairsPaths paths_;
  TreeComputePool pool_;
  Scmp scmp_;
  fabric::MRouterFabric fabric_;
  std::map<GroupId, std::map<graph::NodeId, int>> input_ports_;
  double port_capacity_bps_ = 1e9;
  std::map<int, WfqScheduler> schedulers_;
};

}  // namespace scmp::core
