// The m-router's service database (paper §II-C): multicast address
// management (issue / revoke / publish), session lifecycle records, and the
// membership on-off log the paper calls out for scheduling and
// accounting/billing. All service-related state the m-router is the sole
// owner of lives here, queryable by outsiders.
//
// Per-group state (session records, member sets) is partitioned into shards
// keyed by a deterministic group→shard hash so a flash crowd touching many
// groups keeps each shard's map small and epoch flushes can walk only the
// shards they touched. Sharding is an internal layout choice: every query
// merges shards back into group-sorted order, so observable behavior is
// bit-identical for any shard count (the golden traces pin this).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "graph/graph.hpp"

namespace scmp::core {

using GroupId = int;

/// A simulated class-D multicast address.
using McastAddress = std::uint32_t;

struct SessionRecord {
  GroupId group = -1;
  McastAddress address = 0;
  double started_at = 0.0;
  std::optional<double> ended_at;
  std::uint64_t data_packets_forwarded = 0;
  std::uint64_t data_bytes_forwarded = 0;
};

struct MembershipEvent {
  double time = 0.0;
  GroupId group = -1;
  graph::NodeId router = graph::kInvalidNode;
  bool joined = false;  ///< false = left
};

class MRouterDatabase {
 public:
  /// `num_shards` partitions per-group state; must be >= 1. The shard count
  /// never changes observable results, only map sizes.
  explicit MRouterDatabase(int num_shards = 1);

  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Deterministic group→shard hash (Knuth multiplicative; no std::hash,
  /// whose layout is implementation-defined).
  std::size_t shard_of(GroupId group) const;

  /// Starts a session for `group`, issuing a fresh multicast address.
  /// Idempotent: re-starting an active session returns its address.
  McastAddress start_session(GroupId group, double now);

  /// Tears down an expired session and revokes its address.
  void end_session(GroupId group, double now);

  bool session_active(GroupId group) const;
  std::optional<McastAddress> address_of(GroupId group) const;

  /// Published view of all active (group, address) bindings, group-sorted.
  std::vector<std::pair<GroupId, McastAddress>> published_addresses() const;

  /// Records a membership join for accounting/billing. `req` is the JOIN
  /// packet's reliable-delivery request uid: a retransmitted JOIN repeats the
  /// uid, and the second record with a uid already seen is dropped so billing
  /// sessions are never double-counted (0 = fire-and-forget, never deduped).
  /// Returns false when the record was deduplicated.
  bool record_join(GroupId group, graph::NodeId router, double now,
                   std::uint64_t req = 0);
  void record_leave(GroupId group, graph::NodeId router, double now);
  void record_data_forwarded(GroupId group, std::uint64_t bytes);

  const std::set<graph::NodeId>& members_of(GroupId group) const;
  const std::vector<MembershipEvent>& membership_log() const { return log_; }
  std::optional<SessionRecord> session(GroupId group) const;
  std::vector<SessionRecord> all_sessions() const;

  /// Accounting: number of membership events charged to a router.
  int billing_events(graph::NodeId router) const;

 private:
  /// Per-group state lives in exactly one shard.
  struct Shard {
    std::map<GroupId, SessionRecord> active;
    std::map<GroupId, std::set<graph::NodeId>> members;
  };

  Shard& shard_for(GroupId group) { return shards_[shard_of(group)]; }
  const Shard& shard_for(GroupId group) const { return shards_[shard_of(group)]; }

  std::vector<Shard> shards_;
  std::vector<SessionRecord> ended_;
  std::vector<MembershipEvent> log_;
  std::set<std::uint64_t> seen_join_reqs_;  ///< request uids already billed
  McastAddress next_address_ = 0xE0000100;  // 224.0.1.0 onwards
};

}  // namespace scmp::core
