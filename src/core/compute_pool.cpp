#include "core/compute_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/contracts.hpp"

namespace scmp::core {

namespace {

/// Automatic worker count for `threads <= 0`: the SCMP_THREADS environment
/// override when set to a positive integer, else the detected hardware
/// concurrency. hardware_concurrency() is allowed to return 0 ("not
/// computable"); that must degrade to a serial pool, not a zero-thread one.
int auto_thread_count() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe) — read once at pool construction,
  // before any worker exists; nothing writes the environment concurrently.
  if (const char* env = std::getenv("SCMP_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0 && parsed <= 1 << 16)
      return static_cast<int>(parsed);
  }
  // determinism: allow(thread count shapes work partitioning only; results
  // are bit-identical at any count — pinned by PoolDeterminism/
  // ParallelEqualsSerial and
  // ComputePoolRace.BitIdenticalDigestAcrossThreadCounts)
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace

TreeComputePool::TreeComputePool(const graph::Graph& g,
                                 const graph::AllPairsPaths& paths,
                                 int threads)
    : g_(&g), paths_(&paths) {
  if (threads <= 0) threads = auto_thread_count();
  threads_ = std::max(threads, 1);
}

void TreeComputePool::for_each_index(
    std::size_t count, const std::function<void(std::size_t)>& fn) const {
  if (count == 0) return;
  OBS_SPAN("pool.for_each");
  static obs::Counter& tasks = obs::counter("pool.tasks");
  tasks.inc(count);
  const auto workers =
      std::min<std::size_t>(static_cast<std::size_t>(threads_), count);
  if (workers == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  // Static block partitioning: worker w handles [w*chunk, min((w+1)*chunk, n)).
  // Each index is touched by exactly one worker, so no synchronisation is
  // needed beyond the joins, and the result cannot depend on scheduling.
  const std::size_t chunk = (count + workers - 1) / workers;
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t begin = w * chunk;
    const std::size_t end = std::min(begin + chunk, count);
    if (begin >= end) break;
    pool.emplace_back([&fn, begin, end] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    });
  }
  for (auto& t : pool) t.join();
}

std::map<GroupId, DcdmTree> TreeComputePool::build_trees(
    graph::NodeId root, const std::vector<GroupMembership>& groups,
    const DcdmConfig& cfg) const {
  OBS_SPAN("pool.build_trees");
  SCMP_EXPECTS(g_->valid(root));
  for (const GroupMembership& gm : groups) {
    SCMP_EXPECTS(gm.group >= 0);
    SCMP_EXPECTS(!gm.join_order.empty());
    for (graph::NodeId member : gm.join_order) SCMP_EXPECTS(g_->valid(member));
  }

  // Build into an index-addressed vector of slots, then move into the map:
  // workers never touch shared structures.
  std::vector<DcdmTree> slots;
  slots.reserve(groups.size());
  for (std::size_t i = 0; i < groups.size(); ++i)
    slots.emplace_back(*g_, *paths_, root, cfg);

  for_each_index(groups.size(), [&](std::size_t i) {
    for (graph::NodeId member : groups[i].join_order) slots[i].join(member);
  });

  std::map<GroupId, DcdmTree> out;
  for (std::size_t i = 0; i < groups.size(); ++i)
    out.emplace(groups[i].group, std::move(slots[i]));
  return out;
}

}  // namespace scmp::core
