#include "core/mrouter_node.hpp"

namespace scmp::core {

MRouterNode::MRouterNode(sim::Network& net, igmp::IgmpDomain& igmp,
                         Scmp::Config cfg, int fabric_ports, int threads)
    : paths_(net.graph()),
      pool_(net.graph(), paths_, threads),
      scmp_(net, igmp, cfg),
      fabric_(fabric_ports) {}

MRouterNode::FabricSync MRouterNode::sync_fabric() {
  FabricSync result;
  input_ports_.clear();

  std::vector<fabric::FabricSession> sessions;
  int next_port = 0;
  for (GroupId group : scmp_.active_groups()) {
    const auto senders = scmp_.senders_of(group);
    if (senders.empty()) continue;
    if (next_port + static_cast<int>(senders.size()) > fabric_.ports()) {
      result.unplaced.push_back(group);
      continue;
    }
    fabric::FabricSession session;
    session.group = group;
    for (graph::NodeId sender : senders) {
      input_ports_[group][sender] = next_port;
      session.input_ports.push_back(next_port++);
    }
    sessions.push_back(std::move(session));
  }
  fabric_.configure(sessions);
  result.sessions_placed = static_cast<int>(sessions.size());
  return result;
}

void MRouterNode::enable_fabric_transit(double per_stage_seconds) {
  SCMP_EXPECTS(per_stage_seconds >= 0.0);
  scmp_.set_mrouter_transit_model([this, per_stage_seconds](
                                      const sim::Packet& pkt) {
    const int baseline = fabric_.pn().stage_count() + fabric_.dn().stage_count();
    int stages = baseline;
    if (pkt.src != graph::kInvalidNode) {
      const int port = input_port_of(pkt.group, pkt.src);
      if (port >= 0) stages = fabric_.path_depth(port);
    }
    return per_stage_seconds * stages;
  });
}

WfqScheduler& MRouterNode::port_scheduler(int port) {
  SCMP_EXPECTS(port >= 0 && port < fabric_.ports());
  auto it = schedulers_.find(port);
  if (it == schedulers_.end())
    it = schedulers_.emplace(port, WfqScheduler(port_capacity_bps_)).first;
  return it->second;
}

int MRouterNode::input_port_of(GroupId group, graph::NodeId sender) const {
  const auto git = input_ports_.find(group);
  if (git == input_ports_.end()) return -1;
  const auto sit = git->second.find(sender);
  return sit == git->second.end() ? -1 : sit->second;
}

}  // namespace scmp::core
