#include "core/database.hpp"

#include "util/contracts.hpp"

namespace scmp::core {

McastAddress MRouterDatabase::start_session(GroupId group, double now) {
  const auto it = active_.find(group);
  if (it != active_.end()) return it->second.address;
  SessionRecord rec;
  rec.group = group;
  rec.address = next_address_++;
  rec.started_at = now;
  active_.emplace(group, rec);
  return rec.address;
}

void MRouterDatabase::end_session(GroupId group, double now) {
  const auto it = active_.find(group);
  SCMP_EXPECTS(it != active_.end());
  it->second.ended_at = now;
  ended_.push_back(it->second);
  active_.erase(it);
  members_.erase(group);
}

bool MRouterDatabase::session_active(GroupId group) const {
  return active_.contains(group);
}

std::optional<McastAddress> MRouterDatabase::address_of(GroupId group) const {
  const auto it = active_.find(group);
  if (it == active_.end()) return std::nullopt;
  return it->second.address;
}

std::vector<std::pair<GroupId, McastAddress>>
MRouterDatabase::published_addresses() const {
  std::vector<std::pair<GroupId, McastAddress>> out;
  out.reserve(active_.size());
  for (const auto& [group, rec] : active_) out.emplace_back(group, rec.address);
  return out;
}

bool MRouterDatabase::record_join(GroupId group, graph::NodeId router,
                                  double now, std::uint64_t req) {
  if (req != 0 && !seen_join_reqs_.insert(req).second)
    return false;  // retransmitted JOIN: already recorded and billed
  members_[group].insert(router);
  log_.push_back({now, group, router, true});
  return true;
}

void MRouterDatabase::record_leave(GroupId group, graph::NodeId router,
                                   double now) {
  const auto it = members_.find(group);
  if (it != members_.end()) it->second.erase(router);
  log_.push_back({now, group, router, false});
}

void MRouterDatabase::record_data_forwarded(GroupId group,
                                            std::uint64_t bytes) {
  const auto it = active_.find(group);
  if (it == active_.end()) return;
  ++it->second.data_packets_forwarded;
  it->second.data_bytes_forwarded += bytes;
}

const std::set<graph::NodeId>& MRouterDatabase::members_of(
    GroupId group) const {
  static const std::set<graph::NodeId> kEmpty;
  const auto it = members_.find(group);
  return it == members_.end() ? kEmpty : it->second;
}

std::optional<SessionRecord> MRouterDatabase::session(GroupId group) const {
  const auto it = active_.find(group);
  if (it != active_.end()) return it->second;
  for (const auto& rec : ended_)
    if (rec.group == group) return rec;
  return std::nullopt;
}

std::vector<SessionRecord> MRouterDatabase::all_sessions() const {
  std::vector<SessionRecord> out;
  for (const auto& [group, rec] : active_) out.push_back(rec);
  out.insert(out.end(), ended_.begin(), ended_.end());
  return out;
}

int MRouterDatabase::billing_events(graph::NodeId router) const {
  int count = 0;
  for (const auto& ev : log_)
    if (ev.router == router) ++count;
  return count;
}

}  // namespace scmp::core
