#include "core/database.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace scmp::core {

MRouterDatabase::MRouterDatabase(int num_shards) {
  SCMP_EXPECTS(num_shards >= 1);
  shards_.resize(static_cast<std::size_t>(num_shards));
}

std::size_t MRouterDatabase::shard_of(GroupId group) const {
  const std::uint32_t mixed = static_cast<std::uint32_t>(group) * 2654435761u;
  return mixed % shards_.size();
}

McastAddress MRouterDatabase::start_session(GroupId group, double now) {
  Shard& shard = shard_for(group);
  const auto it = shard.active.find(group);
  if (it != shard.active.end()) return it->second.address;
  SessionRecord rec;
  rec.group = group;
  rec.address = next_address_++;
  rec.started_at = now;
  shard.active.emplace(group, rec);
  return rec.address;
}

void MRouterDatabase::end_session(GroupId group, double now) {
  Shard& shard = shard_for(group);
  const auto it = shard.active.find(group);
  SCMP_EXPECTS(it != shard.active.end());
  it->second.ended_at = now;
  ended_.push_back(it->second);
  shard.active.erase(it);
  shard.members.erase(group);
}

bool MRouterDatabase::session_active(GroupId group) const {
  return shard_for(group).active.contains(group);
}

std::optional<McastAddress> MRouterDatabase::address_of(GroupId group) const {
  const Shard& shard = shard_for(group);
  const auto it = shard.active.find(group);
  if (it == shard.active.end()) return std::nullopt;
  return it->second.address;
}

std::vector<std::pair<GroupId, McastAddress>>
MRouterDatabase::published_addresses() const {
  std::vector<std::pair<GroupId, McastAddress>> out;
  for (const Shard& shard : shards_)
    for (const auto& [group, rec] : shard.active)
      out.emplace_back(group, rec.address);
  std::sort(out.begin(), out.end());
  return out;
}

bool MRouterDatabase::record_join(GroupId group, graph::NodeId router,
                                  double now, std::uint64_t req) {
  if (req != 0 && !seen_join_reqs_.insert(req).second)
    return false;  // retransmitted JOIN: already recorded and billed
  shard_for(group).members[group].insert(router);
  log_.push_back({now, group, router, true});
  return true;
}

void MRouterDatabase::record_leave(GroupId group, graph::NodeId router,
                                   double now) {
  Shard& shard = shard_for(group);
  const auto it = shard.members.find(group);
  if (it != shard.members.end()) it->second.erase(router);
  log_.push_back({now, group, router, false});
}

void MRouterDatabase::record_data_forwarded(GroupId group,
                                            std::uint64_t bytes) {
  Shard& shard = shard_for(group);
  const auto it = shard.active.find(group);
  if (it == shard.active.end()) return;
  ++it->second.data_packets_forwarded;
  it->second.data_bytes_forwarded += bytes;
}

const std::set<graph::NodeId>& MRouterDatabase::members_of(
    GroupId group) const {
  static const std::set<graph::NodeId> kEmpty;
  const Shard& shard = shard_for(group);
  const auto it = shard.members.find(group);
  return it == shard.members.end() ? kEmpty : it->second;
}

std::optional<SessionRecord> MRouterDatabase::session(GroupId group) const {
  const Shard& shard = shard_for(group);
  const auto it = shard.active.find(group);
  if (it != shard.active.end()) return it->second;
  for (const auto& rec : ended_)
    if (rec.group == group) return rec;
  return std::nullopt;
}

std::vector<SessionRecord> MRouterDatabase::all_sessions() const {
  std::vector<SessionRecord> out;
  for (const Shard& shard : shards_)
    for (const auto& [group, rec] : shard.active) out.push_back(rec);
  std::sort(out.begin(), out.end(),
            [](const SessionRecord& a, const SessionRecord& b) {
              return a.group < b.group;
            });
  out.insert(out.end(), ended_.begin(), ended_.end());
  return out;
}

int MRouterDatabase::billing_events(graph::NodeId router) const {
  int count = 0;
  for (const auto& ev : log_)
    if (ev.router == router) ++count;
  return count;
}

}  // namespace scmp::core
