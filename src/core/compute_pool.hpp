// Parallel multicast-task engine for the m-router (paper §II-B: "Many tasks
// in the m-router, such as managing multicast group membership, generating
// multicast trees, scheduling, routing and transmission, are relatively
// independent, which can be performed in parallel. Thus, the m-router can
// adopt a multiprocessor or a cluster computer architecture").
//
// Per-group work (tree computation) is embarrassingly parallel: each group's
// DCDM tree depends only on that group's membership. The pool partitions the
// groups over a fixed set of worker threads; results are written into
// per-group slots, so the outcome is bit-identical to a serial run
// regardless of thread count or scheduling.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <vector>

#include "core/dcdm.hpp"
#include "graph/graph.hpp"
#include "graph/paths.hpp"

namespace scmp::core {

using GroupId = int;

/// Membership snapshot for one group: the routers whose hosts subscribed,
/// in join order (DCDM is order-sensitive).
struct GroupMembership {
  GroupId group = -1;
  std::vector<graph::NodeId> join_order;
};

/// Thread-safety: the pool is share-nothing by construction. Workers
/// receive disjoint index ranges and write only into caller-provided
/// per-index slots; the only cross-thread state is the read-only graph and
/// path database plus the caller's `fn`, which must itself be safe to
/// invoke concurrently on distinct indices. There is consequently no mutex
/// to annotate (util/thread_annotations.hpp policy); the `tsa` preset and
/// the compute_pool_race_test TSan stress pin this property.
class TreeComputePool {
 public:
  /// `threads` <= 0 selects an automatic thread count: the SCMP_THREADS
  /// environment variable when set to a positive integer (so CI runs are
  /// reproducible across runners with different core counts), otherwise the
  /// hardware concurrency (which may report 0 on some platforms — treated
  /// as 1). Results never depend on the choice, only wall-clock does.
  TreeComputePool(const graph::Graph& g, const graph::AllPairsPaths& paths,
                  int threads = 0);

  int thread_count() const { return threads_; }

  /// Builds the DCDM tree of every group concurrently. Deterministic: the
  /// result for a group depends only on (root, cfg, join_order).
  std::map<GroupId, DcdmTree> build_trees(
      graph::NodeId root, const std::vector<GroupMembership>& groups,
      const DcdmConfig& cfg) const;

  /// Generic parallel-for over group indices with static partitioning
  /// (deterministic assignment of work to slots; used by build_trees and
  /// exposed for other per-group m-router tasks such as accounting rollups).
  void for_each_index(std::size_t count,
                      const std::function<void(std::size_t)>& fn) const;

  /// Adapter exposing the pool as the graph layer's ParallelFor executor, so
  /// AllPairsPaths::rebuild / apply_link_event can run one Dijkstra source
  /// per task on the pool's workers. The returned closure references `this`;
  /// the pool must outlive it.
  graph::ParallelFor parallel_for() const {
    return [this](std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
      for_each_index(count, fn);
    };
  }

 private:
  const graph::Graph* g_;
  const graph::AllPairsPaths* paths_;
  int threads_;
};

}  // namespace scmp::core
