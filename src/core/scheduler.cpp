#include "core/scheduler.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/contracts.hpp"

namespace scmp::core {

namespace {
obs::Gauge& pending_gauge() {
  static obs::Gauge& g = obs::gauge("wfq.pending");
  return g;
}
}  // namespace

WfqScheduler::WfqScheduler(double capacity_bps)
    : capacity_bps_(capacity_bps) {
  SCMP_EXPECTS(capacity_bps > 0.0);
}

void WfqScheduler::set_weight(GroupId group, double weight) {
  SCMP_EXPECTS(weight > 0.0);
  weights_[group] = weight;
}

double WfqScheduler::weight_of(GroupId group) const {
  const auto it = weights_.find(group);
  return it == weights_.end() ? 1.0 : it->second;
}

void WfqScheduler::enqueue(GroupId group, std::uint64_t uid,
                           std::size_t bytes, double now) {
  SCMP_EXPECTS(bytes > 0);
  // Virtual time tracks real time loosely: an idle scheduler fast-forwards
  // so a newly-busy group does not inherit stale credit.
  if (heap_.empty()) virtual_time_ = std::max(virtual_time_, now);

  const double start =
      std::max(virtual_time_, last_finish_[group]);
  const double finish =
      start + static_cast<double>(bytes) / weight_of(group);
  last_finish_[group] = finish;
  heap_.push(Entry{finish, group, uid, bytes, now, next_seq_++});
  static obs::Counter& enqueued = obs::counter("wfq.enqueued");
  enqueued.inc();
  pending_gauge().set(static_cast<double>(heap_.size()));
}

std::optional<WfqScheduler::Scheduled> WfqScheduler::dequeue() {
  if (heap_.empty()) return std::nullopt;
  const Entry e = heap_.top();
  heap_.pop();
  virtual_time_ = std::max(virtual_time_, e.virtual_finish);
  served_[e.group] += e.bytes;

  Scheduled s;
  s.group = e.group;
  s.uid = e.uid;
  s.bytes = e.bytes;
  // The port cannot start before the packet arrived or before it finished
  // the previous transmission.
  port_free_at_ = std::max(port_free_at_, e.arrival) +
                  static_cast<double>(e.bytes) * 8.0 / capacity_bps_;
  s.dequeue_time = port_free_at_;
  // Simulated seconds from arrival to the port finishing the packet — the
  // paper's per-session queueing-delay quantity, not wall-clock time.
  static obs::Histogram& delay = obs::histogram("wfq.queue_delay.seconds");
  delay.observe(s.dequeue_time - e.arrival);
  pending_gauge().set(static_cast<double>(heap_.size()));
  return s;
}

}  // namespace scmp::core
