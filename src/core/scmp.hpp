// SCMP — the Service-Centric Multicast Protocol (paper §II-D and §III).
//
// One or more m-routers per domain (paper §II-A: "An ISP may own more than
// one m-routers in the Internet for serving its customers in different
// geographic regions"; the default is one) own global topology and
// membership information. Every group is anchored at exactly one m-router —
// the mapping is a published static function of the group id, so every
// designated router can address its JOIN/LEAVE requests without discovery.
//
// The anchoring m-router maintains a delay-constrained shared tree per group
// with DCDM and installs it into the network with self-routing TREE packets
// (full subtree installs) or BRANCH packets (single-path incremental
// installs); restructuring joins are installed as a minimal diff (BRANCH +
// targeted CLEARs). Members leave with hop-by-hop PRUNEs. The shared tree is
// bidirectional; off-tree sources unicast-encapsulate data to the m-router.
//
// Failure handling (paper §V, advantage 4, extended): fail_over moves every
// group anchored at a failed m-router to a hot standby, rebuilding trees
// from the replicated service database (optionally on the parallel compute
// pool); on_topology_change() repairs all trees after a link failure.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>

#include "core/compute_pool.hpp"
#include "core/database.hpp"
#include "core/dcdm.hpp"
#include "core/retx.hpp"
#include "protocols/multicast_protocol.hpp"

namespace scmp::core {

class Scmp final : public proto::MulticastProtocol {
 public:
  struct Config {
    /// The (primary) m-router; used when `mrouters` is empty.
    graph::NodeId mrouter = 0;
    /// Optional: several m-routers sharing the domain's groups
    /// (group g is anchored at mrouters[g % mrouters.size()]).
    std::vector<graph::NodeId> mrouters;
    DcdmConfig dcdm;
    /// Ablation knob: install every change with full TREE packets instead of
    /// BRANCH packets where possible (§III-E discusses why BRANCH is used
    /// for small changes).
    bool always_full_tree = false;
    /// Reliable control-plane delivery (acks + retransmission with backoff,
    /// src/core/retx.hpp). Off by default: every control packet stream stays
    /// bit-identical to the fire-and-forget protocol.
    RetxConfig reliability;
    /// Epoch-batched membership: when > 0, JOIN/LEAVE arrivals at an
    /// anchoring m-router are recorded in the service database immediately
    /// (billing, dedup and session lifecycle are unchanged) but the DCDM /
    /// install work is deferred to the close of the current epoch, this many
    /// simulated seconds after the first deferred arrival. At the close every
    /// touched group is net-resolved (a member that joined and left within
    /// one epoch cancels out) and net-changed groups get exactly one DCDM
    /// recomputation plus one versioned install wave. 0 (the default) keeps
    /// the per-request path bit-identical to the pre-epoch protocol.
    double epoch_interval = 0.0;
    /// Service-database shard count (deterministic group→shard hash; see
    /// MRouterDatabase). Internal layout only — observable behavior is
    /// identical for any value >= 1.
    int db_shards = 8;
  };

  Scmp(sim::Network& net, igmp::IgmpDomain& igmp, Config cfg);

  std::string name() const override { return "SCMP"; }

  void handle_packet(graph::NodeId at, const sim::Packet& pkt,
                     graph::NodeId from) override;
  void send_data(graph::NodeId source, GroupId group) override;

  void interface_joined(graph::NodeId router, GroupId group, int iface,
                        bool first_iface) override;
  void interface_left(graph::NodeId router, GroupId group, int iface,
                      bool last_iface) override;

  /// The primary m-router (the only one when Config::mrouters is empty).
  graph::NodeId mrouter() const { return mrouters_.front(); }
  const std::vector<graph::NodeId>& mrouters() const { return mrouters_; }
  /// The m-router anchoring `group` (its trees' root).
  graph::NodeId mrouter_of(GroupId group) const;

  /// Promotes `standby` to replace the failed m-router: every group anchored
  /// at `failed` is re-anchored, its tree rebuilt from the database replica
  /// and reinstalled; stale state is cleared (paper §V hot-standby
  /// failover). When `pool` is given, the per-group rebuilds run on its
  /// worker threads (§II-B); the result is identical to the serial rebuild.
  void fail_over(graph::NodeId failed, graph::NodeId standby,
                 const TreeComputePool* pool = nullptr);

  /// Single-m-router convenience: fails the primary over to `standby`.
  void fail_over_to(graph::NodeId standby,
                    const TreeComputePool* pool = nullptr) {
    fail_over(mrouter(), standby, pool);
  }

  /// Topology change (e.g. a failed link): the m-routers refresh the global
  /// path database, recompute every group tree and reinstall — the
  /// service-centric repair story: no other router runs any algorithm.
  void on_topology_change() override;

  /// Incremental variant of on_topology_change() for a single link event
  /// (failure, addition or re-weighting of edge {u, v}): only the sources
  /// whose cached shortest-path runs the event can affect are re-run
  /// (graph::AllPairsPaths::apply_link_event's dirty-source test); the
  /// resulting path database is bit-identical to a from-scratch rebuild.
  /// Group trees are then rebuilt as in on_topology_change(). Returns the
  /// number of sources recomputed.
  int handle_link_event(graph::NodeId u, graph::NodeId v);

  /// Registers a compute pool whose worker threads run the path-database
  /// refreshes and per-group tree rebuilds triggered by topology changes
  /// (one Dijkstra source per task, §II-B). The pool must outlive the
  /// registration; nullptr (the default) reverts to serial.
  void set_compute_pool(const TreeComputePool* pool) { pool_ = pool; }

  /// The m-routers' global dual-weight path database (P_sl / P_lc).
  const graph::AllPairsPaths& paths() const { return paths_; }

  /// Tears down a whole multicast session (paper §II-C): clears the installed
  /// state of every on-tree router, drops the tree and revokes the address.
  void end_group_session(GroupId group);

  /// Session lifecycle policy (paper §II-C: "the m-router is responsible ...
  /// to tear down an expired multicast session", with the lifetime driven by
  /// service requirements): a session whose membership stays empty for
  /// `idle_seconds` is ended automatically. 0 disables the policy (default).
  void set_session_idle_expiry(double idle_seconds);

  /// Reconfigures Config::epoch_interval at runtime (seconds of simulated
  /// time; 0 reverts to the per-request path). Applies from the next
  /// membership arrival; an already-scheduled epoch close still fires.
  void set_epoch_interval(double seconds);
  double epoch_interval() const { return epoch_interval_; }
  /// Groups touched in the currently open epoch. Zero whenever the event
  /// queue is drained: every deferred arrival schedules an epoch-close
  /// event, so run-to-quiescence always flushes.
  std::size_t epoch_pending() const { return epoch_touched_.size(); }

  /// Models the m-router's internal transit (switching fabric stages plus
  /// any scheduling): when set, data an anchoring m-router forwards is held
  /// for `fn(packet)` seconds before leaving on the tree (paper Fig. 3: the
  /// fabric sits between the arriving flows and the tree's root port).
  /// MRouterNode wires this to the sandwich fabric's real stage depths.
  using TransitModel = std::function<double(const sim::Packet&)>;
  void set_mrouter_transit_model(TransitModel fn) {
    transit_model_ = std::move(fn);
  }

  /// The m-router's service database (sessions, addresses, accounting).
  const MRouterDatabase& database() const { return db_; }

  /// m-router's authoritative tree for a group (nullptr if no session).
  const DcdmTree* group_tree(GroupId group) const;

  /// Groups with a live session at the m-routers.
  std::vector<GroupId> active_groups() const;

  /// Groups any i-router still holds an installed Entry for — a superset of
  /// active_groups() only when stale state leaked. The verification
  /// auditor's orphan-state invariant diffs the two (src/verify).
  std::vector<GroupId> groups_with_installed_state() const;

  /// Distinct source routers the anchoring m-router has seen data from, per
  /// group (drives the switching fabric's input-port assignment).
  std::set<graph::NodeId> senders_of(GroupId group) const;

  /// Re-announces a group's whole tree (full TREE install) and clears every
  /// router that held state since the last refresh but is off the current
  /// tree. This is the soft-state/anti-entropy mechanism that re-converges
  /// installed state after *concurrent* membership operations raced each
  /// other's install packets (drained sequential operations never need it).
  void refresh_group(GroupId group);

  /// One soft-state reconciliation pass (the control-plane analogue of the
  /// IGMP query cycle): first re-solicits membership lost to dropped
  /// JOIN/LEAVE packets by diffing the service database against the IGMP
  /// ground truth, then diffs every i-router's installed digest (upstream +
  /// downstream set) against the anchoring m-router's authoritative tree and
  /// repairs divergence with targeted BRANCH reinstalls and CLEARs. Returns
  /// the number of repair actions initiated (0 = the domain matched the
  /// digests; repairs travel as ordinary — reliable, if enabled — control
  /// packets, so convergence needs the queue drained and possibly further
  /// passes when those packets can be lost too).
  int reconcile_all();

  /// Schedules reconcile_all() every `interval` seconds until `horizon`
  /// (exclusive), mirroring igmp::IgmpDomain::start_query_cycle.
  void start_reconciliation(double interval, double horizon);

  /// The control plane's retransmission table (zeros when reliability is
  /// disabled; tests and benches read its lifetime counters).
  const RetxTable& retx() const { return retx_; }

  /// An i-router's installed multicast routing entry (paper §III-A):
  /// (group id, upstream, downstream routers + downstream interfaces).
  /// `version` is the m-router install operation that last wrote the entry;
  /// i-routers ignore install packets older than their entry (a BRANCH
  /// overtaken by a newer restructure must not resurrect stale state).
  struct Entry {
    graph::NodeId upstream = graph::kInvalidNode;
    std::set<graph::NodeId> downstream_routers;
    std::set<int> downstream_ifaces;
    std::uint64_t version = 0;
  };
  const Entry* entry_at(graph::NodeId router, GroupId group) const;

  /// Verifies that the routing state installed in the network matches the
  /// anchoring m-router's authoritative tree for `group`.
  bool network_state_consistent(GroupId group) const;

 private:
  /// SCMP has an authoritative tree to compare against, so convergence is
  /// measured by predicate (installed state == m-router tree), not by
  /// control-plane quiescence like the rival protocols.
  bool convergence_by_quiescence() const override { return false; }
  /// Resolves a pending convergence measurement for `group` if the installed
  /// network state now matches the authoritative tree.
  void check_convergence(GroupId group);

  Entry* mutable_entry_at(graph::NodeId router, GroupId group);
  DcdmTree& tree_for(GroupId group);

  // m-router side. `req` is the JOIN's reliable-delivery request uid (0 when
  // fire-and-forget); the database dedupes billing records by it.
  void mrouter_handle_join(GroupId group, graph::NodeId requester,
                           std::uint64_t req);
  void mrouter_handle_leave(GroupId group, graph::NodeId requester);
  void install_branch(GroupId group, graph::NodeId member,
                      std::uint64_t version);
  void install_full_tree(GroupId group,
                         const std::vector<graph::NodeId>& removed,
                         std::uint64_t version);
  /// Unicasts a CLEAR to `target`: empty `detach` drops the whole entry,
  /// otherwise only the listed children are removed from its downstream.
  void send_clear(GroupId group, graph::NodeId target,
                  std::vector<graph::NodeId> detach, std::uint64_t version);
  void ir_handle_clear(graph::NodeId at, const sim::Packet& pkt);
  /// Rebuilds the given groups' trees at their (current) anchors from the
  /// membership database, clears stale installed state and reinstalls.
  void rebuild_trees(const std::vector<GroupId>& groups,
                     const TreeComputePool* pool);
  /// active_groups() minus memberless sessions whose tree is already bare
  /// (root-only) — the groups a topology change can actually affect.
  /// Skipped groups are counted in scmp.rebuild.skipped_empty: rebuilding
  /// them would waste a DCDM run and emit empty-tree install traffic.
  std::vector<GroupId> rebuild_candidates() const;

  // Epoch-batched membership pipeline (Config::epoch_interval > 0).
  bool epoch_enabled() const { return epoch_interval_ > 0.0; }
  /// Marks `group` touched in the open epoch and schedules the one-shot
  /// epoch-close event when none is outstanding.
  void epoch_enqueue(GroupId group);
  /// Epoch close: net-resolves every touched group against the service
  /// database and gives each net-changed group one DCDM recomputation and
  /// one versioned install wave (rebuild_trees, parallel on the registered
  /// compute pool).
  void flush_epoch();
  void local_membership_change(GroupId group, bool joined);
  /// Starts a new install operation for the group and returns its version.
  std::uint64_t next_install_version(GroupId group) {
    return ++install_version_[group];
  }

  // Reliability layer: both helpers behave exactly like Network::send_link /
  // send_unicast when Config::reliability is disabled; when enabled they
  // stamp a fresh request uid and arm retransmission until acknowledged.
  void send_control_link(graph::NodeId from, graph::NodeId to,
                         sim::Packet pkt);
  void send_control_unicast(graph::NodeId from, sim::Packet pkt);
  void send_ack(graph::NodeId at, const sim::Packet& pkt, graph::NodeId from);

  // Soft-state reconciliation (reconcile_all phases).
  int resolicit_membership();
  int repair_installed_state();

  // i-router side.
  void ir_handle_tree(graph::NodeId at, const sim::Packet& pkt,
                      graph::NodeId from);
  void ir_handle_branch(graph::NodeId at, const sim::Packet& pkt,
                        graph::NodeId from);
  void ir_handle_prune(graph::NodeId at, const sim::Packet& pkt,
                       graph::NodeId from);
  void send_prune_and_leave(graph::NodeId at, GroupId group);

  // Data plane.
  void forward_data(graph::NodeId at, const sim::Packet& pkt,
                    graph::NodeId from);

  Config cfg_;
  std::vector<graph::NodeId> mrouters_;
  MRouterDatabase db_;
  graph::AllPairsPaths paths_;  ///< the m-routers' global path database
  std::map<GroupId, DcdmTree> trees_;
  std::map<GroupId, std::set<graph::NodeId>> senders_;
  /// Monotone install-operation counter per group (carried in TREE/BRANCH/
  /// CLEAR packets as Packet::uid).
  std::map<GroupId, std::uint64_t> install_version_;
  /// Routers that received install state since the last refresh (the
  /// anti-entropy clear set).
  std::map<GroupId, std::set<graph::NodeId>> ever_installed_;
  /// Tombstones: the version of the last applied entry-drop CLEAR, per
  /// (router, group); install packets older than the tombstone must not
  /// resurrect the entry.
  std::vector<std::map<GroupId, std::uint64_t>> cleared_version_;
  /// Per-router installed entries; a group's anchoring m-router forwards
  /// from its tree and holds no Entry for that group (it may hold entries
  /// for groups anchored elsewhere). When an entry is created (BRANCH
  /// terminal or TREE install) its downstream interfaces are taken from the
  /// IGMP state, which subsumes the paper's "marked interface" bookkeeping.
  std::vector<std::map<GroupId, Entry>> entries_;
  /// Control-plane retransmission tables (one logical table per endpoint).
  RetxTable retx_;
  /// Receiver-side dedup of reliably-delivered control packets, per router:
  /// a retransmitted request is re-acknowledged but processed only once.
  std::vector<std::set<std::uint64_t>> seen_req_;
  /// Optional worker pool for topology-change recomputation (not owned).
  const TreeComputePool* pool_ = nullptr;
  TransitModel transit_model_;
  double session_idle_expiry_ = 0.0;  ///< 0 = sessions never auto-expire
  double epoch_interval_ = 0.0;       ///< 0 = per-request (no batching)
  /// Groups with membership changes recorded but tree work still deferred.
  std::set<GroupId> epoch_touched_;
  bool epoch_flush_scheduled_ = false;
};

}  // namespace scmp::core
