#include "core/dcdm.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace scmp::core {

DcdmTree::DcdmTree(const graph::Graph& g, const graph::AllPairsPaths& paths,
                   graph::NodeId root, DcdmConfig cfg)
    : g_(&g),
      paths_(&paths),
      cfg_(cfg),
      tree_(root, g.num_nodes()),
      admitted_bound_(static_cast<std::size_t>(g.num_nodes()),
                      std::numeric_limits<double>::quiet_NaN()) {
  SCMP_EXPECTS(cfg.delay_slack >= 1.0);
}

double DcdmTree::admitted_bound(graph::NodeId m) const {
  SCMP_EXPECTS(tree_.is_member(m));
  const double b = admitted_bound_[static_cast<std::size_t>(m)];
  SCMP_ASSERT(!std::isnan(b));
  return b;
}

void DcdmTree::record_admission(graph::NodeId m, double bound) {
  admitted_bound_[static_cast<std::size_t>(m)] = bound;
}

double DcdmTree::unicast_delay(graph::NodeId v) const {
  return paths_->sl_delay(tree_.root(), v);
}

double DcdmTree::delay_bound_for(graph::NodeId joining) const {
  if (cfg_.delay_slack == kLoosest) return kLoosest;
  double max_ul = unicast_delay(joining);
  for (graph::NodeId m : tree_.members())
    max_ul = std::max(max_ul, unicast_delay(m));
  return std::max(cfg_.delay_slack * max_ul, tree_.tree_delay(*g_));
}

JoinResult DcdmTree::join(graph::NodeId s) {
  SCMP_EXPECTS(g_->valid(s));
  OBS_SPAN("dcdm.join");
  JoinResult result;
  if (tree_.is_member(s)) return result;  // duplicate join
  result.is_new_member = true;
  if (tree_.on_tree(s)) {
    // s is already a relay on the tree: membership flips, topology unchanged.
    // Its existing path is feasible by construction (every relay lies on a
    // member's admitted path), so it is admitted at the current bound.
    result.already_on_tree = true;
    tree_.set_member(s, true);
    record_admission(s, delay_bound_for(s));
    return result;
  }

  const double bound = delay_bound_for(s);

  // Candidate selection over the 2m precomputed paths (P_sl and P_lc from
  // every on-tree node t to s): cheapest feasible, ties broken by smaller
  // multicast delay, then by smaller graft-node id (deterministic).
  struct Candidate {
    double cost = 0.0;
    double ml = 0.0;
    graph::NodeId graft = graph::kInvalidNode;
    std::vector<graph::NodeId> path;
  };
  Candidate best;
  bool have_best = false;
  auto consider = [&](graph::NodeId t, std::vector<graph::NodeId> path) {
    if (path.empty()) return;
    const double pd = graph::path_weight(*g_, path, graph::Metric::kDelay);
    const double ml = tree_.node_delay(*g_, t) + pd;
    if (ml > bound) return;
    const double pc = graph::path_weight(*g_, path, graph::Metric::kCost);
    const bool better =
        !have_best || pc < best.cost ||
        (pc == best.cost && (ml < best.ml ||
                             (ml == best.ml && t < best.graft)));
    if (better) {
      best = Candidate{pc, ml, t, std::move(path)};
      have_best = true;
    }
  };
  for (graph::NodeId t : tree_.on_tree_nodes()) {
    consider(t, paths_->sl_path(t, s));
    consider(t, paths_->lc_path(t, s));
  }
  // The shortest-delay path from the root is always feasible
  // (ml = ul(s) <= slack * max_ul <= bound), so a candidate must exist.
  SCMP_ASSERT(have_best);

  // Snapshot parents to detect loop-elimination restructuring, and member
  // delays so restructure-moved members can be re-admitted at their new
  // multicast delay.
  std::vector<graph::NodeId> old_parent(
      static_cast<std::size_t>(g_->num_nodes()), graph::kInvalidNode);
  std::vector<char> was_on_tree(static_cast<std::size_t>(g_->num_nodes()), 0);
  for (graph::NodeId v : tree_.on_tree_nodes()) {
    was_on_tree[static_cast<std::size_t>(v)] = 1;
    old_parent[static_cast<std::size_t>(v)] = tree_.parent(v);
  }
  std::vector<std::pair<graph::NodeId, double>> old_member_delay;
  for (graph::NodeId m : tree_.members())
    old_member_delay.emplace_back(m, tree_.node_delay(*g_, m));

  tree_.graft_path(best.path);
  tree_.set_member(s, true);
  record_admission(s, bound);
  for (const auto& [m, before] : old_member_delay) {
    const double after = tree_.node_delay(*g_, m);
    if (after != before) {
      record_admission(
          m, std::max(admitted_bound_[static_cast<std::size_t>(m)], after));
    }
  }
  result.graft_path = std::move(best.path);

  for (graph::NodeId v = 0; v < g_->num_nodes(); ++v) {
    if (!was_on_tree[static_cast<std::size_t>(v)]) continue;
    if (!tree_.on_tree(v)) {
      result.removed_nodes.push_back(v);
      result.restructured = true;
    } else if (tree_.parent(v) != old_parent[static_cast<std::size_t>(v)]) {
      result.restructured = true;
    }
  }
  if (result.restructured) {
    static obs::Counter& restructures = obs::counter("dcdm.restructures");
    restructures.inc();
  }
  SCMP_ENSURES(tree_.validate(*g_));
  return result;
}

LeaveResult DcdmTree::leave(graph::NodeId s) {
  SCMP_EXPECTS(g_->valid(s));
  OBS_SPAN("dcdm.leave");
  LeaveResult result;
  if (!tree_.is_member(s)) return result;
  result.was_member = true;
  tree_.set_member(s, false);
  admitted_bound_[static_cast<std::size_t>(s)] =
      std::numeric_limits<double>::quiet_NaN();

  std::vector<char> was_on_tree(static_cast<std::size_t>(g_->num_nodes()), 0);
  for (graph::NodeId v : tree_.on_tree_nodes())
    was_on_tree[static_cast<std::size_t>(v)] = 1;

  tree_.prune_upward_from(s);

  for (graph::NodeId v = 0; v < g_->num_nodes(); ++v) {
    if (was_on_tree[static_cast<std::size_t>(v)] && !tree_.on_tree(v))
      result.removed_nodes.push_back(v);
  }
  SCMP_ENSURES(tree_.validate(*g_));
  return result;
}

}  // namespace scmp::core
