#include "core/dcdm.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace scmp::core {

DcdmTree::DcdmTree(const graph::Graph& g, const graph::AllPairsPaths& paths,
                   graph::NodeId root, DcdmConfig cfg)
    : g_(&g),
      paths_(&paths),
      cfg_(cfg),
      tree_(root, g.num_nodes()),
      admitted_bound_(static_cast<std::size_t>(g.num_nodes()),
                      std::numeric_limits<double>::quiet_NaN()),
      scratch_old_parent_(static_cast<std::size_t>(g.num_nodes()),
                          graph::kInvalidNode),
      scratch_was_on_tree_(static_cast<std::size_t>(g.num_nodes()), 0),
      scratch_old_delay_(static_cast<std::size_t>(g.num_nodes()),
                         std::numeric_limits<double>::quiet_NaN()) {
  SCMP_EXPECTS(cfg.delay_slack >= 1.0);
  scratch_graft_.reserve(static_cast<std::size_t>(g.num_nodes()));
}

double DcdmTree::admitted_bound(graph::NodeId m) const {
  SCMP_EXPECTS(tree_.is_member(m));
  const double b = admitted_bound_[static_cast<std::size_t>(m)];
  SCMP_ASSERT(!std::isnan(b));
  return b;
}

void DcdmTree::record_admission(graph::NodeId m, double bound) {
  admitted_bound_[static_cast<std::size_t>(m)] = bound;
}

double DcdmTree::unicast_delay(graph::NodeId v) const {
  return paths_->sl_delay(tree_.root(), v);
}

double DcdmTree::delay_bound_for(graph::NodeId joining) const {
  // determinism: allow(sentinel compare: kLoosest is copied into
  // cfg_.delay_slack verbatim, never computed, so the bits match exactly)
  if (cfg_.delay_slack == kLoosest) return kLoosest;
  double max_ul = unicast_delay(joining);
  for (graph::NodeId m = 0; m < g_->num_nodes(); ++m) {
    if (tree_.is_member(m)) max_ul = std::max(max_ul, unicast_delay(m));
  }
  return std::max(cfg_.delay_slack * max_ul, tree_.tree_delay(*g_));
}

JoinResult DcdmTree::join(graph::NodeId s) {
  SCMP_EXPECTS(g_->valid(s));
  OBS_SPAN("dcdm.join");
  JoinResult result;
  if (tree_.is_member(s)) return result;  // duplicate join
  result.is_new_member = true;
  if (tree_.on_tree(s)) {
    // s is already a relay on the tree: membership flips, topology unchanged.
    // Its existing path is feasible by construction (every relay lies on a
    // member's admitted path), so it is admitted at the current bound.
    result.already_on_tree = true;
    tree_.set_member(s, true);
    record_admission(s, delay_bound_for(s));
    return result;
  }

  const double bound = delay_bound_for(s);

  // Candidate selection over the 2m precomputed paths (P_sl and P_lc from
  // every on-tree node t to s): cheapest feasible, ties broken by smaller
  // multicast delay, then by smaller graft-node id (deterministic). Every
  // candidate is scored from the dual-weight tables — the same source-to-
  // destination accumulation Dijkstra ran, so bit-identical to re-walking
  // the materialized path — and only the winner is materialized below.
  double best_cost = 0.0;
  double best_ml = 0.0;
  graph::NodeId best_graft = graph::kInvalidNode;
  bool best_is_sl = false;
  bool have_best = false;
  std::uint64_t candidates = 0;
  const auto consider = [&](graph::NodeId t, double td, double pd, double pc,
                            bool is_sl) {
    if (std::isinf(pd)) return;  // s unreachable from t
    ++candidates;
    const double ml = td + pd;
    if (ml > bound) return;
    const bool better =
        !have_best || pc < best_cost ||
        // determinism: allow(canonical cost -> ml -> graft-id tie-break; both
        // sides come from the same path-DB sums on one platform, and the
        // golden traces pin the resulting order)
        (pc == best_cost &&
         // determinism: allow(canonical cost -> ml -> graft-id tie-break;
         // both sides come from the same path-DB sums on one platform, and
         // the golden traces pin the resulting order)
         (ml < best_ml || (ml == best_ml && t < best_graft)));
    if (better) {
      best_cost = pc;
      best_ml = ml;
      best_graft = t;
      best_is_sl = is_sl;
      have_best = true;
    }
  };
  for (graph::NodeId t = 0; t < g_->num_nodes(); ++t) {
    if (!tree_.on_tree(t)) continue;
    const double td = tree_.node_delay(*g_, t);
    consider(t, td, paths_->sl_delay(t, s), paths_->sl_cost(t, s), true);
    consider(t, td, paths_->lc_delay(t, s), paths_->lc_cost(t, s), false);
  }
  static obs::Counter& candidates_scanned = obs::counter("dcdm.join.candidates");
  candidates_scanned.inc(candidates);
  // The shortest-delay path from the root is always feasible
  // (ml = ul(s) <= slack * max_ul <= bound), so a candidate must exist.
  SCMP_ASSERT(have_best);
  if (best_is_sl) {
    paths_->sl_path_into(best_graft, s, scratch_graft_);
  } else {
    paths_->lc_path_into(best_graft, s, scratch_graft_);
  }

  // Snapshot parents to detect loop-elimination restructuring, and member
  // delays so restructure-moved members can be re-admitted at their new
  // multicast delay. One pass fully re-initializes every scratch slot, so
  // stale values from earlier joins never leak into this one.
  for (graph::NodeId v = 0; v < g_->num_nodes(); ++v) {
    const auto idx = static_cast<std::size_t>(v);
    if (tree_.on_tree(v)) {
      scratch_was_on_tree_[idx] = 1;
      scratch_old_parent_[idx] = tree_.parent(v);
      scratch_old_delay_[idx] = tree_.is_member(v)
                                    ? tree_.node_delay(*g_, v)
                                    : std::numeric_limits<double>::quiet_NaN();
    } else {
      scratch_was_on_tree_[idx] = 0;
      scratch_old_parent_[idx] = graph::kInvalidNode;
      scratch_old_delay_[idx] = std::numeric_limits<double>::quiet_NaN();
    }
  }

  tree_.graft_path(scratch_graft_);
  tree_.set_member(s, true);
  record_admission(s, bound);
  for (graph::NodeId m = 0; m < g_->num_nodes(); ++m) {
    const double before = scratch_old_delay_[static_cast<std::size_t>(m)];
    if (std::isnan(before)) continue;  // was not a member pre-graft
    const double after = tree_.node_delay(*g_, m);
    // determinism: allow(change detection: before is a cached copy of the
    // same deterministic node_delay computation, so an unchanged delay is
    // bit-identical and a changed one differs in value, not in rounding)
    if (after != before) {
      record_admission(
          m, std::max(admitted_bound_[static_cast<std::size_t>(m)], after));
    }
  }
  result.graft_path = scratch_graft_;

  for (graph::NodeId v = 0; v < g_->num_nodes(); ++v) {
    if (!scratch_was_on_tree_[static_cast<std::size_t>(v)]) continue;
    if (!tree_.on_tree(v)) {
      result.removed_nodes.push_back(v);
      result.restructured = true;
    } else if (tree_.parent(v) !=
               scratch_old_parent_[static_cast<std::size_t>(v)]) {
      result.restructured = true;
    }
  }
  if (result.restructured) {
    static obs::Counter& restructures = obs::counter("dcdm.restructures");
    restructures.inc();
  }
  SCMP_ENSURES(tree_.validate(*g_));
  return result;
}

LeaveResult DcdmTree::leave(graph::NodeId s) {
  SCMP_EXPECTS(g_->valid(s));
  OBS_SPAN("dcdm.leave");
  LeaveResult result;
  if (!tree_.is_member(s)) return result;
  result.was_member = true;
  tree_.set_member(s, false);
  admitted_bound_[static_cast<std::size_t>(s)] =
      std::numeric_limits<double>::quiet_NaN();

  for (graph::NodeId v = 0; v < g_->num_nodes(); ++v)
    scratch_was_on_tree_[static_cast<std::size_t>(v)] =
        tree_.on_tree(v) ? 1 : 0;

  tree_.prune_upward_from(s);

  for (graph::NodeId v = 0; v < g_->num_nodes(); ++v) {
    if (scratch_was_on_tree_[static_cast<std::size_t>(v)] && !tree_.on_tree(v))
      result.removed_nodes.push_back(v);
  }
  SCMP_ENSURES(tree_.validate(*g_));
  return result;
}

}  // namespace scmp::core
