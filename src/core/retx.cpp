#include "core/retx.hpp"

#include <utility>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "util/contracts.hpp"
#include "util/log.hpp"

namespace scmp::core {

RetxTable::RetxTable(sim::EventQueue& queue, RetxConfig cfg)
    : queue_(&queue), cfg_(cfg) {
  SCMP_EXPECTS(cfg_.timeout > 0.0);
  SCMP_EXPECTS(cfg_.backoff >= 1.0);
  SCMP_EXPECTS(cfg_.max_retries >= 0);
}

void RetxTable::arm(graph::NodeId sender, std::uint64_t req,
                    std::function<void()> resend) {
  if (!cfg_.enabled) return;
  SCMP_EXPECTS(req != 0);
  SCMP_EXPECTS(resend != nullptr);
  Pending p;
  p.next_timeout = cfg_.timeout * cfg_.backoff;
  p.resend = std::move(resend);
  const bool inserted =
      by_sender_[sender].emplace(req, std::move(p)).second;
  SCMP_EXPECTS(inserted && "request uids are never reused");
  ++live_;
  if (live_ > pending_hwm_) {
    pending_hwm_ = live_;
    static obs::Gauge& hwm = obs::gauge("scmp.retx.pending_hwm");
    hwm.set(static_cast<double>(pending_hwm_));
  }
  obs::flight_record(obs::FlightEventKind::kArm, queue_->now(), req, "", -1,
                     sender, -1);
  schedule_timer(sender, req, cfg_.timeout);
}

void RetxTable::ack(graph::NodeId sender, std::uint64_t req) {
  const auto sit = by_sender_.find(sender);
  if (sit == by_sender_.end()) return;
  if (sit->second.erase(req) == 0) return;  // duplicate/late ack
  --live_;
  ++acked_;
  static obs::Counter& acks = obs::counter("scmp.retx.acked");
  acks.inc();
  obs::flight_record(obs::FlightEventKind::kAck, queue_->now(), req, "", -1,
                     sender, -1);
  if (sit->second.empty()) by_sender_.erase(sit);
}

bool RetxTable::pending(graph::NodeId sender, std::uint64_t req) const {
  const auto sit = by_sender_.find(sender);
  return sit != by_sender_.end() && sit->second.contains(req);
}

std::size_t RetxTable::pending_count() const {
  std::size_t total = 0;
  for (const auto& [sender, reqs] : by_sender_) total += reqs.size();
  return total;
}

void RetxTable::schedule_timer(graph::NodeId sender, std::uint64_t req,
                               double delay) {
  // One timer chain per entry: each fire either retransmits and schedules
  // the next fire, or exhausts the budget. An ack simply erases the entry;
  // the outstanding timer then fires as a no-op (request uids are unique, so
  // a retired req can never be confused with a live one).
  queue_->schedule_in(delay, [this, sender, req]() {
    const auto sit = by_sender_.find(sender);
    if (sit == by_sender_.end()) return;
    const auto it = sit->second.find(req);
    if (it == sit->second.end()) return;
    Pending& p = it->second;
    if (p.attempts >= cfg_.max_retries) {
      // Budget exhausted: degrade gracefully. The request's state transfer
      // is abandoned here; the soft-state reconciliation cycle repairs the
      // divergence it leaves behind.
      ++exhausted_;
      static obs::Counter& exhausted = obs::counter("scmp.retx.exhausted");
      exhausted.inc();
      obs::flight_record(obs::FlightEventKind::kExhausted, queue_->now(), req,
                         "", -1, sender, -1);
      log_debug("retx: sender ", sender, " abandoned request ", req, " after ",
                p.attempts, " retransmission(s)");
      sit->second.erase(it);
      --live_;
      if (sit->second.empty()) by_sender_.erase(sit);
      return;
    }
    ++p.attempts;
    ++retransmissions_;
    static obs::Counter& retx = obs::counter("scmp.retx.packets");
    retx.inc();
    obs::flight_record(obs::FlightEventKind::kRetx, queue_->now(), req, "",
                       -1, sender, -1);
    const double next = p.next_timeout;
    p.next_timeout *= cfg_.backoff;
    p.resend();
    schedule_timer(sender, req, next);
  });
}

}  // namespace scmp::core
