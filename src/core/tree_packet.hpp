// The self-routing TREE packet codec (paper §III-E). A TREE packet sent to
// router X describes the whole subtree rooted at X as a recursive word
// sequence:
//
//   packet(X) = [ k, (child_1, len(packet(child_1)), packet(child_1)),
//                    ..., (child_k, len(...), packet(child_k)) ]
//
// where k is X's number of downstream routers and len counts 32-bit words —
// exactly the format of the paper's worked example
// (3; 4,1,(0); 5,7,(2,7,1,0,8,1,0); 6,4,(1,9,1,0)).
//
// Routers forward TREE packets by splitting them: each child's sub-sequence
// becomes the TREE packet sent to that child, with no routing-table lookups
// (self-routing). BRANCH packets, the incremental variant, are a plain
// router sequence from the m-router to the new member and use Packet::path.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/multicast_tree.hpp"

namespace scmp::core {

using TreeWords = std::vector<std::uint32_t>;

/// Encodes the subtree of `tree` rooted at `subtree_root` (the words describe
/// the descendants; the recipient is implicit, per the paper's format).
TreeWords encode_subtree(const graph::MulticastTree& tree,
                         graph::NodeId subtree_root);

/// One direct downstream entry parsed from a TREE packet.
struct TreeChild {
  graph::NodeId id = graph::kInvalidNode;
  TreeWords subpacket;  ///< the TREE packet to forward to `id`
};

/// True when `words` is a structurally valid TREE packet: every length field
/// in range, no trailing garbage, every subpacket recursively well-formed.
/// Routers validate before splitting so a corrupted packet is dropped
/// instead of crashing the control plane.
bool is_well_formed(const TreeWords& words);

/// Splits a TREE packet into its direct downstream entries (the i-router
/// operation of §III-E). Aborts on malformed input via contracts — callers
/// on untrusted input check is_well_formed() first.
std::vector<TreeChild> split_tree_packet(const TreeWords& words);

/// Fully decodes a TREE packet into the set of (child, parent) edges of the
/// subtree, given the recipient's id. Convenience for tests/verification.
std::vector<std::pair<graph::NodeId, graph::NodeId>> decode_edges(
    const TreeWords& words, graph::NodeId recipient);

/// Number of routers described by the packet (recipient excluded).
int node_count(const TreeWords& words);

/// Byte serialisation for Packet::payload (little-endian 32-bit words).
std::vector<std::uint8_t> to_bytes(const TreeWords& words);
TreeWords from_bytes(const std::vector<std::uint8_t>& bytes);

}  // namespace scmp::core
