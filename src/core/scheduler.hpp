// Traffic scheduling and transmission bandwidth management at the m-router
// (paper §II-A lists both among the m-router's service-related tasks).
//
// Weighted fair queueing over the groups sharing an m-router egress port:
// each group holds a configurable weight (the knob an ISP bills by); packets
// are served in virtual-finish-time order, giving each backlogged group a
// bandwidth share proportional to its weight regardless of packet sizes or
// arrival patterns. The implementation is start-time-updated virtual-clock
// WFQ with deterministic tie-breaking.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <queue>

namespace scmp::core {

using GroupId = int;

class WfqScheduler {
 public:
  /// `capacity_bps` is the port's line rate; it converts served bytes into
  /// real dequeue times.
  explicit WfqScheduler(double capacity_bps);

  /// Sets a group's weight (> 0); unset groups weigh 1.
  void set_weight(GroupId group, double weight);
  double weight_of(GroupId group) const;

  /// Queues one packet. `now` is the arrival (enqueue) time in seconds.
  void enqueue(GroupId group, std::uint64_t uid, std::size_t bytes,
               double now);

  struct Scheduled {
    GroupId group = -1;
    std::uint64_t uid = 0;
    std::size_t bytes = 0;
    /// Time the packet finishes transmitting on the port, given the line
    /// rate and everything scheduled ahead of it.
    double dequeue_time = 0.0;
  };

  /// Serves the next packet in virtual-finish order; nullopt when idle.
  std::optional<Scheduled> dequeue();

  std::size_t pending() const { return heap_.size(); }
  bool idle() const { return heap_.empty(); }

  /// Bytes served per group since construction (fairness accounting, which
  /// also feeds the database's billing records).
  const std::map<GroupId, std::uint64_t>& served_bytes() const {
    return served_;
  }

 private:
  struct Entry {
    double virtual_finish = 0.0;
    GroupId group = -1;
    std::uint64_t uid = 0;
    std::size_t bytes = 0;
    double arrival = 0.0;   ///< real enqueue time
    std::uint64_t seq = 0;  ///< arrival order, breaks exact ties
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      // determinism: allow(strict weak order over (virtual_finish, seq):
      // bit-equal finish times fall through to the seq tie-break, so the
      // ordering is deterministic for any float values)
      if (a.virtual_finish != b.virtual_finish)
        return a.virtual_finish > b.virtual_finish;
      return a.seq > b.seq;
    }
  };

  double capacity_bps_;
  double virtual_time_ = 0.0;
  double port_free_at_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::map<GroupId, double> weights_;
  std::map<GroupId, double> last_finish_;  ///< per-group virtual finish
  std::map<GroupId, std::uint64_t> served_;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
};

}  // namespace scmp::core
