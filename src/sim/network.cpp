#include "sim/network.hpp"

#include <algorithm>
#include <array>
#include <map>

#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace scmp::sim {

namespace {

// Link-level observability: packets/bytes transmitted by PacketType plus the
// three drop classes. The counters are resolved once (function-local static)
// so the per-packet cost with metrics disabled is a relaxed load + branch.
constexpr int kNumPacketTypes =
    static_cast<int>(PacketType::kIgmpLeave) + 1;

struct LinkCounters {
  std::array<obs::Counter*, kNumPacketTypes> packets{};
  std::array<obs::Counter*, kNumPacketTypes> bytes{};
  obs::Counter* no_link_drops = nullptr;
  obs::Counter* queue_drops = nullptr;
  obs::Counter* injected_drops = nullptr;
  obs::Counter* deliveries = nullptr;
};

const LinkCounters& link_counters() {
  static const LinkCounters counters = [] {
    LinkCounters c;
    for (int i = 0; i < kNumPacketTypes; ++i) {
      const auto t = static_cast<PacketType>(i);
      c.packets[static_cast<std::size_t>(i)] =
          &obs::counter("net.tx.packets", to_string(t));
      c.bytes[static_cast<std::size_t>(i)] =
          &obs::counter("net.tx.bytes", to_string(t));
    }
    c.no_link_drops = &obs::counter("net.drops.no_link");
    c.queue_drops = &obs::counter("net.drops.queue");
    c.injected_drops = &obs::counter("net.drops.injected");
    c.deliveries = &obs::counter("net.deliveries");
    return c;
  }();
  return counters;
}

}  // namespace

Network::Network(const graph::Graph& g, EventQueue& queue,
                 double bandwidth_bps, double delay_scale)
    : graph_(g),
      queue_(&queue),
      routing_(g, graph::Metric::kDelay),
      agents_(static_cast<std::size_t>(g.num_nodes()), nullptr),
      bandwidth_bps_(bandwidth_bps),
      delay_scale_(delay_scale) {
  SCMP_EXPECTS(bandwidth_bps > 0.0 && delay_scale > 0.0);
  link_free_.resize(static_cast<std::size_t>(g.num_nodes()));
  link_bytes_.resize(static_cast<std::size_t>(g.num_nodes()));
  link_backlog_.resize(static_cast<std::size_t>(g.num_nodes()));
  node_bandwidth_.assign(static_cast<std::size_t>(g.num_nodes()),
                         bandwidth_bps);
  switch_bps_.assign(static_cast<std::size_t>(g.num_nodes()), 0.0);
  switch_free_.assign(static_cast<std::size_t>(g.num_nodes()), 0.0);
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    link_free_[static_cast<std::size_t>(u)].assign(g.neighbors(u).size(), 0.0);
    link_bytes_[static_cast<std::size_t>(u)].assign(g.neighbors(u).size(), 0);
    link_backlog_[static_cast<std::size_t>(u)].assign(g.neighbors(u).size(),
                                                      0);
  }
}

void Network::set_node_bandwidth(graph::NodeId node, double bps) {
  SCMP_EXPECTS(graph_.valid(node) && bps > 0.0);
  node_bandwidth_[static_cast<std::size_t>(node)] = bps;
}

double Network::node_bandwidth(graph::NodeId node) const {
  SCMP_EXPECTS(graph_.valid(node));
  return node_bandwidth_[static_cast<std::size_t>(node)];
}

void Network::set_node_queue_limit(graph::NodeId node, std::size_t packets) {
  SCMP_EXPECTS(graph_.valid(node));
  node_queue_limit_[node] = packets;
}

std::size_t Network::node_queue_limit(graph::NodeId node) const {
  const auto it = node_queue_limit_.find(node);
  return it == node_queue_limit_.end() ? queue_limit_ : it->second;
}

void Network::set_node_switch_capacity(graph::NodeId node, double bps) {
  SCMP_EXPECTS(graph_.valid(node) && bps > 0.0);
  switch_bps_[static_cast<std::size_t>(node)] = bps;
}

int Network::link_backlog(graph::NodeId from, graph::NodeId to) const {
  const auto& nbs = graph_.neighbors(from);
  for (std::size_t i = 0; i < nbs.size(); ++i) {
    if (nbs[i].to == to)
      return link_backlog_[static_cast<std::size_t>(from)][i];
  }
  SCMP_EXPECTS(false && "no such link");
  return 0;
}

void Network::fail_link(graph::NodeId u, graph::NodeId v) {
  SCMP_EXPECTS(graph_.has_edge(u, v));
  // Preserve the per-directed-link byte counters across the index reshuffle.
  std::map<std::pair<graph::NodeId, graph::NodeId>, std::uint64_t> bytes;
  for (graph::NodeId from = 0; from < graph_.num_nodes(); ++from) {
    const auto& nbs = graph_.neighbors(from);
    for (std::size_t i = 0; i < nbs.size(); ++i)
      bytes[{from, nbs[i].to}] =
          link_bytes_[static_cast<std::size_t>(from)][i];
  }
  graph_.remove_edge(u, v);
  SCMP_EXPECTS(graph_.is_connected());  // unicast routing needs reachability

  routing_ = UnicastRouting(graph_, graph::Metric::kDelay);
  for (graph::NodeId from = 0; from < graph_.num_nodes(); ++from) {
    const auto& nbs = graph_.neighbors(from);
    link_free_[static_cast<std::size_t>(from)].assign(nbs.size(), 0.0);
    link_bytes_[static_cast<std::size_t>(from)].assign(nbs.size(), 0);
    link_backlog_[static_cast<std::size_t>(from)].assign(nbs.size(), 0);
    for (std::size_t i = 0; i < nbs.size(); ++i)
      link_bytes_[static_cast<std::size_t>(from)][i] =
          bytes[{from, nbs[i].to}];
  }
}

void Network::attach(graph::NodeId node, RouterAgent* agent) {
  SCMP_EXPECTS(graph_.valid(node));
  agents_[static_cast<std::size_t>(node)] = agent;
}

RouterAgent* Network::agent(graph::NodeId node) const {
  SCMP_EXPECTS(graph_.valid(node));
  return agents_[static_cast<std::size_t>(node)];
}

double Network::link_delay_seconds(graph::NodeId u, graph::NodeId v) const {
  const graph::EdgeAttr* e = graph_.edge(u, v);
  SCMP_EXPECTS(e != nullptr);
  return e->delay * delay_scale_;
}

void Network::transmit(graph::NodeId from, graph::NodeId to, Packet pkt,
                       Arrival arrival) {
  const graph::EdgeAttr* e = graph_.edge(from, to);
  if (e == nullptr) {
    // The interface is down (the link failed while this router still held
    // forwarding state across it): drop, as a real router would.
    ++stats_.no_link_drops;
    link_counters().no_link_drops->inc();
    packet_pool_.release(std::move(pkt));
    return;
  }

  // Injected loss (verification fault model) happens at the egress interface,
  // before the packet consumes any link resources.
  if (drop_filter_ && drop_filter_(from, to, pkt)) {
    ++stats_.injected_drops;
    link_counters().injected_drops->inc();
    packet_pool_.release(std::move(pkt));
    return;
  }

  // FIFO transmission on the directed link, then propagation.
  const auto& nbs = graph_.neighbors(from);
  std::size_t slot = nbs.size();
  for (std::size_t i = 0; i < nbs.size(); ++i) {
    if (nbs[i].to == to) {
      slot = i;
      break;
    }
  }
  SCMP_ASSERT(slot < nbs.size());

  // Drop-tail egress queue (the finite buffers behind the paper's §I
  // traffic-concentration argument).
  int& backlog = link_backlog_[static_cast<std::size_t>(from)][slot];
  if (static_cast<std::size_t>(backlog) >= node_queue_limit(from)) {
    ++stats_.queue_drops;
    link_counters().queue_drops->inc();
    packet_pool_.release(std::move(pkt));
    return;
  }
  ++backlog;

  // Overhead accounting: every link crossing contributes the link's cost
  // (paper §IV-B definition of data/protocol overhead). Only admitted
  // packets count — a queue-dropped packet never crosses the link, so it
  // must not inflate the overhead metrics.
  if (pkt.is_data()) {
    stats_.data_overhead += e->cost;
    ++stats_.data_link_crossings;
  } else {
    stats_.protocol_overhead += e->cost;
    ++stats_.protocol_link_crossings;
  }

  link_bytes_[static_cast<std::size_t>(from)][slot] += pkt.size_bytes;
  {
    const auto type_idx = static_cast<std::size_t>(pkt.type);
    const LinkCounters& counters = link_counters();
    counters.packets[type_idx]->inc();
    counters.bytes[type_idx]->inc(pkt.size_bytes);
  }
  dispatching_observers_ = true;
  for (const TransmitCallback& observer : transmit_observers_)
    observer(from, to, pkt, queue_->now());
  dispatching_observers_ = false;

  // The packet first crosses the router's switching fabric (shared across
  // all ports; unlimited unless configured), then its egress port.
  SimTime ready = queue_->now();
  const double switch_bps = switch_bps_[static_cast<std::size_t>(from)];
  if (switch_bps > 0.0) {
    SimTime& sw_free = switch_free_[static_cast<std::size_t>(from)];
    const double sw_time =
        static_cast<double>(pkt.size_bytes) * 8.0 / switch_bps;
    sw_free = std::max(ready, sw_free) + sw_time;
    ready = sw_free;
  }

  SimTime& free_at = link_free_[static_cast<std::size_t>(from)][slot];
  const double tx = static_cast<double>(pkt.size_bytes) * 8.0 /
                    node_bandwidth_[static_cast<std::size_t>(from)];
  const SimTime start = std::max(ready, free_at);
  free_at = start + tx;
  // The packet leaves the egress queue when its transmission completes. The
  // slot is re-resolved at fire time: fail_link() reshuffles the adjacency
  // (and resets the counters of removed links).
  queue_->schedule_at(free_at, [this, from, to]() {
    const auto& neighbors = graph_.neighbors(from);
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      if (neighbors[i].to == to) {
        --link_backlog_[static_cast<std::size_t>(from)][i];
        return;
      }
    }
  });
  const SimTime arrival_at = free_at + e->delay * delay_scale_;
  // The packet moves into the arrival closure — no copy — and the closure
  // is a fixed-size capture (this + endpoints + mode + the packet itself)
  // sized to the queue's inline handler buffer, so the hot delivery path
  // stores it without boxing. Network guarantees this at compile time:
  auto deliver = [this, from, to, arrival, p = std::move(pkt)]() mutable {
    if (arrival == Arrival::kForward) {
      forward_unicast(to, from, std::move(p));
      return;
    }
    RouterAgent* a = agents_[static_cast<std::size_t>(to)];
    SCMP_ASSERT(a != nullptr);
    a->handle(p, from);
    // The agent saw a const reference (anything it kept is a copy); the
    // packet is dead here and its vector capacity goes back to the pool.
    packet_pool_.release(std::move(p));
  };
  static_assert(EventQueue::Handler::stores_inline<decltype(deliver)>(),
                "delivery closure must fit kEventHandlerCapacity");
  queue_->schedule_at(arrival_at, std::move(deliver));
}

void Network::send_link(graph::NodeId from, graph::NodeId to, Packet pkt) {
  // describe() builds a string; guard so the disabled-trace hot path pays
  // only the level check.
  if (log_level() >= LogLevel::kTrace)
    log_trace("link ", from, "->", to, " ", describe(pkt));
  transmit(from, to, std::move(pkt), Arrival::kHandle);
}

void Network::forward_unicast(graph::NodeId at, graph::NodeId prev,
                              Packet pkt) {
  if (at == pkt.dst) {
    RouterAgent* a = agents_[static_cast<std::size_t>(at)];
    SCMP_ASSERT(a != nullptr);
    a->handle(pkt, prev);
    packet_pool_.release(std::move(pkt));
    return;
  }
  const graph::NodeId hop = routing_.next_hop(at, pkt.dst);
  transmit(at, hop, std::move(pkt), Arrival::kForward);
}

void Network::send_unicast(graph::NodeId from, Packet pkt) {
  SCMP_EXPECTS(graph_.valid(pkt.dst));
  if (log_level() >= LogLevel::kTrace)
    log_trace("unicast ", from, "=>", pkt.dst, " ", describe(pkt));
  if (from == pkt.dst) {
    // Local delivery still goes through the event queue for determinism.
    queue_->schedule_in(0.0, [this, from, p = std::move(pkt)]() mutable {
      RouterAgent* a = agents_[static_cast<std::size_t>(from)];
      SCMP_ASSERT(a != nullptr);
      a->handle(p, graph::kInvalidNode);
      packet_pool_.release(std::move(p));
    });
    return;
  }
  forward_unicast(from, graph::kInvalidNode, std::move(pkt));
}

void Network::inject(graph::NodeId at, Packet pkt) {
  queue_->schedule_in(0.0, [this, at, p = std::move(pkt)]() mutable {
    RouterAgent* a = agents_[static_cast<std::size_t>(at)];
    SCMP_ASSERT(a != nullptr);
    a->handle(p, graph::kInvalidNode);
    packet_pool_.release(std::move(p));
  });
}

Packet Network::clone_packet(const Packet& p) {
  Packet c = packet_pool_.acquire();
  c.type = p.type;
  c.group = p.group;
  c.src = p.src;
  c.dst = p.dst;
  c.uid = p.uid;
  c.req = p.req;
  c.created_at = p.created_at;
  c.size_bytes = p.size_bytes;
  c.path = p.path;        // vector assignment reuses the recycled capacity
  c.payload = p.payload;
  return c;
}

std::uint64_t Network::bytes_on_link(graph::NodeId u, graph::NodeId v) const {
  SCMP_EXPECTS(graph_.edge(u, v) != nullptr);
  std::uint64_t total = 0;
  auto add_direction = [&](graph::NodeId from, graph::NodeId to) {
    const auto& nbs = graph_.neighbors(from);
    for (std::size_t i = 0; i < nbs.size(); ++i) {
      if (nbs[i].to == to) {
        total += link_bytes_[static_cast<std::size_t>(from)][i];
        return;
      }
    }
  };
  add_direction(u, v);
  add_direction(v, u);
  return total;
}

void Network::report_delivery(const Packet& pkt, graph::NodeId member) {
  ++stats_.deliveries;
  link_counters().deliveries->inc();
  const double e2e = queue_->now() - pkt.created_at;
  stats_.max_end_to_end_delay = std::max(stats_.max_end_to_end_delay, e2e);
  if (on_delivery_) on_delivery_(pkt, member, queue_->now());
}

}  // namespace scmp::sim
