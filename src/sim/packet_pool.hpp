// Recycles Packet objects so the steady-state forwarding path reuses the
// heap capacity of `path`/`payload` instead of allocating fresh vectors per
// link crossing. The network releases a packet when it dies (delivered to an
// agent, or dropped at an egress) and acquires from the pool when it clones
// for a tree fan-out; the free list is therefore bounded by the in-flight
// high-water mark (and capped defensively, see kMaxFree).
#pragma once

#include <cstddef>
#include <vector>

#include "sim/packet.hpp"

namespace scmp::sim {

class PacketPool {
 public:
  /// A blank packet (default-constructed field values). When the free list
  /// is non-empty this recycles a released packet — its `path`/`payload`
  /// keep their old capacity — and counts sim.pool.packets.reuse.
  Packet acquire();

  /// Returns a dead packet to the pool. Scalars are reset and the vectors
  /// cleared (capacity retained) so acquire() hands out blank packets.
  void release(Packet&& p);

  /// Packets currently parked on the free list (introspection for tests).
  std::size_t free_count() const { return free_.size(); }

  /// Free-list cap: beyond this a released packet is simply destroyed, so a
  /// burst of in-flight packets cannot pin memory forever.
  static constexpr std::size_t kMaxFree = 1024;

 private:
  std::vector<Packet> free_;
};

}  // namespace scmp::sim
