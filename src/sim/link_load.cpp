#include "sim/link_load.hpp"

#include <algorithm>

namespace scmp::sim {

std::vector<LinkLoad> link_loads(const Network& net) {
  const graph::Graph& g = net.graph();
  std::vector<LinkLoad> loads;
  loads.reserve(static_cast<std::size_t>(g.num_edges()));
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const auto& nb : g.neighbors(u)) {
      if (u >= nb.to) continue;  // one entry per undirected link
      loads.push_back({u, nb.to, net.bytes_on_link(u, nb.to)});
    }
  }
  std::sort(loads.begin(), loads.end(),
            [](const LinkLoad& a, const LinkLoad& b) {
              if (a.bytes != b.bytes) return a.bytes > b.bytes;
              if (a.u != b.u) return a.u < b.u;
              return a.v < b.v;
            });
  return loads;
}

std::uint64_t max_link_load(const Network& net) {
  const auto loads = link_loads(net);
  return loads.empty() ? 0 : loads.front().bytes;
}

graph::Graph utilization_adjusted(const graph::Graph& g, const Network& net,
                                  double alpha) {
  SCMP_EXPECTS(alpha >= 0.0);
  const double max_bytes = static_cast<double>(max_link_load(net));
  graph::Graph out(g.num_nodes());
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const auto& nb : g.neighbors(u)) {
      if (u >= nb.to) continue;
      double factor = 1.0;
      if (max_bytes > 0.0 && alpha > 0.0) {
        factor += alpha * static_cast<double>(net.bytes_on_link(u, nb.to)) /
                  max_bytes;
      }
      out.add_edge(u, nb.to, nb.attr.delay, nb.attr.cost * factor);
    }
  }
  return out;
}

}  // namespace scmp::sim
