#include "sim/packet_pool.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "util/contracts.hpp"

namespace scmp::sim {

namespace {

obs::Counter& reuse_counter() {
  static obs::Counter& c = obs::counter("sim.pool.packets.reuse");
  return c;
}

}  // namespace

Packet PacketPool::acquire() {
  if (free_.empty()) return Packet{};
  Packet p = std::move(free_.back());
  free_.pop_back();
  if (obs::metrics_enabled()) reuse_counter().inc();
  SCMP_ENSURES(p.path.empty() && p.payload.empty());  // release() cleared it
  return p;
}

void PacketPool::release(Packet&& p) {
  if (free_.size() >= kMaxFree) return;  // destroy: the pool is full
  // Reset to the blank state acquire() promises, moving the vectors through
  // so their capacity survives the round trip.
  Packet blank;
  blank.path = std::move(p.path);
  blank.payload = std::move(p.payload);
  blank.path.clear();
  blank.payload.clear();
  free_.push_back(std::move(blank));
}

}  // namespace scmp::sim
