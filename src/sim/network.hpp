// The simulated domain: the topology, its link-state unicast substrate, the
// per-router protocol agents, and the two bandwidth-accounting counters the
// paper evaluates (data overhead and protocol overhead, both in link-cost
// units per link crossing, §IV-B).
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "graph/graph.hpp"
#include "sim/event_queue.hpp"
#include "sim/packet.hpp"
#include "sim/packet_pool.hpp"
#include "sim/routing.hpp"
#include "util/contracts.hpp"

namespace scmp::sim {

/// Protocol logic attached to one router. `from` is the neighbouring router
/// the packet arrived from, or kInvalidNode when locally injected.
class RouterAgent {
 public:
  virtual ~RouterAgent() = default;
  virtual void handle(const Packet& pkt, graph::NodeId from) = 0;
};

struct NetStats {
  double data_overhead = 0.0;      ///< sum of link costs crossed by data
  double protocol_overhead = 0.0;  ///< sum of link costs crossed by control
  std::uint64_t data_link_crossings = 0;
  std::uint64_t protocol_link_crossings = 0;
  std::uint64_t deliveries = 0;
  double max_end_to_end_delay = 0.0;  ///< seconds, over all data deliveries
  /// Sends attempted over a non-existent (e.g. just-failed) link; the
  /// sending router sees the interface down and drops the packet.
  std::uint64_t no_link_drops = 0;
  /// Packets dropped because a finite egress queue overflowed (the paper's
  /// §I traffic-concentration failure mode).
  std::uint64_t queue_drops = 0;
  /// Packets dropped by an installed fault-injection filter
  /// (Network::set_drop_filter; the verification harness's loss model).
  std::uint64_t injected_drops = 0;
};

class Network {
 public:
  /// `delay_scale` converts graph delay units (grid distances, up to ~65534)
  /// to seconds; the default puts a worst-case single link at ~65 ms.
  /// The network keeps its own copy of the topology so links can fail at
  /// runtime (fail_link).
  Network(const graph::Graph& g, EventQueue& queue,
          double bandwidth_bps = 1e9, double delay_scale = 1e-6);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  const graph::Graph& graph() const { return graph_; }

  /// Removes the link {u, v} and reconverges the unicast routing substrate
  /// (the link-state protocol every router runs). Packets already in flight
  /// on the link still arrive. The residual topology must stay connected
  /// (unicast routing assumes reachability). Multicast protocols are told
  /// separately via MulticastProtocol::on_topology_change().
  void fail_link(graph::NodeId u, graph::NodeId v);
  const UnicastRouting& routing() const { return routing_; }
  EventQueue& queue() { return *queue_; }
  SimTime now() const { return queue_->now(); }
  NetStats& stats() { return stats_; }
  const NetStats& stats() const { return stats_; }

  /// Registers the protocol agent for a router (non-owning).
  void attach(graph::NodeId node, RouterAgent* agent);
  RouterAgent* agent(graph::NodeId node) const;

  /// Transmits over the physical edge {from, to} (must exist); the agent at
  /// `to` receives handle(pkt, from) after propagation + transmission delay.
  void send_link(graph::NodeId from, graph::NodeId to, Packet pkt);

  /// IP unicast to pkt.dst: forwarded hop-by-hop on the shortest-delay path;
  /// only the destination's agent sees the packet (intermediate routers
  /// forward at the IP layer, exactly how SCMP JOIN/LEAVE and encapsulated
  /// data travel in the paper).
  void send_unicast(graph::NodeId from, Packet pkt);

  /// Hands a locally-originated packet to a node's own agent at current time.
  void inject(graph::NodeId at, Packet pkt);

  /// Fresh identity for an original data packet.
  std::uint64_t next_uid() { return ++uid_counter_; }

  /// Packet recycling (see PacketPool). The network releases every packet
  /// it retires — delivered to an agent or dropped at an egress — so
  /// protocols that build many short-lived packets (tree fan-out, floods)
  /// can acquire recycled ones instead of allocating fresh vectors.
  Packet make_packet() { return packet_pool_.acquire(); }
  /// A field-for-field copy of `p` built on a recycled packet, reusing the
  /// recycled path/payload capacity (the fan-out clone primitive).
  Packet clone_packet(const Packet& p);
  void release_packet(Packet&& p) { packet_pool_.release(std::move(p)); }
  const PacketPool& packet_pool() const { return packet_pool_; }

  using DeliveryCallback =
      std::function<void(const Packet&, graph::NodeId member, SimTime at)>;
  void set_delivery_callback(DeliveryCallback cb) { on_delivery_ = std::move(cb); }

  /// Fault injection for the verification harness (src/verify): when set, a
  /// packet the filter returns true for is dropped at the sender's egress —
  /// before any overhead accounting — and counted in stats().injected_drops.
  /// This models lossy links and lets the churn model-checker build protocol
  /// mutants (e.g. "every PRUNE is lost") without touching protocol code.
  using DropFilter = std::function<bool(graph::NodeId from, graph::NodeId to,
                                        const Packet&)>;
  void set_drop_filter(DropFilter filter) { drop_filter_ = std::move(filter); }

  /// Structured observation of every link transmission, called at send time.
  /// Observers chain: a TraceRecorder, the verification auditor's hooks and
  /// the metrics layer can all watch the same network — registering one
  /// never replaces another. Invoked in registration order.
  ///
  /// Thread/reentrancy confinement: the chain is part of the
  /// single-threaded simulation loop. Observers run on the sim thread and
  /// must not register further observers from inside their callback — that
  /// would invalidate the iterator driving the dispatch (and make the
  /// observation order depend on when the mutation landed). transmit()
  /// enforces this with a dispatch guard.
  using TransmitCallback = std::function<void(graph::NodeId from,
                                              graph::NodeId to,
                                              const Packet&, SimTime at)>;
  void add_transmit_observer(TransmitCallback cb) {
    SCMP_EXPECTS(!dispatching_observers_);
    transmit_observers_.push_back(std::move(cb));
  }
  std::size_t transmit_observer_count() const {
    return transmit_observers_.size();
  }

  /// Bytes transmitted over the undirected link {u, v} so far (both
  /// directions; the paper's utilisation-driven link-cost model feeds on
  /// this).
  std::uint64_t bytes_on_link(graph::NodeId u, graph::NodeId v) const;

  /// Protocol agents call this when a data packet reaches a member router.
  void report_delivery(const Packet& pkt, graph::NodeId member);

  /// Propagation delay of edge {u, v} in seconds.
  double link_delay_seconds(graph::NodeId u, graph::NodeId v) const;

  /// Caps every egress queue at `packets` waiting for transmission; packets
  /// arriving at a full queue are dropped (drop-tail). Default: unlimited.
  void set_queue_limit(std::size_t packets) { queue_limit_ = packets; }

  /// Per-router override of the egress queue depth — the m-router's large
  /// input/output buffers (paper Fig. 2(b)) that let it absorb many-to-many
  /// bursts an ordinary router would drop.
  void set_node_queue_limit(graph::NodeId node, std::size_t packets);
  std::size_t node_queue_limit(graph::NodeId node) const;

  /// Overrides the port line rate of one router's outgoing links — how the
  /// paper's m-router differs physically from an i-router (§II-A: "each of
  /// its input/output links has sufficiently high bandwidth").
  void set_node_bandwidth(graph::NodeId node, double bps);
  double node_bandwidth(graph::NodeId node) const;

  /// Aggregate switching capacity of one router: every packet it transmits,
  /// on any port, must first pass its switching fabric, which serialises at
  /// this rate. Default: unlimited (ports are the only bottleneck). An
  /// ordinary router has a capacity comparable to its port rate; the
  /// m-router's n x n fabric is what removes this bottleneck (§II-B).
  void set_node_switch_capacity(graph::NodeId node, double bps);

  /// Packets currently waiting on or being transmitted by the directed link
  /// from -> to (diagnostic for congestion tests).
  int link_backlog(graph::NodeId from, graph::NodeId to) const;

 private:
  /// What happens when a transmitted packet arrives at `to`. A two-way enum
  /// instead of a callback keeps the arrival closure a fixed POD capture
  /// that fits the event queue's inline handler buffer — the hot delivery
  /// path schedules without allocating.
  enum class Arrival : std::uint8_t {
    kHandle,   ///< hand to the agent at `to` (link-level delivery)
    kForward,  ///< continue IP forwarding toward pkt.dst
  };
  void transmit(graph::NodeId from, graph::NodeId to, Packet pkt,
                Arrival arrival);
  void forward_unicast(graph::NodeId at, graph::NodeId prev, Packet pkt);

  graph::Graph graph_;
  EventQueue* queue_;
  UnicastRouting routing_;
  NetStats stats_;
  std::vector<RouterAgent*> agents_;
  /// FIFO serialisation per directed link: time the link becomes free.
  std::vector<std::vector<SimTime>> link_free_;  // indexed like adjacency
  /// Bytes sent per directed link, indexed like adjacency.
  std::vector<std::vector<std::uint64_t>> link_bytes_;
  /// Packets queued or in transmission per directed link.
  std::vector<std::vector<int>> link_backlog_;
  std::size_t queue_limit_ = SIZE_MAX;
  std::map<graph::NodeId, std::size_t> node_queue_limit_;
  std::vector<double> node_bandwidth_;  ///< per-router port rate (bps)
  std::vector<double> switch_bps_;      ///< 0 = unlimited
  std::vector<SimTime> switch_free_;    ///< per-router fabric serialiser
  double bandwidth_bps_;
  double delay_scale_;
  std::uint64_t uid_counter_ = 0;
  DeliveryCallback on_delivery_;
  std::vector<TransmitCallback> transmit_observers_;
  /// True while transmit() walks the observer chain; registration is
  /// rejected during dispatch (see add_transmit_observer).
  bool dispatching_observers_ = false;
  DropFilter drop_filter_;
  PacketPool packet_pool_;
};

}  // namespace scmp::sim
