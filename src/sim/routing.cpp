#include "sim/routing.hpp"

namespace scmp::sim {

UnicastRouting::UnicastRouting(const graph::Graph& g, graph::Metric metric)
    : n_(g.num_nodes()) {
  next_hop_.assign(static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_),
                   graph::kInvalidNode);
  dist_.assign(static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_),
               graph::kUnreachable);
  for (graph::NodeId from = 0; from < n_; ++from) {
    const graph::ShortestPaths sp = graph::dijkstra(g, from, metric);
    // first_hop[v] = first node after `from` on the canonical path from->v,
    // computed in one pass by memoising over the predecessor tree.
    std::vector<graph::NodeId> first_hop(static_cast<std::size_t>(n_),
                                         graph::kInvalidNode);
    first_hop[static_cast<std::size_t>(from)] = from;
    for (graph::NodeId v = 0; v < n_; ++v) {
      if (!sp.reachable(v) ||
          first_hop[static_cast<std::size_t>(v)] != graph::kInvalidNode)
        continue;
      // Walk up the predecessor tree until a node with a known first hop.
      std::vector<graph::NodeId> chain;
      graph::NodeId cur = v;
      while (cur != from &&
             first_hop[static_cast<std::size_t>(cur)] == graph::kInvalidNode) {
        chain.push_back(cur);
        cur = sp.parent[static_cast<std::size_t>(cur)];
      }
      // If the walk reached `from`, the deepest chain entry is its direct
      // child and thus the first hop for the whole chain.
      graph::NodeId hop = (cur == from)
                              ? graph::kInvalidNode
                              : first_hop[static_cast<std::size_t>(cur)];
      for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
        if (hop == graph::kInvalidNode) hop = *it;
        first_hop[static_cast<std::size_t>(*it)] = hop;
      }
    }
    for (graph::NodeId v = 0; v < n_; ++v) {
      const auto idx = static_cast<std::size_t>(from) *
                           static_cast<std::size_t>(n_) +
                       static_cast<std::size_t>(v);
      next_hop_[idx] = first_hop[static_cast<std::size_t>(v)];
      dist_[idx] = sp.distance(v);
    }
  }
}

graph::NodeId UnicastRouting::next_hop(graph::NodeId from,
                                       graph::NodeId to) const {
  SCMP_EXPECTS(from >= 0 && from < n_ && to >= 0 && to < n_);
  const graph::NodeId hop =
      next_hop_[static_cast<std::size_t>(from) * static_cast<std::size_t>(n_) +
                static_cast<std::size_t>(to)];
  SCMP_EXPECTS(hop != graph::kInvalidNode);
  return hop;
}

double UnicastRouting::distance(graph::NodeId from, graph::NodeId to) const {
  SCMP_EXPECTS(from >= 0 && from < n_ && to >= 0 && to < n_);
  return dist_[static_cast<std::size_t>(from) * static_cast<std::size_t>(n_) +
               static_cast<std::size_t>(to)];
}

}  // namespace scmp::sim
