// Structured packet tracing: records every link transmission so tests and
// analyses can assert *routes*, not just outcomes (e.g. that a BRANCH packet
// really walked the tree path, or that a JOIN followed the unicast shortest
// path), in the spirit of NS-2's trace files.
#pragma once

#include <vector>

#include "sim/network.hpp"

namespace scmp::sim {

struct TraceEvent {
  SimTime time = 0.0;
  graph::NodeId from = graph::kInvalidNode;
  graph::NodeId to = graph::kInvalidNode;
  PacketType type = PacketType::kData;
  int group = -1;
  graph::NodeId src = graph::kInvalidNode;
  std::uint64_t uid = 0;
  std::size_t size_bytes = 0;
};

/// Captures the network's transmit stream. Construction registers a transmit
/// observer on the network; other observers (the verification auditor's
/// hooks, the metrics layer, further recorders) coexist with it. The
/// recorder must outlive the network's last transmission.
class TraceRecorder {
 public:
  explicit TraceRecorder(Network& net);

  const std::vector<TraceEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

  /// Events of one packet type, in time order.
  std::vector<TraceEvent> of_type(PacketType type) const;

  /// The hop sequence (from, to, ...) a specific packet id took, as the list
  /// of nodes visited starting at the first transmission's source. Only
  /// meaningful for packets forwarded along a single path.
  std::vector<graph::NodeId> path_of(std::uint64_t uid, PacketType type) const;

  /// Number of link crossings of a given type.
  std::size_t count(PacketType type) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace scmp::sim
