// Packet model shared by SCMP and the three baseline protocols. One struct
// with per-protocol fields keeps the simulator's delivery path uniform; the
// overhead accounting only needs the data/protocol split (paper §IV-B).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace scmp::sim {

enum class PacketType {
  // Multicast payload traffic (counts toward *data* overhead).
  kData,       ///< native multicast data on a tree
  kDataEncap,  ///< data unicast-encapsulated toward the m-router / core

  // SCMP control (paper §III).
  kJoin,    ///< DR -> m-router join request
  kLeave,   ///< DR -> m-router leave notification
  kTree,    ///< self-routing recursive TREE packet (payload = codec bytes)
  kBranch,  ///< incremental BRANCH packet (path = router sequence)
  kPrune,   ///< hop-by-hop upstream prune
  kClear,   ///< m-router -> stale i-router: drop routing entry (tree restructure)
  kAck,     ///< per-request acknowledgement of a reliably-sent control packet

  // CBT control.
  kCbtJoin,  ///< hop-by-hop join request toward the core
  kCbtAck,   ///< acknowledgement from the graft node back to the joiner
  kCbtQuit,  ///< hop-by-hop quit toward the core

  // DVMRP control.
  kDvmrpPrune,  ///< upstream prune of a (source, group) branch
  kDvmrpGraft,  ///< upstream graft re-attaching a pruned branch

  // PIM-SM control (extension; the paper names PIM-SM as the other shared-
  // tree protocol but does not simulate it).
  kPimJoin,   ///< hop-by-hop (*,G) join toward the RP or (S,G) join toward S
  kPimPrune,  ///< hop-by-hop (*,G)/(S,G)/(S,G,rpt) prune

  // MOSPF control.
  kGroupLsa,  ///< flooded group-membership LSA

  // IGMP (subnet-local; crosses no inter-router link).
  kIgmpQuery,
  kIgmpReport,
  kIgmpLeave,
};

/// True for packet types that carry application payload.
bool is_data_type(PacketType t);

const char* to_string(PacketType t);

/// Default sizes used for transmission-delay modelling (bytes).
inline constexpr std::size_t kDataPacketBytes = 1000;
inline constexpr std::size_t kControlPacketBytes = 64;

struct Packet {
  PacketType type = PacketType::kData;
  int group = -1;
  graph::NodeId src = graph::kInvalidNode;  ///< original originator
  graph::NodeId dst = graph::kInvalidNode;  ///< unicast destination, if any
  std::uint64_t uid = 0;                    ///< identity of the original send
  /// Reliable-delivery request id (0 = fire-and-forget). Distinct from `uid`,
  /// which SCMP control packets already use for install versions: an ACK
  /// answers `req`, and a retransmission repeats it unchanged.
  std::uint64_t req = 0;
  double created_at = 0.0;                  ///< send time of the original data
  std::size_t size_bytes = kControlPacketBytes;
  std::vector<graph::NodeId> path;     ///< BRANCH router sequence, etc.
  std::vector<std::uint8_t> payload;   ///< TREE packet codec bytes, etc.

  bool is_data() const { return is_data_type(type); }
};

/// Human-readable one-liner for traces.
std::string describe(const Packet& p);

}  // namespace scmp::sim
