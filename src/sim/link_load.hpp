// Utilisation-driven link costs (paper §II-D: "Link cost is determined by
// the utilization of the link. The higher the utilization, the higher the
// link cost"). The paper's simulations keep costs static; this module
// implements the model itself so the service-centric architecture's headline
// flexibility — the m-router re-optimising trees against observed load
// without touching any other router — can be exercised end to end.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "sim/network.hpp"

namespace scmp::sim {

struct LinkLoad {
  graph::NodeId u = graph::kInvalidNode;
  graph::NodeId v = graph::kInvalidNode;
  std::uint64_t bytes = 0;
};

/// Per-link traffic observed so far, sorted by descending bytes
/// (deterministic tie-break by node ids).
std::vector<LinkLoad> link_loads(const Network& net);

/// Bytes on the busiest link (0 when nothing was sent).
std::uint64_t max_link_load(const Network& net);

/// A copy of the topology with utilisation-adjusted costs:
///   cost' = cost * (1 + alpha * bytes(link) / max_bytes)
/// Delays are unchanged. With alpha = 0 or an idle network this is the
/// identity.
graph::Graph utilization_adjusted(const graph::Graph& g, const Network& net,
                                  double alpha);

}  // namespace scmp::sim
