// The link-state unicast routing substrate every router in the domain is
// assumed to run (paper §II-D: "each domain also runs a unicast routing
// protocol", a link-state one). We model its converged result: a dense
// next-hop table over shortest-delay paths, which also provides DVMRP's
// reverse-path-forwarding checks.
#pragma once

#include <vector>

#include "graph/dijkstra.hpp"
#include "graph/graph.hpp"

namespace scmp::sim {

class UnicastRouting {
 public:
  explicit UnicastRouting(const graph::Graph& g,
                          graph::Metric metric = graph::Metric::kDelay);

  /// First hop on the canonical shortest path from `from` to `to`.
  /// Returns `to` itself when they are equal. Requires reachability.
  graph::NodeId next_hop(graph::NodeId from, graph::NodeId to) const;

  /// Metric distance of the shortest path from `from` to `to`.
  double distance(graph::NodeId from, graph::NodeId to) const;

  /// DVMRP RPF: the neighbor `at` expects (source, *) traffic to arrive from,
  /// i.e. the first hop of at's shortest path toward the source (links are
  /// symmetric, so forward and reverse shortest paths coincide).
  graph::NodeId rpf_neighbor(graph::NodeId at, graph::NodeId source) const {
    return next_hop(at, source);
  }

  int num_nodes() const { return n_; }

 private:
  int n_ = 0;
  std::vector<graph::NodeId> next_hop_;  ///< n*n, row = from
  std::vector<double> dist_;             ///< n*n, row = from
};

}  // namespace scmp::sim
