// Discrete-event engine: a time-ordered queue of closures. Events scheduled
// at the same timestamp execute in scheduling order (a monotone sequence
// number breaks ties), which keeps every simulation fully deterministic.
//
// Implementation: a calendar queue (Brown 1988) instead of a binary heap.
// Pending events live in an array of time buckets of width `width_`; the
// bucket an event lands in is `floor(time / width_) mod bucket_count`. A
// cursor sweeps the calendar; when it reaches an occupied slot the slot's
// events are staged once into `active_`, sorted descending by the exact
// (time, seq) relation the old heap used, and popped from the back in O(1).
// Events scheduled *into* the already-staged slot (zero-delay cascades) go
// to a small (time, seq) min-heap (`overflow_`); the front of the queue is
// whichever of the two is earlier. Because (time, seq) is a total order,
// the execution sequence — and therefore every golden trace — is
// bit-identical to the heap implementation. Insert and pop are O(1)
// amortized: the calendar resizes (bucket count doubles/halves, width
// re-estimated from the live event span) when the population crosses load
// thresholds, keeping roughly one event per bucket.
//
// Allocation never happens in steady state: event nodes come from a slab-
// backed free list owned by the queue, and handlers are stored in an
// InlineFunction whose buffer is sized to fit the network's delivery
// closures (see kEventHandlerCapacity). tools/lint.py pins schedule_at and
// run_next allocation-free; docs/performance.md has the design notes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/contracts.hpp"
#include "util/inline_function.hpp"

namespace scmp::sim {

using SimTime = double;

/// Inline storage for event handlers. Sized so Network's delivery closure —
/// the hottest scheduled lambda, carrying a full Packet by value — fits
/// without boxing; Network static_asserts that it actually does.
inline constexpr std::size_t kEventHandlerCapacity = 120;

class EventQueue {
 public:
  using Handler = util::InlineFunction<void(), kEventHandlerCapacity>;

  /// Current simulation time (the timestamp of the most recent event).
  SimTime now() const { return now_; }

  bool empty() const { return pending_ == 0; }
  std::size_t pending() const { return pending_; }

  /// Schedules `fn` at absolute time `t`. Requires t >= now().
  void schedule_at(SimTime t, Handler fn);

  /// Schedules `fn` after a relative delay (>= 0).
  void schedule_in(SimTime delay, Handler fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Executes the earliest event; returns false when the queue is empty.
  bool run_next();

  /// Runs events with timestamp <= t, then advances the clock to t.
  void run_until(SimTime t);

  /// Runs until the queue drains or `max_events` have executed; returns the
  /// number of events executed.
  std::size_t run_all(std::size_t max_events = SIZE_MAX);

  /// Calendar introspection (tests and benches): current bucket-array size
  /// and bucket width. The calendar starts at kMinBuckets and resizes as
  /// the pending population crosses load thresholds.
  std::size_t bucket_count() const { return buckets_.size(); }
  double bucket_width() const { return width_; }

  /// Total event nodes backed by the slab pool (its memory footprint in
  /// nodes); free-list reuse keeps this within twice the queue's
  /// high-water population.
  std::size_t pool_allocated() const { return pool_allocated_; }

  static constexpr std::size_t kMinBuckets = 16;

 private:
  /// No default member initializers on the scalars: slabs are allocated
  /// with make_unique_for_overwrite so only the Handler's (necessary)
  /// default construction touches fresh memory, and acquire_node() writes
  /// every scalar before the node is ever read.
  struct Event {
    SimTime time;
    std::uint64_t seq;
    Handler fn;
    Event* next;  ///< bucket LIFO link / free-list link
  };
  /// One calendar bucket: an unsorted LIFO of events whose slot hashes
  /// here. Inserts prepend — the only memory touched is the just-acquired
  /// (cache-hot) node and this 8-byte head — and the order is irrelevant
  /// for determinism because staging re-sorts by the total (time, seq)
  /// order before execution.
  struct Bucket {
    Event* head = nullptr;
  };
  /// "a runs after b": sorts a staged slot descending (earliest at the
  /// back) and orders the overflow min-heap.
  struct Later {
    bool operator()(const Event* a, const Event* b) const {
      // determinism: allow(strict weak order over (time, seq): bit-equal
      // timestamps fall through to the seq tie-break, so the ordering is
      // deterministic for any float values)
      if (a->time != b->time) return a->time > b->time;
      return a->seq > b->seq;
    }
  };

  /// The slot (integer-valued double, exact under floor) of time t.
  double slot_of(SimTime t) const;
  std::size_t bucket_index(double slot) const;

  /// Files `ev` into the staged slot or its calendar bucket, maintaining
  /// the invariant: active_ + overflow_ hold exactly the pending events
  /// whose slot is cursor_slot_; buckets hold every event with a later
  /// slot.
  void file_event(Event* ev);
  /// Spills the staged slot back into the calendar and pulls the cursor
  /// back to `slot` (an insert landed before the cursor).
  void rewind_cursor(double slot);
  /// Advances the cursor to the next occupied slot and stages its events
  /// in active_. Requires pending_ > 0 and an exhausted staged slot.
  void advance_cursor();
  /// Unlinks events of exactly `slot` from bucket `b` into active_ and
  /// sorts them for back-to-front draining; returns whether any were
  /// staged.
  bool extract_slot(Bucket& b, double slot);
  /// O(n) fallback: finds the minimum occupied slot across all buckets and
  /// stages it. Used when a full calendar sweep found nothing (events far
  /// beyond one calendar year) or slot arithmetic saturates.
  void seek_min_slot();
  /// Earliest pending event (staging the active slot on demand), or
  /// nullptr when empty. The returned node stays owned by the queue.
  Event* front_event();

  /// Re-estimates the bucket width from the live event span and rebuilds
  /// the calendar with `nbuckets` buckets.
  void rebuild_calendar(std::size_t nbuckets);
  /// Rebuilds when the population has outgrown (load > 2) or outshrunk
  /// (load < 1/4) the calendar. Called at slot-advance boundaries only:
  /// inserts stay pure O(1) prepends (load factor never hurts them — only
  /// extraction scans crowded buckets), so bulk loading costs exactly one
  /// rebuild when draining starts.
  void resize_if_needed();

  /// Slab-backed node pool. acquire() prefers the free list — which holds
  /// only release()d nodes, so every hit there is one recycled node
  /// (counted as sim.pool.events.reuse) — and otherwise bumps a pointer
  /// through the newest slab, allocating a fresh slab when it runs out.
  Event* acquire_node();
  void release_node(Event* ev);
  void allocate_slab();

  std::vector<Bucket> buckets_{kMinBuckets};
  std::vector<Event*> active_;    ///< staged slot, sorted by Later (earliest last)
  std::vector<Event*> overflow_;  ///< (time, seq) min-heap: late arrivals to the slot
  std::vector<Event*> scratch_;   ///< rebuild_calendar's gather buffer
  bool front_is_overflow_ = false;  ///< which structure front_event() chose
  double cursor_slot_ = 0.0;
  double width_ = 1.0;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t pending_ = 0;

  struct Slab {
    std::unique_ptr<Event[]> nodes;
    std::size_t count = 0;
  };
  std::vector<Slab> slabs_;
  Event* free_ = nullptr;   ///< released nodes, LIFO
  Event* bump_ = nullptr;   ///< next never-used node in the newest slab
  Event* bump_end_ = nullptr;
  std::size_t pool_allocated_ = 0;
};

}  // namespace scmp::sim
