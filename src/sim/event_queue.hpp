// Discrete-event engine: a time-ordered queue of closures. Events scheduled
// at the same timestamp execute in scheduling order (a monotone sequence
// number breaks ties), which keeps every simulation fully deterministic.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "util/contracts.hpp"

namespace scmp::sim {

using SimTime = double;

class EventQueue {
 public:
  using Handler = std::function<void()>;

  /// Current simulation time (the timestamp of the most recent event).
  SimTime now() const { return now_; }

  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }

  /// Schedules `fn` at absolute time `t`. Requires t >= now().
  void schedule_at(SimTime t, Handler fn);

  /// Schedules `fn` after a relative delay (>= 0).
  void schedule_in(SimTime delay, Handler fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Executes the earliest event; returns false when the queue is empty.
  bool run_next();

  /// Runs events with timestamp <= t, then advances the clock to t.
  void run_until(SimTime t);

  /// Runs until the queue drains or `max_events` have executed; returns the
  /// number of events executed.
  std::size_t run_all(std::size_t max_events = SIZE_MAX);

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    Handler fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      // determinism: allow(strict weak order over (time, seq): bit-equal
      // timestamps fall through to the seq tie-break, so the ordering is
      // deterministic for any float values)
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Pops the earliest event and returns it by value. Requires !empty().
  Event pop_earliest();

  // Min-heap over `Later` maintained with std::push_heap/std::pop_heap
  // (rather than std::priority_queue, whose const top() cannot release an
  // element without a const_cast).
  std::vector<Event> heap_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace scmp::sim
