#include "sim/packet.hpp"

#include <sstream>

namespace scmp::sim {

bool is_data_type(PacketType t) {
  return t == PacketType::kData || t == PacketType::kDataEncap;
}

const char* to_string(PacketType t) {
  switch (t) {
    case PacketType::kData: return "DATA";
    case PacketType::kDataEncap: return "DATA_ENCAP";
    case PacketType::kJoin: return "JOIN";
    case PacketType::kLeave: return "LEAVE";
    case PacketType::kTree: return "TREE";
    case PacketType::kBranch: return "BRANCH";
    case PacketType::kPrune: return "PRUNE";
    case PacketType::kClear: return "CLEAR";
    case PacketType::kAck: return "ACK";
    case PacketType::kCbtJoin: return "CBT_JOIN";
    case PacketType::kCbtAck: return "CBT_ACK";
    case PacketType::kCbtQuit: return "CBT_QUIT";
    case PacketType::kDvmrpPrune: return "DVMRP_PRUNE";
    case PacketType::kDvmrpGraft: return "DVMRP_GRAFT";
    case PacketType::kPimJoin: return "PIM_JOIN";
    case PacketType::kPimPrune: return "PIM_PRUNE";
    case PacketType::kGroupLsa: return "GROUP_LSA";
    case PacketType::kIgmpQuery: return "IGMP_QUERY";
    case PacketType::kIgmpReport: return "IGMP_REPORT";
    case PacketType::kIgmpLeave: return "IGMP_LEAVE";
  }
  return "UNKNOWN";
}

std::string describe(const Packet& p) {
  std::ostringstream ss;
  ss << to_string(p.type) << "{group=" << p.group << " src=" << p.src
     << " dst=" << p.dst << " uid=" << p.uid;
  if (p.req != 0) ss << " req=" << p.req;
  ss << "}";
  return ss.str();
}

}  // namespace scmp::sim
