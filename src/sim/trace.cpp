#include "sim/trace.hpp"

namespace scmp::sim {

TraceRecorder::TraceRecorder(Network& net) {
  net.add_transmit_observer([this](graph::NodeId from, graph::NodeId to,
                                   const Packet& pkt, SimTime at) {
    events_.push_back(TraceEvent{at, from, to, pkt.type, pkt.group, pkt.src,
                                 pkt.uid, pkt.size_bytes});
  });
}

std::vector<TraceEvent> TraceRecorder::of_type(PacketType type) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events_)
    if (e.type == type) out.push_back(e);
  return out;
}

std::vector<graph::NodeId> TraceRecorder::path_of(std::uint64_t uid,
                                                  PacketType type) const {
  std::vector<graph::NodeId> path;
  for (const TraceEvent& e : events_) {
    if (e.type != type || e.uid != uid) continue;
    if (path.empty()) path.push_back(e.from);
    path.push_back(e.to);
  }
  return path;
}

std::size_t TraceRecorder::count(PacketType type) const {
  std::size_t n = 0;
  for (const TraceEvent& e : events_)
    if (e.type == type) ++n;
  return n;
}

}  // namespace scmp::sim
