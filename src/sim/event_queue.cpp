#include "sim/event_queue.hpp"

#include <utility>

namespace scmp::sim {

void EventQueue::schedule_at(SimTime t, Handler fn) {
  SCMP_EXPECTS(t >= now_);
  SCMP_EXPECTS(fn != nullptr);
  heap_.push(Event{t, next_seq_++, std::move(fn)});
}

bool EventQueue::run_next() {
  if (heap_.empty()) return false;
  // priority_queue::top() is const; the handler is moved out via const_cast,
  // which is safe because the element is popped immediately afterwards.
  Event ev = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  SCMP_ASSERT(ev.time >= now_);
  now_ = ev.time;
  ev.fn();
  return true;
}

void EventQueue::run_until(SimTime t) {
  SCMP_EXPECTS(t >= now_);
  while (!heap_.empty() && heap_.top().time <= t) run_next();
  now_ = t;
}

std::size_t EventQueue::run_all(std::size_t max_events) {
  std::size_t executed = 0;
  while (executed < max_events && run_next()) ++executed;
  return executed;
}

}  // namespace scmp::sim
