#include "sim/event_queue.hpp"

#include <utility>

namespace scmp::sim {

void EventQueue::schedule_at(SimTime t, Handler fn) {
  SCMP_EXPECTS(t >= now_);
  SCMP_EXPECTS(fn != nullptr);
  heap_.push_back(Event{t, next_seq_++, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

EventQueue::Event EventQueue::pop_earliest() {
  SCMP_EXPECTS(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  return ev;
}

bool EventQueue::run_next() {
  if (heap_.empty()) return false;
  Event ev = pop_earliest();
  SCMP_ASSERT(ev.time >= now_);
  now_ = ev.time;
  ev.fn();
  return true;
}

void EventQueue::run_until(SimTime t) {
  SCMP_EXPECTS(t >= now_);
  while (!heap_.empty() && heap_.front().time <= t) run_next();
  now_ = t;
}

std::size_t EventQueue::run_all(std::size_t max_events) {
  std::size_t executed = 0;
  while (executed < max_events && run_next()) ++executed;
  return executed;
}

}  // namespace scmp::sim
