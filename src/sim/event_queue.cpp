#include "sim/event_queue.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/metrics.hpp"

namespace scmp::sim {

namespace {

/// Lower bound on the calendar's bucket width. Keeps slot indices finite
/// when the pending events are packed into a vanishingly small time span.
constexpr double kMinWidth = 1e-9;

// Counter references are resolved once (function-local static); a disabled
// metric costs one relaxed load, so the instrumentation stays in the event
// loop permanently (docs/observability.md).
struct QueueCounters {
  obs::Counter* executed;
  obs::Counter* node_reuse;
};

const QueueCounters& queue_counters() {
  static const QueueCounters counters = [] {
    QueueCounters c;
    c.executed = &obs::counter("sim.events.executed");
    c.node_reuse = &obs::counter("sim.pool.events.reuse");
    return c;
  }();
  return counters;
}

}  // namespace

double EventQueue::slot_of(SimTime t) const {
  // floor() of a non-negative quotient is an exact, integer-valued double
  // and monotone in t, so slot comparisons order exactly like times do.
  return std::floor(t / width_);
}

std::size_t EventQueue::bucket_index(double slot) const {
  SCMP_EXPECTS(slot >= 0.0);
  // The bucket count is always a power of two, so for slots in exact
  // integer range the modulo is a cast-and-mask; fmod of exact
  // non-negative integer values is the (exact) fallback beyond 2^53.
  constexpr double kExactLimit = 9007199254740992.0;  // 2^53
  if (slot < kExactLimit) {
    return static_cast<std::size_t>(slot) & (buckets_.size() - 1);
  }
  return static_cast<std::size_t>(
      std::fmod(slot, static_cast<double>(buckets_.size())));
}

void EventQueue::schedule_at(SimTime t, Handler fn) {
  SCMP_EXPECTS(t >= now_);
  SCMP_EXPECTS(static_cast<bool>(fn));
  Event* ev = acquire_node();
  ev->time = t;
  ev->seq = next_seq_++;
  ev->fn = std::move(fn);
  ev->next = nullptr;
  file_event(ev);
  ++pending_;
}

void EventQueue::file_event(Event* ev) {
  const double slot = slot_of(ev->time);
  if (pending_ == 0) {
    // Empty calendar: re-anchor the cursor at the new event's slot (it may
    // have drifted arbitrarily far ahead after run_until past the last
    // event, or arbitrarily far behind after a width change).
    cursor_slot_ = slot;
  } else if (slot < cursor_slot_) {
    rewind_cursor(slot);
  }
  // determinism: allow(calendar slot indices are integer-valued doubles
  // (floor results over identical inputs), so equal slots are bit-identical
  // by construction)
  if (slot == cursor_slot_) {
    overflow_.push_back(ev);
    std::push_heap(overflow_.begin(), overflow_.end(), Later{});
    return;
  }
  Bucket& b = buckets_[bucket_index(slot)];
  ev->next = b.head;
  b.head = ev;
}

void EventQueue::rewind_cursor(double slot) {
  // An insert landed before the staged slot: possible whenever run_until
  // advanced the clock into a gap the cursor had already swept past. Spill
  // the staged events back into their bucket and pull the cursor back; the
  // spilled slot will be re-staged when the sweep reaches it again.
  Bucket& b = buckets_[bucket_index(cursor_slot_)];
  auto spill = [&b](Event* ev) {
    ev->next = b.head;
    b.head = ev;
  };
  for (Event* ev : active_) spill(ev);
  for (Event* ev : overflow_) spill(ev);
  active_.clear();
  overflow_.clear();
  cursor_slot_ = slot;
}

void EventQueue::advance_cursor() {
  SCMP_EXPECTS(pending_ > 0);
  SCMP_EXPECTS(active_.empty());
  SCMP_EXPECTS(overflow_.empty());
  // Sweep at most one calendar year (every bucket once) looking for the
  // next occupied slot; beyond that the remaining events are more than a
  // year ahead and a direct minimum search is cheaper than spinning.
  double slot = cursor_slot_;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const double next = slot + 1.0;
    // determinism: allow(saturation probe: beyond 2^53 adding one to a
    // double is an exact no-op, detected by bit-identical equality)
    if (next == slot) break;
    slot = next;
    if (extract_slot(buckets_[bucket_index(slot)], slot)) {
      cursor_slot_ = slot;
      return;
    }
  }
  seek_min_slot();
}

bool EventQueue::extract_slot(Bucket& b, double slot) {
  Event* ev = b.head;
  b.head = nullptr;
  while (ev != nullptr) {
    Event* next = ev->next;
    const double ev_slot = slot_of(ev->time);
    // determinism: allow(calendar slot indices are integer-valued doubles
    // (floor results over identical inputs), so equal slots are
    // bit-identical by construction)
    if (ev_slot == slot) {
      ev->next = nullptr;
      active_.push_back(ev);
    } else {
      ev->next = b.head;
      b.head = ev;
    }
    ev = next;
  }
  if (active_.empty()) return false;
  // One descending sort per staged slot; every pop is then an O(1)
  // pop_back. (time, seq) is a total order, so the result is independent
  // of the bucket's LIFO arrangement — which, for a same-timestamp burst,
  // already comes out in descending seq order, so the common case is a
  // linear is_sorted pass and no sort at all.
  if (!std::is_sorted(active_.begin(), active_.end(), Later{})) {
    std::sort(active_.begin(), active_.end(), Later{});
  }
  return true;
}

void EventQueue::seek_min_slot() {
  SCMP_EXPECTS(pending_ > 0);
  SCMP_EXPECTS(active_.empty());
  bool found = false;
  double min_slot = 0.0;
  for (const Bucket& b : buckets_) {
    for (const Event* ev = b.head; ev != nullptr; ev = ev->next) {
      const double slot = slot_of(ev->time);
      if (!found || slot < min_slot) {
        min_slot = slot;
        found = true;
      }
    }
  }
  SCMP_ASSERT(found);
  extract_slot(buckets_[bucket_index(min_slot)], min_slot);
  cursor_slot_ = min_slot;
  SCMP_ENSURES(!active_.empty());
}

EventQueue::Event* EventQueue::front_event() {
  if (pending_ == 0) return nullptr;
  if (active_.empty() && overflow_.empty()) {
    // Slot boundary: the only place calendar load matters is the upcoming
    // extraction scan, so this is where the calendar resizes. The rebuild
    // may itself stage the new cursor slot (via overflow_).
    resize_if_needed();
    if (active_.empty() && overflow_.empty()) advance_cursor();
  }
  if (active_.empty()) {
    front_is_overflow_ = true;
    return overflow_.front();
  }
  if (overflow_.empty()) {
    front_is_overflow_ = false;
    return active_.back();
  }
  front_is_overflow_ = Later{}(active_.back(), overflow_.front());
  return front_is_overflow_ ? overflow_.front() : active_.back();
}

bool EventQueue::run_next() {
  Event* ev = front_event();
  if (ev == nullptr) return false;
  if (front_is_overflow_) {
    std::pop_heap(overflow_.begin(), overflow_.end(), Later{});
    overflow_.pop_back();
  } else {
    active_.pop_back();
  }
  SCMP_ASSERT(ev->time >= now_);
  now_ = ev->time;
  // Move the handler out and recycle the node before invoking: a handler
  // that schedules a follow-up event (the common steady-state shape) reuses
  // this very node instead of growing the pool.
  Handler fn = std::move(ev->fn);
  release_node(ev);
  --pending_;
  if (obs::metrics_enabled()) queue_counters().executed->inc();
  fn();
  return true;
}

void EventQueue::run_until(SimTime t) {
  SCMP_EXPECTS(t >= now_);
  while (true) {
    Event* ev = front_event();
    if (ev == nullptr || ev->time > t) break;
    run_next();
  }
  now_ = t;
}

std::size_t EventQueue::run_all(std::size_t max_events) {
  std::size_t executed = 0;
  while (executed < max_events && run_next()) ++executed;
  return executed;
}

namespace {

/// Smallest power of two >= n (n >= 1).
std::size_t pow2_ceil(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

void EventQueue::resize_if_needed() {
  // Growth rebuilds straight to ~one bucket per event (instead of doubling
  // one step), so the next growth is a population doubling away. Shrinking
  // is deliberately lazy (1/32 occupancy, rebuilt to half-occupancy): the
  // cursor sweeps slots monotonically, so an oversized calendar costs
  // almost nothing per pop, while every shrink rebuild pays a full
  // re-gather of the pending events.
  const bool loaded = pending_ > 2 * buckets_.size();
  const bool sparse =
      buckets_.size() > kMinBuckets && pending_ < buckets_.size() / 32;
  if (loaded) {
    rebuild_calendar(std::max(kMinBuckets, pow2_ceil(pending_)));
  } else if (sparse) {
    rebuild_calendar(std::max(kMinBuckets, pow2_ceil(2 * pending_)));
  }
}

void EventQueue::rebuild_calendar(std::size_t nbuckets) {
  SCMP_EXPECTS(nbuckets >= kMinBuckets);
  // Gather every pending event into scratch_. When most pool nodes are
  // live (growth rebuilds), sweep the slabs sequentially — a node is
  // pending exactly when it holds a handler (schedule_at requires one;
  // release_node drops it) — which is far cheaper than chasing the
  // scattered bucket chains. When the pool is mostly free (shrink rebuilds
  // after a drain), the sweep would scan the whole high-water pool, so
  // chase the chains instead. Gather order is irrelevant either way:
  // refiling normalizes through the total (time, seq) order.
  scratch_.clear();
  if (pool_allocated_ <= 2 * pending_) {
    for (const auto& slab : slabs_) {
      Event* const nodes = slab.nodes.get();
      for (std::size_t i = 0; i < slab.count; ++i) {
        if (nodes[i].fn) scratch_.push_back(&nodes[i]);
      }
    }
  } else {
    scratch_.insert(scratch_.end(), active_.begin(), active_.end());
    scratch_.insert(scratch_.end(), overflow_.begin(), overflow_.end());
    for (const Bucket& b : buckets_) {
      for (Event* ev = b.head; ev != nullptr; ev = ev->next) {
        scratch_.push_back(ev);
      }
    }
  }
  active_.clear();
  overflow_.clear();
  // No need to null the old bucket heads: the assign below rewrites them.
  SCMP_ASSERT(scratch_.size() == pending_);

  buckets_.assign(nbuckets, Bucket{});
  if (scratch_.empty()) {
    cursor_slot_ = slot_of(now_);
    return;
  }
  SimTime t_min = scratch_.front()->time;
  SimTime t_max = t_min;
  for (const Event* ev : scratch_) {
    t_min = std::min(t_min, ev->time);
    t_max = std::max(t_max, ev->time);
  }
  // Re-estimate the bucket width as twice the average inter-event gap:
  // roughly half an event per bucket, so the cursor finds the next occupied
  // slot in O(1) expected probes while same-timestamp bursts share one
  // bucket. Derived only from min/max/count, so it is order-independent
  // and deterministic. A zero span (all events at one instant) keeps the
  // current width.
  const double span = t_max - t_min;
  if (span > 0.0) {
    width_ = std::max(2.0 * span / static_cast<double>(scratch_.size()),
                      kMinWidth);
  }
  // Refiling goes through file_event with pending_ at its true (non-zero)
  // value: the cursor is pre-anchored at the earliest slot, every refiled
  // event lands at or after it, and the earliest slot's events re-enter
  // the active heap, whose (time, seq) order is insertion-independent.
  cursor_slot_ = slot_of(t_min);
  for (Event* ev : scratch_) file_event(ev);
  scratch_.clear();
}

EventQueue::Event* EventQueue::acquire_node() {
  // The free list holds only release()d nodes, so popping it is by
  // definition a reuse; fresh nodes come off the newest slab's bump
  // pointer without ever having been linked.
  if (free_ != nullptr) {
    Event* ev = free_;
    free_ = ev->next;
    ev->next = nullptr;
    if (obs::metrics_enabled()) queue_counters().node_reuse->inc();
    return ev;
  }
  if (bump_ == bump_end_) allocate_slab();
  Event* ev = bump_++;
  ev->next = nullptr;
  return ev;
}

void EventQueue::release_node(Event* ev) {
  // Drop the (already moved-from) handler so any boxed closure is freed
  // eagerly — an empty fn is also what marks the node dead for the
  // rebuild gather's slab sweep — then push onto the free list.
  ev->fn.reset();
  ev->next = free_;
  free_ = ev;
}

void EventQueue::allocate_slab() {
  SCMP_EXPECTS(free_ == nullptr);
  SCMP_EXPECTS(bump_ == bump_end_);
  // Slab sizes double, so the pool reaches the queue's high-water node
  // population in O(log n) allocations and never exceeds twice of it.
  // make_unique_for_overwrite default-initializes: only each Handler's
  // default construction touches the fresh pages; the scalars are written
  // by acquire_node()/schedule_at before first use.
  const std::size_t count = std::max<std::size_t>(64, pool_allocated_);
  auto nodes = std::make_unique_for_overwrite<Event[]>(count);
  bump_ = nodes.get();
  bump_end_ = bump_ + count;
  pool_allocated_ += count;
  slabs_.push_back(Slab{std::move(nodes), count});
}

}  // namespace scmp::sim
