#include "fabric/ccn_circuit.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace scmp::fabric {

CcnCircuit::CcnCircuit(int lines) : lines_(lines) {
  SCMP_EXPECTS(lines >= 1);
}

void CcnCircuit::configure(const std::vector<Block>& blocks) {
  elements_.clear();
  stages_ = 0;
  std::vector<char> used(static_cast<std::size_t>(lines_), 0);
  for (const Block& b : blocks) {
    SCMP_EXPECTS(b.length >= 1);
    SCMP_EXPECTS(b.start >= 0 && b.start + b.length <= lines_);
    for (int i = 0; i < b.length; ++i) {
      SCMP_EXPECTS(!used[static_cast<std::size_t>(b.start + i)]);
      used[static_cast<std::size_t>(b.start + i)] = 1;
    }
    // Binary-tree reduction over the contiguous block.
    for (int stage = 0, step = 1; step < b.length; ++stage, step *= 2) {
      for (int k = 0; b.start + k * 2 * step + step < b.start + b.length;
           ++k) {
        MergeElement e;
        e.stage = stage;
        e.from_line = b.start + k * 2 * step + step;
        e.into_line = b.start + k * 2 * step;
        elements_.push_back(e);
      }
      stages_ = std::max(stages_, stage + 1);
    }
  }
  // propagate() relies on stage-ordered application.
  std::stable_sort(elements_.begin(), elements_.end(),
                   [](const MergeElement& a, const MergeElement& b) {
                     return a.stage < b.stage;
                   });
}

std::vector<std::vector<int>> CcnCircuit::propagate(
    const std::vector<int>& inputs) const {
  SCMP_EXPECTS(static_cast<int>(inputs.size()) == lines_);
  // carrying[l] = input lines whose signals currently sit on line l.
  std::vector<std::vector<int>> carrying(static_cast<std::size_t>(lines_));
  for (int l = 0; l < lines_; ++l) {
    if (inputs[static_cast<std::size_t>(l)] != -1)
      carrying[static_cast<std::size_t>(l)].push_back(l);
  }
  for (const MergeElement& e : elements_) {
    auto& from = carrying[static_cast<std::size_t>(e.from_line)];
    auto& into = carrying[static_cast<std::size_t>(e.into_line)];
    into.insert(into.end(), from.begin(), from.end());
    from.clear();
  }
  for (auto& lines : carrying) std::sort(lines.begin(), lines.end());
  return carrying;
}

int CcnCircuit::leader_of(int line) const {
  SCMP_EXPECTS(line >= 0 && line < lines_);
  int cur = line;
  for (const MergeElement& e : elements_) {
    if (e.from_line == cur) cur = e.into_line;
  }
  return cur;
}

}  // namespace scmp::fabric
