#include "fabric/mrouter_fabric.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/contracts.hpp"

namespace scmp::fabric {

MRouterFabric::MRouterFabric(int ports)
    : ports_(ports), pn_(ports), ccn_(ports), dn_(ports) {
  SCMP_EXPECTS(ports >= 2 && is_power_of_two(ports));
  input_group_.assign(static_cast<std::size_t>(ports), -1);
  port_load_.assign(static_cast<std::size_t>(ports), 0);

  // Start in the identity configuration.
  std::vector<int> identity(static_cast<std::size_t>(ports));
  for (int i = 0; i < ports; ++i) identity[static_cast<std::size_t>(i)] = i;
  pn_.route(identity);
  dn_.route(identity);
}

void MRouterFabric::configure(const std::vector<FabricSession>& sessions) {
  OBS_SPAN("fabric.configure");
  static obs::Counter& configured = obs::counter("fabric.sessions");
  configured.inc(sessions.size());
  // Validate: distinct groups, distinct in-range input ports, capacity.
  std::vector<char> port_taken(static_cast<std::size_t>(ports_), 0);
  int total_inputs = 0;
  {
    std::vector<int> groups;
    for (const auto& s : sessions) {
      SCMP_EXPECTS(s.group >= 0);
      SCMP_EXPECTS(!s.input_ports.empty());
      groups.push_back(s.group);
      for (int p : s.input_ports) {
        SCMP_EXPECTS(p >= 0 && p < ports_);
        SCMP_EXPECTS(!port_taken[static_cast<std::size_t>(p)]);
        port_taken[static_cast<std::size_t>(p)] = 1;
        ++total_inputs;
      }
    }
    std::sort(groups.begin(), groups.end());
    SCMP_EXPECTS(std::adjacent_find(groups.begin(), groups.end()) ==
                 groups.end());
    SCMP_EXPECTS(total_inputs <= ports_);
    SCMP_EXPECTS(static_cast<int>(sessions.size()) <= ports_);
  }

  group_output_.clear();
  std::fill(input_group_.begin(), input_group_.end(), -1);

  // Deterministic processing order: by group id.
  std::vector<const FabricSession*> ordered;
  ordered.reserve(sessions.size());
  for (const auto& s : sessions) ordered.push_back(&s);
  std::sort(ordered.begin(), ordered.end(),
            [](const FabricSession* a, const FabricSession* b) {
              return a->group < b->group;
            });

  // PN: pack each session's ports onto the next contiguous line block.
  std::vector<int> pn_perm(static_cast<std::size_t>(ports_), -1);
  std::vector<Block> blocks;
  int next_line = 0;
  for (const FabricSession* s : ordered) {
    Block b;
    b.start = next_line;
    b.length = static_cast<int>(s->input_ports.size());
    blocks.push_back(b);
    std::vector<int> sorted_ports = s->input_ports;
    std::sort(sorted_ports.begin(), sorted_ports.end());
    for (int p : sorted_ports) {
      pn_perm[static_cast<std::size_t>(p)] = next_line++;
      input_group_[static_cast<std::size_t>(p)] = s->group;
    }
  }
  // Unused inputs fill the remaining lines in ascending order.
  for (int p = 0; p < ports_; ++p) {
    if (pn_perm[static_cast<std::size_t>(p)] == -1)
      pn_perm[static_cast<std::size_t>(p)] = next_line++;
  }
  SCMP_ASSERT(next_line == ports_);
  pn_.route(pn_perm);
  ccn_.configure(blocks);

  // DN: each block leader goes to the least-loaded free output port.
  std::vector<char> out_taken(static_cast<std::size_t>(ports_), 0);
  std::vector<int> dn_perm(static_cast<std::size_t>(ports_), -1);
  for (std::size_t i = 0; i < ordered.size(); ++i) {
    int best = -1;
    for (int p = 0; p < ports_; ++p) {
      if (out_taken[static_cast<std::size_t>(p)]) continue;
      if (best == -1 || port_load_[static_cast<std::size_t>(p)] <
                            port_load_[static_cast<std::size_t>(best)])
        best = p;
    }
    SCMP_ASSERT(best != -1);
    out_taken[static_cast<std::size_t>(best)] = 1;
    dn_perm[static_cast<std::size_t>(blocks[i].start)] = best;
    group_output_[ordered[i]->group] = best;
    port_load_[static_cast<std::size_t>(best)] +=
        static_cast<std::uint64_t>(blocks[i].length);
  }
  // Remaining lines (merged-away lines and idle lines) fill the free ports.
  int next_free = 0;
  for (int line = 0; line < ports_; ++line) {
    if (dn_perm[static_cast<std::size_t>(line)] != -1) continue;
    while (out_taken[static_cast<std::size_t>(next_free)]) ++next_free;
    out_taken[static_cast<std::size_t>(next_free)] = 1;
    dn_perm[static_cast<std::size_t>(line)] = next_free;
  }
  dn_.route(dn_perm);
}

int MRouterFabric::output_port(int group) const {
  const auto it = group_output_.find(group);
  SCMP_EXPECTS(it != group_output_.end());
  return it->second;
}

std::vector<int> MRouterFabric::configured_groups() const {
  std::vector<int> groups;
  groups.reserve(group_output_.size());
  for (const auto& [group, port] : group_output_) groups.push_back(group);
  return groups;
}

int MRouterFabric::group_of_input(int input_port) const {
  SCMP_EXPECTS(input_port >= 0 && input_port < ports_);
  return input_group_[static_cast<std::size_t>(input_port)];
}

int MRouterFabric::route_cell(int input_port) const {
  SCMP_EXPECTS(input_port >= 0 && input_port < ports_);
  const int line = pn_.forward(input_port);
  const int leader = ccn_.leader_of(line);
  return dn_.forward(leader);
}

int MRouterFabric::path_depth(int input_port) const {
  const int line = pn_.forward(input_port);
  return pn_.stage_count() + ccn_.merge_depth(line) + dn_.stage_count();
}

bool MRouterFabric::verify_no_cross_group() const {
  if (!ccn_.verify_isolation()) return false;
  // Collect the set of group output ports.
  std::vector<char> is_group_port(static_cast<std::size_t>(ports_), 0);
  for (const auto& [group, port] : group_output_)
    is_group_port[static_cast<std::size_t>(port)] = 1;

  for (int p = 0; p < ports_; ++p) {
    const int group = input_group_[static_cast<std::size_t>(p)];
    const int out = route_cell(p);
    if (group >= 0) {
      if (out != output_port(group)) return false;
    } else {
      if (is_group_port[static_cast<std::size_t>(out)]) return false;
    }
  }
  return true;
}

}  // namespace scmp::fabric
