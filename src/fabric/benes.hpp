// Beneš rearrangeable permutation network, the building block of the
// m-router's sandwich switching fabric (paper §II-B and refs [9]-[12]): the
// PN and DN stages are permutation networks that order inputs for the CCN
// and load-balance merged streams onto output ports. An n-port Beneš network
// (n a power of two) has 2*log2(n)-1 stages of n/2 2x2 crossbar switches and
// can realise every permutation; switch settings are computed with the
// classic looping algorithm.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace scmp::fabric {

class BenesNetwork {
 public:
  /// Constructs an n-port network in the identity configuration.
  /// n must be a power of two, >= 2.
  explicit BenesNetwork(int n);

  int ports() const { return n_; }
  /// Total number of 2x2 switches: n/2 * (2*log2(n) - 1).
  int switch_count() const;
  int stage_count() const;

  /// Computes switch settings realising `perm` (perm[input] = output) via the
  /// looping algorithm. `perm` must be a permutation of 0..n-1.
  void route(const std::vector<int>& perm);

  /// Same result as route(), but the two centre sub-networks of the top
  /// `parallel_depth` recursion levels are routed on separate threads — the
  /// sub-problems are fully independent, so the configuration is identical
  /// to the serial one (paper §II-B's multiprocessor m-router applies to
  /// fabric control too). parallel_depth = 2 uses up to 4 threads.
  void route_parallel(const std::vector<int>& perm, int parallel_depth = 2);

  /// Traces a cell entering at `input` through the configured switches.
  int forward(int input) const;

 private:
  void route_impl(const std::vector<int>& perm, int parallel_depth);

  int n_;
  /// Input/output column switch settings: 0 = through, 1 = cross.
  std::vector<std::int8_t> in_sw_;
  std::vector<std::int8_t> out_sw_;
  /// Centre sub-networks (null when n == 2).
  std::unique_ptr<BenesNetwork> upper_;
  std::unique_ptr<BenesNetwork> lower_;
};

/// True when v is a power of two (and >= 1).
bool is_power_of_two(int v);

}  // namespace scmp::fabric
