// Connection component network (CCN), the centre stage of the m-router's
// sandwich fabric (paper §II-B, conference-network refs [11], [12]). After
// the PN has ordered the lines so that all sources of one multicast group are
// contiguous, the CCN merges each contiguous block onto a single line (a
// reversed binary tree rooted at the block leader), which the DN then maps
// to the output port that roots the group's tree in the Internet. Sources of
// different groups are never connected.
#pragma once

#include <vector>

namespace scmp::fabric {

/// A contiguous block of lines forming one connection component.
struct Block {
  int start = 0;
  int length = 1;
};

class ConnectionComponentNetwork {
 public:
  explicit ConnectionComponentNetwork(int lines);

  int lines() const { return lines_; }

  /// Configures disjoint merge blocks; lines outside any block pass through.
  void configure(const std::vector<Block>& blocks);

  /// The line a signal entering at `line` leaves on (the block leader, or
  /// `line` itself when unmerged).
  int leader_of(int line) const;

  /// Depth of the merge tree the line traverses (0 when unmerged) — the
  /// CCN's contribution to the cell's latency in gate stages.
  int merge_depth(int line) const;

  /// Invariant check: every line maps into its own block's leader and blocks
  /// are disjoint (no cross-component connection).
  bool verify_isolation() const;

 private:
  int lines_;
  std::vector<int> leader_;  ///< per line
  std::vector<int> depth_;
  std::vector<Block> blocks_;
};

}  // namespace scmp::fabric
