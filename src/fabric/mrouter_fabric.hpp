// The m-router's full n x n sandwich switching fabric (paper §II-B, Fig. 3):
// PN -> CCN -> DN. configure() takes the set of concurrent many-to-many
// sessions (each group with the input ports its sources arrive on), assigns
// every group an output port (least-loaded, the DN's load-balancing role),
// and programs the three stages so that:
//   * the PN permutes each group's source ports onto one contiguous line
//     block,
//   * the CCN merges the block onto its leader line, and
//   * the DN carries the leader to the group's output port — the port that
//     roots the group's multicast tree in the Internet.
// Sources of different groups are never connected (isolation invariant).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "fabric/benes.hpp"
#include "fabric/ccn.hpp"

namespace scmp::fabric {

struct FabricSession {
  int group = -1;
  std::vector<int> input_ports;  ///< distinct ports the sources arrive on
};

class MRouterFabric {
 public:
  /// `ports` must be a power of two >= 2.
  explicit MRouterFabric(int ports);

  int ports() const { return ports_; }

  /// Programs the fabric for the given sessions. Groups must be distinct and
  /// input ports globally distinct. Replaces any previous configuration.
  void configure(const std::vector<FabricSession>& sessions);

  /// Output port assigned to a group in the current configuration.
  int output_port(int group) const;

  /// Groups present in the current configuration, ascending.
  std::vector<int> configured_groups() const;

  /// Group a configured input port belongs to, or -1.
  int group_of_input(int input_port) const;

  /// Traces a cell through PN -> CCN -> DN.
  int route_cell(int input_port) const;

  /// Stage latency (in 2x2 switch hops) a cell from this input experiences.
  int path_depth(int input_port) const;

  /// Checks the paper's isolation property: every configured input reaches
  /// exactly its group's output port, and unconfigured inputs never land on
  /// a group's port.
  bool verify_no_cross_group() const;

  /// Cumulative per-output-port load (one unit per source per configure),
  /// the signal the DN's least-loaded assignment balances.
  const std::vector<std::uint64_t>& port_load() const { return port_load_; }

  const BenesNetwork& pn() const { return pn_; }
  const BenesNetwork& dn() const { return dn_; }
  const ConnectionComponentNetwork& ccn() const { return ccn_; }

 private:
  int ports_;
  BenesNetwork pn_;
  ConnectionComponentNetwork ccn_;
  BenesNetwork dn_;
  std::map<int, int> group_output_;      ///< group -> output port
  std::vector<int> input_group_;         ///< input port -> group (-1 = none)
  std::vector<std::uint64_t> port_load_;
};

}  // namespace scmp::fabric
